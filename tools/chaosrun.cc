// chaosrun — sweep fault-injection seeds across the registered discovery
// subjects and print a per-invariant pass/fail table.
//
// Two layers of sweep:
//
//   1. A parallel target sweep: every kLinuxServer registry subject runs a
//      reduced-budget Campaign syscall funnel under a per-cell ScopedPlan
//      (one cell = target x seed, sharded over the exec pool; each cell's
//      campaign runs jobs=1 because the plan override is thread-local).
//      Invariant: the funnel completes and traces work under injected I/O
//      and cache faults — no host crash, no hang, no empty trace.
//
//   2. The paper-level property suite via chaos::check(): oracle probes
//      never crash the target, audit_ledger() stays green, taint labels
//      survive injected -EINTR retries, the decoder never reads out of
//      bounds, warm-cache output is byte-identical to cold under cache
//      corruption, and task-order perturbation never changes merged output.
//      Failures are shrunk to a one-line CRP_CHAOS replay spec.
//
// Exit status 0 iff every invariant passed at every seed. Failing rows
// print `CRP_CHAOS=<line>` counterexamples for artifact upload (see CI).
//
// Usage: chaosrun [--seeds N] [--base-seed S] [--rate R] [--points spec]
//                 [--jobs J] [--targets substr] [--list]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "chaos/prop.h"
#include "exec/thread_pool.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "oracle/oracle.h"
#include "os/kernel.h"
#include "pipeline/campaign.h"
#include "plan/replay.h"
#include "pipeline/job_queue.h"
#include "pipeline/registry.h"
#include "taint/taint.h"
#include "targets/common.h"
#include "targets/nginx.h"
#include "util/common.h"

namespace crp {
namespace {

namespace fs = std::filesystem;

struct Options {
  u64 seeds = 8;
  u64 base_seed = 1;
  u32 rate = 8;
  // Default sweep: the fault families every registered guest must tolerate.
  // vm-av / vm-single-step kill handler-less guests by design (that is the
  // acceptance test's planted bug, not a survivable fault), so they are
  // opt-in via --points vm.
  u32 points = chaos::kIoPoints | chaos::kCachePoints |
               chaos::point_bit(chaos::Point::kTaskOrder);
  int jobs = 0;  // exec::resolve_jobs semantics (0 = CRP_JOBS or hw)
  std::string target_filter;
  bool list = false;
};

// Reduced per-cell funnel budgets: the sweep wants breadth (many seeds x
// many targets), not the full Table I depth.
constexpr u64 kSweepDiscoverBudget = 150'000;
constexpr u64 kSweepVerifyBudget = 150'000;

struct InvariantRow {
  std::string name;
  u64 runs = 0;
  bool ok = true;
  std::string detail;  // failure message (first line of the table footnote)
  std::string replay;  // CRP_CHAOS line reproducing the failure
};

// --- phase 1: parallel target sweep ------------------------------------------

struct Cell {
  const pipeline::TargetSpec* spec = nullptr;
  u64 seed = 0;
};

struct CellVerdict {
  bool ok = true;
  std::string msg;
  std::string replay;
  u64 fired = 0;
};

CellVerdict run_cell(const Cell& cell, const Options& opt) {
  chaos::FaultPlan plan;
  plan.seed = cell.seed;
  plan.rate = opt.rate;
  plan.points = opt.points;
  chaos::ScopedPlan scope(plan);

  pipeline::CampaignOptions copts;
  copts.jobs = 1;  // the plan override is thread-local: stay on this thread
  copts.cache = false;
  copts.syscall.discover_budget = kSweepDiscoverBudget;
  copts.syscall.verify_budget = kSweepVerifyBudget;
  copts.syscall.seed = cell.seed;

  CellVerdict v;
  if (cell.seed == opt.base_seed) {
    // The sweep's first cell goes through the job engine — the same inline
    // submit+wait drain the daemon's batch path uses — so step-decomposed
    // cells and their boundaries also run under an armed fault plan.
    pipeline::JobQueue q(pipeline::JobQueueOptions{0, nullptr});
    pipeline::JobSpec js;
    js.target = *cell.spec;
    js.opts = copts;
    js.seed = cell.seed;
    pipeline::JobResult r = q.wait(q.submit(std::move(js)));
    v.fired = scope.events().size();
    unsigned long long syscalls = 0;
    if (r.state != pipeline::JobState::kDone) {
      v.ok = false;
      v.msg = strf("job-engine cell finished %s: %s",
                   pipeline::job_state_name(r.state), r.error.c_str());
      v.replay = chaos::format_replay(cell.seed, scope.events());
    } else if (std::sscanf(r.report.summary.c_str(), "%llu", &syscalls) != 1 ||
               syscalls == 0) {
      v.ok = false;
      v.msg = strf("job-engine cell traced nothing (\"%s\")",
                   r.report.summary.c_str());
      v.replay = chaos::format_replay(cell.seed, scope.events());
    }
    return v;
  }

  pipeline::Campaign camp(copts);
  pipeline::ServerScan scan = camp.scan_target(*cell.spec);
  v.fired = scope.events().size();
  if (scan.result.instructions == 0 || scan.result.syscalls_traced == 0) {
    v.ok = false;
    v.msg = strf("funnel traced nothing (instructions=%llu syscalls=%llu)",
                 (unsigned long long)scan.result.instructions,
                 (unsigned long long)scan.result.syscalls_traced);
    v.replay = chaos::format_replay(cell.seed, scope.events());
  }
  return v;
}

// --- phase 2: property-suite helpers -----------------------------------------

// Shared world for the probe / ledger invariants: boot nginx_sim, plant a
// hidden region, hunt it with the §VI-C recv oracle. Returns nullopt when
// the world never became probeable (an injected fault killed startup —
// vacuous for a *probe* invariant), otherwise runs `verdict` on the result.
template <typename Fn>
std::optional<std::string> with_nginx_hunt(u64 seed, Fn&& verdict) {
  os::Kernel k;
  analysis::TargetProgram prog = targets::make_nginx();
  int pid = prog.instantiate(k, chaos::mix64(seed, 0x5eed));
  k.run(3'000'000);
  if (!k.proc(pid).alive()) return std::nullopt;

  gva_t hidden = targets::plant_hidden_region(k.proc(pid), 8 * 4096, 1);
  oracle::NginxRecvOracle oracle(k, pid, targets::kNginxPort);
  oracle::Scanner scanner(oracle, "chaosrun");
  scanner.hunt(hidden - 64 * 4096, hidden + 64 * 4096, 150,
               chaos::mix64(seed, 0x9e37));
  return verdict(k, pid, scanner);
}

std::optional<std::string> probe_no_crash_body(u64 seed) {
  return with_nginx_hunt(seed, [](os::Kernel& k, int pid,
                                  const oracle::Scanner& sc)
                                   -> std::optional<std::string> {
    const oracle::ScanStats& st = sc.stats();
    if (st.crashes != 0)
      return strf("scanner observed %llu probe-induced crashes",
                  (unsigned long long)st.crashes);
    if (!k.proc(pid).alive()) return std::string("target dead after hunt");
    u64 unhandled = k.proc(pid).machine().exception_stats().unhandled;
    if (unhandled != 0)
      return strf("%llu unhandled exceptions during probing",
                  (unsigned long long)unhandled);
    return std::nullopt;
  });
}

std::optional<std::string> ledger_audit_body(u64 seed) {
  obs::Ledger::global().clear();
  auto r = with_nginx_hunt(
      seed, [](os::Kernel&, int, const oracle::Scanner&)
                -> std::optional<std::string> { return std::nullopt; });
  if (r.has_value()) return r;
  obs::LedgerAudit audit = obs::audit_ledger(obs::Ledger::global());
  if (!audit.zero_crash())
    return strf("audit_ledger red: %llu crash events",
                (unsigned long long)audit.crash_events);
  return std::nullopt;
}

std::optional<std::string> plan_replay_no_crash_body(u64 seed) {
  // A synthesized-style hunt plan replayed end to end under injected
  // EFAULT/EINTR/short-I/O faults. Faults may starve the scan (the replay
  // then fails to complete — vacuous here), but probing must never crash
  // the target and the flight recorder must audit green.
  obs::Ledger::global().clear();

  plan::TargetBinding b;
  b.id = "chaosrun/nginx_sim";
  b.surface = plan::Surface::kNginxRecv;
  b.make_program = [] { return targets::make_nginx(); };
  b.port = targets::kNginxPort;
  b.aslr_seed = chaos::mix64(seed, 0x5eed);

  plan::ExploitPlan p;
  p.target_id = b.id;
  p.surface = plan::Surface::kNginxRecv;
  p.primitive = "recv(ptr) write-probe";
  p.region_pages = 8;
  p.scan.mode = plan::ScanMode::kHunt;
  p.scan.window_pages = 128;
  p.scan.max_probes = 150;
  p.scan.seed = chaos::mix64(seed, 0x9e37);
  p.scan.locate_base = false;
  p.leak.offsets = {8};
  p.hijack.offset = 32;

  plan::HarnessOptions h;
  h.pattern = 1;
  h.ledger_label = "chaosrun";
  plan::ReplayOutcome r = plan::replay_fresh(b, p, h);

  if (r.crashes != 0)
    return strf("plan replay observed %llu probe-induced crashes",
                (unsigned long long)r.crashes);
  if (r.unhandled != 0)
    return strf("%llu unhandled exceptions during plan replay",
                (unsigned long long)r.unhandled);
  obs::LedgerAudit audit = obs::audit_ledger(obs::Ledger::global());
  if (!audit.zero_crash())
    return strf("audit_ledger red after plan replay: %llu crash events",
                (unsigned long long)audit.crash_events);
  return std::nullopt;
}

std::optional<std::string> taint_eintr_body(u64 /*seed*/) {
  using isa::Assembler;
  using isa::Cond;
  using isa::Reg;
  Assembler a("srv");
  auto sys = [&a](os::Sys nr) {
    a.movi(Reg::R0, static_cast<i64>(nr));
    a.syscall();
  };
  a.label("e");
  sys(os::Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 8080);
  sys(os::Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  sys(os::Sys::kListen);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0);
  sys(os::Sys::kAccept);
  a.mov(Reg::R6, Reg::R0);
  a.label("retry");
  a.mov(Reg::R1, Reg::R6);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 64);
  sys(os::Sys::kRead);
  a.cmpi(Reg::R0, -os::kEINTR);
  a.jcc(Cond::kEq, "retry");
  a.lea_pc(Reg::R2, "buf");
  a.load(Reg::R7, Reg::R2, 8);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_zero("buf", 64);

  os::Kernel k;
  int pid = k.create_process("srv", vm::Personality::kLinux, 21);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  taint::TaintEngine taint(k, k.proc(pid));
  k.run(50'000);
  auto client = k.connect(8080);
  if (!client.has_value()) return std::string("connect to guest failed");
  k.run(50'000);
  client->send("AAAAAAAA");
  k.run(50'000);

  gva_t buf = k.proc(pid).machine().modules()[0].symbol_addr("buf");
  taint::Mask expected = taint::mask_for_color(client->color());
  if (taint.mem_taint(buf, 8) != expected)
    return strf("buffer label lost: got %llx want %llx",
                (unsigned long long)taint.mem_taint(buf, 8),
                (unsigned long long)expected);
  if (taint.reg_taint(isa::Reg::R7) != expected)
    return std::string("register label lost across EINTR retry");
  return std::nullopt;
}

std::optional<std::string> decoder_oob_body(u64 seed) {
  chaos::Gen gen(seed);
  // Exact-sized heap buffers: an out-of-bounds read is a real OOB the
  // nightly ASan build traps, not a silent over-read of a padded array.
  for (int i = 0; i < 256; ++i) {
    std::vector<u8> word = gen.bytes(isa::kInstrBytes);
    (void)isa::decode(word);
  }
  for (size_t n = 0; n < isa::kInstrBytes; ++n) {
    std::vector<u8> part = gen.bytes(n);
    if (isa::decode(part).has_value())
      return strf("decode claimed success on a %zu-byte span", n);
  }
  return std::nullopt;
}

u64 digest_scan(const pipeline::ServerScan& scan) {
  u64 h = chaos::mix64(0x5ca9, scan.result.syscalls_traced);
  h = chaos::mix64(h, scan.result.instructions);
  for (os::Sys s : scan.result.observed)
    h = chaos::mix64(h, static_cast<u64>(s));
  for (const analysis::Candidate& c : scan.result.candidates) {
    for (char ch : c.describe()) h = chaos::mix64(h, static_cast<u8>(ch));
    h = chaos::mix64(h, static_cast<u64>(c.verdict));
  }
  return h;
}

std::optional<std::string> cache_cold_warm_body(u64 seed) {
  static std::atomic<u64> cell_no{0};
  fs::path dir = fs::temp_directory_path() /
                 strf("crp-chaosrun-%d-%llu-%llu", (int)getpid(),
                      (unsigned long long)seed,
                      (unsigned long long)cell_no.fetch_add(1));
  fs::create_directories(dir);

  pipeline::CampaignOptions copts;
  copts.jobs = 1;
  copts.cache = true;
  copts.syscall.discover_budget = kSweepDiscoverBudget;
  copts.syscall.verify_budget = kSweepVerifyBudget;

  analysis::TargetProgram prog = targets::make_nginx();

  pipeline::ArtifactStore cold_store;
  cold_store.set_enabled(true);
  cold_store.set_dir(dir.string());
  pipeline::Campaign cold(copts, &cold_store);
  u64 cold_digest = digest_scan(cold.scan_program(prog));

  // Fresh store over the same directory: the disk tier (possibly corrupted
  // or truncated by the plan) is all the warm run can see. Detection must
  // fall back to recompute, never decode garbage.
  pipeline::ArtifactStore warm_store;
  warm_store.set_enabled(true);
  warm_store.set_dir(dir.string());
  pipeline::Campaign warm(copts, &warm_store);
  u64 warm_digest = digest_scan(warm.scan_program(prog));

  std::error_code ec;
  fs::remove_all(dir, ec);

  if (cold_digest != warm_digest)
    return strf("warm output diverged from cold (%016llx != %016llx)",
                (unsigned long long)warm_digest,
                (unsigned long long)cold_digest);
  return std::nullopt;
}

std::optional<std::string> task_order_body(u64 seed) {
  exec::ThreadPool pool(1);  // caller-is-worker: stays under the plan
  std::vector<u64> items(64);
  for (u64 i = 0; i < items.size(); ++i) items[i] = chaos::mix64(seed, i);
  std::vector<u64> out = exec::parallel_map(
      pool, items, [](size_t, const u64& v) { return chaos::mix64(v, 0x7ab); });
  for (u64 i = 0; i < items.size(); ++i)
    if (out[i] != chaos::mix64(items[i], 0x7ab))
      return strf("merged output wrong at index %llu", (unsigned long long)i);
  return std::nullopt;
}

// --- driver -------------------------------------------------------------------

InvariantRow run_property(const std::string& name, const Options& opt,
                          u32 points, const chaos::Property& body) {
  chaos::PropOptions popts;
  popts.seeds = opt.seeds;
  popts.base_seed = opt.base_seed;
  popts.rate = opt.rate;
  popts.points = points;
  chaos::PropResult res = chaos::check(name, popts, body);
  InvariantRow row;
  row.name = name;
  row.runs = res.runs;
  row.ok = res.ok();
  if (res.cex.has_value()) {
    row.detail = res.cex->message;
    row.replay = res.cex->replay;
  }
  return row;
}

bool parse_points(const char* spec, u32* out) {
  u32 mask = 0;
  std::string_view rest(spec);
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    u32 bits = chaos::points_from_name(item);
    if (bits == 0) return false;
    mask |= bits;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  *out = mask;
  return mask != 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: chaosrun [--seeds N] [--base-seed S] [--rate R]\n"
               "                [--points p1,p2,...] [--jobs J]\n"
               "                [--targets substr] [--list]\n");
  return 2;
}

}  // namespace

int chaosrun_main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return usage();
      opt.seeds = std::strtoull(v, nullptr, 0);
    } else if (arg == "--base-seed") {
      const char* v = next();
      if (!v) return usage();
      opt.base_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--rate") {
      const char* v = next();
      if (!v) return usage();
      opt.rate = static_cast<u32>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--points") {
      const char* v = next();
      if (!v || !parse_points(v, &opt.points)) return usage();
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return usage();
      opt.jobs = std::atoi(v);
    } else if (arg == "--targets") {
      const char* v = next();
      if (!v) return usage();
      opt.target_filter = v;
    } else if (arg == "--list") {
      opt.list = true;
    } else {
      return usage();
    }
  }
  if (opt.seeds == 0 || opt.rate == 0) return usage();

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  std::vector<const pipeline::TargetSpec*> servers;
  for (const pipeline::TargetSpec* s :
       reg.of_class(pipeline::TargetClass::kLinuxServer)) {
    if (opt.target_filter.empty() ||
        s->id.find(opt.target_filter) != std::string::npos)
      servers.push_back(s);
  }
  if (opt.list) {
    for (const pipeline::TargetSpec* s : servers)
      std::printf("%s\n", s->id.c_str());
    return 0;
  }
  if (servers.empty()) {
    std::fprintf(stderr, "chaosrun: no targets match '%s'\n",
                 opt.target_filter.c_str());
    return 2;
  }

  int jobs = exec::resolve_jobs(opt.jobs);
  std::printf("chaosrun: %llu seeds (base %llu, rate 1/%u), %zu targets, %d jobs\n\n",
              (unsigned long long)opt.seeds, (unsigned long long)opt.base_seed,
              opt.rate, servers.size(), jobs);

  // Phase 1: the target sweep. One cell per seed, targets assigned
  // round-robin (a full seeds x targets matrix would be dominated by the
  // heavier workloads — cherokee_sim alone replays ~30M instructions per
  // funnel — without probing more of the fault space). Cells shard over
  // the pool; ScopedPlan is thread-local, so each cell body is self-
  // contained on its worker.
  std::vector<Cell> cells;
  for (u64 i = 0; i < opt.seeds; ++i)
    cells.push_back(Cell{servers[i % servers.size()], opt.base_seed + i});

  exec::ThreadPool pool(jobs);
  std::vector<CellVerdict> verdicts = exec::parallel_map(
      pool, cells, [&](size_t, const Cell& c) { return run_cell(c, opt); });

  std::vector<InvariantRow> rows;
  u64 sweep_fired = 0;
  for (const pipeline::TargetSpec* s : servers) {
    InvariantRow row;
    row.name = "scan-funnel/" + s->id;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].spec != s) continue;
      ++row.runs;
      sweep_fired += verdicts[i].fired;
      if (row.ok && !verdicts[i].ok) {
        row.ok = false;
        row.detail = strf("seed %llu: %s", (unsigned long long)cells[i].seed,
                          verdicts[i].msg.c_str());
        row.replay = verdicts[i].replay;
      }
    }
    rows.push_back(std::move(row));
  }

  // Phase 2: the paper-level property suite (serial: check() owns the
  // thread-local plan while it sweeps and shrinks).
  rows.push_back(run_property("oracle-probe-no-crash", opt, chaos::kIoPoints,
                              probe_no_crash_body));
  rows.push_back(run_property("ledger-audit-green", opt, chaos::kIoPoints,
                              ledger_audit_body));
  rows.push_back(run_property("plan-replay-no-crash", opt, chaos::kIoPoints,
                              plan_replay_no_crash_body));
  rows.push_back(run_property("taint-eintr-labels", opt,
                              chaos::point_bit(chaos::Point::kSysEintr),
                              taint_eintr_body));
  rows.push_back(
      run_property("decoder-no-oob", opt, opt.points, decoder_oob_body));
  rows.push_back(run_property("cache-cold-warm-identical", opt,
                              chaos::kCachePoints, cache_cold_warm_body));
  rows.push_back(run_property("task-order-output-stable", opt,
                              chaos::point_bit(chaos::Point::kTaskOrder),
                              task_order_body));

  // The table.
  size_t width = 0;
  for (const InvariantRow& r : rows) width = std::max(width, r.name.size());
  std::printf("  %-*s  %6s  %s\n", (int)width, "invariant", "seeds", "result");
  bool all_ok = true;
  for (const InvariantRow& r : rows) {
    std::printf("  %-*s  %6llu  %s\n", (int)width, r.name.c_str(),
                (unsigned long long)r.runs, r.ok ? "PASS" : "FAIL");
    all_ok = all_ok && r.ok;
  }

  obs::Registry& metrics = obs::Registry::global();
  u64 injected = 0;
  for (u32 i = 0; i < chaos::kNumPoints; ++i) {
    std::string name = std::string("chaos.injected.") +
                       chaos::point_name(static_cast<chaos::Point>(i));
    std::replace(name.begin(), name.end(), '-', '_');
    injected += metrics.counter_value(name);
  }
  std::printf("\n  faults injected: %llu total (%llu in the target sweep)\n",
              (unsigned long long)injected, (unsigned long long)sweep_fired);

  if (!all_ok) {
    std::printf("\nFAILURES:\n");
    for (const InvariantRow& r : rows) {
      if (r.ok) continue;
      std::printf("  %s: %s\n", r.name.c_str(), r.detail.c_str());
      if (!r.replay.empty())
        std::printf("    reproduce: CRP_CHAOS=%s\n", r.replay.c_str());
    }
    return 1;
  }
  std::printf("\nall invariants held\n");
  return 0;
}

}  // namespace crp

int main(int argc, char** argv) { return crp::chaosrun_main(argc, argv); }
