// planrun — registry-wide exploit-plan synthesis + replay verification.
//
// Runs every registered discovery subject through its funnel with the
// exploit-plan epilogue enabled (CampaignOptions::plan): each target's
// verified evidence is synthesized into an ExploitPlan and the plan is
// replayed against a fresh instance of the target. Prints one row per
// target (surface, synthesis cache state, replay summary) and enforces the
// paper's contract over the whole sweep:
//
//   * every plan replays to completion (empty plans complete trivially);
//   * zero probe crashes and zero unhandled guest exceptions anywhere;
//   * obs::audit_ledger() stays green over the recorded probe events,
//     cross-checked against the oracle.scan.* counters.
//
// Exit status 0 iff all of the above hold. With --out DIR the encoded
// plans are written as <id>.plan files (CI uploads them as artifacts);
// a warm run (CRP_CACHE_DIR set) reports plan-cache hits.
//
// Usage: planrun [--targets substr] [--jobs J] [--out DIR]
//                [--window PAGES] [--region PAGES] [--list]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/ledger.h"
#include "obs/obs.h"
#include "pipeline/campaign.h"
#include "pipeline/registry.h"
#include "plan/plan.h"
#include "util/common.h"

namespace crp {
namespace {

namespace fs = std::filesystem;

struct Options {
  std::string targets;  // substring filter on registry ids
  std::string out_dir;  // write <id>.plan files here ("" = don't)
  int jobs = 0;
  u64 window_pages = 1024;
  u64 region_pages = 16;
  bool list = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: planrun [--targets substr] [--jobs J] [--out DIR]\n"
               "               [--window PAGES] [--region PAGES] [--list]\n");
}

std::string plan_file_name(const std::string& id) {
  std::string name = id;
  for (char& c : name)
    if (c == '/') c = '_';
  return name + ".plan";
}

int run(const Options& opt) {
  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  std::vector<pipeline::TargetSpec> picked;
  for (const pipeline::TargetSpec& s : reg.all())
    if (opt.targets.empty() || s.id.find(opt.targets) != std::string::npos)
      picked.push_back(s);
  if (opt.list) {
    for (const auto& s : picked) std::printf("%s\n", s.id.c_str());
    return 0;
  }
  if (picked.empty()) {
    std::fprintf(stderr, "planrun: no registry target matches \"%s\"\n",
                 opt.targets.c_str());
    return 2;
  }

  pipeline::CampaignOptions copts;
  copts.jobs = opt.jobs;
  copts.plan = true;
  copts.plan_window_pages = opt.window_pages;
  copts.plan_region_pages = opt.region_pages;
  pipeline::Campaign campaign(copts);

  if (!opt.out_dir.empty()) fs::create_directories(opt.out_dir);

  std::printf("%-26s %-14s %-8s %s\n", "target", "surface", "cache",
              "replay");
  int failures = 0;
  size_t cache_hits = 0;
  u64 crashes = 0, unhandled = 0;
  for (const pipeline::TargetSpec& spec : picked) {
    pipeline::TargetReport rep = campaign.run_target(spec);
    const plan::ExploitPlan& p = rep.exploit_plan;
    const plan::ReplayOutcome& r = rep.plan_replay;
    bool ok = r.completed && r.crashes == 0 && r.unhandled == 0;
    failures += ok ? 0 : 1;
    cache_hits += rep.plan_cache_hit ? 1 : 0;
    crashes += r.crashes;
    unhandled += r.unhandled;
    std::printf("%-26s %-14s %-8s %s\n", rep.id.c_str(),
                plan::surface_name(p.surface),
                rep.plan_cache_hit ? "hit" : "miss", r.summary().c_str());
    if (!opt.out_dir.empty()) {
      fs::path path = fs::path(opt.out_dir) / plan_file_name(rep.id);
      std::ofstream f(path, std::ios::binary);
      f << plan::encode_plan(p);
      if (!f.good()) {
        std::fprintf(stderr, "planrun: cannot write %s\n", path.c_str());
        return 2;
      }
    }
  }

  obs::LedgerAudit audit =
      obs::audit_ledger(obs::Ledger::global(), &obs::Registry::global());
  std::printf("\nplan-cache hits: %zu/%zu\n", cache_hits, picked.size());
  std::printf("probe crashes: %llu  unhandled exceptions: %llu\n",
              static_cast<unsigned long long>(crashes),
              static_cast<unsigned long long>(unhandled));
  std::printf("%s\n", audit.summary().c_str());

  if (failures > 0) {
    std::fprintf(stderr, "planrun: %d target(s) failed replay\n", failures);
    return 1;
  }
  if (!audit.ok() || !audit.zero_crash()) return 1;
  return 0;
}

}  // namespace
}  // namespace crp

int main(int argc, char** argv) {
  crp::Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        crp::usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--targets") opt.targets = next();
    else if (a == "--jobs") opt.jobs = std::atoi(next());
    else if (a == "--out") opt.out_dir = next();
    else if (a == "--window") opt.window_pages = std::strtoull(next(), nullptr, 0);
    else if (a == "--region") opt.region_pages = std::strtoull(next(), nullptr, 0);
    else if (a == "--list") opt.list = true;
    else {
      crp::usage();
      return 2;
    }
  }
  return crp::run(opt);
}
