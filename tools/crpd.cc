// crpd — the multi-tenant crash-resistance discovery daemon.
//
// Binds 127.0.0.1:<port> and serves discovery jobs over the line protocol
// in src/serve/protocol.h. Run it, then drive it with crpc:
//
//   crpd --port 17117 --workers 4 &
//   crpc --port 17117 run alice nginx-1.9.5
//
// Flags:
//   --port N            listen port (default 0 = ephemeral, printed)
//   --workers N         job-engine worker threads (default 2)
//   --max-active N      per-tenant active-job quota (default 8)
//   --rate-max N        per-tenant SUBMITs allowed per window (default 64)
//   --rate-window-ms N  admission rate window (default 1000)
//   --cache 0|1         shared artifact cache (default 1)
//   --jobs N            default intra-job verify parallelism (default 1)
//   --obs-port N        also serve the HTTP telemetry endpoint on this
//                       port (0 = ephemeral, printed): /metrics,
//                       /jobs.json, /tenants.json, /traces.json, ...
//   --step-deadline-ms N   watchdog: flag a step running longer than this
//                          (default 60000; 0 disables the watchdog)
//   --lease-deadline-ms N  watchdog: flag a lease held longer than this
//                          (default 30000)
//
// SIGINT/SIGTERM stop the daemon cleanly (in-flight cells release their
// kernels and cache leases on teardown).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/serve.h"
#include "serve/daemon.h"
#include "util/log.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: crpd [--port N] [--workers N] [--max-active N] "
               "[--rate-max N] [--rate-window-ms N] [--cache 0|1] [--jobs N]\n"
               "            [--obs-port N] [--step-deadline-ms N] "
               "[--lease-deadline-ms N]\n");
  std::exit(2);
}

long arg_num(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage();
  char* end = nullptr;
  long v = std::strtol(argv[++i], &end, 10);
  if (end == nullptr || *end != '\0') usage();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  crp::serve::DaemonOptions opts;
  opts.port = 0;
  bool obs_serve = false;
  crp::u16 obs_port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      opts.port = static_cast<crp::u16>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opts.workers = static_cast<int>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--max-active") == 0) {
      opts.tenant_max_active = static_cast<size_t>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--rate-max") == 0) {
      opts.admission_window_max = static_cast<crp::u64>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--rate-window-ms") == 0) {
      opts.admission_window_ns =
          static_cast<crp::u64>(arg_num(argc, argv, i)) * 1'000'000ull;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      opts.defaults.cache = arg_num(argc, argv, i) != 0;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      opts.defaults.jobs = static_cast<int>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--obs-port") == 0) {
      obs_serve = true;
      obs_port = static_cast<crp::u16>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--step-deadline-ms") == 0) {
      long ms = arg_num(argc, argv, i);
      opts.watchdog = ms > 0;
      opts.watchdog_step_deadline_ns = static_cast<crp::u64>(ms) * 1'000'000ull;
    } else if (std::strcmp(argv[i], "--lease-deadline-ms") == 0) {
      opts.watchdog_lease_deadline_ns =
          static_cast<crp::u64>(arg_num(argc, argv, i)) * 1'000'000ull;
    } else {
      usage();
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  crp::serve::Daemon daemon(opts);
  if (!daemon.start()) {
    std::fprintf(stderr, "crpd: failed to bind port %u\n", unsigned{opts.port});
    return 1;
  }
  // The smoke script greps this exact line for the bound port.
  std::printf("crpd listening on 127.0.0.1:%u\n", unsigned{daemon.port()});
  if (obs_serve) {
    crp::obs::serve::ObsServer& obs = crp::obs::serve::ObsServer::global();
    if (obs.start(obs_port))
      std::printf("crpd telemetry on http://127.0.0.1:%u/\n", unsigned{obs.port()});
    else
      std::fprintf(stderr, "crpd: failed to bind obs port %u\n", unsigned{obs_port});
  }
  std::fflush(stdout);

  while (!g_stop.load() && daemon.running())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  daemon.stop();
  std::printf("crpd: shut down\n");
  return 0;
}
