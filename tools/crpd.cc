// crpd — the multi-tenant crash-resistance discovery daemon.
//
// Binds 127.0.0.1:<port> and serves discovery jobs over the line protocol
// in src/serve/protocol.h. Run it, then drive it with crpc:
//
//   crpd --port 17117 --workers 4 &
//   crpc --port 17117 run alice nginx-1.9.5
//
// Flags:
//   --port N            listen port (default 0 = ephemeral, printed)
//   --workers N         job-engine worker threads (default 2)
//   --max-active N      per-tenant active-job quota (default 8)
//   --rate-max N        per-tenant SUBMITs allowed per window (default 64)
//   --rate-window-ms N  admission rate window (default 1000)
//   --cache 0|1         shared artifact cache (default 1)
//   --jobs N            default intra-job verify parallelism (default 1)
//
// SIGINT/SIGTERM stop the daemon cleanly (in-flight cells release their
// kernels and cache leases on teardown).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "serve/daemon.h"
#include "util/log.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: crpd [--port N] [--workers N] [--max-active N] "
               "[--rate-max N] [--rate-window-ms N] [--cache 0|1] [--jobs N]\n");
  std::exit(2);
}

long arg_num(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage();
  char* end = nullptr;
  long v = std::strtol(argv[++i], &end, 10);
  if (end == nullptr || *end != '\0') usage();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  crp::serve::DaemonOptions opts;
  opts.port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      opts.port = static_cast<crp::u16>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opts.workers = static_cast<int>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--max-active") == 0) {
      opts.tenant_max_active = static_cast<size_t>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--rate-max") == 0) {
      opts.admission_window_max = static_cast<crp::u64>(arg_num(argc, argv, i));
    } else if (std::strcmp(argv[i], "--rate-window-ms") == 0) {
      opts.admission_window_ns =
          static_cast<crp::u64>(arg_num(argc, argv, i)) * 1'000'000ull;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      opts.defaults.cache = arg_num(argc, argv, i) != 0;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      opts.defaults.jobs = static_cast<int>(arg_num(argc, argv, i));
    } else {
      usage();
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  crp::serve::Daemon daemon(opts);
  if (!daemon.start()) {
    std::fprintf(stderr, "crpd: failed to bind port %u\n", unsigned{opts.port});
    return 1;
  }
  // The smoke script greps this exact line for the bound port.
  std::printf("crpd listening on 127.0.0.1:%u\n", unsigned{daemon.port()});
  std::fflush(stdout);

  while (!g_stop.load() && daemon.running())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  daemon.stop();
  std::printf("crpd: shut down\n");
  return 0;
}
