// crpc — command-line client for the crpd discovery daemon.
//
//   crpc --port P run <tenant> <target> [k=v]...    submit, watch, print report
//   crpc --port P submit <tenant> <target> [k=v]... submit, print the job id
//   crpc --port P status <job-id>
//   crpc --port P cancel <job-id>
//   crpc --port P stats
//   crpc --port P ping
//   crpc --port P swarm [--clients N] [--dup N] [--tenants N]
//        [--watch-timeout SEC] [--trace] <target> [k=v]...
//
// Swarm mode is the load harness for the acceptance run: N client threads
// (each its own connection) submit concurrently; with --dup D every job in
// a group of D shares a (tenant, target, seed) tuple, so the shared
// ArtifactStore must collapse the group to one computation and every
// fetched report in the group must be byte-identical. After the join it
// prints a client-side SLO table: p50/p90/p99 submit->DONE latency per
// tenant. Every WATCH is bounded by --watch-timeout (SO_RCVTIMEO); a
// stream that never terminates becomes a counted failure instead of a
// hang. Exit is nonzero on any transport error, timeout, failed job, or
// report mismatch.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "util/log.h"

namespace {

using crp::serve::Client;
using crp::strf;
using crp::u16;
using crp::u64;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: crpc --port P <run|submit|status|cancel|stats|ping|swarm> ...\n"
               "       crpc --port P run <tenant> <target> [k=v]...\n"
               "       crpc --port P swarm [--clients N] [--dup N] [--tenants N]\n"
               "            [--watch-timeout SEC] [--trace] <target> [k=v]...\n");
  std::exit(2);
}

struct SwarmOptions {
  u16 port = 0;
  int clients = 8;
  int dup = 1;      // group size sharing one (tenant, seed) tuple
  int tenants = 4;  // tenant names cycle client_index % tenants
  int watch_timeout_s = 120;  // bound on any single recv; 0 = unbounded
  bool trace = false;         // pin trace=<group+1> on every submission
  std::string target;
  std::vector<std::string> knobs;
};

/// Nearest-rank percentile of a sorted sample (q in [0,1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

int run_swarm(const SwarmOptions& so) {
  std::atomic<int> failures{0};
  std::atomic<int> timeouts{0};
  std::atomic<int> cached{0};
  std::mutex mu;
  // group index -> first report seen (for byte-identity within a group)
  std::map<int, std::string> group_report;
  // tenant -> submit->DONE latencies (ms) for the SLO table
  std::map<std::string, std::vector<double>> latencies;
  std::vector<std::string> errors;

  auto worker = [&](int idx) {
    int group = idx / so.dup;
    std::string tenant = strf("tenant%d", (group % so.tenants));
    std::vector<std::string> knobs = so.knobs;
    // One seed per group: duplicates are exact resubmissions.
    knobs.push_back(strf("seed=%d", group));
    // One trace per group: duplicate submissions share a trace lane, so
    // /traces.json shows the coalescing (one lease_acquire, D-1 coalesces).
    if (so.trace) knobs.push_back(strf("trace=%d", group + 1));
    Client c;
    std::string err;
    if (!c.connect(so.port, &err)) {
      std::lock_guard<std::mutex> lk(mu);
      errors.push_back(strf("client %d: %s", idx, err.c_str()));
      failures.fetch_add(1);
      return;
    }
    if (so.watch_timeout_s > 0) c.set_recv_timeout_ms(so.watch_timeout_s * 1000);
    std::string report;
    bool was_cached = false;
    auto t0 = std::chrono::steady_clock::now();
    bool ok = c.run_job(tenant, so.target, knobs, &report, &was_cached, &err);
    auto t1 = std::chrono::steady_clock::now();
    if (!ok) {
      if (err.find("timed out") != std::string::npos) timeouts.fetch_add(1);
      std::lock_guard<std::mutex> lk(mu);
      errors.push_back(strf("client %d: %s", idx, err.c_str()));
      failures.fetch_add(1);
      return;
    }
    if (was_cached) cached.fetch_add(1);
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::lock_guard<std::mutex> lk(mu);
    latencies[tenant].push_back(ms);
    auto [it, inserted] = group_report.emplace(group, report);
    if (!inserted && it->second != report) {
      errors.push_back(strf("client %d: report diverges from group %d", idx, group));
      failures.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(so.clients));
  for (int i = 0; i < so.clients; ++i) threads.emplace_back(worker, i);
  for (std::thread& t : threads) t.join();

  for (const std::string& e : errors) std::fprintf(stderr, "swarm: %s\n", e.c_str());
  if (!latencies.empty()) {
    std::printf("%-12s %6s %10s %10s %10s\n", "tenant", "jobs", "p50_ms", "p90_ms",
                "p99_ms");
    for (auto& [tenant, ms] : latencies) {
      std::sort(ms.begin(), ms.end());
      std::printf("%-12s %6zu %10.2f %10.2f %10.2f\n", tenant.c_str(), ms.size(),
                  percentile(ms, 0.50), percentile(ms, 0.90), percentile(ms, 0.99));
    }
  }
  if (timeouts.load() > 0)
    std::fprintf(stderr, "swarm: %d WATCH stream(s) timed out after %ds\n",
                 timeouts.load(), so.watch_timeout_s);
  std::printf("swarm: %d clients, %d groups, %d cached, %d failures\n", so.clients,
              (so.clients + so.dup - 1) / so.dup, cached.load(), failures.load());
  return failures.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  u16 port = 0;
  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--port") == 0) {
    port = static_cast<u16>(std::strtoul(argv[i + 1], nullptr, 10));
    i += 2;
  }
  if (port == 0 || i >= argc) usage();
  std::string cmd = argv[i++];

  if (cmd == "swarm") {
    SwarmOptions so;
    so.port = port;
    while (i < argc && std::strncmp(argv[i], "--", 2) == 0) {
      if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
        so.clients = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--dup") == 0 && i + 1 < argc)
        so.dup = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc)
        so.tenants = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--watch-timeout") == 0 && i + 1 < argc)
        so.watch_timeout_s = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--trace") == 0)
        so.trace = true;
      else
        usage();
      ++i;
    }
    if (i >= argc || so.clients < 1 || so.dup < 1 || so.tenants < 1) usage();
    so.target = argv[i++];
    for (; i < argc; ++i) so.knobs.push_back(argv[i]);
    return run_swarm(so);
  }

  Client c;
  std::string err;
  if (!c.connect(port, &err)) {
    std::fprintf(stderr, "crpc: %s\n", err.c_str());
    return 1;
  }

  if (cmd == "ping") {
    std::string reply;
    if (!c.request("PING", &reply, &err)) {
      std::fprintf(stderr, "crpc: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s\n", reply.c_str());
    return reply == "PONG" ? 0 : 1;
  }
  if (cmd == "stats" || cmd == "status" || cmd == "cancel") {
    std::string line = cmd == "stats" ? "STATS"
                       : cmd == "status"
                           ? (i < argc ? strf("STATUS %s", argv[i]) : std::string())
                           : (i < argc ? strf("CANCEL %s", argv[i]) : std::string());
    if (line.empty()) usage();
    std::string reply;
    if (!c.request(line, &reply, &err)) {
      std::fprintf(stderr, "crpc: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s\n", reply.c_str());
    return reply.rfind("OK", 0) == 0 ? 0 : 1;
  }
  if (cmd == "submit" || cmd == "run") {
    if (i + 1 >= argc) usage();
    std::string tenant = argv[i++];
    std::string target = argv[i++];
    std::vector<std::string> knobs;
    for (; i < argc; ++i) knobs.push_back(argv[i]);
    if (cmd == "submit") {
      int code = 0;
      u64 id = c.submit(tenant, target, knobs, &code, &err);
      if (id == 0) {
        std::fprintf(stderr, "crpc: ERR %d %s\n", code, err.c_str());
        return 1;
      }
      std::printf("%llu\n", static_cast<unsigned long long>(id));
      return 0;
    }
    std::string report;
    bool was_cached = false;
    if (!c.run_job(tenant, target, knobs, &report, &was_cached, &err)) {
      std::fprintf(stderr, "crpc: %s\n", err.c_str());
      return 1;
    }
    fwrite(report.data(), 1, report.size(), stdout);
    if (was_cached) std::fprintf(stderr, "crpc: served from shared cache\n");
    return 0;
  }
  usage();
}
