// benchdiff — the bench regression gate.
//
// Compares two sets of BENCH_<name>.json snapshots (as written by
// obs::BenchSession) and exits nonzero when any tracked metric regressed
// past its threshold. Each side of the comparison is either
//   * a directory containing BENCH_*.json files (one per bench), or
//   * a combined baseline file (schema below), typically the committed
//     bench/baseline.json.
//
// Two metric classes with separate thresholds:
//   * virtual metrics (vm.instr_retired, sat.queries, oracle.scan.probes,
//     ...) are deterministic — tight default threshold (--threshold, 5%);
//     oracle.scan.crashes is special: ANY increase is a regression, because
//     zero crashes is the paper's headline invariant, not a perf number.
//   * bench.wall_ns is real time — noisy on shared CI hardware, so it gets
//     its own loose threshold (--wall-threshold, 30%) and --no-wall disables
//     it entirely (what CI uses).
//
// --write-baseline=OUT turns the tool into a snapshotter: it reads one
// input set and writes the combined baseline file, stamping meta from
// CRP_GIT_SHA / CRP_JOBS / CRP_CACHE when set.
//
// Baseline schema:
//   {"schema":1,"meta":{"git_sha":...,"jobs":...,"cache":...},
//    "benches":{"<name>":{"<metric>":<number>,...},...}}
//
// Exit codes: 0 ok / improved, 1 regression detected, 2 usage or I/O error.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/expo.h"
#include "util/common.h"

namespace fs = std::filesystem;
using crp::obs::expo::BenchDoc;
using crp::obs::expo::parse_bench_json;

namespace {

// name -> (metric -> value)
using BenchSet = std::map<std::string, std::map<std::string, double>>;

/// Deterministic (virtual-clock / counted) metrics: tight threshold.
const char* kVirtualKeys[] = {
    "vm.instr_retired",    "vm.exceptions",        "sat.queries",
    "sat.conflicts",       "oracle.scan.probes",   "oracle.scan.mapped_hits",
    "kernel.api.calls",    "analysis.pool.tasks",
};

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

// --- minimal parser for the combined baseline file ---------------------------

void skip_ws(const std::string& s, size_t* p) {
  while (*p < s.size() && std::isspace(static_cast<unsigned char>(s[*p]))) ++*p;
}

bool parse_str(const std::string& s, size_t* p, std::string* out) {
  skip_ws(s, p);
  if (*p >= s.size() || s[*p] != '"') return false;
  ++*p;
  out->clear();
  while (*p < s.size() && s[*p] != '"') {
    if (s[*p] == '\\' && *p + 1 < s.size()) ++*p;
    out->push_back(s[(*p)++]);
  }
  if (*p >= s.size()) return false;
  ++*p;
  return true;
}

bool parse_num(const std::string& s, size_t* p, double* out) {
  skip_ws(s, p);
  const char* start = s.c_str() + *p;
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start) return false;
  *p += static_cast<size_t>(end - start);
  *out = v;
  return true;
}

/// Parse a flat {"key": number, ...} object at *p (positioned on '{').
bool parse_flat_object(const std::string& s, size_t* p,
                       std::map<std::string, double>* out) {
  skip_ws(s, p);
  if (*p >= s.size() || s[*p] != '{') return false;
  ++*p;
  for (;;) {
    skip_ws(s, p);
    if (*p < s.size() && s[*p] == '}') {
      ++*p;
      return true;
    }
    std::string key;
    double v = 0;
    if (!parse_str(s, p, &key)) return false;
    skip_ws(s, p);
    if (*p >= s.size() || s[*p] != ':') return false;
    ++*p;
    if (!parse_num(s, p, &v)) return false;
    (*out)[key] = v;
    skip_ws(s, p);
    if (*p < s.size() && s[*p] == ',') ++*p;
  }
}

bool parse_baseline(const std::string& text, BenchSet* out) {
  size_t p = text.find("\"benches\":");
  if (p == std::string::npos) return false;
  p += 10;
  skip_ws(text, &p);
  if (p >= text.size() || text[p] != '{') return false;
  ++p;
  for (;;) {
    skip_ws(text, &p);
    if (p < text.size() && text[p] == '}') return true;
    std::string name;
    if (!parse_str(text, &p, &name)) return false;
    skip_ws(text, &p);
    if (p >= text.size() || text[p] != ':') return false;
    ++p;
    if (!parse_flat_object(text, &p, &(*out)[name])) return false;
    skip_ws(text, &p);
    if (p < text.size() && text[p] == ',') ++p;
  }
}

// --- input loading -----------------------------------------------------------

bool is_bench_file(const fs::path& p) {
  std::string f = p.filename().string();
  if (f.rfind("BENCH_", 0) != 0 || p.extension() != ".json") return false;
  if (f == "BENCH_SUMMARY.json") return false;
  if (f.find("_trace.json") != std::string::npos) return false;
  return true;
}

/// Best-effort extraction of meta.git_sha from a combined baseline file
/// (directories of BENCH_*.json carry no provenance — "unknown").
std::string parse_meta_git_sha(const std::string& text) {
  size_t meta = text.find("\"meta\"");
  size_t key = meta == std::string::npos ? std::string::npos
                                         : text.find("\"git_sha\"", meta);
  if (key == std::string::npos) return "unknown";
  size_t p = text.find(':', key);
  if (p == std::string::npos) return "unknown";
  ++p;
  std::string sha;
  if (!parse_str(text, &p, &sha) || sha.empty()) return "unknown";
  return sha;
}

bool load_set(const std::string& arg, BenchSet* out, std::string* git_sha = nullptr) {
  if (git_sha != nullptr) *git_sha = "unknown";
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(arg, ec))
      if (e.is_regular_file() && is_bench_file(e.path())) files.push_back(e.path());
    if (files.empty()) {
      std::fprintf(stderr, "benchdiff: no BENCH_*.json files in %s\n", arg.c_str());
      return false;
    }
    for (const fs::path& f : files) {
      std::string text;
      BenchDoc doc;
      if (!read_file(f.string(), &text) || !parse_bench_json(text, &doc)) {
        std::fprintf(stderr, "benchdiff: cannot parse %s\n", f.string().c_str());
        return false;
      }
      std::string name = doc.bench;
      if (name.empty()) {
        name = f.stem().string();
        if (name.rfind("BENCH_", 0) == 0) name = name.substr(6);
      }
      (*out)[name] = doc.flat;
    }
    return true;
  }
  std::string text;
  if (!read_file(arg, &text)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", arg.c_str());
    return false;
  }
  if (!parse_baseline(text, out)) {
    std::fprintf(stderr, "benchdiff: %s is not a baseline file\n", arg.c_str());
    return false;
  }
  if (git_sha != nullptr) *git_sha = parse_meta_git_sha(text);
  return true;
}

// --- baseline writing --------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : fallback;
}

bool write_baseline(const BenchSet& set, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "benchdiff: cannot write %s\n", path.c_str());
    return false;
  }
  f << "{\n\"schema\": 1,\n\"meta\": {";
  f << "\"git_sha\": \"" << json_escape(env_or("CRP_GIT_SHA", "unknown")) << "\", ";
  f << "\"jobs\": \"" << json_escape(env_or("CRP_JOBS", "default")) << "\", ";
  f << "\"cache\": \"" << json_escape(env_or("CRP_CACHE", "default")) << "\"},\n";
  f << "\"benches\": {";
  bool first_bench = true;
  for (const auto& [name, metrics] : set) {
    if (!first_bench) f << ",";
    first_bench = false;
    f << "\n  \"" << json_escape(name) << "\": {";
    bool first_metric = true;
    for (const auto& [key, value] : metrics) {
      if (!first_metric) f << ", ";
      first_metric = false;
      f << "\"" << json_escape(key) << "\": " << crp::strf("%.17g", value);
    }
    f << "}";
  }
  f << "\n}\n}\n";
  return true;
}

// --- comparison --------------------------------------------------------------

struct Options {
  double threshold = 0.05;       // virtual metrics
  double wall_threshold = 0.30;  // bench.wall_ns
  bool check_wall = true;
  std::vector<std::string> extra_keys;
};

/// One tracked metric of one bench after comparison.
struct MetricRow {
  std::string key;
  double old_v = 0;
  double new_v = 0;
  double rel = 0;  // relative delta vs old (1.0 when old == 0 and new != 0)
  bool regressed = false;
};

/// Compare one metric; appends a row and returns true on regression.
bool compare_key(std::vector<MetricRow>* rows, const std::string& key, double a, double b,
                 double threshold, bool any_increase_fails) {
  double delta = b - a;
  MetricRow row{key, a, b, a != 0.0 ? delta / a : (b != 0.0 ? 1.0 : 0.0), false};
  row.regressed = any_increase_fails ? delta > 0.0 : row.rel > threshold;
  rows->push_back(row);
  return rows->back().regressed;
}

/// On failure the full per-metric table is printed — one regressed metric is
/// rarely diagnosable without the neighbours (e.g. instr_retired up because
/// probes went up), so never report a failing name in isolation.
void print_bench_table(const std::string& bench, const std::vector<MetricRow>& rows) {
  std::fprintf(stderr, "bench %s:\n  %-28s %18s %18s %9s\n", bench.c_str(), "metric",
               "old", "new", "delta");
  for (const MetricRow& r : rows)
    std::fprintf(stderr, "  %-28s %18.17g %18.17g %+8.1f%%%s\n", r.key.c_str(), r.old_v,
                 r.new_v, r.rel * 100.0, r.regressed ? "  << REGRESSION" : "");
}

int compare_sets(const BenchSet& a, const BenchSet& b, const Options& opt,
                 const std::string& baseline_sha) {
  int regressions = 0;
  int compared = 0;
  for (const auto& [name, am] : a) {
    auto it = b.find(name);
    if (it == b.end()) {
      std::fprintf(stderr, "warning: bench '%s' missing from the new set\n",
                   name.c_str());
      continue;
    }
    const auto& bm = it->second;
    ++compared;
    auto both = [&](const std::string& key, double* av, double* bv) {
      auto ai = am.find(key);
      auto bi = bm.find(key);
      if (ai == am.end() || bi == bm.end()) return false;
      *av = ai->second;
      *bv = bi->second;
      return true;
    };
    std::vector<MetricRow> rows;
    int bench_regressions = 0;
    double av = 0, bv = 0;
    // The invariant metric: any crash increase fails regardless of size.
    if (both("oracle.scan.crashes", &av, &bv))
      bench_regressions += compare_key(&rows, "oracle.scan.crashes", av, bv, 0.0, true);
    for (const char* key : kVirtualKeys)
      if (both(key, &av, &bv))
        bench_regressions += compare_key(&rows, key, av, bv, opt.threshold, false);
    for (const std::string& key : opt.extra_keys)
      if (both(key, &av, &bv))
        bench_regressions += compare_key(&rows, key, av, bv, opt.threshold, false);
    if (opt.check_wall && both("bench.wall_ns", &av, &bv))
      bench_regressions +=
          compare_key(&rows, "bench.wall_ns", av, bv, opt.wall_threshold, false);
    if (bench_regressions > 0) print_bench_table(name, rows);
    for (const MetricRow& r : rows)
      if (!r.regressed && r.rel < -opt.threshold && bench_regressions == 0)
        std::fprintf(stderr, "improved   %s %s: %.17g -> %.17g (%+.1f%%)\n",
                     name.c_str(), r.key.c_str(), r.old_v, r.new_v, r.rel * 100.0);
    regressions += bench_regressions;
  }
  std::fprintf(stderr,
               "benchdiff: %d bench(es) compared, %d regression(s) (baseline git_sha %s)\n",
               compared, regressions, baseline_sha.c_str());
  if (regressions > 0) {
    // CRP_BENCHDIFF_ENFORCE=0 downgrades a regression to a warning exit —
    // for runners whose hardware differs from the baseline's. Unset or =1
    // keeps the gate hard (the CI profiled-table1 step sets =1 explicitly).
    const char* enforce = std::getenv("CRP_BENCHDIFF_ENFORCE");
    if (enforce != nullptr && enforce[0] == '0') {
      std::fprintf(stderr, "benchdiff: CRP_BENCHDIFF_ENFORCE=0 — advisory, exiting 0\n");
      return 0;
    }
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: benchdiff [options] <baseline> <new>\n"
               "       benchdiff --write-baseline=OUT <set>\n"
               "  <baseline>/<new>/<set>: a directory of BENCH_*.json files or a\n"
               "  combined baseline file (bench/baseline.json schema).\n"
               "options:\n"
               "  --threshold=F       max relative increase for virtual metrics "
               "(default 0.05)\n"
               "  --wall-threshold=F  max relative increase for bench.wall_ns "
               "(default 0.30)\n"
               "  --no-wall           ignore bench.wall_ns (CI default)\n"
               "  --key=NAME          track an extra metric (repeatable)\n"
               "env:\n"
               "  CRP_BENCHDIFF_ENFORCE  0 = regressions warn but exit 0;\n"
               "                         unset/1 = regressions exit 1\n"
               "exit: 0 ok, 1 regression, 2 usage/IO error\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string write_out;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      opt.threshold = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--wall-threshold=", 0) == 0) {
      opt.wall_threshold = std::atof(arg.c_str() + 17);
    } else if (arg == "--no-wall") {
      opt.check_wall = false;
    } else if (arg.rfind("--key=", 0) == 0) {
      opt.extra_keys.push_back(arg.substr(6));
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_out = arg.substr(17);
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "benchdiff: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }

  if (!write_out.empty()) {
    if (inputs.size() != 1) return usage();
    BenchSet set;
    if (!load_set(inputs[0], &set)) return 2;
    if (!write_baseline(set, write_out)) return 2;
    std::fprintf(stderr, "benchdiff: wrote baseline %s (%zu benches)\n",
                 write_out.c_str(), set.size());
    return 0;
  }

  if (inputs.size() != 2) return usage();
  BenchSet a, b;
  std::string baseline_sha;
  if (!load_set(inputs[0], &a, &baseline_sha) || !load_set(inputs[1], &b)) return 2;
  return compare_sets(a, b, opt, baseline_sha);
}
