// crptop — live campaign progress viewer.
//
// Polls a CRP_OBS_SERVE endpoint (default 127.0.0.1:9179) for /flat.json and
// /prof.json, and renders per-stage progress plus the top-K hot blocks,
// refreshing in place like top(1). With --json FILE it instead renders a
// PROF_<bench>.json report once from disk (post-mortem mode). With
// --daemon it polls the crpd serving endpoints instead — /jobs.json and
// /tenants.json — and renders live jobs, per-tenant SLO rows
// (p50/p90/p99 queue/run/total latency), and watchdog flags.
//
//   crptop                        poll 127.0.0.1:9179 once per second
//   crptop --port 9200 --top 15   other endpoint, more hot blocks
//   crptop --once                 single snapshot, no ANSI refresh
//   crptop --json PROF_table1.json   offline hot-block report
//   crptop --daemon --port 9200   live crpd jobs + tenant SLOs + watchdog
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/expo.h"
#include "util/common.h"

using crp::u16;
using crp::u64;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  u16 port = 9179;
  std::string json_file;  // offline mode when nonempty
  int top_k = 10;
  double interval_s = 1.0;
  bool once = false;
  bool daemon = false;  // poll /jobs.json + /tenants.json instead
};

int usage(const char* argv0, int rc) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--top K] [--interval SEC] [--once]\n"
               "       %s --json PROF_<bench>.json\n"
               "       %s --daemon [--host H] [--port P] [--interval SEC] [--once]\n",
               argv0, argv0, argv0);
  return rc;
}

/// One HTTP/1.0 GET against host:port; returns false on any socket error.
bool http_get(const std::string& host, u16 port, const std::string& path,
              std::string* body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t sent = ::send(fd, req.data() + off, req.size() - off, 0);
    if (sent <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(sent);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    resp.append(buf, static_cast<size_t>(got));
  }
  ::close(fd);
  size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return false;
  if (resp.rfind("HTTP/1.0 200", 0) != 0 && resp.rfind("HTTP/1.1 200", 0) != 0)
    return false;
  *body = resp.substr(hdr_end + 4);
  return true;
}

struct HotBlock {
  std::string block;
  u64 samples = 0;
  double share = 0.0;
};

/// Minimal scanner for the "hot_blocks" array of a profiler report. Only
/// needs the three fields report_json emits per entry; anything malformed is
/// skipped rather than fatal (a live endpoint can race its own writer).
std::vector<HotBlock> parse_hot_blocks(const std::string& json) {
  std::vector<HotBlock> out;
  size_t arr = json.find("\"hot_blocks\"");
  if (arr == std::string::npos) return out;
  size_t pos = json.find('[', arr);
  size_t end = json.find(']', arr);
  if (pos == std::string::npos || end == std::string::npos) return out;
  while (true) {
    size_t obj = json.find('{', pos);
    if (obj == std::string::npos || obj > end) break;
    size_t close = json.find('}', obj);
    if (close == std::string::npos) break;
    std::string entry = json.substr(obj, close - obj);
    HotBlock hb;
    size_t b = entry.find("\"block\"");
    if (b != std::string::npos) {
      size_t q0 = entry.find('"', entry.find(':', b));
      size_t q1 = q0 == std::string::npos ? q0 : entry.find('"', q0 + 1);
      if (q1 != std::string::npos) hb.block = entry.substr(q0 + 1, q1 - q0 - 1);
    }
    size_t s = entry.find("\"samples\"");
    if (s != std::string::npos)
      hb.samples = std::strtoull(entry.c_str() + entry.find(':', s) + 1, nullptr, 10);
    size_t sh = entry.find("\"share\"");
    if (sh != std::string::npos)
      hb.share = std::strtod(entry.c_str() + entry.find(':', sh) + 1, nullptr);
    if (!hb.block.empty()) out.push_back(std::move(hb));
    pos = close + 1;
  }
  return out;
}

u64 scan_u64(const std::string& json, const char* key) {
  size_t k = json.find(std::string("\"") + key + "\"");
  if (k == std::string::npos) return 0;
  return std::strtoull(json.c_str() + json.find(':', k) + 1, nullptr, 10);
}

void render_hot_blocks(const std::vector<HotBlock>& blocks, int top_k) {
  std::printf("  %-4s %-44s %12s %8s\n", "#", "hot block", "samples", "share");
  int rank = 0;
  for (const HotBlock& hb : blocks) {
    if (rank >= top_k) break;
    ++rank;
    std::printf("  %-4d %-44s %12llu %7.2f%%\n", rank, hb.block.c_str(),
                static_cast<unsigned long long>(hb.samples), hb.share * 100.0);
  }
  if (rank == 0) std::printf("  (no samples yet — is CRP_PROF set on the campaign?)\n");
}

/// Split the array following `"key"` into balanced-brace object strings.
/// Unlike parse_hot_blocks this handles nested objects (the tenant rows
/// embed {"count",...} histograms), tracking depth and skipping strings.
std::vector<std::string> scan_objects(const std::string& json, const char* key) {
  std::vector<std::string> out;
  size_t k = json.find(std::string("\"") + key + "\"");
  if (k == std::string::npos) return out;
  size_t pos = json.find('[', k);
  if (pos == std::string::npos) return out;
  int depth = 0;
  bool in_str = false;
  size_t obj_start = 0;
  for (size_t i = pos + 1; i < json.size(); ++i) {
    char c = json[i];
    if (in_str) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_str = false;
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(json.substr(obj_start, i - obj_start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

std::string scan_str(const std::string& json, const char* key) {
  size_t k = json.find(std::string("\"") + key + "\"");
  if (k == std::string::npos) return "";
  size_t q0 = json.find('"', json.find(':', k));
  size_t q1 = q0 == std::string::npos ? q0 : json.find('"', q0 + 1);
  return q1 == std::string::npos ? "" : json.substr(q0 + 1, q1 - q0 - 1);
}

/// "<p50>/<p90>/<p99>" of one embedded {"count","p50","p90","p99"} object.
std::string scan_hist(const std::string& row, const char* key) {
  size_t k = row.find(std::string("\"") + key + "\"");
  if (k == std::string::npos) return "-";
  size_t open = row.find('{', k);
  size_t close = row.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return "-";
  std::string h = row.substr(open, close - open + 1);
  return crp::strf("%llu/%llu/%llu", static_cast<unsigned long long>(scan_u64(h, "p50")),
                   static_cast<unsigned long long>(scan_u64(h, "p90")),
                   static_cast<unsigned long long>(scan_u64(h, "p99")));
}

void render_daemon(const Options& opt, const std::string& jobs,
                   const std::string& tenants, bool clear) {
  if (clear) std::printf("\x1b[H\x1b[2J");
  std::printf("crptop --daemon — http://%s:%u  (q: ctrl-c)\n\n", opt.host.c_str(),
              opt.port);
  std::printf("watchdog   flags %llu   step stalls %llu   lease stalls %llu\n",
              static_cast<unsigned long long>(scan_u64(tenants, "flags")),
              static_cast<unsigned long long>(scan_u64(tenants, "step_stalls")),
              static_cast<unsigned long long>(scan_u64(tenants, "lease_stalls")));
  std::printf("conn       accepted %llu   dropped %llu   out-buffer hwm %llu\n\n",
              static_cast<unsigned long long>(scan_u64(tenants, "accepted")),
              static_cast<unsigned long long>(scan_u64(tenants, "dropped")),
              static_cast<unsigned long long>(scan_u64(tenants, "out_buffer_hwm")));

  std::printf("  %-10s %6s %5s %5s %5s %6s %15s %15s %15s\n", "tenant", "active",
              "done", "fail", "coal", "admit", "queue p50/90/99", "run p50/90/99",
              "total p50/90/99");
  for (const std::string& row : scan_objects(tenants, "tenants")) {
    std::printf("  %-10s %6llu %5llu %5llu %5llu %6llu %15s %15s %15s\n",
                scan_str(row, "name").c_str(),
                static_cast<unsigned long long>(scan_u64(row, "active")),
                static_cast<unsigned long long>(scan_u64(row, "done")),
                static_cast<unsigned long long>(scan_u64(row, "failed")),
                static_cast<unsigned long long>(scan_u64(row, "coalesced")),
                static_cast<unsigned long long>(scan_u64(row, "admitted")),
                scan_hist(row, "queue_ms").c_str(), scan_hist(row, "run_ms").c_str(),
                scan_hist(row, "total_ms").c_str());
  }

  std::printf("\n  %-6s %-9s %-10s %-22s %5s %9s %8s %8s %s\n", "job", "state",
              "tenant", "target", "steps", "queue_ms", "run_ms", "total_ms", "flags");
  int shown = 0;
  std::vector<std::string> rows = scan_objects(jobs, "jobs");
  for (const std::string& row : rows) {
    if (shown >= 2 * opt.top_k) break;  // newest-last list; cap the render
    ++shown;
    std::string flags;
    if (scan_u64(row, "parked") != 0) flags += "parked ";
    if (scan_u64(row, "step_stalled") != 0) flags += "STEP-STALL ";
    if (scan_u64(row, "lease_stalled") != 0) flags += "LEASE-STALL ";
    std::string step = scan_str(row, "step");
    if (!step.empty()) flags += "@" + step;
    std::printf("  %-6llu %-9s %-10s %-22s %2llu/%-2llu %9llu %8llu %8llu %s\n",
                static_cast<unsigned long long>(scan_u64(row, "id")),
                scan_str(row, "state").c_str(), scan_str(row, "tenant").c_str(),
                scan_str(row, "target").c_str(),
                static_cast<unsigned long long>(scan_u64(row, "steps_done")),
                static_cast<unsigned long long>(scan_u64(row, "steps_total")),
                static_cast<unsigned long long>(scan_u64(row, "queue_ms")),
                static_cast<unsigned long long>(scan_u64(row, "run_ms")),
                static_cast<unsigned long long>(scan_u64(row, "total_ms")),
                flags.c_str());
  }
  if (rows.empty()) std::printf("  (no jobs yet)\n");
}

int run_daemon(const Options& opt) {
  bool ever_connected = false;
  for (;;) {
    std::string jobs, tenants;
    bool ok = http_get(opt.host, opt.port, "/jobs.json", &jobs) &&
              http_get(opt.host, opt.port, "/tenants.json", &tenants);
    if (!ok) {
      if (!ever_connected)
        std::fprintf(stderr,
                     "crptop: cannot reach http://%s:%u (crpd --obs-port not set?)\n",
                     opt.host.c_str(), opt.port);
      if (opt.once || !ever_connected) return 1;
      std::printf("(endpoint gone — daemon stopped?)\n");
      return 0;
    }
    ever_connected = true;
    render_daemon(opt, jobs, tenants, !opt.once);
    if (opt.once) return 0;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(opt.interval_s * 1e6)));
  }
}

int run_offline(const Options& opt) {
  std::ifstream f(opt.json_file);
  if (!f) {
    std::fprintf(stderr, "crptop: cannot read %s\n", opt.json_file.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  std::string json = ss.str();
  std::printf("crptop — %s\n", opt.json_file.c_str());
  std::printf("interval=%llu  samples=%llu\n\n",
              static_cast<unsigned long long>(scan_u64(json, "interval")),
              static_cast<unsigned long long>(scan_u64(json, "samples")));
  render_hot_blocks(parse_hot_blocks(json), opt.top_k);
  return 0;
}

double get(const crp::obs::expo::BenchDoc& doc, const std::string& key) {
  return doc.get(key, 0.0);
}

void render_live(const Options& opt, const crp::obs::expo::BenchDoc& doc,
                 const std::vector<HotBlock>& blocks, u64 prof_samples, bool clear) {
  if (clear) std::printf("\x1b[H\x1b[2J");
  std::printf("crptop — http://%s:%u  (q: ctrl-c)\n\n", opt.host.c_str(), opt.port);
  double run = get(doc, "pipeline.campaign.targets_run");
  double total = get(doc, "pipeline.campaign.targets_total");
  std::printf("campaign   targets %.0f/%.0f   instr %.3gM   probes %.0f   crashes %.0f\n",
              run, total, get(doc, "vm.instr_retired") / 1e6,
              get(doc, "oracle.scan.probes"), get(doc, "oracle.scan.crashes"));
  std::printf("stages     pool tasks %.0f   sat queries %.0f   filter evals %.0f   "
              "taint bytes hwm %.0f\n",
              get(doc, "analysis.pool.tasks"), get(doc, "sat.queries"),
              get(doc, "vm.filter_evals"), get(doc, "taint.tainted_bytes_hwm"));
  std::printf("chaos      injected %.0f   cache corrupt %.0f   kernel efaults %.0f\n\n",
              get(doc, "chaos.injected.sys_efault") + get(doc, "chaos.injected.sys_eintr") +
                  get(doc, "chaos.injected.short_read") +
                  get(doc, "chaos.injected.short_write") + get(doc, "chaos.injected.vm_av"),
              get(doc, "pipeline.cache.corrupt"), get(doc, "kernel.copy_user.efaults"));
  std::printf("profiler   %llu samples\n", static_cast<unsigned long long>(prof_samples));
  render_hot_blocks(blocks, opt.top_k);
}

int run_live(const Options& opt) {
  bool ever_connected = false;
  for (;;) {
    std::string flat, prof;
    bool ok = http_get(opt.host, opt.port, "/flat.json", &flat);
    if (ok) http_get(opt.host, opt.port, "/prof.json", &prof);
    if (!ok) {
      if (!ever_connected)
        std::fprintf(stderr, "crptop: cannot reach http://%s:%u (CRP_OBS_SERVE not set?)\n",
                     opt.host.c_str(), opt.port);
      if (opt.once || !ever_connected) return 1;
      std::printf("(endpoint gone — campaign finished?)\n");
      return 0;
    }
    ever_connected = true;
    // /flat.json is the BENCH-file metrics shape minus the wrapper; wrap it
    // so parse_bench_json accepts it verbatim.
    crp::obs::expo::BenchDoc doc;
    std::string wrapped =
        "{\n\"bench\": \"live\",\n\"schema\": 1,\n\"metrics\": " + flat + "\n}\n";
    if (!crp::obs::expo::parse_bench_json(wrapped, &doc)) {
      std::fprintf(stderr, "crptop: malformed /flat.json\n");
      return 1;
    }
    render_live(opt, doc, parse_hot_blocks(prof), scan_u64(prof, "samples"), !opt.once);
    if (opt.once) return 0;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(opt.interval_s * 1e6)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--host") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0], 2);
      opt.host = v;
    } else if (a == "--port") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0], 2);
      opt.port = static_cast<u16>(std::atoi(v));
    } else if (a == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0], 2);
      opt.json_file = v;
    } else if (a == "--top") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0], 2);
      opt.top_k = std::atoi(v);
    } else if (a == "--interval") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0], 2);
      opt.interval_s = std::atof(v);
    } else if (a == "--once") {
      opt.once = true;
    } else if (a == "--daemon") {
      opt.daemon = true;
    } else if (a == "-h" || a == "--help") {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "crptop: unknown flag %s\n", a.c_str());
      return usage(argv[0], 2);
    }
  }
  if (!opt.json_file.empty()) return run_offline(opt);
  return opt.daemon ? run_daemon(opt) : run_live(opt);
}
