// Table III reproduction: unique exception filter functions per DLL before
// and after symbolic execution, for both the 64-bit and 32-bit populations.
//
// Thin driver over the pipeline layer: both corpora come from the
// TargetRegistry (corpus/dll_x64, corpus/dll_x32), are analyzed purely
// statically through the Campaign's extract -> classify -> xref stages, and
// repeated classifications of an identical corpus are answered from the
// content-addressed ArtifactStore.
//
// Paper Table III highlights: "only 4 of 126 filter functions remain in
// sechost.dll, while 9 of 129 are left in msvcrt.dll"; system-wide, symbolic
// execution drops the majority of filters.

#include <chrono>
#include <cstdio>

#include "exec/thread_pool.h"
#include "obs/bench_support.h"
#include "pipeline/campaign.h"

namespace {

double wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<crp::analysis::ModuleSehStats> analyze(
    crp::pipeline::Campaign& campaign, const crp::pipeline::TargetSpec& spec) {
  using namespace crp;
  std::vector<std::vector<u8>> blobs = pipeline::Campaign::dll_blobs(spec);
  double t0 = wall_ms();
  pipeline::SehCorpus corpus = campaign.extract(blobs);
  pipeline::ClassifyOutcome cls = campaign.classify(corpus);
  // stderr only: stdout must be bit-identical across CRP_JOBS values.
  fprintf(stderr, "[exec] extract+classify %.1f ms (jobs=%d, cache %s)\n",
          wall_ms() - t0, exec::resolve_jobs(), cls.cache_hit ? "hit" : "miss");
  printf("  machine population: %zu handlers, %zu filters, %llu SAT queries\n",
         corpus.ex.handlers().size(), corpus.ex.unique_filters().size(),
         static_cast<unsigned long long>(cls.sat_queries));
  return campaign.xref(corpus, cls, nullptr, nullptr);
}

}  // namespace

int main() {
  crp::obs::BenchSession obs_session("table3");
  using namespace crp;

  printf("bench_table3 — Table III: exception filters before/after symbolic execution\n");
  printf("============================================================================\n\n");

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* x64_spec = reg.find("corpus/dll_x64");
  const pipeline::TargetSpec* x32_spec = reg.find("corpus/dll_x32");
  CRP_CHECK(x64_spec != nullptr && x32_spec != nullptr);
  pipeline::Campaign campaign;

  printf("x64 population:\n");
  auto x64 = analyze(campaign, *x64_spec);
  printf("x32 population:\n");
  auto x32 = analyze(campaign, *x32_spec);
  printf("\n%s\n", pipeline::ReportStage::table3(x64, x32).c_str());

  printf("Paper anchors: sechost 126 -> 4, msvcrt 129 -> 9; symbolic execution\n");
  printf("\"significantly reduces the set of exception filters\" — the after/before\n");
  printf("ratio should sit well under 30%% for most system DLLs.\n");
  return 0;
}
