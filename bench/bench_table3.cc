// Table III reproduction: unique exception filter functions per DLL before
// and after symbolic execution, for both the 64-bit and 32-bit populations.
//
// Both corpora are analyzed purely statically (parse scope tables out of the
// serialized images, symbolically execute every unique filter, ask the SAT
// backend whether any path accepts an access violation).
//
// Paper Table III highlights: "only 4 of 126 filter functions remain in
// sechost.dll, while 9 of 129 are left in msvcrt.dll"; system-wide, symbolic
// execution drops the majority of filters.

#include <chrono>
#include <cstdio>

#include "analysis/report.h"
#include "analysis/seh_analysis.h"
#include "exec/thread_pool.h"
#include "obs/bench_support.h"
#include "targets/dll_corpus.h"

namespace {

double wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<crp::analysis::ModuleSehStats> analyze(
    const std::vector<crp::targets::DllSpec>& specs, crp::u64 seed) {
  using namespace crp;
  analysis::SehExtractor ex;
  std::vector<std::vector<u8>> blobs;
  for (const auto& spec : specs) {
    auto dll = targets::generate_dll(spec, seed);
    blobs.push_back(isa::write_image(*dll.image));
  }
  double t0 = wall_ms();
  CRP_CHECK(ex.add_images_bytes(blobs));
  analysis::FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  // stderr only: stdout must be bit-identical across CRP_JOBS values.
  fprintf(stderr, "[exec] extract+classify %.1f ms (jobs=%d)\n", wall_ms() - t0,
          exec::resolve_jobs());
  printf("  machine population: %zu handlers, %zu filters, %llu SAT queries\n",
         ex.handlers().size(), ex.unique_filters().size(),
         static_cast<unsigned long long>(fc.sat_queries()));
  return analysis::CoverageXref::compute(ex, filters, nullptr, nullptr);
}

}  // namespace

int main() {
  crp::obs::BenchSession obs_session("table3");
  using namespace crp;

  printf("bench_table3 — Table III: exception filters before/after symbolic execution\n");
  printf("============================================================================\n\n");

  printf("x64 population:\n");
  auto x64 = analyze(targets::paper_dll_specs(), 0x7AB1E3);
  printf("x32 population:\n");
  auto x32 = analyze(targets::paper_dll_specs_x32(), 0x7AB1E3 ^ 32);
  printf("\n%s\n", analysis::render_table3(x64, x32).c_str());

  printf("Paper anchors: sechost 126 -> 4, msvcrt 129 -> 9; symbolic execution\n");
  printf("\"significantly reduces the set of exception filters\" — the after/before\n");
  printf("ratio should sit well under 30%% for most system DLLs.\n");
  return 0;
}
