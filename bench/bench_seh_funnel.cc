// §V-C reproduction: the system-wide exception-handler funnel over 187 DLLs.
//
// Paper numbers: 6,745 C-specific handlers in 187 DLLs, using 5,751 unique
// filter functions; after symbolic execution 808 filters remain AV-capable,
// used by 1,797 handlers; cross-referencing against the browsing trace
// leaves 385 guarded code parts actually executed (736,512 trigger events).
//
// Thin driver over the pipeline layer: the corpus is the TargetRegistry's
// browser/iexplore_sys187 subject (the 10 named DLLs + 177 fillers,
// matching composition), the funnel runs through the Campaign's extract ->
// classify -> xref stages (classification cached in the ArtifactStore);
// all funnel numbers below are measured by the pipeline.

#include <chrono>
#include <cstdio>

#include "analysis/guard_audit.h"
#include "exec/thread_pool.h"
#include "obs/bench_support.h"
#include "pipeline/campaign.h"
#include "trace/tracer.h"

namespace {
double wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  crp::obs::BenchSession obs_session("seh_funnel");
  using namespace crp;

  printf("bench_seh_funnel — §V-C: system-wide SEH funnel (187 DLLs)\n");
  printf("===========================================================\n\n");

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* spec = reg.find("browser/iexplore_sys187");
  CRP_CHECK(spec != nullptr);
  pipeline::Campaign campaign;

  os::Kernel kernel;
  targets::BrowserSim browser(kernel, pipeline::browser_options(*spec));
  trace::Tracer tracer(kernel, browser.proc());

  printf("[1] static extraction over %zu DLL images...\n", browser.dlls().size());
  std::vector<std::vector<u8>> blobs = pipeline::Campaign::image_blobs(browser.dlls());
  double t0 = wall_ms();
  pipeline::SehCorpus corpus = campaign.extract(blobs);
  double t1 = wall_ms();
  printf("    %zu C-specific handlers, %zu unique filter functions\n\n",
         corpus.ex.handlers().size(), corpus.ex.unique_filters().size());

  printf("[2] symbolic execution of every filter...\n");
  pipeline::ClassifyOutcome cls = campaign.classify(corpus);
  // stderr only: stdout must be bit-identical across CRP_JOBS values.
  fprintf(stderr,
          "[exec] extract %.1f ms, classify %.1f ms (jobs=%d, memo hits=%llu, cache %s)\n",
          t1 - t0, wall_ms() - t1, exec::resolve_jobs(),
          static_cast<unsigned long long>(cls.memo_hits),
          cls.cache_hit ? "hit" : "miss");
  size_t av_filters = 0, av_handlers = 0, manual = 0;
  for (const auto& f : cls.filters) {
    if (f.offset == isa::kFilterCatchAll) continue;
    if (f.verdict == analysis::FilterVerdict::kAcceptsAv) {
      ++av_filters;
      av_handlers += f.handlers_using;
    }
    if (f.verdict == analysis::FilterVerdict::kNeedsManual) ++manual;
  }
  // Catch-all handlers are AV-capable by construction.
  size_t catch_all_handlers = 0;
  for (const auto& h : corpus.ex.handlers()) catch_all_handlers += h.catch_all ? 1 : 0;
  printf("    %zu AV-capable filters (+%zu needing manual review),\n", av_filters, manual);
  printf("    used by %zu handlers (+%zu catch-all handlers)\n\n", av_handlers,
         catch_all_handlers);

  printf("[3] browsing workload + coverage cross-reference...\n");
  browser.crawl();
  for (u64 site = 0; site < 500; ++site) browser.visit_page(site);
  browser.pump(2'500'000'000);
  auto stats = campaign.xref(corpus, cls, &tracer, &browser.proc());
  size_t on_path = 0;
  u64 events = 0;
  size_t handlers_total = 0, av_capable_sites = 0;
  for (const auto& s : stats) {
    on_path += s.guarded_on_path;
    events += s.trigger_events;
    handlers_total += s.guarded_total;
    av_capable_sites += s.guarded_av_capable;
  }

  printf("\nFunnel (measured vs paper):\n");
  printf("  DLLs analyzed:                 %4zu   (paper: 187)\n", browser.dlls().size());
  printf("  C-specific handlers:           %4zu   (paper: 6745)\n", handlers_total);
  printf("  unique filter functions:       %4zu   (paper: 5751)\n",
         corpus.ex.unique_filters().size());
  printf("  AV-capable filters after SB:   %4zu   (paper: 808)\n", av_filters);
  printf("  handlers using them:           %4zu   (paper: 1797, incl. catch-all)\n",
         av_handlers + catch_all_handlers);
  printf("  AV-capable guarded locations:  %4zu\n", av_capable_sites);
  printf("  executed guarded code parts:   %4zu   (paper: 385)\n", on_path);
  printf("  trigger events on path:     %7llu   (paper: 736512)\n",
         static_cast<unsigned long long>(events));

  // §VII-B static refinement: which AV-capable guards protect an actual
  // dereference (attack candidates) vs. gratuitously broad filters
  // (defender's narrowing worklist).
  analysis::GuardAuditSummary audit = analysis::audit_guards(corpus.ex, cls.filters);
  printf("\nGuard audit (CFG-based, §VII-B):\n");
  printf("  deref-guard candidates:        %4zu\n", audit.deref_guards);
  printf("  gratuitously broad filters:    %4zu\n", audit.gratuitous);
  printf("  properly narrow guards:        %4zu\n", audit.narrow);
  return 0;
}
