// Table I reproduction: the syscall candidate matrix over the five server
// simulacra (Nginx, Cherokee, Lighttpd, Memcached, PostgreSQL).
//
// Thin driver over the pipeline layer: the subjects come from the
// TargetRegistry, the funnel (taint trace -> candidate selection -> verify)
// runs inside pipeline::Campaign, and repeated runs are answered from the
// content-addressed ArtifactStore (set CRP_CACHE_DIR for cross-process
// warmth, CRP_CACHE=0 to bypass). Progress lines are printed *after* the
// scans from the merged results, so stdout is byte-identical for any job
// count and any cache state.
//
// Paper ground truth (§V-A):
//   usable (+): recv@nginx, epoll_wait@cherokee, read@lighttpd,
//               read@memcached, epoll_wait@postgresql
//   false positive: epoll_wait@memcached (connection thread dies silently)
//   everything else observed: invalid (crash or not attacker-steerable).

#include <cstdio>
#include <map>

#include "analysis/report.h"
#include "obs/bench_support.h"
#include "pipeline/campaign.h"

int main() {
  crp::obs::BenchSession obs_session("table1");
  using namespace crp;

  printf("bench_table1 — Table I: syscall-based crash-resistant primitives\n");
  printf("=================================================================\n\n");

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  pipeline::Campaign campaign;
  std::vector<pipeline::ServerScan> scans =
      campaign.scan_targets(reg.of_class(pipeline::TargetClass::kLinuxServer));

  std::map<std::string, analysis::SyscallScanResult> results;
  std::vector<std::string> names;
  int usable = 0, fps = 0;

  for (pipeline::ServerScan& scan : scans) {
    printf("scanning %-14s ...", scan.name.c_str());
    int u = 0, f = 0;
    for (const auto& c : scan.result.candidates) {
      u += c.verdict == analysis::Verdict::kUsable ? 1 : 0;
      f += c.verdict == analysis::Verdict::kFalsePositive ? 1 : 0;
    }
    printf(" %zu observed, %zu candidates, %d usable, %d false-positive\n",
           scan.result.observed.size(), scan.result.candidates.size(), u, f);
    usable += u;
    fps += f;
    names.push_back(scan.name);
    results[scan.name] = std::move(scan.result);
  }

  printf("\nTable I (measured)\n");
  printf("  (+) usable   FP false positive   +- observed/invalid   . not on path\n\n");
  printf("%s\n", pipeline::ReportStage::table1(names, results).c_str());

  printf("Paper Table I (expected pattern): one usable primitive per server —\n");
  printf("nginx:recv, cherokee:epoll_wait, lighttpd:read, memcached:read,\n");
  printf("postgresql:epoll_wait — plus memcached:epoll_wait as a false positive.\n");
  printf("Measured: %d usable, %d false positive.\n", usable, fps);
  return 0;
}
