// Table I reproduction: the syscall candidate matrix over the five server
// simulacra (Nginx, Cherokee, Lighttpd, Memcached, PostgreSQL).
//
// For each server: run its test suite under byte-granular taint tracking,
// collect EFAULT-capable syscalls with pointer arguments, then verify each
// candidate by corrupting the pointer (register + live memory home) in a
// fresh instance and observing process + service health.
//
// Paper ground truth (§V-A):
//   usable (+): recv@nginx, epoll_wait@cherokee, read@lighttpd,
//               read@memcached, epoll_wait@postgresql
//   false positive: epoll_wait@memcached (connection thread dies silently)
//   everything else observed: invalid (crash or not attacker-steerable).

#include <cstdio>
#include <map>

#include "analysis/report.h"
#include "analysis/syscall_scanner.h"
#include "obs/bench_support.h"
#include "targets/servers.h"

int main() {
  crp::obs::BenchSession obs_session("table1");
  using namespace crp;

  printf("bench_table1 — Table I: syscall-based crash-resistant primitives\n");
  printf("=================================================================\n\n");

  std::map<std::string, analysis::SyscallScanResult> results;
  std::vector<std::string> names;
  int usable = 0, fps = 0;

  for (analysis::TargetProgram& target : targets::all_servers()) {
    printf("scanning %-14s ...", target.name.c_str());
    fflush(stdout);
    analysis::SyscallScanner scanner(target);
    analysis::SyscallScanResult res = scanner.run_full();
    int u = 0, f = 0;
    for (const auto& c : res.candidates) {
      u += c.verdict == analysis::Verdict::kUsable ? 1 : 0;
      f += c.verdict == analysis::Verdict::kFalsePositive ? 1 : 0;
    }
    printf(" %zu observed, %zu candidates, %d usable, %d false-positive\n",
           res.observed.size(), res.candidates.size(), u, f);
    usable += u;
    fps += f;
    names.push_back(target.name);
    results[target.name] = std::move(res);
  }

  printf("\nTable I (measured)\n");
  printf("  (+) usable   FP false positive   +- observed/invalid   . not on path\n\n");
  printf("%s\n", analysis::render_table1(names, results).c_str());

  printf("Paper Table I (expected pattern): one usable primitive per server —\n");
  printf("nginx:recv, cherokee:epoll_wait, lighttpd:read, memcached:read,\n");
  printf("postgresql:epoll_wait — plus memcached:epoll_wait as a false positive.\n");
  printf("Measured: %d usable, %d false positive.\n", usable, fps);
  return 0;
}
