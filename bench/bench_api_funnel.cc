// §V-B reproduction: the Windows API funnel.
//
//   20,672 documented APIs
//     -> 11,521 with at least one pointer argument (55.7%)
//     -> 400 crash-resistant under invalid-pointer fuzzing
//     -> 25 observed on the browsing execution path
//     -> 12 triggerable from a JavaScript context
//     -> 0 with an attacker-controllable pointer argument
//        (exclusions: stack-allocated / dereferenced-outside / volatile heap)
//
// Thin driver over the pipeline layer: the population comes from the
// TargetRegistry (corpus/winapi), fuzzing runs through the Campaign's
// ApiFuzzStage (answered from the content-addressed ArtifactStore on a
// repeat), call-site reduction through CallSiteTraceStage. Every narrowing
// step below is *measured*: black-box fuzzing, dynamic tracing of a
// browsing workload, call-stack attribution, pointer classification.

#include <chrono>
#include <cstdio>

#include "exec/thread_pool.h"
#include "obs/bench_support.h"
#include "pipeline/campaign.h"
#include "trace/tracer.h"
#include "util/rng.h"

namespace {
double wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  crp::obs::BenchSession obs_session("api_funnel");
  using namespace crp;

  printf("bench_api_funnel — §V-B: Windows API crash-resistance funnel\n");
  printf("=============================================================\n\n");

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* spec = reg.find("corpus/winapi");
  CRP_CHECK(spec != nullptr);
  pipeline::Campaign campaign;

  os::Kernel kernel;
  pipeline::Campaign::materialize_api_corpus(*spec, kernel);

  // Stage 1: fuzz the whole surface.
  printf("[1] fuzzing %u APIs with invalid pointers (3 probes per pointer arg)...\n",
         spec->api.total);
  double t0 = wall_ms();
  pipeline::ApiFuzzStage::Out fuzzed = campaign.fuzz_apis(kernel);
  const analysis::ApiFuzzResult& fuzz = fuzzed.result;
  // stderr only: stdout must be bit-identical across CRP_JOBS values.
  fprintf(stderr, "[exec] fuzz %.1f ms (jobs=%d, cache %s)\n", wall_ms() - t0,
          exec::resolve_jobs(), fuzzed.cache_hit ? "hit" : "miss");
  printf("    %u with pointer args, %zu crash-resistant, %u probes\n\n",
         fuzz.with_pointer_args, fuzz.crash_resistant.size(), fuzz.probes_executed);

  // Stage 2: which of those appear on a browsing execution path? The
  // browser calls a uniform sample of the population through generated call
  // stubs (≈6%, the rate that puts ~25 crash-resistant APIs on path).
  Rng rng(0xFA77);
  std::vector<u32> stub_ids;
  for (const auto& [id, api] : kernel.winapi().all()) {
    if (id < os::kApiPopulationBase || !api.has_pointer_arg()) continue;
    if (rng.chance(0.0625)) stub_ids.push_back(id);
  }
  printf("[2] browsing: %zu population APIs reachable from browser code...\n",
         stub_ids.size());
  targets::BrowserSim::Options opts;
  opts.kind = targets::BrowserSim::Kind::kIE;
  opts.seed = 0xF0;
  opts.api_stub_ids = stub_ids;
  targets::BrowserSim browser(kernel, opts);
  trace::Tracer tracer(kernel, browser.proc());
  tracer.set_record_mem_accesses(true);
  browser.crawl();
  for (u64 site = 0; site < 120; ++site) browser.visit_page(site);
  browser.pump(2'000'000'000);
  printf("    workload done (%zu API invocations traced)\n\n", tracer.api_calls().size());

  // Stage 3+4: call-site analysis.
  auto sites = campaign.call_sites(tracer, fuzz.crash_resistant, kernel,
                                   browser.proc(), "jscript9");
  std::set<u32> on_path, scripted, controllable;
  analysis::ApiFunnel funnel;
  for (const auto& s : sites) {
    if (s.api_id < os::kApiPopulationBase) continue;  // count the population only
    on_path.insert(s.api_id);
    if (s.script_triggerable) scripted.insert(s.api_id);
    if (s.exclusion == analysis::ExclusionReason::kNone) controllable.insert(s.api_id);
    ++funnel.exclusion_histogram[analysis::exclusion_reason_name(s.exclusion)];
  }

  funnel.total = fuzz.total_apis;
  funnel.with_pointer = fuzz.with_pointer_args;
  funnel.crash_resistant = static_cast<u32>(fuzz.crash_resistant.size());
  funnel.on_execution_path = static_cast<u32>(on_path.size());
  funnel.script_triggerable = static_cast<u32>(scripted.size());
  funnel.controllable = static_cast<u32>(controllable.size());

  printf("Measured funnel:\n%s\n", pipeline::ReportStage::api_funnel(funnel).c_str());
  printf("Paper funnel:    20672 -> 11521 (55.7%%) -> 400 -> 25 -> 12 -> 0\n");
  printf("(controllable = 0 is the paper's negative result: every surviving\n");
  printf(" pointer argument is stack-allocated, dereferenced outside the\n");
  printf(" resistant function, or a reference-less volatile heap pointer.)\n");
  return 0;
}
