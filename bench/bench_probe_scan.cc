// Fig. 1 / §III reproduction: the end-to-end crash-resistant probing loop
// (overwrite a value -> trigger -> infer state) against every PoC oracle,
// plus the §II information-hiding entropy math.
//
// Each oracle hunts a hidden region (SafeStack / CPI safe-region analog)
// planted at a random address. Reported per oracle: probes issued, probe
// cost (virtual time), crashes (must be zero), and whether the region was
// found. The entropy table shows expected probe counts for full-entropy
// sweeps — the reason crash resistance, not crash tolerance, is what breaks
// information hiding.

#include <cmath>
#include <cstdio>

#include "obs/bench_support.h"
#include "oracle/oracle.h"
#include "targets/browser.h"
#include "targets/common.h"
#include "targets/nginx.h"

namespace {

using namespace crp;

struct Row {
  std::string name;
  u64 probes = 0;
  double ms_per_probe = 0;
  u64 crashes = 0;
  bool found = false;
};

Row hunt_with(oracle::MemoryOracle& oracle, os::Kernel& k, os::Process& proc,
              gva_t hidden, u64 region_pages) {
  oracle::Scanner scanner(oracle);
  u64 t0 = k.now_ns();
  auto hit = scanner.hunt(hidden - 384 * 4096, hidden + 384 * 4096, 4000, 0x5ca7);
  Row row;
  row.name = oracle.name();
  row.probes = scanner.stats().probes;
  row.ms_per_probe =
      row.probes != 0 ? (k.now_ns() - t0) / 1e6 / static_cast<double>(row.probes) : 0;
  row.crashes = proc.machine().exception_stats().unhandled + (proc.alive() ? 0 : 1);
  row.found =
      hit.has_value() && *hit >= hidden && *hit < hidden + region_pages * 4096;
  return row;
}

}  // namespace

int main() {
  crp::obs::BenchSession obs_session("probe_scan");
  printf("bench_probe_scan — Fig.1/§III: crash-resistant address-space probing\n");
  printf("=====================================================================\n\n");

  constexpr u64 kRegionPages = 8;
  std::vector<Row> rows;

  {
    os::Kernel k;
    auto t = targets::make_nginx();
    int pid = t.instantiate(k, 0x90A);
    k.run(3'000'000);
    gva_t hidden = targets::plant_hidden_region(k.proc(pid), kRegionPages * 4096, 1);
    oracle::NginxRecvOracle oracle(k, pid, targets::kNginxPort);
    rows.push_back(hunt_with(oracle, k, k.proc(pid), hidden, kRegionPages));
  }
  {
    os::Kernel k;
    targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 0x90B, 0});
    gva_t hidden = targets::plant_hidden_region(b.proc(), kRegionPages * 4096, 2);
    oracle::SehProbeOracle oracle(b);
    rows.push_back(hunt_with(oracle, k, b.proc(), hidden, kRegionPages));
  }
  {
    os::Kernel k;
    targets::BrowserSim b(k, {targets::BrowserSim::Kind::kFirefox, 0x90C, 0});
    gva_t hidden = targets::plant_hidden_region(b.proc(), kRegionPages * 4096, 3);
    oracle::FirefoxPollOracle oracle(b);
    rows.push_back(hunt_with(oracle, k, b.proc(), hidden, kRegionPages));
  }

  printf("%-16s %-10s %-16s %-10s %s\n", "oracle", "probes", "ms/probe (virt)",
         "crashes", "region found");
  for (const Row& r : rows) {
    printf("%-16s %-10llu %-16.3f %-10llu %s\n", r.name.c_str(),
           static_cast<unsigned long long>(r.probes), r.ms_per_probe,
           static_cast<unsigned long long>(r.crashes), r.found ? "YES" : "no");
  }

  printf("\nEntropy math (uniform probing, expected probes to first hit):\n");
  printf("%-34s %-16s %s\n", "defense configuration", "space (pages)", "expected probes");
  struct Ent {
    const char* name;
    u64 space_pages;
    u64 region_pages;
  };
  for (const Ent& e : std::initializer_list<Ent>{
           {"ASLR 28-bit slide, 8-page region", 1ull << 28, 8},
           {"CPI safe region (2^30 pages)", 1ull << 35, 1ull << 30},
           {"SafeStack, 2-page stack", 1ull << 28, 2},
           {"ASLR-Guard region, 16 pages", 1ull << 28, 16},
       }) {
    printf("%-34s 2^%-14.0f %.0f\n", e.name, std::log2(static_cast<double>(e.space_pages)),
           oracle::expected_probes(e.space_pages, e.region_pages));
  }

  printf("\nAt ~1 virtual ms per probe, even the 2^25-probe SafeStack sweep is\n");
  printf("hours of quiet probing — with zero crashes for a defender to notice.\n");
  return 0;
}
