// §VII reproduction: the access-violation-rate baseline behind the
// rate-based detection countermeasure.
//
// Paper measurements:
//   * top-40k website crawl: zero access violations during browsing;
//   * asm.js stress (fault-based bounds checks): bursts of up to ~20 AVs
//     with gaps — peak rate far below an attack;
//   * probing attack (Gawlik et al. style): multiple thousands of AVs per
//     second — "several orders of magnitude more frequent".
//
// We run all three workloads on the IE simulacrum with a RateDetector
// attached and report total AVs, peak per-second rate, and whether the
// detector (threshold 50/s) alarms.

#include <cstdio>

#include "defense/rate_detector.h"
#include "isa/assembler.h"
#include "obs/bench_support.h"
#include "oracle/oracle.h"
#include "targets/browser.h"
#include "targets/common.h"

namespace {

using namespace crp;
using isa::Assembler;
using isa::Cond;
using isa::Reg;

struct RateRow {
  const char* name;
  u64 total = 0;
  u64 peak_window = 0;
  double rate = 0;
  bool alarmed = false;
};

RateRow benign_browsing() {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 0xB1, 0});
  defense::RateDetector det(k, b.proc());
  b.crawl();
  for (u64 s = 0; s < 300; ++s) b.visit_page(s);
  b.pump(1'500'000'000);
  return {"normal browsing (300 pages)", det.total_avs(), det.peak_window_count(),
          det.peak_rate_per_sec(), det.alarmed()};
}

RateRow asmjs_stress() {
  // Fault-based bounds checking: bursts of guarded AVs with gaps.
  Assembler a("asmjs_bench");
  a.label("e");
  a.lea_pc(Reg::R8, "rounds");
  a.label("round");
  a.movi(Reg::R9, 18);  // burst of 18 (paper: groups of up to 20)
  a.label("burst");
  a.movi(Reg::R2, 0x400000);
  a.label("tb");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("te");
  a.nop();
  a.label("h");
  a.subi(Reg::R9, 1);
  a.cmpi(Reg::R9, 0);
  a.jcc(Cond::kNe, "burst");
  a.movi(Reg::R1, 2500);  // 2.5 s gap between bursts
  a.apicall(os::kApiSleep);
  a.load(Reg::R4, Reg::R8, 8);
  a.subi(Reg::R4, 1);
  a.store(Reg::R8, 0, Reg::R4, 8);
  a.cmpi(Reg::R4, 0);
  a.jcc(Cond::kNe, "round");
  a.halt();
  a.set_entry("e");
  a.scope("tb", "te", "", "h");
  a.data_u64("rounds", 20);

  os::Kernel k;
  int pid = k.create_process("asmjs_bench", vm::Personality::kWindows, 0xA5);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  defense::RateDetector det(k, k.proc(pid));
  k.run(300'000'000);
  return {"asm.js stress (20 bursts x 18)", det.total_avs(), det.peak_window_count(),
          det.peak_rate_per_sec(), det.alarmed()};
}

RateRow scanning_attack() {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 0xA72, 0});
  defense::RateDetector det(k, b.proc());
  oracle::SehProbeOracle probe(b);
  for (int i = 0; i < 2000; ++i)
    probe.probe(0x6000bad0000ull + static_cast<u64>(i) * 4096);
  return {"probing attack (2000 probes)", det.total_avs(), det.peak_window_count(),
          det.peak_rate_per_sec(), det.alarmed()};
}

}  // namespace

int main() {
  crp::obs::BenchSession obs_session("av_rate");
  printf("bench_av_rate — §VII: access-violation rates per workload\n");
  printf("==========================================================\n\n");
  printf("%-32s %-10s %-14s %-14s %s\n", "workload", "AVs", "peak/window", "peak rate/s",
         "alarmed");

  for (const RateRow& r : {benign_browsing(), asmjs_stress(), scanning_attack()}) {
    printf("%-32s %-10llu %-14llu %-14.1f %s\n", r.name,
           static_cast<unsigned long long>(r.total),
           static_cast<unsigned long long>(r.peak_window), r.rate,
           r.alarmed ? "YES" : "no");
  }

  printf("\nPaper: browsing ~0 AVs; asm.js bursts <= 20 with gaps; attacks\n");
  printf("thousands/second — orders of magnitude apart, so a simple windowed\n");
  printf("threshold cleanly separates attack from benign fault-based tricks.\n");
  return 0;
}
