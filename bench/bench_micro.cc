// Microbenchmarks (google-benchmark) for the CRProbe substrates: interpreter
// throughput, taint-tracking overhead, SEH dispatch cost, SAT solving,
// symbolic filter classification, image (de)serialization, and end-to-end
// oracle probe latency.

#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/seh_analysis.h"
#include "isa/assembler.h"
#include "obs/bench_support.h"
#include "obs/obs.h"
#include "oracle/oracle.h"
#include "os/kernel.h"
#include "symex/solver.h"
#include "taint/taint.h"
#include "targets/browser.h"
#include "targets/common.h"
#include "targets/dll_corpus.h"
#include "vm/machine.h"

namespace {

using namespace crp;
using isa::Assembler;
using isa::Cond;
using isa::Reg;

isa::Image spin_image(int unroll) {
  Assembler a("spin");
  a.label("e");
  a.movi(Reg::R1, 0);
  a.label("loop");
  for (int i = 0; i < unroll; ++i) {
    a.addi(Reg::R1, 1);
    a.xori(Reg::R2, 3);
    a.mov(Reg::R3, Reg::R1);
  }
  a.jmp("loop");
  a.set_entry("e");
  return a.build();
}

void BM_InterpreterThroughput(benchmark::State& state) {
  vm::Machine m(vm::Personality::kLinux, 1);
  size_t idx = m.load_image(std::make_shared<isa::Image>(spin_image(16)));
  gva_t stack = m.layout().place(mem::RegionKind::kStack, 65536, "s");
  CRP_CHECK(m.mem().map(stack, 65536, mem::kPermR | mem::kPermW));
  vm::Cpu cpu;
  cpu.pc = m.modules()[idx].code_addr(0);
  cpu.sp() = stack + 65000;
  for (auto _ : state) {
    m.run(cpu, 10000);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10000);
}
BENCHMARK(BM_InterpreterThroughput);

// The documented-overhead pair: identical interpreter loop with metric
// recording on vs off (the runtime kill switch; CRP_OBS_DISABLED compiles
// the mutations out entirely for the true-zero baseline).
void BM_StepObsOn(benchmark::State& state) {
  obs::set_runtime_enabled(true);
  vm::Machine m(vm::Personality::kLinux, 1);
  size_t idx = m.load_image(std::make_shared<isa::Image>(spin_image(16)));
  gva_t stack = m.layout().place(mem::RegionKind::kStack, 65536, "s");
  CRP_CHECK(m.mem().map(stack, 65536, mem::kPermR | mem::kPermW));
  vm::Cpu cpu;
  cpu.pc = m.modules()[idx].code_addr(0);
  cpu.sp() = stack + 65000;
  for (auto _ : state) {
    m.run(cpu, 10000);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10000);
}
BENCHMARK(BM_StepObsOn);

void BM_StepObsOff(benchmark::State& state) {
  obs::set_runtime_enabled(false);
  vm::Machine m(vm::Personality::kLinux, 1);
  size_t idx = m.load_image(std::make_shared<isa::Image>(spin_image(16)));
  gva_t stack = m.layout().place(mem::RegionKind::kStack, 65536, "s");
  CRP_CHECK(m.mem().map(stack, 65536, mem::kPermR | mem::kPermW));
  vm::Cpu cpu;
  cpu.pc = m.modules()[idx].code_addr(0);
  cpu.sp() = stack + 65000;
  for (auto _ : state) {
    m.run(cpu, 10000);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10000);
  obs::set_runtime_enabled(true);
}
BENCHMARK(BM_StepObsOff);

void BM_InterpreterWithTaint(benchmark::State& state) {
  os::Kernel k;
  int pid = k.create_process("spin", vm::Personality::kLinux, 1);
  k.proc(pid).load(std::make_shared<isa::Image>(spin_image(16)));
  k.start_process(pid);
  taint::TaintEngine taint(k, k.proc(pid));
  for (auto _ : state) {
    k.run(10000);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10000);
}
BENCHMARK(BM_InterpreterWithTaint);

void BM_SehDispatchHandledAv(benchmark::State& state) {
  // One guarded faulting load, handled by a catch-all scope, in a loop.
  Assembler a("faulty");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.label("loop");
  a.label("tb");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("te");
  a.nop();
  a.label("h");
  a.jmp("loop");
  a.set_entry("e");
  a.scope("tb", "te", "", "h");
  vm::Machine m(vm::Personality::kWindows, 1);
  size_t idx = m.load_image(std::make_shared<isa::Image>(a.build()));
  gva_t stack = m.layout().place(mem::RegionKind::kStack, 65536, "s");
  CRP_CHECK(m.mem().map(stack, 65536, mem::kPermR | mem::kPermW));
  vm::Cpu cpu;
  cpu.pc = m.modules()[idx].code_addr(0);
  cpu.sp() = stack + 65000;
  for (auto _ : state) {
    m.run(cpu, 1000);
  }
  state.SetItemsProcessed(
      static_cast<i64>(m.exception_stats().handled_seh));
}
BENCHMARK(BM_SehDispatchHandledAv);

void BM_SatSmallBitvector(benchmark::State& state) {
  for (auto _ : state) {
    symex::Ctx c;
    symex::ExprRef x = c.var("x");
    symex::Solver s(c);
    s.add(c.eq(c.band(c.add(x, c.constant(17)), c.constant(0xffff)), c.constant(0x1234)));
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_SatSmallBitvector);

void BM_FilterClassification(benchmark::State& state) {
  targets::DllSpec spec{"bench", isa::Machine::kX64, 30, 12, 0, 20, 10};
  auto dll = targets::generate_dll(spec, 42);
  for (auto _ : state) {
    analysis::SehExtractor ex;
    ex.add_image(dll.image);
    analysis::FilterClassifier fc;
    benchmark::DoNotOptimize(fc.classify_all(ex));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 20);
}
BENCHMARK(BM_FilterClassification);

void BM_ImageRoundTrip(benchmark::State& state) {
  targets::DllSpec spec{"bench", isa::Machine::kX64, 60, 20, 0, 40, 15};
  auto dll = targets::generate_dll(spec, 42);
  auto bytes = isa::write_image(*dll.image);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::read_image(bytes));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(bytes.size()));
}
BENCHMARK(BM_ImageRoundTrip);

void BM_OracleProbeIe(benchmark::State& state) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 0xBE, 0});
  oracle::SehProbeOracle probe(b);
  u64 addr = 0x7100000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe.probe(addr));
    addr += 4096;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_OracleProbeIe);

void BM_KernelSyscallPath(benchmark::State& state) {
  Assembler a("sys");
  a.label("e");
  a.label("loop");
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kGetpid));
  a.syscall();
  a.jmp("loop");
  a.set_entry("e");
  os::Kernel k;
  int pid = k.create_process("sys", vm::Personality::kLinux, 1);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  for (auto _ : state) {
    k.run(3000);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 1000);
}
BENCHMARK(BM_KernelSyscallPath);

}  // namespace

// BENCHMARK_MAIN expanded so a BenchSession wraps the run and dumps
// BENCH_micro.json alongside google-benchmark's own output.
int main(int argc, char** argv) {
  crp::obs::BenchSession obs_session("micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
