// §VI-D reproduction: the Cherokee timing side channel.
//
// Corrupting a worker thread's fdpoll->events pointer makes its epoll_wait
// fail with -EFAULT forever: the thread spins, burning scheduler capacity
// and dropping the pool from N workers to N-k. The attacker measures the
// time to serve a fixed batch of requests; "there is significant time
// difference compared to the baseline when even a single thread is
// non-functional" — which turns epoll_wait into a *timing* memory oracle.
//
// This bench serves a fixed request batch with k = 0..N-1 stalled threads
// and reports virtual service time per batch (our virtual clock advances
// with executed instructions, so the spinning thread's cost is visible
// exactly as CPU-time would be).

#include <cstdio>

#include "obs/bench_support.h"
#include "targets/cherokee.h"
#include "targets/common.h"

namespace {

using namespace crp;

/// Serve `n` version requests; returns virtual ns consumed (retrying on
/// stalled-thread routing like a real client).
u64 serve_batch(os::Kernel& k, int n) {
  u64 t0 = k.now_ns();
  for (int i = 0; i < n; ++i) {
    for (int attempt = 0; attempt < targets::kCherokeeThreads + 1; ++attempt) {
      auto c = k.connect(targets::kCherokeePort);
      if (!c.has_value()) break;
      c->send(targets::wire_command(targets::kOpVersion));
      std::string got;
      bool ok = k.run_until(
          [&] {
            got += c->recv_all();
            return got.size() >= 4;
          },
          20'000'000);
      c->close();
      if (ok) break;
    }
  }
  return k.now_ns() - t0;
}

}  // namespace

int main() {
  crp::obs::BenchSession obs_session("cherokee_timing");
  using namespace crp;

  printf("bench_cherokee_timing — §VI-D: epoll_wait timing side channel\n");
  printf("==============================================================\n\n");

  constexpr int kBatch = 60;
  printf("serving %d requests per configuration (%d worker threads)\n\n", kBatch,
         targets::kCherokeeThreads);
  printf("%-18s %-18s %-12s\n", "stalled threads", "batch time (ms)", "slowdown");

  u64 baseline = 0;
  for (int stalled = 0; stalled < targets::kCherokeeThreads; ++stalled) {
    os::Kernel k;
    auto t = targets::make_cherokee();
    int pid = t.instantiate(k, 0x77 + static_cast<u64>(stalled));
    k.run(4'000'000);  // workers parked

    // Attack step: corrupt the first `stalled` workers' fdpoll->events
    // pointers (leak the object via the global table, then arbitrary write).
    for (int i = 0; i < stalled; ++i) {
      gva_t fdpoll = targets::cherokee_fdpoll_addr(k.proc(pid), i);
      CRP_CHECK(fdpoll != 0);
      k.proc(pid).machine().mem().poke_u64(fdpoll, 0x6bad00000000ull);
    }
    k.run(2'000'000);  // let the corrupted threads hit the failing loop

    u64 elapsed = serve_batch(k, kBatch);
    if (stalled == 0) baseline = elapsed;
    printf("%-18d %-18.3f %.2fx%s\n", stalled, elapsed / 1e6,
           baseline != 0 ? static_cast<double>(elapsed) / baseline : 1.0,
           k.proc(pid).alive() ? "" : "  (SERVER DIED!)");
  }

  printf("\nThe gap between 0 and 1 stalled threads is the §VI-D memory oracle:\n");
  printf("probe a candidate address into one thread's fdpoll->events, time a\n");
  printf("request batch, and the delta says mapped (no slowdown) vs unmapped\n");
  printf("(worker stalls, batch slows). The server never crashes.\n");
  return 0;
}
