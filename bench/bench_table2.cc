// Table II reproduction: guarded program-code locations per system DLL for
// an Internet Explorer run — before symbolic execution, after symbolic
// execution (AV-capable), and on the browsing execution path.
//
// The DLL corpus plants the paper's per-DLL populations; everything in this
// bench is *measured* by the pipeline: scope tables parsed from serialized
// images, filters decided by symbolic execution + SAT, on-path counts by
// tracing a 500-page browsing workload.
//
// Paper Table II (per DLL, before SB / after SB / on path):
//   user32 70/63/40, kernel32 76/66/14, msvcrt 129/10/3, jscript9 22/6/4,
//   rpcrt4 62/20/6, sechost 133/11/0, ws2_32 82/29/10, xmlite 10/2/1.

#include <cstdio>

#include "analysis/report.h"
#include "analysis/seh_analysis.h"
#include "obs/bench_support.h"
#include "targets/browser.h"
#include "trace/tracer.h"

int main() {
  crp::obs::BenchSession obs_session("table2");
  using namespace crp;

  printf("bench_table2 — Table II: guarded code locations per DLL (IE run)\n");
  printf("=================================================================\n\n");

  os::Kernel kernel;
  targets::BrowserSim browser(kernel, {targets::BrowserSim::Kind::kIE, 0x7AB1E2, 0});
  trace::Tracer tracer(kernel, browser.proc());

  printf("browsing the top-500 workload (crawl + %d page visits)...\n", 500);
  browser.crawl();
  for (u64 site = 0; site < 500; ++site) browser.visit_page(site);
  browser.pump(1'500'000'000);
  printf("done: %zu unique pcs executed, %zu commands left\n\n", tracer.unique_pcs(),
         browser.pending_commands());

  analysis::SehExtractor ex;
  for (const auto& d : browser.dlls()) {
    // Static pass parses the *serialized* image — the "given a binary" path.
    auto bytes = isa::write_image(*d.image);
    CRP_CHECK(ex.add_image_bytes(bytes));
  }
  printf("static extraction: %zu handlers, %zu unique filter functions\n",
         ex.handlers().size(), ex.unique_filters().size());

  analysis::FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  printf("symbolic execution: %llu filters executed, %llu SAT queries\n\n",
         static_cast<unsigned long long>(fc.filters_executed()),
         static_cast<unsigned long long>(fc.sat_queries()));

  auto stats = analysis::CoverageXref::compute(ex, filters, &tracer, &browser.proc());
  printf("%s\n", analysis::render_table2(stats).c_str());

  printf("Paper Table II: user32 70/63/40, kernel32 76/66/14, msvcrt 129/10/3,\n");
  printf("jscript9 22/6/4, rpcrt4 62/20/6, sechost 133/11/0, ws2_32 82/29/10,\n");
  printf("xmlite 10/2/1 (ntdll/kernelbase appear only in Table III).\n");
  return 0;
}
