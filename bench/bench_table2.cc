// Table II reproduction: guarded program-code locations per system DLL for
// an Internet Explorer run — before symbolic execution, after symbolic
// execution (AV-capable), and on the browsing execution path.
//
// Thin driver over the pipeline layer: the browser subject comes from the
// TargetRegistry, and the SEH funnel (static extraction -> filter
// classification -> coverage cross-reference) runs through the Campaign
// stages; classification is answered from the content-addressed
// ArtifactStore when an identical corpus was classified before. Everything
// printed is *measured*: scope tables parsed from serialized images,
// filters decided by symbolic execution + SAT, on-path counts by tracing a
// 500-page browsing workload.
//
// Paper Table II (per DLL, before SB / after SB / on path):
//   user32 70/63/40, kernel32 76/66/14, msvcrt 129/10/3, jscript9 22/6/4,
//   rpcrt4 62/20/6, sechost 133/11/0, ws2_32 82/29/10, xmlite 10/2/1.

#include <chrono>
#include <cstdio>

#include "exec/thread_pool.h"
#include "obs/bench_support.h"
#include "pipeline/campaign.h"
#include "trace/tracer.h"

namespace {
double wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  crp::obs::BenchSession obs_session("table2");
  using namespace crp;

  printf("bench_table2 — Table II: guarded code locations per DLL (IE run)\n");
  printf("=================================================================\n\n");

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* spec = reg.find("browser/iexplore_sim");
  CRP_CHECK(spec != nullptr);
  pipeline::Campaign campaign;

  os::Kernel kernel;
  targets::BrowserSim browser(kernel, pipeline::browser_options(*spec));
  trace::Tracer tracer(kernel, browser.proc());

  printf("browsing the top-500 workload (crawl + %d page visits)...\n", 500);
  browser.crawl();
  for (u64 site = 0; site < 500; ++site) browser.visit_page(site);
  browser.pump(1'500'000'000);
  printf("done: %zu unique pcs executed, %zu commands left\n\n", tracer.unique_pcs(),
         browser.pending_commands());

  // Timings and job counts go to stderr: stdout must stay bit-identical
  // across CRP_JOBS values (the determinism contract in DESIGN.md).
  int jobs = exec::resolve_jobs();
  fprintf(stderr, "[exec] jobs=%d\n", jobs);

  // Static pass parses the *serialized* images — the "given a binary" path.
  std::vector<std::vector<u8>> blobs = pipeline::Campaign::image_blobs(browser.dlls());
  double t0 = wall_ms();
  pipeline::SehCorpus corpus = campaign.extract(blobs);
  double t1 = wall_ms();
  printf("static extraction: %zu handlers, %zu unique filter functions\n",
         corpus.ex.handlers().size(), corpus.ex.unique_filters().size());

  pipeline::ClassifyOutcome cls = campaign.classify(corpus);
  double t2 = wall_ms();
  fprintf(stderr, "[exec] extract %.1f ms, classify %.1f ms (jobs=%d, cache %s)\n",
          t1 - t0, t2 - t1, jobs, cls.cache_hit ? "hit" : "miss");
  printf("symbolic execution: %llu filters executed, %llu SAT queries\n\n",
         static_cast<unsigned long long>(cls.filters_executed),
         static_cast<unsigned long long>(cls.sat_queries));

  auto stats = campaign.xref(corpus, cls, &tracer, &browser.proc());
  printf("%s\n", pipeline::ReportStage::table2(stats).c_str());

  printf("Paper Table II: user32 70/63/40, kernel32 76/66/14, msvcrt 129/10/3,\n");
  printf("jscript9 22/6/4, rpcrt4 62/20/6, sechost 133/11/0, ws2_32 82/29/10,\n");
  printf("xmlite 10/2/1 (ntdll/kernelbase appear only in Table III).\n");
  return 0;
}
