// §I/§II comparison: crash-RESISTANT vs crash-TOLERANT probing, plus the
// §II-B re-randomization countermeasure.
//
// Part 1 — noise comparison. Both attackers locate the same hidden region
// in nginx_sim. The crash-resistant attacker uses the recv/-EFAULT oracle
// (§VI-C); the crash-tolerant attacker uses the BROP-style corrupt-and-
// watch-it-die protocol against a supervisor that restarts the server with
// a persistent layout. Same verdicts; the difference is what the defender
// sees: zero crashes versus one crash per unmapped probe.
//
// Part 2 — runtime re-randomization. The §II-B defense periodically moves
// the hidden region. The probe loop races the re-randomization interval:
// once the interval drops below the expected time-to-hit, the success rate
// collapses (". . . given enough tries, such schemes can likely be bypassed"
// — but the tries multiply).

#include <cstdio>

#include "obs/bench_support.h"
#include "oracle/crash_tolerant.h"
#include "oracle/oracle.h"
#include "targets/common.h"
#include "targets/nginx.h"
#include "util/rng.h"

namespace {

using namespace crp;

constexpr u64 kRegionPages = 8;
constexpr u64 kWindowPages = 768;  // demo search window around the region

void part1() {
  printf("Part 1 — same attack, different noise (window of %llu pages)\n\n",
         static_cast<unsigned long long>(kWindowPages));
  printf("%-18s %-9s %-8s %-10s %-10s %s\n", "attacker", "probes", "found", "crashes",
         "restarts", "defender-visible noise");

  // Crash-resistant attacker.
  {
    os::Kernel k;
    auto t = targets::make_nginx();
    int pid = t.instantiate(k, 0xC0FE);
    k.run(3'000'000);
    gva_t hidden = targets::plant_hidden_region(k.proc(pid), kRegionPages * 4096, 7);
    oracle::NginxRecvOracle oracle(k, pid, targets::kNginxPort);
    oracle::Scanner scanner(oracle);
    auto hit = scanner.hunt(hidden - (kWindowPages / 2) * 4096,
                            hidden + (kWindowPages / 2) * 4096, 4000, 0xAA);
    bool found = hit.has_value() && *hit >= hidden && *hit < hidden + kRegionPages * 4096;
    printf("%-18s %-9llu %-8s %-10llu %-10s %s\n", "crash-resistant",
           static_cast<unsigned long long>(scanner.stats().probes), found ? "YES" : "no",
           static_cast<unsigned long long>(
               k.proc(pid).machine().exception_stats().unhandled),
           "0", "none");
  }

  // Crash-tolerant attacker.
  {
    oracle::CrashTolerantProbe probe(targets::make_nginx(), 0xC0FE);
    gva_t hidden = probe.plant_hidden(kRegionPages * 4096, 7);
    oracle::Scanner scanner(probe);
    auto hit = scanner.hunt(hidden - (kWindowPages / 2) * 4096,
                            hidden + (kWindowPages / 2) * 4096, 4000, 0xAA);
    bool found = hit.has_value() && *hit >= hidden && *hit < hidden + kRegionPages * 4096;
    printf("%-18s %-9llu %-8s %-10llu %-10llu %s\n", "crash-tolerant",
           static_cast<unsigned long long>(scanner.stats().probes), found ? "YES" : "no",
           static_cast<unsigned long long>(probe.crashes()),
           static_cast<unsigned long long>(probe.restarts()),
           "one crash log line per unmapped probe");
  }
  printf("\n");
}

void part2() {
  printf("Part 2 — §II-B runtime re-randomization vs the crash-resistant oracle\n\n");
  printf("%-26s %-12s %-10s\n", "re-randomization interval", "probes used", "found");

  for (u64 interval : {0ull, 4000ull, 1000ull, 250ull, 60ull}) {
    os::Kernel k;
    auto t = targets::make_nginx();
    int pid = t.instantiate(k, 0xD1CE);
    k.run(3'000'000);
    os::Process& p = k.proc(pid);
    gva_t hidden = targets::plant_hidden_region(p, kRegionPages * 4096, 9);
    oracle::NginxRecvOracle oracle(k, pid, targets::kNginxPort);

    Rng rng(0x5EED);
    // The attacker's window is FIXED: a candidate range learned through some
    // earlier (expensive) partial leak. Re-randomization relocates the
    // secret anywhere in the full ASLR space — almost surely outside it.
    const gva_t lo = hidden - (kWindowPages / 2) * 4096;
    u64 slots = kWindowPages;
    bool found = false;
    u64 probes = 0;
    constexpr u64 kBudget = 2500;
    for (; probes < kBudget && !found; ++probes) {
      if (interval != 0 && probes != 0 && probes % interval == 0) {
        p.machine().mem().unmap(hidden, kRegionPages * 4096);
        hidden = targets::plant_hidden_region(p, kRegionPages * 4096, 9);
      }
      gva_t addr = lo + rng.below(slots) * mem::kPageSize;
      if (oracle.probe(addr) == oracle::ProbeResult::kMapped &&
          addr >= hidden && addr < hidden + kRegionPages * 4096) {
        found = true;
      }
    }
    printf("%-26s %-12llu %-10s\n",
           interval == 0 ? "none" : strf("every %llu probes",
                                         static_cast<unsigned long long>(interval)).c_str(),
           static_cast<unsigned long long>(probes), found ? "YES" : "no");
  }

  printf("\nWith no re-randomization the sweep always lands; as the interval\n");
  printf("approaches the expected time-to-hit (~%llu probes for this window),\n",
         static_cast<unsigned long long>(kWindowPages / kRegionPages));
  printf("success decays toward chance — the §II-B 'moving target' effect.\n");
}

}  // namespace

int main() {
  crp::obs::BenchSession obs_session("crash_tolerance");
  printf("bench_crash_tolerance — crash resistance vs crash tolerance (§I/§II)\n");
  printf("=====================================================================\n\n");
  part1();
  part2();
  return 0;
}
