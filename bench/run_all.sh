#!/usr/bin/env bash
# Run every bench binary and aggregate the BENCH_<name>.json telemetry
# snapshots each one emits (see src/obs/bench_support.h) into one summary.
#
# Usage: bench/run_all.sh [build-dir] [output-dir]
#   build-dir   defaults to ./build
#   output-dir  defaults to <build-dir>/bench-results (exported as
#               CRP_BENCH_DIR so the harness writes snapshots there)
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench-results}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
export CRP_BENCH_DIR="$OUT_DIR"

# Provenance stamped into BENCH_SUMMARY.json (and benchdiff baselines): the
# commit, job count, and cache mode a snapshot was taken under — without
# them two summaries are not comparable.
GIT_SHA="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"
export CRP_GIT_SHA="$GIT_SHA"
SUMMARY_JOBS="${CRP_JOBS:-default}"
SUMMARY_CACHE="${CRP_CACHE:-default}"

# Clear snapshots from earlier runs: benches that were since renamed/removed
# would otherwise leave stale BENCH_*.json files that the aggregation below
# silently folds into the summary. Same for profiler reports — a PROF_*.json
# from a previous CRP_PROF run must not outlive the run that produced it.
rm -f "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/PROF_*.json "$OUT_DIR"/PROF_*.folded

failed=0
for bench in "$BENCH_DIR"/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  if ! "$bench" > "$OUT_DIR/$name.log" 2>&1; then
    echo "    FAILED (see $OUT_DIR/$name.log)" >&2
    failed=1
  fi
  tail -n 1 "$OUT_DIR/$name.log"
done

# A failed bench means the telemetry set is incomplete: aggregating the
# survivors into BENCH_SUMMARY.json would present a partial run as a full
# one, so fail loudly instead.
if [ "$failed" -ne 0 ]; then
  echo
  echo "error: at least one bench failed — skipping BENCH_SUMMARY.json aggregation" >&2
  exit 1
fi

echo
echo "=== telemetry snapshots in $OUT_DIR ==="
ls -1 "$OUT_DIR"/BENCH_*.json 2>/dev/null || echo "(none)"

# Aggregate headline metrics across snapshots when python3 is available.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$OUT_DIR" "$GIT_SHA" "$SUMMARY_JOBS" "$SUMMARY_CACHE" << 'EOF'
import glob, json, os, sys

out_dir = sys.argv[1]
meta = {"git_sha": sys.argv[2], "jobs": sys.argv[3], "cache": sys.argv[4]}
keys = [
    "vm.instr_retired",
    "vm.exceptions",
    "kernel.api.calls",
    "sat.queries",
    "oracle.scan.probes",
    "oracle.scan.mapped_hits",
    "oracle.scan.crashes",
]
rows = []
for path in sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json"))):
    if path.endswith("_trace.json"):
        continue
    with open(path) as f:
        doc = json.load(f)
    m = doc.get("metrics", {})

    def flat(k):
        v = m.get(k, 0)
        return v.get("count", 0) if isinstance(v, dict) else v

    rows.append([doc.get("bench", "?")] + [flat(k) for k in keys])

if rows:
    hdr = ["bench"] + [k.split(".")[-1] for k in keys]
    widths = [max(len(str(r[i])) for r in [hdr] + rows) for i in range(len(hdr))]
    for r in [hdr] + rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))
    agg = {k: sum(r[i + 1] for r in rows) for i, k in enumerate(keys)}
    summary = os.path.join(out_dir, "BENCH_SUMMARY.json")
    with open(summary, "w") as f:
        json.dump({"meta": meta, "benches": [r[0] for r in rows], "totals": agg},
                  f, indent=1)
    print(f"\nwrote {summary}")
    if agg["oracle.scan.crashes"] != 0:
        print("WARNING: nonzero oracle.scan.crashes across benches "
              "(expected only from the crash-tolerant baseline)")
EOF
else
  echo "(python3 unavailable — skipping aggregation)"
fi

# Regression gate: compare this run against the committed baseline when both
# the benchdiff binary and bench/baseline.json exist. Advisory by default
# (thresholds are tuned for identical hardware); CRP_BENCHDIFF_ENFORCE=1
# promotes a regression to a failing exit — what a perf-gating CI job sets.
BENCHDIFF="$BUILD_DIR/tools/benchdiff"
BASELINE="$(dirname "$0")/baseline.json"
if [ -x "$BENCHDIFF" ] && [ -f "$BASELINE" ]; then
  echo
  echo "=== benchdiff vs $BASELINE ==="
  if "$BENCHDIFF" --no-wall "$BASELINE" "$OUT_DIR"; then
    :
  else
    rc=$?
    if [ "$rc" -eq 1 ] && [ "${CRP_BENCHDIFF_ENFORCE:-0}" != "1" ]; then
      echo "warning: bench regression vs baseline (advisory; set CRP_BENCHDIFF_ENFORCE=1 to fail)" >&2
    else
      exit "$rc"
    fi
  fi
fi

exit 0
