#include "util/rng.h"

namespace crp {

namespace {
u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ull;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(u64 seed) {
  u64 x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  CRP_CHECK(bound != 0);
  // Rejection sampling to avoid modulo bias.
  u64 threshold = (0 - bound) % bound;
  for (;;) {
    u64 r = next();
    if (r >= threshold) return r % bound;
  }
}

u64 Rng::range(u64 lo, u64 hi) {
  CRP_CHECK(lo <= hi);
  return lo + below(hi - lo + 1);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

}  // namespace crp
