#include "util/common.h"

#include <atomic>
#include <cstdarg>

namespace crp {

namespace {
// Fixed-size hook table: panic must not allocate, and hooks are registered a
// handful of times per process (flush handlers), so a small array suffices.
constexpr int kMaxPanicHooks = 8;
void (*g_panic_hooks[kMaxPanicHooks])() = {};
std::atomic<int> g_panic_hook_count{0};
std::atomic<bool> g_panicking{false};
}  // namespace

void add_panic_hook(void (*fn)()) {
  int n = g_panic_hook_count.load(std::memory_order_relaxed);
  while (n < kMaxPanicHooks) {
    if (g_panic_hook_count.compare_exchange_weak(n, n + 1, std::memory_order_acq_rel)) {
      g_panic_hooks[n] = fn;
      return;
    }
  }
}

void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[crp panic] %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  // Flush telemetry sinks unless a hook itself panicked (re-entrancy guard).
  if (!g_panicking.exchange(true, std::memory_order_acq_rel)) {
    int n = g_panic_hook_count.load(std::memory_order_acquire);
    for (int i = 0; i < n && i < kMaxPanicHooks; ++i)
      if (g_panic_hooks[i] != nullptr) g_panic_hooks[i]();
  }
  std::abort();
}

std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string human_size(u64 bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return strf("%.1f%s", v, units[u]);
}

}  // namespace crp
