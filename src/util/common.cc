#include "util/common.h"

#include <cstdarg>

namespace crp {

void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[crp panic] %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string human_size(u64 bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return strf("%.1f%s", v, units[u]);
}

}  // namespace crp
