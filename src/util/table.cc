#include "util/table.h"

#include <algorithm>

namespace crp {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) {
  cells.resize(header_.empty() ? cells.size() : header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> w(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto sep = [&] {
    std::string s = "+";
    for (size_t i = 0; i < ncols; ++i) s += std::string(w[i] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (size_t i = 0; i < ncols; ++i) {
      std::string c = i < r.size() ? r[i] : "";
      s += " " + c + std::string(w[i] - c.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = sep();
  if (!header_.empty()) {
    out += line(header_);
    out += sep();
  }
  for (const auto& r : rows_) out += line(r);
  out += sep();
  return out;
}

}  // namespace crp
