// Common small utilities shared across all CRProbe modules.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace crp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Guest virtual address.
using gva_t = u64;

/// Fatal invariant violation: print and abort. Used for programmer errors,
/// never for guest-induced conditions (those surface as faults/status codes).
[[noreturn]] void panic(const char* file, int line, const std::string& msg);

/// Register a hook panic() runs (once, in registration order) before
/// aborting — the escape hatch that lets buffered telemetry (journal ring,
/// probe ledger) reach disk when a bench or example dies mid-run. Hooks must
/// be async-signal-unsafe-tolerant only in the sense that they run on the
/// panicking thread; re-entrant panics skip the hooks.
void add_panic_hook(void (*fn)());

#define CRP_PANIC(msg) ::crp::panic(__FILE__, __LINE__, (msg))

#define CRP_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) ::crp::panic(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

/// printf-style std::string formatter.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Align `v` down/up to a power-of-two boundary `a`.
constexpr u64 align_down(u64 v, u64 a) { return v & ~(a - 1); }
constexpr u64 align_up(u64 v, u64 a) { return (v + a - 1) & ~(a - 1); }

/// Human-readable size, e.g. "4.0KiB".
std::string human_size(u64 bytes);

}  // namespace crp
