// Minimal leveled logger. Global level, stderr sink, zero allocation when
// the level is filtered out (callers guard with the macros below).
//
// The initial level comes from the CRP_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off, or digits 0-5), parsed on first use;
// set_log_level() overrides it. Concurrent log_line calls are serialized so
// lines from different threads never interleave.
#pragma once

#include <string>

#include "util/common.h"

namespace crp {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log level; defaults to kWarn (or CRP_LOG_LEVEL when set) so
/// tests/benches stay quiet.
void set_log_level(LogLevel lvl);
LogLevel log_level();

/// Emit one line (already formatted) at `lvl` with a module tag.
void log_line(LogLevel lvl, const char* tag, const std::string& msg);

#define CRP_LOG(lvl, tag, ...)                                      \
  do {                                                              \
    if (static_cast<int>(lvl) >= static_cast<int>(::crp::log_level())) \
      ::crp::log_line((lvl), (tag), ::crp::strf(__VA_ARGS__));      \
  } while (0)

#define CRP_TRACE(tag, ...) CRP_LOG(::crp::LogLevel::kTrace, tag, __VA_ARGS__)
#define CRP_DEBUG(tag, ...) CRP_LOG(::crp::LogLevel::kDebug, tag, __VA_ARGS__)
#define CRP_INFO(tag, ...) CRP_LOG(::crp::LogLevel::kInfo, tag, __VA_ARGS__)
#define CRP_WARN(tag, ...) CRP_LOG(::crp::LogLevel::kWarn, tag, __VA_ARGS__)
#define CRP_ERROR(tag, ...) CRP_LOG(::crp::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace crp
