// Interval map keyed by [begin, end) half-open u64 ranges with non-overlap
// invariant. Used for module layout lookup, guarded-region lookup, and the
// ground-truth page map in tests.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "util/common.h"

namespace crp {

template <typename V>
class IntervalMap {
 public:
  struct Entry {
    u64 begin = 0;
    u64 end = 0;  // exclusive
    V value{};
  };

  /// Insert [begin, end). Returns false (and does nothing) on overlap with an
  /// existing interval or on an empty/inverted range.
  bool insert(u64 begin, u64 end, V value) {
    if (begin >= end) return false;
    if (overlaps(begin, end)) return false;
    map_.emplace(begin, Entry{begin, end, std::move(value)});
    return true;
  }

  /// Remove the interval that starts exactly at `begin`; returns whether one existed.
  bool erase_at(u64 begin) { return map_.erase(begin) > 0; }

  /// Remove the interval containing `addr`; returns whether one existed.
  bool erase_containing(u64 addr) {
    auto* e = find(addr);
    if (e == nullptr) return false;
    return map_.erase(e->begin) > 0;
  }

  /// Find the entry containing `addr`, or nullptr.
  const Entry* find(u64 addr) const {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) return nullptr;
    --it;
    if (addr >= it->second.begin && addr < it->second.end) return &it->second;
    return nullptr;
  }

  Entry* find(u64 addr) {
    return const_cast<Entry*>(static_cast<const IntervalMap*>(this)->find(addr));
  }

  /// True if [begin, end) intersects any stored interval.
  bool overlaps(u64 begin, u64 end) const {
    if (begin >= end) return false;
    auto it = map_.lower_bound(begin);
    if (it != map_.end() && it->second.begin < end) return true;
    if (it != map_.begin()) {
      --it;
      if (it->second.end > begin) return true;
    }
    return false;
  }

  /// All entries intersecting [begin, end), in address order.
  std::vector<const Entry*> intersecting(u64 begin, u64 end) const {
    std::vector<const Entry*> out;
    if (begin >= end) return out;
    auto it = map_.upper_bound(begin);
    if (it != map_.begin()) --it;
    for (; it != map_.end() && it->second.begin < end; ++it) {
      if (it->second.end > begin) out.push_back(&it->second);
    }
    return out;
  }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  std::map<u64, Entry> map_;  // keyed by interval begin
};

}  // namespace crp
