// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed,
// so that corpus generation, fuzzing and workloads are reproducible.
#pragma once

#include <vector>

#include "util/common.h"

namespace crp {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(u64 seed);

  /// Uniform 64-bit value.
  u64 next();

  /// Uniform value in [0, bound) — bound must be nonzero.
  u64 below(u64 bound);

  /// Uniform value in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi);

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform();

  /// Pick a random element index of a container-sized range.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    CRP_CHECK(!v.empty());
    return v[below(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  u64 s_[4];
};

}  // namespace crp
