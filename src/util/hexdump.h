// Hexdump / byte formatting helpers for diagnostics and the disassembler.
#pragma once

#include <span>
#include <string>

#include "util/common.h"

namespace crp {

/// Classic 16-bytes-per-line hexdump with ASCII gutter; `base` is the
/// address printed for the first byte.
std::string hexdump(std::span<const u8> bytes, u64 base = 0);

/// "de ad be ef" style byte string.
std::string hex_bytes(std::span<const u8> bytes);

}  // namespace crp
