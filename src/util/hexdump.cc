#include "util/hexdump.h"

namespace crp {

std::string hexdump(std::span<const u8> bytes, u64 base) {
  std::string out;
  for (size_t off = 0; off < bytes.size(); off += 16) {
    out += strf("%012llx  ", static_cast<unsigned long long>(base + off));
    std::string ascii;
    for (size_t i = 0; i < 16; ++i) {
      if (off + i < bytes.size()) {
        u8 b = bytes[off + i];
        out += strf("%02x ", b);
        ascii += (b >= 0x20 && b < 0x7f) ? static_cast<char>(b) : '.';
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |" + ascii + "|\n";
  }
  return out;
}

std::string hex_bytes(std::span<const u8> bytes) {
  std::string out;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) out += ' ';
    out += strf("%02x", bytes[i]);
  }
  return out;
}

}  // namespace crp
