// ASCII table renderer used by the report module and every bench binary to
// print paper-style tables.
#pragma once

#include <string>
#include <vector>

namespace crp {

class TextTable {
 public:
  /// Set the header row; defines the column count.
  void header(std::vector<std::string> cells);

  /// Append a data row; must match the header width (shorter rows are padded).
  void row(std::vector<std::string> cells);

  /// Render with box-drawing separators.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crp
