#include "util/log.h"

#include <strings.h>

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace crp {

namespace {
constexpr int kUnset = -1;
std::atomic<int> g_level{kUnset};
std::mutex g_log_mu;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// CRP_LOG_LEVEL accepts a level name (case-insensitive) or its digit.
int parse_level(const char* s) {
  if (s == nullptr || *s == '\0') return kUnset;
  if (s[1] == '\0' && s[0] >= '0' && s[0] <= '5') return s[0] - '0';
  static constexpr const char* kNames[] = {"trace", "debug", "info", "warn", "error", "off"};
  for (int i = 0; i < 6; ++i) {
    if (strcasecmp(s, kNames[i]) == 0) return i;
  }
  return kUnset;
}

int level_from_env() {
  int parsed = parse_level(std::getenv("CRP_LOG_LEVEL"));
  return parsed == kUnset ? static_cast<int>(LogLevel::kWarn) : parsed;
}
}  // namespace

void set_log_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl)); }

LogLevel log_level() {
  int lvl = g_level.load();
  if (lvl == kUnset) {
    // First use: adopt CRP_LOG_LEVEL from the environment (default kWarn).
    // Racing threads compute the same value, so the CAS result is moot.
    lvl = level_from_env();
    int expected = kUnset;
    g_level.compare_exchange_strong(expected, lvl);
  }
  return static_cast<LogLevel>(lvl);
}

void log_line(LogLevel lvl, const char* tag, const std::string& msg) {
  // Serialize writers so concurrent lines never interleave mid-line.
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%s %s] %s\n", level_name(lvl), tag, msg.c_str());
}

}  // namespace crp
