#include "util/log.h"

#include <atomic>

namespace crp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel lvl, const char* tag, const std::string& msg) {
  std::fprintf(stderr, "[%s %s] %s\n", level_name(lvl), tag, msg.c_str());
}

}  // namespace crp
