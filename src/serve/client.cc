#include "serve/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/log.h"

namespace crp::serve {

namespace {

void set_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
}

/// Write all of `data`, retrying on EINTR and short writes.
bool send_all(int fd, std::string_view data, std::string* err) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_err(err, strf("send: %s", std::strerror(errno)));
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool Client::connect(u16 port, std::string* err) {
  close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, strf("socket: %s", std::strerror(errno)));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    set_err(err, strf("connect 127.0.0.1:%u: %s", unsigned{port}, std::strerror(errno)));
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool Client::set_recv_timeout_ms(int ms) {
  if (fd_ < 0 || ms < 0) return false;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool Client::send_line(const std::string& line, std::string* err) {
  if (fd_ < 0) {
    set_err(err, "not connected");
    return false;
  }
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  return send_all(fd_, framed, err);
}

bool Client::read_line(std::string* line, std::string* err) {
  for (;;) {
    size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(inbuf_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      inbuf_.erase(0, nl + 1);
      return true;
    }
    if (fd_ < 0) {
      set_err(err, "not connected");
      return false;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        set_err(err, "recv timed out waiting for daemon");
        return false;
      }
      set_err(err, strf("recv: %s", std::strerror(errno)));
      return false;
    }
    if (n == 0) {
      set_err(err, "connection closed by daemon");
      return false;
    }
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

bool Client::read_payload(size_t n, std::string* out, std::string* err) {
  while (inbuf_.size() < n) {
    if (fd_ < 0) {
      set_err(err, "not connected");
      return false;
    }
    char chunk[4096];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        set_err(err, "recv timed out waiting for daemon");
        return false;
      }
      set_err(err, strf("recv: %s", std::strerror(errno)));
      return false;
    }
    if (got == 0) {
      set_err(err, "connection closed mid-payload");
      return false;
    }
    inbuf_.append(chunk, static_cast<size_t>(got));
  }
  out->assign(inbuf_, 0, n);
  inbuf_.erase(0, n);
  return true;
}

bool Client::request(const std::string& line, std::string* reply, std::string* err) {
  if (!send_line(line, err)) return false;
  return read_line(reply, err);
}

Client::Reply Client::parse_reply(const std::string& line) {
  Reply r;
  if (line.rfind("OK", 0) == 0) {
    r.ok = true;
    r.detail = line.size() > 3 ? line.substr(3) : "";
    return r;
  }
  if (line.rfind("ERR ", 0) == 0) {
    size_t sp = line.find(' ', 4);
    r.code = std::atoi(line.c_str() + 4);
    r.detail = sp == std::string::npos ? "" : line.substr(sp + 1);
    return r;
  }
  r.code = -1;
  r.detail = line;
  return r;
}

u64 Client::submit(const std::string& tenant, const std::string& target,
                   const std::vector<std::string>& knobs, int* code,
                   std::string* err) {
  std::string line = strf("SUBMIT %s %s", tenant.c_str(), target.c_str());
  for (const std::string& k : knobs) {
    line.push_back(' ');
    line.append(k);
  }
  std::string reply;
  if (!request(line, &reply, err)) return 0;
  Reply r = parse_reply(reply);
  if (!r.ok) {
    if (code != nullptr) *code = r.code;
    set_err(err, r.detail);
    return 0;
  }
  if (code != nullptr) *code = 0;
  u64 id = std::strtoull(r.detail.c_str(), nullptr, 10);
  if (id == 0) set_err(err, strf("bad SUBMIT reply \"%s\"", reply.c_str()));
  return id;
}

bool Client::watch_until_done(u64 job_id, std::string* state, bool* cached,
                              std::string* err) {
  std::string reply;
  if (!request(strf("WATCH %llu", static_cast<unsigned long long>(job_id)), &reply,
               err))
    return false;
  Reply r = parse_reply(reply);
  if (!r.ok) {
    set_err(err, r.detail);
    return false;
  }
  // Stream EVENT lines until the DONE line for this job.
  std::string line;
  for (;;) {
    if (!read_line(&line, err)) return false;
    if (line.rfind("EVENT ", 0) == 0) continue;
    if (line.rfind("DONE ", 0) == 0) {
      unsigned long long id = 0;
      char st[32] = {0};
      int cflag = 0;
      if (std::sscanf(line.c_str(), "DONE %llu %31s cached=%d", &id, st, &cflag) < 2 ||
          id != job_id) {
        set_err(err, strf("bad DONE line \"%s\"", line.c_str()));
        return false;
      }
      if (state != nullptr) *state = st;
      if (cached != nullptr) *cached = cflag != 0;
      return true;
    }
    set_err(err, strf("unexpected line while watching: \"%s\"", line.c_str()));
    return false;
  }
}

bool Client::fetch(u64 job_id, std::string* report, std::string* err) {
  std::string reply;
  if (!request(strf("FETCH %llu", static_cast<unsigned long long>(job_id)), &reply,
               err))
    return false;
  unsigned long long nbytes = 0;
  if (std::sscanf(reply.c_str(), "REPORT %llu", &nbytes) != 1) {
    Reply r = parse_reply(reply);
    set_err(err, r.detail.empty() ? reply : r.detail);
    return false;
  }
  return read_payload(static_cast<size_t>(nbytes), report, err);
}

bool Client::run_job(const std::string& tenant, const std::string& target,
                     const std::vector<std::string>& knobs, std::string* report,
                     bool* cached, std::string* err) {
  u64 id = submit(tenant, target, knobs, nullptr, err);
  if (id == 0) return false;
  std::string state;
  if (!watch_until_done(id, &state, cached, err)) return false;
  if (state != "done") {
    set_err(err, strf("job %llu finished %s", static_cast<unsigned long long>(id),
                      state.c_str()));
    return false;
  }
  return fetch(id, report, err);
}

}  // namespace crp::serve
