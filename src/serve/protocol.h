// crp::serve — the crpd wire protocol.
//
// Line-based, "\n"-terminated, loopback-only. One connection carries any
// number of pipelined requests; replies come in request order, interleaved
// (after a WATCH) with asynchronous EVENT/DONE lines for watched jobs.
//
//   SUBMIT <tenant> <target-id> [k=v]...   -> OK <job-id> | ERR <code> <msg>
//   STATUS <job-id>                        -> OK <state> <done>/<total> <error|-> [trace=<id>]
//   WATCH  <job-id>                        -> OK watching <job-id>
//                                             ... EVENT <job-id> <state> <done>/<total> <step|-> [trace=<id>] ...
//                                             DONE <job-id> <state> cached=<0|1> [trace=<id>]
//   FETCH  <job-id>                        -> REPORT <nbytes> [trace=<id>]\n<nbytes of report>
//   CANCEL <job-id>                        -> OK cancelling <job-id>
//   STATS                                  -> OK <k>=<v> ...
//   PING                                   -> PONG
//   QUIT                                   -> (connection closes)
//
// SUBMIT knobs (k=v): seed=<u64>, priority=<int>, jobs=<int>,
// cache=<0|1>, discover=<u64 budget>, verify=<u64 budget>, plan=<0|1>,
// trace=<u64>.
// Unknown knobs are a 400; malformed values are a 400. Tenants are
// [A-Za-z0-9_-]{1,64}.
//
// trace=: pin an obs::JobTracer trace id (the daemon assigns one when
// omitted). STATUS/EVENT/DONE/REPORT echo the id as a trailing
// "trace=<id>" token — only for traced jobs, so untraced replies keep
// their historical bytes.
//
// ERR codes follow the obvious HTTP analogy: 400 bad request, 404 unknown
// target/job, 409 wrong state (e.g. FETCH before DONE), 429 admission
// rejected (per-tenant quota or submission-rate window), 500 internal.
//
// This header is the pure framing/parsing half (no sockets, no queue):
// both the daemon and the client link it, and tests exercise it directly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pipeline/job_queue.h"
#include "util/common.h"

namespace crp::serve {

/// Accumulate stream fragments, hand out complete "\n"-terminated lines
/// (terminator stripped; a trailing "\r" is stripped too). Bounded by the
/// caller checking size() against a protocol limit.
class LineBuffer {
 public:
  void append(std::string_view data) { buf_.append(data.data(), data.size()); }
  /// Pop the next complete line into *line; false when none is buffered.
  bool next(std::string* line);
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// One parsed request line: whitespace-split verb + arguments.
struct Request {
  std::string verb;
  std::vector<std::string> args;
};

Request parse_request(std::string_view line);

/// Is `tenant` a valid tenant name ([A-Za-z0-9_-]{1,64})?
bool valid_tenant(std::string_view tenant);

/// Strict u64 parse (strtoull bases, whole-token match — trailing garbage
/// rejects). Shared by SUBMIT knob values and job-id arguments.
bool parse_u64(std::string_view v, u64* out);

/// Apply one "k=v" SUBMIT knob onto `spec`. False + *err on unknown knob
/// or malformed value.
bool apply_knob(std::string_view kv, pipeline::JobSpec* spec, std::string* err);

// --- reply formatting (every line includes the trailing "\n") -----------------

std::string ok_line(std::string_view detail);
std::string err_line(int code, std::string_view msg);
std::string event_line(const pipeline::JobEvent& ev);
std::string done_line(const pipeline::JobEvent& ev);
std::string status_line(const pipeline::JobResult& r);
/// "REPORT <nbytes>[ trace=<id>]\n" + the report bytes.
std::string report_frame(std::string_view report, u64 trace = 0);

}  // namespace crp::serve
