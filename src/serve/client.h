// crp::serve::Client — blocking line-protocol client for crpd.
//
// The counterpart of Daemon for tools (crpc), tests, and the synthetic
// swarm: a plain blocking loopback socket with EINTR-safe full-buffer
// send/recv loops and its own line reassembly. One Client = one
// connection; instances are not thread-safe (the swarm gives each worker
// thread its own).
//
// Layering: primitives (request / read_line / read_payload) speak raw
// protocol lines; conveniences (submit / watch_until_done / fetch /
// run_job) wrap the common SUBMIT→WATCH→FETCH flow and parse replies.
#pragma once

#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/common.h"

namespace crp::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:`port`. False + *err on failure.
  bool connect(u16 port, std::string* err = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Bound every subsequent recv by `ms` (SO_RCVTIMEO; 0 = no timeout,
  /// the default). An expired wait fails the read with a "timed out"
  /// error instead of blocking forever — the swarm uses this so a WATCH
  /// stream that never terminates turns into a counted failure.
  bool set_recv_timeout_ms(int ms);

  // --- protocol primitives ---
  /// Send `line` ("\n" appended if missing) and read one reply line.
  bool request(const std::string& line, std::string* reply, std::string* err = nullptr);
  /// Send without waiting for a reply (pipelining).
  bool send_line(const std::string& line, std::string* err = nullptr);
  /// Next line from the stream (blocking).
  bool read_line(std::string* line, std::string* err = nullptr);
  /// Exactly `n` raw bytes (the FETCH payload).
  bool read_payload(size_t n, std::string* out, std::string* err = nullptr);

  // --- conveniences ---
  struct Reply {
    bool ok = false;
    int code = 0;        // ERR code when !ok
    std::string detail;  // text after OK/ERR-code
  };
  static Reply parse_reply(const std::string& line);

  /// SUBMIT; returns job id (0 on rejection/error, with *code/*err filled).
  u64 submit(const std::string& tenant, const std::string& target,
             const std::vector<std::string>& knobs = {}, int* code = nullptr,
             std::string* err = nullptr);
  /// WATCH until the DONE line; returns the terminal state name and
  /// cached flag. False on protocol/transport error.
  bool watch_until_done(u64 job_id, std::string* state, bool* cached,
                        std::string* err = nullptr);
  /// FETCH the finished report's exact bytes.
  bool fetch(u64 job_id, std::string* report, std::string* err = nullptr);
  /// SUBMIT + WATCH + FETCH. False on any failure (err explains).
  bool run_job(const std::string& tenant, const std::string& target,
               const std::vector<std::string>& knobs, std::string* report,
               bool* cached = nullptr, std::string* err = nullptr);

 private:
  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace crp::serve
