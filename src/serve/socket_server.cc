#include "serve/socket_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/log.h"

namespace crp::serve {

namespace {

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(u16 port, Handlers handlers) {
  if (running()) return true;
  handlers_ = std::move(handlers);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    CRP_WARN("serve", "socket() failed: %s", std::strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0 || !set_nonblocking(fd)) {
    CRP_WARN("serve", "cannot bind 127.0.0.1:%u: %s", port,
             std::strerror(errno));
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  else
    port_ = port;

  int pipefd[2];
  if (::pipe(pipefd) != 0 || !set_nonblocking(pipefd[0]) ||
      !set_nonblocking(pipefd[1])) {
    CRP_WARN("serve", "wake pipe failed: %s", std::strerror(errno));
    ::close(fd);
    return false;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void SocketServer::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  // Tear down whatever survived the loop (fires on_close for each).
  std::vector<std::pair<ConnId, int>> fds;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, c] : conns_) fds.emplace_back(id, c.fd);
    conns_.clear();
  }
  for (auto& [id, fd] : fds) {
    ::close(fd);
    if (handlers_.on_close) handlers_.on_close(id);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
  running_.store(false, std::memory_order_release);
}

size_t SocketServer::connection_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return conns_.size();
}

SocketServer::Stats SocketServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void SocketServer::wake() {
  if (wake_wr_ < 0) return;
  char b = 1;
  for (;;) {
    ssize_t n = ::write(wake_wr_, &b, 1);
    if (n >= 0 || errno != EINTR) break;  // EAGAIN = already pending: fine
  }
}

bool SocketServer::send(ConnId conn, std::string data) {
  bool over = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = conns_.find(conn);
    if (it == conns_.end() || it->second.closing) return false;
    Conn& c = it->second;
    // Compact the drained prefix before growing the buffer.
    if (c.out_off > 0) {
      c.out.erase(0, c.out_off);
      c.out_off = 0;
    }
    c.out += data;
    size_t pending = c.out.size() - c.out_off;
    if (pending > stats_.out_buffer_hwm) stats_.out_buffer_hwm = pending;
    if (c.out.size() > opts_.max_out_buffer) {
      c.closing = true;  // runaway writer / stalled reader: drop it
      ++stats_.dropped_overflow;
      over = true;
    }
  }
  wake();
  return !over;
}

void SocketServer::close_conn(ConnId conn, bool after_flush) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = conns_.find(conn);
    if (it == conns_.end()) return;
    if (after_flush && (it->second.out.size() - it->second.out_off) > 0)
      it->second.close_after_flush = true;
    else
      it->second.closing = true;
  }
  wake();
}

void SocketServer::accept_clients() {
  for (;;) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN/EWOULDBLOCK: drained
    }
    if (!set_nonblocking(client)) {
      ::close(client);
      continue;
    }
    ConnId id;
    {
      std::lock_guard<std::mutex> lk(mu_);
      id = next_id_++;
      conns_[id].fd = client;
      ++stats_.accepted;
    }
    if (handlers_.on_open) handlers_.on_open(id);
  }
}

bool SocketServer::drain_in(ConnId id, Conn& c) {
  std::vector<char> buf(opts_.max_in_chunk);
  for (;;) {
    ssize_t got = ::recv(c.fd, buf.data(), buf.size(), 0);
    if (got > 0) {
      if (handlers_.on_data)
        handlers_.on_data(id, std::string_view(buf.data(), static_cast<size_t>(got)));
      // The handler may have queued a close (e.g. a QUIT command).
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = conns_.find(id);
        if (it == conns_.end() || it->second.closing) return it != conns_.end();
      }
      if (got < static_cast<ssize_t>(buf.size())) return true;  // drained
      continue;
    }
    if (got == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // real error
  }
}

bool SocketServer::drain_out(Conn& c) {
  // Held across the (non-blocking) send: concurrent send() calls append to
  // c.out and may reallocate it, so the buffer must not be read unlocked.
  std::lock_guard<std::mutex> lk(mu_);
  for (;;) {
    size_t pending = c.out.size() - c.out_off;
    if (pending == 0) {
      c.out.clear();
      c.out_off = 0;
      return true;
    }
    ssize_t sent = ::send(c.fd, c.out.data() + c.out_off, pending, MSG_NOSIGNAL);
    if (sent > 0) {
      c.out_off += static_cast<size_t>(sent);
      continue;  // partial write: keep pushing until EAGAIN
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;  // socket full: POLLOUT will resume us
    return false;   // EPIPE/ECONNRESET/...
  }
}

void SocketServer::teardown(ConnId id, Conn& c) {
  ::close(c.fd);
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns_.erase(id);
  }
  if (handlers_.on_close) handlers_.on_close(id);
}

void SocketServer::loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Snapshot the poll set. Interest: always POLLIN; POLLOUT only while
    // bytes are pending (level-triggered poll would spin otherwise).
    std::vector<pollfd> pfds;
    std::vector<ConnId> ids;
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_rd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto& [id, c] : conns_) {
        short events = POLLIN;
        if (c.closing || (c.out.size() - c.out_off) > 0) events |= POLLOUT;
        pfds.push_back({c.fd, events, 0});
        ids.push_back(id);
      }
    }

    int n = ::poll(pfds.data(), pfds.size(), opts_.poll_timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (pfds[1].revents & POLLIN) {  // drain the wake pipe
      char sink[256];
      while (::read(wake_rd_, sink, sizeof sink) > 0) {
      }
    }
    if (pfds[0].revents & POLLIN) accept_clients();

    for (size_t i = 0; i < ids.size(); ++i) {
      ConnId id = ids[i];
      short rev = pfds[i + 2].revents;
      Conn* c;
      bool closing;
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        c = &it->second;
        closing = c->closing;
      }
      bool alive = true;
      if (!closing && (rev & (POLLIN | POLLHUP | POLLERR)))
        alive = drain_in(id, *c);
      if (alive) {
        std::lock_guard<std::mutex> lk(mu_);
        closing = c->closing;  // the data handler may have queued a close
      }
      if (alive && !closing) alive = drain_out(*c);
      bool flushed;
      {
        std::lock_guard<std::mutex> lk(mu_);
        flushed = (c->out.size() - c->out_off) == 0;
        if (c->close_after_flush && flushed) c->closing = true;
        closing = c->closing;
      }
      if (closing && !flushed) {
        // A close was requested while bytes are still pending without
        // after_flush semantics — best effort: drop them.
        alive = false;
      }
      if (!alive || closing) teardown(id, *c);
    }
  }
  // Leave connection teardown to stop(): it owns the final close+callback.
}

}  // namespace crp::serve
