#include "serve/protocol.h"

#include <cstdlib>
#include <cstring>

namespace crp::serve {

bool LineBuffer::next(std::string* line) {
  size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  line->assign(buf_, 0, nl);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  buf_.erase(0, nl + 1);
  return true;
}

Request parse_request(std::string_view line) {
  Request req;
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto token = [&]() -> std::string {
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    return std::string(line.substr(start, i - start));
  };
  skip_ws();
  if (i < line.size()) req.verb = token();
  for (;;) {
    skip_ws();
    if (i >= line.size()) break;
    req.args.push_back(token());
  }
  return req;
}

bool valid_tenant(std::string_view tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (char c : tenant) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool parse_u64(std::string_view v, u64* out) {
  if (v.empty()) return false;
  char buf[32];
  if (v.size() >= sizeof buf) return false;
  std::memcpy(buf, v.data(), v.size());
  buf[v.size()] = '\0';
  char* end = nullptr;
  unsigned long long x = std::strtoull(buf, &end, 0);
  if (end != buf + v.size()) return false;
  *out = x;
  return true;
}

namespace {

bool parse_int(std::string_view v, int* out) {
  if (v.empty()) return false;
  char buf[32];
  if (v.size() >= sizeof buf) return false;
  std::memcpy(buf, v.data(), v.size());
  buf[v.size()] = '\0';
  char* end = nullptr;
  long x = std::strtol(buf, &end, 0);
  if (end != buf + v.size()) return false;
  *out = static_cast<int>(x);
  return true;
}

}  // namespace

bool apply_knob(std::string_view kv, pipeline::JobSpec* spec, std::string* err) {
  size_t eq = kv.find('=');
  if (eq == std::string_view::npos) {
    *err = strf("knob \"%.*s\" is not k=v", static_cast<int>(kv.size()), kv.data());
    return false;
  }
  std::string_view k = kv.substr(0, eq);
  std::string_view v = kv.substr(eq + 1);
  bool ok = true;
  if (k == "seed") {
    ok = parse_u64(v, &spec->seed);
  } else if (k == "priority") {
    ok = parse_int(v, &spec->priority);
  } else if (k == "jobs") {
    ok = parse_int(v, &spec->opts.jobs);
  } else if (k == "cache") {
    u64 x = 0;
    ok = parse_u64(v, &x);
    spec->opts.cache = x != 0;
  } else if (k == "discover") {
    ok = parse_u64(v, &spec->opts.syscall.discover_budget);
  } else if (k == "verify") {
    ok = parse_u64(v, &spec->opts.syscall.verify_budget);
  } else if (k == "plan") {
    // Exploit-plan epilogue: synthesize + replay an ExploitPlan after the
    // funnel (the report gains plan/replay lines).
    u64 x = 0;
    ok = parse_u64(v, &x);
    spec->opts.plan = x != 0;
  } else if (k == "trace") {
    // Client-pinned obs::JobTracer trace id; 0 (the default) lets the
    // daemon assign one. Duplicate submissions may share a pinned trace.
    ok = parse_u64(v, &spec->trace);
  } else {
    *err = strf("unknown knob \"%.*s\"", static_cast<int>(k.size()), k.data());
    return false;
  }
  if (!ok) {
    *err = strf("bad value for \"%.*s\"", static_cast<int>(k.size()), k.data());
    return false;
  }
  return true;
}

std::string ok_line(std::string_view detail) {
  if (detail.empty()) return "OK\n";
  return strf("OK %.*s\n", static_cast<int>(detail.size()), detail.data());
}

std::string err_line(int code, std::string_view msg) {
  return strf("ERR %d %.*s\n", code, static_cast<int>(msg.size()), msg.data());
}

namespace {

// Traced replies carry a trailing " trace=<id>" echo; untraced ones keep
// the PR-8 byte format, so batch diffs and pinned-reply tests are
// untouched. Every existing client parse tolerates trailing tokens.
std::string trace_suffix(u64 trace) {
  if (trace == 0) return std::string();
  return strf(" trace=%llu", static_cast<unsigned long long>(trace));
}

}  // namespace

std::string event_line(const pipeline::JobEvent& ev) {
  return strf("EVENT %llu %s %zu/%zu %s%s%s\n",
              static_cast<unsigned long long>(ev.id),
              pipeline::job_state_name(ev.state), ev.step, ev.steps,
              ev.step_name.empty() ? "-" : ev.step_name.c_str(),
              ev.preempted ? " preempted" : "", trace_suffix(ev.trace).c_str());
}

std::string done_line(const pipeline::JobEvent& ev) {
  return strf("DONE %llu %s cached=%d%s\n",
              static_cast<unsigned long long>(ev.id),
              pipeline::job_state_name(ev.state), ev.cache_hit ? 1 : 0,
              trace_suffix(ev.trace).c_str());
}

std::string status_line(const pipeline::JobResult& r) {
  return strf("OK %s %zu/%zu %s%s\n", pipeline::job_state_name(r.state),
              r.steps_done, r.steps_total,
              r.error.empty() ? "-" : r.error.c_str(),
              trace_suffix(r.trace).c_str());
}

std::string report_frame(std::string_view report, u64 trace) {
  return strf("REPORT %zu%s\n", report.size(), trace_suffix(trace).c_str()) +
         std::string(report);
}

}  // namespace crp::serve
