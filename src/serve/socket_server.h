// crp::serve::SocketServer — the reusable loopback socket-server core.
//
// Generalizes the single-client accept loop that used to live inside
// src/obs/serve.cc into the piece every frontend shares: a poll-driven
// event loop multiplexing many concurrent connections with explicit
// partial-read / partial-write state machines. Both network frontends sit
// on top of it:
//
//   * obs::serve::ObsServer   — HTTP/1.0 telemetry snapshots (one request,
//                               close after flush);
//   * serve::Daemon (crpd)    — the long-lived line-protocol discovery
//                               service (pipelined requests, streamed
//                               progress events).
//
// Contract:
//   * callbacks (on_open / on_data / on_close) run on the server thread,
//     strictly serialized per connection — handlers need no locking for
//     per-connection state;
//   * send() is callable from ANY thread (the JobQueue's workers push
//     progress events): it appends to the connection's outbound buffer and
//     wakes the poll loop through a self-pipe. Writes drain as the socket
//     accepts them — partial sends and EINTR/EAGAIN are handled here, never
//     by the caller;
//   * a slow or stalled reader never blocks the loop: undrained bytes stay
//     buffered (bounded by max_out_buffer) while other clients progress;
//   * close_conn(after_flush=true) closes once the outbound buffer drains —
//     the HTTP/1.0 "response then close" idiom without sleeping.
//
// Deliberately transport-only: no framing, no protocol, no obs counters
// (the obs library itself links against this core, so it stays util-only).
// Loopback binds exclusively; this is a local service substrate, not an
// internet-facing server.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "util/common.h"

namespace crp::serve {

/// Monotonically increasing per-connection id (never reused by a server
/// instance, so a stale id is harmlessly ignored).
using ConnId = u64;

class SocketServer {
 public:
  struct Handlers {
    /// A client connected.
    std::function<void(ConnId)> on_open;
    /// Bytes arrived (as read off the socket — any framing is the
    /// handler's job; a single call may carry a fraction of a message or
    /// several pipelined ones).
    std::function<void(ConnId, std::string_view)> on_data;
    /// Connection closed (peer hangup, error, or close_conn). Fires at
    /// most once per connection.
    std::function<void(ConnId)> on_close;
  };

  struct Options {
    /// Hard cap on bytes buffered for one connection in either direction;
    /// exceeding it drops the connection (a runaway or stalled peer must
    /// not hold the process's memory hostage).
    size_t max_out_buffer = 64u << 20;
    size_t max_in_chunk = 64 * 1024;
    /// poll() tick bounding shutdown latency when no wake arrives.
    int poll_timeout_ms = 200;
  };

  SocketServer() = default;
  explicit SocketServer(Options opts) : opts_(opts) {}
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start the loop thread.
  /// False (no thread started) when the bind fails.
  bool start(u16 port, Handlers handlers);
  /// Stop the loop, close every connection (on_close fires), join.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  u16 port() const { return port_; }
  size_t connection_count() const;

  /// Transport tallies. Plain values, no obs dependency (this core stays
  /// util-only); frontends that want them in the exposition schema mirror
  /// them into the Registry (the daemon does, as serve.conn.*).
  struct Stats {
    u64 accepted = 0;          // connections accepted since start
    u64 dropped_overflow = 0;  // dropped: out-buffer exceeded the hard cap
    u64 out_buffer_hwm = 0;    // high-water mark of any conn's out-buffer
  };
  Stats stats() const;

  /// Queue bytes for `conn`; thread-safe. False when the connection is
  /// gone or its outbound buffer is over limit (the connection is then
  /// dropped). Bytes are drained by the loop as the socket accepts them.
  bool send(ConnId conn, std::string data);
  /// Close `conn`; with after_flush, once its outbound buffer drains.
  void close_conn(ConnId conn, bool after_flush = true);

 private:
  struct Conn {
    int fd = -1;
    std::string out;        // pending outbound bytes
    size_t out_off = 0;     // drained prefix of `out`
    bool close_after_flush = false;
    bool closing = false;   // queued for removal this iteration
  };

  void loop();
  void wake();
  void accept_clients();
  /// Read until EAGAIN; false when the connection is done (peer closed or
  /// error) and should be torn down.
  bool drain_in(ConnId id, Conn& c);
  /// Write until EAGAIN or empty; false on a dead socket.
  bool drain_out(Conn& c);
  void teardown(ConnId id, Conn& c);

  Options opts_;
  Handlers handlers_;
  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;
  u16 port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  /// Connection table. The loop thread mutates it; send()/close_conn()
  /// from other threads only touch existing entries' buffers/flags, under
  /// the lock.
  mutable std::mutex mu_;
  std::map<ConnId, Conn> conns_;
  ConnId next_id_ = 1;
  Stats stats_;  // guarded by mu_
};

}  // namespace crp::serve
