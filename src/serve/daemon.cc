#include "serve/daemon.h"

#include <chrono>
#include <cstdlib>
#include <vector>

#include "obs/obs.h"
#include "pipeline/campaign.h"
#include "util/log.h"

namespace crp::serve {

namespace {
// A request line (or a headerless garbage stream) larger than this is a
// protocol violation, not a slow writer.
constexpr size_t kMaxLine = 64 * 1024;

// Strict single-argument job-id parse (same rules as SUBMIT knob values:
// whole-token match, so "7abc" is a 400, not job 7). Ids start at 1.
bool job_id_arg(const Request& req, pipeline::JobId* id) {
  return req.args.size() == 1 && parse_u64(req.args[0], id) && *id != 0;
}
}  // namespace

Daemon::Daemon(DaemonOptions opts)
    : opts_(opts),
      registry_(pipeline::TargetRegistry::builtin()),
      queue_(pipeline::JobQueueOptions{opts.workers, opts.store}) {
  obs::Registry& reg = obs::Registry::global();
  c_requests_ = &reg.counter("crpd.requests");
  c_accepted_ = &reg.counter("crpd.admission.accepted");
  c_rej_quota_ = &reg.counter("crpd.admission.rejected_quota");
  c_rej_rate_ = &reg.counter("crpd.admission.rejected_rate");
  c_rej_tenants_ = &reg.counter("crpd.admission.rejected_tenants");
  c_conns_opened_ = &reg.counter("crpd.conns.opened");
  c_conns_closed_ = &reg.counter("crpd.conns.closed");
  queue_.set_event_sink([this](const pipeline::JobEvent& ev) { on_job_event(ev); });
}

Daemon::~Daemon() { stop(); }

bool Daemon::start() {
  if (running()) return true;
  SocketServer::Handlers h;
  h.on_open = [this](ConnId c) { on_open(c); };
  h.on_data = [this](ConnId c, std::string_view d) { on_data(c, d); };
  h.on_close = [this](ConnId c) { on_close(c); };
  return server_.start(opts_.port, std::move(h));
}

void Daemon::stop() { server_.stop(); }

u64 Daemon::wall_ns() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

void Daemon::on_open(ConnId conn) {
  lines_.emplace(conn, LineBuffer());
  c_conns_opened_->inc();
}

void Daemon::on_close(ConnId conn) {
  lines_.erase(conn);
  c_conns_closed_->inc();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, conns] : watchers_) conns.erase(conn);
}

void Daemon::on_data(ConnId conn, std::string_view data) {
  auto it = lines_.find(conn);
  if (it == lines_.end()) return;  // already being torn down
  LineBuffer& lb = it->second;
  lb.append(data);
  std::string line;
  while (lb.next(&line)) {
    handle_line(conn, line);
    // handle_line may have closed the connection (QUIT); the buffer entry
    // survives until on_close, so continuing to drain is harmless.
  }
  if (lb.size() > kMaxLine) {
    server_.send(conn, err_line(400, "request line too long"));
    server_.close_conn(conn, /*after_flush=*/true);
  }
}

void Daemon::handle_line(ConnId conn, const std::string& line) {
  if (line.empty()) return;  // blank keep-alive lines are ignored
  c_requests_->inc();
  Request req = parse_request(line);
  if (req.verb == "PING") {
    server_.send(conn, "PONG\n");
  } else if (req.verb == "SUBMIT") {
    handle_submit(conn, req);
  } else if (req.verb == "STATUS") {
    pipeline::JobId id = 0;
    if (!job_id_arg(req, &id)) {
      server_.send(conn, err_line(400, "usage: STATUS <job-id>"));
      return;
    }
    pipeline::JobResult r = queue_.status(id);
    if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
      server_.send(conn, err_line(404, "unknown job"));
      return;
    }
    server_.send(conn, status_line(r));
  } else if (req.verb == "WATCH") {
    handle_watch(conn, req);
  } else if (req.verb == "FETCH") {
    handle_fetch(conn, req);
  } else if (req.verb == "CANCEL") {
    pipeline::JobId id = 0;
    if (!job_id_arg(req, &id)) {
      server_.send(conn, err_line(400, "usage: CANCEL <job-id>"));
      return;
    }
    pipeline::JobResult r = queue_.status(id);
    if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
      server_.send(conn, err_line(404, "unknown job"));
      return;
    }
    if (queue_.cancel(id)) {
      server_.send(conn, ok_line(strf("cancelling %llu",
                                      static_cast<unsigned long long>(id))));
    } else {
      server_.send(conn, err_line(409, "job already terminal"));
    }
  } else if (req.verb == "STATS") {
    pipeline::ArtifactStore& st =
        opts_.store != nullptr ? *opts_.store : pipeline::ArtifactStore::global();
    server_.send(
        conn,
        ok_line(strf("active=%zu pending=%zu cache_hits=%llu cache_misses=%llu "
                     "cache_stores=%llu cache_evictions=%llu",
                     queue_.active_total(), queue_.pending(),
                     static_cast<unsigned long long>(st.hits()),
                     static_cast<unsigned long long>(st.misses()),
                     static_cast<unsigned long long>(st.stores()),
                     static_cast<unsigned long long>(st.evictions()))));
  } else if (req.verb == "QUIT") {
    server_.close_conn(conn, /*after_flush=*/true);
  } else {
    server_.send(conn, err_line(400, strf("unknown verb \"%s\"", req.verb.c_str())));
  }
}

void Daemon::handle_submit(ConnId conn, const Request& req) {
  if (req.args.size() < 2) {
    server_.send(conn, err_line(400, "usage: SUBMIT <tenant> <target-id> [k=v]..."));
    return;
  }
  const std::string& tenant = req.args[0];
  const std::string& target_id = req.args[1];
  if (!valid_tenant(tenant)) {
    server_.send(conn, err_line(400, "bad tenant name"));
    return;
  }
  const pipeline::TargetSpec* spec = registry_.find(target_id);
  if (spec == nullptr) {
    server_.send(conn, err_line(404, strf("unknown target \"%s\"", target_id.c_str())));
    return;
  }

  pipeline::JobSpec js;
  js.target = *spec;
  js.opts = opts_.defaults;
  js.tenant = tenant;
  for (size_t i = 2; i < req.args.size(); ++i) {
    std::string err;
    if (!apply_knob(req.args[i], &js, &err)) {
      server_.send(conn, err_line(400, err));
      return;
    }
  }

  // Admission: quota on concurrently-active jobs, then the submission-rate
  // window (the §VII detector watching the front door; rejected attempts
  // consume window slots, so a hammering tenant stays rejected).
  if (queue_.active(tenant) >= opts_.tenant_max_active) {
    c_rej_quota_->inc();
    server_.send(conn, err_line(429, strf("tenant quota exceeded (%zu active)",
                                          opts_.tenant_max_active)));
    return;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    u64 now = wall_ns();
    // Tenant names are client-minted: expire windows with no submission
    // inside the trailing window, and cap the distinct names tracked at
    // once, so cycling fresh tenants cannot grow daemon state unboundedly.
    for (auto it = rates_.begin(); it != rates_.end();) {
      if (it->first != tenant && it->second.count(now) == 0)
        it = rates_.erase(it);
      else
        ++it;
    }
    auto it = rates_.find(tenant);
    if (it == rates_.end()) {
      if (rates_.size() >= opts_.max_tracked_tenants) {
        lk.unlock();
        c_rej_tenants_->inc();
        server_.send(conn, err_line(429, "too many active tenants"));
        return;
      }
      it = rates_.try_emplace(tenant, opts_.admission_window_ns).first;
    }
    if (it->second.add(now) > opts_.admission_window_max) {
      lk.unlock();
      c_rej_rate_->inc();
      server_.send(conn, err_line(429, "submission rate exceeded"));
      return;
    }
  }

  pipeline::JobId id = queue_.submit(std::move(js));
  c_accepted_->inc();
  server_.send(conn, ok_line(strf("%llu", static_cast<unsigned long long>(id))));
}

void Daemon::handle_watch(ConnId conn, const Request& req) {
  pipeline::JobId id = 0;
  if (!job_id_arg(req, &id)) {
    server_.send(conn, err_line(400, "usage: WATCH <job-id>"));
    return;
  }
  pipeline::JobResult r = queue_.status(id);
  if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
    server_.send(conn, err_line(404, "unknown job"));
    return;
  }
  server_.send(conn, ok_line(strf("watching %llu", static_cast<unsigned long long>(id))));
  // Registration and the terminal check happen under one lock hold: the
  // event sink also locks mu_, so either we see the terminal state (and
  // answer directly, without registering) or the sink sees our
  // registration — a DONE line arrives exactly once.
  std::lock_guard<std::mutex> lk(mu_);
  pipeline::JobResult now;
  if (queue_.try_result(id, &now)) {
    pipeline::JobEvent ev;
    ev.id = now.id;
    ev.state = now.state;
    ev.step = now.steps_done;
    ev.steps = now.steps_total;
    ev.cache_hit = now.report.cache_hit;
    server_.send(conn, done_line(ev));
    return;
  }
  watchers_[id].insert(conn);
}

void Daemon::handle_fetch(ConnId conn, const Request& req) {
  pipeline::JobId id = 0;
  if (!job_id_arg(req, &id)) {
    server_.send(conn, err_line(400, "usage: FETCH <job-id>"));
    return;
  }
  pipeline::JobResult r = queue_.status(id);
  if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
    server_.send(conn, err_line(404, "unknown job"));
    return;
  }
  if (!pipeline::job_state_terminal(r.state)) {
    server_.send(conn, err_line(409, "job not finished"));
    return;
  }
  if (r.state == pipeline::JobState::kCancelled) {
    server_.send(conn, err_line(409, "job was cancelled"));
    return;
  }
  if (r.state == pipeline::JobState::kFailed) {
    server_.send(conn, err_line(500, r.error));
    return;
  }
  // cache_tag=false: a fetched report must be byte-identical whether the
  // job computed or replayed from the shared store (CI diffs it against
  // the batch examples/campaign block).
  server_.send(conn, report_frame(pipeline::render_report(r.report,
                                                          /*cache_tag=*/false)));
}

void Daemon::on_job_event(const pipeline::JobEvent& ev) {
  std::vector<ConnId> conns;
  bool terminal = pipeline::job_state_terminal(ev.state);
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = watchers_.find(ev.id);
    if (it == watchers_.end()) return;
    conns.assign(it->second.begin(), it->second.end());
    if (terminal) watchers_.erase(it);
  }
  std::string line = terminal ? done_line(ev) : event_line(ev);
  for (ConnId c : conns) server_.send(c, line);
}

}  // namespace crp::serve
