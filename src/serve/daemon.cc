#include "serve/daemon.h"

#include <chrono>
#include <cstdlib>
#include <vector>

#include "obs/obs.h"
#include "obs/serve.h"
#include "obs/trace.h"
#include "pipeline/campaign.h"
#include "util/log.h"

namespace crp::serve {

namespace {
// A request line (or a headerless garbage stream) larger than this is a
// protocol violation, not a slow writer.
constexpr size_t kMaxLine = 64 * 1024;

// Strict single-argument job-id parse (same rules as SUBMIT knob values:
// whole-token match, so "7abc" is a 400, not job 7). Ids start at 1.
bool job_id_arg(const Request& req, pipeline::JobId* id) {
  return req.args.size() == 1 && parse_u64(req.args[0], id) && *id != 0;
}
}  // namespace

Daemon::Daemon(DaemonOptions opts)
    : opts_(opts),
      registry_(pipeline::TargetRegistry::builtin()),
      queue_(pipeline::JobQueueOptions{opts.workers, opts.store}) {
  obs::Registry& reg = obs::Registry::global();
  c_requests_ = &reg.counter("crpd.requests");
  c_accepted_ = &reg.counter("crpd.admission.accepted");
  c_rej_quota_ = &reg.counter("crpd.admission.rejected_quota");
  c_rej_rate_ = &reg.counter("crpd.admission.rejected_rate");
  c_rej_tenants_ = &reg.counter("crpd.admission.rejected_tenants");
  c_conns_opened_ = &reg.counter("crpd.conns.opened");
  c_conns_closed_ = &reg.counter("crpd.conns.closed");
  // Arm end-to-end tracing: every accepted SUBMIT gets a trace id and its
  // lifecycle spans. Batch tools never arm, so their output is untouched.
  obs::JobTracer::global().set_armed(true);
  queue_.set_event_sink([this](const pipeline::JobEvent& ev) { on_job_event(ev); });
}

Daemon::~Daemon() { stop(); }

bool Daemon::start() {
  if (running()) return true;
  SocketServer::Handlers h;
  h.on_open = [this](ConnId c) { on_open(c); };
  h.on_data = [this](ConnId c, std::string_view d) { on_data(c, d); };
  h.on_close = [this](ConnId c) { on_close(c); };
  if (!server_.start(opts_.port, std::move(h))) return false;
  // Serve the daemon's live state on the obs route table (the ObsServer
  // may or may not be running; registration is independent of it).
  obs::serve::register_route("/jobs.json", "application/json",
                             [this] { return jobs_json(); });
  obs::serve::register_route("/tenants.json", "application/json",
                             [this] { return tenants_json(); });
  {
    std::lock_guard<std::mutex> lk(tick_mu_);
    tick_stop_ = false;
  }
  tick_thread_ = std::thread([this] { tick_loop(); });
  return true;
}

void Daemon::stop() {
  if (tick_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(tick_mu_);
      tick_stop_ = true;
    }
    tick_cv_.notify_all();
    tick_thread_.join();
  }
  obs::serve::unregister_route("/jobs.json");
  obs::serve::unregister_route("/tenants.json");
  server_.stop();
}

void Daemon::tick_loop() {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c_acc = reg.counter("serve.conn.accepted");
  obs::Counter& c_drop = reg.counter("serve.conn.dropped");
  obs::Gauge& g_hwm = reg.gauge("serve.conn.out_buffer_hwm");
  obs::Gauge& g_depth = reg.gauge("crpd.queue.depth");
  obs::Gauge& g_active = reg.gauge("crpd.jobs.active");
  // The transport keeps plain tallies (it sits below obs); mirror them as
  // counter deltas so exposition diffs stay meaningful.
  u64 pub_acc = 0, pub_drop = 0;
  std::unique_lock<std::mutex> lk(tick_mu_);
  for (;;) {
    tick_cv_.wait_for(lk, std::chrono::milliseconds(opts_.tick_ms),
                      [&] { return tick_stop_; });
    if (tick_stop_) return;
    lk.unlock();
    if (opts_.watchdog)
      obs::JobTracer::global().watchdog_scan(opts_.watchdog_step_deadline_ns,
                                             opts_.watchdog_lease_deadline_ns);
    SocketServer::Stats st = server_.stats();
    if (st.accepted > pub_acc) {
      c_acc.inc(st.accepted - pub_acc);
      pub_acc = st.accepted;
    }
    if (st.dropped_overflow > pub_drop) {
      c_drop.inc(st.dropped_overflow - pub_drop);
      pub_drop = st.dropped_overflow;
    }
    g_hwm.update_max(static_cast<i64>(st.out_buffer_hwm));
    g_depth.set(static_cast<i64>(queue_.pending()));
    g_active.set(static_cast<i64>(queue_.active_total()));
    lk.lock();
  }
}

u64 Daemon::wall_ns() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

void Daemon::on_open(ConnId conn) {
  lines_.emplace(conn, LineBuffer());
  c_conns_opened_->inc();
}

void Daemon::on_close(ConnId conn) {
  lines_.erase(conn);
  c_conns_closed_->inc();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, conns] : watchers_) conns.erase(conn);
}

void Daemon::on_data(ConnId conn, std::string_view data) {
  auto it = lines_.find(conn);
  if (it == lines_.end()) return;  // already being torn down
  LineBuffer& lb = it->second;
  lb.append(data);
  std::string line;
  while (lb.next(&line)) {
    handle_line(conn, line);
    // handle_line may have closed the connection (QUIT); the buffer entry
    // survives until on_close, so continuing to drain is harmless.
  }
  if (lb.size() > kMaxLine) {
    server_.send(conn, err_line(400, "request line too long"));
    server_.close_conn(conn, /*after_flush=*/true);
  }
}

void Daemon::handle_line(ConnId conn, const std::string& line) {
  if (line.empty()) return;  // blank keep-alive lines are ignored
  c_requests_->inc();
  Request req = parse_request(line);
  if (req.verb == "PING") {
    server_.send(conn, "PONG\n");
  } else if (req.verb == "SUBMIT") {
    handle_submit(conn, req);
  } else if (req.verb == "STATUS") {
    pipeline::JobId id = 0;
    if (!job_id_arg(req, &id)) {
      server_.send(conn, err_line(400, "usage: STATUS <job-id>"));
      return;
    }
    pipeline::JobResult r = queue_.status(id);
    if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
      server_.send(conn, err_line(404, "unknown job"));
      return;
    }
    server_.send(conn, status_line(r));
  } else if (req.verb == "WATCH") {
    handle_watch(conn, req);
  } else if (req.verb == "FETCH") {
    handle_fetch(conn, req);
  } else if (req.verb == "CANCEL") {
    pipeline::JobId id = 0;
    if (!job_id_arg(req, &id)) {
      server_.send(conn, err_line(400, "usage: CANCEL <job-id>"));
      return;
    }
    pipeline::JobResult r = queue_.status(id);
    if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
      server_.send(conn, err_line(404, "unknown job"));
      return;
    }
    if (queue_.cancel(id)) {
      server_.send(conn, ok_line(strf("cancelling %llu",
                                      static_cast<unsigned long long>(id))));
    } else {
      server_.send(conn, err_line(409, "job already terminal"));
    }
  } else if (req.verb == "STATS") {
    pipeline::ArtifactStore& st =
        opts_.store != nullptr ? *opts_.store : pipeline::ArtifactStore::global();
    // depth= splits pending by priority ("p<prio>:<n>", dispatch order) and
    // retained= counts kept terminals — together they tell a busy daemon
    // (deep queue, terminals churning) from a wedged one (watchdog > 0,
    // depth frozen). Fields append after the PR-8 set: the prefix is a
    // pinned byte contract.
    std::string depth;
    for (const auto& [prio, n] : queue_.queued_depths())
      depth += strf("%sp%d:%zu", depth.empty() ? "" : ",", prio, n);
    if (depth.empty()) depth = "-";
    server_.send(
        conn,
        ok_line(strf("active=%zu pending=%zu cache_hits=%llu cache_misses=%llu "
                     "cache_stores=%llu cache_evictions=%llu depth=%s "
                     "retained=%zu watchdog=%llu",
                     queue_.active_total(), queue_.pending(),
                     static_cast<unsigned long long>(st.hits()),
                     static_cast<unsigned long long>(st.misses()),
                     static_cast<unsigned long long>(st.stores()),
                     static_cast<unsigned long long>(st.evictions()),
                     depth.c_str(), queue_.retained_terminal(),
                     static_cast<unsigned long long>(
                         obs::JobTracer::global().watchdog_flags()))));
  } else if (req.verb == "QUIT") {
    server_.close_conn(conn, /*after_flush=*/true);
  } else {
    server_.send(conn, err_line(400, strf("unknown verb \"%s\"", req.verb.c_str())));
  }
}

Daemon::TenantSlo* Daemon::slo_for_locked(const std::string& tenant) {
  auto it = slos_.find(tenant);
  if (it != slos_.end()) return &it->second;
  if (slos_.size() >= kMaxSloTenants) return nullptr;
  obs::Registry& reg = obs::Registry::global();
  std::string base = "crpd.tenant." + tenant + ".";
  TenantSlo s;
  s.queue_ms = &reg.histogram(base + "queue_ms");
  s.run_ms = &reg.histogram(base + "run_ms");
  s.total_ms = &reg.histogram(base + "total_ms");
  s.active = &reg.gauge(base + "active");
  s.admitted = &reg.counter(base + "admitted");
  s.done = &reg.counter(base + "done");
  s.failed = &reg.counter(base + "failed");
  s.preempted = &reg.counter(base + "preempted");
  s.coalesced = &reg.counter(base + "coalesced");
  return &slos_.emplace(tenant, s).first->second;
}

void Daemon::handle_submit(ConnId conn, const Request& req) {
  const u64 t_req = wall_ns();
  if (req.args.size() < 2) {
    server_.send(conn, err_line(400, "usage: SUBMIT <tenant> <target-id> [k=v]..."));
    return;
  }
  const std::string& tenant = req.args[0];
  const std::string& target_id = req.args[1];
  if (!valid_tenant(tenant)) {
    server_.send(conn, err_line(400, "bad tenant name"));
    return;
  }
  const pipeline::TargetSpec* spec = registry_.find(target_id);
  if (spec == nullptr) {
    server_.send(conn, err_line(404, strf("unknown target \"%s\"", target_id.c_str())));
    return;
  }

  pipeline::JobSpec js;
  js.target = *spec;
  js.opts = opts_.defaults;
  js.tenant = tenant;
  for (size_t i = 2; i < req.args.size(); ++i) {
    std::string err;
    if (!apply_knob(req.args[i], &js, &err)) {
      server_.send(conn, err_line(400, err));
      return;
    }
  }

  // A rejected SUBMIT leaves a trace only when the client pinned an id
  // (trace= knob): there is no job to attach an assigned id to, but a
  // pinned trace should show *why* its submission went nowhere.
  obs::JobTracer& jt = obs::JobTracer::global();
  auto admission_span = [&](const char* verdict, u64 accepted) {
    if (js.trace != 0)
      jt.record(js.trace, 0, obs::SpanKind::kAdmission, jt.intern(verdict),
                accepted, t_req, wall_ns());
  };

  // Admission: quota on concurrently-active jobs, then the submission-rate
  // window (the §VII detector watching the front door; rejected attempts
  // consume window slots, so a hammering tenant stays rejected).
  if (queue_.active(tenant) >= opts_.tenant_max_active) {
    c_rej_quota_->inc();
    admission_span("rejected_quota", 0);
    server_.send(conn, err_line(429, strf("tenant quota exceeded (%zu active)",
                                          opts_.tenant_max_active)));
    return;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    u64 now = wall_ns();
    // Tenant names are client-minted: expire windows with no submission
    // inside the trailing window, and cap the distinct names tracked at
    // once, so cycling fresh tenants cannot grow daemon state unboundedly.
    for (auto it = rates_.begin(); it != rates_.end();) {
      if (it->first != tenant && it->second.count(now) == 0)
        it = rates_.erase(it);
      else
        ++it;
    }
    auto it = rates_.find(tenant);
    if (it == rates_.end()) {
      if (rates_.size() >= opts_.max_tracked_tenants) {
        lk.unlock();
        c_rej_tenants_->inc();
        admission_span("rejected_tenants", 0);
        server_.send(conn, err_line(429, "too many active tenants"));
        return;
      }
      it = rates_.try_emplace(tenant, opts_.admission_window_ns).first;
    }
    if (it->second.add(now) > opts_.admission_window_max) {
      lk.unlock();
      c_rej_rate_->inc();
      admission_span("rejected_rate", 0);
      server_.send(conn, err_line(429, "submission rate exceeded"));
      return;
    }
  }

  // Accepted: every job carries a trace id from here on (assigned when the
  // client didn't pin one), so the end-to-end trace starts at admission.
  js.trace = jt.start_trace(js.trace);
  admission_span("accepted", 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    TenantSlo* s = slo_for_locked(tenant);
    if (s != nullptr) s->admitted->inc();
  }
  pipeline::JobId id = queue_.submit(std::move(js));
  c_accepted_->inc();
  server_.send(conn, ok_line(strf("%llu", static_cast<unsigned long long>(id))));
}

void Daemon::handle_watch(ConnId conn, const Request& req) {
  pipeline::JobId id = 0;
  if (!job_id_arg(req, &id)) {
    server_.send(conn, err_line(400, "usage: WATCH <job-id>"));
    return;
  }
  pipeline::JobResult r = queue_.status(id);
  if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
    server_.send(conn, err_line(404, "unknown job"));
    return;
  }
  server_.send(conn, ok_line(strf("watching %llu", static_cast<unsigned long long>(id))));
  // Registration and the terminal check happen under one lock hold: the
  // event sink also locks mu_, so either we see the terminal state (and
  // answer directly, without registering) or the sink sees our
  // registration — a DONE line arrives exactly once.
  std::lock_guard<std::mutex> lk(mu_);
  pipeline::JobResult now;
  if (queue_.try_result(id, &now)) {
    pipeline::JobEvent ev;
    ev.id = now.id;
    ev.state = now.state;
    ev.step = now.steps_done;
    ev.steps = now.steps_total;
    ev.cache_hit = now.report.cache_hit;
    ev.trace = now.trace;
    server_.send(conn, done_line(ev));
    return;
  }
  watchers_[id].insert(conn);
}

void Daemon::handle_fetch(ConnId conn, const Request& req) {
  pipeline::JobId id = 0;
  if (!job_id_arg(req, &id)) {
    server_.send(conn, err_line(400, "usage: FETCH <job-id>"));
    return;
  }
  pipeline::JobResult r = queue_.status(id);
  if (r.state == pipeline::JobState::kFailed && r.error == "unknown job") {
    server_.send(conn, err_line(404, "unknown job"));
    return;
  }
  if (!pipeline::job_state_terminal(r.state)) {
    server_.send(conn, err_line(409, "job not finished"));
    return;
  }
  if (r.state == pipeline::JobState::kCancelled) {
    server_.send(conn, err_line(409, "job was cancelled"));
    return;
  }
  if (r.state == pipeline::JobState::kFailed) {
    server_.send(conn, err_line(500, r.error));
    return;
  }
  // cache_tag=false: a fetched report must be byte-identical whether the
  // job computed or replayed from the shared store (CI diffs it against
  // the batch examples/campaign block).
  u64 t0 = wall_ns();
  std::string body = pipeline::render_report(r.report, /*cache_tag=*/false);
  if (r.trace != 0)
    obs::JobTracer::global().record(r.trace, r.id, obs::SpanKind::kRender, 0,
                                    body.size(), t0, wall_ns());
  server_.send(conn, report_frame(body, r.trace));
}

void Daemon::on_job_event(const pipeline::JobEvent& ev) {
  std::vector<ConnId> conns;
  bool terminal = pipeline::job_state_terminal(ev.state);
  {
    std::lock_guard<std::mutex> lk(mu_);
    // SLO accounting first: it must run whether or not anyone WATCHes.
    TenantSlo* s = slo_for_locked(ev.tenant);
    if (s != nullptr) {
      if (ev.state == pipeline::JobState::kQueued && !ev.preempted)
        s->active->add(1);
      if (ev.preempted) s->preempted->inc();
      if (terminal) {
        s->active->add(-1);
        s->queue_ms->record(ev.queue_ns / 1'000'000);
        s->run_ms->record(ev.run_ns / 1'000'000);
        s->total_ms->record(ev.total_ns / 1'000'000);
        if (ev.state == pipeline::JobState::kDone) s->done->inc();
        if (ev.state == pipeline::JobState::kFailed) s->failed->inc();
        if (ev.cache_hit) s->coalesced->inc();
      }
    }
    auto it = watchers_.find(ev.id);
    if (it == watchers_.end()) return;
    conns.assign(it->second.begin(), it->second.end());
    if (terminal) watchers_.erase(it);
  }
  std::string line = terminal ? done_line(ev) : event_line(ev);
  for (ConnId c : conns) server_.send(c, line);
}

std::string Daemon::jobs_json() {
  obs::JobTracer& jt = obs::JobTracer::global();
  std::map<u64, obs::JobTracer::LiveJob> live;
  for (obs::JobTracer::LiveJob& lj : jt.live_jobs())
    live.emplace(lj.trace, std::move(lj));
  std::string out = "{\n";
  out += strf("\"watchdog_flags\": %llu,\n\"jobs\": [",
              static_cast<unsigned long long>(jt.watchdog_flags()));
  bool first = true;
  for (const pipeline::JobResult& r : queue_.list()) {
    out += first ? "\n" : ",\n";
    first = false;
    auto it = live.find(r.trace);
    const obs::JobTracer::LiveJob* lj =
        r.trace != 0 && it != live.end() ? &it->second : nullptr;
    out += strf(
        "{\"id\": %llu, \"state\": \"%s\", \"tenant\": \"%s\", "
        "\"target\": \"%s\", \"priority\": %d, \"trace\": %llu, "
        "\"steps_done\": %zu, \"steps_total\": %zu, \"step\": \"%s\", "
        "\"queue_ms\": %llu, \"run_ms\": %llu, \"total_ms\": %llu, "
        "\"parked\": %d, \"step_stalled\": %d, \"lease_stalled\": %d}",
        static_cast<unsigned long long>(r.id), pipeline::job_state_name(r.state),
        r.tenant.c_str(), r.target.c_str(), r.priority,
        static_cast<unsigned long long>(r.trace), r.steps_done, r.steps_total,
        lj != nullptr ? lj->step.c_str() : "",
        static_cast<unsigned long long>(r.queue_ns / 1'000'000),
        static_cast<unsigned long long>(r.run_ns / 1'000'000),
        static_cast<unsigned long long>(r.total_ns / 1'000'000),
        lj != nullptr && lj->parked ? 1 : 0,
        lj != nullptr && lj->step_flagged ? 1 : 0,
        lj != nullptr && lj->lease_flagged ? 1 : 0);
  }
  out += "\n]\n}\n";
  return out;
}

std::string Daemon::tenants_json() {
  obs::Registry& reg = obs::Registry::global();
  obs::JobTracer& jt = obs::JobTracer::global();
  pipeline::ArtifactStore& st =
      opts_.store != nullptr ? *opts_.store : pipeline::ArtifactStore::global();
  SocketServer::Stats cs = server_.stats();
  std::string out = "{\n";
  out += strf("\"watchdog\": {\"flags\": %llu, \"step_stalls\": %llu, "
              "\"lease_stalls\": %llu},\n",
              static_cast<unsigned long long>(jt.watchdog_flags()),
              static_cast<unsigned long long>(
                  reg.counter("crpd.watchdog.step_stalls").value()),
              static_cast<unsigned long long>(
                  reg.counter("crpd.watchdog.lease_stalls").value()));
  out += strf("\"conn\": {\"accepted\": %llu, \"dropped\": %llu, "
              "\"out_buffer_hwm\": %llu},\n",
              static_cast<unsigned long long>(cs.accepted),
              static_cast<unsigned long long>(cs.dropped_overflow),
              static_cast<unsigned long long>(cs.out_buffer_hwm));
  out += "\"tenants\": [";
  auto hist_json = [](const obs::Histogram& h) {
    return strf("{\"count\": %llu, \"p50\": %llu, \"p90\": %llu, \"p99\": %llu}",
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.quantile(0.5)),
                static_cast<unsigned long long>(h.quantile(0.9)),
                static_cast<unsigned long long>(h.quantile(0.99)));
  };
  std::lock_guard<std::mutex> lk(mu_);
  bool first = true;
  for (const auto& [tenant, s] : slos_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += strf(
        "{\"name\": \"%s\", \"active\": %lld, \"admitted\": %llu, "
        "\"done\": %llu, \"failed\": %llu, \"preempted\": %llu, "
        "\"coalesced\": %llu, \"cache_hits\": %llu, \"cache_misses\": %llu, ",
        tenant.c_str(), static_cast<long long>(s.active->value()),
        static_cast<unsigned long long>(s.admitted->value()),
        static_cast<unsigned long long>(s.done->value()),
        static_cast<unsigned long long>(s.failed->value()),
        static_cast<unsigned long long>(s.preempted->value()),
        static_cast<unsigned long long>(s.coalesced->value()),
        static_cast<unsigned long long>(st.tenant_hits(tenant)),
        static_cast<unsigned long long>(st.tenant_misses(tenant)));
    out += "\"queue_ms\": " + hist_json(*s.queue_ms) + ", ";
    out += "\"run_ms\": " + hist_json(*s.run_ms) + ", ";
    out += "\"total_ms\": " + hist_json(*s.total_ms) + "}";
  }
  out += "\n]\n}\n";
  return out;
}

}  // namespace crp::serve
