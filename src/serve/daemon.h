// crp::serve::Daemon — crpd, the multi-tenant discovery service.
//
// ROADMAP item 2: campaign-as-a-service. The daemon binds a loopback port
// on the shared SocketServer core and exposes the preemptible JobQueue
// over the line protocol of protocol.h: clients SUBMIT (tenant, target,
// knobs), WATCH streamed progress events, and FETCH the finished report.
// Reports are rendered by pipeline::render_report — the exact bytes the
// batch examples/campaign driver prints — so a daemon-served discovery is
// byte-diffable against a batch run (CI does exactly that).
//
// Multi-tenancy is enforced at admission, before a job touches a worker:
//   1. unknown target id               -> ERR 404
//   2. per-tenant active-job quota     -> ERR 429 (crpd.admission.rejected_quota)
//   3. distinct-tenant tracking cap    -> ERR 429 (crpd.admission.rejected_tenants)
//   4. per-tenant submission-rate cap  -> ERR 429 (crpd.admission.rejected_rate)
// The rate cap reuses defense::RateWindow — the paper's §VII anomaly
// detector pointed at the service's own front door (a tenant hammering
// SUBMIT looks exactly like a probing attack: orders of magnitude above
// any legitimate rate).
//
// Duplicate submissions across tenants are served from the shared
// ArtifactStore: the single-writer lease inside the scan funnel means N
// concurrent identical jobs cost one computation, and per-tenant
// hit/miss attribution (`pipeline.cache.tenant.<t>.*`) shows who benefits.
//
// Determinism: a job's chaos salts derive from its submitted seed knob,
// never from worker identity or arrival order, so a crpd-served report for
// (target, knobs) is byte-identical to the batch run at any worker count.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "defense/rate_detector.h"
#include "pipeline/job_queue.h"
#include "pipeline/registry.h"
#include "serve/protocol.h"
#include "serve/socket_server.h"

namespace crp::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace crp::obs

namespace crp::serve {

struct DaemonOptions {
  u16 port = 0;  // 0 = ephemeral (read back with port())
  /// JobQueue workers. 0 = admission-only mode: jobs are accepted and
  /// queued but never run (deterministic quota/rate tests).
  int workers = 2;
  /// Admission: max queued+running jobs per tenant.
  size_t tenant_max_active = 8;
  /// Admission: max SUBMITs per tenant inside the trailing window
  /// (rejected submissions consume window slots too).
  u64 admission_window_ns = 1'000'000'000;
  u64 admission_window_max = 64;
  /// Admission: max distinct tenant names with a live rate window (idle
  /// windows expire). A client cycling fresh names past the cap gets 429
  /// (`crpd.admission.rejected_tenants`) instead of growing daemon state.
  size_t max_tracked_tenants = 1024;
  /// Campaign knob defaults for submitted jobs (SUBMIT k=v overrides).
  pipeline::CampaignOptions defaults;
  /// Shared artifact tier (nullptr -> ArtifactStore::global()).
  pipeline::ArtifactStore* store = nullptr;
  /// Stall watchdog: flag a job whose in-progress step (resp. held
  /// ArtifactStore lease) is older than the deadline. Flags bump
  /// crpd.watchdog.{step,lease}_stalls, drop a journal instant, and show
  /// up in STATS (watchdog=<n>), /jobs.json and /tenants.json. Defaults
  /// are far above any healthy step so a clean run flags nothing.
  bool watchdog = true;
  u64 watchdog_step_deadline_ns = 60'000'000'000;
  u64 watchdog_lease_deadline_ns = 30'000'000'000;
  /// Background tick period (watchdog scan + gauge refresh).
  u64 tick_ms = 250;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind and serve. False when the bind fails.
  bool start();
  void stop();
  bool running() const { return server_.running(); }
  u16 port() const { return server_.port(); }

  const pipeline::TargetRegistry& registry() const { return registry_; }
  pipeline::JobQueue& queue() { return queue_; }

  /// /jobs.json: every known job (active + retained terminal) with its
  /// latency split and live watchdog state.
  std::string jobs_json();
  /// /tenants.json: per-tenant SLO rows (latency histograms, active gauge,
  /// admission/preemption/coalesce counters) + watchdog and conn stats.
  std::string tenants_json();

 private:
  /// Per-tenant SLO instruments, registered in the global Registry under
  /// crpd.tenant.<t>.* so they ride the exposition schema. Bounded: past
  /// kMaxSloTenants distinct names, further tenants are served but not
  /// individually instrumented (mirrors the ArtifactStore attribution cap).
  struct TenantSlo {
    obs::Histogram* queue_ms = nullptr;
    obs::Histogram* run_ms = nullptr;
    obs::Histogram* total_ms = nullptr;
    obs::Gauge* active = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* done = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* preempted = nullptr;
    obs::Counter* coalesced = nullptr;
  };
  static constexpr size_t kMaxSloTenants = 64;

  void on_open(ConnId conn);
  void on_data(ConnId conn, std::string_view data);
  void on_close(ConnId conn);
  void handle_line(ConnId conn, const std::string& line);
  void handle_submit(ConnId conn, const Request& req);
  void handle_watch(ConnId conn, const Request& req);
  void handle_fetch(ConnId conn, const Request& req);
  void on_job_event(const pipeline::JobEvent& ev);
  u64 wall_ns() const;
  TenantSlo* slo_for_locked(const std::string& tenant);
  /// Background tick: watchdog scan, serve.conn.* mirror, queue gauges.
  void tick_loop();

  DaemonOptions opts_;
  pipeline::TargetRegistry registry_;
  pipeline::JobQueue queue_;
  SocketServer server_;

  // Per-connection line assembly. Only touched from transport callbacks,
  // which are serialized — no lock.
  std::map<ConnId, LineBuffer> lines_;

  // Shared between the transport thread (WATCH/close) and the queue's
  // worker threads (event fan-out).
  std::mutex mu_;
  std::map<pipeline::JobId, std::set<ConnId>> watchers_;
  std::map<std::string, defense::RateWindow> rates_;  // per-tenant SUBMITs
  std::map<std::string, TenantSlo> slos_;             // bounded, see above

  // Background tick thread (watchdog + gauge refresh).
  std::thread tick_thread_;
  std::mutex tick_mu_;
  std::condition_variable tick_cv_;
  bool tick_stop_ = false;

  obs::Counter* c_requests_;
  obs::Counter* c_accepted_;
  obs::Counter* c_rej_quota_;
  obs::Counter* c_rej_rate_;
  obs::Counter* c_rej_tenants_;
  obs::Counter* c_conns_opened_;
  obs::Counter* c_conns_closed_;
};

}  // namespace crp::serve
