// Dynamic tracing (the DynamoRIO analog of §IV-B/C): execution coverage
// with per-address hit counts, per-thread call stacks, and structured logs
// of API calls and syscalls including the call-stack context they fired in.
//
// The browser analyses consume this to answer: which crash-resistant API
// functions / guarded code regions appear on real execution paths, and
// which of those are reachable from a scripting context (a call-stack frame
// inside the script-engine module)?
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/kernel.h"
#include "vm/hooks.h"

namespace crp::trace {

struct ApiCallRecord {
  u32 api_id = 0;
  gva_t call_site = 0;  // pc of the APICALL instruction
  u64 args[6] = {};
  u64 ret = 0;
  bool faulted = false;
  std::vector<gva_t> call_stack;       // frame target addresses, innermost last
  std::vector<std::string> stack_modules;  // module name per frame
};

struct SyscallRecord {
  os::Sys nr = os::Sys::kCount;
  u64 args[6] = {};
  i64 ret = 0;
  int tid = 0;
};

class Tracer : public vm::ExecObserver, public os::KernelObserver {
 public:
  /// Attach to `proc`'s machine and to `kernel`.
  Tracer(os::Kernel& kernel, os::Process& proc);
  ~Tracer() override;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- coverage --------------------------------------------------------------

  /// Times the instruction at `pc` retired.
  u64 hit_count(gva_t pc) const;
  /// Total hits over [begin, end) and whether any instruction there ran.
  u64 hits_in_range(gva_t begin, gva_t end) const;
  bool executed_in_range(gva_t begin, gva_t end) const;
  size_t unique_pcs() const { return counts_.size(); }

  // --- call stacks -------------------------------------------------------------

  /// Current call stack (frame entry addresses) of thread `tid`.
  std::vector<gva_t> call_stack(int tid) const;

  // --- logs ------------------------------------------------------------------

  const std::vector<ApiCallRecord>& api_calls() const { return api_calls_; }
  const std::vector<SyscallRecord>& syscalls() const { return syscalls_; }
  void clear_logs();

  /// Optional recording of every guest memory address touched by regular
  /// instructions (8-byte granules). The API call-site analysis uses it to
  /// detect pointers that are also dereferenced *outside* the resistant
  /// function (§V-B exclusion reason 2). Off by default (memory cost).
  void set_record_mem_accesses(bool on) { record_mem_ = on; }
  bool guest_touched(gva_t addr) const {
    return mem_touched_.contains(addr & ~7ull);
  }

  /// True if any frame of `rec` lies in a module whose name contains `needle`.
  static bool stack_touches_module(const ApiCallRecord& rec, const std::string& needle);

  // --- observers -------------------------------------------------------------

  void on_exec(const vm::ExecEvent& ev, const vm::Cpu& cpu) override;
  void on_api_enter(os::Process& p, os::Thread& t, u32 id, u64* args) override;
  void on_api_exit(os::Process& p, os::Thread& t, u32 id, const u64* args, u64 ret,
                   bool faulted) override;
  void on_syscall_exit(os::Process& p, os::Thread& t, os::Sys nr, const u64* args,
                       i64 ret) override;

 private:
  struct Frame {
    gva_t ret_addr = 0;
    gva_t target = 0;
  };

  os::Kernel& kernel_;
  os::Process& proc_;
  std::map<gva_t, u64> counts_;  // ordered for range queries
  std::unordered_map<int, std::vector<Frame>> stacks_;
  bool record_mem_ = false;
  std::set<gva_t> mem_touched_;  // 8-byte granules
  std::vector<ApiCallRecord> api_calls_;
  std::vector<SyscallRecord> syscalls_;
};

}  // namespace crp::trace
