#include "trace/tracer.h"

namespace crp::trace {

Tracer::Tracer(os::Kernel& kernel, os::Process& proc) : kernel_(kernel), proc_(proc) {
  proc_.machine().add_observer(this);
  kernel_.add_observer(this);
}

Tracer::~Tracer() {
  proc_.machine().remove_observer(this);
  kernel_.remove_observer(this);
}

u64 Tracer::hit_count(gva_t pc) const {
  auto it = counts_.find(pc);
  return it == counts_.end() ? 0 : it->second;
}

u64 Tracer::hits_in_range(gva_t begin, gva_t end) const {
  u64 total = 0;
  for (auto it = counts_.lower_bound(begin); it != counts_.end() && it->first < end; ++it)
    total += it->second;
  return total;
}

bool Tracer::executed_in_range(gva_t begin, gva_t end) const {
  auto it = counts_.lower_bound(begin);
  return it != counts_.end() && it->first < end;
}

std::vector<gva_t> Tracer::call_stack(int tid) const {
  std::vector<gva_t> out;
  auto it = stacks_.find(tid);
  if (it == stacks_.end()) return out;
  for (const Frame& f : it->second) out.push_back(f.target);
  return out;
}

void Tracer::clear_logs() {
  api_calls_.clear();
  syscalls_.clear();
}

bool Tracer::stack_touches_module(const ApiCallRecord& rec, const std::string& needle) {
  for (const auto& m : rec.stack_modules)
    if (m.find(needle) != std::string::npos) return true;
  return false;
}

void Tracer::on_exec(const vm::ExecEvent& ev, const vm::Cpu& cpu) {
  (void)cpu;
  if (kernel_.current_process() != &proc_) return;
  if (!ev.faulted) ++counts_[ev.pc];
  if (record_mem_ && ev.mem_size > 0 && !ev.faulted) {
    for (gva_t g = ev.mem_addr & ~7ull; g < ev.mem_addr + ev.mem_size; g += 8)
      mem_touched_.insert(g);
  }

  os::Thread* t = kernel_.current_thread();
  if (t == nullptr) return;
  auto& stack = stacks_[t->tid];
  if (ev.is_call && !ev.faulted) {
    stack.push_back({ev.pc + isa::kInstrBytes, ev.branch_target});
    if (stack.size() > 512) stack.erase(stack.begin());  // runaway recursion guard
  } else if (ev.is_ret && !ev.faulted) {
    // Pop to the matching frame (tolerates handler-driven unwinding).
    for (size_t i = stack.size(); i > 0; --i) {
      if (stack[i - 1].ret_addr == ev.branch_target) {
        stack.resize(i - 1);
        return;
      }
    }
    if (!stack.empty()) stack.pop_back();
  }
}

void Tracer::on_api_enter(os::Process& p, os::Thread& t, u32 id, u64* args) {
  if (p.pid() != proc_.pid()) return;
  ApiCallRecord rec;
  rec.api_id = id;
  rec.call_site = t.cpu.pc - isa::kInstrBytes;
  for (int i = 0; i < 6; ++i) rec.args[i] = args[i];
  for (gva_t target : call_stack(t.tid)) {
    rec.call_stack.push_back(target);
    const vm::LoadedModule* m = p.machine().module_at(target);
    rec.stack_modules.push_back(m != nullptr ? m->image->name : "?");
  }
  // The call site itself counts as a frame for module attribution.
  const vm::LoadedModule* site_mod = p.machine().module_at(rec.call_site);
  rec.stack_modules.push_back(site_mod != nullptr ? site_mod->image->name : "?");
  api_calls_.push_back(std::move(rec));
}

void Tracer::on_api_exit(os::Process& p, os::Thread& t, u32 id, const u64* args, u64 ret,
                         bool faulted) {
  (void)t;
  (void)args;
  if (p.pid() != proc_.pid() || api_calls_.empty()) return;
  ApiCallRecord& rec = api_calls_.back();
  if (rec.api_id == id) {
    rec.ret = ret;
    rec.faulted = faulted;
  }
}

void Tracer::on_syscall_exit(os::Process& p, os::Thread& t, os::Sys nr, const u64* args,
                             i64 ret) {
  if (p.pid() != proc_.pid()) return;
  SyscallRecord rec;
  rec.nr = nr;
  for (int i = 0; i < 6; ++i) rec.args[i] = args[i];
  rec.ret = ret;
  rec.tid = t.tid;
  syscalls_.push_back(rec);
}

}  // namespace crp::trace
