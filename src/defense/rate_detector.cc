#include "defense/rate_detector.h"

#include "obs/journal.h"
#include "obs/ledger.h"
#include "obs/obs.h"

namespace crp::defense {

RateDetector::RateDetector(os::Kernel& kernel, os::Process& proc, Config cfg)
    : k_(kernel), proc_(proc), cfg_(cfg), window_(cfg.window_ns) {
  obs::Registry& reg = obs::Registry::global();
  c_handled_ = &reg.counter("defense.av_rate.handled");
  c_alarms_ = &reg.counter("defense.av_rate.alarms");
  g_peak_ = &reg.gauge("defense.av_rate.peak_window");
  ledger_prim_ = obs::Ledger::global().intern("av-rate-detector");
  proc_.machine().add_observer(this);
}

RateDetector::~RateDetector() { proc_.machine().remove_observer(this); }

void RateDetector::on_exception(const vm::ExceptionRecord& rec, vm::DispatchOutcome outcome) {
  if (rec.code != vm::ExcCode::kAccessViolation) return;
  ++total_;
  // The defender's view of every AV: a handled one is a survived probe, an
  // unhandled one is the crash the attacker was trying to avoid.
  obs::Ledger::global().record(
      obs::LedgerStage::kDefense,
      outcome == vm::DispatchOutcome::kUnhandled ? obs::ProbeOutcome::kCrash
                                                 : obs::ProbeOutcome::kSurvive,
      ledger_prim_, /*target=*/0, rec.fault_addr, k_.now_ns());
  if (outcome == vm::DispatchOutcome::kUnhandled) return;  // the process dies anyway
  ++handled_;
  c_handled_->inc();
  u64 now = k_.now_ns();
  u64 in_window = window_.add(now);
  g_peak_->update_max(static_cast<i64>(window_.peak()));
  if (in_window >= cfg_.threshold && !alarmed_) {
    alarmed_ = true;
    c_alarms_->inc();
    obs::Journal::global().instant("av-rate-alarm", "defense", now / 1000, 0, "window_count",
                                   static_cast<i64>(in_window));
  }
}

double RateDetector::peak_rate_per_sec() const {
  return static_cast<double>(window_.peak()) * 1e9 / static_cast<double>(cfg_.window_ns);
}

void RateDetector::reset() {
  window_.clear();
  total_ = handled_ = 0;
  alarmed_ = false;
}

std::vector<analysis::HandlerSite> audit_broad_filters(
    const analysis::SehExtractor& ex, const std::vector<analysis::FilterInfo>& filters,
    u64 max_benign_bytes) {
  // Index the filter verdicts once: the old handler×filter scan was
  // quadratic on real corpora (thousands of each). OR-accumulate so a
  // module:offset counts as accepting if *any* row with that key does,
  // exactly matching the linear-scan semantics.
  std::map<std::pair<std::string, u64>, bool> accepts;
  for (const auto& f : filters) {
    bool& slot = accepts[{f.module, f.offset}];
    slot = slot || f.verdict == analysis::FilterVerdict::kAcceptsAv;
  }
  std::vector<analysis::HandlerSite> out;
  for (const auto& h : ex.handlers()) {
    bool broad = h.catch_all;
    if (!broad) {
      auto it = accepts.find({h.module, h.scope.filter});
      broad = it != accepts.end() && it->second;
    }
    if (broad && h.scope.end - h.scope.begin > max_benign_bytes) out.push_back(h);
  }
  return out;
}

}  // namespace crp::defense
