// §VII countermeasures.
//
//   RateDetector     — anomaly detection on the rate of *handled* access
//                      violations. The paper's baseline: top-40k browsing
//                      shows ~0 AVs, asm.js stress shows short bursts
//                      (groups of up to ~20), probing attacks show
//                      thousands per second — orders of magnitude apart, so
//                      a windowed threshold separates them cleanly.
//   Mapped-only AVs  — implemented inside vm::Machine
//                      (set_mapped_only_av_policy): an AV whose fault
//                      address is unmapped bypasses every handler.
//   Filter narrowing — audit_broad_filters() lists handlers whose filters
//                      accept AVs but whose guarded code contains no
//                      dereference that legitimately needs it (heuristic:
//                      catch-all filters guarding non-trivial regions).
#pragma once

#include <algorithm>
#include <deque>
#include <vector>

#include "analysis/seh_analysis.h"
#include "os/kernel.h"
#include "vm/hooks.h"

namespace crp::obs {
class Counter;
class Gauge;
}  // namespace crp::obs

namespace crp::defense {

/// Sliding-window event counter — the §VII rate-anomaly core, factored out
/// of RateDetector so the crpd admission controller can reuse it verbatim
/// (virtual time there is wall-clock time, the mechanism is identical:
/// count events inside a trailing window, compare against a threshold).
class RateWindow {
 public:
  explicit RateWindow(u64 window_ns) : window_ns_(window_ns) {}

  /// Record an event at `now_ns`; returns the count inside the window
  /// (including this event).
  u64 add(u64 now_ns) {
    times_.push_back(now_ns);
    prune(now_ns);
    peak_ = std::max<u64>(peak_, times_.size());
    return times_.size();
  }
  /// Events inside the window ending at `now_ns`.
  u64 count(u64 now_ns) {
    prune(now_ns);
    return times_.size();
  }
  /// Highest in-window count ever observed.
  u64 peak() const { return peak_; }
  u64 window_ns() const { return window_ns_; }
  void clear() {
    times_.clear();
    peak_ = 0;
  }

 private:
  void prune(u64 now_ns) {
    while (!times_.empty() && times_.front() + window_ns_ < now_ns)
      times_.pop_front();
  }

  u64 window_ns_;
  std::deque<u64> times_;
  u64 peak_ = 0;
};

struct RateDetectorConfig {
  u64 window_ns = 1'000'000'000;  // 1 virtual second
  u64 threshold = 50;             // handled AVs per window before alarm
};

class RateDetector : public vm::ExecObserver {
 public:
  using Config = RateDetectorConfig;

  RateDetector(os::Kernel& kernel, os::Process& proc, Config cfg = {});
  ~RateDetector() override;

  RateDetector(const RateDetector&) = delete;
  RateDetector& operator=(const RateDetector&) = delete;

  /// Only exception-dispatch events matter here; declining on_exec keeps
  /// the machine's block-translation engine usable while the detector is
  /// attached.
  bool wants_exec() const override { return false; }

  void on_exception(const vm::ExceptionRecord& rec, vm::DispatchOutcome outcome) override;

  u64 total_avs() const { return total_; }
  u64 handled_avs() const { return handled_; }
  /// Highest number of handled AVs observed inside one window.
  u64 peak_window_count() const { return window_.peak(); }
  double peak_rate_per_sec() const;
  bool alarmed() const { return alarmed_; }
  void reset();

 private:
  os::Kernel& k_;
  os::Process& proc_;
  Config cfg_;
  RateWindow window_;  // timestamps (ns) of handled AVs
  u64 total_ = 0;
  u64 handled_ = 0;
  bool alarmed_ = false;
  obs::Counter* c_handled_;
  obs::Counter* c_alarms_;
  obs::Gauge* g_peak_;
  u32 ledger_prim_ = 0;
};

/// Handlers whose filters are broader than their guarded code plausibly
/// needs: catch-all (or always-accepting) filters over regions larger than
/// `max_benign_bytes` of code. The §VII "Improving exception filtering"
/// audit an engineering team would run over its own binaries.
std::vector<analysis::HandlerSite> audit_broad_filters(
    const analysis::SehExtractor& ex, const std::vector<analysis::FilterInfo>& filters,
    u64 max_benign_bytes = 4 * isa::kInstrBytes);

}  // namespace crp::defense
