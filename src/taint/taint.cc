#include "taint/taint.h"

#include "obs/obs.h"

namespace crp::taint {

using isa::Op;
using isa::Reg;

TaintEngine::TaintEngine(os::Kernel& kernel, os::Process& proc)
    : kernel_(kernel), proc_(proc) {
  for (auto& p : reg_prov_) p = kNoProv;
  c_propagated_ = &obs::Registry::global().counter("taint.propagated");
  g_tainted_hwm_ = &obs::Registry::global().gauge("taint.tainted_bytes_hwm");
  proc_.machine().add_observer(this);
  kernel_.add_observer(this);
}

TaintEngine::~TaintEngine() {
  proc_.machine().remove_observer(this);
  kernel_.remove_observer(this);
}

Mask* TaintEngine::shadow_at(gva_t addr, bool create) {
  u64 page = addr / kShadowPage;
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    if (!create) return nullptr;
    it = pages_.emplace(page, ShadowPage{}).first;
  }
  return &it->second.bytes[addr % kShadowPage];
}

const Mask* TaintEngine::shadow_at(gva_t addr) const {
  auto it = pages_.find(addr / kShadowPage);
  return it == pages_.end() ? nullptr : &it->second.bytes[addr % kShadowPage];
}

Mask TaintEngine::mem_taint(gva_t addr, u64 len) const {
  Mask m = 0;
  for (u64 i = 0; i < len; ++i) {
    const Mask* s = shadow_at(addr + i);
    if (s != nullptr) m |= *s;
  }
  return m;
}

void TaintEngine::write_shadow(gva_t addr, Mask m) {
  if (m == 0) {
    Mask* s = shadow_at(addr, false);
    if (s != nullptr && *s != 0) --tainted_bytes_;
    if (s != nullptr) *s = 0;
    return;
  }
  Mask* s = shadow_at(addr, true);
  if (*s == 0) ++tainted_bytes_;
  *s = m;
}

void TaintEngine::publish_census() {
  g_tainted_hwm_->update_max(static_cast<i64>(tainted_bytes_));
}

void TaintEngine::taint_mem(gva_t addr, u64 len, Mask mask) {
  for (u64 i = 0; i < len; ++i) write_shadow(addr + i, mask);
  publish_census();
}

void TaintEngine::clear_mem(gva_t addr, u64 len) {
  for (u64 i = 0; i < len; ++i) write_shadow(addr + i, 0);
}

void TaintEngine::clear_all() {
  pages_.clear();
  tainted_bytes_ = 0;
  for (auto& m : reg_mask_) m = 0;
  for (auto& p : reg_prov_) p = kNoProv;
}

void TaintEngine::set_reg(Reg r, Mask m, gva_t prov) {
  reg_mask_[static_cast<u8>(r)] = m;
  reg_prov_[static_cast<u8>(r)] = prov;
}

void TaintEngine::on_exec(const vm::ExecEvent& ev, const vm::Cpu& cpu) {
  (void)cpu;
  if (!enabled_ || ev.faulted) return;
  ++propagated_;
  c_propagated_->inc();
  const isa::Instr& in = ev.ins;
  Mask ta = reg_taint(in.ra);
  Mask tb = reg_taint(in.rb);

  switch (in.op) {
    case Op::kMovRR:
      set_reg(in.ra, tb, reg_prov_[static_cast<u8>(in.rb)]);
      break;
    case Op::kMovRI:
    case Op::kLeaPc:
      set_reg(in.ra, 0);
      break;
    case Op::kLea:
      // Address arithmetic: value derives from rb, loses load provenance.
      set_reg(in.ra, tb);
      break;
    case Op::kLoad:
      set_reg(in.ra, mem_taint(ev.mem_addr, ev.mem_size),
              in.w == 8 ? ev.mem_addr : kNoProv);
      break;
    case Op::kPop:
      set_reg(in.ra, mem_taint(ev.mem_addr, 8), ev.mem_addr);
      break;
    case Op::kStore:
      taint_mem(ev.mem_addr, ev.mem_size, tb);
      break;
    case Op::kPush:
      taint_mem(ev.mem_addr, 8, ta);
      break;
    case Op::kCall:
    case Op::kCallR:
    case Op::kCallImp:
      taint_mem(ev.mem_addr, 8, 0);  // pushed return address is clean
      break;
    case Op::kXorRR:
      if (in.ra == in.rb) {
        set_reg(in.ra, 0);  // zeroing idiom
        break;
      }
      set_reg(in.ra, ta | tb);
      break;
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kModRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kShlRR:
    case Op::kShrRR:
      set_reg(in.ra, ta | tb);
      break;
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kMulRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kSarRI:
    case Op::kNot:
    case Op::kNeg:
      set_reg(in.ra, ta);
      break;
    default:
      break;  // control flow, cmp/test, nop, traps: no register data writes
  }
}

void TaintEngine::on_user_copy_out(os::Process& p, gva_t addr, std::span<const u8> data,
                                   std::span<const u32> colors) {
  if (!enabled_ || p.pid() != proc_.pid()) return;
  for (size_t i = 0; i < data.size(); ++i) {
    Mask m = i < colors.size() ? mask_for_color(colors[i]) : 0;
    write_shadow(addr + i, m);
  }
  publish_census();
}

void TaintEngine::on_syscall_exit(os::Process& p, os::Thread& t, os::Sys nr, const u64* args,
                                  i64 ret) {
  (void)t;
  (void)nr;
  (void)args;
  (void)ret;
  if (p.pid() != proc_.pid()) return;
  // The kernel wrote R0; its value does not derive from guest data flow.
  set_reg(Reg::R0, 0);
}

}  // namespace crp::taint
