#include "taint/taint.h"

#include "obs/obs.h"

namespace crp::taint {

using isa::Reg;

TaintEngine::TaintEngine(os::Kernel& kernel, os::Process& proc)
    : kernel_(kernel), proc_(proc) {
  shadow_.set_metrics(&obs::Registry::global().counter("taint.propagated"),
                      &obs::Registry::global().gauge("taint.tainted_bytes_hwm"));
  proc_.machine().add_observer(this);
  proc_.machine().set_taint_shadow(&shadow_, this);
  kernel_.add_observer(this);
}

TaintEngine::~TaintEngine() {
  shadow_.publish();
  proc_.machine().set_taint_shadow(nullptr, nullptr);
  proc_.machine().remove_observer(this);
  kernel_.remove_observer(this);
}

void TaintEngine::set_enabled(bool on) {
  // The machine registration stays put; both engines check the shadow's
  // enabled flag, so toggling is one store for either execution path.
  shadow_.set_enabled(on);
}

void TaintEngine::on_exec(const vm::ExecEvent& ev, const vm::Cpu& cpu) {
  (void)cpu;
  if (!shadow_.enabled() || ev.faulted) return;
  shadow_.propagate(ev.ins.op, ev.ins.ra, ev.ins.rb, ev.ins.w, ev.mem_addr, ev.mem_size);
}

void TaintEngine::on_user_copy_out(os::Process& p, gva_t addr, std::span<const u8> data,
                                   std::span<const u32> colors) {
  if (!shadow_.enabled() || p.pid() != proc_.pid()) return;
  for (size_t i = 0; i < data.size(); ++i) {
    Mask m = i < colors.size() ? mask_for_color(colors[i]) : 0;
    shadow_.write_shadow(addr + i, m);
  }
  shadow_.note_census();
  shadow_.publish();
}

void TaintEngine::on_syscall_exit(os::Process& p, os::Thread& t, os::Sys nr, const u64* args,
                                  i64 ret) {
  (void)t;
  (void)nr;
  (void)args;
  (void)ret;
  if (p.pid() != proc_.pid()) return;
  // The kernel wrote R0; its value does not derive from guest data flow.
  shadow_.set_reg(Reg::R0, 0);
}

}  // namespace crp::taint
