// Byte-granular dynamic taint tracking (the libdft analog of §IV-A).
//
// The engine attaches to one process. The shadow state and the propagation
// rules live in vm::TaintShadow (src/vm/shadow.h) so the interpreter and the
// block-translation engine share one implementation; this class is the
// wiring: it observes the process Machine (vm::ExecObserver) to drive
// propagation on the interpreter path, registers the shadow with the
// Machine so translated traces propagate inline, and observes the Kernel
// (os::KernelObserver) for sources — bytes the kernel copies into user
// memory carry per-byte colors assigned per client connection.
//
// Colors are small integers (1..) handed out per connection; masks fold
// color c onto bit (c-1) mod 64. Up to 64 simultaneous colors stay exact.
#pragma once

#include <optional>

#include "os/kernel.h"
#include "vm/hooks.h"
#include "vm/machine.h"
#include "vm/shadow.h"

namespace crp::taint {

using Mask = vm::TaintMask;

/// Mask bit for a connection color (0 = clean).
constexpr Mask mask_for_color(u32 color) { return vm::taint_mask_for_color(color); }

class TaintEngine : public vm::ExecObserver, public os::KernelObserver {
 public:
  /// Attach to `proc`: registers with its machine and with `kernel`.
  TaintEngine(os::Kernel& kernel, os::Process& proc);
  ~TaintEngine() override;

  TaintEngine(const TaintEngine&) = delete;
  TaintEngine& operator=(const TaintEngine&) = delete;

  // --- queries ---------------------------------------------------------------

  Mask reg_taint(isa::Reg r) const { return shadow_.reg_taint(r); }
  std::optional<gva_t> reg_provenance(isa::Reg r) const {
    gva_t a = shadow_.reg_prov(r);
    return a == vm::TaintShadow::kNoProv ? std::nullopt : std::optional<gva_t>(a);
  }
  /// OR of byte masks over [addr, addr+len).
  Mask mem_taint(gva_t addr, u64 len) const { return shadow_.mem_taint(addr, len); }

  // --- manual control (the monitor's "control the taint state" commands) ------

  void taint_mem(gva_t addr, u64 len, Mask mask) {
    shadow_.taint_mem(addr, len, mask);
    shadow_.publish();
  }
  void clear_mem(gva_t addr, u64 len) { shadow_.clear_mem(addr, len); }
  void clear_all() { shadow_.clear_all(); }

  /// Toggle source tracking (workload warm-up phases run untracked).
  void set_enabled(bool on);
  bool enabled() const { return shadow_.enabled(); }

  u64 propagated_instrs() const { return shadow_.propagated_instrs(); }

  /// Bytes currently carrying a nonzero taint mask.
  u64 tainted_bytes() const { return shadow_.tainted_bytes(); }

  // --- vm::ExecObserver ---------------------------------------------------------

  void on_exec(const vm::ExecEvent& ev, const vm::Cpu& cpu) override;

  // --- os::KernelObserver ---------------------------------------------------------

  void on_user_copy_out(os::Process& p, gva_t addr, std::span<const u8> data,
                        std::span<const u32> colors) override;
  void on_syscall_exit(os::Process& p, os::Thread& t, os::Sys nr, const u64* args,
                       i64 ret) override;

 private:
  os::Kernel& kernel_;
  os::Process& proc_;
  vm::TaintShadow shadow_;
};

}  // namespace crp::taint
