// Byte-granular dynamic taint tracking (the libdft analog of §IV-A).
//
// The engine attaches to one process: it observes every retired instruction
// of that process's Machine (vm::ExecObserver) for propagation, and the
// Kernel (os::KernelObserver) for sources — bytes the kernel copies into
// user memory carry per-byte colors assigned per client connection.
//
// Shadow state:
//   * memory  — one 64-bit color mask per guest byte (sparse, per page);
//   * registers — one mask per register (bytewise masks are OR-folded on
//     load; the pointer-argument question the analysis asks is per-value);
//   * provenance — per register, the guest address an 8-byte value was last
//     loaded from. This is what lets the CandidateVerifier corrupt the
//     *memory home* of a pointer argument (the paper's monitor invalidates
//     pointers in attacker-reachable memory, not registers), so re-reads of
//     the same location elsewhere in the program are faithfully affected.
//
// Colors are small integers (1..) handed out per connection; masks fold
// color c onto bit (c-1) mod 64. Up to 64 simultaneous colors stay exact.
#pragma once

#include <optional>
#include <unordered_map>

#include "os/kernel.h"
#include "vm/hooks.h"
#include "vm/machine.h"

namespace crp::obs {
class Counter;
class Gauge;
}  // namespace crp::obs

namespace crp::taint {

using Mask = u64;

/// Mask bit for a connection color (0 = clean).
constexpr Mask mask_for_color(u32 color) {
  return color == 0 ? 0 : (1ull << ((color - 1) % 64));
}

class TaintEngine : public vm::ExecObserver, public os::KernelObserver {
 public:
  /// Attach to `proc`: registers with its machine and with `kernel`.
  TaintEngine(os::Kernel& kernel, os::Process& proc);
  ~TaintEngine() override;

  TaintEngine(const TaintEngine&) = delete;
  TaintEngine& operator=(const TaintEngine&) = delete;

  // --- queries ---------------------------------------------------------------

  Mask reg_taint(isa::Reg r) const { return reg_mask_[static_cast<u8>(r)]; }
  std::optional<gva_t> reg_provenance(isa::Reg r) const {
    gva_t a = reg_prov_[static_cast<u8>(r)];
    return a == kNoProv ? std::nullopt : std::optional<gva_t>(a);
  }
  /// OR of byte masks over [addr, addr+len).
  Mask mem_taint(gva_t addr, u64 len) const;

  // --- manual control (the monitor's "control the taint state" commands) ------

  void taint_mem(gva_t addr, u64 len, Mask mask);
  void clear_mem(gva_t addr, u64 len);
  void clear_all();

  /// Toggle source tracking (workload warm-up phases run untracked).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  u64 propagated_instrs() const { return propagated_; }

  /// Bytes currently carrying a nonzero taint mask.
  u64 tainted_bytes() const { return tainted_bytes_; }

  // --- vm::ExecObserver ---------------------------------------------------------

  void on_exec(const vm::ExecEvent& ev, const vm::Cpu& cpu) override;

  // --- os::KernelObserver ---------------------------------------------------------

  void on_user_copy_out(os::Process& p, gva_t addr, std::span<const u8> data,
                        std::span<const u32> colors) override;
  void on_syscall_exit(os::Process& p, os::Thread& t, os::Sys nr, const u64* args,
                       i64 ret) override;

 private:
  static constexpr gva_t kNoProv = ~0ull;
  static constexpr u64 kShadowPage = 4096;

  struct ShadowPage {
    Mask bytes[kShadowPage] = {};
  };

  Mask* shadow_at(gva_t addr, bool create);
  const Mask* shadow_at(gva_t addr) const;
  void set_reg(isa::Reg r, Mask m, gva_t prov = kNoProv);
  /// Shadow write tracking the tainted-byte census on 0<->nonzero flips.
  void write_shadow(gva_t addr, Mask m);
  /// Publish the census to the gauge + high-water mark after a bulk update.
  void publish_census();

  os::Kernel& kernel_;
  os::Process& proc_;
  bool enabled_ = true;
  Mask reg_mask_[isa::kNumRegs] = {};
  gva_t reg_prov_[isa::kNumRegs];
  std::unordered_map<u64, ShadowPage> pages_;
  u64 propagated_ = 0;
  u64 tainted_bytes_ = 0;
  obs::Counter* c_propagated_;
  obs::Gauge* g_tainted_hwm_;
};

}  // namespace crp::taint
