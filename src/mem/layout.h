// ASLR layout: randomized placement of images, heap, stacks and hidden
// regions in a 47-bit user address space.
//
// Hidden regions model the information-hiding defenses the paper attacks
// (SafeStack, CPI safe region, shadow stacks): they are mapped at a random
// address, no pointer to them is ever stored in attacker-visible memory, and
// the attacker's goal is to locate them by crash-resistant probing.
#pragma once

#include <string>
#include <vector>

#include "mem/address_space.h"
#include "util/interval_map.h"
#include "util/rng.h"

namespace crp::mem {

/// Entropy configuration, expressed as the number of random bits applied to
/// each kind of base address (aligned to page granularity).
struct AslrConfig {
  u32 image_bits = 28;
  u32 heap_bits = 28;
  u32 stack_bits = 28;
  u32 hidden_bits = 28;  // entropy of information-hiding regions
  u64 user_lo = 0x0000'0000'0001'0000ull;
  u64 user_hi = 0x0000'7fff'ffff'ffffull;
};

enum class RegionKind : u8 { kImage, kHeap, kStack, kHidden, kOther };

const char* region_kind_name(RegionKind k);

/// Picks non-overlapping randomized bases and remembers what lives where
/// (the ground truth that tests and the Scanner benchmarks compare against).
class AslrLayout {
 public:
  AslrLayout(AslrConfig cfg, u64 seed) : cfg_(cfg), rng_(seed) {}

  /// Reserve a region of `size` bytes of the given kind at a randomized,
  /// page-aligned base; returns the base. Never fails (retries draws).
  gva_t place(RegionKind kind, u64 size, const std::string& name);

  /// All reservations in address order.
  struct Placement {
    gva_t base = 0;
    u64 size = 0;
    RegionKind kind = RegionKind::kOther;
    std::string name;
  };
  std::vector<Placement> placements() const;

  /// Ground truth lookup: what (if anything) is reserved at `addr`.
  const Placement* find(gva_t addr) const;

  const AslrConfig& config() const { return cfg_; }

 private:
  gva_t random_base(u32 bits, u64 size);

  AslrConfig cfg_;
  Rng rng_;
  IntervalMap<Placement> reserved_;
};

}  // namespace crp::mem
