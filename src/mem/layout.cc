#include "mem/layout.h"

namespace crp::mem {

const char* region_kind_name(RegionKind k) {
  switch (k) {
    case RegionKind::kImage: return "image";
    case RegionKind::kHeap: return "heap";
    case RegionKind::kStack: return "stack";
    case RegionKind::kHidden: return "hidden";
    case RegionKind::kOther: return "other";
  }
  return "?";
}

gva_t AslrLayout::random_base(u32 bits, u64 size) {
  CRP_CHECK(bits >= 1 && bits <= 40);
  for (int attempt = 0; attempt < 4096; ++attempt) {
    u64 slot = rng_.next() & ((1ull << bits) - 1);
    gva_t base = cfg_.user_lo + (slot << 12);  // page-granular slide
    if (base + size > cfg_.user_hi || base + size < base) continue;
    if (!reserved_.overlaps(base, base + size)) return base;
  }
  CRP_PANIC("AslrLayout: could not place region (address space exhausted?)");
}

gva_t AslrLayout::place(RegionKind kind, u64 size, const std::string& name) {
  size = align_up(std::max<u64>(size, 1), kPageSize);
  u32 bits = cfg_.image_bits;
  switch (kind) {
    case RegionKind::kImage: bits = cfg_.image_bits; break;
    case RegionKind::kHeap: bits = cfg_.heap_bits; break;
    case RegionKind::kStack: bits = cfg_.stack_bits; break;
    case RegionKind::kHidden: bits = cfg_.hidden_bits; break;
    case RegionKind::kOther: bits = cfg_.heap_bits; break;
  }
  gva_t base = random_base(bits, size);
  Placement p{base, size, kind, name};
  CRP_CHECK(reserved_.insert(base, base + size, p));
  return base;
}

std::vector<AslrLayout::Placement> AslrLayout::placements() const {
  std::vector<Placement> out;
  for (const auto& [_, e] : reserved_) out.push_back(e.value);
  return out;
}

const AslrLayout::Placement* AslrLayout::find(gva_t addr) const {
  const auto* e = reserved_.find(addr);
  return e != nullptr ? &e->value : nullptr;
}

}  // namespace crp::mem
