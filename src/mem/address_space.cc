#include "mem/address_space.h"

#include <algorithm>
#include <cstring>

namespace crp::mem {

const char* access_name(Access a) {
  switch (a) {
    case Access::kRead: return "read";
    case Access::kWrite: return "write";
    case Access::kExec: return "exec";
  }
  return "?";
}

const AddressSpace::Page* AddressSpace::page_at(gva_t addr) const {
  const u64 num = addr / kPageSize;
  if (cached_gen_ == generation_ && cached_page_num_ == num) return cached_page_;
  auto it = pages_.find(num);
  const Page* p = it == pages_.end() ? nullptr : &it->second;
  cached_gen_ = generation_;
  cached_page_num_ = num;
  cached_page_ = p;
  return p;
}

AddressSpace::Page* AddressSpace::page_at(gva_t addr) {
  // Safe const_cast: *this is non-const, so the underlying Page is mutable.
  return const_cast<Page*>(static_cast<const AddressSpace*>(this)->page_at(addr));
}

bool AddressSpace::map(gva_t addr, u64 size, u8 perms) {
  if (size == 0) return false;
  gva_t begin = align_down(addr, kPageSize);
  gva_t end = align_up(addr + size, kPageSize);
  if (end <= begin) return false;  // overflow
  for (gva_t p = begin; p != end; p += kPageSize)
    if (pages_.contains(p / kPageSize)) return false;
  for (gva_t p = begin; p != end; p += kPageSize) {
    Page pg;
    pg.perms = perms;
    pg.data = std::make_unique<u8[]>(kPageSize);
    std::memset(pg.data.get(), 0, kPageSize);
    pages_.emplace(p / kPageSize, std::move(pg));
  }
  ++generation_;
  return true;
}

bool AddressSpace::unmap(gva_t addr, u64 size) {
  if (size == 0) return false;
  gva_t begin = align_down(addr, kPageSize);
  gva_t end = align_up(addr + size, kPageSize);
  bool any = false;
  for (gva_t p = begin; p != end; p += kPageSize) any |= pages_.erase(p / kPageSize) > 0;
  if (any) ++generation_;
  return any;
}

bool AddressSpace::protect(gva_t addr, u64 size, u8 perms) {
  if (size == 0) return false;
  gva_t begin = align_down(addr, kPageSize);
  gva_t end = align_up(addr + size, kPageSize);
  for (gva_t p = begin; p != end; p += kPageSize)
    if (!pages_.contains(p / kPageSize)) return false;
  for (gva_t p = begin; p != end; p += kPageSize) pages_.at(p / kPageSize).perms = perms;
  ++generation_;
  return true;
}

bool AddressSpace::is_mapped(gva_t addr) const { return page_at(addr) != nullptr; }

u8 AddressSpace::perms_of(gva_t addr) const {
  const Page* p = page_at(addr);
  return p != nullptr ? p->perms : static_cast<u8>(kPermNone);
}

bool AddressSpace::check_range(gva_t addr, u64 size, u8 perms) const {
  if (size == 0) return true;
  gva_t end = addr + size;
  if (end < addr) return false;
  for (gva_t p = align_down(addr, kPageSize); p < end; p += kPageSize) {
    const Page* pg = page_at(p);
    if (pg == nullptr || (pg->perms & perms) != perms) return false;
  }
  return true;
}

std::vector<Region> AddressSpace::regions() const {
  std::vector<u64> nums;
  nums.reserve(pages_.size());
  for (const auto& [num, _] : pages_) nums.push_back(num);
  std::sort(nums.begin(), nums.end());
  std::vector<Region> out;
  for (u64 num : nums) {
    u8 perms = pages_.at(num).perms;
    gva_t begin = num * kPageSize;
    if (!out.empty() && out.back().end == begin && out.back().perms == perms) {
      out.back().end = begin + kPageSize;
    } else {
      out.push_back({begin, begin + kPageSize, perms});
    }
  }
  return out;
}

AccessResult AddressSpace::validate(gva_t addr, u64 size, u8 perms, Access kind) const {
  if (size == 0) return AccessResult::success();
  gva_t end = addr + size;
  if (end < addr) return AccessResult::fault(addr, kind);
  for (gva_t p = align_down(addr, kPageSize); p < end; p += kPageSize) {
    const Page* pg = page_at(p);
    if (pg == nullptr || (pg->perms & perms) != perms)
      return AccessResult::fault(std::max(p, addr), kind);
  }
  return AccessResult::success();
}

AccessResult AddressSpace::read(gva_t addr, std::span<u8> out) const {
  AccessResult r = validate(addr, out.size(), kPermR, Access::kRead);
  if (!r.ok) return r;
  CRP_CHECK(peek(addr, out));
  return AccessResult::success();
}

AccessResult AddressSpace::write(gva_t addr, std::span<const u8> in) {
  AccessResult r = validate(addr, in.size(), kPermW, Access::kWrite);
  if (!r.ok) return r;
  CRP_CHECK(poke(addr, in));
  return AccessResult::success();
}

AccessResult AddressSpace::fetch(gva_t addr, std::span<u8> out) const {
  AccessResult r = validate(addr, out.size(), kPermX, Access::kExec);
  if (!r.ok) return r;
  CRP_CHECK(peek(addr, out));
  return AccessResult::success();
}

AccessResult AddressSpace::read_uint(gva_t addr, u8 width, u64* out) const {
  CRP_CHECK(width == 1 || width == 2 || width == 4 || width == 8);
  u8 buf[8] = {};
  AccessResult r = read(addr, std::span<u8>(buf, width));
  if (!r.ok) return r;
  u64 v = 0;
  for (u8 i = 0; i < width; ++i) v |= static_cast<u64>(buf[i]) << (8 * i);
  *out = v;
  return AccessResult::success();
}

AccessResult AddressSpace::write_uint(gva_t addr, u8 width, u64 value) {
  CRP_CHECK(width == 1 || width == 2 || width == 4 || width == 8);
  u8 buf[8];
  for (u8 i = 0; i < width; ++i) buf[i] = static_cast<u8>(value >> (8 * i));
  return write(addr, std::span<const u8>(buf, width));
}

bool AddressSpace::peek(gva_t addr, std::span<u8> out) const {
  // A range wrapping past the top of the 64-bit space is never valid (same
  // policy as check_range); without this, addr+done wraps to low pages.
  if (addr + out.size() < addr) return false;
  size_t done = 0;
  while (done < out.size()) {
    const Page* pg = page_at(addr + done);
    if (pg == nullptr) return false;
    u64 off = (addr + done) & kPageMask;
    size_t n = std::min<size_t>(out.size() - done, kPageSize - off);
    std::memcpy(out.data() + done, pg->data.get() + off, n);
    done += n;
  }
  return true;
}

bool AddressSpace::poke(gva_t addr, std::span<const u8> in) {
  // A wrapping range used to skip the validation loop below entirely
  // (p < end is vacuously false when end overflows), letting the copy loop
  // dereference an unmapped page — a host crash reachable from guest-chosen
  // addresses at the top of the space.
  gva_t end = addr + in.size();
  if (end < addr) return false;
  // Validate first so a failing poke has no partial effect.
  for (gva_t p = align_down(addr, kPageSize); p < end; p += kPageSize)
    if (page_at(p) == nullptr) return false;
  size_t done = 0;
  while (done < in.size()) {
    Page* pg = page_at(addr + done);
    u64 off = (addr + done) & kPageMask;
    size_t n = std::min<size_t>(in.size() - done, kPageSize - off);
    std::memcpy(pg->data.get() + off, in.data() + done, n);
    if (pg->watched && write_watcher_) write_watcher_((addr + done) & ~kPageMask);
    done += n;
  }
  return true;
}

PageRef AddressSpace::page_ref(gva_t addr) const {
  const Page* pg = page_at(addr);
  if (pg == nullptr) return {};
  return {pg->data.get(), pg->perms, pg->watched};
}

void AddressSpace::set_watch(gva_t addr, u64 size, bool on) {
  if (size == 0) return;
  gva_t begin = align_down(addr, kPageSize);
  gva_t end = align_up(addr + size, kPageSize);
  bool changed = false;
  for (gva_t p = begin; p != end && p >= begin; p += kPageSize) {
    Page* pg = page_at(p);
    if (pg != nullptr && pg->watched != on) {
      pg->watched = on;
      changed = true;
    }
  }
  if (changed) ++generation_;
}

bool AddressSpace::watched(gva_t addr) const {
  const Page* pg = page_at(addr);
  return pg != nullptr && pg->watched;
}

bool AddressSpace::peek_u64(gva_t addr, u64* out) const {
  u8 buf[8];
  if (!peek(addr, buf)) return false;
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(buf[i]) << (8 * i);
  *out = v;
  return true;
}

bool AddressSpace::poke_u64(gva_t addr, u64 value) {
  u8 buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<u8>(value >> (8 * i));
  return poke(addr, buf);
}

}  // namespace crp::mem
