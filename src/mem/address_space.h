// Sparse paged guest address space with RWX permissions.
//
// This is the substrate that makes crash resistance a meaningful property:
// every guest access is checked against the page table, and a failed check
// yields a precise fault report (address + access kind) that the VM turns
// into an access violation, the kernel turns into -EFAULT, or the SEH
// machinery turns into a filtered exception.
//
// Access semantics: an access is validated over its whole byte range before
// any byte moves, so a faulting access has no partial side effects. This
// matches copy_from_user/copy_to_user semantics, which is the contract the
// paper's class-(a) primitives rely on.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace crp::mem {

inline constexpr u64 kPageSize = 4096;
inline constexpr u64 kPageMask = kPageSize - 1;

/// Permission bits (combinable).
enum Perm : u8 {
  kPermNone = 0,
  kPermR = 1,
  kPermW = 2,
  kPermX = 4,
};

/// What kind of access faulted — reported to exception filters, mirroring
/// the EXCEPTION_RECORD information Windows provides.
enum class Access : u8 { kRead = 0, kWrite = 1, kExec = 2 };

const char* access_name(Access a);

/// Result of a checked guest access.
struct AccessResult {
  bool ok = true;
  gva_t fault_addr = 0;  // first failing address when !ok
  Access kind = Access::kRead;

  static AccessResult success() { return {}; }
  static AccessResult fault(gva_t addr, Access kind) { return {false, addr, kind}; }
};

/// One mapped region as reported by region enumeration (test ground truth,
/// VirtualQuery-style APIs).
struct Region {
  gva_t begin = 0;
  gva_t end = 0;  // exclusive
  u8 perms = kPermNone;
};

/// Raw view of one mapped page for engine-level fast paths (the VM's page
/// cache). `data` stays valid until the page is unmapped; `perms`/`watched`
/// are snapshots — callers must revalidate when generation() changes.
struct PageRef {
  u8* data = nullptr;  // kPageSize bytes, or nullptr if unmapped
  u8 perms = kPermNone;
  bool watched = false;
};

class AddressSpace {
 public:
  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // --- mapping ------------------------------------------------------------

  /// Map [addr, addr+size) with `perms`. Both must be page aligned
  /// (size rounded up). Fails if any page is already mapped.
  bool map(gva_t addr, u64 size, u8 perms);

  /// Unmap every mapped page in [addr, addr+size). Returns true if at least
  /// one page was unmapped.
  bool unmap(gva_t addr, u64 size);

  /// Change permissions on all pages of [addr, addr+size); fails (with no
  /// change) if any page in the range is unmapped.
  bool protect(gva_t addr, u64 size, u8 perms);

  bool is_mapped(gva_t addr) const;
  /// Perms of the page containing addr (kPermNone if unmapped).
  u8 perms_of(gva_t addr) const;

  /// True if every byte of [addr, addr+size) is mapped with all `perms` bits.
  bool check_range(gva_t addr, u64 size, u8 perms) const;

  /// Enumerate mapped regions, coalescing adjacent same-perm pages.
  std::vector<Region> regions() const;

  /// Number of mapped pages.
  size_t page_count() const { return pages_.size(); }

  // --- checked accesses (guest semantics) ----------------------------------

  AccessResult read(gva_t addr, std::span<u8> out) const;
  AccessResult write(gva_t addr, std::span<const u8> in);
  /// Instruction fetch (requires X).
  AccessResult fetch(gva_t addr, std::span<u8> out) const;

  /// Typed checked helpers (zero-extended little-endian).
  AccessResult read_uint(gva_t addr, u8 width, u64* out) const;
  AccessResult write_uint(gva_t addr, u8 width, u64 value);

  // --- raw accesses (host / debugger / attacker-primitive semantics) -------
  // These bypass permission checks (but not mapping): they model the
  // arbitrary read/write primitive of the threat model, which the paper
  // grants the attacker, as well as host-side loaders.

  bool peek(gva_t addr, std::span<u8> out) const;
  bool poke(gva_t addr, std::span<const u8> in);
  bool peek_u64(gva_t addr, u64* out) const;
  bool poke_u64(gva_t addr, u64 value);

  // --- engine fast-path support (translation cache / page cache) ------------

  /// Monotonic layout generation: bumped on every map/unmap/protect and on
  /// watch-flag changes. Engines caching PageRefs compare against this and
  /// refill on mismatch.
  u64 generation() const { return generation_; }

  /// Raw view of the page containing `addr` (data == nullptr if unmapped).
  PageRef page_ref(gva_t addr) const;

  /// Mark/unmark pages of [addr, addr+size) as write-watched. Any poke (and
  /// hence any checked write) landing in a watched page invokes the write
  /// watcher after the bytes move. Used for self-modifying-code detection on
  /// pages holding translated traces.
  void set_watch(gva_t addr, u64 size, bool on);
  bool watched(gva_t addr) const;

  /// Single write watcher, invoked once per watched page touched by a poke
  /// with the page's base address. Replacing it does not bump generation.
  void set_write_watcher(std::function<void(gva_t page_base)> cb) {
    write_watcher_ = std::move(cb);
  }

 private:
  struct Page {
    u8 perms = kPermNone;
    bool watched = false;
    std::unique_ptr<u8[]> data;  // kPageSize bytes, zero-initialized
  };

  const Page* page_at(gva_t addr) const;
  Page* page_at(gva_t addr);

  /// Validate a whole range; returns first failing address.
  AccessResult validate(gva_t addr, u64 size, u8 perms, Access kind) const;

  std::unordered_map<u64, Page> pages_;  // keyed by page number
  u64 generation_ = 1;
  std::function<void(gva_t)> write_watcher_;

  // One-entry page_at cache (peek/poke-heavy paths touch the same page
  // repeatedly). Stamped with generation_, so any map/unmap/protect —
  // the only operations that can invalidate a Page pointer — drops it.
  mutable u64 cached_page_num_ = ~0ull;
  mutable u64 cached_gen_ = 0;
  mutable const Page* cached_page_ = nullptr;
};

}  // namespace crp::mem
