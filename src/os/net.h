// Loopback network: listeners, byte-stream connections with per-byte taint
// colors, and host-side client handles used by workload drivers and the
// attacker in the PoC exploits.
//
// Per-byte colors are what make the libdft-style analysis possible: bytes a
// client sends carry that client's taint color end-to-end into guest memory
// (the kernel reports the colors at copy_to_user time and the taint engine
// paints shadow memory).
#pragma once

#include <deque>
#include <map>
#include <span>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"

namespace crp::os {

/// One direction of a connection: a byte queue with parallel colors.
struct ByteStream {
  std::deque<u8> bytes;
  std::deque<u32> colors;  // taint color per byte (0 = clean)
  bool open = true;        // writer side still open
  u64* wake_gen = nullptr;  // reading process's net-wake counter (null when the
                            // reader is host-side); push() bumps it so blocked
                            // readers know their wait is worth re-polling

  void push(std::span<const u8> data, u32 color);
  /// Pop up to `max` bytes into out/colors_out; returns count.
  size_t pop(size_t max, std::vector<u8>* out, std::vector<u32>* colors_out);
  size_t size() const { return bytes.size(); }
};

/// A full-duplex connection. Side 0 = the end that called connect (client),
/// side 1 = the accepting end (server).
struct Connection {
  u64 id = 0;
  u16 port = 0;
  ByteStream to_server;  // written by side 0, read by side 1
  ByteStream to_client;  // written by side 1, read by side 0
  bool side_open[2] = {true, true};
  u32 color = 0;  // taint color for client->server bytes
  bool accepted = false;

  /// Stream this side writes into (client sends toward the server).
  ByteStream& stream_into(int side) { return side == 0 ? to_server : to_client; }
  /// Stream this side reads from.
  ByteStream& stream_from(int side) { return side == 0 ? to_client : to_server; }
};

/// The loopback fabric shared by all processes of one Kernel.
class Network {
 public:
  /// Guest-side listen(port); idempotent per port.
  void listen(u16 port);
  bool listening(u16 port) const;

  /// Establish a connection to `port`; nullopt if nobody listens. The new
  /// connection sits in the listener's backlog until accepted.
  /// `client_waker` is the connecting process's net-wake counter (null for
  /// host-side clients); the listener's registered waker is bumped so a
  /// blocked accept/epoll on the server re-polls.
  std::optional<u64> connect(u16 port, u32 color, u64* client_waker = nullptr);

  /// Accepting end: pop one pending connection on `port` (nullopt if none).
  std::optional<u64> accept(u16 port);

  Connection* conn(u64 id);
  const Connection* conn(u64 id) const;

  /// Close one side; when both sides are closed the connection is reaped.
  void close_side(u64 id, int side);

  /// Pending (un-accepted) connection count for a port.
  size_t backlog(u16 port) const;

  /// Next unused taint color (1-based).
  u32 fresh_color() { return next_color_++; }

  /// Register the net-wake counter of the process listening on `port`.
  /// Backlog arrivals and server-bound data bump it, so only THAT process's
  /// cached polls are invalidated — not every blocked process in the world.
  void set_port_waker(u16 port, u64* waker);

  /// Null every stored waker pointer equal to `waker` (process teardown:
  /// the counter's storage is about to go away).
  void drop_waker(const u64* waker);

 private:
  std::map<u16, std::deque<u64>> listeners_;  // port -> backlog of conn ids
  std::map<u16, u64*> port_wakers_;           // port -> listener's wake counter
  std::map<u64, Connection> conns_;
  u64 next_id_ = 1;
  u32 next_color_ = 1;
};

}  // namespace crp::os
