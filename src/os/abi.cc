#include "os/abi.h"

namespace crp::os {

const char* errno_name(i64 e) {
  switch (e) {
    case kENOENT: return "ENOENT";
    case kEINTR: return "EINTR";
    case kEBADF: return "EBADF";
    case kEAGAIN: return "EAGAIN";
    case kENOMEM: return "ENOMEM";
    case kEFAULT: return "EFAULT";
    case kEEXIST: return "EEXIST";
    case kENOTDIR: return "ENOTDIR";
    case kEISDIR: return "EISDIR";
    case kEINVAL: return "EINVAL";
    case kEMFILE: return "EMFILE";
    case kENOSYS: return "ENOSYS";
    case kENOTSOCK: return "ENOTSOCK";
    case kECONNREFUSED: return "ECONNREFUSED";
    default: return "E?";
  }
}

const char* sys_name(Sys s) {
  switch (s) {
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kChmod: return "chmod";
    case Sys::kMkdir: return "mkdir";
    case Sys::kUnlink: return "unlink";
    case Sys::kSymlink: return "symlink";
    case Sys::kSocket: return "socket";
    case Sys::kBind: return "bind";
    case Sys::kListen: return "listen";
    case Sys::kAccept: return "accept";
    case Sys::kConnect: return "connect";
    case Sys::kSend: return "send";
    case Sys::kRecv: return "recv";
    case Sys::kRecvfrom: return "recvfrom";
    case Sys::kSendmsg: return "sendmsg";
    case Sys::kEpollCreate: return "epoll_create";
    case Sys::kEpollCtl: return "epoll_ctl";
    case Sys::kEpollWait: return "epoll_wait";
    case Sys::kMmap: return "mmap";
    case Sys::kMunmap: return "munmap";
    case Sys::kMprotect: return "mprotect";
    case Sys::kExit: return "exit";
    case Sys::kExitGroup: return "exit_group";
    case Sys::kSigaction: return "sigaction";
    case Sys::kThreadCreate: return "thread_create";
    case Sys::kNanosleep: return "nanosleep";
    case Sys::kGetpid: return "getpid";
    case Sys::kYield: return "yield";
    case Sys::kSpawnWorker: return "spawn_worker";
    case Sys::kGettime: return "gettime";
    case Sys::kCount: break;
  }
  return "sys?";
}

const std::vector<Sys>& efault_capable_syscalls() {
  static const std::vector<Sys> list = {
      Sys::kChmod,   Sys::kConnect, Sys::kEpollWait, Sys::kMkdir,   Sys::kOpen,
      Sys::kRead,    Sys::kRecv,    Sys::kRecvfrom,  Sys::kSend,    Sys::kSendmsg,
      Sys::kSymlink, Sys::kUnlink,  Sys::kWrite,     Sys::kAccept,  Sys::kSigaction,
      Sys::kNanosleep,
  };
  return list;
}

std::vector<int> pointer_args(Sys s) {
  switch (s) {
    case Sys::kRead: return {2};       // read(fd, buf, n)
    case Sys::kWrite: return {2};      // write(fd, buf, n)
    case Sys::kOpen: return {1};       // open(path, flags)
    case Sys::kChmod: return {1};      // chmod(path, mode)
    case Sys::kMkdir: return {1};      // mkdir(path, mode)
    case Sys::kUnlink: return {1};     // unlink(path)
    case Sys::kSymlink: return {1, 2}; // symlink(target, linkpath)
    case Sys::kAccept: return {2};     // accept(fd, addr_out) — addr may be 0
    case Sys::kConnect: return {2};    // connect(fd, addr)
    case Sys::kSend: return {2};       // send(fd, buf, n)
    case Sys::kRecv: return {2};       // recv(fd, buf, n)
    case Sys::kRecvfrom: return {2, 4};// recvfrom(fd, buf, n, addr_out)
    case Sys::kSendmsg: return {2};    // sendmsg(fd, msghdr) — msghdr holds iov
    case Sys::kEpollWait: return {2};  // epoll_wait(epfd, events, maxevents, timeout_ms)
    case Sys::kSigaction: return {2};  // sigaction(signo, handler_desc)
    case Sys::kNanosleep: return {1};  // nanosleep(timespec)
    default: return {};
  }
}

}  // namespace crp::os
