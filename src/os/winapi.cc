#include "os/winapi.h"

#include "os/kernel.h"
#include "os/process.h"
#include "util/log.h"

namespace crp::os {

namespace {

/// MEMORY_BASIC_INFORMATION analog written by VirtualQuery:
///   +0 base address, +8 region size, +16 state (1 mapped / 0 free),
///   +24 protect bits (RWX mask)
constexpr u64 kMbiSize = 32;

vm::ExceptionRecord av_at(Thread& t, gva_t addr, mem::Access kind) {
  vm::ExceptionRecord rec;
  rec.code = vm::ExcCode::kAccessViolation;
  // The APICALL instruction already retired; attribute the fault to the
  // call site (pc of the next instruction minus one word).
  rec.fault_pc = t.cpu.pc - isa::kInstrBytes;
  rec.fault_addr = addr;
  rec.access = kind;
  return rec;
}

}  // namespace

const char* api_behavior_name(ApiBehavior b) {
  switch (b) {
    case ApiBehavior::kNoPointer: return "no-pointer";
    case ApiBehavior::kValidating: return "validating";
    case ApiBehavior::kUncheckedDeref: return "unchecked-deref";
    case ApiBehavior::kGuardedDeref: return "guarded-deref";
    case ApiBehavior::kQuery: return "query";
  }
  return "?";
}

void WinApi::add(ApiSpec spec) {
  CRP_CHECK(!specs_.contains(spec.id));
  u32 id = spec.id;
  specs_.emplace(id, std::move(spec));
}

void WinApi::copy_specs_from(const WinApi& other) {
  for (const auto& [id, spec] : other.specs_) specs_.insert_or_assign(id, spec);
}

const ApiSpec* WinApi::find(u32 id) const {
  auto it = specs_.find(id);
  return it == specs_.end() ? nullptr : &it->second;
}

const ApiSpec* WinApi::find(const std::string& name) const {
  for (const auto& [_, s] : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

ApiResult WinApi::invoke(Kernel& k, Process& p, Thread& t, u32 id, const u64* args) {
  const ApiSpec* spec = find(id);
  if (spec == nullptr) {
    ApiResult r;
    r.fault = vm::ExceptionRecord{vm::ExcCode::kIllegalInstruction, t.cpu.pc - isa::kInstrBytes,
                                  0, mem::Access::kExec};
    return r;
  }
  if (spec->impl) return spec->impl(k, p, t, args);
  return generic_impl(k, p, t, *spec, args);
}

ApiResult WinApi::generic_impl(Kernel& k, Process& p, Thread& t, const ApiSpec& spec,
                               const u64* args) {
  (void)k;
  auto& as = p.machine().mem();
  // Touch each pointer argument according to the behavior class. The
  // synthesized body reads kPtrIn/kPtrInOut args and writes kPtrOut/kPtrInOut
  // args over ptr_sizes[i] bytes.
  for (size_t i = 0; i < spec.args.size() && i < 6; ++i) {
    ArgKind kind = spec.args[i];
    if (kind == ArgKind::kValue) continue;
    gva_t ptr = args[i];
    u32 size = i < spec.ptr_sizes.size() && spec.ptr_sizes[i] != 0 ? spec.ptr_sizes[i] : 8;
    bool needs_read = kind == ArgKind::kPtrIn || kind == ArgKind::kPtrInOut;
    bool needs_write = kind == ArgKind::kPtrOut || kind == ArgKind::kPtrInOut;

    switch (spec.behavior) {
      case ApiBehavior::kNoPointer:
        break;
      case ApiBehavior::kValidating:
      case ApiBehavior::kGuardedDeref: {
        // Both classes survive bad pointers; they differ only in mechanism
        // (upfront probe vs. internal try/except), which is invisible at the
        // interface. Graceful error return on the first bad argument.
        u8 want = needs_write ? mem::kPermW : mem::kPermR;
        if (needs_read) want |= mem::kPermR;
        if (!as.check_range(ptr, size, want)) return {spec.error_ret, std::nullopt};
        break;
      }
      case ApiBehavior::kUncheckedDeref: {
        // User-mode stub dereferences before the kernel transition: fault.
        if (needs_read) {
          std::vector<u8> buf(size);
          mem::AccessResult r = as.read(ptr, buf);
          if (!r.ok) return {0, av_at(t, r.fault_addr, r.kind)};
        }
        if (needs_write) {
          std::vector<u8> zeros(size, 0);
          mem::AccessResult r = as.write(ptr, zeros);
          if (!r.ok) return {0, av_at(t, r.fault_addr, r.kind)};
        }
        break;
      }
      case ApiBehavior::kQuery:
        break;  // probed address is by-value; handled below
    }
  }

  // Post-validation effects: write deterministic junk into out-pointers so
  // callers observe side effects.
  for (size_t i = 0; i < spec.args.size() && i < 6; ++i) {
    ArgKind kind = spec.args[i];
    if (kind != ArgKind::kPtrOut && kind != ArgKind::kPtrInOut) continue;
    gva_t ptr = args[i];
    u32 size = i < spec.ptr_sizes.size() && spec.ptr_sizes[i] != 0 ? spec.ptr_sizes[i] : 8;
    std::vector<u8> fill(size, static_cast<u8>(0xA0 + i));
    if (as.check_range(ptr, size, mem::kPermW)) (void)as.write(ptr, fill);
  }
  return {0, std::nullopt};
}

void WinApi::install_base_apis() {
  {
    ApiSpec s;
    s.id = kApiVirtualQuery;
    s.name = "VirtualQuery";
    s.args = {ArgKind::kValue, ArgKind::kPtrOut, ArgKind::kValue};
    s.ptr_sizes = {0, kMbiSize, 0};
    s.behavior = ApiBehavior::kQuery;
    s.impl = [](Kernel&, Process& p, Thread& t, const u64* args) -> ApiResult {
      auto& as = p.machine().mem();
      gva_t probe = args[0], out = args[1];
      u64 len = args[2];
      if (len < kMbiSize) return {0, std::nullopt};
      // The *output* struct is dereferenced unchecked (stack/heap supplied
      // by the caller) — exactly the Listing-2 idiom.
      u64 page = align_down(probe, mem::kPageSize);
      u8 perms = as.perms_of(probe);
      u64 state = as.is_mapped(probe) ? 1 : 0;
      u8 buf[kMbiSize] = {};
      auto put = [&](u64 off, u64 v) {
        for (int i = 0; i < 8; ++i) buf[off + static_cast<u64>(i)] = static_cast<u8>(v >> (8 * i));
      };
      put(0, page);
      put(8, mem::kPageSize);
      put(16, state);
      put(24, perms);
      mem::AccessResult r = as.write(out, buf);
      if (!r.ok) return {0, av_at(t, r.fault_addr, r.kind)};
      return {kMbiSize, std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiAddVeh;
    s.name = "AddVectoredExceptionHandler";
    s.args = {ArgKind::kValue, ArgKind::kValue};  // (first, handler_pc)
    s.behavior = ApiBehavior::kNoPointer;
    s.impl = [](Kernel&, Process& p, Thread&, const u64* args) -> ApiResult {
      p.machine().add_veh(args[1]);
      return {args[1], std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiRemoveVeh;
    s.name = "RemoveVectoredExceptionHandler";
    s.args = {ArgKind::kValue};
    s.behavior = ApiBehavior::kNoPointer;
    s.impl = [](Kernel&, Process& p, Thread&, const u64* args) -> ApiResult {
      p.machine().remove_veh(args[0]);
      return {1, std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiGetTickCount;
    s.name = "GetTickCount";
    s.behavior = ApiBehavior::kNoPointer;
    s.impl = [](Kernel& k, Process&, Thread&, const u64*) -> ApiResult {
      return {k.now_ns() / 1000000, std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiWriteConsole;
    s.name = "WriteConsole";
    s.args = {ArgKind::kPtrIn, ArgKind::kValue};
    s.ptr_sizes = {1, 0};
    s.behavior = ApiBehavior::kValidating;
    s.impl = [](Kernel&, Process& p, Thread&, const u64* args) -> ApiResult {
      gva_t ptr = args[0];
      u64 len = std::min<u64>(args[1], 65536);
      std::vector<u8> buf(len);
      if (!p.machine().mem().read(ptr, buf).ok) return {~0ull, std::nullopt};
      p.console().append(buf.begin(), buf.end());
      return {len, std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiHeapAlloc;
    s.name = "HeapAlloc";
    s.args = {ArgKind::kValue};
    s.behavior = ApiBehavior::kNoPointer;
    s.impl = [](Kernel&, Process& p, Thread&, const u64* args) -> ApiResult {
      u64 size = std::min<u64>(std::max<u64>(args[0], 1), 1ull << 24);
      return {p.heap_alloc(size, mem::kPermR | mem::kPermW), std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiRaiseException;
    s.name = "RaiseException";
    s.args = {ArgKind::kValue};
    s.behavior = ApiBehavior::kNoPointer;
    s.impl = [](Kernel&, Process&, Thread& t, const u64* args) -> ApiResult {
      vm::ExceptionRecord rec;
      rec.code = static_cast<vm::ExcCode>(args[0] != 0 ? args[0]
                                                       : static_cast<u64>(vm::ExcCode::kSoftware));
      rec.fault_pc = t.cpu.pc - isa::kInstrBytes;
      return {0, rec};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiSleep;
    s.name = "Sleep";
    s.args = {ArgKind::kValue};
    s.behavior = ApiBehavior::kNoPointer;
    // Implemented by the kernel dispatcher (needs scheduler access); the
    // spec exists so tracing sees a normal API.
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiIsBadReadPtr;
    s.name = "IsBadReadPtr";
    s.args = {ArgKind::kValue, ArgKind::kValue};
    s.behavior = ApiBehavior::kQuery;
    s.impl = [](Kernel&, Process& p, Thread&, const u64* args) -> ApiResult {
      bool bad = !p.machine().mem().check_range(args[0], std::max<u64>(args[1], 1), mem::kPermR);
      return {bad ? 1ull : 0ull, std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiCreateThread;
    s.name = "CreateThread";
    s.args = {ArgKind::kValue, ArgKind::kValue};  // (entry, arg)
    s.behavior = ApiBehavior::kNoPointer;
    s.impl = [](Kernel&, Process& p, Thread&, const u64* args) -> ApiResult {
      return {static_cast<u64>(p.spawn_thread(args[0], args[1])), std::nullopt};
    };
    add(std::move(s));
  }
  {
    ApiSpec s;
    s.id = kApiReadSelfMemory;
    s.name = "ReadProcessMemorySelf";
    s.args = {ArgKind::kValue, ArgKind::kPtrOut, ArgKind::kValue};
    s.ptr_sizes = {0, 8, 0};
    s.behavior = ApiBehavior::kValidating;
    s.impl = [](Kernel&, Process& p, Thread&, const u64* args) -> ApiResult {
      auto& as = p.machine().mem();
      u64 len = std::min<u64>(args[2], 4096);
      std::vector<u8> buf(len);
      if (!as.read(args[0], buf).ok) return {~0ull, std::nullopt};
      if (!as.write(args[1], buf).ok) return {~0ull, std::nullopt};
      return {len, std::nullopt};
    };
    add(std::move(s));
  }
}

void WinApi::generate_population(u64 seed, u32 total, double ptr_fraction,
                                 double resistant_fraction) {
  Rng rng(seed);
  for (u32 i = 0; i < total; ++i) {
    ApiSpec s;
    s.id = kApiPopulationBase + i;
    s.name = strf("SynthApi%05u", i);
    bool with_ptr = rng.chance(ptr_fraction);
    u32 nargs = static_cast<u32>(rng.range(1, 4));
    for (u32 a = 0; a < nargs; ++a) {
      s.args.push_back(ArgKind::kValue);
      s.ptr_sizes.push_back(0);
    }
    if (with_ptr) {
      u32 which = static_cast<u32>(rng.below(nargs));
      u64 kind_draw = rng.below(3);
      s.args[which] = kind_draw == 0   ? ArgKind::kPtrIn
                      : kind_draw == 1 ? ArgKind::kPtrOut
                                       : ArgKind::kPtrInOut;
      s.ptr_sizes[which] = static_cast<u32>(rng.range(1, 64));
      if (rng.chance(resistant_fraction)) {
        s.behavior = rng.chance(0.5) ? ApiBehavior::kValidating : ApiBehavior::kGuardedDeref;
      } else {
        s.behavior = ApiBehavior::kUncheckedDeref;
      }
    } else {
      s.behavior = ApiBehavior::kNoPointer;
    }
    add(std::move(s));
  }
}

}  // namespace crp::os
