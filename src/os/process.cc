#include "os/process.h"

namespace crp::os {

FdTable::FdTable() {
  fds_[0] = FdConsole{};
  fds_[1] = FdConsole{};
  fds_[2] = FdConsole{};
}

i64 FdTable::alloc(FdEntry entry) {
  i64 fd = 3;
  while (fds_.contains(fd)) ++fd;
  fds_[fd] = std::move(entry);
  ++change_gen_;
  return fd;
}

void FdTable::install(i64 fd, FdEntry entry) {
  fds_[fd] = std::move(entry);
  ++change_gen_;
}

bool FdTable::close(i64 fd) {
  if (fds_.erase(fd) == 0) return false;
  ++change_gen_;
  return true;
}

Process::Process(int pid, std::string name, vm::Personality pers, u64 aslr_seed)
    : pid_(pid), name_(std::move(name)), machine_(pers, aslr_seed) {}

int Process::spawn_thread(gva_t entry, u64 arg, u64 stack_size) {
  gva_t stack_base = machine_.layout().place(mem::RegionKind::kStack, stack_size,
                                             strf("stack-t%d", next_tid_));
  CRP_CHECK(machine_.mem().map(stack_base, stack_size, mem::kPermR | mem::kPermW));
  Thread t;
  t.tid = next_tid_++;
  t.cpu.pc = entry;
  t.cpu.reg(isa::Reg::R1) = arg;
  t.cpu.sp() = stack_base + stack_size - 64;  // small top-of-stack red zone
  threads_.push_back(std::move(t));
  sched_gen = kNoSchedGen;  // a new runnable thread: drop the quiescence cache
  return threads_.back().tid;
}

Thread* Process::thread(int tid) {
  for (auto& t : threads_)
    if (t.tid == tid) return &t;
  return nullptr;
}

size_t Process::live_threads() const {
  size_t n = 0;
  for (const auto& t : threads_)
    if (t.state != Thread::State::kExited) ++n;
  return n;
}

void Process::terminate(i64 code, bool crashed, const vm::ExceptionRecord* exc) {
  exit_.exited = true;
  exit_.code = code;
  exit_.crashed = crashed;
  if (exc != nullptr) exit_.exc = *exc;
  for (auto& t : threads_) t.state = Thread::State::kExited;
}

gva_t Process::heap_alloc(u64 size, u8 perms) {
  gva_t base = machine_.layout().place(mem::RegionKind::kHeap, size, "heap");
  CRP_CHECK(machine_.mem().map(base, align_up(std::max<u64>(size, 1), mem::kPageSize), perms));
  return base;
}

}  // namespace crp::os
