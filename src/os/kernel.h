// The Kernel: owns processes, the loopback network, the VFS, the Windows
// API registry, a virtual clock, and the cooperative scheduler.
//
// Virtual time advances with retired instructions (2 ns each); when every
// thread is blocked, the clock jumps to the earliest wake deadline. This
// makes the Cherokee-style timing side channel (§VI-D) measurable: a thread
// stalled in a failing epoll_wait loop burns scheduler slices, so the
// instruction count — and hence virtual time — to serve a fixed number of
// requests grows.
//
// The EFAULT contract (the heart of class-(a) crash resistance): every
// syscall accesses user memory exclusively through copy_from_user /
// copy_to_user / strncpy_from_user below, which validate against the page
// table and return false instead of faulting. A syscall that receives an
// invalid user pointer returns -EFAULT to the guest; the guest never sees
// an exception.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "os/abi.h"
#include "os/net.h"
#include "os/process.h"
#include "os/vfs.h"
#include "os/winapi.h"

namespace crp::obs {
class Counter;
}  // namespace crp::obs

namespace crp::os {

/// Kernel-level observation hooks (taint sources/sinks, the monitor of the
/// paper's §IV-A, the API tracer of §IV-B).
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;

  /// Before a syscall executes. `args` points at the 6 argument slots and MAY
  /// be modified (the CandidateVerifier's pointer-invalidation hook).
  virtual void on_syscall_enter(Process& p, Thread& t, Sys nr, u64* args) {
    (void)p; (void)t; (void)nr; (void)args;
  }
  /// After a syscall produced `ret` (negative errno on failure). Blocked
  /// syscalls report on completion.
  virtual void on_syscall_exit(Process& p, Thread& t, Sys nr, const u64* args, i64 ret) {
    (void)p; (void)t; (void)nr; (void)args; (void)ret;
  }
  /// The kernel copied `data` into guest memory at `addr`; colors[i] is the
  /// taint color of data[i] (taint source for the analysis).
  virtual void on_user_copy_out(Process& p, gva_t addr, std::span<const u8> data,
                                std::span<const u32> colors) {
    (void)p; (void)addr; (void)data; (void)colors;
  }
  /// A Windows API is about to run / has run.
  virtual void on_api_enter(Process& p, Thread& t, u32 id, u64* args) {
    (void)p; (void)t; (void)id; (void)args;
  }
  virtual void on_api_exit(Process& p, Thread& t, u32 id, const u64* args, u64 ret,
                           bool faulted) {
    (void)p; (void)t; (void)id; (void)args; (void)ret; (void)faulted;
  }
  virtual void on_process_exit(Process& p) { (void)p; }
  virtual void on_thread_exit(Process& p, Thread& t) { (void)p; (void)t; }
  /// A process was created (images not yet loaded) — lets analyses attach
  /// per-process engines to workers spawned at runtime.
  virtual void on_process_created(Process& p) { (void)p; }
};

/// Host-side handle to one client connection (the workload driver / the
/// attacker's socket).
class ClientConn {
 public:
  ClientConn() = default;
  ClientConn(Network* net, u64 conn_id) : net_(net), id_(conn_id) {}

  bool valid() const { return net_ != nullptr && net_->conn(id_) != nullptr; }
  u64 id() const { return id_; }
  u32 color() const;

  /// Queue bytes toward the server.
  void send(std::string_view data);
  /// Drain whatever the server sent so far.
  std::string recv_all();
  /// True once the server closed its side.
  bool server_closed() const;
  void close();

 private:
  Network* net_ = nullptr;
  u64 id_ = 0;
};

class Kernel {
 public:
  Kernel();

  // --- world construction ---------------------------------------------------

  /// Create a process; returns pid. Load images via proc(pid).load(...),
  /// then start it with start_process(pid, "entry_symbol"|offset).
  int create_process(const std::string& name, vm::Personality pers, u64 aslr_seed);
  Process& proc(int pid);
  const Process* find_proc(int pid) const;
  std::vector<int> pids() const;

  /// Spawn the main thread at the main module's entry point.
  void start_process(int pid);

  /// Remove a process entirely (address space, threads, fds). Used by the
  /// ApiFuzzer, which creates one scratch process per probe — tens of
  /// thousands across a funnel run.
  void destroy_process(int pid);

  Vfs& vfs() { return vfs_; }
  Network& net() { return net_; }
  WinApi& winapi() { return winapi_; }
  const WinApi& winapi() const { return winapi_; }

  void add_observer(KernelObserver* obs);
  void remove_observer(KernelObserver* obs);

  // --- host-side client API ----------------------------------------------------

  /// Connect to a guest listener; each client gets a fresh taint color.
  std::optional<ClientConn> connect(u16 port);

  // --- execution ----------------------------------------------------------------

  /// Run the scheduler for at most `max_instr` retired instructions. Stops
  /// early when no thread can ever run again. Returns instructions retired.
  u64 run(u64 max_instr);

  /// Run until `pred()` is true; false on budget exhaustion. The predicate
  /// is re-checked after every idle clock jump, so virtual-time-sensitive
  /// callers (rate/timing measurements) see at most one sleep-wake of
  /// overshoot.
  bool run_until(const std::function<bool()>& pred, u64 max_instr);

  /// True if any thread of any live process is runnable or has a finite wake
  /// deadline.
  bool has_work() const;

  u64 now_ns() const { return now_ns_; }
  u64 total_instret() const { return instret_; }

  /// The process/thread currently being stepped (nullptr outside step_thread).
  /// Lets vm-level observers attribute instruction events to a thread.
  Process* current_process() const { return cur_proc_; }
  Thread* current_thread() const { return cur_thread_; }

  // --- direct invocation (used by the ApiFuzzer: call one API in a throwaway
  //     context without authoring guest code) ------------------------------------

  ApiResult invoke_api(Process& p, Thread& t, u32 id, u64* args);

 private:
  struct SyscallOutcome {
    bool completed = true;  // false => thread blocked, Wait installed
    i64 ret = 0;
  };

  /// run() core with an additional bound on idle clock jumps (~0 = none).
  u64 run_bounded(u64 max_instr, u64 max_jumps);
  void step_thread(Process& p, Thread& t, u64 slice);
  void dispatch_syscall(Process& p, Thread& t);
  void dispatch_api(Process& p, Thread& t, i64 api_id);
  SyscallOutcome do_syscall(Process& p, Thread& t, Sys nr, u64* args);
  /// Re-check a blocked thread's wait condition; completes the syscall when
  /// ready.
  void try_wake(Process& p, Thread& t);

  /// Process teardown: close its connection fds (peers observe EOF/RST, as
  /// a real kernel would deliver) and notify observers.
  void finish_process(Process& p);
  void finish_syscall(Process& p, Thread& t, Sys nr, const u64* args, i64 ret);

  // user-memory accessors (the EFAULT contract)
  bool copy_from_user(Process& p, gva_t src, std::span<u8> dst);
  bool copy_to_user(Process& p, gva_t dst, std::span<const u8> src,
                    std::span<const u32> colors = {});
  bool strncpy_from_user(Process& p, gva_t src, std::string* out, size_t max = 4096);

  // syscall helpers
  i64 sys_open(Process& p, u64* a);
  i64 sys_read_common(Process& p, Thread& t, Sys nr, u64* a, SyscallOutcome* oc);
  i64 sys_write_common(Process& p, Thread& t, Sys nr, u64* a);
  i64 sys_epoll_wait(Process& p, Thread& t, u64* a, SyscallOutcome* oc);
  /// Collect ready (events,data) pairs for an epoll fd. Fills and returns
  /// `epoll_scratch_` (tens of millions of polls per run: the per-call
  /// vector allocation was measurable); callers must consume the result
  /// before the next poll.
  const std::vector<std::pair<u64, u64>>& epoll_ready(Process& p, FdEpoll& ep);

  Vfs vfs_;
  Network net_;
  WinApi winapi_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<KernelObserver*> observers_;
  int next_pid_ = 1;
  u64 now_ns_ = 0;
  // Fault-injection stream for the I/O syscall family (spurious
  // -EFAULT/-EINTR, short reads/writes). Unarmed unless a chaos plan
  // covering those points is active at kernel construction.
  chaos::FaultStream chaos_;
  u64 instret_ = 0;
  Process* cur_proc_ = nullptr;
  Thread* cur_thread_ = nullptr;
  // Reused scratch buffers for the epoll hot path (capacity persists, so
  // steady state allocates nothing).
  std::vector<std::pair<u64, u64>> epoll_scratch_;
  std::vector<u8> copyout_scratch_;

  // Pending deltas for the hottest per-syscall counters. The registry
  // counters are atomics shared with the telemetry reader; one fetch_add per
  // syscall (~10^8 per table1 run) was measurable, so the hot path bumps
  // these plain fields and flush_counters() publishes them when run_bounded
  // returns — totals are exact at every run boundary.
  void flush_counters();
  u64 pend_sys_calls_[static_cast<size_t>(Sys::kCount)] = {};
  u64 pend_sys_efault_[static_cast<size_t>(Sys::kCount)] = {};
  u64 pend_copy_in_bytes_ = 0;
  u64 pend_copy_out_bytes_ = 0;
  u64 pend_copy_efaults_ = 0;

  // Cached obs::Registry handles (registry entries are never removed);
  // indexed by Sys so the syscall path does no name lookups.
  obs::Counter* c_sys_calls_[static_cast<size_t>(Sys::kCount)];
  obs::Counter* c_sys_efault_[static_cast<size_t>(Sys::kCount)];
  // Pre-interned profiler ids per syscall name (0 when sampling is off), so
  // dispatch_syscall tags samples without a name-table lookup per call.
  u16 prof_sys_id_[static_cast<size_t>(Sys::kCount)] = {};
  obs::Counter* c_copy_in_bytes_;
  obs::Counter* c_copy_out_bytes_;
  obs::Counter* c_copy_efaults_;
  obs::Counter* c_api_calls_;
  obs::Counter* c_api_faults_;
};

}  // namespace crp::os
