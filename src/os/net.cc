#include "os/net.h"

#include <algorithm>

namespace crp::os {

void ByteStream::push(std::span<const u8> data, u32 color) {
  bytes.insert(bytes.end(), data.begin(), data.end());
  colors.insert(colors.end(), data.size(), color);
  if (wake_gen != nullptr && !data.empty()) ++*wake_gen;
}

size_t ByteStream::pop(size_t max, std::vector<u8>* out, std::vector<u32>* colors_out) {
  size_t n = std::min(max, bytes.size());
  out->assign(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(n));
  if (colors_out != nullptr)
    colors_out->assign(colors.begin(), colors.begin() + static_cast<ptrdiff_t>(n));
  bytes.erase(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(n));
  colors.erase(colors.begin(), colors.begin() + static_cast<ptrdiff_t>(n));
  return n;
}

namespace {
void bump(u64* waker) {
  if (waker != nullptr) ++*waker;
}
}  // namespace

void Network::listen(u16 port) { listeners_.try_emplace(port); }

bool Network::listening(u16 port) const { return listeners_.contains(port); }

void Network::set_port_waker(u16 port, u64* waker) { port_wakers_[port] = waker; }

std::optional<u64> Network::connect(u16 port, u32 color, u64* client_waker) {
  auto it = listeners_.find(port);
  if (it == listeners_.end()) return std::nullopt;
  u64 id = next_id_++;
  Connection c;
  c.id = id;
  c.port = port;
  c.color = color;
  Connection& ins = conns_.emplace(id, std::move(c)).first->second;
  // Each stream wakes the process that reads it: the listening process for
  // to_server, the connecting one for to_client (null when the host reads).
  auto pw = port_wakers_.find(port);
  ins.to_server.wake_gen = pw == port_wakers_.end() ? nullptr : pw->second;
  ins.to_client.wake_gen = client_waker;
  it->second.push_back(id);
  bump(ins.to_server.wake_gen);  // backlog arrival can satisfy accept/epoll
  return id;
}

std::optional<u64> Network::accept(u16 port) {
  auto it = listeners_.find(port);
  if (it == listeners_.end() || it->second.empty()) return std::nullopt;
  u64 id = it->second.front();
  it->second.pop_front();
  conns_.at(id).accepted = true;
  auto pw = port_wakers_.find(port);
  if (pw != port_wakers_.end()) bump(pw->second);
  return id;
}

Connection* Network::conn(u64 id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

const Connection* Network::conn(u64 id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

void Network::close_side(u64 id, int side) {
  Connection* c = conn(id);
  if (c == nullptr) return;
  // Both readers can be woken: EOF for the peer reading the closed stream,
  // reap/writability change for the closing side's own reader.
  bump(c->to_server.wake_gen);
  bump(c->to_client.wake_gen);
  c->side_open[side] = false;
  c->stream_into(side).open = false;
  if (!c->side_open[0] && !c->side_open[1]) {
    // Remove from any backlog before reaping.
    for (auto& [_, bl] : listeners_)
      bl.erase(std::remove(bl.begin(), bl.end(), id), bl.end());
    conns_.erase(id);
  }
}

void Network::drop_waker(const u64* waker) {
  for (auto& [_, c] : conns_) {
    if (c.to_server.wake_gen == waker) c.to_server.wake_gen = nullptr;
    if (c.to_client.wake_gen == waker) c.to_client.wake_gen = nullptr;
  }
  for (auto& [_, w] : port_wakers_)
    if (w == waker) w = nullptr;
}

size_t Network::backlog(u16 port) const {
  auto it = listeners_.find(port);
  return it == listeners_.end() ? 0 : it->second.size();
}

}  // namespace crp::os
