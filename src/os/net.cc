#include "os/net.h"

#include <algorithm>

namespace crp::os {

void ByteStream::push(std::span<const u8> data, u32 color) {
  bytes.insert(bytes.end(), data.begin(), data.end());
  colors.insert(colors.end(), data.size(), color);
}

size_t ByteStream::pop(size_t max, std::vector<u8>* out, std::vector<u32>* colors_out) {
  size_t n = std::min(max, bytes.size());
  out->assign(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(n));
  if (colors_out != nullptr)
    colors_out->assign(colors.begin(), colors.begin() + static_cast<ptrdiff_t>(n));
  bytes.erase(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(n));
  colors.erase(colors.begin(), colors.begin() + static_cast<ptrdiff_t>(n));
  return n;
}

void Network::listen(u16 port) { listeners_.try_emplace(port); }

bool Network::listening(u16 port) const { return listeners_.contains(port); }

std::optional<u64> Network::connect(u16 port, u32 color) {
  auto it = listeners_.find(port);
  if (it == listeners_.end()) return std::nullopt;
  u64 id = next_id_++;
  Connection c;
  c.id = id;
  c.port = port;
  c.color = color;
  conns_.emplace(id, std::move(c));
  it->second.push_back(id);
  return id;
}

std::optional<u64> Network::accept(u16 port) {
  auto it = listeners_.find(port);
  if (it == listeners_.end() || it->second.empty()) return std::nullopt;
  u64 id = it->second.front();
  it->second.pop_front();
  conns_.at(id).accepted = true;
  return id;
}

Connection* Network::conn(u64 id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

const Connection* Network::conn(u64 id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

void Network::close_side(u64 id, int side) {
  Connection* c = conn(id);
  if (c == nullptr) return;
  c->side_open[side] = false;
  c->stream_into(side).open = false;
  if (!c->side_open[0] && !c->side_open[1]) {
    // Remove from any backlog before reaping.
    for (auto& [_, bl] : listeners_)
      bl.erase(std::remove(bl.begin(), bl.end(), id), bl.end());
    conns_.erase(id);
  }
}

size_t Network::backlog(u16 port) const {
  auto it = listeners_.find(port);
  return it == listeners_.end() ? 0 : it->second.size();
}

}  // namespace crp::os
