// Windows API layer: a registry of host-implemented API functions reached
// via the APICALL trap.
//
// Each API carries metadata (argument kinds) plus a *behavior class* that
// determines what happens when a pointer argument is invalid:
//
//   kValidating     — the API probes the pointer first and returns an error
//                     code gracefully (crash-resistant; the class the
//                     ApiFuzzer is hunting).
//   kUncheckedDeref — the user-mode portion dereferences the pointer before
//                     any validation; a bad pointer raises an access
//                     violation at the APICALL site (dispatched through
//                     SEH/VEH like any guest fault).
//   kGuardedDeref   — the API body dereferences inside its own internal
//                     try/except and converts the fault into an error code
//                     (crash-resistant, e.g. IsBadReadPtr).
//   kQuery          — memory-introspection APIs (VirtualQuery): take an
//                     arbitrary address *by value* plus an output struct;
//                     trivially crash-resistant for the probed address. The
//                     paper excludes these from discovery (§III) since they
//                     are intended for querying the layout, but they exist
//                     in the corpus for completeness.
//   kNoPointer      — no pointer arguments at all.
//
// The synthetic population generator emits a large corpus with the paper's
// §V-B proportions so the fuzzing funnel can be re-derived by black-box
// probing (the fuzzer never reads the behavior field — it classifies by
// observing returns vs. crashes, like the paper's fuzzer did on MSDN-
// harvested prototypes).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/rng.h"
#include "vm/exception.h"

namespace crp::os {

class Process;
struct Thread;
class Kernel;

enum class ArgKind : u8 {
  kValue = 0,   // plain integer
  kPtrIn,       // pointer read by the API
  kPtrOut,      // pointer written by the API
  kPtrInOut,
};

enum class ApiBehavior : u8 {
  kNoPointer = 0,
  kValidating,
  kUncheckedDeref,
  kGuardedDeref,
  kQuery,
};

const char* api_behavior_name(ApiBehavior b);

/// Result of one API invocation.
struct ApiResult {
  u64 ret = 0;
  /// Set when the API's user-mode part faulted: the kernel dispatches this
  /// as a guest exception at the APICALL site.
  std::optional<vm::ExceptionRecord> fault;
};

struct ApiSpec {
  u32 id = 0;
  std::string name;
  std::vector<ArgKind> args;        // up to 6
  std::vector<u32> ptr_sizes;       // bytes accessed per arg (0 for kValue)
  ApiBehavior behavior = ApiBehavior::kNoPointer;
  u64 error_ret = ~0ull;            // value returned on graceful failure
  /// Optional bespoke implementation (VirtualQuery, VEH registration, ...).
  /// When absent, a generic implementation synthesized from the metadata runs.
  std::function<ApiResult(Kernel&, Process&, Thread&, const u64*)> impl;

  bool has_pointer_arg() const {
    for (ArgKind k : args)
      if (k != ArgKind::kValue) return true;
    return false;
  }
};

/// API id -> spec registry for one Kernel.
class WinApi {
 public:
  /// Register a spec; id must be unused.
  void add(ApiSpec spec);
  /// Copy every spec of `other` into this registry, replacing ids that
  /// already exist. Lets the ApiFuzzer stamp out scratch kernels whose API
  /// surface matches the fuzzed kernel's (specs capture no per-kernel
  /// state — impls receive the Kernel as a parameter).
  void copy_specs_from(const WinApi& other);
  const ApiSpec* find(u32 id) const;
  const ApiSpec* find(const std::string& name) const;
  const std::map<u32, ApiSpec>& all() const { return specs_; }

  /// Invoke API `id` with `args` (6 slots). Unknown id -> illegal instruction fault.
  ApiResult invoke(Kernel& k, Process& p, Thread& t, u32 id, const u64* args);

  /// Install the handful of well-known APIs (ids 1..63 reserved):
  /// VirtualQuery, AddVectoredExceptionHandler, RemoveVectoredExceptionHandler,
  /// GetTickCount, WriteConsole, HeapAlloc, RaiseException, Sleep,
  /// IsBadReadPtr, ReadProcessMemorySelf.
  void install_base_apis();

  /// §V-B population: generate `total` synthetic APIs (ids from 1000) whose
  /// composition matches the paper's measured ratios:
  /// `ptr_fraction` have >=1 pointer argument and, of those,
  /// `resistant_fraction` behave crash-resistantly (validating or guarded).
  /// Deterministic for a given seed.
  void generate_population(u64 seed, u32 total, double ptr_fraction,
                           double resistant_fraction);

 private:
  ApiResult generic_impl(Kernel& k, Process& p, Thread& t, const ApiSpec& spec,
                         const u64* args);

  std::map<u32, ApiSpec> specs_;
};

// Well-known API ids used by authored guest code.
inline constexpr u32 kApiVirtualQuery = 1;
inline constexpr u32 kApiAddVeh = 2;
inline constexpr u32 kApiRemoveVeh = 3;
inline constexpr u32 kApiGetTickCount = 4;
inline constexpr u32 kApiWriteConsole = 5;
inline constexpr u32 kApiHeapAlloc = 6;
inline constexpr u32 kApiRaiseException = 7;
inline constexpr u32 kApiSleep = 8;
inline constexpr u32 kApiIsBadReadPtr = 9;
inline constexpr u32 kApiReadSelfMemory = 10;
inline constexpr u32 kApiCreateThread = 11;
inline constexpr u32 kApiPopulationBase = 1000;

}  // namespace crp::os
