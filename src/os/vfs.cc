#include "os/vfs.h"

#include "os/abi.h"

namespace crp::os {

Vfs::Vfs() {
  VfsNode root;
  root.kind = VfsNode::Kind::kDir;
  root.mode = 0755;
  nodes_["/"] = root;
}

std::string Vfs::normalize(const std::string& path) {
  std::string out = "/";
  std::string comp;
  auto flush = [&] {
    if (comp.empty() || comp == ".") {
      comp.clear();
      return;
    }
    if (out.back() != '/') out += '/';
    out += comp;
    comp.clear();
  };
  for (char c : path) {
    if (c == '/') {
      flush();
    } else {
      comp += c;
    }
  }
  flush();
  return out;
}

std::string Vfs::parent_of(const std::string& normalized) {
  auto pos = normalized.find_last_of('/');
  if (pos == 0 || pos == std::string::npos) return "/";
  return normalized.substr(0, pos);
}

void Vfs::put_file(const std::string& path, std::string_view contents, u32 mode) {
  std::string p = normalize(path);
  // Ensure parents.
  std::string parent = parent_of(p);
  if (parent != p && !nodes_.contains(parent)) put_dir(parent);
  VfsNode n;
  n.kind = VfsNode::Kind::kFile;
  n.data.assign(contents.begin(), contents.end());
  n.mode = mode;
  nodes_[p] = std::move(n);
}

void Vfs::put_dir(const std::string& path, u32 mode) {
  std::string p = normalize(path);
  std::string parent = parent_of(p);
  if (parent != p && !nodes_.contains(parent)) put_dir(parent);
  VfsNode n;
  n.kind = VfsNode::Kind::kDir;
  n.mode = mode;
  nodes_[p] = std::move(n);
}

i64 Vfs::mkdir(const std::string& path, u32 mode) {
  std::string p = normalize(path);
  if (nodes_.contains(p)) return -kEEXIST;
  const VfsNode* parent = resolve(parent_of(p));
  if (parent == nullptr) return -kENOENT;
  if (parent->kind != VfsNode::Kind::kDir) return -kENOTDIR;
  VfsNode n;
  n.kind = VfsNode::Kind::kDir;
  n.mode = mode & 07777;
  nodes_[p] = std::move(n);
  return 0;
}

i64 Vfs::unlink(const std::string& path) {
  std::string p = normalize(path);
  auto it = nodes_.find(p);
  if (it == nodes_.end()) return -kENOENT;
  if (it->second.kind == VfsNode::Kind::kDir) return -kEISDIR;
  nodes_.erase(it);
  return 0;
}

i64 Vfs::symlink(const std::string& target, const std::string& linkpath) {
  std::string p = normalize(linkpath);
  if (nodes_.contains(p)) return -kEEXIST;
  const VfsNode* parent = resolve(parent_of(p));
  if (parent == nullptr) return -kENOENT;
  if (parent->kind != VfsNode::Kind::kDir) return -kENOTDIR;
  VfsNode n;
  n.kind = VfsNode::Kind::kSymlink;
  n.link_target = target;
  nodes_[p] = std::move(n);
  return 0;
}

i64 Vfs::chmod(const std::string& path, u32 mode) {
  VfsNode* n = resolve(path);
  if (n == nullptr) return -kENOENT;
  n->mode = mode & 07777;
  return 0;
}

const VfsNode* Vfs::resolve(const std::string& path) const {
  std::string p = normalize(path);
  for (int depth = 0; depth < 8; ++depth) {
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return nullptr;
    if (it->second.kind != VfsNode::Kind::kSymlink) return &it->second;
    p = normalize(it->second.link_target);
  }
  return nullptr;  // symlink loop
}

VfsNode* Vfs::resolve(const std::string& path) {
  return const_cast<VfsNode*>(static_cast<const Vfs*>(this)->resolve(path));
}

i64 Vfs::open(const std::string& path, u64 flags, VfsNode** node_out) {
  std::string p = normalize(path);
  VfsNode* n = resolve(p);
  if (n == nullptr) {
    if ((flags & kOCreat) == 0) return -kENOENT;
    const VfsNode* parent = resolve(parent_of(p));
    if (parent == nullptr) return -kENOENT;
    if (parent->kind != VfsNode::Kind::kDir) return -kENOTDIR;
    VfsNode nf;
    nf.kind = VfsNode::Kind::kFile;
    nodes_[p] = std::move(nf);
    n = &nodes_[p];
  } else if (n->kind == VfsNode::Kind::kDir && (flags & (kOWronly | kORdwr)) != 0) {
    return -kEISDIR;
  }
  if ((flags & kOTrunc) != 0 && n->kind == VfsNode::Kind::kFile) n->data.clear();
  *node_out = n;
  return 0;
}

}  // namespace crp::os
