// Guest-visible OS ABI: syscall numbers, errno values, flags.
//
// The syscall set mirrors the subset of Linux the paper's Table I covers
// (all EFAULT-capable calls it lists) plus the process/thread/memory calls
// the target corpus needs. Syscall convention: number in R0, args in
// R1..R6, return in R0 (negative errno on failure, Linux-style).
#pragma once

#include <vector>

#include "util/common.h"

namespace crp::os {

// --- errno (values as on Linux x86-64) ---------------------------------------
inline constexpr i64 kENOENT = 2;
inline constexpr i64 kEINTR = 4;
inline constexpr i64 kEBADF = 9;
inline constexpr i64 kEAGAIN = 11;
inline constexpr i64 kENOMEM = 12;
inline constexpr i64 kEFAULT = 14;
inline constexpr i64 kEEXIST = 17;
inline constexpr i64 kENOTDIR = 20;
inline constexpr i64 kEISDIR = 21;
inline constexpr i64 kEINVAL = 22;
inline constexpr i64 kEMFILE = 24;
inline constexpr i64 kENOSYS = 38;
inline constexpr i64 kENOTSOCK = 88;
inline constexpr i64 kECONNREFUSED = 111;

const char* errno_name(i64 e);

// --- syscall numbers ----------------------------------------------------------
enum class Sys : u64 {
  kRead = 0,
  kWrite = 1,
  kOpen = 2,
  kClose = 3,
  kChmod = 4,
  kMkdir = 5,
  kUnlink = 6,
  kSymlink = 7,
  kSocket = 8,
  kBind = 9,
  kListen = 10,
  kAccept = 11,
  kConnect = 12,
  kSend = 13,
  kRecv = 14,
  kRecvfrom = 15,
  kSendmsg = 16,
  kEpollCreate = 17,
  kEpollCtl = 18,
  kEpollWait = 19,
  kMmap = 20,
  kMunmap = 21,
  kMprotect = 22,
  kExit = 23,        // thread exit
  kExitGroup = 24,   // process exit
  kSigaction = 25,
  kThreadCreate = 26,
  kNanosleep = 27,
  kGetpid = 28,
  kYield = 29,
  kSpawnWorker = 30,  // fork+exec-lite: worker process per connection
  kGettime = 31,
  kCount,
};

const char* sys_name(Sys s);

/// Syscalls that take at least one user-space pointer and can therefore
/// return -EFAULT — the candidate set the Linux analysis monitors (§III-A1).
/// Matches the rows of Table I plus the extra pointer-taking calls the
/// corpus uses.
const std::vector<Sys>& efault_capable_syscalls();

/// Which argument slots (1-based, R1..R6) of `s` are user pointers.
/// Empty for syscalls with no pointer arguments.
std::vector<int> pointer_args(Sys s);

// --- open flags ----------------------------------------------------------------
inline constexpr u64 kORdonly = 0;
inline constexpr u64 kOWronly = 1;
inline constexpr u64 kORdwr = 2;
inline constexpr u64 kOCreat = 0x40;
inline constexpr u64 kOTrunc = 0x200;

// --- epoll ----------------------------------------------------------------------
inline constexpr u64 kEpollCtlAdd = 1;
inline constexpr u64 kEpollCtlDel = 2;
inline constexpr u64 kEpollCtlMod = 3;
inline constexpr u64 kEpollIn = 0x1;
inline constexpr u64 kEpollOut = 0x4;
/// Guest epoll_event layout: { u64 events; u64 data; } = 16 bytes.
inline constexpr u64 kEpollEventSize = 16;

// --- mmap ----------------------------------------------------------------------
inline constexpr u64 kProtRead = 1;
inline constexpr u64 kProtWrite = 2;
inline constexpr u64 kProtExec = 4;

// --- signals ----------------------------------------------------------------
inline constexpr int kSigsegv = 11;
inline constexpr int kSigbus = 7;
inline constexpr int kSigfpe = 8;

}  // namespace crp::os
