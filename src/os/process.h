// Processes, threads and file-descriptor tables.
//
// Threads are cooperatively scheduled by the Kernel; each carries its own
// Cpu context and an optional pending wait (blocked syscall continuation).
// Processes own a vm::Machine (address space + modules + exception state)
// and die atomically: an unhandled exception in any thread kills the whole
// process and records the crash — the signal the paper's verifier uses to
// tell crash-resistant candidates from crashing ones.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "os/abi.h"
#include "vm/machine.h"

namespace crp::os {

struct VfsNode;

// --- file descriptors -----------------------------------------------------------

struct FdFile {
  std::string path;
  u64 offset = 0;
  u64 flags = 0;
};

struct FdListener {
  u16 port = 0;
};

struct FdConn {
  u64 conn_id = 0;
  int side = 0;  // 0 = connecting side, 1 = accepting side
};

struct FdEpoll {
  // watched fd -> (events mask, user data)
  std::map<i64, std::pair<u64, u64>> watched;
};

struct FdConsole {};  // stdin/stdout/stderr

using FdEntry = std::variant<FdConsole, FdFile, FdListener, FdConn, FdEpoll>;

class FdTable {
 public:
  FdTable();

  /// Allocate the lowest free descriptor >= 3.
  i64 alloc(FdEntry entry);
  /// Install at a specific number (worker fd passing).
  void install(i64 fd, FdEntry entry);
  FdEntry* get(i64 fd) {
    auto it = fds_.find(fd);
    return it == fds_.end() ? nullptr : &it->second;
  }
  bool close(i64 fd);
  const std::map<i64, FdEntry>& all() const { return fds_; }

  /// Monotone counter bumped on table mutations (and, via note_change, on
  /// in-place edits such as epoll_ctl). Pairs with Process::net_wake_gen to
  /// let try_wake skip polls whose inputs have not moved.
  u64 change_gen() const { return change_gen_; }
  void note_change() { ++change_gen_; }

 private:
  std::map<i64, FdEntry> fds_;
  u64 change_gen_ = 0;
};

// --- threads -------------------------------------------------------------------

/// A blocked syscall waiting for its wake condition.
struct Wait {
  enum class Kind : u8 { kNone, kReadFd, kAccept, kEpoll, kSleep } kind = Kind::kNone;
  i64 fd = -1;          // kReadFd/kAccept/kEpoll: descriptor waited on
  gva_t buf = 0;        // destination buffer (read/recv/epoll events)
  u64 len = 0;          // buffer length / maxevents
  u64 deadline_ns = ~0ull;  // absolute virtual deadline (kEpoll/kSleep)
  Sys nr = Sys::kCount;     // the blocked syscall (for observer reporting)

  /// World generation (net + fd-table) at the last poll that left us
  /// blocked; kNoPoll forces the next try_wake to do a real poll. Every
  /// wake condition is monotone in the generations and the virtual clock,
  /// so an unchanged generation before the deadline cannot wake.
  static constexpr u64 kNoPoll = ~0ull;
  u64 poll_gen = kNoPoll;
};

struct Thread {
  enum class State : u8 { kRunnable, kBlocked, kExited } state = State::kRunnable;
  int tid = 0;
  vm::Cpu cpu;
  Wait wait;
  u64 steps = 0;  // instructions retired by this thread
};

// --- process -------------------------------------------------------------------

struct ExitInfo {
  bool exited = false;
  i64 code = 0;
  bool crashed = false;
  vm::ExceptionRecord exc{};  // valid when crashed
};

class Process {
 public:
  Process(int pid, std::string name, vm::Personality pers, u64 aslr_seed);

  int pid() const { return pid_; }
  const std::string& name() const { return name_; }
  vm::Machine& machine() { return machine_; }
  const vm::Machine& machine() const { return machine_; }
  FdTable& fds() { return fds_; }

  /// Load an image into this process (DLLs first, then the main module).
  size_t load(std::shared_ptr<const isa::Image> image) { return machine_.load_image(image); }

  /// Create a thread with its own freshly mapped stack; entry gets `arg` in
  /// R1. Returns the tid.
  int spawn_thread(gva_t entry, u64 arg = 0, u64 stack_size = 64 * 1024);

  std::deque<Thread>& threads() { return threads_; }
  Thread* thread(int tid);

  /// Number of threads currently not exited.
  size_t live_threads() const;

  bool alive() const { return !exit_.exited; }
  const ExitInfo& exit_info() const { return exit_; }

  /// Terminate the whole process (exit_group or crash).
  void terminate(i64 code, bool crashed, const vm::ExceptionRecord* exc = nullptr);

  /// Bump allocator for guest heap requests (mmap with addr==0).
  gva_t heap_alloc(u64 size, u8 perms);

  /// Console output captured from fds 1/2.
  std::string& console() { return console_; }

  /// Scheduler quiescence cache, owned by Kernel::run_bounded: when every
  /// thread was blocked at world generation `sched_gen` (net + this fd
  /// table) the whole process is skipped until the generation moves or
  /// `sched_deadline` arrives. kNoSchedGen = must scan. Invalidated on
  /// spawn_thread (a fresh runnable thread appears without a gen bump).
  static constexpr u64 kNoSchedGen = ~0ull;
  u64 sched_gen = kNoSchedGen;
  u64 sched_deadline = ~0ull;

  /// Net-wake counter: bumped by network events that can satisfy one of THIS
  /// process's blocked waits (data pushed into a stream it reads, backlog
  /// arrival on its listener, close on one of its conns). Streams hold a
  /// pointer to it (see ByteStream::wake_gen); Network::drop_waker must run
  /// before this object is destroyed mid-run. Summed with the fd-table
  /// generation to form the poll generation try_wake caches.
  u64 net_wake_gen = 0;

 private:
  int pid_;
  std::string name_;
  vm::Machine machine_;
  FdTable fds_;
  // deque: stable references while the scheduler iterates even when a
  // guest thread_create appends (vector reallocation would dangle Thread&).
  std::deque<Thread> threads_;
  int next_tid_ = 1;
  ExitInfo exit_;
  std::string console_;
};

}  // namespace crp::os
