#include "os/kernel.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/prof.h"
#include "util/log.h"

namespace crp::os {

namespace {
constexpr u64 kNsPerInstr = 2;
constexpr u64 kSliceInstr = 200;
constexpr u64 kInvalidDeadline = ~0ull;

/// True when a blocked wait provably cannot be satisfied right now, so the
/// real poll can be skipped. Sleeps depend only on the virtual clock; every
/// other kind is monotone in the process's poll generation (net-wake + fd
/// table), with epoll additionally able to time out. kNone (spurious block)
/// must always be polled.
bool cannot_wake(const Wait& w, u64 pgen, u64 now_ns) {
  if (w.kind == Wait::Kind::kSleep) return now_ns < w.deadline_ns;
  return w.kind != Wait::Kind::kNone && w.poll_gen == pgen &&
         (w.kind != Wait::Kind::kEpoll || now_ns < w.deadline_ns);
}
}  // namespace

// --- ClientConn -----------------------------------------------------------------

u32 ClientConn::color() const {
  const Connection* c = net_->conn(id_);
  return c != nullptr ? c->color : 0;
}

void ClientConn::send(std::string_view data) {
  Connection* c = net_->conn(id_);
  if (c == nullptr || !c->side_open[0]) return;
  c->to_server.push(std::span<const u8>(reinterpret_cast<const u8*>(data.data()), data.size()),
                    c->color);
}

std::string ClientConn::recv_all() {
  Connection* c = net_->conn(id_);
  if (c == nullptr) return {};
  std::vector<u8> buf;
  c->to_client.pop(c->to_client.size(), &buf, nullptr);
  return std::string(buf.begin(), buf.end());
}

bool ClientConn::server_closed() const {
  const Connection* c = net_->conn(id_);
  return c == nullptr || !c->side_open[1];
}

void ClientConn::close() {
  if (net_ != nullptr) net_->close_side(id_, 0);
}

// --- Kernel ----------------------------------------------------------------------

Kernel::Kernel() {
  winapi_.install_base_apis();
  obs::Registry& reg = obs::Registry::global();
  for (size_t s = 0; s < static_cast<size_t>(Sys::kCount); ++s) {
    std::string base = std::string("kernel.sys.") + sys_name(static_cast<Sys>(s));
    c_sys_calls_[s] = &reg.counter(base + ".calls");
    c_sys_efault_[s] = &reg.counter(base + ".efault");
  }
  c_copy_in_bytes_ = &reg.counter("kernel.copy_from_user.bytes");
  c_copy_out_bytes_ = &reg.counter("kernel.copy_to_user.bytes");
  c_copy_efaults_ = &reg.counter("kernel.copy_user.efaults");
  c_api_calls_ = &reg.counter("kernel.api.calls");
  c_api_faults_ = &reg.counter("kernel.api.faults");
  if (obs::Profiler::global().enabled()) {
    for (size_t s = 0; s < static_cast<size_t>(Sys::kCount); ++s)
      prof_sys_id_[s] = static_cast<u16>(
          obs::Profiler::global().intern(sys_name(static_cast<Sys>(s))));
  }
  chaos_ = chaos::make_stream(chaos::kIoPoints);
}

int Kernel::create_process(const std::string& name, vm::Personality pers, u64 aslr_seed) {
  int pid = next_pid_++;
  procs_.push_back(std::make_unique<Process>(pid, name, pers, aslr_seed));
  // Snapshot: observers may register further observers from this callback
  // (the taint farm attaches an engine per new process).
  std::vector<KernelObserver*> snapshot = observers_;
  for (auto* o : snapshot) o->on_process_created(*procs_.back());
  return pid;
}

Process& Kernel::proc(int pid) {
  for (auto& p : procs_)
    if (p->pid() == pid) return *p;
  CRP_PANIC(strf("no such pid %d", pid));
}

const Process* Kernel::find_proc(int pid) const {
  for (const auto& p : procs_)
    if (p->pid() == pid) return p.get();
  return nullptr;
}

std::vector<int> Kernel::pids() const {
  std::vector<int> out;
  for (const auto& p : procs_) out.push_back(p->pid());
  return out;
}

void Kernel::start_process(int pid) {
  Process& p = proc(pid);
  CRP_CHECK(!p.machine().modules().empty());
  // Entry of the last loaded non-DLL module.
  const vm::LoadedModule* main_mod = nullptr;
  for (const auto& m : p.machine().modules())
    if (!m.image->is_dll) main_mod = &m;
  CRP_CHECK(main_mod != nullptr);
  p.spawn_thread(main_mod->code_addr(main_mod->image->entry));
}

void Kernel::destroy_process(int pid) {
  CRP_CHECK(cur_proc_ == nullptr || cur_proc_->pid() != pid);
  for (auto it = procs_.begin(); it != procs_.end(); ++it) {
    if ((*it)->pid() == pid) {
      // Streams may point at this process's net-wake counter; its storage
      // dies with the Process object.
      net_.drop_waker(&(*it)->net_wake_gen);
      procs_.erase(it);
      return;
    }
  }
}

void Kernel::add_observer(KernelObserver* obs) { observers_.push_back(obs); }

void Kernel::remove_observer(KernelObserver* obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), obs), observers_.end());
}

std::optional<ClientConn> Kernel::connect(u16 port) {
  std::optional<u64> id = net_.connect(port, net_.fresh_color());
  if (!id.has_value()) return std::nullopt;
  return ClientConn(&net_, *id);
}

// --- user memory (EFAULT contract) -------------------------------------------------

bool Kernel::copy_from_user(Process& p, gva_t src, std::span<u8> dst) {
  // Kernel-side copies honor page mapping but not the W^X user permission
  // split: reads require R.
  if (!p.machine().mem().check_range(src, dst.size(), mem::kPermR)) {
    ++pend_copy_efaults_;
    return false;
  }
  pend_copy_in_bytes_ += dst.size();
  return p.machine().mem().peek(src, dst);
}

bool Kernel::copy_to_user(Process& p, gva_t dst, std::span<const u8> src,
                          std::span<const u32> colors) {
  if (!p.machine().mem().check_range(dst, src.size(), mem::kPermW)) {
    ++pend_copy_efaults_;
    return false;
  }
  if (!p.machine().mem().poke(dst, src)) return false;
  pend_copy_out_bytes_ += src.size();
  for (auto* o : observers_) o->on_user_copy_out(p, dst, src, colors);
  return true;
}

bool Kernel::strncpy_from_user(Process& p, gva_t src, std::string* out, size_t max) {
  out->clear();
  for (size_t i = 0; i < max; ++i) {
    u8 c = 0;
    if (!p.machine().mem().check_range(src + i, 1, mem::kPermR)) {
      ++pend_copy_efaults_;
      return false;
    }
    CRP_CHECK(p.machine().mem().peek(src + i, std::span<u8>(&c, 1)));
    if (c == 0) {
      pend_copy_in_bytes_ += i + 1;
      return true;
    }
    out->push_back(static_cast<char>(c));
  }
  return false;  // unterminated
}

// --- scheduler ----------------------------------------------------------------------

bool Kernel::has_work() const {
  for (const auto& p : procs_) {
    if (!p->alive()) continue;
    for (const auto& t : const_cast<Process&>(*p).threads()) {
      if (t.state == Thread::State::kRunnable) return true;
      if (t.state == Thread::State::kBlocked && t.wait.deadline_ns != kInvalidDeadline)
        return true;
      if (t.state == Thread::State::kBlocked) {
        // Unbounded waits may still be satisfied by host activity (client
        // sends); report as work so run_until keeps polling while the host
        // drives I/O. run() itself detects quiescence via progress.
        return true;
      }
    }
  }
  return false;
}

u64 Kernel::run(u64 max_instr) { return run_bounded(max_instr, ~0ull); }

void Kernel::flush_counters() {
  for (size_t s = 0; s < static_cast<size_t>(Sys::kCount); ++s) {
    if (pend_sys_calls_[s] != 0) {
      c_sys_calls_[s]->inc(pend_sys_calls_[s]);
      pend_sys_calls_[s] = 0;
    }
    if (pend_sys_efault_[s] != 0) {
      c_sys_efault_[s]->inc(pend_sys_efault_[s]);
      pend_sys_efault_[s] = 0;
    }
  }
  if (pend_copy_in_bytes_ != 0) {
    c_copy_in_bytes_->inc(pend_copy_in_bytes_);
    pend_copy_in_bytes_ = 0;
  }
  if (pend_copy_out_bytes_ != 0) {
    c_copy_out_bytes_->inc(pend_copy_out_bytes_);
    pend_copy_out_bytes_ = 0;
  }
  if (pend_copy_efaults_ != 0) {
    c_copy_efaults_->inc(pend_copy_efaults_);
    pend_copy_efaults_ = 0;
  }
}

u64 Kernel::run_bounded(u64 max_instr, u64 max_jumps) {
  struct Flush {
    Kernel* k;
    ~Flush() { k->flush_counters(); }
  } flush{this};
  u64 start = instret_;
  u64 jumps = 0;
  while (instret_ - start < max_instr) {
    bool ran_any = false;
    u64 min_deadline = kInvalidDeadline;

    // Index-based: spawn_worker may append to procs_ mid-iteration.
    for (size_t pi = 0; pi < procs_.size(); ++pi) {
      Process& p = *procs_[pi];
      if (!p.alive()) continue;
      // Quiescence fast path: every thread of p was blocked the last time
      // we scanned, and nothing a wake condition depends on (network or fd
      // generation, virtual clock vs. earliest deadline) has moved since.
      const u64 pgen = p.net_wake_gen + p.fds().change_gen();
      if (p.sched_gen == pgen && now_ns_ < p.sched_deadline) {
        min_deadline = std::min(min_deadline, p.sched_deadline);
        continue;
      }
      p.sched_gen = Process::kNoSchedGen;
      bool all_idle = true;
      u64 pmin = kInvalidDeadline;
      for (auto& t : p.threads()) {
        if (!p.alive()) break;
        if (t.state == Thread::State::kBlocked) {
          // Inline copy of try_wake's idle-poll early-out: at ~60 server
          // processes x ~8 blocked threads this test runs hundreds of times
          // per pass, and the call itself was measurable.
          const Wait& w = t.wait;
          if (cannot_wake(w, pgen, now_ns_)) {
            pmin = std::min(pmin, w.deadline_ns);
            min_deadline = std::min(min_deadline, w.deadline_ns);
            continue;
          }
          try_wake(p, t);
          if (t.state == Thread::State::kBlocked) {
            pmin = std::min(pmin, t.wait.deadline_ns);
            min_deadline = std::min(min_deadline, t.wait.deadline_ns);
            continue;
          }
        }
        if (t.state != Thread::State::kRunnable) continue;
        all_idle = false;
        ran_any = true;
        step_thread(p, t, kSliceInstr);
      }
      // Only an all-blocked scan with zero wakes can be cached: any thread
      // that ran may have changed world state mid-scan (pgen is stale then).
      if (all_idle && p.alive()) {
        p.sched_gen = pgen;
        p.sched_deadline = pmin;
      }
    }

    if (!ran_any) {
      if (min_deadline == kInvalidDeadline) return instret_ - start;  // fully quiescent
      if (jumps++ >= max_jumps) return instret_ - start;
      // Jump the clock to the earliest deadline and retry wakes. A clock
      // jump moves no generation, so only deadline-crossing waits can fire:
      // whole quiescent processes with a later deadline are skipped, and
      // within a scanned process each wait gets the same cannot_wake test
      // the main loop uses.
      now_ns_ = std::max(now_ns_, min_deadline);
      bool woke = false;
      for (size_t pi = 0; pi < procs_.size(); ++pi) {
        Process& p = *procs_[pi];
        if (!p.alive()) continue;
        const u64 pgen = p.net_wake_gen + p.fds().change_gen();
        if (p.sched_gen == pgen && now_ns_ < p.sched_deadline) continue;
        for (auto& t : p.threads())
          if (t.state == Thread::State::kBlocked && !cannot_wake(t.wait, pgen, now_ns_)) {
            try_wake(p, t);
            woke |= t.state == Thread::State::kRunnable;
          }
      }
      if (!woke) return instret_ - start;  // deadlines produced no progress
    }
  }
  return instret_ - start;
}

bool Kernel::run_until(const std::function<bool()>& pred, u64 max_instr) {
  u64 start = instret_;
  while (instret_ - start < max_instr) {
    if (pred()) return true;
    u64 before = instret_;
    u64 t_before = now_ns_;
    u64 chunk = std::min<u64>(kSliceInstr * 8, max_instr - (instret_ - start));
    // Phase 1: drain runnable work without advancing idle time, so the
    // predicate is seen the moment the work produces it — an idle jump can
    // skip the clock arbitrarily far (to the next sleep deadline) and would
    // corrupt every timing measurement built on run_until.
    run_bounded(chunk, 0);
    if (instret_ != before) continue;  // made progress: re-check pred first
    if (pred()) return true;
    // Phase 2: nothing runnable — allow exactly one idle clock jump.
    run_bounded(chunk, 1);
    if (instret_ == before && now_ns_ == t_before) return pred();  // quiescent
  }
  return pred();
}

void Kernel::step_thread(Process& p, Thread& t, u64 slice) {
  cur_proc_ = &p;
  cur_thread_ = &t;
  struct Reset {
    Kernel* k;
    ~Reset() {
      k->cur_proc_ = nullptr;
      k->cur_thread_ = nullptr;
    }
  } reset{this};
  for (u64 i = 0; i < slice;) {
    if (t.state != Thread::State::kRunnable || !p.alive()) return;
    // Block-stepped: run_block retires a whole translated trace (or one
    // interpreted instruction) and reports how many step() attempts that
    // was, so the bulk accounting below is bit-identical to the old
    // per-instruction loop. Traps and faults always terminate the block,
    // so thread state cannot change mid-block.
    vm::BlockResult br = p.machine().run_block(t.cpu, slice - i);
    if (br.steps == 0) return;  // defensive: no progress possible
    vm::StepResult r = br.res;
    i += br.steps;
    instret_ += br.steps;
    t.steps += br.steps;
    now_ns_ += br.steps * kNsPerInstr;
    switch (r.kind) {
      case vm::StepKind::kOk:
        break;
      case vm::StepKind::kHalt:
        t.state = Thread::State::kExited;
        for (auto* o : observers_) o->on_thread_exit(p, t);
        if (p.live_threads() == 0) {
          // Last thread halted: the process ends gracefully.
          p.terminate(0, false);
          finish_process(p);
        }
        return;
      case vm::StepKind::kSyscallTrap:
        dispatch_syscall(p, t);
        if (t.state != Thread::State::kRunnable) return;
        break;
      case vm::StepKind::kApiTrap:
        dispatch_api(p, t, r.api_id);
        if (t.state != Thread::State::kRunnable) return;
        break;
      case vm::StepKind::kCrash: {
        CRP_DEBUG("os", "pid %d (%s) crashed: %s at pc=0x%llx addr=0x%llx", p.pid(),
                  p.name().c_str(), vm::exc_name(r.exc.code),
                  static_cast<unsigned long long>(r.exc.fault_pc),
                  static_cast<unsigned long long>(r.exc.fault_addr));
        p.terminate(128 + 11, /*crashed=*/true, &r.exc);
        finish_process(p);
        return;
      }
    }
  }
}

// --- syscall dispatch -----------------------------------------------------------------

void Kernel::finish_process(Process& p) {
  // A dying process's sockets are closed by the OS: peers must observe the
  // connection drop (this is how a remote client "sees" a server crash).
  for (const auto& [fd, fe] : p.fds().all()) {
    if (const auto* conn = std::get_if<FdConn>(&fe)) net_.close_side(conn->conn_id, conn->side);
  }
  for (auto* o : observers_) o->on_process_exit(p);
}

void Kernel::dispatch_syscall(Process& p, Thread& t) {
  u64 nr_raw = t.cpu.reg(isa::Reg::R0);
  u64 args[6];
  for (int i = 0; i < 6; ++i) args[i] = t.cpu.regs[static_cast<size_t>(1 + i)];

  if (nr_raw >= static_cast<u64>(Sys::kCount)) {
    t.cpu.reg(isa::Reg::R0) = static_cast<u64>(-kENOSYS);
    return;
  }
  Sys nr = static_cast<Sys>(nr_raw);
  ++pend_sys_calls_[nr_raw];
  // Samples taken while guest code runs inside the service of this syscall
  // (API callbacks, signal frames, chaos-injected retries) attribute to it.
  obs::ScopedProfSyscall prof_sys(prof_sys_id_[nr_raw]);
  for (auto* o : observers_) o->on_syscall_enter(p, t, nr, args);

  SyscallOutcome oc = do_syscall(p, t, nr, args);
  if (!oc.completed) {
    // Thread blocked; wait descriptor installed by the handler. Result is
    // delivered by try_wake via finish_syscall.
    t.state = Thread::State::kBlocked;
    t.wait.nr = nr;
    t.wait.poll_gen = Wait::kNoPoll;  // first try_wake must really poll
    return;
  }
  finish_syscall(p, t, nr, args, oc.ret);
}

void Kernel::finish_syscall(Process& p, Thread& t, Sys nr, const u64* args, i64 ret) {
  if (ret == -kEFAULT) ++pend_sys_efault_[static_cast<size_t>(nr)];
  t.cpu.reg(isa::Reg::R0) = static_cast<u64>(ret);
  for (auto* o : observers_) o->on_syscall_exit(p, t, nr, args, ret);
}

const std::vector<std::pair<u64, u64>>& Kernel::epoll_ready(Process& p, FdEpoll& ep) {
  std::vector<std::pair<u64, u64>>& out = epoll_scratch_;
  out.clear();
  for (auto& [wfd, cfg] : ep.watched) {
    auto [mask, data] = cfg;
    FdEntry* fe = p.fds().get(wfd);
    if (fe == nullptr) continue;
    u64 ready = 0;
    if (auto* conn = std::get_if<FdConn>(fe)) {
      Connection* c = net_.conn(conn->conn_id);
      if (c == nullptr) {
        ready |= kEpollIn;  // closed & reaped: readable (EOF)
      } else {
        ByteStream& in = c->stream_from(conn->side);
        if (in.size() > 0 || !in.open) ready |= kEpollIn;
        if (c->side_open[conn->side == 0 ? 1 : 0]) ready |= kEpollOut;
      }
    } else if (auto* lst = std::get_if<FdListener>(fe)) {
      if (net_.backlog(lst->port) > 0) ready |= kEpollIn;
    } else if (std::holds_alternative<FdFile>(*fe)) {
      ready |= kEpollIn | kEpollOut;
    }
    ready &= mask;
    if (ready != 0) out.emplace_back(ready, data);
  }
  return out;
}

Kernel::SyscallOutcome Kernel::do_syscall(Process& p, Thread& t, Sys nr, u64* a) {
  SyscallOutcome oc;
  auto ret = [&](i64 v) {
    oc.ret = v;
    return oc;
  };

  switch (nr) {
    case Sys::kOpen:
      return ret(sys_open(p, a));

    case Sys::kClose: {
      i64 fd = static_cast<i64>(a[0]);
      FdEntry* fe = p.fds().get(fd);
      if (fe == nullptr) return ret(-kEBADF);
      if (auto* conn = std::get_if<FdConn>(fe)) net_.close_side(conn->conn_id, conn->side);
      p.fds().close(fd);
      return ret(0);
    }

    case Sys::kChmod: {
      std::string path;
      if (!strncpy_from_user(p, a[0], &path)) return ret(-kEFAULT);
      return ret(vfs_.chmod(path, static_cast<u32>(a[1])));
    }
    case Sys::kMkdir: {
      std::string path;
      if (!strncpy_from_user(p, a[0], &path)) return ret(-kEFAULT);
      return ret(vfs_.mkdir(path, static_cast<u32>(a[1])));
    }
    case Sys::kUnlink: {
      std::string path;
      if (!strncpy_from_user(p, a[0], &path)) return ret(-kEFAULT);
      return ret(vfs_.unlink(path));
    }
    case Sys::kSymlink: {
      std::string target, linkpath;
      if (!strncpy_from_user(p, a[0], &target)) return ret(-kEFAULT);
      if (!strncpy_from_user(p, a[1], &linkpath)) return ret(-kEFAULT);
      return ret(vfs_.symlink(target, linkpath));
    }

    case Sys::kSocket:
      return ret(p.fds().alloc(FdConn{0, 0}));  // unbound socket placeholder

    case Sys::kBind: {
      FdEntry* fe = p.fds().get(static_cast<i64>(a[0]));
      if (fe == nullptr) return ret(-kEBADF);
      *fe = FdListener{static_cast<u16>(a[1])};
      return ret(0);
    }
    case Sys::kListen: {
      FdEntry* fe = p.fds().get(static_cast<i64>(a[0]));
      if (fe == nullptr) return ret(-kEBADF);
      auto* lst = std::get_if<FdListener>(fe);
      if (lst == nullptr) return ret(-kENOTSOCK);
      net_.listen(lst->port);
      net_.set_port_waker(lst->port, &p.net_wake_gen);
      return ret(0);
    }

    case Sys::kAccept: {
      // accept(fd, addr_out, flags): flags != 0 => non-blocking (returns
      // -EAGAIN instead of parking the thread) — the accept4(SOCK_NONBLOCK)
      // analog thread pools use to share one listener.
      i64 fd = static_cast<i64>(a[0]);
      FdEntry* fe = p.fds().get(fd);
      if (fe == nullptr) return ret(-kEBADF);
      auto* lst = std::get_if<FdListener>(fe);
      if (lst == nullptr) return ret(-kENOTSOCK);
      std::optional<u64> cid = net_.accept(lst->port);
      if (!cid.has_value()) {
        if (a[2] != 0) return ret(-kEAGAIN);
        // Block until a connection arrives.
        t.wait = {};
        t.wait.kind = Wait::Kind::kAccept;
        t.wait.fd = fd;
        t.wait.buf = a[1];
        oc.completed = false;
        return oc;
      }
      if (a[1] != 0) {
        u8 addr[8] = {};
        u64 port = lst->port;
        for (int i = 0; i < 8; ++i) addr[i] = static_cast<u8>(port >> (8 * i));
        if (!copy_to_user(p, a[1], addr)) return ret(-kEFAULT);
      }
      return ret(p.fds().alloc(FdConn{*cid, 1}));
    }

    case Sys::kConnect: {
      i64 fd = static_cast<i64>(a[0]);
      FdEntry* fe = p.fds().get(fd);
      if (fe == nullptr) return ret(-kEBADF);
      u8 addr[8];
      if (!copy_from_user(p, a[1], addr)) return ret(-kEFAULT);
      u16 port = static_cast<u16>(addr[0] | (addr[1] << 8));
      std::optional<u64> cid = net_.connect(port, 0, &p.net_wake_gen);
      if (!cid.has_value()) return ret(-kECONNREFUSED);
      *fe = FdConn{*cid, 0};
      return ret(0);
    }

    case Sys::kRead:
    case Sys::kRecv:
    case Sys::kRecvfrom:
      oc.ret = sys_read_common(p, t, nr, a, &oc);
      return oc;

    case Sys::kWrite:
    case Sys::kSend:
      return ret(sys_write_common(p, t, nr, a));

    case Sys::kSendmsg: {
      // msghdr: { u64 iov_ptr; u64 iovlen; } ; iovec: { u64 base; u64 len; }
      i64 fd = static_cast<i64>(a[0]);
      u8 hdr[16];
      if (!copy_from_user(p, a[1], hdr)) return ret(-kEFAULT);
      auto rd64 = [&](const u8* b) {
        u64 v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<u64>(b[i]) << (8 * i);
        return v;
      };
      u64 iov = rd64(hdr), iovlen = rd64(hdr + 8);
      if (iovlen > 64) return ret(-kEINVAL);
      i64 total = 0;
      for (u64 i = 0; i < iovlen; ++i) {
        u8 ent[16];
        if (!copy_from_user(p, iov + i * 16, ent)) return ret(-kEFAULT);
        u64 base = rd64(ent), len = rd64(ent + 8);
        u64 wargs[6] = {static_cast<u64>(fd), base, len, 0, 0, 0};
        i64 r = sys_write_common(p, t, Sys::kSend, wargs);
        if (r < 0) return ret(total > 0 ? total : r);
        total += r;
      }
      return ret(total);
    }

    case Sys::kEpollCreate:
      return ret(p.fds().alloc(FdEpoll{}));

    case Sys::kEpollCtl: {
      FdEntry* fe = p.fds().get(static_cast<i64>(a[0]));
      if (fe == nullptr) return ret(-kEBADF);
      auto* ep = std::get_if<FdEpoll>(fe);
      if (ep == nullptr) return ret(-kEINVAL);
      i64 target = static_cast<i64>(a[2]);
      u64 op = a[1];
      if (op == kEpollCtlAdd || op == kEpollCtlMod) {
        // event struct: { u64 events; u64 data; }
        u8 ev[16];
        if (!copy_from_user(p, a[3], ev)) return ret(-kEFAULT);
        u64 mask = 0, data = 0;
        for (int i = 0; i < 8; ++i) mask |= static_cast<u64>(ev[i]) << (8 * i);
        for (int i = 0; i < 8; ++i) data |= static_cast<u64>(ev[8 + i]) << (8 * i);
        ep->watched[target] = {mask, data};
        p.fds().note_change();  // in-place edit; an added fd may already be ready
        return ret(0);
      }
      if (op == kEpollCtlDel) {
        ep->watched.erase(target);
        p.fds().note_change();
        return ret(0);
      }
      return ret(-kEINVAL);
    }

    case Sys::kEpollWait:
      oc.ret = sys_epoll_wait(p, t, a, &oc);
      return oc;

    case Sys::kMmap: {
      u64 size = a[1];
      if (size == 0 || size > (1ull << 30)) return ret(-kEINVAL);
      u64 prot = a[2];
      u8 perms = 0;
      if ((prot & kProtRead) != 0) perms |= mem::kPermR;
      if ((prot & kProtWrite) != 0) perms |= mem::kPermW;
      if ((prot & kProtExec) != 0) perms |= mem::kPermX;
      // W^X enforcement per the threat model.
      if ((perms & mem::kPermW) != 0 && (perms & mem::kPermX) != 0) return ret(-kEINVAL);
      if (a[0] != 0) {
        // Fixed mapping at caller-chosen address.
        if (!p.machine().mem().map(a[0], size, perms)) return ret(-kEEXIST);
        return ret(static_cast<i64>(a[0]));
      }
      return ret(static_cast<i64>(p.heap_alloc(size, perms)));
    }
    case Sys::kMunmap:
      return ret(p.machine().mem().unmap(a[0], a[1]) ? 0 : -kEINVAL);
    case Sys::kMprotect: {
      u64 prot = a[2];
      u8 perms = 0;
      if ((prot & kProtRead) != 0) perms |= mem::kPermR;
      if ((prot & kProtWrite) != 0) perms |= mem::kPermW;
      if ((prot & kProtExec) != 0) perms |= mem::kPermX;
      if ((perms & mem::kPermW) != 0 && (perms & mem::kPermX) != 0) return ret(-kEINVAL);
      return ret(p.machine().mem().protect(a[0], a[1], perms) ? 0 : -kEINVAL);
    }

    case Sys::kExit:
      t.state = Thread::State::kExited;
      for (auto* o : observers_) o->on_thread_exit(p, t);
      if (p.live_threads() == 0) {
        p.terminate(static_cast<i64>(a[0]), false);
        finish_process(p);
      }
      return ret(0);

    case Sys::kExitGroup:
      p.terminate(static_cast<i64>(a[0]), false);
      finish_process(p);
      return ret(0);

    case Sys::kSigaction: {
      int signo = static_cast<int>(a[0]);
      if (signo < 0 || signo >= 32) return ret(-kEINVAL);
      // a[1]: pointer to a u64 handler address (0 = SIG_DFL); EFAULT-capable.
      u8 buf[8];
      if (!copy_from_user(p, a[1], buf)) return ret(-kEFAULT);
      u64 h = 0;
      for (int i = 0; i < 8; ++i) h |= static_cast<u64>(buf[i]) << (8 * i);
      p.machine().set_signal_handler(signo, h);
      return ret(0);
    }

    case Sys::kThreadCreate: {
      gva_t entry = a[0];
      int tid = p.spawn_thread(entry, a[1]);
      return ret(tid);
    }

    case Sys::kNanosleep: {
      u8 buf[8];
      if (!copy_from_user(p, a[0], buf)) return ret(-kEFAULT);
      u64 ns = 0;
      for (int i = 0; i < 8; ++i) ns |= static_cast<u64>(buf[i]) << (8 * i);
      t.wait = {};
      t.wait.kind = Wait::Kind::kSleep;
      t.wait.deadline_ns = now_ns_ + ns;
      oc.completed = false;
      return oc;
    }

    case Sys::kGetpid:
      return ret(p.pid());
    case Sys::kYield:
      return ret(0);
    case Sys::kGettime:
      return ret(static_cast<i64>(now_ns_));

    case Sys::kSpawnWorker: {
      // spawn_worker(entry_addr, conn_fd): clone this process's images into a
      // fresh worker process, hand over the connection fd (installed as fd 3
      // in the child), start the worker at the translated entry.
      gva_t entry = a[0];
      i64 fd = static_cast<i64>(a[1]);
      const vm::LoadedModule* mod = p.machine().module_at(entry);
      if (mod == nullptr) return ret(-kEINVAL);
      u64 entry_off = entry - mod->code_base();
      std::string entry_image = mod->image->name;

      FdEntry* fe = p.fds().get(fd);
      FdConn conn_copy{};
      bool has_conn = false;
      if (fe != nullptr) {
        if (auto* c = std::get_if<FdConn>(fe)) {
          conn_copy = *c;
          has_conn = true;
        }
      }

      int child_pid = create_process(p.name() + "-worker", vm::Personality::kLinux,
                                     now_ns_ ^ (static_cast<u64>(next_pid_) << 17));
      Process& child = proc(child_pid);
      gva_t child_entry = 0;
      for (const auto& m : p.machine().modules()) {
        size_t idx = child.load(m.image);
        if (m.image->name == entry_image)
          child_entry = child.machine().modules()[idx].code_addr(entry_off);
      }
      CRP_CHECK(child_entry != 0);
      if (has_conn) {
        child.fds().install(3, conn_copy);
        p.fds().close(fd);  // descriptor moves to the worker
        // The stream's reader changed with the descriptor: retarget its wake
        // pointer so pushes invalidate the worker's polls, not the parent's.
        if (Connection* c = net_.conn(conn_copy.conn_id))
          c->stream_from(conn_copy.side).wake_gen = &child.net_wake_gen;
      }
      child.spawn_thread(child_entry, has_conn ? 3u : 0u);
      return ret(child_pid);
    }

    case Sys::kCount:
      break;
  }
  return ret(-kENOSYS);
}

i64 Kernel::sys_open(Process& p, u64* a) {
  std::string path;
  if (!strncpy_from_user(p, a[0], &path)) return -kEFAULT;
  VfsNode* node = nullptr;
  i64 r = vfs_.open(path, a[1], &node);
  if (r < 0) return r;
  FdFile f;
  f.path = Vfs::normalize(path);
  f.flags = a[1];
  return p.fds().alloc(std::move(f));
}

i64 Kernel::sys_read_common(Process& p, Thread& t, Sys nr, u64* a, SyscallOutcome* oc) {
  i64 fd = static_cast<i64>(a[0]);
  gva_t buf = a[1];
  u64 len = a[2];
  FdEntry* fe = p.fds().get(fd);
  if (fe == nullptr) return -kEBADF;

  if (chaos_.armed()) {
    // Spurious errors land *before* any bytes are consumed from the stream:
    // a well-behaved guest retries the read and must observe the same data
    // (and the taint layer the same labels) it would have without the fault.
    if (chaos_.fire(chaos::Point::kSysEintr)) return -kEINTR;
    if (chaos_.fire(chaos::Point::kSysEfault)) return -kEFAULT;
    if (len > 1 && chaos_.fire(chaos::Point::kShortRead))
      len = 1 + chaos_.draw(chaos::Point::kShortRead) % (len - 1);
  }

  if (auto* file = std::get_if<FdFile>(fe)) {
    const VfsNode* node = vfs_.resolve(file->path);
    if (node == nullptr) return -kENOENT;
    u64 avail = node->data.size() > file->offset ? node->data.size() - file->offset : 0;
    u64 n = std::min(len, avail);
    if (n > 0) {
      std::span<const u8> src(node->data.data() + file->offset, n);
      std::vector<u32> colors(n, 0);
      if (!copy_to_user(p, buf, src, colors)) return -kEFAULT;
      file->offset += n;
    } else if (len > 0 && !p.machine().mem().check_range(buf, 1, mem::kPermW)) {
      // Zero-byte reads at EOF still validate the buffer (access_ok).
      return -kEFAULT;
    }
    return static_cast<i64>(n);
  }

  if (auto* conn = std::get_if<FdConn>(fe)) {
    Connection* c = net_.conn(conn->conn_id);
    if (c == nullptr) return 0;  // fully closed: EOF
    ByteStream& in = c->stream_from(conn->side);
    if (in.size() == 0) {
      if (!in.open) return 0;  // peer closed: EOF
      // Block until data or close.
      t.wait = {};
      t.wait.kind = Wait::Kind::kReadFd;
      t.wait.fd = fd;
      t.wait.buf = buf;
      t.wait.len = len;
      oc->completed = false;
      return 0;
    }
    std::vector<u8> data;
    std::vector<u32> colors;
    size_t n = in.pop(len, &data, &colors);
    if (!copy_to_user(p, buf, data, colors)) {
      // EFAULT: Linux discards nothing here in our model — the bytes were
      // consumed from the stream. Matches the graceful-error contract the
      // probing attacker relies on.
      return -kEFAULT;
    }
    (void)nr;
    return static_cast<i64>(n);
  }

  if (std::holds_alternative<FdConsole>(*fe)) return 0;
  return -kEINVAL;
}

i64 Kernel::sys_write_common(Process& p, Thread& t, Sys nr, u64* a) {
  (void)t;
  (void)nr;
  i64 fd = static_cast<i64>(a[0]);
  gva_t buf = a[1];
  u64 len = std::min<u64>(a[2], 1 << 20);
  FdEntry* fe = p.fds().get(fd);
  if (fe == nullptr) return -kEBADF;

  if (chaos_.armed()) {
    if (chaos_.fire(chaos::Point::kSysEintr)) return -kEINTR;
    if (chaos_.fire(chaos::Point::kSysEfault)) return -kEFAULT;
    // Short write: consume fewer bytes than asked and report that count —
    // the POSIX contract a caller must handle by resubmitting the tail.
    if (len > 1 && chaos_.fire(chaos::Point::kShortWrite))
      len = 1 + chaos_.draw(chaos::Point::kShortWrite) % (len - 1);
  }

  std::vector<u8> data(len);
  if (!copy_from_user(p, buf, data)) return -kEFAULT;

  if (std::holds_alternative<FdConsole>(*fe)) {
    p.console().append(data.begin(), data.end());
    return static_cast<i64>(len);
  }
  if (auto* file = std::get_if<FdFile>(fe)) {
    VfsNode* node = vfs_.resolve(file->path);
    if (node == nullptr) return -kENOENT;
    if (node->data.size() < file->offset + len) node->data.resize(file->offset + len);
    std::copy(data.begin(), data.end(),
              node->data.begin() + static_cast<ptrdiff_t>(file->offset));
    file->offset += len;
    return static_cast<i64>(len);
  }
  if (auto* conn = std::get_if<FdConn>(fe)) {
    Connection* c = net_.conn(conn->conn_id);
    if (c == nullptr || !c->side_open[conn->side]) return -kEBADF;
    c->stream_into(conn->side).push(data, 0);
    return static_cast<i64>(len);
  }
  return -kEINVAL;
}

i64 Kernel::sys_epoll_wait(Process& p, Thread& t, u64* a, SyscallOutcome* oc) {
  i64 epfd = static_cast<i64>(a[0]);
  gva_t events = a[1];
  u64 maxevents = a[2];
  i64 timeout_ms = static_cast<i64>(a[3]);

  // Spurious epoll_wait EINTR — the classic signal-wakeup every event loop
  // must tolerate (nginx/lighttpd/cherokee retry; memcached and postgres
  // workers exit gracefully, which is their documented §V-A behavior).
  if (chaos_.armed() && chaos_.fire(chaos::Point::kSysEintr)) return -kEINTR;

  FdEntry* fe = p.fds().get(epfd);
  if (fe == nullptr) return -kEBADF;
  auto* ep = std::get_if<FdEpoll>(fe);
  if (ep == nullptr) return -kEINVAL;
  if (maxevents == 0 || maxevents > 4096) return -kEINVAL;

  // access_ok-style upfront validation of the event buffer: this is what
  // turns epoll_wait into a clean memory oracle (Cherokee/PostgreSQL, §V-A).
  if (!p.machine().mem().check_range(events, maxevents * kEpollEventSize, mem::kPermW))
    return -kEFAULT;

  const std::vector<std::pair<u64, u64>>& ready = epoll_ready(p, *ep);
  if (!ready.empty()) {
    u64 n = std::min<u64>(ready.size(), maxevents);
    std::vector<u8>& buf = copyout_scratch_;
    buf.assign(n * kEpollEventSize, 0);
    for (u64 i = 0; i < n; ++i) {
      auto [mask, data] = ready[i];
      for (int b = 0; b < 8; ++b) buf[i * 16 + static_cast<u64>(b)] = static_cast<u8>(mask >> (8 * b));
      for (int b = 0; b < 8; ++b)
        buf[i * 16 + 8 + static_cast<u64>(b)] = static_cast<u8>(data >> (8 * b));
    }
    if (!copy_to_user(p, events, buf)) return -kEFAULT;
    return static_cast<i64>(n);
  }

  if (timeout_ms == 0) return 0;
  t.wait = {};
  t.wait.kind = Wait::Kind::kEpoll;
  t.wait.fd = epfd;
  t.wait.buf = events;
  t.wait.len = maxevents;
  t.wait.deadline_ns =
      timeout_ms < 0 ? ~0ull : now_ns_ + static_cast<u64>(timeout_ms) * 1000000ull;
  oc->completed = false;
  return 0;
}

void Kernel::try_wake(Process& p, Thread& t) {
  if (t.state != Thread::State::kBlocked) return;
  Wait& w = t.wait;
  // Idle-poll early-out. Wake conditions are monotone in the process's poll
  // generation (net-wake + fd table) plus the virtual clock: if nothing
  // relevant moved since the last failed poll, re-polling cannot succeed.
  const u64 gen = p.net_wake_gen + p.fds().change_gen();
  if (cannot_wake(w, gen, now_ns_)) return;
  w.poll_gen = gen;
  u64 args[6] = {static_cast<u64>(w.fd), w.buf, w.len, 0, 0, 0};

  switch (w.kind) {
    case Wait::Kind::kNone:
      t.state = Thread::State::kRunnable;
      return;

    case Wait::Kind::kSleep:
      if (now_ns_ >= w.deadline_ns) {
        t.state = Thread::State::kRunnable;
        finish_syscall(p, t, Sys::kNanosleep, args, 0);
      }
      return;

    case Wait::Kind::kReadFd: {
      FdEntry* fe = p.fds().get(w.fd);
      if (fe == nullptr) {
        t.state = Thread::State::kRunnable;
        finish_syscall(p, t, w.nr, args, -kEBADF);
        return;
      }
      auto* conn = std::get_if<FdConn>(fe);
      if (conn == nullptr) {
        t.state = Thread::State::kRunnable;
        finish_syscall(p, t, w.nr, args, -kEINVAL);
        return;
      }
      Connection* c = net_.conn(conn->conn_id);
      if (c == nullptr) {
        t.state = Thread::State::kRunnable;
        finish_syscall(p, t, w.nr, args, 0);
        return;
      }
      ByteStream& in = c->stream_from(conn->side);
      if (in.size() == 0) {
        if (!in.open) {
          t.state = Thread::State::kRunnable;
          finish_syscall(p, t, w.nr, args, 0);
        }
        return;
      }
      std::vector<u8> data;
      std::vector<u32> colors;
      size_t n = in.pop(w.len, &data, &colors);
      t.state = Thread::State::kRunnable;
      if (!copy_to_user(p, w.buf, data, colors)) {
        finish_syscall(p, t, w.nr, args, -kEFAULT);
      } else {
        finish_syscall(p, t, w.nr, args, static_cast<i64>(n));
      }
      return;
    }

    case Wait::Kind::kAccept: {
      FdEntry* fe = p.fds().get(w.fd);
      auto* lst = fe != nullptr ? std::get_if<FdListener>(fe) : nullptr;
      if (lst == nullptr) {
        t.state = Thread::State::kRunnable;
        finish_syscall(p, t, Sys::kAccept, args, -kEBADF);
        return;
      }
      std::optional<u64> cid = net_.accept(lst->port);
      if (!cid.has_value()) return;
      t.state = Thread::State::kRunnable;
      if (w.buf != 0) {
        u8 addr[8] = {};
        u64 port = lst->port;
        for (int i = 0; i < 8; ++i) addr[i] = static_cast<u8>(port >> (8 * i));
        if (!copy_to_user(p, w.buf, addr)) {
          finish_syscall(p, t, Sys::kAccept, args, -kEFAULT);
          return;
        }
      }
      finish_syscall(p, t, Sys::kAccept, args, p.fds().alloc(FdConn{*cid, 1}));
      return;
    }

    case Wait::Kind::kEpoll: {
      FdEntry* fe = p.fds().get(w.fd);
      auto* ep = fe != nullptr ? std::get_if<FdEpoll>(fe) : nullptr;
      if (ep == nullptr) {
        t.state = Thread::State::kRunnable;
        finish_syscall(p, t, Sys::kEpollWait, args, -kEBADF);
        return;
      }
      const std::vector<std::pair<u64, u64>>& ready = epoll_ready(p, *ep);
      if (ready.empty()) {
        if (now_ns_ >= w.deadline_ns) {
          t.state = Thread::State::kRunnable;
          finish_syscall(p, t, Sys::kEpollWait, args, 0);  // timeout
        }
        return;
      }
      u64 n = std::min<u64>(ready.size(), w.len);
      std::vector<u8>& buf = copyout_scratch_;
      buf.assign(n * kEpollEventSize, 0);
      for (u64 i = 0; i < n; ++i) {
        auto [mask, data] = ready[i];
        for (int b = 0; b < 8; ++b)
          buf[i * 16 + static_cast<u64>(b)] = static_cast<u8>(mask >> (8 * b));
        for (int b = 0; b < 8; ++b)
          buf[i * 16 + 8 + static_cast<u64>(b)] = static_cast<u8>(data >> (8 * b));
      }
      t.state = Thread::State::kRunnable;
      if (!copy_to_user(p, w.buf, buf)) {
        finish_syscall(p, t, Sys::kEpollWait, args, -kEFAULT);
      } else {
        finish_syscall(p, t, Sys::kEpollWait, args, static_cast<i64>(n));
      }
      return;
    }
  }
}

// --- Windows API dispatch ---------------------------------------------------------

void Kernel::dispatch_api(Process& p, Thread& t, i64 api_id) {
  u64 args[6];
  for (int i = 0; i < 6; ++i) args[i] = t.cpu.regs[static_cast<size_t>(1 + i)];
  c_api_calls_->inc();
  for (auto* o : observers_) o->on_api_enter(p, t, static_cast<u32>(api_id), args);

  // Sleep needs the scheduler, so it is special-cased here.
  if (api_id == kApiSleep) {
    t.wait = {};
    t.wait.kind = Wait::Kind::kSleep;
    t.wait.deadline_ns = now_ns_ + args[0] * 1000000ull;
    t.state = Thread::State::kBlocked;
    t.cpu.reg(isa::Reg::R0) = 0;
    for (auto* o : observers_) o->on_api_exit(p, t, static_cast<u32>(api_id), args, 0, false);
    return;
  }

  ApiResult r = winapi_.invoke(*this, p, t, static_cast<u32>(api_id), args);
  if (r.fault.has_value()) c_api_faults_->inc();
  for (auto* o : observers_)
    o->on_api_exit(p, t, static_cast<u32>(api_id), args, r.ret, r.fault.has_value());
  if (r.fault.has_value()) {
    // The API's user-mode portion faulted: dispatch as a guest exception at
    // the call site. Rewind pc so a CONTINUE_EXECUTION retries the call.
    t.cpu.pc -= isa::kInstrBytes;
    if (!p.machine().dispatch_exception(t.cpu, *r.fault)) {
      p.terminate(128 + 11, true, &*r.fault);
      finish_process(p);
      return;
    }
    // A handler resolved it: either control moved to an __except block, or
    // CONTINUE_EXECUTION left pc at the APICALL for a retry.
    return;
  }
  t.cpu.reg(isa::Reg::R0) = r.ret;
}

ApiResult Kernel::invoke_api(Process& p, Thread& t, u32 id, u64* args) {
  c_api_calls_->inc();
  ApiResult r = winapi_.invoke(*this, p, t, id, args);
  if (r.fault.has_value()) c_api_faults_->inc();
  return r;
}

}  // namespace crp::os
