// In-memory virtual filesystem: just enough POSIX surface for the server
// simulacra (document roots, config files, unix paths for chmod/mkdir/
// unlink/symlink probes).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"

namespace crp::os {

struct VfsNode {
  enum class Kind : u8 { kFile, kDir, kSymlink } kind = Kind::kFile;
  std::vector<u8> data;       // file contents
  std::string link_target;    // symlink target
  u32 mode = 0644;
};

/// Tree-less path-keyed filesystem: every node is addressed by its
/// normalized absolute path. Parent directories must exist for creation.
class Vfs {
 public:
  Vfs();

  /// Create/replace a regular file (host-side convenience for fixtures).
  void put_file(const std::string& path, std::string_view contents, u32 mode = 0644);
  void put_dir(const std::string& path, u32 mode = 0755);

  /// POSIX-ish operations; return 0 or negative errno.
  i64 mkdir(const std::string& path, u32 mode);
  i64 unlink(const std::string& path);
  i64 symlink(const std::string& target, const std::string& linkpath);
  i64 chmod(const std::string& path, u32 mode);

  /// Lookup following symlinks (bounded); nullptr if absent.
  const VfsNode* resolve(const std::string& path) const;
  VfsNode* resolve(const std::string& path);

  /// Open existing (or create with kOCreat); returns 0/errno. On success,
  /// `*node_out` is the file node.
  i64 open(const std::string& path, u64 flags, VfsNode** node_out);

  bool exists(const std::string& path) const { return nodes_.contains(normalize(path)); }
  size_t node_count() const { return nodes_.size(); }

  /// Collapse "//", trailing "/", "." components; ensure leading "/".
  static std::string normalize(const std::string& path);
  static std::string parent_of(const std::string& normalized);

 private:
  std::map<std::string, VfsNode> nodes_;
};

}  // namespace crp::os
