// The paper's discovery pipeline as typed, individually schedulable stages.
//
// Each stage is a plain struct with an `In`/`Out` pair and a static run():
// no inheritance, no type erasure — a driver (or the Campaign engine) wires
// stages together with ordinary code, and the types document exactly which
// artifact flows where:
//
//   Linux syscall funnel (Table I):
//     TaintTraceStage -> SyscallCandidateStage -> VerifyStage
//   SEH funnel (Tables II/III, §V-C):
//     SehExtractStage -> FilterClassifyStage -> CoverageXrefStage
//   Windows API funnel (§V-B):
//     ApiFuzzStage -> CallSiteTraceStage
//   ReportStage renders any funnel's tables.
//
// Every run() executes under a StageScope: a `pipeline.stage.<id>.runs`
// counter, a `pipeline.stage.<id>.ns` latency histogram, and a journal span
// ("stage:<id>", category "pipeline") — so a campaign's timeline is visible
// in BENCH_*.json snapshots and Chrome traces without any driver code.
//
// FilterClassifyStage and ApiFuzzStage accept an ArtifactStore: their
// outputs are pure functions of (corpus content, configuration), so they
// are answered from the content-addressed cache when an equal corpus was
// classified/fuzzed before (pass nullptr to force computation).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/api_analysis.h"
#include "analysis/report.h"
#include "obs/prof.h"
#include "analysis/seh_analysis.h"
#include "analysis/syscall_scanner.h"
#include "os/kernel.h"
#include "pipeline/artifact_store.h"
#include "pipeline/codec.h"
#include "pipeline/registry.h"
#include "plan/replay.h"
#include "trace/tracer.h"

namespace crp::pipeline {

/// RAII observability wrapper for one stage execution. Cheap relative to
/// any stage body; not for per-item use inside a stage. Also enters the
/// profiler's stage context, so virtual-time samples taken while the stage
/// runs carry its id.
class StageScope {
 public:
  explicit StageScope(const char* stage_id, std::string subject = {});
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  const char* id_;
  std::string subject_;
  u64 t0_ns_;
  obs::ScopedProfStage prof_stage_;
};

// --- Linux syscall funnel (§IV-A) -------------------------------------------

/// Run the target's test-suite workload under byte-granular taint tracking;
/// record every EFAULT-capable syscall and the taint/provenance of its
/// pointer arguments. Output candidates are *unverified*.
struct TaintTraceStage {
  static constexpr const char* kId = "taint_trace";
  struct In {
    const analysis::TargetProgram* target = nullptr;
    analysis::SyscallScanOptions opts;
  };
  using Out = analysis::SyscallScanResult;
  static Out run(const In& in);
};

/// Candidate selection: keep the traced pointer-argument sites whose
/// syscall can return -EFAULT (the paper's §IV-A filter). The trace hook
/// already records only such sites, so this stage is the explicit,
/// re-asserted selection point between tracing and verification.
struct SyscallCandidateStage {
  static constexpr const char* kId = "syscall_candidates";
  struct In {
    const analysis::SyscallScanResult* trace = nullptr;
  };
  using Out = std::vector<analysis::Candidate>;
  static Out run(const In& in);
};

/// Verify each candidate in a fresh target instance: corrupt the pointer
/// (register + live memory home), keep driving the workload, classify
/// crash / not-controllable / usable / false-positive. Candidates are
/// independent, so verification shards across the exec pool (`jobs` as for
/// exec::resolve_jobs); results merge in input order.
struct VerifyStage {
  static constexpr const char* kId = "verify";
  struct In {
    const analysis::TargetProgram* target = nullptr;
    analysis::SyscallScanOptions opts;
    std::vector<analysis::Candidate> candidates;
    int jobs = 0;
  };
  using Out = std::vector<analysis::Candidate>;
  static Out run(const In& in);
};

// --- SEH funnel (§IV-C) ------------------------------------------------------

/// A parsed corpus plus the content hash of the serialized images it was
/// parsed from (the ArtifactStore input key for downstream stages).
struct SehCorpus {
  analysis::SehExtractor ex;
  u64 content_hash = 0;
};

/// Static pass: parse scope tables out of serialized images (sharded across
/// the pool, merged in input order). Panics on malformed blobs — corpora
/// are generated in-process, so malformed input is a programmer error.
struct SehExtractStage {
  static constexpr const char* kId = "seh_extract";
  struct In {
    const std::vector<std::vector<u8>>* blobs = nullptr;
    int jobs = 0;
  };
  using Out = SehCorpus;
  static Out run(const In& in);
};

/// Symbolically execute every unique filter and ask the SAT backend whether
/// any path accepts an access violation. Cached: keyed by the corpus
/// content hash and the ClassifyOptions, a repeated classification of an
/// identical corpus replays verdicts *and* the counters the drivers print.
struct FilterClassifyStage {
  static constexpr const char* kId = "filter_classify";
  struct In {
    const SehCorpus* corpus = nullptr;
    analysis::ClassifyOptions opts;
    int jobs = 0;
    ArtifactStore* store = nullptr;  // nullptr -> always compute
  };
  using Out = ClassifyOutcome;
  static Out run(const In& in);
};

/// Dynamic pass: cross-reference AV-capable guarded regions with traced
/// execution coverage (tracer/proc may be nullptr for static-only corpora).
struct CoverageXrefStage {
  static constexpr const char* kId = "coverage_xref";
  struct In {
    const analysis::SehExtractor* ex = nullptr;
    const std::vector<analysis::FilterInfo>* filters = nullptr;
    const trace::Tracer* tracer = nullptr;
    const os::Process* proc = nullptr;
  };
  using Out = std::vector<analysis::ModuleSehStats>;
  static Out run(const In& in);
};

// --- Windows API funnel (§IV-B) ----------------------------------------------

/// Black-box invalid-pointer fuzzing of the kernel's registered API
/// surface. Cached: keyed by a content hash of the API spec table (ids,
/// names, argument kinds, behaviors) and the probe count.
struct ApiFuzzStage {
  static constexpr const char* kId = "api_fuzz";
  struct In {
    os::Kernel* kernel = nullptr;
    int probes_per_arg = 3;
    int jobs = 0;
    ArtifactStore* store = nullptr;  // nullptr -> always compute
  };
  struct Out {
    analysis::ApiFuzzResult result;
    bool cache_hit = false;
  };
  static Out run(const In& in);
};

/// Reduce a traced workload's API log against the fuzzer-approved set:
/// on-path, script-triggerable, pointer-argument controllability.
struct CallSiteTraceStage {
  static constexpr const char* kId = "call_site_trace";
  struct In {
    const trace::Tracer* tracer = nullptr;
    const std::set<u32>* crash_resistant = nullptr;
    const os::Kernel* kernel = nullptr;
    const os::Process* proc = nullptr;
    std::string script_module_needle;
  };
  using Out = std::vector<analysis::ApiSiteInfo>;
  static Out run(const In& in);
};

// --- exploit-plan epilogue (ROADMAP item 4) ----------------------------------

/// Map a registry entry onto the plan layer's oracle-surface binding. The
/// plan library sits below pipeline, so this is the one place the
/// registry-id -> surface mapping lives: nginx_sim drives the §VI-C recv()
/// oracle, jvm_sim the NPE-flag oracle, the two browser kinds their
/// SEH/poll oracles; every other class binds kNone (empty plan, trivial
/// replay).
plan::TargetBinding binding_for(const TargetSpec& spec);

/// Synthesize the class-appropriate ExploitPlan from a target's verified
/// candidate evidence. Cached: keyed by the registry id + the evidence
/// (describe/verdict/controllability of every candidate) and the synthesis
/// configuration — a warm campaign replays the exact plan bytes.
struct PlanSynthStage {
  static constexpr const char* kId = "plan_synth";
  struct In {
    const TargetSpec* spec = nullptr;
    const std::vector<analysis::Candidate>* candidates = nullptr;
    plan::SynthOptions opts;
    ArtifactStore* store = nullptr;  // nullptr -> always compute
  };
  struct Out {
    plan::ExploitPlan exploit_plan;
    bool cache_hit = false;
  };
  static Out run(const In& in);
};

/// Replay a plan against a fresh instance of the target and report what
/// the attack achieved. Never cached: verification is the point — the
/// outcome's crashes/unhandled numbers must come from a real run.
struct PlanVerifyStage {
  static constexpr const char* kId = "plan_verify";
  struct In {
    const TargetSpec* spec = nullptr;
    const plan::ExploitPlan* exploit_plan = nullptr;
    plan::HarnessOptions harness;
  };
  using Out = plan::ReplayOutcome;
  static Out run(const In& in);
};

// --- Reporting ---------------------------------------------------------------

/// Table renderers behind one stage id, so report generation shows up in
/// the pipeline timeline like every other stage.
struct ReportStage {
  static constexpr const char* kId = "report";
  static std::string table1(const std::vector<std::string>& servers,
                            const std::map<std::string, analysis::SyscallScanResult>& results);
  static std::string table2(const std::vector<analysis::ModuleSehStats>& stats);
  static std::string table3(const std::vector<analysis::ModuleSehStats>& x64,
                            const std::vector<analysis::ModuleSehStats>& x32);
  static std::string api_funnel(const analysis::ApiFunnel& funnel);
  static std::string candidates(const std::vector<analysis::Candidate>& cands);
};

/// Content hash of a serialized-image corpus (stable input key).
u64 corpus_content_hash(const std::vector<std::vector<u8>>& blobs);

}  // namespace crp::pipeline
