#include "pipeline/job_queue.h"

#include "chaos/chaos.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace crp::pipeline {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobQueue::JobQueue(JobQueueOptions opts) : opts_(opts) {
  if (opts_.store == nullptr) opts_.store = &ArtifactStore::global();
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

JobQueue::~JobQueue() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Queued jobs die with the queue; part-run cells release their cache
  // leases in their destructors.
}

void JobQueue::set_event_sink(std::function<void(const JobEvent&)> sink) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_ = std::move(sink);
}

JobId JobQueue::submit(JobSpec spec) {
  std::unique_lock<std::mutex> lk(mu_);
  JobId id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = std::move(spec);
  job->seq = next_seq_++;
  job->submit_ns = obs::trace_now_ns();
  JobEvent ev;
  ev.id = id;
  ev.state = JobState::kQueued;
  ev.tenant = job->spec.tenant;
  ev.target = job->spec.target.id;
  ev.trace = job->spec.trace;
  enqueue_locked(job.get());
  jobs_.emplace(id, std::move(job));
  obs::Registry::global().counter("crpd.jobs.submitted").inc();
  cv_work_.notify_one();
  emit(lk, ev);
  return id;
}

bool JobQueue::cancel(JobId id) {
  std::unique_lock<std::mutex> lk(mu_);
  Job* job = find_locked(id);
  if (job == nullptr || job_state_terminal(job->state)) return false;
  if (job->state == JobState::kQueued) {
    finish_locked(lk, job, JobState::kCancelled);
    return true;
  }
  job->cancel_requested = true;  // honored at the next step boundary
  return true;
}

JobQueue::Job* JobQueue::find_locked(JobId id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

const JobQueue::Job* JobQueue::find_locked(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

JobResult JobQueue::snapshot(const Job& job) {
  JobResult r;
  r.id = job.id;
  r.state = job.state;
  r.report = job.report;
  r.error = job.error;
  r.steps_done = job.steps_done;
  r.steps_total = job.steps_total;
  r.tenant = job.spec.tenant;
  r.target = job.spec.target.id;
  r.priority = job.spec.priority;
  r.trace = job.spec.trace;
  r.run_ns = job.run_ns;
  if (job_state_terminal(job.state)) {
    // Never-scheduled terminals (cancelled while queued) spent it all waiting.
    r.queue_ns = job.first_run_ns != 0 ? job.first_run_ns - job.submit_ns
                                       : job.total_ns;
    r.total_ns = job.total_ns;
  } else if (job.submit_ns != 0) {
    u64 now = obs::trace_now_ns();
    r.queue_ns = job.first_run_ns != 0 ? job.first_run_ns - job.submit_ns
                                       : now - job.submit_ns;
    r.total_ns = now - job.submit_ns;
  }
  return r;
}

JobResult JobQueue::status(JobId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Job* job = find_locked(id);
  if (job == nullptr) {
    JobResult r;
    r.id = id;
    r.state = JobState::kFailed;
    r.error = "unknown job";
    return r;
  }
  return snapshot(*job);
}

bool JobQueue::try_result(JobId id, JobResult* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Job* job = find_locked(id);
  if (job == nullptr || !job_state_terminal(job->state)) return false;
  *out = snapshot(*job);
  return true;
}

size_t JobQueue::active(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [id, job] : jobs_)
    if (!job_state_terminal(job->state) && job->spec.tenant == tenant) ++n;
  return n;
}

size_t JobQueue::active_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [id, job] : jobs_)
    if (!job_state_terminal(job->state)) ++n;
  return n;
}

size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_.size();
}

std::vector<std::pair<int, size_t>> JobQueue::queued_depths() const {
  std::lock_guard<std::mutex> lk(mu_);
  // queued_ iterates by (-priority, ...): highest priority first, so the
  // depth table comes out already in dispatch order.
  std::vector<std::pair<int, size_t>> out;
  for (const auto& [neg_prio, seq, id] : queued_) {
    int prio = -neg_prio;
    if (out.empty() || out.back().first != prio) out.emplace_back(prio, 0);
    ++out.back().second;
  }
  return out;
}

size_t JobQueue::retained_terminal() const {
  std::lock_guard<std::mutex> lk(mu_);
  return terminal_fifo_.size();
}

std::vector<JobResult> JobQueue::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobResult> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(snapshot(*job));
  return out;
}

void JobQueue::enqueue_locked(Job* job) {
  queued_.insert({-job->spec.priority, job->seq, job->id});
}

void JobQueue::dequeue_locked(Job* job) {
  queued_.erase({-job->spec.priority, job->seq, job->id});
}

JobQueue::Job* JobQueue::pick_best_locked() {
  if (queued_.empty()) return nullptr;
  Job* job = find_locked(std::get<2>(*queued_.begin()));
  CRP_CHECK(job != nullptr && job->state == JobState::kQueued);
  return job;
}

bool JobQueue::higher_queued_locked(int priority) const {
  return !queued_.empty() && -std::get<0>(*queued_.begin()) > priority;
}

void JobQueue::emit(std::unique_lock<std::mutex>& lk, const JobEvent& ev) {
  std::function<void(const JobEvent&)> sink = sink_;
  if (!sink) return;
  lk.unlock();
  sink(ev);
  lk.lock();
}

void JobQueue::evict_terminal_locked() {
  if (opts_.retain_terminal == 0) return;
  while (terminal_fifo_.size() > opts_.retain_terminal) {
    Job* oldest = find_locked(terminal_fifo_.front());
    // A waiter inside wait(id) still needs its snapshot; stop here and
    // retry after the next completion (waits are short-lived).
    if (oldest != nullptr && oldest->waiters > 0) return;
    if (oldest != nullptr) jobs_.erase(oldest->id);
    terminal_fifo_.pop_front();
  }
}

void JobQueue::finish_locked(std::unique_lock<std::mutex>& lk, Job* job,
                             JobState state) {
  if (job->state == JobState::kQueued) dequeue_locked(job);
  job->state = state;
  job->total_ns = obs::trace_now_ns() - job->submit_ns;
  if (job->cell != nullptr) {
    job->steps_done = job->cell->next_step();
    job->steps_total = job->cell->step_count();
    if (state == JobState::kDone) job->report = std::move(job->cell->report());
    job->cell.reset();  // frees kernels/tracers and releases cache leases
  }
  auto& reg = obs::Registry::global();
  switch (state) {
    case JobState::kDone:
      reg.counter("crpd.jobs.done").inc();
      // Campaign progress, for the live telemetry endpoint (crptop renders
      // targets_run / targets_total).
      reg.counter("pipeline.campaign.targets_run").inc();
      break;
    case JobState::kFailed: reg.counter("crpd.jobs.failed").inc(); break;
    case JobState::kCancelled: reg.counter("crpd.jobs.cancelled").inc(); break;
    default: break;
  }
  if (opts_.retain_terminal != 0) {
    terminal_fifo_.push_back(job->id);
    evict_terminal_locked();
  }
  cv_done_.notify_all();
  obs::JobTracer& jt = obs::JobTracer::global();
  if (jt.armed()) jt.job_finished(job->spec.trace);
  JobEvent ev;
  ev.id = job->id;
  ev.state = state;
  ev.tenant = job->spec.tenant;
  ev.target = job->spec.target.id;
  ev.step = job->steps_done;
  ev.steps = job->steps_total;
  ev.cache_hit = state == JobState::kDone && job->report.cache_hit;
  ev.trace = job->spec.trace;
  ev.queue_ns = job->first_run_ns != 0 ? job->first_run_ns - job->submit_ns
                                       : job->total_ns;
  ev.run_ns = job->run_ns;
  ev.total_ns = job->total_ns;
  emit(lk, ev);
}

void JobQueue::park_locked(Job* job) {
  // The job may now sit queued indefinitely; drop anything other jobs
  // block on (e.g. the scan funnel's ArtifactStore lease — a parked owner
  // would deadlock every same-key waiter while those waiters occupy the
  // workers that could resume it). The cell re-acquires on its next step.
  if (job->cell != nullptr) job->cell->on_park();
  job->state = JobState::kQueued;
  enqueue_locked(job);
}

void JobQueue::drive(std::unique_lock<std::mutex>& lk, Job* job) {
  dequeue_locked(job);
  job->state = JobState::kRunning;
  obs::JobTracer& jt = obs::JobTracer::global();
  const u64 tr = job->spec.trace;
  const bool traced = tr != 0 && jt.armed();
  // Install the job context for the whole drive session, so layers with
  // no job handle (the ArtifactStore lease path — including the park-path
  // abort inside cell->on_park and the cell destructor in finish_locked)
  // attribute their spans to this job.
  obs::ScopedTraceJob trace_ctx(traced ? tr : 0, job->id);
  const u64 session0 = obs::trace_now_ns();
  if (job->first_run_ns == 0) {
    job->first_run_ns = session0;
    if (traced) {
      jt.job_started(tr, job->id, job->spec.tenant, job->spec.target.id);
      jt.record(tr, job->id, obs::SpanKind::kQueueWait, 0,
                static_cast<u64>(static_cast<i64>(job->spec.priority)),
                job->submit_ns, session0);
    }
  } else if (job->resume_pending) {
    job->resume_pending = false;
    if (traced)
      jt.record(tr, job->id, obs::SpanKind::kResume, 0, job->steps_done,
                session0, session0);
  }
  // Accumulate on-worker time once per drive session, on every exit path.
  auto settle = [&] { job->run_ns += obs::trace_now_ns() - session0; };
  for (;;) {
    if (stop_) {
      // Queue teardown: park the job; it dies queued with the queue.
      settle();
      job->resume_pending = true;
      park_locked(job);
      return;
    }
    if (job->cancel_requested) {
      settle();
      finish_locked(lk, job, JobState::kCancelled);
      return;
    }
    if (higher_queued_locked(job->spec.priority)) {
      // Preempt at the step boundary: the cell keeps its progress and the
      // job re-enters the queue behind the higher-priority arrival.
      settle();
      JobId preemptor = std::get<2>(*queued_.begin());
      job->resume_pending = true;
      park_locked(job);
      if (traced) {
        u64 now = obs::trace_now_ns();
        jt.record(tr, job->id, obs::SpanKind::kPark, 0, preemptor, now, now);
        jt.job_parked(tr);
      }
      obs::Registry::global().counter("crpd.jobs.preempted").inc();
      cv_work_.notify_all();
      JobEvent ev;
      ev.id = job->id;
      ev.state = JobState::kQueued;
      ev.tenant = job->spec.tenant;
      ev.target = job->spec.target.id;
      ev.step = job->steps_done;
      ev.steps = job->steps_total;
      ev.preempted = true;
      ev.trace = tr;
      emit(lk, ev);
      return;
    }

    // The job is kRunning: no other thread touches its cell while we hold
    // no lock (cancel only sets a flag; status reads the counters we
    // update after relocking).
    lk.unlock();
    bool failed = false;
    std::string error;
    const char* step = "";
    u64 step_t0 = 0;
    u64 step_idx = 0;
    try {
      if (job->cell == nullptr) {
        ArtifactStore* store =
            job->spec.opts.cache ? opts_.store : nullptr;
        job->cell = plan_target(job->spec.opts, store, job->spec.target);
      }
      size_t idx = job->cell->next_step();
      step_idx = idx;
      step = job->cell->step_name(idx);
      step_t0 = obs::trace_now_ns();
      if (traced) jt.step_begin(tr, step);
      // Deterministic salts + cache attribution derive from the job, not
      // from the worker that happens to run this step.
      chaos::TaskScope chaos_scope(chaos::mix64(job->spec.seed, idx));
      ScopedCacheTenant tenant(job->spec.tenant);
      job->cell->run_step();
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown error";
    }
    if (traced) {
      jt.step_end(tr);
      if (!failed)
        jt.record(tr, job->id, obs::SpanKind::kStep, jt.intern(step), step_idx,
                  step_t0, obs::trace_now_ns());
    }
    lk.lock();

    if (failed) {
      job->error = error.empty() ? "error" : error;
      settle();
      finish_locked(lk, job, JobState::kFailed);
      return;
    }
    job->steps_done = job->cell->next_step();
    job->steps_total = job->cell->step_count();
    if (job->cell->done()) {
      settle();
      finish_locked(lk, job, JobState::kDone);
      return;
    }
    JobEvent ev;
    ev.id = job->id;
    ev.state = JobState::kRunning;
    ev.tenant = job->spec.tenant;
    ev.target = job->spec.target.id;
    ev.step = job->steps_done;
    ev.steps = job->steps_total;
    ev.step_name = step;
    ev.trace = tr;
    emit(lk, ev);
  }
}

JobResult JobQueue::wait(JobId id) {
  std::unique_lock<std::mutex> lk(mu_);
  struct WaiterGuard {
    Job* job = nullptr;
    ~WaiterGuard() {
      if (job != nullptr) --job->waiters;
    }
  } guard;
  for (;;) {
    Job* job = find_locked(id);
    if (job == nullptr) {
      // Unknown id, or a terminal job already dropped by retention.
      JobResult r;
      r.id = id;
      r.state = JobState::kFailed;
      r.error = "unknown job";
      return r;
    }
    if (guard.job == nullptr) {
      // Pin the job against retention eviction while this wait is live
      // (jobs_ erasure happens under mu_, so the pin is race-free).
      guard.job = job;
      ++job->waiters;
    }
    if (job_state_terminal(job->state)) return snapshot(*job);
    if (opts_.workers == 0) {
      // Inline mode: this thread is the engine. Drive the best queued job
      // (which may or may not be `id` — priorities decide).
      Job* best = pick_best_locked();
      if (best != nullptr) {
        drive(lk, best);
        continue;
      }
      // Nothing queued but `id` not terminal: another thread is driving
      // it (concurrent inline waiters are allowed).
      cv_done_.wait(lk);
    } else {
      cv_done_.wait(lk);
    }
  }
}

void JobQueue::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || pick_best_locked() != nullptr; });
    if (stop_) return;
    Job* best = pick_best_locked();
    if (best != nullptr) drive(lk, best);
  }
}

}  // namespace crp::pipeline
