#include "pipeline/stages.h"

#include <chrono>

#include "exec/thread_pool.h"
#include "obs/journal.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "os/abi.h"

namespace crp::pipeline {

namespace {

u64 wall_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

/// Hash the fields of a ClassifyOptions (the filter_classify config key).
u64 classify_config_hash(const analysis::ClassifyOptions& o) {
  return Hasher()
      .u64v(o.max_paths)
      .u64v(o.max_steps)
      .u64v(o.solver_conflicts)
      .u64v(o.continue_execution_counts ? 1 : 0)
      .digest();
}

/// Content hash of the fuzzable API surface: every spec's identity and
/// pointer metadata (never the host `impl` closure — behavior observable by
/// the fuzzer is fully determined by these fields).
u64 api_surface_hash(const os::Kernel& kernel) {
  Hasher h;
  for (const auto& [id, spec] : kernel.winapi().all()) {
    h.u64v(id).str(spec.name);
    for (os::ArgKind k : spec.args) h.u64v(static_cast<u64>(k));
    for (u32 sz : spec.ptr_sizes) h.u64v(sz);
    h.u64v(static_cast<u64>(spec.behavior)).u64v(spec.error_ret);
  }
  return h.digest();
}

}  // namespace

u64 corpus_content_hash(const std::vector<std::vector<u8>>& blobs) {
  Hasher h;
  for (const auto& b : blobs) h.u64v(b.size()).bytes(b.data(), b.size());
  return h.digest();
}

StageScope::StageScope(const char* stage_id, std::string subject)
    : id_(stage_id), subject_(std::move(subject)), t0_ns_(wall_ns()),
      prof_stage_(stage_id) {
  obs::Registry::global().counter(strf("pipeline.stage.%s.runs", id_)).inc();
}

StageScope::~StageScope() {
  u64 dt = wall_ns() - t0_ns_;
  obs::Registry::global().histogram(strf("pipeline.stage.%s.ns", id_)).record(dt);
  obs::Journal::global().span(strf("stage:%s", id_), "pipeline", t0_ns_ / 1000,
                              dt / 1000, 0,
                              subject_.empty() ? std::string() : "subject",
                              subject_.empty() ? 0
                                               : static_cast<i64>(hash_bytes(
                                                     subject_.data(), subject_.size())));
}

TaintTraceStage::Out TaintTraceStage::run(const In& in) {
  StageScope scope(kId, in.target->name);
  analysis::SyscallScanner scanner(*in.target, in.opts);
  return scanner.discover();
}

SyscallCandidateStage::Out SyscallCandidateStage::run(const In& in) {
  StageScope scope(kId);
  Out out;
  const auto& efault_set = os::efault_capable_syscalls();
  for (const analysis::Candidate& c : in.trace->candidates) {
    if (c.pointer_arg <= 0) continue;
    bool capable = false;
    for (os::Sys s : efault_set) capable |= s == c.syscall;
    if (!capable) continue;
    out.push_back(c);
  }
  return out;
}

namespace {

/// Flight-recorder view of a verify verdict. kCrashes means the candidate
/// was DISQUALIFIED because probing through it kills the target — recorded
/// as a verify-stage crash event (expected; the zero-crash invariant only
/// binds the probing stages). Everything tested and surviving is kSurvive;
/// untested candidates read as kTimeout.
obs::ProbeOutcome verdict_outcome(analysis::Verdict v) {
  switch (v) {
    case analysis::Verdict::kCrashes: return obs::ProbeOutcome::kCrash;
    case analysis::Verdict::kUsable:
    case analysis::Verdict::kNotControllable:
    case analysis::Verdict::kFalsePositive: return obs::ProbeOutcome::kSurvive;
    case analysis::Verdict::kUntested: return obs::ProbeOutcome::kTimeout;
  }
  return obs::ProbeOutcome::kTimeout;
}

}  // namespace

VerifyStage::Out VerifyStage::run(const In& in) {
  StageScope scope(kId, in.target->name);
  exec::ThreadPool pool(in.jobs);
  Out out = exec::parallel_map(
      pool, in.candidates,
      [&](size_t, const analysis::Candidate& c) {
        analysis::Candidate v = c;
        analysis::SyscallScanner scanner(*in.target, in.opts);
        scanner.verify(v);
        return v;
      },
      "verify");
  // Emit the per-candidate flight-recorder events from the caller thread,
  // after the merge: parallel_map returns candidates in input order at any
  // job count, so the ledger stays deterministic too.
  obs::Ledger& led = obs::Ledger::global();
  u32 target_id = led.intern(in.target->name);
  for (const analysis::Candidate& v : out) {
    std::string prim =
        v.api_name.empty() ? std::string(os::sys_name(v.syscall)) : v.api_name;
    led.record(obs::LedgerStage::kVerify, verdict_outcome(v.verdict), led.intern(prim),
               target_id, v.pointer_home.value_or(0), 0);
  }
  return out;
}

SehExtractStage::Out SehExtractStage::run(const In& in) {
  StageScope scope(kId);
  Out out;
  out.content_hash = corpus_content_hash(*in.blobs);
  CRP_CHECK(out.ex.add_images_bytes(*in.blobs, in.jobs));
  return out;
}

FilterClassifyStage::Out FilterClassifyStage::run(const In& in) {
  StageScope scope(kId);
  ArtifactKey key{kId, in.corpus->content_hash, classify_config_hash(in.opts)};
  std::string doc;
  Out out;
  if (in.store != nullptr && in.store->lookup(key, &doc) &&
      decode_classify(doc, &out)) {
    out.cache_hit = true;
    return out;
  }
  analysis::FilterClassifier fc(in.opts);
  out.filters = fc.classify_all(in.corpus->ex, in.jobs);
  out.filters_executed = fc.filters_executed();
  out.sat_queries = fc.sat_queries();
  out.memo_hits = fc.memo_hits();
  if (in.store != nullptr) in.store->store(key, encode_classify(out));
  return out;
}

CoverageXrefStage::Out CoverageXrefStage::run(const In& in) {
  StageScope scope(kId);
  return analysis::CoverageXref::compute(*in.ex, *in.filters, in.tracer, in.proc);
}

ApiFuzzStage::Out ApiFuzzStage::run(const In& in) {
  StageScope scope(kId);
  ArtifactKey key{kId, api_surface_hash(*in.kernel),
                  Hasher().u64v(static_cast<u64>(in.probes_per_arg)).digest()};
  std::string doc;
  Out out;
  if (in.store != nullptr && in.store->lookup(key, &doc) &&
      decode_api_fuzz(doc, &out.result)) {
    out.cache_hit = true;
    return out;
  }
  analysis::ApiFuzzer fuzzer(in.probes_per_arg);
  out.result = fuzzer.fuzz_all(*in.kernel, in.jobs);
  if (in.store != nullptr) in.store->store(key, encode_api_fuzz(out.result));
  return out;
}

CallSiteTraceStage::Out CallSiteTraceStage::run(const In& in) {
  StageScope scope(kId);
  return analysis::ApiCallSiteTracer::analyze(*in.tracer, *in.crash_resistant,
                                              *in.kernel, *in.proc,
                                              in.script_module_needle);
}

std::string ReportStage::table1(
    const std::vector<std::string>& servers,
    const std::map<std::string, analysis::SyscallScanResult>& results) {
  StageScope scope(kId);
  return analysis::render_table1(servers, results);
}

std::string ReportStage::table2(const std::vector<analysis::ModuleSehStats>& stats) {
  StageScope scope(kId);
  return analysis::render_table2(stats);
}

std::string ReportStage::table3(const std::vector<analysis::ModuleSehStats>& x64,
                                const std::vector<analysis::ModuleSehStats>& x32) {
  StageScope scope(kId);
  return analysis::render_table3(x64, x32);
}

std::string ReportStage::api_funnel(const analysis::ApiFunnel& funnel) {
  StageScope scope(kId);
  return analysis::render_api_funnel(funnel);
}

std::string ReportStage::candidates(const std::vector<analysis::Candidate>& cands) {
  StageScope scope(kId);
  return analysis::render_candidates(cands);
}

}  // namespace crp::pipeline
