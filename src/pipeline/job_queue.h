// crp::pipeline::JobQueue — the preemptible discovery-job engine.
//
// PR 8 splits Campaign::run_target into resumable TargetCell steps; the
// JobQueue is what drives them. One job = one (target, options) cell. Jobs
// carry a priority and a tenant; the queue always runs the
// highest-priority queued job (FIFO within a priority), and a running job
// is *preempted at its next step boundary* when a strictly
// higher-priority job arrives — the cell keeps its progress and resumes
// when the queue drains back down to it. Parking notifies the cell
// (TargetCell::on_park) so it releases anything other jobs block on —
// an ArtifactStore lease held by a parked job would deadlock the pool.
// Cancellation has the same granularity: a queued job cancels
// immediately, a running job at its next boundary.
//
// Terminal jobs are retained for STATUS/FETCH up to
// JobQueueOptions::retain_terminal (completion order, oldest forgotten
// first), so a long-running daemon's memory is bounded by active work +
// the retention window, not by total submissions.
//
// Two execution modes:
//   * workers > 0 — a thread pool drains the queue (the crpd daemon);
//   * workers == 0 — inline: wait(id) drains jobs on the *caller's*
//     thread until `id` is terminal. This is what Campaign::run_target /
//     run_all use, and it is what keeps the batch path byte-identical to
//     pre-engine behavior: same thread, same order, same chaos context
//     visibility (a thread-local chaos::ScopedPlan installed by the
//     caller governs the cells it drives).
//
// Determinism: each step runs under chaos::TaskScope(mix64(job seed, step
// index)) and ScopedCacheTenant(job tenant), so fault-injection salts and
// cache attribution derive from the job, never from which worker ran it.
//
// Progress events (submit, per-step, preemption, terminal) fan out through
// an optional sink, called outside the queue lock; the daemon turns them
// into WATCH streams. Telemetry: crpd.jobs.{submitted,done,failed,
// cancelled,preempted} and the long-standing pipeline.campaign.targets_run.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "pipeline/campaign.h"

namespace crp::pipeline {

using JobId = u64;

enum class JobState : u8 { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Stable protocol name: "queued", "running", "done", "failed", "cancelled".
const char* job_state_name(JobState s);
inline bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed || s == JobState::kCancelled;
}

/// One discovery-job request.
struct JobSpec {
  TargetSpec target;
  CampaignOptions opts;
  /// Higher runs first; a strictly higher submission preempts a running
  /// job at its next step boundary.
  int priority = 0;
  /// Deterministic salt basis: step i runs under
  /// chaos::TaskScope(mix64(seed, i)).
  u64 seed = 0;
  /// Cache attribution + daemon quota bucket ("" = anonymous).
  std::string tenant;
  /// obs::JobTracer trace id (0 = untraced; batch paths leave it 0). The
  /// daemon assigns one per accepted SUBMIT; spans are recorded only when
  /// the tracer is armed *and* the job carries a nonzero trace.
  u64 trace = 0;
};

/// One progress notification (sink is called outside the queue lock).
struct JobEvent {
  JobId id = 0;
  JobState state = JobState::kQueued;
  std::string tenant;
  std::string target;
  size_t step = 0;         // steps completed so far
  size_t steps = 0;        // total steps (0 until the cell is planned)
  std::string step_name;   // last completed step ("" for submit/terminal)
  bool preempted = false;  // requeued by a higher-priority arrival
  bool cache_hit = false;  // kDone only: report was served from the cache
  u64 trace = 0;           // trace id (0 = untraced)
  // Terminal events carry the latency split (0 otherwise): queue = submit
  // -> first scheduling, run = accumulated on-worker time, total = submit
  // -> terminal. The daemon feeds these into the per-tenant SLO histograms.
  u64 queue_ns = 0;
  u64 run_ns = 0;
  u64 total_ns = 0;
};

/// Snapshot of one job (status/wait/try_result).
struct JobResult {
  JobId id = 0;
  JobState state = JobState::kQueued;
  TargetReport report;  // valid when state == kDone
  std::string error;    // set when state == kFailed
  size_t steps_done = 0;
  size_t steps_total = 0;
  std::string tenant;
  std::string target;
  int priority = 0;
  u64 trace = 0;
  // Latency split in ns. Terminal jobs report final values; live jobs an
  // in-flight view (total grows, run is time accumulated so far).
  u64 queue_ns = 0;
  u64 run_ns = 0;
  u64 total_ns = 0;
};

struct JobQueueOptions {
  /// 0 = inline mode (wait() drains on the caller's thread); > 0 spawns
  /// that many worker threads. Negative reserved.
  int workers = 0;
  /// Cache tier for cells whose options enable caching (nullptr ->
  /// ArtifactStore::global()).
  ArtifactStore* store = nullptr;
  /// Terminal jobs retained for STATUS/FETCH. Beyond the cap the oldest
  /// terminal job (without an active wait()) is forgotten — its id then
  /// answers "unknown job". 0 = retain forever (batch tools that wait on
  /// every id; a long-running daemon should keep the cap).
  size_t retain_terminal = 1024;
};

class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions opts = {});
  ~JobQueue();
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Install the progress sink (call before submitting; replaces any
  /// previous sink). The sink runs on whichever thread drives the job.
  void set_event_sink(std::function<void(const JobEvent&)> sink);

  JobId submit(JobSpec spec);

  /// True if the cancellation will take effect (job was queued — immediate
  /// — or running — at its next step boundary). False once terminal.
  bool cancel(JobId id);

  /// Snapshot (unknown or already-forgotten id: state kFailed, error
  /// "unknown job").
  JobResult status(JobId id) const;
  /// True + snapshot when the job is terminal.
  bool try_result(JobId id, JobResult* out) const;
  /// Block until `id` is terminal. Inline mode: drives queued jobs
  /// (highest priority first) on this thread until then. An unknown (or
  /// forgotten) id returns kFailed / "unknown job" instead of blocking.
  JobResult wait(JobId id);

  /// Queued + running jobs for `tenant` (the daemon's quota input).
  size_t active(const std::string& tenant) const;
  /// Queued + running jobs across all tenants.
  size_t active_total() const;
  /// Queued (not yet running) jobs.
  size_t pending() const;
  /// Queued depth per priority, highest priority first (STATS, /jobs.json).
  std::vector<std::pair<int, size_t>> queued_depths() const;
  /// Terminal jobs currently retained for STATUS/FETCH.
  size_t retained_terminal() const;
  /// Snapshot of every known job (active + retained terminal), id order.
  std::vector<JobResult> list() const;

 private:
  struct Job {
    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    u64 seq = 0;  // FIFO order within a priority
    std::unique_ptr<TargetCell> cell;
    TargetReport report;
    std::string error;
    bool cancel_requested = false;
    size_t steps_done = 0;
    size_t steps_total = 0;
    int waiters = 0;  // threads inside wait(id): blocks retention eviction
    // Trace/SLO timing (obs::trace_now_ns clock).
    u64 submit_ns = 0;
    u64 first_run_ns = 0;  // 0 until first scheduled
    u64 run_ns = 0;        // accumulated on-worker time
    u64 total_ns = 0;      // set at terminal
    bool resume_pending = false;  // parked: emit a resume span next drive
  };

  Job* find_locked(JobId id);
  const Job* find_locked(JobId id) const;
  Job* pick_best_locked();
  bool higher_queued_locked(int priority) const;
  /// Add/remove `job` from the queued-order index (kQueued jobs only).
  void enqueue_locked(Job* job);
  void dequeue_locked(Job* job);
  /// Park a running job back to kQueued (preemption / teardown): releases
  /// resources other jobs block on (cell->on_park) and re-indexes it.
  void park_locked(Job* job);
  /// Drop the oldest terminal jobs beyond opts_.retain_terminal.
  void evict_terminal_locked();
  static JobResult snapshot(const Job& job);
  /// Run `job` until terminal or preempted. Enters with lk held and
  /// job->state == kQueued; returns with lk held.
  void drive(std::unique_lock<std::mutex>& lk, Job* job);
  void finish_locked(std::unique_lock<std::mutex>& lk, Job* job, JobState state);
  /// Emit `ev` with the lock dropped across the sink call.
  void emit(std::unique_lock<std::mutex>& lk, const JobEvent& ev);
  void worker_loop();

  JobQueueOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;  // workers: new work / stop
  std::condition_variable cv_done_;  // waiters: some job reached terminal
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  // Queued jobs in dispatch order: (-priority, seq, id). pick/peek are
  // O(log n) in *queued* jobs, independent of history size.
  std::set<std::tuple<int, u64, JobId>> queued_;
  // Terminal jobs in completion order, for retention eviction.
  std::deque<JobId> terminal_fifo_;
  JobId next_id_ = 1;
  u64 next_seq_ = 0;
  bool stop_ = false;
  std::function<void(const JobEvent&)> sink_;
  std::vector<std::thread> workers_;
};

}  // namespace crp::pipeline
