// Exploit-plan epilogue stages (ROADMAP item 4): the registry-id ->
// oracle-surface mapping, the cached synthesis stage, the fresh-instance
// replay stage, and the TargetCell step bodies that append both to every
// class's funnel.
#include "pipeline/campaign.h"
#include "pipeline/stages.h"
#include "targets/jvm.h"
#include "targets/nginx.h"

namespace crp::pipeline {

plan::TargetBinding binding_for(const TargetSpec& spec) {
  plan::TargetBinding b;
  b.id = spec.id;
  switch (spec.cls) {
    case TargetClass::kLinuxServer:
      // Only nginx_sim exposes the §VI-C parked-buffer recv() oracle (the
      // leak step scans its conn_table global); the other Table I servers
      // contribute syscall evidence but no scan surface.
      if (spec.id == "server/nginx_sim") {
        b.surface = plan::Surface::kNginxRecv;
        b.make_program = spec.make_program;
        b.port = targets::kNginxPort;
        b.aslr_seed = 0xD15C0;
      }
      break;
    case TargetClass::kManagedRuntime:
      if (spec.id == "runtime/jvm_sim") {
        b.surface = plan::Surface::kJvmNpe;
        b.make_program = spec.make_program;
        b.port = targets::kJvmPort;
        b.aslr_seed = 0xD15C0;
      }
      break;
    case TargetClass::kBrowser:
      b.surface = spec.browser_kind == targets::BrowserSim::Kind::kIE
                      ? plan::Surface::kBrowserSeh
                      : plan::Surface::kBrowserPoll;
      b.browser = browser_options(spec);
      break;
    case TargetClass::kDllCorpus:
    case TargetClass::kApiCorpus:
      break;  // static / no running instance: no surface
  }
  return b;
}

namespace {

ArtifactKey plan_synth_key(const PlanSynthStage::In& in) {
  Hasher ih;
  ih.str(in.spec->id).u64v(in.candidates->size());
  for (const analysis::Candidate& c : *in.candidates)
    ih.str(c.describe())
        .u64v(static_cast<u64>(c.verdict))
        .u64v(c.controllable_home ? 1 : 0)
        .u64v(c.catch_all ? 1 : 0);
  u64 cfg = Hasher()
                .u64v(static_cast<u64>(plan::kPlanVersion))
                .u64v(in.opts.window_pages)
                .u64v(in.opts.region_pages)
                .u64v(in.opts.seed)
                .digest();
  return ArtifactKey{PlanSynthStage::kId, ih.digest(), cfg};
}

}  // namespace

PlanSynthStage::Out PlanSynthStage::run(const In& in) {
  StageScope scope(kId, in.spec->id);
  Out out;
  ArtifactKey key;
  bool leased = false;
  if (in.store != nullptr) {
    key = plan_synth_key(in);
    std::string doc;
    Acquire a = in.store->acquire(key, &doc);
    if (a == Acquire::kHit && plan::decode_plan(doc, &out.exploit_plan)) {
      out.cache_hit = true;
      return out;
    }
    // A hit that fails to decode (corrupted blob) recomputes without the
    // lease; the publish below replaces the stored document.
    leased = a == Acquire::kOwner;
  }
  out.exploit_plan =
      plan::synthesize(binding_for(*in.spec), *in.candidates, in.opts);
  if (in.store != nullptr) {
    std::string doc = plan::encode_plan(out.exploit_plan);
    if (leased) in.store->finish(key, doc);
    else in.store->store(key, doc);
  }
  return out;
}

PlanVerifyStage::Out PlanVerifyStage::run(const In& in) {
  StageScope scope(kId, in.spec->id);
  return plan::replay_fresh(binding_for(*in.spec), *in.exploit_plan, in.harness);
}

// --- TargetCell epilogue steps -----------------------------------------------

void TargetCell::plan_synth_step() {
  plan::SynthOptions so;
  so.window_pages = opts_.plan_window_pages;
  so.region_pages = opts_.plan_region_pages;
  PlanSynthStage::Out o =
      PlanSynthStage::run({&spec_, &report_.candidates, so, store_});
  report_.has_plan = true;
  report_.exploit_plan = std::move(o.exploit_plan);
  report_.plan_cache_hit = o.cache_hit;
}

void TargetCell::plan_verify_step() {
  report_.plan_replay =
      PlanVerifyStage::run({&spec_, &report_.exploit_plan, {}});
}

}  // namespace crp::pipeline
