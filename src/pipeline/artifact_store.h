// crp::pipeline::ArtifactStore — content-addressed caching of stage outputs.
//
// Generalizes the PR 2 `filter_body_hash` verdict memo from "one map inside
// FilterClassifier" to a campaign-wide service: any pipeline stage whose
// output is a pure function of its input bytes and its configuration can
// publish that output under the key (stage id, input hash, config hash) and
// skip recomputation the next time the same corpus flows through the same
// stage. Repeated campaigns over shared corpora (the common case: every
// bench and example re-scans the same five servers and re-classifies the
// same DLL populations) then cost one lookup instead of a taint-traced
// workload run or a symbolic-execution sweep.
//
// Addressing is *content*-based: input hashes cover the serialized image
// bytes / corpus spec, never file names or timestamps, so a single flipped
// byte in a target image changes the key and invalidates the entry
// (tested in tests/test_pipeline.cc).
//
// Storage tiers:
//   * in-memory map — always on (per process);
//   * optional disk tier — set CRP_CACHE_DIR to persist artifacts across
//     processes (one file per key, write-tmp-then-rename); this is what
//     makes a *second* bench run warm. On-disk blobs carry a "CRPART1"
//     magic + FNV-1a checksum header: a corrupted, truncated or
//     legacy-format file is *detected* (pipeline.cache.corrupt), dropped,
//     and treated as a miss — the stage recomputes instead of decoding
//     garbage.
//
// Kill switch: CRP_CACHE=0 disables the store entirely — lookups miss
// without counting and stores are dropped — so any suspected cache bug can
// be ruled out in one rerun. Hit/miss/store traffic is published as
// `pipeline.cache.{hits,misses,stores}` in the global obs registry.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "chaos/chaos.h"
#include "util/common.h"

namespace crp::obs {
class Counter;
}  // namespace crp::obs

namespace crp::pipeline {

/// FNV-1a 64-bit over raw bytes, seedable for chaining.
inline constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
u64 hash_bytes(const void* data, size_t n, u64 seed = kFnvOffset);

/// Incremental content hasher for composite keys (a corpus = many blobs,
/// a config = several scalar fields). Order-sensitive by design.
class Hasher {
 public:
  Hasher& bytes(const void* data, size_t n) {
    h_ = hash_bytes(data, n, h_);
    return *this;
  }
  Hasher& str(std::string_view s) { return bytes(s.data(), s.size()); }
  Hasher& u64v(u64 v) { return bytes(&v, sizeof v); }
  Hasher& f64(double v) { return bytes(&v, sizeof v); }
  u64 digest() const { return h_; }

 private:
  u64 h_ = kFnvOffset;
};

/// Content address of one stage output.
struct ArtifactKey {
  std::string stage;    // stage id, e.g. "filter_classify"
  u64 input_hash = 0;   // content hash of the stage input
  u64 config_hash = 0;  // hash of the stage configuration

  /// Stable file/map name: "<stage>-<input:016x>-<config:016x>".
  std::string str() const;
};

class ArtifactStore {
 public:
  /// Reads CRP_CACHE (anything other than "0"/"" -> enabled) and
  /// CRP_CACHE_DIR (empty -> memory-only) at construction.
  ArtifactStore();

  /// Overrides for tests and embedding; both shadow the env settings.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void set_dir(std::string dir);
  const std::string& dir() const { return dir_; }

  /// True + fills *value on a hit (memory first, then disk). A disabled
  /// store always returns false and counts nothing (pure bypass).
  bool lookup(const ArtifactKey& key, std::string* value);
  /// Publish an artifact (memory + disk tier when configured). Dropped
  /// silently when disabled.
  void store(const ArtifactKey& key, const std::string& value);

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  u64 stores() const { return stores_.load(std::memory_order_relaxed); }
  /// Disk blobs rejected by the header/checksum validation (each also
  /// counts as a miss: the caller recomputes).
  u64 corrupt() const { return corrupt_.load(std::memory_order_relaxed); }
  size_t size() const;

  /// Drop every in-memory artifact and zero the traffic counters (the disk
  /// tier, if any, is left untouched). Intended for tests.
  void clear();

  /// The process-wide store every Campaign uses by default.
  static ArtifactStore& global();

 private:
  std::string disk_path(const ArtifactKey& key) const;

  bool enabled_ = true;
  std::string dir_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> mem_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> stores_{0};
  std::atomic<u64> corrupt_{0};
  obs::Counter* c_hits_;
  obs::Counter* c_misses_;
  obs::Counter* c_stores_;
  obs::Counter* c_corrupt_;
  // Chaos: disk-tier fault injection (corrupt/truncate blobs on read,
  // failed tmp-rename on store). Decisions are keyed by the artifact key
  // hash, so they are independent of lookup order and thread schedule.
  chaos::FaultStream chaos_;
};

}  // namespace crp::pipeline
