// crp::pipeline::ArtifactStore — content-addressed caching of stage outputs.
//
// Generalizes the PR 2 `filter_body_hash` verdict memo from "one map inside
// FilterClassifier" to a campaign-wide service: any pipeline stage whose
// output is a pure function of its input bytes and its configuration can
// publish that output under the key (stage id, input hash, config hash) and
// skip recomputation the next time the same corpus flows through the same
// stage. Repeated campaigns over shared corpora (the common case: every
// bench and example re-scans the same five servers and re-classifies the
// same DLL populations) then cost one lookup instead of a taint-traced
// workload run or a symbolic-execution sweep.
//
// Addressing is *content*-based: input hashes cover the serialized image
// bytes / corpus spec, never file names or timestamps, so a single flipped
// byte in a target image changes the key and invalidates the entry
// (tested in tests/test_pipeline.cc).
//
// Since PR 8 the store is a shared tier under the multi-tenant crpd
// daemon, so it is concurrency-first:
//   * the namespace is striped across kShards lock shards (keys hash to a
//     shard), so unrelated stages never contend on one mutex;
//   * `acquire`/`finish`/`abort_claim` implement a single-writer lease per
//     key: when N jobs race on the same cold artifact, exactly one
//     computes while the rest block and are handed the finished value (a
//     hit) — the "duplicate submission costs one computation" property the
//     daemon advertises;
//   * hit/miss traffic is additionally attributed to the submitting tenant
//     (ScopedCacheTenant, a thread-local) as
//     `pipeline.cache.tenant.<t>.{hits,misses}`. Attribution is capped at
//     kMaxAttributedTenants distinct tenants (registry counters live
//     forever; client-minted names must not grow them unboundedly) —
//     traffic beyond the cap still counts in the global totals;
//   * disk-tier file I/O never runs under a shard lock: the reader takes
//     the key's inflight lease, reads with the shard unlocked, and
//     publishes on relock, so a slow disk stalls only that key.
//
// Storage tiers:
//   * in-memory map — always on (per process);
//   * optional disk tier — set CRP_CACHE_DIR to persist artifacts across
//     processes (one file per key, write-tmp-then-rename); this is what
//     makes a *second* bench run warm. On-disk blobs carry a "CRPART1"
//     magic + FNV-1a checksum header: a corrupted, truncated or
//     legacy-format file is *detected* (pipeline.cache.corrupt), dropped,
//     and treated as a miss — the stage recomputes instead of decoding
//     garbage. CRP_CACHE_MAX_MB caps the disk tier: least-recently-used
//     blobs are evicted after each store (pipeline.cache.evictions).
//
// Kill switch: CRP_CACHE=0 disables the store entirely — lookups miss
// without counting and stores are dropped — so any suspected cache bug can
// be ruled out in one rerun. Hit/miss/store traffic is published as
// `pipeline.cache.{hits,misses,stores}` in the global obs registry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>

#include "chaos/chaos.h"
#include "util/common.h"

namespace crp::obs {
class Counter;
}  // namespace crp::obs

namespace crp::pipeline {

/// FNV-1a 64-bit over raw bytes, seedable for chaining.
inline constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
u64 hash_bytes(const void* data, size_t n, u64 seed = kFnvOffset);

/// Incremental content hasher for composite keys (a corpus = many blobs,
/// a config = several scalar fields). Order-sensitive by design.
class Hasher {
 public:
  Hasher& bytes(const void* data, size_t n) {
    h_ = hash_bytes(data, n, h_);
    return *this;
  }
  Hasher& str(std::string_view s) { return bytes(s.data(), s.size()); }
  Hasher& u64v(u64 v) { return bytes(&v, sizeof v); }
  Hasher& f64(double v) { return bytes(&v, sizeof v); }
  u64 digest() const { return h_; }

 private:
  u64 h_ = kFnvOffset;
};

/// Content address of one stage output.
struct ArtifactKey {
  std::string stage;    // stage id, e.g. "filter_classify"
  u64 input_hash = 0;   // content hash of the stage input
  u64 config_hash = 0;  // hash of the stage configuration

  /// Stable file/map name: "<stage>-<input:016x>-<config:016x>".
  std::string str() const;
};

/// Attribute cache traffic on this thread to a tenant for the duration of
/// the scope (`pipeline.cache.tenant.<t>.{hits,misses}`). Nesting restores
/// the previous tenant; the empty tenant attributes nothing extra.
class ScopedCacheTenant {
 public:
  explicit ScopedCacheTenant(std::string tenant);
  ~ScopedCacheTenant();
  ScopedCacheTenant(const ScopedCacheTenant&) = delete;
  ScopedCacheTenant& operator=(const ScopedCacheTenant&) = delete;

  /// The tenant cache traffic on this thread is attributed to ("" = none).
  static const std::string& current();

 private:
  std::string saved_;
};

/// Outcome of ArtifactStore::acquire.
enum class Acquire {
  kHit,     // *value filled; nothing to compute or release
  kOwner,   // caller holds the single-writer lease: compute, then
            // finish() (publishes + wakes waiters) or abort_claim()
  kBypass,  // store disabled: compute, do not call finish/abort
};

class ArtifactStore {
 public:
  /// Reads CRP_CACHE (anything other than "0"/"" -> enabled),
  /// CRP_CACHE_DIR (empty -> memory-only) and CRP_CACHE_MAX_MB (0/unset ->
  /// unbounded disk tier) at construction.
  ArtifactStore();

  /// Overrides for tests and embedding; both shadow the env settings.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void set_dir(std::string dir);
  const std::string& dir() const { return dir_; }
  /// Disk-tier size cap in bytes (0 = unbounded). Shadows CRP_CACHE_MAX_MB.
  void set_max_disk_bytes(u64 cap);

  /// True + fills *value on a hit (memory first, then disk). A disabled
  /// store always returns false and counts nothing (pure bypass).
  bool lookup(const ArtifactKey& key, std::string* value);
  /// Publish an artifact (memory + disk tier when configured). Dropped
  /// silently when disabled.
  void store(const ArtifactKey& key, const std::string& value);

  /// Single-writer lease: lookup that serializes concurrent producers of
  /// the same key. kHit fills *value. kOwner grants this caller the lease —
  /// every concurrent acquire of the key blocks until the owner calls
  /// finish(key, value) (waiters wake with a hit) or abort_claim(key) (one
  /// waiter is promoted to owner and recomputes).
  /// Spans land in obs::JobTracer when the calling thread carries a traced
  /// job context (obs::ScopedTraceJob, installed by the JobQueue): kOwner
  /// -> lease_acquire (this job computes), kHit -> lease_coalesce (this
  /// job replays), plus lease_wait covering any time blocked behind
  /// another job's in-flight lease.
  Acquire acquire(const ArtifactKey& key, std::string* value);
  void finish(const ArtifactKey& key, const std::string& value);
  void abort_claim(const ArtifactKey& key);

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  u64 stores() const { return stores_.load(std::memory_order_relaxed); }
  /// Disk blobs rejected by the header/checksum validation (each also
  /// counts as a miss: the caller recomputes).
  u64 corrupt() const { return corrupt_.load(std::memory_order_relaxed); }
  /// Disk blobs evicted by the CRP_CACHE_MAX_MB LRU cap.
  u64 evictions() const { return evictions_.load(std::memory_order_relaxed); }
  size_t size() const;

  /// Per-tenant traffic recorded via ScopedCacheTenant (0 for unknown).
  u64 tenant_hits(const std::string& tenant) const;
  u64 tenant_misses(const std::string& tenant) const;

  /// Drop every in-memory artifact and zero the traffic counters (the disk
  /// tier, if any, is left untouched). Intended for tests.
  void clear();

  /// The process-wide store every Campaign uses by default.
  static ArtifactStore& global();

 private:
  // Key space is striped: each shard owns the memory tier and the
  // single-writer lease set for the keys that hash to it. disk_mu_ and
  // chaos_mu_ are never taken with a shard lock held (disk I/O runs
  // unlocked under the key's inflight lease), and never shard -> shard.
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;  // signaled when a lease is released
    std::unordered_map<std::string, std::string> mem;
    std::set<std::string> inflight;  // keys with an active writer lease
  };

  Shard& shard_for(const std::string& name);
  const Shard& shard_for(const std::string& name) const;
  std::string disk_path(const std::string& name) const;
  // Disk read/validate for `name`; fills *payload on success. Called with
  // NO shard lock held — the caller owns the key's inflight lease instead.
  bool disk_read(const std::string& name, std::string* payload);
  // acquire() minus the tracing wrapper; *waited set when the call blocked
  // on another writer's lease.
  Acquire acquire_impl(const ArtifactKey& key, std::string* value, bool* waited);
  void disk_store(const std::string& name, const std::string& value);
  void count_hit();
  void count_miss();
  void release_claim(const std::string& name);

  // --- disk LRU (guarded by disk_mu_) ---
  void disk_index_scan_locked();
  void disk_touch(const std::string& name);
  void disk_forget(const std::string& name);
  void disk_add_and_evict(const std::string& name, size_t bytes);

  bool enabled_ = true;
  std::string dir_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> stores_{0};
  std::atomic<u64> corrupt_{0};
  std::atomic<u64> evictions_{0};
  obs::Counter* c_hits_;
  obs::Counter* c_misses_;
  obs::Counter* c_stores_;
  obs::Counter* c_corrupt_;
  obs::Counter* c_evictions_;
  Shard shards_[kShards];

  // Per-tenant attribution (lazily materialized registry counters),
  // bounded: tenants beyond the cap are not broken out (global counters
  // still see their traffic).
  static constexpr size_t kMaxAttributedTenants = 64;
  struct TenantStat {
    u64 hits = 0;
    u64 misses = 0;
    obs::Counter* c_hits = nullptr;
    obs::Counter* c_misses = nullptr;
  };
  TenantStat* tenant_stat_locked(const std::string& t);
  mutable std::mutex tenant_mu_;
  std::unordered_map<std::string, TenantStat> tenants_;

  // Disk-tier LRU index: names in recency order (front = coldest), with
  // payload sizes, populated lazily from a directory scan.
  mutable std::mutex disk_mu_;
  bool disk_scanned_ = false;
  u64 disk_cap_bytes_ = 0;
  u64 disk_total_bytes_ = 0;
  std::list<std::string> disk_lru_;  // front = least recently used
  std::unordered_map<std::string, std::pair<std::list<std::string>::iterator, size_t>>
      disk_index_;

  // Chaos: disk-tier fault injection (corrupt/truncate blobs on read,
  // failed tmp-rename on store). Decisions are keyed by the artifact key
  // hash, so they are independent of lookup order and thread schedule; the
  // stream's occurrence counters are serialized by chaos_mu_ (shards hit
  // the disk tier concurrently).
  std::mutex chaos_mu_;
  chaos::FaultStream chaos_;
};

}  // namespace crp::pipeline
