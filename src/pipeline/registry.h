// crp::pipeline::TargetRegistry — every discovery subject behind one
// interface.
//
// The paper evaluates one pipeline against very different subjects: five
// Linux servers (syscall class, Table I), a managed runtime (signal class,
// §III-B), two Windows browsers (SEH/VEH class, Tables II and §V-C), static
// DLL populations (Table III) and the documented Windows API surface
// (§V-B). Before this layer existed every bench and example re-declared its
// subjects by hand; the registry makes the corpus a first-class enumerable
// set so a campaign can ask "all targets" or "all Linux-syscall targets"
// and drivers stay declarative.
//
// Each entry carries *personality metadata* — which primitive class the
// subject belongs to and which funnel therefore applies:
//   kLinuxServer    -> taint trace -> syscall candidates -> verify
//   kManagedRuntime -> run -> signal-handler scan (ucontext-editing SIGSEGV)
//   kBrowser        -> browse under trace -> SEH extract -> classify -> xref
//                      (+ VEH harvest for runtime-registered handlers)
//   kDllCorpus      -> SEH extract -> classify (static only)
//   kApiCorpus      -> invalid-pointer fuzz (-> on-path/call-site analysis
//                      when paired with a browser workload)
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/target.h"
#include "targets/browser.h"
#include "targets/dll_corpus.h"

namespace crp::pipeline {

enum class TargetClass : u8 {
  kLinuxServer = 0,  // syscall funnel (Table I)
  kManagedRuntime,   // Linux signal-handler class (jvm_sim, §III-B)
  kBrowser,          // Windows SEH/VEH funnel (Table II, §V-C, §VI-A/B)
  kDllCorpus,        // static SEH population (Table III)
  kApiCorpus,        // Windows API fuzzing funnel (§V-B)
};

const char* target_class_name(TargetClass c);

/// Parameters of a synthetic Windows API population (kApiCorpus).
struct ApiCorpusSpec {
  u64 seed = 0;
  u32 total = 0;
  double ptr_fraction = 0.0;
  double resistant_fraction = 0.0;
};

/// One discovery subject. Class-specific fields are only meaningful for the
/// matching TargetClass; everything is cheap to copy except make_program,
/// which builds images lazily on call.
struct TargetSpec {
  std::string id;  // unique, "<kind>/<name>", e.g. "server/nginx_sim"
  TargetClass cls = TargetClass::kLinuxServer;
  vm::Personality personality = vm::Personality::kLinux;
  std::string description;

  /// kLinuxServer / kManagedRuntime: build the runnable program.
  std::function<analysis::TargetProgram()> make_program;

  /// kBrowser: simulacrum construction parameters.
  targets::BrowserSim::Kind browser_kind = targets::BrowserSim::Kind::kIE;
  u64 seed = 0;         // browser / corpus generation seed
  int filler_dlls = 0;  // extra DLLs beyond the paper's named set

  /// kDllCorpus: population specs (generated with `seed`).
  std::function<std::vector<targets::DllSpec>()> dll_specs;

  /// kApiCorpus.
  ApiCorpusSpec api;
};

/// Enumerable, id-addressable set of targets. Intentionally a value type:
/// campaigns may start from builtin() and add bespoke subjects.
class TargetRegistry {
 public:
  /// Every subject the reproduction knows: the five Table I servers,
  /// jvm_sim, both browsers (plus the 187-DLL system-wide browser corpus of
  /// §V-C), the x64/x32 DLL populations of Table III, and the §V-B API
  /// corpus. Seeds match the historical bench wiring so pipeline-driven
  /// benches reproduce the exact pre-refactor numbers.
  static TargetRegistry builtin();

  /// Register a target; panics on a duplicate id.
  void add(TargetSpec spec);

  const std::vector<TargetSpec>& all() const { return targets_; }
  /// Entry with this id, or nullptr.
  const TargetSpec* find(std::string_view id) const;
  /// All entries of one class, registration order.
  std::vector<const TargetSpec*> of_class(TargetClass c) const;

 private:
  std::vector<TargetSpec> targets_;
};

}  // namespace crp::pipeline
