// Text codecs for cached stage artifacts.
//
// Artifacts are stored as small line-oriented text documents: diffable,
// greppable, and stable across builds (no struct-layout dependence). Each
// document starts with a versioned header line; decoders reject any
// mismatch, which the ArtifactStore caller treats as a miss — bumping a
// kVersion below safely invalidates stale disk artifacts.
//
// Only value-like stage outputs are encoded: verified syscall scans,
// filter-classification outcomes, API fuzz results. Strings are
// %-escaped so notes with spaces survive the token format.
#pragma once

#include <string>

#include "analysis/api_analysis.h"
#include "analysis/seh_analysis.h"
#include "analysis/syscall_scanner.h"

namespace crp::pipeline {

inline constexpr int kCodecVersion = 1;

/// FilterClassifyStage output: the per-filter verdicts plus the classifier
/// counters the drivers print (so a cache hit replays identical stdout).
struct ClassifyOutcome {
  std::vector<analysis::FilterInfo> filters;
  u64 filters_executed = 0;
  u64 sat_queries = 0;
  u64 memo_hits = 0;
  /// True when this outcome was answered from the ArtifactStore.
  bool cache_hit = false;
};

std::string encode_syscall_scan(const analysis::SyscallScanResult& res);
bool decode_syscall_scan(const std::string& doc, analysis::SyscallScanResult* out);

std::string encode_classify(const ClassifyOutcome& out);
bool decode_classify(const std::string& doc, ClassifyOutcome* out);

std::string encode_api_fuzz(const analysis::ApiFuzzResult& res);
bool decode_api_fuzz(const std::string& doc, analysis::ApiFuzzResult* out);

}  // namespace crp::pipeline
