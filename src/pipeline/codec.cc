#include "pipeline/codec.h"

#include <sstream>

namespace crp::pipeline {

namespace {

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ' || c == '%' || c == '\n') {
      static const char kHex[] = "0123456789abcdef";
      out += '%';
      out += kHex[(static_cast<u8>(c) >> 4) & 0xf];
      out += kHex[static_cast<u8>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

std::string unesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

bool expect_header(std::istringstream& in, const char* kind) {
  std::string magic, version, k;
  if (!(in >> magic >> version >> k)) return false;
  return magic == "crp-artifact" &&
         version == strf("v%d", kCodecVersion) && k == kind;
}

std::string header(const char* kind) {
  return strf("crp-artifact v%d %s\n", kCodecVersion, kind);
}

}  // namespace

std::string encode_syscall_scan(const analysis::SyscallScanResult& res) {
  std::ostringstream out;
  out << header("syscall_scan");
  out << "traced " << res.syscalls_traced << " instructions " << res.instructions
      << "\n";
  out << "observed " << res.observed.size();
  for (os::Sys s : res.observed) out << " " << static_cast<u64>(s);
  out << "\n";
  out << "candidates " << res.candidates.size() << "\n";
  for (const analysis::Candidate& c : res.candidates) {
    out << "cand " << static_cast<u64>(c.syscall) << " " << c.pointer_arg << " "
        << c.taint_mask << " " << (c.pointer_home.has_value() ? 1 : 0) << " "
        << c.pointer_home.value_or(0) << " " << (c.controllable_home ? 1 : 0)
        << " " << static_cast<u32>(c.verdict) << " " << esc(c.target) << " "
        << esc(c.note) << "\n";
  }
  return out.str();
}

bool decode_syscall_scan(const std::string& doc, analysis::SyscallScanResult* out) {
  std::istringstream in(doc);
  if (!expect_header(in, "syscall_scan")) return false;
  analysis::SyscallScanResult res;
  std::string tag;
  if (!(in >> tag >> res.syscalls_traced) || tag != "traced") return false;
  if (!(in >> tag >> res.instructions) || tag != "instructions") return false;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "observed") return false;
  for (size_t i = 0; i < n; ++i) {
    u64 s = 0;
    if (!(in >> s)) return false;
    res.observed.insert(static_cast<os::Sys>(s));
  }
  if (!(in >> tag >> n) || tag != "candidates") return false;
  for (size_t i = 0; i < n; ++i) {
    analysis::Candidate c;
    c.cls = analysis::PrimitiveClass::kSyscall;
    u64 sys = 0, home = 0;
    int has_home = 0, ctrl = 0;
    u32 verdict = 0;
    std::string target, note;
    if (!(in >> tag >> sys >> c.pointer_arg >> c.taint_mask >> has_home >> home >>
          ctrl >> verdict >> target >> note) ||
        tag != "cand")
      return false;
    c.syscall = static_cast<os::Sys>(sys);
    if (has_home != 0) c.pointer_home = home;
    c.controllable_home = ctrl != 0;
    c.verdict = static_cast<analysis::Verdict>(verdict);
    c.target = unesc(target);
    c.note = unesc(note);
    res.candidates.push_back(std::move(c));
  }
  *out = std::move(res);
  return true;
}

std::string encode_classify(const ClassifyOutcome& o) {
  std::ostringstream out;
  out << header("filter_classify");
  out << "executed " << o.filters_executed << " queries " << o.sat_queries
      << " memo_hits " << o.memo_hits << "\n";
  out << "filters " << o.filters.size() << "\n";
  for (const analysis::FilterInfo& f : o.filters) {
    out << "filter " << f.offset << " " << static_cast<u32>(f.machine) << " "
        << static_cast<u32>(f.verdict) << " " << f.paths_explored << " "
        << f.handlers_using << " " << esc(f.module) << "\n";
  }
  return out.str();
}

bool decode_classify(const std::string& doc, ClassifyOutcome* out) {
  std::istringstream in(doc);
  if (!expect_header(in, "filter_classify")) return false;
  ClassifyOutcome o;
  std::string tag;
  if (!(in >> tag >> o.filters_executed) || tag != "executed") return false;
  if (!(in >> tag >> o.sat_queries) || tag != "queries") return false;
  if (!(in >> tag >> o.memo_hits) || tag != "memo_hits") return false;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "filters") return false;
  for (size_t i = 0; i < n; ++i) {
    analysis::FilterInfo f;
    u32 machine = 0, verdict = 0;
    std::string module;
    if (!(in >> tag >> f.offset >> machine >> verdict >> f.paths_explored >>
          f.handlers_using >> module) ||
        tag != "filter")
      return false;
    f.machine = static_cast<isa::Machine>(machine);
    f.verdict = static_cast<analysis::FilterVerdict>(verdict);
    f.module = unesc(module);
    o.filters.push_back(std::move(f));
  }
  *out = std::move(o);
  return true;
}

std::string encode_api_fuzz(const analysis::ApiFuzzResult& res) {
  std::ostringstream out;
  out << header("api_fuzz");
  out << "total " << res.total_apis << " with_ptr " << res.with_pointer_args
      << " probes " << res.probes_executed << "\n";
  out << "resistant " << res.crash_resistant.size();
  for (u32 id : res.crash_resistant) out << " " << id;
  out << "\n";
  return out.str();
}

bool decode_api_fuzz(const std::string& doc, analysis::ApiFuzzResult* out) {
  std::istringstream in(doc);
  if (!expect_header(in, "api_fuzz")) return false;
  analysis::ApiFuzzResult res;
  std::string tag;
  if (!(in >> tag >> res.total_apis) || tag != "total") return false;
  if (!(in >> tag >> res.with_pointer_args) || tag != "with_ptr") return false;
  if (!(in >> tag >> res.probes_executed) || tag != "probes") return false;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "resistant") return false;
  for (size_t i = 0; i < n; ++i) {
    u32 id = 0;
    if (!(in >> id)) return false;
    res.crash_resistant.insert(id);
  }
  *out = std::move(res);
  return true;
}

}  // namespace crp::pipeline
