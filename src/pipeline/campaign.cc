#include "pipeline/campaign.h"

#include <optional>
#include <stdexcept>

#include "analysis/signal_scanner.h"
#include "analysis/veh_scanner.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "pipeline/job_queue.h"
#include "util/rng.h"

namespace crp::pipeline {

targets::BrowserSim::Options browser_options(const TargetSpec& spec) {
  targets::BrowserSim::Options o;
  o.kind = spec.browser_kind;
  o.seed = spec.seed;
  o.filler_dlls = spec.filler_dlls;
  return o;
}

std::string render_report(const TargetReport& rep, bool cache_tag) {
  std::string out =
      strf("--- %-24s [%s]\n", rep.id.c_str(), target_class_name(rep.cls));
  out += strf("    %s%s\n", rep.summary.c_str(),
              cache_tag && rep.cache_hit ? " [cached]" : "");
  for (const analysis::Candidate& c : rep.candidates) {
    if (c.verdict == analysis::Verdict::kUsable ||
        c.cls != analysis::PrimitiveClass::kSyscall)
      out += strf("    * %s\n", c.describe().c_str());
  }
  if (rep.has_plan) {
    out += strf("    plan: %s%s%s\n",
                plan::surface_name(rep.exploit_plan.surface),
                rep.exploit_plan.symex_confirmed ? " [symex]" : "",
                cache_tag && rep.plan_cache_hit ? " [cached]" : "");
    out += strf("    replay: %s\n", rep.plan_replay.summary().c_str());
  }
  out += "\n";
  return out;
}

Campaign::Campaign(CampaignOptions opts, ArtifactStore* store)
    : opts_(opts), store_(store != nullptr ? store : &ArtifactStore::global()) {}

namespace {

ArtifactKey syscall_scan_key_for(const analysis::TargetProgram& prog,
                                 const CampaignOptions& opts) {
  Hasher in;
  in.str(prog.name)
      .u64v(static_cast<u64>(prog.personality))
      .u64v(prog.port)
      .u64v(prog.images.size());
  for (const auto& img : prog.images) {
    std::vector<u8> bytes = isa::write_image(*img);
    in.u64v(bytes.size()).bytes(bytes.data(), bytes.size());
  }
  u64 cfg = Hasher()
                .u64v(opts.syscall.discover_budget)
                .u64v(opts.syscall.verify_budget)
                .u64v(opts.syscall.check_service_liveness ? 1 : 0)
                .u64v(opts.syscall.seed)
                .digest();
  return ArtifactKey{TaintTraceStage::kId, in.digest(), cfg};
}

// The Linux-syscall funnel (TaintTrace -> SyscallCandidate -> Verify) as
// explicit stepped state, shared by the blocking scan_program path and the
// ServerCell job steps so the two cannot drift apart. Holds the store's
// single-writer lease between the lookup and the publish — concurrent
// scans of an identical target compute once, the rest are handed the
// finished artifact. The destructor releases an abandoned lease (a step
// threw, or the job was cancelled between steps).
struct SyscallFunnel {
  const CampaignOptions& opts;
  ArtifactStore* st;  // nullptr: caching off
  int verify_jobs;
  const analysis::TargetProgram* prog = nullptr;
  ArtifactKey key;
  bool leased = false;
  bool parked = false;  // lease released by park(); re-acquire on resume()
  std::vector<analysis::Candidate> cands;
  ServerScan scan;

  SyscallFunnel(const CampaignOptions& o, ArtifactStore* s, int vj)
      : opts(o), st(s), verify_jobs(vj) {}
  ~SyscallFunnel() {
    if (leased && st != nullptr) st->abort_claim(key);
  }

  void trace() {
    scan.name = prog->name;
    if (st != nullptr) {
      key = syscall_scan_key_for(*prog, opts);
      std::string doc;
      Acquire a = st->acquire(key, &doc);
      if (a == Acquire::kHit && decode_syscall_scan(doc, &scan.result)) {
        scan.cache_hit = true;
        return;
      }
      // A hit that fails to decode recomputes without the lease; the
      // publish below replaces the stored blob.
      leased = a == Acquire::kOwner;
    }
    scan.result = TaintTraceStage::run({prog, opts.syscall});
  }

  // Park/resume protocol (JobQueue preemption): a parked job may wait in
  // the queue indefinitely while other jobs for the same key block inside
  // acquire() — so the lease is released on park and re-taken on the next
  // step. If another job published the artifact in between, resume turns
  // into a cache hit and the remaining compute steps are skipped.
  void park() {
    if (leased && st != nullptr) {
      st->abort_claim(key);
      leased = false;
      parked = true;
    }
  }

  void resume() {
    if (!parked) return;
    parked = false;
    std::string doc;
    Acquire a = st->acquire(key, &doc);
    if (a == Acquire::kHit && decode_syscall_scan(doc, &scan.result)) {
      scan.cache_hit = true;
      return;
    }
    leased = a == Acquire::kOwner;
  }

  void candidates() {
    if (scan.cache_hit) return;
    cands = SyscallCandidateStage::run({&scan.result});
  }

  void verify() {
    if (scan.cache_hit) return;
    scan.result.candidates =
        VerifyStage::run({prog, opts.syscall, std::move(cands),
                          verify_jobs != 0 ? verify_jobs : opts.jobs});
    if (st != nullptr) {
      std::string doc = encode_syscall_scan(scan.result);
      if (leased) {
        st->finish(key, doc);
        leased = false;
      } else {
        st->store(key, doc);
      }
    }
  }
};

}  // namespace

ArtifactKey Campaign::syscall_scan_key(const analysis::TargetProgram& prog) const {
  return syscall_scan_key_for(prog, opts_);
}

ServerScan Campaign::scan_program(const analysis::TargetProgram& prog,
                                  int verify_jobs) {
  obs::ScopedProfTarget prof_target(prog.name);
  SyscallFunnel funnel(opts_, store(), verify_jobs);
  funnel.prog = &prog;
  funnel.trace();
  funnel.candidates();
  funnel.verify();
  return std::move(funnel.scan);
}

ServerScan Campaign::scan_target(const TargetSpec& spec) {
  CRP_CHECK(spec.make_program != nullptr);
  analysis::TargetProgram prog = spec.make_program();
  return scan_program(prog);
}

std::vector<ServerScan> Campaign::scan_targets(
    const std::vector<const TargetSpec*>& specs) {
  // Materialize programs up front (image generation is deterministic and
  // cheap); then shard whole scans across the pool. Verification inside a
  // sharded scan stays serial — nesting pools would oversubscribe without
  // adding parallelism.
  std::vector<analysis::TargetProgram> progs;
  progs.reserve(specs.size());
  for (const TargetSpec* s : specs) {
    CRP_CHECK(s != nullptr && s->make_program != nullptr);
    progs.push_back(s->make_program());
  }
  exec::ThreadPool pool(opts_.jobs);
  return exec::parallel_map(
      pool, progs,
      [&](size_t, const analysis::TargetProgram& p) {
        return scan_program(p, /*verify_jobs=*/1);
      },
      "scan_target");
}

SehCorpus Campaign::extract(const std::vector<std::vector<u8>>& blobs) {
  return SehExtractStage::run({&blobs, opts_.jobs});
}

ClassifyOutcome Campaign::classify(const SehCorpus& corpus) {
  return FilterClassifyStage::run({&corpus, opts_.classify, opts_.jobs, store()});
}

std::vector<analysis::ModuleSehStats> Campaign::xref(
    const SehCorpus& corpus, const ClassifyOutcome& cls,
    const trace::Tracer* tracer, const os::Process* proc) {
  return CoverageXrefStage::run({&corpus.ex, &cls.filters, tracer, proc});
}

std::vector<std::vector<u8>> Campaign::dll_blobs(const TargetSpec& spec) {
  CRP_CHECK(spec.dll_specs != nullptr);
  std::vector<std::vector<u8>> blobs;
  for (const targets::DllSpec& s : spec.dll_specs())
    blobs.push_back(isa::write_image(*targets::generate_dll(s, spec.seed).image));
  return blobs;
}

std::vector<std::vector<u8>> Campaign::image_blobs(
    const std::vector<targets::GeneratedDll>& dlls) {
  std::vector<std::vector<u8>> blobs;
  blobs.reserve(dlls.size());
  for (const auto& d : dlls) blobs.push_back(isa::write_image(*d.image));
  return blobs;
}

void Campaign::materialize_api_corpus(const TargetSpec& spec, os::Kernel& kernel) {
  kernel.winapi().generate_population(spec.api.seed, spec.api.total,
                                      spec.api.ptr_fraction,
                                      spec.api.resistant_fraction);
}

ApiFuzzStage::Out Campaign::fuzz_apis(os::Kernel& kernel) {
  return ApiFuzzStage::run({&kernel, opts_.api_probes_per_arg, opts_.jobs, store()});
}

std::vector<analysis::ApiSiteInfo> Campaign::call_sites(
    const trace::Tracer& tracer, const std::set<u32>& crash_resistant,
    const os::Kernel& kernel, const os::Process& proc,
    const std::string& needle) {
  return CallSiteTraceStage::run({&tracer, &crash_resistant, &kernel, &proc, needle});
}

// --- target cells --------------------------------------------------------------

void TargetCell::run_step() {
  CRP_CHECK(next_ < steps_.size());
  obs::ScopedProfTarget prof_target(spec_.id);
  if (opts_.plan && next_ >= plan_step_base_) {
    // Shared epilogue: every class's funnel ends with plan_synth +
    // plan_verify when the campaign asked for plans.
    if (next_ == plan_step_base_) plan_synth_step();
    else plan_verify_step();
  } else {
    do_step(next_);
  }
  ++next_;
  if (next_ == steps_.size()) {
    report_.id = spec_.id;
    report_.cls = spec_.cls;
  }
}

namespace {

class ServerCell final : public TargetCell {
 public:
  ServerCell(const CampaignOptions& o, ArtifactStore* s, TargetSpec spec)
      : TargetCell(o, s, std::move(spec),
                   {"taint_trace", "candidates", "verify", "finalize"}) {}

  void on_park() override {
    if (funnel_) funnel_->park();
  }

 private:
  void do_step(size_t i) override {
    switch (i) {
      case 0: {
        CRP_CHECK(spec_.make_program != nullptr);
        prog_ = spec_.make_program();
        funnel_.emplace(opts_, store_, /*verify_jobs=*/0);
        funnel_->prog = &prog_;
        obs::ScopedProfTarget prof(prog_.name);
        funnel_->trace();
        break;
      }
      case 1: {
        obs::ScopedProfTarget prof(prog_.name);
        funnel_->resume();
        funnel_->candidates();
        break;
      }
      case 2: {
        obs::ScopedProfTarget prof(prog_.name);
        funnel_->resume();
        funnel_->verify();
        break;
      }
      case 3: {
        ServerScan& scan = funnel_->scan;
        report_.candidates = scan.result.candidates;
        report_.cache_hit = scan.cache_hit;
        int fps = 0;
        for (const auto& c : report_.candidates) {
          report_.usable += c.verdict == analysis::Verdict::kUsable ? 1 : 0;
          fps += c.verdict == analysis::Verdict::kFalsePositive ? 1 : 0;
        }
        report_.summary = strf(
            "%zu syscalls observed, %zu candidates, %d usable, %d false-positive",
            scan.result.observed.size(), report_.candidates.size(),
            report_.usable, fps);
        funnel_.reset();
        break;
      }
    }
  }

  analysis::TargetProgram prog_;
  std::optional<SyscallFunnel> funnel_;
};

class RuntimeCell final : public TargetCell {
 public:
  RuntimeCell(const CampaignOptions& o, ArtifactStore* s, TargetSpec spec)
      : TargetCell(o, s, std::move(spec), {"boot", "signal_scan", "finalize"}) {}

 private:
  void do_step(size_t i) override {
    switch (i) {
      case 0: {
        CRP_CHECK(spec_.make_program != nullptr);
        prog_ = spec_.make_program();
        kernel_ = std::make_unique<os::Kernel>();
        pid_ = prog_.instantiate(*kernel_, opts_.syscall.seed);
        kernel_->run(2'000'000);  // let startup install its signal handlers
        break;
      }
      case 1: {
        StageScope scope("signal_scan", prog_.name);
        handlers_ =
            analysis::SignalScanner::scan(kernel_->proc(pid_), opts_.classify);
        break;
      }
      case 2: {
        report_.candidates =
            analysis::SignalScanner::candidates(handlers_, prog_.name);
        for (const auto& h : handlers_)
          report_.usable +=
              h.verdict == analysis::FilterVerdict::kAcceptsAv ? 1 : 0;
        report_.summary =
            strf("%zu installed signal handlers, %d recovering (pc-editing)",
                 handlers_.size(), report_.usable);
        kernel_.reset();
        break;
      }
    }
  }

  analysis::TargetProgram prog_;
  std::unique_ptr<os::Kernel> kernel_;
  int pid_ = 0;
  std::vector<analysis::SignalHandlerInfo> handlers_;
};

class BrowserCell final : public TargetCell {
 public:
  BrowserCell(const CampaignOptions& o, ArtifactStore* s, TargetSpec spec)
      : TargetCell(o, s, std::move(spec),
                   {"browse", "seh_extract", "classify", "xref_veh", "finalize"}) {}

 private:
  void do_step(size_t i) override {
    switch (i) {
      case 0: {
        kernel_ = std::make_unique<os::Kernel>();
        targets::BrowserSim::Options bopts = browser_options(spec_);
        // Attach the tracer before startup so runtime VEH registrations
        // are observed (the §VII-A harvesting pass).
        bopts.defer_start = true;
        browser_ = std::make_unique<targets::BrowserSim>(*kernel_, bopts);
        tracer_ = std::make_unique<trace::Tracer>(*kernel_, browser_->proc());
        browser_->start();
        browser_->crawl();
        for (u64 site = 0; site < opts_.browse_pages; ++site)
          browser_->visit_page(site);
        browser_->pump(opts_.browse_budget);
        break;
      }
      case 1: {
        blobs_ = Campaign::image_blobs(browser_->dlls());
        corpus_ = SehExtractStage::run({&blobs_, opts_.jobs});
        break;
      }
      case 2: {
        cls_ = FilterClassifyStage::run(
            {&corpus_, opts_.classify, opts_.jobs, store_});
        break;
      }
      case 3: {
        std::vector<analysis::ModuleSehStats> stats = CoverageXrefStage::run(
            {&corpus_.ex, &cls_.filters, tracer_.get(), &browser_->proc()});
        report_.cache_hit = cls_.cache_hit;
        report_.candidates = analysis::CoverageXref::candidates(
            corpus_.ex, cls_.filters, tracer_.get(), &browser_->proc(),
            spec_.id);
        on_path_ = report_.candidates.size();

        veh_ = analysis::VehScanner::scan(*tracer_, browser_->proc(),
                                          opts_.classify);
        for (const auto& h : veh_)
          veh_usable_ +=
              h.verdict == analysis::FilterVerdict::kAcceptsAv ? 1 : 0;
        std::vector<analysis::Candidate> veh_cands =
            analysis::VehScanner::candidates(veh_, spec_.id);
        report_.candidates.insert(report_.candidates.end(), veh_cands.begin(),
                                  veh_cands.end());
        (void)stats;
        break;
      }
      case 4: {
        report_.usable = static_cast<int>(on_path_) + veh_usable_;
        report_.summary = strf(
            "%zu DLLs, %zu handlers, %zu unique filters, %zu guarded sites on "
            "path, %zu VEH (%d recovering)",
            browser_->dlls().size(), corpus_.ex.handlers().size(),
            corpus_.ex.unique_filters().size(), on_path_, veh_.size(),
            veh_usable_);
        tracer_.reset();
        browser_.reset();
        kernel_.reset();
        break;
      }
    }
  }

  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<targets::BrowserSim> browser_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::vector<std::vector<u8>> blobs_;
  SehCorpus corpus_;
  ClassifyOutcome cls_;
  std::vector<analysis::VehHandlerInfo> veh_;
  size_t on_path_ = 0;
  int veh_usable_ = 0;
};

class DllCorpusCell final : public TargetCell {
 public:
  DllCorpusCell(const CampaignOptions& o, ArtifactStore* s, TargetSpec spec)
      : TargetCell(o, s, std::move(spec),
                   {"generate", "seh_extract", "classify", "finalize"}) {}

 private:
  void do_step(size_t i) override {
    switch (i) {
      case 0: blobs_ = Campaign::dll_blobs(spec_); break;
      case 1: corpus_ = SehExtractStage::run({&blobs_, opts_.jobs}); break;
      case 2:
        cls_ = FilterClassifyStage::run(
            {&corpus_, opts_.classify, opts_.jobs, store_});
        break;
      case 3: {
        size_t av = 0;
        for (const auto& f : cls_.filters) {
          if (f.offset == isa::kFilterCatchAll) continue;
          av += f.verdict == analysis::FilterVerdict::kAcceptsAv ? 1 : 0;
        }
        report_.cache_hit = cls_.cache_hit;
        report_.usable = static_cast<int>(av);
        report_.summary =
            strf("%zu DLLs, %zu unique filters, %zu AV-capable after SB",
                 corpus_.ex.images().size(), corpus_.ex.unique_filters().size(),
                 av);
        break;
      }
    }
  }

  std::vector<std::vector<u8>> blobs_;
  SehCorpus corpus_;
  ClassifyOutcome cls_;
};

class ApiCorpusCell final : public TargetCell {
 public:
  ApiCorpusCell(const CampaignOptions& o, ArtifactStore* s, TargetSpec spec)
      : TargetCell(o, s, std::move(spec),
                   {"api_fuzz", "browse", "call_sites", "finalize"}) {}

 private:
  void do_step(size_t i) override {
    switch (i) {
      case 0: {
        kernel_ = std::make_unique<os::Kernel>();
        Campaign::materialize_api_corpus(spec_, *kernel_);
        fuzz_ = ApiFuzzStage::run(
            {kernel_.get(), opts_.api_probes_per_arg, opts_.jobs, store_});
        break;
      }
      case 1: {
        // The historical §V-B browsing workload: a ~6% uniform stub sample
        // of the pointer-arg population, 120 page visits on the IE analog
        // (seed 0xF0) — the rate that puts ~25 crash-resistant APIs on the
        // execution path.
        Rng rng(0xFA77);
        std::vector<u32> stub_ids;
        for (const auto& [id, s] : kernel_->winapi().all()) {
          if (id < os::kApiPopulationBase || !s.has_pointer_arg()) continue;
          if (rng.chance(0.0625)) stub_ids.push_back(id);
        }
        targets::BrowserSim::Options bopts;
        bopts.kind = targets::BrowserSim::Kind::kIE;
        bopts.seed = 0xF0;
        bopts.api_stub_ids = stub_ids;
        browser_ = std::make_unique<targets::BrowserSim>(*kernel_, bopts);
        tracer_ = std::make_unique<trace::Tracer>(*kernel_, browser_->proc());
        tracer_->set_record_mem_accesses(true);
        browser_->crawl();
        for (u64 site = 0; site < 120; ++site) browser_->visit_page(site);
        browser_->pump(2'000'000'000);
        break;
      }
      case 2: {
        sites_ = CallSiteTraceStage::run({tracer_.get(),
                                          &fuzz_.result.crash_resistant,
                                          kernel_.get(), &browser_->proc(),
                                          "jscript9"});
        for (const auto& s : sites_) {
          if (s.api_id < os::kApiPopulationBase) continue;
          on_path_.insert(s.api_id);
          if (s.exclusion == analysis::ExclusionReason::kNone)
            controllable_.insert(s.api_id);
        }
        break;
      }
      case 3: {
        report_.cache_hit = fuzz_.cache_hit;
        report_.candidates =
            analysis::ApiCallSiteTracer::candidates(sites_, spec_.id);
        report_.usable = static_cast<int>(controllable_.size());
        report_.summary = strf(
            "%u APIs -> %u with pointer args -> %zu crash-resistant -> %zu on "
            "path -> %zu controllable",
            fuzz_.result.total_apis, fuzz_.result.with_pointer_args,
            fuzz_.result.crash_resistant.size(), on_path_.size(),
            controllable_.size());
        tracer_.reset();
        browser_.reset();
        kernel_.reset();
        break;
      }
    }
  }

  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<targets::BrowserSim> browser_;
  std::unique_ptr<trace::Tracer> tracer_;
  ApiFuzzStage::Out fuzz_;
  std::vector<analysis::ApiSiteInfo> sites_;
  std::set<u32> on_path_, controllable_;
};

}  // namespace

std::unique_ptr<TargetCell> plan_target(const CampaignOptions& opts,
                                        ArtifactStore* store,
                                        const TargetSpec& spec) {
  switch (spec.cls) {
    case TargetClass::kLinuxServer:
      return std::make_unique<ServerCell>(opts, store, spec);
    case TargetClass::kManagedRuntime:
      return std::make_unique<RuntimeCell>(opts, store, spec);
    case TargetClass::kBrowser:
      return std::make_unique<BrowserCell>(opts, store, spec);
    case TargetClass::kDllCorpus:
      return std::make_unique<DllCorpusCell>(opts, store, spec);
    case TargetClass::kApiCorpus:
      return std::make_unique<ApiCorpusCell>(opts, store, spec);
  }
  CRP_PANIC("unknown target class");
}

std::unique_ptr<TargetCell> Campaign::plan(const TargetSpec& spec) const {
  return plan_target(opts_, store(), spec);
}

TargetReport Campaign::run_target(const TargetSpec& spec) {
  JobQueue q(JobQueueOptions{/*workers=*/0, store_});
  JobSpec js;
  js.target = spec;
  js.opts = opts_;
  JobResult r = q.wait(q.submit(std::move(js)));
  if (r.state == JobState::kFailed) throw std::runtime_error(r.error);
  return std::move(r.report);
}

std::vector<TargetReport> Campaign::run_all(const TargetRegistry& reg) {
  obs::Registry::global()
      .gauge("pipeline.campaign.targets_total")
      .set(static_cast<i64>(reg.all().size()));
  // One batch of equal-priority jobs on an inline queue: drained on this
  // thread in submission (= registration) order, exactly like the old
  // serial loop — just through the same engine the daemon uses.
  JobQueue q(JobQueueOptions{/*workers=*/0, store_});
  std::vector<JobId> ids;
  ids.reserve(reg.all().size());
  for (const TargetSpec& spec : reg.all()) {
    JobSpec js;
    js.target = spec;
    js.opts = opts_;
    ids.push_back(q.submit(std::move(js)));
  }
  std::vector<TargetReport> out;
  out.reserve(ids.size());
  for (JobId id : ids) {
    JobResult r = q.wait(id);
    if (r.state == JobState::kFailed) throw std::runtime_error(r.error);
    out.push_back(std::move(r.report));
  }
  return out;
}

}  // namespace crp::pipeline
