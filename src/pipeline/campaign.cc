#include "pipeline/campaign.h"

#include "analysis/signal_scanner.h"
#include "analysis/veh_scanner.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "util/rng.h"

namespace crp::pipeline {

targets::BrowserSim::Options browser_options(const TargetSpec& spec) {
  targets::BrowserSim::Options o;
  o.kind = spec.browser_kind;
  o.seed = spec.seed;
  o.filler_dlls = spec.filler_dlls;
  return o;
}

Campaign::Campaign(CampaignOptions opts, ArtifactStore* store)
    : opts_(opts), store_(store != nullptr ? store : &ArtifactStore::global()) {}

ArtifactKey Campaign::syscall_scan_key(const analysis::TargetProgram& prog) const {
  Hasher in;
  in.str(prog.name)
      .u64v(static_cast<u64>(prog.personality))
      .u64v(prog.port)
      .u64v(prog.images.size());
  for (const auto& img : prog.images) {
    std::vector<u8> bytes = isa::write_image(*img);
    in.u64v(bytes.size()).bytes(bytes.data(), bytes.size());
  }
  u64 cfg = Hasher()
                .u64v(opts_.syscall.discover_budget)
                .u64v(opts_.syscall.verify_budget)
                .u64v(opts_.syscall.check_service_liveness ? 1 : 0)
                .u64v(opts_.syscall.seed)
                .digest();
  return ArtifactKey{TaintTraceStage::kId, in.digest(), cfg};
}

ServerScan Campaign::scan_program(const analysis::TargetProgram& prog,
                                  int verify_jobs) {
  obs::ScopedProfTarget prof_target(prog.name);
  ServerScan out;
  out.name = prog.name;

  ArtifactKey key = syscall_scan_key(prog);
  ArtifactStore* st = store();
  std::string doc;
  if (st != nullptr && st->lookup(key, &doc) &&
      decode_syscall_scan(doc, &out.result)) {
    out.cache_hit = true;
    return out;
  }

  out.result = TaintTraceStage::run({&prog, opts_.syscall});
  std::vector<analysis::Candidate> cands =
      SyscallCandidateStage::run({&out.result});
  out.result.candidates = VerifyStage::run(
      {&prog, opts_.syscall, std::move(cands),
       verify_jobs != 0 ? verify_jobs : opts_.jobs});
  if (st != nullptr) st->store(key, encode_syscall_scan(out.result));
  return out;
}

ServerScan Campaign::scan_target(const TargetSpec& spec) {
  CRP_CHECK(spec.make_program != nullptr);
  analysis::TargetProgram prog = spec.make_program();
  return scan_program(prog);
}

std::vector<ServerScan> Campaign::scan_targets(
    const std::vector<const TargetSpec*>& specs) {
  // Materialize programs up front (image generation is deterministic and
  // cheap); then shard whole scans across the pool. Verification inside a
  // sharded scan stays serial — nesting pools would oversubscribe without
  // adding parallelism.
  std::vector<analysis::TargetProgram> progs;
  progs.reserve(specs.size());
  for (const TargetSpec* s : specs) {
    CRP_CHECK(s != nullptr && s->make_program != nullptr);
    progs.push_back(s->make_program());
  }
  exec::ThreadPool pool(opts_.jobs);
  return exec::parallel_map(
      pool, progs,
      [&](size_t, const analysis::TargetProgram& p) {
        return scan_program(p, /*verify_jobs=*/1);
      },
      "scan_target");
}

SehCorpus Campaign::extract(const std::vector<std::vector<u8>>& blobs) {
  return SehExtractStage::run({&blobs, opts_.jobs});
}

ClassifyOutcome Campaign::classify(const SehCorpus& corpus) {
  return FilterClassifyStage::run({&corpus, opts_.classify, opts_.jobs, store()});
}

std::vector<analysis::ModuleSehStats> Campaign::xref(
    const SehCorpus& corpus, const ClassifyOutcome& cls,
    const trace::Tracer* tracer, const os::Process* proc) {
  return CoverageXrefStage::run({&corpus.ex, &cls.filters, tracer, proc});
}

std::vector<std::vector<u8>> Campaign::dll_blobs(const TargetSpec& spec) {
  CRP_CHECK(spec.dll_specs != nullptr);
  std::vector<std::vector<u8>> blobs;
  for (const targets::DllSpec& s : spec.dll_specs())
    blobs.push_back(isa::write_image(*targets::generate_dll(s, spec.seed).image));
  return blobs;
}

std::vector<std::vector<u8>> Campaign::image_blobs(
    const std::vector<targets::GeneratedDll>& dlls) {
  std::vector<std::vector<u8>> blobs;
  blobs.reserve(dlls.size());
  for (const auto& d : dlls) blobs.push_back(isa::write_image(*d.image));
  return blobs;
}

void Campaign::materialize_api_corpus(const TargetSpec& spec, os::Kernel& kernel) {
  kernel.winapi().generate_population(spec.api.seed, spec.api.total,
                                      spec.api.ptr_fraction,
                                      spec.api.resistant_fraction);
}

ApiFuzzStage::Out Campaign::fuzz_apis(os::Kernel& kernel) {
  return ApiFuzzStage::run({&kernel, opts_.api_probes_per_arg, opts_.jobs, store()});
}

std::vector<analysis::ApiSiteInfo> Campaign::call_sites(
    const trace::Tracer& tracer, const std::set<u32>& crash_resistant,
    const os::Kernel& kernel, const os::Process& proc,
    const std::string& needle) {
  return CallSiteTraceStage::run({&tracer, &crash_resistant, &kernel, &proc, needle});
}

TargetReport Campaign::run_server(const TargetSpec& spec) {
  ServerScan scan = scan_target(spec);
  TargetReport rep;
  rep.candidates = scan.result.candidates;
  rep.cache_hit = scan.cache_hit;
  int fps = 0;
  for (const auto& c : rep.candidates) {
    rep.usable += c.verdict == analysis::Verdict::kUsable ? 1 : 0;
    fps += c.verdict == analysis::Verdict::kFalsePositive ? 1 : 0;
  }
  rep.summary = strf("%zu syscalls observed, %zu candidates, %d usable, %d false-positive",
                     scan.result.observed.size(), rep.candidates.size(),
                     rep.usable, fps);
  return rep;
}

TargetReport Campaign::run_runtime(const TargetSpec& spec) {
  CRP_CHECK(spec.make_program != nullptr);
  analysis::TargetProgram prog = spec.make_program();
  os::Kernel k;
  int pid = prog.instantiate(k, opts_.syscall.seed);
  k.run(2'000'000);  // let startup install its signal handlers

  std::vector<analysis::SignalHandlerInfo> handlers;
  {
    StageScope scope("signal_scan", prog.name);
    handlers = analysis::SignalScanner::scan(k.proc(pid), opts_.classify);
  }
  TargetReport rep;
  rep.candidates = analysis::SignalScanner::candidates(handlers, prog.name);
  for (const auto& h : handlers)
    rep.usable += h.verdict == analysis::FilterVerdict::kAcceptsAv ? 1 : 0;
  rep.summary = strf("%zu installed signal handlers, %d recovering (pc-editing)",
                     handlers.size(), rep.usable);
  return rep;
}

TargetReport Campaign::run_browser(const TargetSpec& spec) {
  os::Kernel kernel;
  targets::BrowserSim::Options bopts = browser_options(spec);
  // Attach the tracer before startup so runtime VEH registrations are
  // observed (the §VII-A harvesting pass).
  bopts.defer_start = true;
  targets::BrowserSim browser(kernel, bopts);
  trace::Tracer tracer(kernel, browser.proc());
  browser.start();
  browser.crawl();
  for (u64 site = 0; site < opts_.browse_pages; ++site) browser.visit_page(site);
  browser.pump(opts_.browse_budget);

  std::vector<std::vector<u8>> blobs = image_blobs(browser.dlls());
  SehCorpus corpus = extract(blobs);
  ClassifyOutcome cls = classify(corpus);
  std::vector<analysis::ModuleSehStats> stats =
      xref(corpus, cls, &tracer, &browser.proc());

  TargetReport rep;
  rep.cache_hit = cls.cache_hit;
  rep.candidates = analysis::CoverageXref::candidates(
      corpus.ex, cls.filters, &tracer, &browser.proc(), spec.id);
  size_t on_path = rep.candidates.size();

  std::vector<analysis::VehHandlerInfo> veh =
      analysis::VehScanner::scan(tracer, browser.proc(), opts_.classify);
  int veh_usable = 0;
  for (const auto& h : veh)
    veh_usable += h.verdict == analysis::FilterVerdict::kAcceptsAv ? 1 : 0;
  std::vector<analysis::Candidate> veh_cands =
      analysis::VehScanner::candidates(veh, spec.id);
  rep.candidates.insert(rep.candidates.end(), veh_cands.begin(), veh_cands.end());

  rep.usable = static_cast<int>(on_path) + veh_usable;
  rep.summary = strf(
      "%zu DLLs, %zu handlers, %zu unique filters, %zu guarded sites on path, "
      "%zu VEH (%d recovering)",
      browser.dlls().size(), corpus.ex.handlers().size(),
      corpus.ex.unique_filters().size(), on_path, veh.size(), veh_usable);
  (void)stats;
  return rep;
}

TargetReport Campaign::run_dll_corpus(const TargetSpec& spec) {
  std::vector<std::vector<u8>> blobs = dll_blobs(spec);
  SehCorpus corpus = extract(blobs);
  ClassifyOutcome cls = classify(corpus);
  size_t av = 0;
  for (const auto& f : cls.filters) {
    if (f.offset == isa::kFilterCatchAll) continue;
    av += f.verdict == analysis::FilterVerdict::kAcceptsAv ? 1 : 0;
  }
  TargetReport rep;
  rep.cache_hit = cls.cache_hit;
  rep.usable = static_cast<int>(av);
  rep.summary = strf("%zu DLLs, %zu unique filters, %zu AV-capable after SB",
                     corpus.ex.images().size(), corpus.ex.unique_filters().size(),
                     av);
  return rep;
}

TargetReport Campaign::run_api_corpus(const TargetSpec& spec) {
  os::Kernel kernel;
  materialize_api_corpus(spec, kernel);
  ApiFuzzStage::Out fuzz = fuzz_apis(kernel);

  // The historical §V-B browsing workload: a ~6% uniform stub sample of the
  // pointer-arg population, 120 page visits on the IE analog (seed 0xF0) —
  // the rate that puts ~25 crash-resistant APIs on the execution path.
  Rng rng(0xFA77);
  std::vector<u32> stub_ids;
  for (const auto& [id, s] : kernel.winapi().all()) {
    if (id < os::kApiPopulationBase || !s.has_pointer_arg()) continue;
    if (rng.chance(0.0625)) stub_ids.push_back(id);
  }
  targets::BrowserSim::Options bopts;
  bopts.kind = targets::BrowserSim::Kind::kIE;
  bopts.seed = 0xF0;
  bopts.api_stub_ids = stub_ids;
  targets::BrowserSim browser(kernel, bopts);
  trace::Tracer tracer(kernel, browser.proc());
  tracer.set_record_mem_accesses(true);
  browser.crawl();
  for (u64 site = 0; site < 120; ++site) browser.visit_page(site);
  browser.pump(2'000'000'000);

  std::vector<analysis::ApiSiteInfo> sites = call_sites(
      tracer, fuzz.result.crash_resistant, kernel, browser.proc(), "jscript9");
  std::set<u32> on_path, controllable;
  for (const auto& s : sites) {
    if (s.api_id < os::kApiPopulationBase) continue;
    on_path.insert(s.api_id);
    if (s.exclusion == analysis::ExclusionReason::kNone)
      controllable.insert(s.api_id);
  }

  TargetReport rep;
  rep.cache_hit = fuzz.cache_hit;
  rep.candidates = analysis::ApiCallSiteTracer::candidates(sites, spec.id);
  rep.usable = static_cast<int>(controllable.size());
  rep.summary = strf(
      "%u APIs -> %u with pointer args -> %zu crash-resistant -> %zu on path "
      "-> %zu controllable",
      fuzz.result.total_apis, fuzz.result.with_pointer_args,
      fuzz.result.crash_resistant.size(), on_path.size(), controllable.size());
  return rep;
}

TargetReport Campaign::run_target(const TargetSpec& spec) {
  obs::ScopedProfTarget prof_target(spec.id);
  TargetReport rep;
  switch (spec.cls) {
    case TargetClass::kLinuxServer: rep = run_server(spec); break;
    case TargetClass::kManagedRuntime: rep = run_runtime(spec); break;
    case TargetClass::kBrowser: rep = run_browser(spec); break;
    case TargetClass::kDllCorpus: rep = run_dll_corpus(spec); break;
    case TargetClass::kApiCorpus: rep = run_api_corpus(spec); break;
  }
  rep.id = spec.id;
  rep.cls = spec.cls;
  // Campaign progress, for the live telemetry endpoint (crptop renders
  // targets_run / targets_total).
  obs::Registry::global().counter("pipeline.campaign.targets_run").inc();
  return rep;
}

std::vector<TargetReport> Campaign::run_all(const TargetRegistry& reg) {
  obs::Registry::global()
      .gauge("pipeline.campaign.targets_total")
      .set(static_cast<i64>(reg.all().size()));
  std::vector<TargetReport> out;
  out.reserve(reg.all().size());
  for (const TargetSpec& spec : reg.all()) out.push_back(run_target(spec));
  return out;
}

}  // namespace crp::pipeline
