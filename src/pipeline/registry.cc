#include "pipeline/registry.h"

#include "targets/jvm.h"
#include "targets/servers.h"

namespace crp::pipeline {

const char* target_class_name(TargetClass c) {
  switch (c) {
    case TargetClass::kLinuxServer: return "linux-server";
    case TargetClass::kManagedRuntime: return "managed-runtime";
    case TargetClass::kBrowser: return "browser";
    case TargetClass::kDllCorpus: return "dll-corpus";
    case TargetClass::kApiCorpus: return "api-corpus";
  }
  return "?";
}

void TargetRegistry::add(TargetSpec spec) {
  CRP_CHECK(!spec.id.empty());
  if (find(spec.id) != nullptr) CRP_PANIC("duplicate target id: " + spec.id);
  targets_.push_back(std::move(spec));
}

const TargetSpec* TargetRegistry::find(std::string_view id) const {
  for (const TargetSpec& t : targets_)
    if (t.id == id) return &t;
  return nullptr;
}

std::vector<const TargetSpec*> TargetRegistry::of_class(TargetClass c) const {
  std::vector<const TargetSpec*> out;
  for (const TargetSpec& t : targets_)
    if (t.cls == c) out.push_back(&t);
  return out;
}

namespace {

TargetSpec server(const char* name, analysis::TargetProgram (*make)(),
                  const char* desc) {
  TargetSpec s;
  s.id = std::string("server/") + name;
  s.cls = TargetClass::kLinuxServer;
  s.personality = vm::Personality::kLinux;
  s.description = desc;
  s.make_program = make;
  return s;
}

}  // namespace

TargetRegistry TargetRegistry::builtin() {
  TargetRegistry reg;

  // Table I column order.
  reg.add(server("nginx_sim", targets::make_nginx,
                 "event-driven HTTP server, heap ngx_buf_t recv buffers"));
  reg.add(server("cherokee_sim", targets::make_cherokee,
                 "threaded HTTP server, 1 s epoll_wait poll loops"));
  reg.add(server("lighttpd_sim", targets::make_lighttpd,
                 "single-process read-loop HTTP server"));
  reg.add(server("memcached_sim", targets::make_memcached,
                 "per-connection threads (the Table I false positive)"));
  reg.add(server("postgres_sim", targets::make_postgres,
                 "worker-process-per-connection database"));

  {
    TargetSpec s;
    s.id = "runtime/jvm_sim";
    s.cls = TargetClass::kManagedRuntime;
    s.personality = vm::Personality::kLinux;
    s.description = "managed runtime, SIGSEGV-recovering implicit null checks";
    s.make_program = targets::make_jvm;
    reg.add(std::move(s));
  }

  {
    TargetSpec s;
    s.id = "browser/iexplore_sim";
    s.cls = TargetClass::kBrowser;
    s.personality = vm::Personality::kWindows;
    s.description = "IE 11 analog over the named system-DLL corpus (Table II)";
    s.browser_kind = targets::BrowserSim::Kind::kIE;
    s.seed = 0x7AB1E2;  // the historical bench_table2 seed
    reg.add(std::move(s));
  }
  {
    TargetSpec s;
    s.id = "browser/firefox_sim";
    s.cls = TargetClass::kBrowser;
    s.personality = vm::Personality::kWindows;
    s.description = "Firefox 46 analog, runtime-registered VEH + poll thread";
    s.browser_kind = targets::BrowserSim::Kind::kFirefox;
    s.seed = 0xF1FE;
    reg.add(std::move(s));
  }
  {
    TargetSpec s;
    s.id = "browser/iexplore_sys187";
    s.cls = TargetClass::kBrowser;
    s.personality = vm::Personality::kWindows;
    s.description = "system-wide 187-DLL browser corpus (the §V-C funnel)";
    s.browser_kind = targets::BrowserSim::Kind::kIE;
    s.seed = 0x5EF;       // the historical bench_seh_funnel seed
    s.filler_dlls = 177;  // 10 named DLLs + 177 fillers = 187
    reg.add(std::move(s));
  }

  {
    TargetSpec s;
    s.id = "corpus/dll_x64";
    s.cls = TargetClass::kDllCorpus;
    s.personality = vm::Personality::kWindows;
    s.description = "Table III x64 system-DLL population";
    s.seed = 0x7AB1E3;  // the historical bench_table3 seed
    s.dll_specs = [] { return targets::paper_dll_specs(); };
    reg.add(std::move(s));
  }
  {
    TargetSpec s;
    s.id = "corpus/dll_x32";
    s.cls = TargetClass::kDllCorpus;
    s.personality = vm::Personality::kWindows;
    s.description = "Table III x32 system-DLL population";
    s.seed = 0x7AB1E3 ^ 32;
    s.dll_specs = [] { return targets::paper_dll_specs_x32(); };
    reg.add(std::move(s));
  }

  {
    TargetSpec s;
    s.id = "corpus/winapi";
    s.cls = TargetClass::kApiCorpus;
    s.personality = vm::Personality::kWindows;
    s.description = "documented Windows API surface, paper §V-B composition";
    // 20,672 documented APIs; 11,521/20,672 with pointer args; 400/11,521
    // crash-resistant — the historical bench_api_funnel parameters.
    s.api = ApiCorpusSpec{0xA91, 20672, 0.5573, 0.0347};
    reg.add(std::move(s));
  }

  return reg;
}

}  // namespace crp::pipeline
