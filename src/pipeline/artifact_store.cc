#include "pipeline/artifact_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/obs.h"
#include "obs/trace.h"

namespace crp::pipeline {

u64 hash_bytes(const void* data, size_t n, u64 seed) {
  const u8* p = static_cast<const u8*>(data);
  u64 h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001b3ull;  // FNV prime
  }
  return h;
}

std::string ArtifactKey::str() const {
  return strf("%s-%016llx-%016llx", stage.c_str(),
              static_cast<unsigned long long>(input_hash),
              static_cast<unsigned long long>(config_hash));
}

namespace {

// On-disk artifact header: 8-byte magic + 8-byte little-endian FNV-1a of
// the payload. Anything that fails validation (legacy headerless files
// included) is treated as corruption: detected, counted, recomputed.
constexpr char kDiskMagic[8] = {'C', 'R', 'P', 'A', 'R', 'T', '1', '\0'};
constexpr size_t kDiskHeader = 16;

void put_le64(char* out, u64 v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

u64 get_le64(const char* in) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(static_cast<u8>(in[i])) << (8 * i);
  return v;
}

thread_local std::string t_cache_tenant;

}  // namespace

ScopedCacheTenant::ScopedCacheTenant(std::string tenant)
    : saved_(std::move(t_cache_tenant)) {
  t_cache_tenant = std::move(tenant);
}

ScopedCacheTenant::~ScopedCacheTenant() { t_cache_tenant = std::move(saved_); }

const std::string& ScopedCacheTenant::current() { return t_cache_tenant; }

ArtifactStore::ArtifactStore()
    : c_hits_(&obs::Registry::global().counter("pipeline.cache.hits")),
      c_misses_(&obs::Registry::global().counter("pipeline.cache.misses")),
      c_stores_(&obs::Registry::global().counter("pipeline.cache.stores")),
      c_corrupt_(&obs::Registry::global().counter("pipeline.cache.corrupt")),
      c_evictions_(&obs::Registry::global().counter("pipeline.cache.evictions")),
      chaos_(chaos::make_stream(chaos::kCachePoints)) {
  if (const char* env = std::getenv("CRP_CACHE")) {
    if (env[0] == '0' && env[1] == '\0') enabled_ = false;
  }
  if (const char* env = std::getenv("CRP_CACHE_DIR")) {
    if (env[0] != '\0') set_dir(env);
  }
  if (const char* env = std::getenv("CRP_CACHE_MAX_MB")) {
    char* end = nullptr;
    unsigned long long mb = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') disk_cap_bytes_ = mb * 1024ull * 1024ull;
  }
}

ArtifactStore::Shard& ArtifactStore::shard_for(const std::string& name) {
  return shards_[hash_bytes(name.data(), name.size()) % kShards];
}

const ArtifactStore::Shard& ArtifactStore::shard_for(const std::string& name) const {
  return shards_[hash_bytes(name.data(), name.size()) % kShards];
}

void ArtifactStore::set_dir(std::string dir) {
  std::lock_guard<std::mutex> lk(disk_mu_);
  dir_ = std::move(dir);
  disk_scanned_ = false;  // the LRU index belongs to the old directory
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best-effort: a failed
    if (ec) dir_.clear();  // disk tier degrades to memory-only, never throws
  }
}

void ArtifactStore::set_max_disk_bytes(u64 cap) {
  std::lock_guard<std::mutex> lk(disk_mu_);
  disk_cap_bytes_ = cap;
  disk_scanned_ = false;  // rebuild the index under the new cap
}

std::string ArtifactStore::disk_path(const std::string& name) const {
  return dir_ + "/" + name + ".artifact";
}

ArtifactStore::TenantStat* ArtifactStore::tenant_stat_locked(const std::string& t) {
  auto it = tenants_.find(t);
  if (it == tenants_.end()) {
    // Cap the attributed-tenant set: tenant names are client-minted, and
    // each attributed tenant materializes two registry counters that live
    // forever. Beyond the cap, traffic still counts globally — it just
    // stops being broken out per tenant.
    if (tenants_.size() >= kMaxAttributedTenants) return nullptr;
    it = tenants_.emplace(t, TenantStat{}).first;
    it->second.c_hits = &obs::Registry::global().counter(
        strf("pipeline.cache.tenant.%s.hits", t.c_str()));
    it->second.c_misses = &obs::Registry::global().counter(
        strf("pipeline.cache.tenant.%s.misses", t.c_str()));
  }
  return &it->second;
}

void ArtifactStore::count_hit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  c_hits_->inc();
  const std::string& t = ScopedCacheTenant::current();
  if (t.empty()) return;
  std::lock_guard<std::mutex> lk(tenant_mu_);
  TenantStat* ts = tenant_stat_locked(t);
  if (ts == nullptr) return;
  ts->hits++;
  ts->c_hits->inc();
}

void ArtifactStore::count_miss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  c_misses_->inc();
  const std::string& t = ScopedCacheTenant::current();
  if (t.empty()) return;
  std::lock_guard<std::mutex> lk(tenant_mu_);
  TenantStat* ts = tenant_stat_locked(t);
  if (ts == nullptr) return;
  ts->misses++;
  ts->c_misses->inc();
}

u64 ArtifactStore::tenant_hits(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(tenant_mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.hits;
}

u64 ArtifactStore::tenant_misses(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(tenant_mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.misses;
}

bool ArtifactStore::disk_read(const std::string& name, std::string* payload) {
  // Blocking file I/O — never called with a shard lock held; the caller
  // holds the key's inflight lease instead, which keeps single-reader
  // semantics without stalling unrelated keys in the shard.
  std::string path;
  {
    std::lock_guard<std::mutex> dlk(disk_mu_);
    if (dir_.empty()) return false;
    path = disk_path(name);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string raw = ss.str();
  in.close();

  // Chaos: damage the blob as a failing disk would, keyed by the artifact
  // key so the decision is schedule-independent.
  {
    std::lock_guard<std::mutex> clk(chaos_mu_);
    u64 kh = hash_bytes(name.data(), name.size());
    if (!raw.empty() && chaos_.fire_keyed(chaos::Point::kCacheTruncate, kh))
      raw.resize(chaos_.draw(chaos::Point::kCacheTruncate) % raw.size());
    if (!raw.empty() && chaos_.fire_keyed(chaos::Point::kCacheCorrupt, kh)) {
      u64 d = chaos_.draw(chaos::Point::kCacheCorrupt);
      raw[d % raw.size()] ^= static_cast<char>(0x80u | (d >> 56));
    }
  }

  bool valid = raw.size() >= kDiskHeader &&
               std::memcmp(raw.data(), kDiskMagic, sizeof kDiskMagic) == 0 &&
               get_le64(raw.data() + 8) ==
                   hash_bytes(raw.data() + kDiskHeader, raw.size() - kDiskHeader);
  if (!valid) {
    // Detected corruption (or a pre-checksum legacy file): drop it so the
    // recomputed artifact replaces it, and fall through to a miss.
    std::remove(path.c_str());
    disk_forget(name);
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    c_corrupt_->inc();
    return false;
  }
  *payload = raw.substr(kDiskHeader);
  disk_touch(name);
  return true;
}

bool ArtifactStore::lookup(const ArtifactKey& key, std::string* value) {
  if (!enabled_) return false;
  std::string name = key.str();
  Shard& sh = shard_for(name);
  bool probe_disk = false;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.mem.find(name);
    if (it != sh.mem.end()) {
      *value = it->second;
      count_hit();
      return true;
    }
    // Probe the disk tier only when no writer (or disk reader) is in
    // flight for the key; take the lease so the read happens unlocked.
    if (sh.inflight.count(name) == 0) {
      sh.inflight.insert(name);
      probe_disk = true;
    }
  }
  if (probe_disk) {
    std::string payload;
    bool found = disk_read(name, &payload);
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.inflight.erase(name);
    sh.cv.notify_all();
    if (found) {
      sh.mem[name] = payload;
      *value = std::move(payload);
      count_hit();
      return true;
    }
    // A store() may have published while we probed the disk.
    auto it = sh.mem.find(name);
    if (it != sh.mem.end()) {
      *value = it->second;
      count_hit();
      return true;
    }
  }
  count_miss();
  return false;
}

Acquire ArtifactStore::acquire(const ArtifactKey& key, std::string* value) {
  obs::JobTracer& jt = obs::JobTracer::global();
  obs::TraceJobCtx ctx = obs::current_trace_job();
  if (ctx.trace == 0 || !jt.armed()) {
    bool waited = false;
    return acquire_impl(key, value, &waited);
  }
  u64 t0 = obs::trace_now_ns();
  bool waited = false;
  Acquire a = acquire_impl(key, value, &waited);
  u64 t1 = obs::trace_now_ns();
  // arg identifies the artifact; label the producing stage. The span set a
  // job emits depends only on (key, store state), never on worker count.
  u64 kh = key.input_hash ^ key.config_hash;
  u32 label = jt.intern(key.stage);
  if (waited)
    jt.record(ctx.trace, ctx.job, obs::SpanKind::kLeaseWait, label, kh, t0, t1);
  if (a == Acquire::kOwner) {
    jt.record(ctx.trace, ctx.job, obs::SpanKind::kLeaseAcquire, label, kh, t0, t1);
    jt.lease_begin(ctx.trace, kh, key.stage);
  } else if (a == Acquire::kHit) {
    jt.record(ctx.trace, ctx.job, obs::SpanKind::kLeaseCoalesce, label, kh, t0, t1);
  }
  return a;
}

Acquire ArtifactStore::acquire_impl(const ArtifactKey& key, std::string* value,
                                    bool* waited) {
  if (!enabled_) return Acquire::kBypass;
  std::string name = key.str();
  Shard& sh = shard_for(name);
  std::unique_lock<std::mutex> lk(sh.mu);
  for (;;) {
    auto it = sh.mem.find(name);
    if (it != sh.mem.end()) {
      *value = it->second;
      count_hit();
      return Acquire::kHit;
    }
    if (sh.inflight.count(name) == 0) {
      // No writer in flight: take the lease, then check the disk tier with
      // the shard unlocked (the lease keeps readers/writers single-file).
      sh.inflight.insert(name);
      lk.unlock();
      std::string payload;
      bool found = disk_read(name, &payload);
      lk.lock();
      if (found) {
        sh.mem[name] = payload;
        *value = std::move(payload);
        sh.inflight.erase(name);
        sh.cv.notify_all();
        count_hit();
        return Acquire::kHit;
      }
      // A store() may have published while the disk probe ran.
      it = sh.mem.find(name);
      if (it != sh.mem.end()) {
        *value = it->second;
        sh.inflight.erase(name);
        sh.cv.notify_all();
        count_hit();
        return Acquire::kHit;
      }
      count_miss();
      return Acquire::kOwner;
    }
    // A writer is computing this key. Wait for finish (memory-tier hit) or
    // abort (the loop retakes the lease and recomputes).
    *waited = true;
    sh.cv.wait(lk, [&] {
      return sh.inflight.count(name) == 0 || sh.mem.count(name) != 0;
    });
  }
}

void ArtifactStore::finish(const ArtifactKey& key, const std::string& value) {
  store(key, value);
  release_claim(key.str());
  obs::JobTracer& jt = obs::JobTracer::global();
  if (jt.armed()) jt.lease_end(obs::current_trace_job().trace);
}

void ArtifactStore::abort_claim(const ArtifactKey& key) {
  release_claim(key.str());
  obs::JobTracer& jt = obs::JobTracer::global();
  if (jt.armed()) jt.lease_end(obs::current_trace_job().trace);
}

void ArtifactStore::release_claim(const std::string& name) {
  Shard& sh = shard_for(name);
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.inflight.erase(name);
  sh.cv.notify_all();
}

void ArtifactStore::store(const ArtifactKey& key, const std::string& value) {
  if (!enabled_) return;
  std::string name = key.str();
  Shard& sh = shard_for(name);
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.mem[name] = value;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  c_stores_->inc();
  // Disk publish happens outside the shard lock: one slow write must not
  // stall memory-tier hits on unrelated keys in the shard. Concurrent
  // stores of the same key write identical bytes (keys are content
  // addresses), so ordering does not matter.
  disk_store(name, value);
}

void ArtifactStore::disk_store(const std::string& name, const std::string& value) {
  std::string final_path;
  {
    std::lock_guard<std::mutex> dlk(disk_mu_);
    if (dir_.empty()) return;
    final_path = disk_path(name);
  }
  // Write-then-rename so a concurrent reader never sees a torn artifact.
  std::string tmp_path = final_path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) return;
  char header[kDiskHeader];
  std::memcpy(header, kDiskMagic, sizeof kDiskMagic);
  put_le64(header + 8, hash_bytes(value.data(), value.size()));
  out.write(header, sizeof header);
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
  out.close();
  bool rename_fail;
  {
    std::lock_guard<std::mutex> clk(chaos_mu_);
    u64 kh = hash_bytes(name.data(), name.size());
    rename_fail = chaos_.fire_keyed(chaos::Point::kCacheRenameFail, kh);
  }
  if (rename_fail) {
    // Chaos: the publish rename "fails" — the artifact must survive in
    // memory only and the next cold process recomputes it.
    std::remove(tmp_path.c_str());
  } else if (out.good()) {
    std::rename(tmp_path.c_str(), final_path.c_str());
    disk_add_and_evict(name, kDiskHeader + value.size());
  } else {
    std::remove(tmp_path.c_str());
  }
}

// --- disk LRU -----------------------------------------------------------------

void ArtifactStore::disk_index_scan_locked() {
  if (disk_scanned_) return;
  disk_scanned_ = true;
  disk_lru_.clear();
  disk_index_.clear();
  disk_total_bytes_ = 0;
  if (dir_.empty() || disk_cap_bytes_ == 0) return;
  // Seed recency from mtimes (name as tie-break, for determinism when a
  // whole directory was written within one clock tick).
  struct Entry {
    std::filesystem::file_time_type mtime;
    std::string name;
    size_t bytes;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (auto& de : std::filesystem::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!de.is_regular_file(ec)) continue;
    std::string fname = de.path().filename().string();
    constexpr std::string_view kSuffix = ".artifact";
    if (fname.size() <= kSuffix.size() ||
        fname.compare(fname.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0)
      continue;
    std::error_code sec;
    auto sz = de.file_size(sec);
    if (sec) continue;
    auto mt = de.last_write_time(sec);
    if (sec) mt = std::filesystem::file_time_type::min();
    entries.push_back({mt, fname.substr(0, fname.size() - kSuffix.size()),
                       static_cast<size_t>(sz)});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });
  for (Entry& e : entries) {
    disk_lru_.push_back(e.name);
    disk_index_[e.name] = {std::prev(disk_lru_.end()), e.bytes};
    disk_total_bytes_ += e.bytes;
  }
}

void ArtifactStore::disk_touch(const std::string& name) {
  std::lock_guard<std::mutex> lk(disk_mu_);
  if (disk_cap_bytes_ == 0) return;
  disk_index_scan_locked();
  auto it = disk_index_.find(name);
  if (it == disk_index_.end()) return;
  disk_lru_.splice(disk_lru_.end(), disk_lru_, it->second.first);
}

void ArtifactStore::disk_forget(const std::string& name) {
  std::lock_guard<std::mutex> lk(disk_mu_);
  if (disk_cap_bytes_ == 0) return;
  disk_index_scan_locked();
  auto it = disk_index_.find(name);
  if (it == disk_index_.end()) return;
  disk_total_bytes_ -= it->second.second;
  disk_lru_.erase(it->second.first);
  disk_index_.erase(it);
}

void ArtifactStore::disk_add_and_evict(const std::string& name, size_t bytes) {
  std::lock_guard<std::mutex> lk(disk_mu_);
  if (disk_cap_bytes_ == 0) return;
  disk_index_scan_locked();
  auto it = disk_index_.find(name);
  if (it != disk_index_.end()) {
    disk_total_bytes_ -= it->second.second;
    it->second.second = bytes;
    disk_lru_.splice(disk_lru_.end(), disk_lru_, it->second.first);
  } else {
    disk_lru_.push_back(name);
    disk_index_[name] = {std::prev(disk_lru_.end()), bytes};
  }
  disk_total_bytes_ += bytes;
  // Evict coldest-first until under the cap; the key just written is never
  // evicted (a cache that drops what it just stored thrashes forever).
  while (disk_total_bytes_ > disk_cap_bytes_ && !disk_lru_.empty()) {
    const std::string& victim = disk_lru_.front();
    if (victim == name) break;  // everything colder is gone; over-cap by one
    std::remove(disk_path(victim).c_str());
    auto vit = disk_index_.find(victim);
    disk_total_bytes_ -= vit->second.second;
    disk_index_.erase(vit);
    disk_lru_.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    c_evictions_->inc();
  }
}

size_t ArtifactStore::size() const {
  size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    n += sh.mem.size();
  }
  return n;
}

void ArtifactStore::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.mem.clear();  // active leases (inflight) are left intact
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  stores_.store(0, std::memory_order_relaxed);
  corrupt_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(tenant_mu_);
  for (auto& [t, ts] : tenants_) {
    ts.hits = 0;
    ts.misses = 0;
  }
}

ArtifactStore& ArtifactStore::global() {
  static ArtifactStore store;
  return store;
}

}  // namespace crp::pipeline
