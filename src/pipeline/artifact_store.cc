#include "pipeline/artifact_store.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.h"

namespace crp::pipeline {

u64 hash_bytes(const void* data, size_t n, u64 seed) {
  const u8* p = static_cast<const u8*>(data);
  u64 h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001b3ull;  // FNV prime
  }
  return h;
}

std::string ArtifactKey::str() const {
  return strf("%s-%016llx-%016llx", stage.c_str(),
              static_cast<unsigned long long>(input_hash),
              static_cast<unsigned long long>(config_hash));
}

namespace {

// On-disk artifact header: 8-byte magic + 8-byte little-endian FNV-1a of
// the payload. Anything that fails validation (legacy headerless files
// included) is treated as corruption: detected, counted, recomputed.
constexpr char kDiskMagic[8] = {'C', 'R', 'P', 'A', 'R', 'T', '1', '\0'};
constexpr size_t kDiskHeader = 16;

void put_le64(char* out, u64 v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

u64 get_le64(const char* in) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(static_cast<u8>(in[i])) << (8 * i);
  return v;
}

}  // namespace

ArtifactStore::ArtifactStore()
    : c_hits_(&obs::Registry::global().counter("pipeline.cache.hits")),
      c_misses_(&obs::Registry::global().counter("pipeline.cache.misses")),
      c_stores_(&obs::Registry::global().counter("pipeline.cache.stores")),
      c_corrupt_(&obs::Registry::global().counter("pipeline.cache.corrupt")),
      chaos_(chaos::make_stream(chaos::kCachePoints)) {
  if (const char* env = std::getenv("CRP_CACHE")) {
    if (env[0] == '0' && env[1] == '\0') enabled_ = false;
  }
  if (const char* env = std::getenv("CRP_CACHE_DIR")) {
    if (env[0] != '\0') set_dir(env);
  }
}

void ArtifactStore::set_dir(std::string dir) {
  std::lock_guard<std::mutex> lk(mu_);
  dir_ = std::move(dir);
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best-effort: a failed
    if (ec) dir_.clear();  // disk tier degrades to memory-only, never throws
  }
}

std::string ArtifactStore::disk_path(const ArtifactKey& key) const {
  return dir_ + "/" + key.str() + ".artifact";
}

bool ArtifactStore::lookup(const ArtifactKey& key, std::string* value) {
  if (!enabled_) return false;
  std::string name = key.str();
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = mem_.find(name);
    if (it != mem_.end()) {
      *value = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      c_hits_->inc();
      return true;
    }
    if (!dir_.empty()) {
      std::ifstream in(disk_path(key), std::ios::binary);
      if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string raw = ss.str();

        // Chaos: damage the blob as a failing disk would, keyed by the
        // artifact key so the decision is schedule-independent.
        u64 kh = hash_bytes(name.data(), name.size());
        if (!raw.empty() && chaos_.fire_keyed(chaos::Point::kCacheTruncate, kh))
          raw.resize(chaos_.draw(chaos::Point::kCacheTruncate) % raw.size());
        if (!raw.empty() && chaos_.fire_keyed(chaos::Point::kCacheCorrupt, kh)) {
          u64 d = chaos_.draw(chaos::Point::kCacheCorrupt);
          raw[d % raw.size()] ^= static_cast<char>(0x80u | (d >> 56));
        }

        bool valid = raw.size() >= kDiskHeader &&
                     std::memcmp(raw.data(), kDiskMagic, sizeof kDiskMagic) == 0 &&
                     get_le64(raw.data() + 8) ==
                         hash_bytes(raw.data() + kDiskHeader, raw.size() - kDiskHeader);
        if (valid) {
          mem_[name] = raw.substr(kDiskHeader);
          *value = mem_[name];
          hits_.fetch_add(1, std::memory_order_relaxed);
          c_hits_->inc();
          return true;
        }
        // Detected corruption (or a pre-checksum legacy file): drop it so
        // the recomputed artifact replaces it, and fall through to a miss.
        in.close();
        std::remove(disk_path(key).c_str());
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        c_corrupt_->inc();
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  c_misses_->inc();
  return false;
}

void ArtifactStore::store(const ArtifactKey& key, const std::string& value) {
  if (!enabled_) return;
  std::string name = key.str();
  std::lock_guard<std::mutex> lk(mu_);
  mem_[name] = value;
  stores_.fetch_add(1, std::memory_order_relaxed);
  c_stores_->inc();
  if (!dir_.empty()) {
    // Write-then-rename so a concurrent reader never sees a torn artifact.
    std::string final_path = disk_path(key);
    std::string tmp_path = final_path + ".tmp";
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (out) {
      char header[kDiskHeader];
      std::memcpy(header, kDiskMagic, sizeof kDiskMagic);
      put_le64(header + 8, hash_bytes(value.data(), value.size()));
      out.write(header, sizeof header);
      out.write(value.data(), static_cast<std::streamsize>(value.size()));
      out.close();
      u64 kh = hash_bytes(name.data(), name.size());
      if (chaos_.fire_keyed(chaos::Point::kCacheRenameFail, kh)) {
        // Chaos: the publish rename "fails" — the artifact must survive in
        // memory only and the next cold process recomputes it.
        std::remove(tmp_path.c_str());
      } else if (out.good()) {
        std::rename(tmp_path.c_str(), final_path.c_str());
      } else {
        std::remove(tmp_path.c_str());
      }
    }
  }
}

size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return mem_.size();
}

void ArtifactStore::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  mem_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  stores_.store(0, std::memory_order_relaxed);
  corrupt_.store(0, std::memory_order_relaxed);
}

ArtifactStore& ArtifactStore::global() {
  static ArtifactStore store;
  return store;
}

}  // namespace crp::pipeline
