#include "pipeline/artifact_store.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.h"

namespace crp::pipeline {

u64 hash_bytes(const void* data, size_t n, u64 seed) {
  const u8* p = static_cast<const u8*>(data);
  u64 h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001b3ull;  // FNV prime
  }
  return h;
}

std::string ArtifactKey::str() const {
  return strf("%s-%016llx-%016llx", stage.c_str(),
              static_cast<unsigned long long>(input_hash),
              static_cast<unsigned long long>(config_hash));
}

ArtifactStore::ArtifactStore()
    : c_hits_(&obs::Registry::global().counter("pipeline.cache.hits")),
      c_misses_(&obs::Registry::global().counter("pipeline.cache.misses")),
      c_stores_(&obs::Registry::global().counter("pipeline.cache.stores")) {
  if (const char* env = std::getenv("CRP_CACHE")) {
    if (env[0] == '0' && env[1] == '\0') enabled_ = false;
  }
  if (const char* env = std::getenv("CRP_CACHE_DIR")) {
    if (env[0] != '\0') set_dir(env);
  }
}

void ArtifactStore::set_dir(std::string dir) {
  std::lock_guard<std::mutex> lk(mu_);
  dir_ = std::move(dir);
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best-effort: a failed
    if (ec) dir_.clear();  // disk tier degrades to memory-only, never throws
  }
}

std::string ArtifactStore::disk_path(const ArtifactKey& key) const {
  return dir_ + "/" + key.str() + ".artifact";
}

bool ArtifactStore::lookup(const ArtifactKey& key, std::string* value) {
  if (!enabled_) return false;
  std::string name = key.str();
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = mem_.find(name);
    if (it != mem_.end()) {
      *value = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      c_hits_->inc();
      return true;
    }
    if (!dir_.empty()) {
      std::ifstream in(disk_path(key), std::ios::binary);
      if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        mem_[name] = ss.str();
        *value = mem_[name];
        hits_.fetch_add(1, std::memory_order_relaxed);
        c_hits_->inc();
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  c_misses_->inc();
  return false;
}

void ArtifactStore::store(const ArtifactKey& key, const std::string& value) {
  if (!enabled_) return;
  std::string name = key.str();
  std::lock_guard<std::mutex> lk(mu_);
  mem_[name] = value;
  stores_.fetch_add(1, std::memory_order_relaxed);
  c_stores_->inc();
  if (!dir_.empty()) {
    // Write-then-rename so a concurrent reader never sees a torn artifact.
    std::string final_path = disk_path(key);
    std::string tmp_path = final_path + ".tmp";
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(value.data(), static_cast<std::streamsize>(value.size()));
      out.close();
      if (out.good()) {
        std::rename(tmp_path.c_str(), final_path.c_str());
      } else {
        std::remove(tmp_path.c_str());
      }
    }
  }
}

size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return mem_.size();
}

void ArtifactStore::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  mem_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  stores_.store(0, std::memory_order_relaxed);
}

ArtifactStore& ArtifactStore::global() {
  static ArtifactStore store;
  return store;
}

}  // namespace crp::pipeline
