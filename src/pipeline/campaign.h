// crp::pipeline::Campaign — the staged engine that runs registry targets
// through the paper's funnels.
//
// A Campaign owns the cross-cutting concerns every driver used to re-plumb
// by hand: worker-count resolution (the exec pool), the content-addressed
// ArtifactStore, and consistent stage options. Drivers stay declarative —
// pick targets from the registry, call the funnel entry points, print.
//
// Funnel entry points compose the typed stages of stages.h:
//   scan_program / scan_target(s)  TaintTrace -> SyscallCandidate -> Verify,
//                                  whole-scan cached by target content
//   extract / classify / xref      SehExtract -> FilterClassify (cached) ->
//                                  CoverageXref
//   fuzz_apis / call_sites         ApiFuzz (cached) -> CallSiteTrace
//   run_target / run_all           the class-appropriate funnel end-to-end,
//                                  one TargetReport per subject
//
// Determinism contract (inherited from crp::exec and the scanners): every
// funnel number and rendered table is bit-identical for any job count and
// for any cache state — a warm campaign replays *exactly* the cold run's
// results, just faster.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pipeline/registry.h"
#include "pipeline/stages.h"
#include "plan/replay.h"

namespace crp::pipeline {

struct CampaignOptions {
  /// Worker count for every pooled stage (exec::resolve_jobs semantics).
  int jobs = 0;
  /// Set false to bypass the ArtifactStore for this campaign regardless of
  /// CRP_CACHE (the store's own switch still applies when true).
  bool cache = true;
  analysis::SyscallScanOptions syscall;
  analysis::ClassifyOptions classify;
  int api_probes_per_arg = 3;
  /// Browser-funnel workload size (page visits after the crawl).
  u64 browse_pages = 500;
  u64 browse_budget = 2'500'000'000;
  /// Append the exploit-plan epilogue (plan_synth + plan_verify steps) to
  /// every target's funnel: synthesize an ExploitPlan from the verified
  /// candidates, then replay it against a fresh target instance
  /// (examples/campaign CRP_PLAN=1, the crpd `plan` knob, tools/planrun).
  bool plan = false;
  /// Replay-harness scan window / hidden-region sizes the plans are tuned
  /// for (the PoCs' demo-window concession).
  u64 plan_window_pages = 1024;
  u64 plan_region_pages = 16;
};

/// One Linux-syscall-funnel outcome (result.candidates are verified).
struct ServerScan {
  std::string name;
  analysis::SyscallScanResult result;
  bool cache_hit = false;
};

/// One whole-target funnel outcome (run_target / run_all).
struct TargetReport {
  std::string id;
  TargetClass cls = TargetClass::kLinuxServer;
  /// Discovered primitive candidates, class-appropriate.
  std::vector<analysis::Candidate> candidates;
  /// Candidates verified usable (servers) / AV-capable handler or VEH
  /// primitives (browsers, runtimes) / crash-resistant APIs (API corpus).
  int usable = 0;
  /// One-line funnel summary for campaign reports.
  std::string summary;
  bool cache_hit = false;

  /// Exploit-plan epilogue (CampaignOptions::plan): the synthesized plan
  /// and its fresh-instance replay outcome.
  bool has_plan = false;
  bool plan_cache_hit = false;
  plan::ExploitPlan exploit_plan;
  plan::ReplayOutcome plan_replay;
};

/// Render one TargetReport as the canonical campaign block (the exact
/// format examples/campaign prints and the crpd FETCH verb serves, so the
/// two can be byte-diffed): header line, summary line, one line per
/// reportable candidate, blank terminator. `cache_tag` appends " [cached]"
/// to the summary of a cache-served report (the daemon omits it: a report
/// must read identically whether it was computed or replayed).
std::string render_report(const TargetReport& rep, bool cache_tag = true);

/// BrowserSim construction parameters for a kBrowser registry entry.
targets::BrowserSim::Options browser_options(const TargetSpec& spec);

/// One target's funnel, decomposed into named, resumable steps.
///
/// A TargetCell is the preemptible unit of the job engine: the JobQueue
/// runs cells one step at a time, so a long browser funnel can yield to a
/// higher-priority submission at every step boundary instead of holding a
/// worker for the whole run. Steps run in order, exactly once each; all
/// intermediate state (kernels, tracers, corpora, cache leases) lives in
/// the cell, and destroying a part-run cell releases whatever it held.
/// Splitting points mirror the stage boundaries of stages.h, so the step
/// sequence of a class is also its funnel documentation.
class TargetCell {
 public:
  virtual ~TargetCell() = default;
  TargetCell(const TargetCell&) = delete;
  TargetCell& operator=(const TargetCell&) = delete;

  const TargetSpec& spec() const { return spec_; }
  size_t step_count() const { return steps_.size(); }
  const char* step_name(size_t i) const { return steps_[i]; }
  /// Index of the next step to run (== steps completed so far).
  size_t next_step() const { return next_; }
  bool done() const { return next_ == steps_.size(); }

  /// Run the next step. The final step finalizes the report.
  void run_step();

  /// The job engine is parking this cell (preemption, or queue teardown):
  /// it may sit queued indefinitely, so it must not keep holding resources
  /// other jobs block on — in particular an ArtifactStore single-writer
  /// lease (a parked owner would deadlock every waiter while the waiters
  /// occupy the workers that could resume it). Cells re-acquire on the
  /// next run_step().
  virtual void on_park() {}

  /// The finished report (valid once done()).
  TargetReport& report() { return report_; }

 protected:
  TargetCell(const CampaignOptions& opts, ArtifactStore* store, TargetSpec spec,
             std::vector<const char*> steps)
      : opts_(opts), store_(store), spec_(std::move(spec)), steps_(std::move(steps)) {
    // The exploit-plan epilogue rides every class's funnel: two extra
    // steps past the class-specific sequence, dispatched by the base class
    // (run_step) so the cells' absolute-index switches never see them.
    plan_step_base_ = steps_.size();
    if (opts_.plan) {
      steps_.push_back("plan_synth");
      steps_.push_back("plan_verify");
    }
  }

  virtual void do_step(size_t i) = 0;

  /// Epilogue step bodies (plan_stages.cc): synthesize from the finished
  /// report's candidates; replay against a fresh target instance. Each
  /// holds any cache lease only within its own step, so parking between
  /// steps never strands a lease.
  void plan_synth_step();
  void plan_verify_step();

  CampaignOptions opts_;
  ArtifactStore* store_;  // nullptr: caching off for this cell
  TargetSpec spec_;
  std::vector<const char*> steps_;
  size_t next_ = 0;
  size_t plan_step_base_ = 0;  // first epilogue step index (== class steps)
  TargetReport report_;
};

/// Plan the class-appropriate cell for `spec`. `store` == nullptr disables
/// caching for the cell (the Campaign/JobQueue resolve their cache policy
/// before planning).
std::unique_ptr<TargetCell> plan_target(const CampaignOptions& opts,
                                        ArtifactStore* store,
                                        const TargetSpec& spec);

class Campaign {
 public:
  /// `store` == nullptr uses ArtifactStore::global().
  explicit Campaign(CampaignOptions opts = {}, ArtifactStore* store = nullptr);

  const CampaignOptions& options() const { return opts_; }
  /// The store stage calls should use: nullptr when caching is off for this
  /// campaign, so stages compute unconditionally.
  ArtifactStore* store() const { return opts_.cache ? store_ : nullptr; }

  // --- Linux syscall funnel (Table I) ---------------------------------------
  /// Full funnel over one program. `verify_jobs` overrides the pool width
  /// of the verification stage only (scan_targets passes 1: it already
  /// parallelizes across targets).
  ServerScan scan_program(const analysis::TargetProgram& prog, int verify_jobs = 0);
  ServerScan scan_target(const TargetSpec& spec);
  /// Scan several targets, sharded across the exec pool; results in input
  /// order, identical to scanning serially.
  std::vector<ServerScan> scan_targets(const std::vector<const TargetSpec*>& specs);

  // --- SEH funnel (Tables II/III, §V-C) -------------------------------------
  SehCorpus extract(const std::vector<std::vector<u8>>& blobs);
  ClassifyOutcome classify(const SehCorpus& corpus);
  std::vector<analysis::ModuleSehStats> xref(const SehCorpus& corpus,
                                             const ClassifyOutcome& cls,
                                             const trace::Tracer* tracer,
                                             const os::Process* proc);

  /// Materialize a kDllCorpus registry entry into serialized image blobs.
  static std::vector<std::vector<u8>> dll_blobs(const TargetSpec& spec);
  /// Serialize already-generated DLL images (browser corpora).
  static std::vector<std::vector<u8>> image_blobs(
      const std::vector<targets::GeneratedDll>& dlls);

  // --- Windows API funnel (§V-B) --------------------------------------------
  /// Populate `kernel`'s API registry from a kApiCorpus spec.
  static void materialize_api_corpus(const TargetSpec& spec, os::Kernel& kernel);
  ApiFuzzStage::Out fuzz_apis(os::Kernel& kernel);
  std::vector<analysis::ApiSiteInfo> call_sites(const trace::Tracer& tracer,
                                                const std::set<u32>& crash_resistant,
                                                const os::Kernel& kernel,
                                                const os::Process& proc,
                                                const std::string& needle);

  // --- whole-target funnels --------------------------------------------------
  /// Plan `spec`'s funnel as a resumable cell (what the JobQueue executes).
  std::unique_ptr<TargetCell> plan(const TargetSpec& spec) const;
  /// Run the class-appropriate funnel end-to-end for one subject. Since
  /// PR 8 this is a thin client of the job engine: it submits one job to an
  /// inline JobQueue and waits — the batch path and the daemon path execute
  /// the same cells.
  TargetReport run_target(const TargetSpec& spec);
  /// Every registered subject, registration order (submitted as one batch
  /// of equal-priority jobs; drained in submission order).
  std::vector<TargetReport> run_all(const TargetRegistry& reg);

  /// Content-addressed key of a syscall scan (exposed for the cache
  /// invalidation tests): input covers the target's name, personality, port
  /// and every image's serialized bytes.
  ArtifactKey syscall_scan_key(const analysis::TargetProgram& prog) const;

 private:
  CampaignOptions opts_;
  ArtifactStore* store_;
};

}  // namespace crp::pipeline
