#include "chaos/prop.h"

#include <algorithm>

namespace crp::chaos {

u64 Gen::pointer(const std::vector<GenRange>& mapped) {
  u64 base;
  switch (rng_.below(8)) {
    case 0: base = 0 + rng_.below(4096); break;                       // null page
    case 1: base = ~0ull - rng_.below(8192); break;                   // top of space
    case 2: base = rng_.next(); break;                                // uniform garbage
    case 3:
    case 4:
      // Interior of a mapped range.
      if (!mapped.empty()) {
        const GenRange& r = mapped[rng_.below(mapped.size())];
        base = r.hi > r.lo ? r.lo + rng_.below(r.hi - r.lo) : r.lo;
      } else {
        base = rng_.next();
      }
      break;
    default:
      // Edges and just-out-of-bounds neighbors.
      if (!mapped.empty()) {
        const GenRange& r = mapped[rng_.below(mapped.size())];
        switch (rng_.below(4)) {
          case 0: base = r.lo; break;
          case 1: base = r.hi - 1; break;
          case 2: base = r.lo - rng_.range(1, 64); break;
          default: base = r.hi + rng_.below(64); break;
        }
      } else {
        base = rng_.next();
      }
      break;
  }
  // Unaligned more often than not.
  if (rng_.chance(0.25)) base &= ~7ull;
  return base;
}

std::vector<u64> Gen::syscall_args(const std::vector<GenRange>& mapped) {
  std::vector<u64> args(6);
  for (u64& a : args) {
    switch (rng_.below(4)) {
      case 0: a = rng_.below(8); break;            // fd-/count-looking
      case 1: a = rng_.below(1u << 16); break;     // length-/flag-looking
      case 2: a = pointer(mapped); break;
      default: a = rng_.next(); break;
    }
  }
  return args;
}

std::vector<u8> Gen::bytes(size_t n) {
  std::vector<u8> out(n);
  for (u8& b : out) b = static_cast<u8>(rng_.below(256));
  return out;
}

std::string PropResult::summary() const {
  if (ok())
    return strf("prop %-28s PASS  (%llu seeds)", name.c_str(),
                static_cast<unsigned long long>(runs));
  return strf("prop %-28s FAIL  seed %llu: %s\n  replay: CRP_CHAOS=%s (%zu events, %d shrink runs)",
              name.c_str(), static_cast<unsigned long long>(cex->seed), cex->message.c_str(),
              cex->replay.c_str(), cex->events.size(), cex->shrink_runs);
}

std::optional<std::string> run_with_plan(const FaultPlan& plan, const Property& body,
                                         std::vector<FaultEvent>* fired) {
  ScopedPlan scope(plan);
  std::optional<std::string> verdict = body(plan.seed);
  if (fired != nullptr) *fired = scope.events();
  return verdict;
}

std::vector<FaultEvent> shrink(u64 seed, std::vector<FaultEvent> events, const Property& body,
                               int max_runs, int* runs_used) {
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  int runs = 0;
  auto fails = [&](const std::vector<FaultEvent>& subset) {
    ++runs;
    FaultPlan plan;
    plan.seed = seed;
    plan.replay = true;
    plan.events = subset;
    return run_with_plan(plan, body).has_value();
  };

  // ddmin: drop complements at increasing granularity until 1-minimal.
  size_t granularity = 2;
  while (events.size() >= 2 && runs < max_runs) {
    size_t n = events.size();
    size_t chunk = std::max<size_t>(1, n / granularity);
    bool reduced = false;
    for (size_t start = 0; start < n && runs < max_runs; start += chunk) {
      std::vector<FaultEvent> rest;
      rest.reserve(n);
      rest.insert(rest.end(), events.begin(), events.begin() + static_cast<ptrdiff_t>(start));
      rest.insert(rest.end(),
                  events.begin() + static_cast<ptrdiff_t>(std::min(start + chunk, n)),
                  events.end());
      if (rest.size() < events.size() && fails(rest)) {
        events = std::move(rest);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= events.size()) break;
      granularity = std::min(events.size(), granularity * 2);
    }
  }
  if (runs_used != nullptr) *runs_used = runs;
  return events;
}

PropResult check(const std::string& name, const PropOptions& opts, const Property& body) {
  PropResult result;
  result.name = name;
  for (u64 k = 0; k < opts.seeds; ++k) {
    u64 seed = opts.base_seed + k;
    FaultPlan plan;
    plan.seed = seed;
    plan.rate = opts.rate;
    plan.points = opts.points;
    std::vector<FaultEvent> fired;
    std::optional<std::string> verdict = run_with_plan(plan, body, &fired);
    ++result.runs;
    if (!verdict.has_value()) continue;

    Counterexample cex;
    cex.seed = seed;
    cex.message = *verdict;
    cex.events = shrink(seed, std::move(fired), body, opts.max_shrink_runs, &cex.shrink_runs);
    // Re-run the minimized replay to report the *minimal* failure message
    // (and guard against a flaky body: if the replay no longer fails, keep
    // the original message but say so).
    FaultPlan replay;
    replay.seed = seed;
    replay.replay = true;
    replay.events = cex.events;
    if (std::optional<std::string> confirmed = run_with_plan(replay, body))
      cex.message = *confirmed;
    else
      cex.message += " [WARNING: minimized replay did not reproduce]";
    cex.replay = format_replay(seed, cex.events);
    result.cex = std::move(cex);
    return result;
  }
  return result;
}

}  // namespace crp::chaos
