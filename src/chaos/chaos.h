// crp::chaos — deterministic fault injection for the whole pipeline.
//
// The paper's invariants are only meaningful under an adversarial fault
// model: a crash-resistant primitive must stay crash-resistant when the
// kernel returns spurious errors, when the cache hands back garbage, and
// when the scheduler reorders work. This module provides the machinery that
// *provokes* those conditions deterministically:
//
//   * a FaultPlan — a splitmix64-seeded description of which injection
//     points are live, parsed from CRP_CHAOS=seed[:points] or installed
//     programmatically (ScopedPlan for tests and chaosrun cells);
//   * FaultStreams — per-subsystem decision streams (os::Kernel syscalls,
//     vm::Machine instruction stream, pipeline::ArtifactStore blobs,
//     exec::ThreadPool batches) that answer "does fault X fire here?" from
//     pure hashes of (plan seed, stream salt, occurrence index);
//   * a recorder — every fired event is captured as a (salt, point, index)
//     triple, so a failing run can be replayed *exactly* from a one-line
//     CRP_CHAOS spec listing just those events (see prop.h's shrinker).
//
// Determinism contract (extends DESIGN.md §8): the set of fired events for
// a given plan is identical at any CRP_JOBS. Stream salts are derived
// hierarchically from the work item, never from thread identity: the exec
// pool computes each task's salt as exec::task_seed(batch salt, task
// index), keyed sites (the artifact store) salt by content hash, and
// everything constructed inside a task derives from that task's salt.
//
// Cost when disabled: every injection site is guarded by one predictable
// branch on a cached bool (FaultStream::armed()); no stream state is
// consumed and no TLS is touched on the hot paths.
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"

namespace crp::chaos {

// --- injection points ---------------------------------------------------------

enum class Point : u8 {
  kSysEfault = 0,    // os::Kernel: spurious -EFAULT from an I/O syscall
  kSysEintr,         // os::Kernel: spurious -EINTR (read/write/epoll_wait)
  kShortRead,        // os::Kernel: read/recv returns fewer bytes than asked
  kShortWrite,       // os::Kernel: write/send consumes fewer bytes than asked
  kVmAv,             // vm::Machine: injected access violation at an instruction count
  kVmSingleStep,     // vm::Machine: injected single-step exception
  kCacheCorrupt,     // pipeline::ArtifactStore: disk blob comes back corrupted
  kCacheTruncate,    // pipeline::ArtifactStore: disk blob comes back truncated
  kCacheRenameFail,  // pipeline::ArtifactStore: tmp-file rename fails
  kTaskOrder,        // exec::ThreadPool: batch executes in a perturbed order
  kCount
};

inline constexpr u32 kNumPoints = static_cast<u32>(Point::kCount);

/// Bit for `p` in a FaultPlan::points mask.
constexpr u32 point_bit(Point p) { return 1u << static_cast<u32>(p); }

inline constexpr u32 kAllPoints = (1u << kNumPoints) - 1;
/// The I/O fault family (safe against every registered guest: servers treat
/// read/epoll errors as graceful connection close / worker exit).
inline constexpr u32 kIoPoints = point_bit(Point::kSysEfault) | point_bit(Point::kSysEintr) |
                                 point_bit(Point::kShortRead) | point_bit(Point::kShortWrite);
inline constexpr u32 kVmPoints = point_bit(Point::kVmAv) | point_bit(Point::kVmSingleStep);
inline constexpr u32 kCachePoints = point_bit(Point::kCacheCorrupt) |
                                    point_bit(Point::kCacheTruncate) |
                                    point_bit(Point::kCacheRenameFail);

/// Stable spec/CLI name, e.g. "sys-efault".
const char* point_name(Point p);
/// Inverse of point_name; also accepts the group names "io", "vm", "cache"
/// and "all" (sets several bits). Returns 0 on unknown name.
u32 points_from_name(std::string_view name);

// --- fault plan ---------------------------------------------------------------

/// One fired (or to-be-replayed) injection: stream salt, occurrence index
/// within that stream, and the point. Ordered for canonical traces.
struct FaultEvent {
  u64 salt = 0;
  u64 index = 0;
  Point point = Point::kSysEfault;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
  friend auto operator<=>(const FaultEvent&, const FaultEvent&) = default;
};

/// A complete, reproducible description of a fault-injection run.
///
/// Random mode (replay == false): every enabled point fires whenever
/// splitmix(seed, salt, point, index) hits a 1-in-`rate` residue.
/// Replay mode (replay == true): exactly the listed `events` fire, nothing
/// else — this is what a shrunk counterexample line encodes.
struct FaultPlan {
  u64 seed = 0;
  u32 rate = 64;           // 1-in-rate firing probability per site visit
  u32 points = kIoPoints;  // enabled-point bitmask (random mode)
  bool replay = false;
  std::vector<FaultEvent> events;  // replay mode: sorted, deduplicated

  bool has(Point p) const { return (points >> static_cast<u32>(p)) & 1u; }
  /// Canonical CRP_CHAOS line reproducing this plan.
  std::string str() const;
};

/// Parse "seed[:item,item,...]" where each item is a point/group name, a
/// "rate=N" override, or a replay event "point@<salt hex>.<index>". Any
/// replay event switches the plan to replay mode (and `points` becomes the
/// union of the event points). Seed accepts decimal or 0x-hex.
bool parse_plan(std::string_view text, FaultPlan* out, std::string* err = nullptr);

/// Format a replay line firing exactly `events` ("seed:pt@salt.idx,...").
std::string format_replay(u64 seed, const std::vector<FaultEvent>& events);

// --- activation ---------------------------------------------------------------

/// The plan in effect on this thread: a ScopedPlan override if one is
/// active, else the process-wide plan (CRP_CHAOS, parsed once). nullptr
/// when fault injection is off.
const FaultPlan* plan();
inline bool active() { return plan() != nullptr; }

/// Install `p` process-wide (copied; nullptr uninstalls). Overrides the
/// CRP_CHAOS environment plan. Not thread-safe against concurrent streams —
/// install before spinning up work.
void install(const FaultPlan* p);

// --- deterministic salt plumbing ----------------------------------------------

/// splitmix64 composition — the same mix exec::task_seed uses, re-exposed
/// here so salts and task seeds live in one hash family.
u64 mix64(u64 a, u64 b);

/// Per-thread salt context. The exec pool scopes it per task; everything a
/// task constructs (kernels, machines) draws stream salts from it.
struct TaskCtx {
  u64 salt = 0;     // this task's base salt
  u64 batches = 0;  // batches launched from this context
  u64 streams = 0;  // streams created in this context
};
TaskCtx& task_ctx();

/// Salt for the next pool batch launched from the current context.
u64 next_batch_salt();

/// RAII: enter a task context with base salt `task_salt` (computed by the
/// pool as exec::task_seed(batch salt, task index)); restores the previous
/// context on destruction.
class TaskScope {
 public:
  explicit TaskScope(u64 task_salt);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  TaskCtx saved_;
};

// --- fault streams ------------------------------------------------------------

/// One subsystem's decision stream. Each call to fire(p) consumes one
/// occurrence index for `p`; the decision is a pure hash of (plan seed,
/// stream salt, point, index), so the same construction order yields the
/// same injections on every run and at every job count.
class FaultStream {
 public:
  /// Unarmed stream: fire() is one branch, nothing else.
  FaultStream() = default;

  bool armed() const { return plan_ != nullptr; }
  u64 salt() const { return salt_; }

  /// Does `p` fire at this site visit? Records + counts when it does.
  bool fire(Point p);
  /// Order-independent variant for keyed sites (artifact store): the
  /// decision depends on `key`, not on visit order. Event salt == key.
  bool fire_keyed(Point p, u64 key);
  /// Deterministic fault parameter (short-read length, corrupt offset, ...).
  u64 draw(Point p);

 private:
  friend FaultStream make_stream(u32 point_mask);
  const FaultPlan* plan_ = nullptr;
  u64 salt_ = 0;
  u64 idx_[kNumPoints] = {};
  u64 draw_idx_[kNumPoints] = {};
};

/// Armed stream (consuming one salt slot from the current TaskCtx) iff a
/// plan is active and covers a point in `point_mask`; unarmed otherwise.
/// Call once per subsystem instance, at construction.
FaultStream make_stream(u32 point_mask);

// --- recorder -----------------------------------------------------------------

/// Fired events of the current scope, sorted canonically. Under a
/// ScopedPlan this is the scope's own trace; otherwise the process trace.
std::vector<FaultEvent> injected_events();
void clear_injected_events();

/// RAII plan override for the current thread: installs `p`, resets the
/// TaskCtx to a blank context (so stream salts are reproducible no matter
/// what ran before), and gives the scope a private event recorder. Used by
/// tests and by chaosrun cells running different seeds concurrently.
///
/// Everything exercised under the scope must run on this thread (inner
/// campaigns/pools with jobs=1): a worker thread spawned elsewhere does not
/// see the override.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan p);
  ~ScopedPlan();
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

  const FaultPlan& plan() const { return plan_; }
  /// Events fired under this scope so far, sorted canonically.
  std::vector<FaultEvent> events() const;

 private:
  FaultPlan plan_;
  TaskCtx saved_ctx_;
  const FaultPlan* saved_plan_;
  std::vector<FaultEvent>* saved_recorder_;
  std::vector<FaultEvent> recorded_;
};

}  // namespace crp::chaos
