#include "chaos/chaos.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <mutex>

#include "obs/obs.h"
#include "util/log.h"

namespace crp::chaos {

namespace {

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Domain tags keep batch salts, stream salts and per-point decision hashes
// in disjoint subfamilies of the same mix.
constexpr u64 kBatchTag = 0xb47c5a17ull;
constexpr u64 kStreamTag = 0x57ea3aa7ull;
constexpr u64 kDecideTag = 0xdec1de00ull;
constexpr u64 kDrawTag = 0xd4aa0000ull;

std::atomic<const FaultPlan*> g_plan{nullptr};
FaultPlan g_installed;   // storage behind g_plan when installed programmatically
FaultPlan g_env_plan;    // storage when CRP_CHAOS parses successfully
std::once_flag g_env_once;

thread_local const FaultPlan* tls_plan = nullptr;
thread_local TaskCtx tls_ctx;
thread_local std::vector<FaultEvent>* tls_recorder = nullptr;

std::mutex g_rec_mu;  // guards every recorder vector (events are rare)
std::vector<FaultEvent> g_recorded;

void init_env() {
  const char* env = std::getenv("CRP_CHAOS");
  if (env == nullptr || *env == '\0') return;
  std::string err;
  if (parse_plan(env, &g_env_plan, &err)) {
    g_plan.store(&g_env_plan, std::memory_order_release);
  } else {
    log_line(LogLevel::kWarn, "chaos",
             strf("ignoring CRP_CHAOS=\"%s\": %s", env, err.c_str()));
  }
}

obs::Counter* injected_counter(Point p) {
  static obs::Counter* counters[kNumPoints] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (u32 i = 0; i < kNumPoints; ++i) {
      std::string name = std::string("chaos.injected.") + point_name(static_cast<Point>(i));
      std::replace(name.begin(), name.end(), '-', '_');
      counters[i] = &obs::Registry::global().counter(name);
    }
  });
  return counters[static_cast<u32>(p)];
}

void record(const FaultEvent& ev) {
  std::lock_guard<std::mutex> lk(g_rec_mu);
  std::vector<FaultEvent>* rec = tls_recorder != nullptr ? tls_recorder : &g_recorded;
  rec->push_back(ev);
}

// Replay plans must advertise the union of their event points, or streams
// for those subsystems never arm (a programmatically built plan — the
// shrinker's, say — would otherwise keep the default random-mode mask).
void normalize(FaultPlan& plan) {
  if (!plan.replay) return;
  std::sort(plan.events.begin(), plan.events.end());
  plan.events.erase(std::unique(plan.events.begin(), plan.events.end()), plan.events.end());
  plan.points = 0;
  for (const FaultEvent& ev : plan.events) plan.points |= point_bit(ev.point);
}

bool parse_u64(std::string_view s, int base, u64* out) {
  if (s.empty()) return false;
  u64 v = 0;
  for (char c : s) {
    u64 digit;
    if (c >= '0' && c <= '9') digit = static_cast<u64>(c - '0');
    else if (base == 16 && c >= 'a' && c <= 'f') digit = static_cast<u64>(c - 'a' + 10);
    else if (base == 16 && c >= 'A' && c <= 'F') digit = static_cast<u64>(c - 'A' + 10);
    else return false;
    v = v * static_cast<u64>(base) + digit;
  }
  *out = v;
  return true;
}

}  // namespace

const char* point_name(Point p) {
  switch (p) {
    case Point::kSysEfault: return "sys-efault";
    case Point::kSysEintr: return "sys-eintr";
    case Point::kShortRead: return "short-read";
    case Point::kShortWrite: return "short-write";
    case Point::kVmAv: return "vm-av";
    case Point::kVmSingleStep: return "vm-step";
    case Point::kCacheCorrupt: return "cache-corrupt";
    case Point::kCacheTruncate: return "cache-truncate";
    case Point::kCacheRenameFail: return "cache-rename";
    case Point::kTaskOrder: return "task-order";
    case Point::kCount: break;
  }
  return "?";
}

u32 points_from_name(std::string_view name) {
  if (name == "io") return kIoPoints;
  if (name == "vm") return kVmPoints;
  if (name == "cache") return kCachePoints;
  if (name == "all") return kAllPoints;
  for (u32 i = 0; i < kNumPoints; ++i)
    if (name == point_name(static_cast<Point>(i))) return 1u << i;
  return 0;
}

std::string FaultPlan::str() const {
  if (replay) return format_replay(seed, events);
  std::string out = strf("%llu", static_cast<unsigned long long>(seed));
  std::string items;
  if (rate != FaultPlan{}.rate)
    items += strf("rate=%u", rate);
  // Prefer a group name when the mask matches one exactly.
  auto append = [&](std::string_view item) {
    if (!items.empty()) items += ',';
    items += item;
  };
  if (points == kAllPoints) append("all");
  else if (points == kIoPoints) append("io");
  else if (points == kVmPoints) append("vm");
  else if (points == kCachePoints) append("cache");
  else {
    for (u32 i = 0; i < kNumPoints; ++i)
      if ((points >> i) & 1u) append(point_name(static_cast<Point>(i)));
  }
  if (!items.empty()) out += ':' + items;
  return out;
}

std::string format_replay(u64 seed, const std::vector<FaultEvent>& events) {
  std::string out = strf("%llu", static_cast<unsigned long long>(seed));
  char sep = ':';
  for (const FaultEvent& ev : events) {
    out += strf("%c%s@%llx.%llu", sep, point_name(ev.point),
                static_cast<unsigned long long>(ev.salt),
                static_cast<unsigned long long>(ev.index));
    sep = ',';
  }
  return out;
}

bool parse_plan(std::string_view text, FaultPlan* out, std::string* err) {
  auto fail = [&](std::string msg) {
    if (err != nullptr) *err = std::move(msg);
    return false;
  };
  FaultPlan plan;
  plan.points = 0;

  size_t colon = text.find(':');
  std::string_view seed_sv = text.substr(0, colon);
  bool hex = seed_sv.size() > 2 && (seed_sv.substr(0, 2) == "0x" || seed_sv.substr(0, 2) == "0X");
  if (!parse_u64(hex ? seed_sv.substr(2) : seed_sv, hex ? 16 : 10, &plan.seed))
    return fail(strf("bad seed \"%.*s\"", static_cast<int>(seed_sv.size()), seed_sv.data()));

  std::string_view rest = colon == std::string_view::npos ? std::string_view{} : text.substr(colon + 1);
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (item.empty()) continue;

    if (item.substr(0, 5) == "rate=") {
      u64 r = 0;
      if (!parse_u64(item.substr(5), 10, &r) || r == 0 || r > (1u << 30))
        return fail(strf("bad rate \"%.*s\"", static_cast<int>(item.size()), item.data()));
      plan.rate = static_cast<u32>(r);
      continue;
    }

    if (size_t at = item.find('@'); at != std::string_view::npos) {
      // Replay event: point@<salt hex>.<index>
      u32 bits = points_from_name(item.substr(0, at));
      size_t dot = item.rfind('.');
      FaultEvent ev;
      if (bits == 0 || (bits & (bits - 1)) != 0 || dot == std::string_view::npos || dot <= at ||
          !parse_u64(item.substr(at + 1, dot - at - 1), 16, &ev.salt) ||
          !parse_u64(item.substr(dot + 1), 10, &ev.index))
        return fail(strf("bad replay event \"%.*s\"", static_cast<int>(item.size()), item.data()));
      ev.point = static_cast<Point>(std::countr_zero(bits));
      plan.replay = true;
      plan.events.push_back(ev);
      continue;
    }

    u32 bits = points_from_name(item);
    if (bits == 0)
      return fail(strf("unknown point \"%.*s\"", static_cast<int>(item.size()), item.data()));
    plan.points |= bits;
  }

  if (plan.replay) {
    std::sort(plan.events.begin(), plan.events.end());
    plan.events.erase(std::unique(plan.events.begin(), plan.events.end()), plan.events.end());
    plan.points = 0;
    for (const FaultEvent& ev : plan.events) plan.points |= point_bit(ev.point);
  } else if (plan.points == 0) {
    plan.points = FaultPlan{}.points;  // bare "seed" means the default family
  }
  *out = plan;
  return true;
}

const FaultPlan* plan() {
  if (tls_plan != nullptr) return tls_plan;
  std::call_once(g_env_once, init_env);
  return g_plan.load(std::memory_order_acquire);
}

void install(const FaultPlan* p) {
  std::call_once(g_env_once, init_env);  // a later env parse must not clobber this
  if (p == nullptr) {
    g_plan.store(nullptr, std::memory_order_release);
  } else {
    g_installed = *p;
    normalize(g_installed);
    g_plan.store(&g_installed, std::memory_order_release);
  }
}

u64 mix64(u64 a, u64 b) { return splitmix64(a ^ splitmix64(b)); }

TaskCtx& task_ctx() { return tls_ctx; }

u64 next_batch_salt() { return mix64(tls_ctx.salt ^ kBatchTag, ++tls_ctx.batches); }

TaskScope::TaskScope(u64 task_salt) : saved_(tls_ctx) { tls_ctx = TaskCtx{task_salt, 0, 0}; }

TaskScope::~TaskScope() { tls_ctx = saved_; }

namespace {

bool decide_and_record(const FaultPlan& pl, Point p, u64 salt, u64 idx) {
  bool hit;
  if (pl.replay) {
    FaultEvent ev{salt, idx, p};
    hit = std::binary_search(pl.events.begin(), pl.events.end(), ev);
  } else {
    u64 h = mix64(pl.seed ^ kDecideTag ^ static_cast<u64>(p), mix64(salt, idx));
    hit = pl.has(p) && (h % pl.rate) == 0;
  }
  if (hit) {
    record(FaultEvent{salt, idx, p});
    injected_counter(p)->inc();
  }
  return hit;
}

}  // namespace

bool FaultStream::fire(Point p) {
  if (plan_ == nullptr) return false;
  u64 idx = idx_[static_cast<u32>(p)]++;
  return decide_and_record(*plan_, p, salt_, idx);
}

bool FaultStream::fire_keyed(Point p, u64 key) {
  if (plan_ == nullptr) return false;
  return decide_and_record(*plan_, p, key, 0);
}

u64 FaultStream::draw(Point p) {
  u64 idx = draw_idx_[static_cast<u32>(p)]++;
  u64 seed = plan_ != nullptr ? plan_->seed : 0;
  return mix64(seed ^ kDrawTag ^ static_cast<u64>(p), mix64(salt_, idx));
}

FaultStream make_stream(u32 point_mask) {
  FaultStream s;
  const FaultPlan* pl = plan();
  if (pl != nullptr && (pl->points & point_mask) != 0) {
    s.plan_ = pl;
    s.salt_ = mix64(tls_ctx.salt ^ kStreamTag, ++tls_ctx.streams);
  }
  return s;
}

std::vector<FaultEvent> injected_events() {
  std::lock_guard<std::mutex> lk(g_rec_mu);
  std::vector<FaultEvent> out = tls_recorder != nullptr ? *tls_recorder : g_recorded;
  std::sort(out.begin(), out.end());
  return out;
}

void clear_injected_events() {
  std::lock_guard<std::mutex> lk(g_rec_mu);
  (tls_recorder != nullptr ? tls_recorder : &g_recorded)->clear();
}

ScopedPlan::ScopedPlan(FaultPlan p)
    : plan_(std::move(p)), saved_ctx_(tls_ctx), saved_plan_(tls_plan),
      saved_recorder_(tls_recorder) {
  normalize(plan_);
  tls_plan = &plan_;
  tls_ctx = TaskCtx{};
  {
    std::lock_guard<std::mutex> lk(g_rec_mu);
    tls_recorder = &recorded_;
  }
}

ScopedPlan::~ScopedPlan() {
  {
    std::lock_guard<std::mutex> lk(g_rec_mu);
    tls_recorder = saved_recorder_;
  }
  tls_ctx = saved_ctx_;
  tls_plan = saved_plan_;
}

std::vector<FaultEvent> ScopedPlan::events() const {
  std::lock_guard<std::mutex> lk(g_rec_mu);
  std::vector<FaultEvent> out = recorded_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace crp::chaos
