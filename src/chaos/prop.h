// crp::chaos::prop — property-based testing over the fault-injection engine.
//
// A property is a deterministic body run under a seeded FaultPlan: it sets
// up a world (kernel, guest, campaign, ...), drives it while the plan
// injects faults, and returns a failure message when a paper-level
// invariant breaks (a probe crashed the process, the ledger audit went red,
// a taint label vanished, cached output diverged, ...).
//
// check() sweeps N seeds. On the first failing seed it minimizes the
// recorded injection trace with ddmin: subsets of the fired events are
// replayed (FaultPlan replay mode) until no event can be removed, and the
// surviving events are formatted as a one-line CRP_CHAOS spec — the
// counterexample a human (or CI artifact) needs to reproduce the bug is
// that line, not a core dump.
//
// Value generators (Gen) cover the paper's input spaces: guest pointers
// biased toward mapping edges and the address-space top, syscall argument
// vectors, raw instruction bytes. (SEH filter bodies are generated at the
// test layer with isa::Assembler — see tests/test_chaos.cc — to keep this
// library free of an isa dependency.)
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "util/rng.h"

namespace crp::chaos {

// --- generators ---------------------------------------------------------------

/// A mapped guest range [lo, hi) the pointer generator can aim at.
struct GenRange {
  u64 lo = 0;
  u64 hi = 0;
};

class Gen {
 public:
  explicit Gen(u64 seed) : rng_(mix64(seed, 0x6e6)) {}

  Rng& rng() { return rng_; }
  u64 any_u64() { return rng_.next(); }

  /// Guest pointer biased toward the interesting corners: interiors, exact
  /// begin/end edges of `mapped`, just-out-of-bounds neighbors, the null
  /// page, the top of the 64-bit space (u64-wrap regression territory) and
  /// uniformly random garbage. Unaligned more often than not.
  u64 pointer(const std::vector<GenRange>& mapped);

  /// Six syscall arguments: a mix of small scalars, flag-looking values and
  /// pointer(mapped) outputs.
  std::vector<u64> syscall_args(const std::vector<GenRange>& mapped);

  /// `n` raw bytes (decoder fuzz input).
  std::vector<u8> bytes(size_t n);

 private:
  Rng rng_;
};

// --- property runner ----------------------------------------------------------

struct PropOptions {
  u64 seeds = 16;       // seeds swept: base_seed, base_seed+1, ...
  u64 base_seed = 1;
  u32 rate = 16;        // injection rate while searching (1-in-rate)
  u32 points = kIoPoints;
  int max_shrink_runs = 256;  // replay budget for ddmin
};

struct Counterexample {
  u64 seed = 0;
  std::string message;             // the failure the body reported
  std::vector<FaultEvent> events;  // minimized injection trace
  std::string replay;              // CRP_CHAOS line reproducing the failure
  int shrink_runs = 0;             // replays the shrinker spent
};

struct PropResult {
  std::string name;
  u64 runs = 0;  // seeds executed (stops at the first failure)
  std::optional<Counterexample> cex;

  bool ok() const { return !cex.has_value(); }
  std::string summary() const;
};

/// The property body: runs under an installed plan (seed given for value
/// generation — construct Gen(seed)); returns a failure message or nullopt.
/// Must be deterministic given (seed, plan): the shrinker replays it.
using Property = std::function<std::optional<std::string>(u64 seed)>;

/// Sweep `opts.seeds` plans over `body`; minimize the first failure.
PropResult check(const std::string& name, const PropOptions& opts, const Property& body);

/// Run `body` under an explicit plan (replay helper; also what check()
/// uses internally). Returns the body's verdict.
std::optional<std::string> run_with_plan(const FaultPlan& plan, const Property& body,
                                         std::vector<FaultEvent>* fired = nullptr);

/// ddmin over `events`: smallest subset whose replay still fails `body`.
/// Exposed for tests (shrinker-convergence satellite).
std::vector<FaultEvent> shrink(u64 seed, std::vector<FaultEvent> events, const Property& body,
                               int max_runs, int* runs_used = nullptr);

}  // namespace crp::chaos
