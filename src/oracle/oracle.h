// Attacker-side memory oracles (§III, §VI).
//
// A MemoryOracle answers "is guest address X readable?" WITHOUT crashing the
// target — each implementation drives one discovered crash-resistant
// primitive through its legitimate interface:
//
//   NginxRecvOracle    — §VI-C: two connections; corrupt the parked
//                        ngx_buf_t's pos/end through the arbitrary-write
//                        primitive, complete the request, observe whether
//                        the server answers or silently closes.
//   SehProbeOracle     — §VI-A: poke the probed address into the jscript9
//                        ScriptEngine's debug_info pointer, trigger
//                        MUTX::Enter by running a script, read the status
//                        field back.
//   FirefoxPollOracle  — §VI-B: write the address into the background poll
//                        thread's probe slot and read the status back; no
//                        manual trigger needed.
//   CherokeeTimingOracle — §VI-D: corrupt one worker's fdpoll events
//                        pointer and measure service time; a timing (not
//                        value) channel, exposed via probe cost.
//
// All oracles use only the threat-model capabilities: an arbitrary
// read/write primitive (AddressSpace::peek/poke) plus legitimate protocol
// interactions. They never receive layout ground truth.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "targets/browser.h"

namespace crp::obs {
class Counter;
class Histogram;
class Ledger;
enum class LedgerStage : u8;
}  // namespace crp::obs

namespace crp::oracle {

enum class ProbeResult : u8 { kMapped = 0, kUnmapped, kUnknown };

const char* probe_result_name(ProbeResult r);

class MemoryOracle {
 public:
  virtual ~MemoryOracle() = default;
  /// Probe one address for readability, crash-resistantly.
  virtual ProbeResult probe(gva_t addr) = 0;
  virtual std::string name() const = 0;
  u64 probes_issued() const { return probes_; }

  /// The virtual clock (ns) of the kernel driving the target — lets the
  /// Scanner attribute a deterministic latency to each probe. 0 when the
  /// oracle has no clock.
  virtual u64 virtual_now() const { return 0; }

  /// Whether the probed target is still alive. The Scanner counts
  /// alive->dead transitions across a probe as crashes — the number that
  /// must stay 0 for a crash-RESISTANT oracle.
  virtual bool target_alive() const { return true; }

  /// Total target crashes this oracle has caused, for oracles that track
  /// them precisely (e.g. the crash-tolerant baseline, whose supervisor
  /// respawns the target between probes and so defeats the Scanner's
  /// transition detection). Oracles returning 0 fall back to the Scanner's
  /// alive->dead accounting.
  virtual u64 crash_count() const { return 0; }

 protected:
  /// Flight-recorder tail call for probe() implementations: records one
  /// oracle-stage ProbeEvent (primitive = name(), virtual-now timestamp) in
  /// the global obs::Ledger and passes `r` through. `crashed` is the number
  /// of target crashes this probe caused, for self-reporting oracles.
  ProbeResult finish_probe(gva_t addr, ProbeResult r, u64 crashed = 0);

  u64 probes_ = 0;

 private:
  u32 ledger_prim_ = 0;  // interned lazily (name() is virtual)
};

/// §VI-C oracle against a running nginx_sim.
class NginxRecvOracle : public MemoryOracle {
 public:
  /// `kernel`/`pid` identify the running server; the oracle opens its own
  /// connections on `port`.
  NginxRecvOracle(os::Kernel& kernel, int pid, u16 port);
  ProbeResult probe(gva_t addr) override;
  std::string name() const override { return "nginx-recv"; }
  u64 virtual_now() const override { return k_.now_ns(); }
  bool target_alive() const override {
    const os::Process* p = k_.find_proc(pid_);
    return p != nullptr && p->alive();
  }

 private:
  /// Locate the parked ngx_buf_t for our paused connection by scanning the
  /// connection table global (the "leak the buffer object containing our
  /// signature" step, done with the read primitive).
  std::optional<gva_t> leak_parked_buf();

  os::Kernel& k_;
  int pid_;
  u16 port_;
};

/// §VI-A oracle against a BrowserSim (IE kind).
class SehProbeOracle : public MemoryOracle {
 public:
  explicit SehProbeOracle(targets::BrowserSim& browser);
  ProbeResult probe(gva_t addr) override;
  std::string name() const override { return "ie-mutx-seh"; }
  u64 virtual_now() const override { return browser_.kernel().now_ns(); }
  bool target_alive() const override { return browser_.proc().alive(); }

 private:
  targets::BrowserSim& browser_;
  gva_t engine_ = 0;
  gva_t saved_debug_info_ = 0;
};

/// NPE-flag oracle against a running jvm_sim: poke the probed address into
/// the managed object-reference cell, send a kOpQuery, and read the reply —
/// "VAL:" means the runtime dereferenced the address (mapped), "NPE!" means
/// the recovering SIGSEGV handler turned the fault into a managed exception
/// (unmapped). Read-only; zero crashes either way.
class JvmNpeOracle : public MemoryOracle {
 public:
  JvmNpeOracle(os::Kernel& kernel, int pid, u16 port);
  ProbeResult probe(gva_t addr) override;
  std::string name() const override { return "jvm-npe"; }
  u64 virtual_now() const override { return k_.now_ns(); }
  bool target_alive() const override {
    const os::Process* p = k_.find_proc(pid_);
    return p != nullptr && p->alive();
  }

 private:
  os::Kernel& k_;
  int pid_;
  u16 port_;
  std::optional<os::ClientConn> conn_;  // persistent query channel
  gva_t cell_ = 0;                      // object-reference slot (lazy)
};

/// §VI-B oracle against a BrowserSim (Firefox kind).
class FirefoxPollOracle : public MemoryOracle {
 public:
  explicit FirefoxPollOracle(targets::BrowserSim& browser);
  ProbeResult probe(gva_t addr) override;
  std::string name() const override { return "firefox-poll"; }
  u64 virtual_now() const override { return browser_.kernel().now_ns(); }
  bool target_alive() const override { return browser_.proc().alive(); }

 private:
  targets::BrowserSim& browser_;
  gva_t slot_ = 0;
};

// --- scanning --------------------------------------------------------------------

struct ScanStats {
  u64 probes = 0;
  u64 mapped_hits = 0;
  u64 crashes = 0;  // must stay 0 — that is the whole point
};

/// Address-space scanner built on any oracle: sweeps a region with a given
/// stride, returning addresses that probed mapped.
class Scanner {
 public:
  /// `target_label` names the probed subject in flight-recorder events
  /// (empty -> the unknown target id 0).
  explicit Scanner(MemoryOracle& oracle, const std::string& target_label = {});

  /// Probe [base, base+len) at `stride`; returns mapped probe addresses.
  std::vector<gva_t> sweep(gva_t base, u64 len, u64 stride);

  /// Hunt a hidden region: probe `max_probes` addresses of the form
  /// lo + slot*page for uniformly drawn slots (the brute-force §III loop);
  /// returns the first mapped hit.
  std::optional<gva_t> hunt(gva_t lo, gva_t hi, u64 max_probes, u64 seed,
                            const std::function<bool(gva_t)>& accept = {});

  const ScanStats& stats() const { return stats_; }

  /// One instrumented single-address probe (sweep-stage ledger event) —
  /// the replay harness's locate-base walk and hijack confirmation reuse
  /// the Scanner's counters/crash accounting instead of rolling their own.
  ProbeResult probe(gva_t addr);

 private:
  /// One instrumented probe: counters, virtual-time latency, liveness
  /// transition (crash) detection, one journal span, one ledger event under
  /// `stage` (sweep or hunt).
  ProbeResult probe_once(gva_t addr, obs::LedgerStage stage);

  MemoryOracle& oracle_;
  ScanStats stats_;
  obs::Counter* c_probes_;
  obs::Counter* c_mapped_;
  obs::Counter* c_crashes_;
  obs::Histogram* h_probe_ns_;
  obs::Ledger* ledger_;
  u32 ledger_prim_;
  u32 ledger_target_;
};

/// Expected number of uniform probes to hit a region of `region_pages`
/// pages hidden in `space_pages` candidate slots (geometric mean).
double expected_probes(u64 space_pages, u64 region_pages);

}  // namespace crp::oracle
