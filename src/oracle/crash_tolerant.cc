#include "oracle/crash_tolerant.h"

#include "targets/common.h"
#include "targets/nginx.h"

namespace crp::oracle {

CrashTolerantProbe::CrashTolerantProbe(analysis::TargetProgram target, u64 aslr_seed)
    : target_(std::move(target)), seed_(aslr_seed) {
  respawn();
  --restarts_;  // the initial spawn is not a restart
}

CrashTolerantProbe::~CrashTolerantProbe() = default;

void CrashTolerantProbe::respawn() {
  k_ = std::make_unique<os::Kernel>();
  pid_ = target_.instantiate(*k_, seed_);
  k_->run(3'000'000);
  ++restarts_;
  if (hidden_size_ != 0) {
    // Pre-fork layout persistence: the hidden region reappears at the same
    // randomized address because the layout RNG is seeded identically.
    gva_t base = targets::plant_hidden_region(k_->proc(pid_), hidden_size_, hidden_pattern_);
    CRP_CHECK(hidden_base_ == 0 || base == hidden_base_);
    hidden_base_ = base;
  }
}

gva_t CrashTolerantProbe::plant_hidden(u64 size, u64 pattern) {
  hidden_size_ = size;
  hidden_pattern_ = pattern;
  hidden_base_ = targets::plant_hidden_region(k_->proc(pid_), size, pattern);
  return hidden_base_;
}

ProbeResult CrashTolerantProbe::probe(gva_t addr) {
  ++probes_;
  if (!k_->proc(pid_).alive()) respawn();
  os::Process& p = k_->proc(pid_);

  // Park a recognizable buffer, then corrupt the connection-object pointer
  // ITSELF — the server dereferences it unguarded in handle_readable, so an
  // unmapped address is a hard crash (the crash-tolerant idiom).
  auto conn = k_->connect(target_.port);
  if (!conn.has_value()) return finish_probe(addr, ProbeResult::kUnknown);
  conn->send(targets::wire_command(targets::kOpGet).substr(0, 8));
  k_->run(400'000);

  gva_t table = p.machine().resolve("nginx_sim", "conn_table");
  if (table == 0) return finish_probe(addr, ProbeResult::kUnknown);
  std::optional<gva_t> slot;
  for (int fd = 0; fd < 64; ++fd) {
    u64 buf = 0;
    if (!p.machine().mem().peek_u64(table + static_cast<u64>(fd) * 8, &buf) || buf == 0)
      continue;
    u64 total = 0;
    if (p.machine().mem().peek_u64(buf + 40, &total) && total == 8)
      slot = table + static_cast<u64>(fd) * 8;
  }
  if (!slot.has_value()) {
    conn->close();
    return finish_probe(addr, ProbeResult::kUnknown);
  }
  p.machine().mem().poke_u64(*slot, addr);

  conn->send(targets::wire_command(targets::kOpGet).substr(8));
  k_->run_until([&] { return !k_->proc(pid_).alive() || conn->server_closed(); },
                4'000'000);
  bool died = !k_->proc(pid_).alive();
  conn->close();
  if (died) {
    ++crashes_;
    // The crash IS the signal — and the noise. Self-report it so the ledger
    // shows exactly why this baseline fails the zero-crash audit.
    return finish_probe(addr, ProbeResult::kUnmapped, /*crashed=*/1);
  }
  k_->run(200'000);
  return finish_probe(addr, ProbeResult::kMapped);
}

}  // namespace crp::oracle
