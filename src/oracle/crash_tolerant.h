// Crash-TOLERANT probing — the §I/§II baseline the paper contrasts crash
// resistance against.
//
// BROP-style attacks exploit servers that restart after a crash: each wrong
// guess kills a worker, a supervisor respawns it (classically with the SAME
// memory layout — pre-fork servers re-fork rather than re-exec, which §VII
// explicitly calls out: "the memory layout of restarting processes must not
// persist between restarts"). The attack works, but every unmapped probe is
// a loud crash a defender can count.
//
// CrashTolerantProbe drives exactly that protocol against nginx_sim: it
// corrupts the per-connection object pointer itself (which the server
// dereferences directly, with no guard), completes the request, and watches
// whether the process died. A supervisor respawns the server with the same
// ASLR seed. The companion bench pits this against the crash-resistant recv
// oracle: same answers, zero vs. hundreds of crashes.
#pragma once

#include <memory>
#include <optional>

#include "analysis/target.h"
#include "oracle/oracle.h"

namespace crp::oracle {

class CrashTolerantProbe : public MemoryOracle {
 public:
  /// Spawns the first server instance (its own kernel). `aslr_seed` is
  /// reused on every respawn — the layout-persistence assumption.
  CrashTolerantProbe(analysis::TargetProgram target, u64 aslr_seed);
  ~CrashTolerantProbe() override;

  ProbeResult probe(gva_t addr) override;
  std::string name() const override { return "crash-tolerant"; }
  u64 virtual_now() const override { return k_->now_ns(); }
  /// Reports dead until the next probe respawns the server.
  bool target_alive() const override { return k_->proc(pid_).alive(); }
  /// Exact count — consecutive crashes would be invisible to the Scanner's
  /// alive->dead transition detection because each probe starts by
  /// respawning a dead target.
  u64 crash_count() const override { return crashes_; }

  u64 crashes() const { return crashes_; }
  u64 restarts() const { return restarts_; }
  os::Kernel& kernel() { return *k_; }
  os::Process& proc() { return k_->proc(pid_); }

  /// Plant the hidden region (same address every respawn thanks to the
  /// fixed seed); returns its base.
  gva_t plant_hidden(u64 size, u64 pattern);

 private:
  void respawn();

  analysis::TargetProgram target_;
  u64 seed_;
  std::unique_ptr<os::Kernel> k_;
  int pid_ = 0;
  u64 crashes_ = 0;
  u64 restarts_ = 0;
  u64 hidden_size_ = 0;
  u64 hidden_pattern_ = 0;
  gva_t hidden_base_ = 0;
};

}  // namespace crp::oracle
