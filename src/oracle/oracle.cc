#include "oracle/oracle.h"

#include <algorithm>

#include "obs/journal.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "targets/common.h"
#include "targets/jvm.h"
#include "util/log.h"
#include "util/rng.h"

namespace crp::oracle {

const char* probe_result_name(ProbeResult r) {
  switch (r) {
    case ProbeResult::kMapped: return "mapped";
    case ProbeResult::kUnmapped: return "unmapped";
    case ProbeResult::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

/// Map an oracle answer (plus crash knowledge) onto the flight-recorder
/// outcome alphabet. A crash dominates whatever the probe returned.
obs::ProbeOutcome to_outcome(ProbeResult r, bool crashed) {
  if (crashed) return obs::ProbeOutcome::kCrash;
  switch (r) {
    case ProbeResult::kMapped: return obs::ProbeOutcome::kSurvive;
    case ProbeResult::kUnmapped: return obs::ProbeOutcome::kEfault;
    case ProbeResult::kUnknown: return obs::ProbeOutcome::kTimeout;
  }
  return obs::ProbeOutcome::kTimeout;
}

}  // namespace

ProbeResult MemoryOracle::finish_probe(gva_t addr, ProbeResult r, u64 crashed) {
  obs::Ledger& led = obs::Ledger::global();
  if (ledger_prim_ == 0) ledger_prim_ = led.intern(name());
  led.record(obs::LedgerStage::kOracle, to_outcome(r, crashed > 0), ledger_prim_,
             /*target=*/0, addr, virtual_now());
  return r;
}

// --- NginxRecvOracle -------------------------------------------------------------

NginxRecvOracle::NginxRecvOracle(os::Kernel& kernel, int pid, u16 port)
    : k_(kernel), pid_(pid), port_(port) {}

std::optional<gva_t> NginxRecvOracle::leak_parked_buf() {
  // Threat model: the module base is known (information leak), so the
  // connection-table global is readable with the arbitrary-read primitive.
  os::Process& p = k_.proc(pid_);
  gva_t table = p.machine().resolve("nginx_sim", "conn_table");
  if (table == 0) return std::nullopt;
  for (int fd = 0; fd < 64; ++fd) {
    u64 buf = 0;
    if (!p.machine().mem().peek_u64(table + static_cast<u64>(fd) * 8, &buf) || buf == 0)
      continue;
    u64 total = 0, start = 0, first8 = 0;
    if (!p.machine().mem().peek_u64(buf + 40, &total)) continue;
    if (total != 8) continue;  // our half-sent request
    if (!p.machine().mem().peek_u64(buf + 0, &start)) continue;
    if (!p.machine().mem().peek_u64(start, &first8)) continue;
    if (first8 == targets::kOpGet) return buf;
  }
  return std::nullopt;
}

ProbeResult NginxRecvOracle::probe(gva_t addr) {
  ++probes_;
  os::Process& p = k_.proc(pid_);

  // 1. Partial request parks a recognizable ngx_buf_t.
  auto conn = k_.connect(port_);
  if (!conn.has_value()) return finish_probe(addr, ProbeResult::kUnknown);
  conn->send(targets::wire_command(targets::kOpGet).substr(0, 8));
  k_.run(400'000);

  // 2. Leak it.
  std::optional<gva_t> buf = leak_parked_buf();
  if (!buf.has_value()) {
    conn->close();
    return finish_probe(addr, ProbeResult::kUnknown);
  }

  // 3. Arbitrary write: point pos at the probed address (end = pos + 8 so
  //    the server asks for exactly 8 bytes).
  p.machine().mem().poke_u64(*buf + 8, addr);       // pos
  p.machine().mem().poke_u64(*buf + 24, addr + 8);  // end

  // 4. Complete the request; the server recv()s straight into `addr`.
  conn->send(targets::wire_command(targets::kOpGet).substr(8));
  std::string got;
  k_.run_until(
      [&] {
        got += conn->recv_all();
        return !got.empty() || conn->server_closed();
      },
      4'000'000);
  bool closed = conn->server_closed();
  conn->close();
  k_.run(200'000);

  // 5. Response => recv succeeded => address mapped (writable); silent
  //    close => -EFAULT path => unmapped. Zero crashes either way.
  ProbeResult r = ProbeResult::kUnknown;
  if (!got.empty()) r = ProbeResult::kMapped;
  else if (closed) r = ProbeResult::kUnmapped;
  return finish_probe(addr, r);
}

// --- SehProbeOracle ----------------------------------------------------------------

SehProbeOracle::SehProbeOracle(targets::BrowserSim& browser) : browser_(browser) {
  engine_ = browser_.script_engine_addr();
  auto& mem = browser_.proc().machine().mem();
  mem.peek_u64(engine_ + 32, &saved_debug_info_);
  // Force EnterCriticalSection onto the contended (dereferencing) path by
  // setting the three control fields (§VI-A).
  mem.poke_u64(engine_ + 8, 0xC5C5);
  mem.poke_u64(engine_ + 16, 1);
  mem.poke_u64(engine_ + 24, 0);
}

ProbeResult SehProbeOracle::probe(gva_t addr) {
  ++probes_;
  if (engine_ == 0) return finish_probe(addr, ProbeResult::kUnknown);
  auto& mem = browser_.proc().machine().mem();
  // debug_info + 0x10 is dereferenced: bias the pointer so the read lands
  // exactly on `addr`.
  mem.poke_u64(engine_ + 32, addr - 0x10);
  // Trigger: processing any new script enters MUTX::Enter. Wait on the
  // engine's scripts-processed counter so each probe costs only the script
  // round trip (thousands of probes per virtual second, as in the paper).
  u64 done_before = browser_.script_done_count();
  browser_.run_script(0);
  browser_.kernel().run_until(
      [&] { return browser_.script_done_count() > done_before; }, 4'000'000);
  u64 status = browser_.mutx_status();
  mem.poke_u64(engine_ + 32, saved_debug_info_);
  ProbeResult r = ProbeResult::kUnknown;
  if (status == 0) r = ProbeResult::kMapped;
  else if (status == 1) r = ProbeResult::kUnmapped;
  return finish_probe(addr, r);
}

// --- FirefoxPollOracle ---------------------------------------------------------------

FirefoxPollOracle::FirefoxPollOracle(targets::BrowserSim& browser) : browser_(browser) {
  slot_ = browser_.probe_slot_addr();
}

ProbeResult FirefoxPollOracle::probe(gva_t addr) {
  ++probes_;
  if (slot_ == 0 || addr == 0) return finish_probe(addr, ProbeResult::kUnknown);
  auto& mem = browser_.proc().machine().mem();
  mem.poke_u64(slot_ + 16, 0);   // clear status
  mem.poke_u64(slot_ + 0, addr); // request — the background thread does the rest
  u64 status = 0;
  browser_.kernel().run_until(
      [&] {
        mem.peek_u64(slot_ + 16, &status);
        return status != 0;
      },
      6'000'000);
  ProbeResult r = ProbeResult::kUnknown;
  if (status == 2) r = ProbeResult::kMapped;
  else if (status == 1) r = ProbeResult::kUnmapped;
  return finish_probe(addr, r);
}

// --- JvmNpeOracle ----------------------------------------------------------------------

JvmNpeOracle::JvmNpeOracle(os::Kernel& kernel, int pid, u16 port)
    : k_(kernel), pid_(pid), port_(port) {}

ProbeResult JvmNpeOracle::probe(gva_t addr) {
  ++probes_;
  if (k_.find_proc(pid_) == nullptr)
    return finish_probe(addr, ProbeResult::kUnknown);
  os::Process& p = k_.proc(pid_);
  if (!p.alive() || addr == 0) return finish_probe(addr, ProbeResult::kUnknown);
  if (cell_ == 0) cell_ = targets::jvm_object_ref_addr(p);
  if (cell_ == 0) return finish_probe(addr, ProbeResult::kUnknown);

  // One persistent query channel; reconnect if the runtime dropped it.
  if (conn_.has_value() && conn_->server_closed()) {
    conn_->close();
    conn_.reset();
  }
  if (!conn_.has_value()) {
    conn_ = k_.connect(port_);
    if (!conn_.has_value()) return finish_probe(addr, ProbeResult::kUnknown);
    k_.run(200'000);
  }

  // Arbitrary write: swing the managed object reference at the probed
  // address, then ask the runtime to touch the object.
  p.machine().mem().poke_u64(cell_, addr);
  conn_->send(targets::wire_command(targets::kOpQuery));
  std::string got;
  k_.run_until(
      [&] {
        got += conn_->recv_all();
        return got.size() >= 4 || conn_->server_closed();
      },
      5'000'000);

  // "VAL:" => the dereference succeeded (mapped); "NPE!" => the recovering
  // SIGSEGV handler rewrote the fault into a managed exception (unmapped).
  ProbeResult r = ProbeResult::kUnknown;
  if (got.rfind("VAL:", 0) == 0) r = ProbeResult::kMapped;
  else if (got.rfind("NPE!", 0) == 0) r = ProbeResult::kUnmapped;
  return finish_probe(addr, r);
}

// --- Scanner -----------------------------------------------------------------------------

Scanner::Scanner(MemoryOracle& oracle, const std::string& target_label)
    : oracle_(oracle) {
  // Acquired eagerly so every scan campaign's snapshot carries the full
  // oracle.scan.* schema — crashes in particular must be *visibly* zero.
  obs::Registry& reg = obs::Registry::global();
  c_probes_ = &reg.counter("oracle.scan.probes");
  c_mapped_ = &reg.counter("oracle.scan.mapped_hits");
  c_crashes_ = &reg.counter("oracle.scan.crashes");
  h_probe_ns_ = &reg.histogram("oracle.scan.probe_ns");
  ledger_ = &obs::Ledger::global();
  ledger_prim_ = ledger_->intern(oracle.name());
  ledger_target_ = target_label.empty() ? 0 : ledger_->intern(target_label);
}

ProbeResult Scanner::probe_once(gva_t addr, obs::LedgerStage stage) {
  ++stats_.probes;
  c_probes_->inc();
  // Guest instructions executed to answer this probe sample as probe work.
  obs::ScopedProfFlags prof_flags(obs::kProfProbe);
  bool alive_before = oracle_.target_alive();
  u64 crashes_before = oracle_.crash_count();
  u64 t0 = oracle_.virtual_now();
  ProbeResult r = oracle_.probe(addr);
  u64 t1 = oracle_.virtual_now();
  if (t1 > t0) h_probe_ns_->record(t1 - t0);
  if (r == ProbeResult::kMapped) {
    ++stats_.mapped_hits;
    c_mapped_->inc();
  }
  // Prefer the oracle's own exact accounting; fall back to alive->dead
  // transition detection for oracles that do not self-report.
  bool crashed = false;
  if (u64 n = oracle_.crash_count() - crashes_before; n > 0) {
    stats_.crashes += n;
    c_crashes_->inc(n);
    crashed = true;
  } else if (alive_before && !oracle_.target_alive()) {
    ++stats_.crashes;
    c_crashes_->inc();
    crashed = true;
  }
  ledger_->record(stage, to_outcome(r, crashed), ledger_prim_, ledger_target_, addr,
                  t0);
  obs::Journal::global().span(oracle_.name(), "probe", t0 / 1000, (t1 - t0) / 1000, 0,
                              "mapped", r == ProbeResult::kMapped ? 1 : 0);
  return r;
}

ProbeResult Scanner::probe(gva_t addr) {
  return probe_once(addr, obs::LedgerStage::kSweep);
}

std::vector<gva_t> Scanner::sweep(gva_t base, u64 len, u64 stride) {
  CRP_CHECK(stride != 0);
  std::vector<gva_t> mapped;
  // Remaining-length loop: `base + len` can wrap for sweeps ending at the
  // top of the u64 address space (e.g. base=0xffffffff_fffff000), which
  // would make an `a < base + len` bound false on the first iteration and
  // silently probe nothing.
  gva_t a = base;
  for (u64 remaining = len; remaining > 0;) {
    if (probe_once(a, obs::LedgerStage::kSweep) == ProbeResult::kMapped)
      mapped.push_back(a);
    if (stride >= remaining) break;
    remaining -= stride;
    gva_t next = a + stride;
    if (next < a) break;  // stepped past the top of the address space
    a = next;
  }
  return mapped;
}

std::optional<gva_t> Scanner::hunt(gva_t lo, gva_t hi, u64 max_probes, u64 seed,
                                   const std::function<bool(gva_t)>& accept) {
  CRP_CHECK(hi > lo);
  Rng rng(seed);
  // A sub-page range yields slots == 0, which Rng::below rejects; clamp so
  // a one-page (or smaller) hunt probes `lo` itself instead of panicking.
  u64 slots = std::max<u64>((hi - lo) / mem::kPageSize, 1);
  for (u64 i = 0; i < max_probes; ++i) {
    gva_t addr = lo + rng.below(slots) * mem::kPageSize;
    if (probe_once(addr, obs::LedgerStage::kHunt) == ProbeResult::kMapped) {
      if (!accept || accept(addr)) return addr;
    }
  }
  return std::nullopt;
}

double expected_probes(u64 space_pages, u64 region_pages) {
  if (region_pages == 0) return 0.0;
  return static_cast<double>(space_pages) / static_cast<double>(region_pages);
}

}  // namespace crp::oracle
