#include "plan/replay.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "mem/address_space.h"
#include "oracle/oracle.h"
#include "os/kernel.h"
#include "targets/browser.h"
#include "targets/common.h"

namespace crp::plan {

namespace {

/// One booted target instance plus the oracle driving its surface. Owns
/// everything; destroying it tears the world down.
struct ReplayEnv {
  std::unique_ptr<os::Kernel> kernel;
  std::unique_ptr<targets::BrowserSim> browser;
  std::unique_ptr<oracle::MemoryOracle> oracle;
  int pid = 0;

  os::Process& proc() {
    return browser != nullptr ? browser->proc() : kernel->proc(pid);
  }
};

bool build_env(const TargetBinding& b, Surface surface, ReplayEnv* env,
               std::string* err) {
  env->kernel = std::make_unique<os::Kernel>();
  switch (surface) {
    case Surface::kNginxRecv:
    case Surface::kJvmNpe: {
      if (!b.make_program) {
        *err = "binding has no make_program for a server/runtime surface";
        return false;
      }
      analysis::TargetProgram prog = b.make_program();
      env->pid = prog.instantiate(*env->kernel, b.aslr_seed);
      env->kernel->run(3'000'000);  // startup: listeners + signal handlers
      if (!env->kernel->proc(env->pid).alive()) {
        *err = "target died during startup";
        return false;
      }
      if (surface == Surface::kNginxRecv)
        env->oracle = std::make_unique<oracle::NginxRecvOracle>(
            *env->kernel, env->pid, b.port);
      else
        env->oracle = std::make_unique<oracle::JvmNpeOracle>(*env->kernel,
                                                             env->pid, b.port);
      return true;
    }
    case Surface::kBrowserSeh:
    case Surface::kBrowserPoll: {
      targets::BrowserSim::Options bopts = b.browser;
      bopts.defer_start = false;
      env->browser = std::make_unique<targets::BrowserSim>(*env->kernel, bopts);
      env->pid = env->browser->pid();
      if (surface == Surface::kBrowserSeh)
        env->oracle = std::make_unique<oracle::SehProbeOracle>(*env->browser);
      else
        env->oracle = std::make_unique<oracle::FirefoxPollOracle>(*env->browser);
      return true;
    }
    case Surface::kNone:
      *err = "no surface to build";
      return false;
  }
  *err = "unknown surface";
  return false;
}

}  // namespace

std::string ReplayOutcome::summary() const {
  if (completed && probes == 0)
    return "trivial (no surface, 0 probes)";
  std::string s = strf(
      "%s probes=%llu crashes=%llu unhandled=%llu", completed ? "ok" : "FAILED",
      static_cast<unsigned long long>(probes),
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(unhandled));
  if (hit)
    s += strf(" region=0x%llx leaked=%zu hijack=%s@0x%llx",
              static_cast<unsigned long long>(region_base), leaked.size(),
              hijacked ? "ok" : "no",
              static_cast<unsigned long long>(control_addr));
  if (!completed && !error.empty()) s += " (" + error + ")";
  return s;
}

ReplayOutcome replay_fresh(const TargetBinding& b, const ExploitPlan& plan,
                           const HarnessOptions& harness) {
  ReplayOutcome out;
  if (plan.empty()) {
    out.completed = true;
    out.target_alive = true;
    return out;
  }
  if (plan.version != kPlanVersion) {
    out.error = strf("plan version %d != replayer version %d", plan.version,
                     kPlanVersion);
    return out;
  }

  ReplayEnv env;
  if (!build_env(b, plan.surface, &env, &out.error)) return out;
  os::Process& proc = env.proc();
  mem::AddressSpace& aspace = proc.machine().mem();

  // Defender: hide the region. Attacker never reads planted_base — the
  // window placement below is the harness's demo-window concession.
  u64 region_pages = harness.region_pages != 0 ? harness.region_pages
                                               : std::max<u64>(plan.region_pages, 1);
  out.planted_base = targets::plant_hidden_region(
      proc, region_pages * mem::kPageSize, harness.pattern);

  oracle::Scanner scanner(
      *env.oracle, harness.ledger_label.empty() ? b.id : harness.ledger_label);

  // --- scan: locate the region ------------------------------------------------
  u64 window_pages = std::max<u64>(plan.scan.window_pages, region_pages);
  gva_t lo = out.planted_base - (window_pages / 2) * mem::kPageSize;
  std::optional<gva_t> hit;
  if (plan.scan.mode == ScanMode::kSweep) {
    u64 stride = std::max<u64>(plan.scan.stride_pages, 1) * mem::kPageSize;
    std::vector<gva_t> mapped =
        scanner.sweep(lo, window_pages * mem::kPageSize, stride);
    if (!mapped.empty()) hit = mapped.front();
  } else {
    hit = scanner.hunt(lo, lo + window_pages * mem::kPageSize,
                       plan.scan.max_probes, plan.scan.seed);
  }

  if (hit.has_value()) {
    out.hit = true;
    gva_t base = *hit & ~mem::kPageMask;
    if (plan.scan.locate_base) {
      // Walk down to the region's first page; the page below it probes
      // unmapped (crash-resistantly, like every other probe).
      for (u64 i = 0; i < region_pages && base >= mem::kPageSize; ++i) {
        if (scanner.probe(base - mem::kPageSize) != oracle::ProbeResult::kMapped)
          break;
        base -= mem::kPageSize;
      }
    }
    out.region_base = base;
  } else {
    out.error = "scan exhausted its budget without locating the region";
  }

  // --- leak: read the plan's metadata offsets ---------------------------------
  if (out.hit && out.error.empty()) {
    for (u64 off : plan.leak.offsets) {
      u64 v = 0;
      if (!aspace.peek_u64(out.region_base + off, &v)) {
        out.error = strf("leak read failed at base+0x%llx",
                         static_cast<unsigned long long>(off));
        break;
      }
      out.leaked.push_back(v);
    }
  }

  // --- hijack: take the control slot ------------------------------------------
  if (out.hit && out.error.empty()) {
    out.control_addr = out.region_base + plan.hijack.offset;
    u64 before = 0, after = 0;
    aspace.peek_u64(out.control_addr, &before);
    bool mapped =
        scanner.probe(out.control_addr) == oracle::ProbeResult::kMapped;
    aspace.peek_u64(out.control_addr, &after);
    out.control_value = after;
    if (plan.surface == Surface::kNginxRecv) {
      // Write-probe surface: the probe itself is the controlled write —
      // the recv()ed request bytes must have replaced the defender's word.
      out.hijacked = mapped && after != before;
    } else {
      // Read-probe surface: the primitive's channel answered "mapped" for
      // the slot without disturbing it.
      out.hijacked = mapped && after == before;
    }
    if (!out.hijacked)
      out.error = "hijack probe did not confirm control of the slot";
  }

  const oracle::ScanStats& st = scanner.stats();
  out.probes = st.probes;
  out.mapped_hits = st.mapped_hits;
  out.crashes = st.crashes;
  out.unhandled = proc.machine().exception_stats().unhandled;
  out.target_alive = proc.alive();
  out.completed = out.error.empty();
  return out;
}

}  // namespace crp::plan
