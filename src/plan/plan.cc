#include "plan/plan.h"

#include <sstream>

namespace crp::plan {

const char* surface_name(Surface s) {
  switch (s) {
    case Surface::kNone: return "none";
    case Surface::kNginxRecv: return "nginx-recv";
    case Surface::kBrowserSeh: return "ie-mutx-seh";
    case Surface::kBrowserPoll: return "firefox-poll";
    case Surface::kJvmNpe: return "jvm-npe";
  }
  return "?";
}

namespace {

// Same escaping as the pipeline artifact codec: strings survive the
// whitespace-token format.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ' || c == '%' || c == '\n') {
      static const char kHex[] = "0123456789abcdef";
      out += '%';
      out += kHex[(static_cast<u8>(c) >> 4) & 0xf];
      out += kHex[static_cast<u8>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

std::string unesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

u64 fnv1a(const char* data, size_t n) {
  u64 h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<u8>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr const char* kSumTag = "sum ";

// Length-prefixed escaped string: "<tag> 0" for empty, "<tag> <n> <token>"
// otherwise — empty strings survive the whitespace-token format.
void put_str(std::ostringstream& out, const char* tag, const std::string& s) {
  std::string e = esc(s);
  out << tag << " " << e.size();
  if (!e.empty()) out << " " << e;
  out << "\n";
}

bool get_str(std::istringstream& in, const char* tag, std::string* s) {
  std::string t;
  size_t n = 0;
  if (!(in >> t >> n) || t != tag) return false;
  if (n == 0) {
    s->clear();
    return true;
  }
  std::string e;
  if (!(in >> e) || e.size() != n) return false;
  *s = unesc(e);
  return true;
}

}  // namespace

std::string encode_plan(const ExploitPlan& p) {
  std::ostringstream out;
  out << strf("crp-plan v%d\n", p.version);
  put_str(out, "target", p.target_id);
  out << "surface " << static_cast<u32>(p.surface) << " symex "
      << (p.symex_confirmed ? 1 : 0) << "\n";
  put_str(out, "primitive", p.primitive);
  out << "region_pages " << p.region_pages << "\n";
  out << "scan " << static_cast<u32>(p.scan.mode) << " " << p.scan.window_pages
      << " " << p.scan.stride_pages << " " << p.scan.max_probes << " "
      << p.scan.seed << " " << (p.scan.locate_base ? 1 : 0) << "\n";
  out << "leak " << p.leak.offsets.size();
  for (u64 off : p.leak.offsets) out << " " << off;
  out << "\n";
  out << "hijack " << p.hijack.offset << "\n";
  put_str(out, "rationale", p.rationale);
  std::string body = out.str();
  return body + strf("%s%016llx\n", kSumTag,
                     static_cast<unsigned long long>(fnv1a(body.data(), body.size())));
}

bool decode_plan(const std::string& doc, ExploitPlan* out) {
  // The checksum footer covers every byte before it: a truncated document
  // has no footer, a corrupted one fails the compare.
  size_t tail = doc.rfind(kSumTag);
  if (tail == std::string::npos || (tail != 0 && doc[tail - 1] != '\n'))
    return false;
  // The footer is exactly "sum <16 hex digits>\n" — anything shorter is a
  // truncated document, even if the digits that remain would still parse.
  if (doc.size() - tail != 4 + 16 + 1 || doc.back() != '\n') return false;
  std::string body = doc.substr(0, tail);
  u64 want = 0;
  for (size_t i = tail + 4; i < doc.size() - 1; ++i) {
    char c = doc[i];
    u64 d = 0;
    if (c >= '0' && c <= '9') d = static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<u64>(c - 'a' + 10);
    else return false;
    want = (want << 4) | d;
  }
  if (fnv1a(body.data(), body.size()) != want) return false;

  std::istringstream in(body);
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "crp-plan" ||
      version != strf("v%d", kPlanVersion))
    return false;

  ExploitPlan p;
  p.version = kPlanVersion;
  std::string tag;
  if (!get_str(in, "target", &p.target_id)) return false;
  u32 surface = 0;
  int symex = 0;
  if (!(in >> tag >> surface) || tag != "surface") return false;
  if (surface > static_cast<u32>(Surface::kJvmNpe)) return false;
  p.surface = static_cast<Surface>(surface);
  if (!(in >> tag >> symex) || tag != "symex") return false;
  p.symex_confirmed = symex != 0;
  if (!get_str(in, "primitive", &p.primitive)) return false;
  if (!(in >> tag >> p.region_pages) || tag != "region_pages") return false;
  u32 mode = 0;
  int locate = 0;
  if (!(in >> tag >> mode >> p.scan.window_pages >> p.scan.stride_pages >>
        p.scan.max_probes >> p.scan.seed >> locate) ||
      tag != "scan" || mode > static_cast<u32>(ScanMode::kHunt))
    return false;
  p.scan.mode = static_cast<ScanMode>(mode);
  p.scan.locate_base = locate != 0;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "leak") return false;
  for (size_t i = 0; i < n; ++i) {
    u64 off = 0;
    if (!(in >> off)) return false;
    p.leak.offsets.push_back(off);
  }
  if (!(in >> tag >> p.hijack.offset) || tag != "hijack") return false;
  if (!get_str(in, "rationale", &p.rationale)) return false;
  *out = std::move(p);
  return true;
}

}  // namespace crp::plan
