// plan::replay_fresh — execute an ExploitPlan against a fresh target
// instance and report what the attack achieved.
//
// The harness plays the defender: it boots the target described by the
// TargetBinding, plants the information-hiding region (the plan never
// learns its address) and centers the plan's scan window on it — the same
// demo-window concession the handwritten PoCs make, since a full 28-bit
// hunt is computationally honest but experimentally pointless. It then
// plays the attacker: drives the plan's scan step through oracle::Scanner
// (every probe flight-recorded in the obs::Ledger), leaks the plan's
// metadata offsets with the arbitrary-read primitive, and performs the
// hijack step, confirming control through the primitive's own channel.
//
// The zero-crash invariant is the outcome's headline: `crashes` (Scanner
// alive->dead accounting) and `unhandled` (machine exception stats) must
// both be 0 for every plan — callers additionally run obs::audit_ledger()
// over the recorded probe events (planrun, the chaos property, CI).
#pragma once

#include <string>
#include <vector>

#include "plan/synth.h"

namespace crp::plan {

struct HarnessOptions {
  /// Hidden-region fill pattern (word at offset `o` is `pattern ^ o`).
  u64 pattern = 0x5AFE0001;
  /// Override the planted region size (0 = plan.region_pages).
  u64 region_pages = 0;
  /// Flight-recorder target label ("" = the binding id).
  std::string ledger_label;
};

struct ReplayOutcome {
  /// Every plan step ran to its end (scan hit, all leaks read, hijack
  /// confirmed). Empty plans complete trivially.
  bool completed = false;
  std::string error;  // first failing step's message ("" when completed)

  // Scan phase.
  u64 probes = 0;
  u64 mapped_hits = 0;
  u64 crashes = 0;    // MUST stay 0 — the paper's invariant
  u64 unhandled = 0;  // unhandled guest exceptions after the replay
  bool hit = false;
  gva_t region_base = 0;   // located region base (after locate_base)
  gva_t planted_base = 0;  // harness ground truth, for verification display

  // Leak phase: one word per plan leak offset.
  std::vector<u64> leaked;

  // Hijack phase.
  bool hijacked = false;
  gva_t control_addr = 0;  // final control-transfer address
  u64 control_value = 0;   // word observed at the control slot afterwards

  bool target_alive = false;

  /// One-line summary for reports and tables.
  std::string summary() const;
};

/// Boot a fresh instance of the binding's target and run the plan end to
/// end. Never throws on attack failure — inspect `completed`/`error`.
ReplayOutcome replay_fresh(const TargetBinding& binding, const ExploitPlan& plan,
                           const HarnessOptions& harness = {});

}  // namespace crp::plan
