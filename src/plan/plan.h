// crp::plan — machine-generated exploit plans (ROADMAP item 4).
//
// The paper stops at four hand-built PoC exploits; an ExploitPlan is the
// machine-generated equivalent: a typed, versioned, serializable script of
// the three attack phases every PoC shares —
//
//   scan    locate the hidden (SafeStack/CPI-style) region with a
//           crash-resistant memory oracle (sweep or randomized hunt);
//   leak    read metadata words out of the located region with the threat
//           model's arbitrary-read primitive;
//   hijack  steer the primitive's controlled pointer at a chosen slot (the
//           return-address/control-word analog) and confirm control.
//
// Plans are deliberately environment-independent: they carry probe
// strategy, stride, budgets, seeds and *relative* offsets — never absolute
// addresses — so an encoded plan is byte-stable across runs and machines
// and can live in the ArtifactStore or a golden-fixture file. The replay
// harness (plan/replay.h) supplies the environment: a fresh kernel/target
// instance and the planted region the defender hides.
//
// The codec follows the pipeline artifact idiom (versioned header,
// %-escaped strings) plus a trailing FNV checksum line, so both truncated
// and corrupted documents are rejected instead of replayed.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace crp::plan {

inline constexpr int kPlanVersion = 1;

/// Which discovered oracle surface the plan drives. kNone marks a target
/// class with no scan/leak/hijack surface: its (empty) plan replays
/// trivially to completion with zero probes.
enum class Surface : u8 {
  kNone = 0,
  kNginxRecv,    // §VI-C recv()-EFAULT oracle (server/nginx_sim)
  kBrowserSeh,   // §VI-A MUTX catch-all SEH oracle (IE analog)
  kBrowserPoll,  // §VI-B background poll-thread oracle (Firefox analog)
  kJvmNpe,       // §III-B SIGSEGV-recovering null-check oracle (jvm_sim)
};

const char* surface_name(Surface s);

enum class ScanMode : u8 {
  kSweep = 0,  // deterministic stride walk — guaranteed hit inside the window
  kHunt,       // seeded uniform probing — the brute-force §III loop
};

/// Phase 1: locate the hidden region. The probed window is positioned by
/// the replay harness (the defender grants a demo window exactly like the
/// handwritten PoCs); the plan only fixes its *shape* and the strategy.
struct ScanStep {
  ScanMode mode = ScanMode::kSweep;
  u64 window_pages = 0;   // probed window size
  u64 stride_pages = 1;   // sweep stride
  u64 max_probes = 0;     // hunt budget (ignored for sweep)
  u64 seed = 0;           // hunt RNG seed
  /// Walk the first hit back page by page to the region's lowest mapped
  /// page, so leak/hijack offsets are relative to the true region base.
  bool locate_base = true;
};

/// Phase 2: metadata words to read, as offsets from the located base.
struct LeakStep {
  std::vector<u64> offsets;
};

/// Phase 3: the control slot to take over, as an offset from the base.
struct HijackStep {
  u64 offset = 0;
};

struct ExploitPlan {
  int version = kPlanVersion;
  std::string target_id;  // registry id, e.g. "server/nginx_sim"
  Surface surface = Surface::kNone;
  std::string primitive;  // describe() of the primitive the plan rides on
  /// The synthesis heuristics' one-line justification (printed in reports).
  std::string rationale;
  /// True when the chosen primitive's handler/filter verdict came from the
  /// symex engine (SEH filter / VEH / signal-handler classification);
  /// syscall primitives are dynamically verified instead.
  bool symex_confirmed = false;
  /// Hidden-region size the scan/leak offsets are tuned for.
  u64 region_pages = 0;

  ScanStep scan;
  LeakStep leak;
  HijackStep hijack;

  /// No oracle surface: nothing to scan, the plan replays as a no-op.
  bool empty() const { return surface == Surface::kNone; }
};

/// Serialize to the versioned, checksummed text form (byte-stable for any
/// equal plan — golden fixtures diff cleanly).
std::string encode_plan(const ExploitPlan& p);

/// Strict decode: false on version mismatch, malformed lines, truncation
/// (missing checksum line) or corruption (checksum mismatch). Callers
/// treat false as a cache miss / fixture failure — never replay a plan
/// that did not decode cleanly.
bool decode_plan(const std::string& doc, ExploitPlan* out);

}  // namespace crp::plan
