// plan::synthesize — turn a verified primitive into an ExploitPlan.
//
// The synthesizer consumes the *evidence* the discovery funnels produce
// (verified analysis::Candidate lists — symex-classified filter/handler
// verdicts for the exception-handler class, dynamically verified pointer
// controllability for the syscall class) plus a TargetBinding describing
// how to reach the target's oracle surface, and picks a probe strategy,
// stride and leak/hijack offsets per primitive class:
//
//   write-probe surfaces (nginx recv):   every probe clobbers 8 bytes at
//     the probed address, so the leak offsets skip the clobbered word and
//     the hijack IS the probe — the controlled recv() write lands in the
//     located region.
//   read-probe surfaces (SEH/VEH/NPE):   probes are side-effect-free, so
//     leak offsets may include the base word and the hijack is confirmed
//     by the primitive's own channel answering "mapped" for the slot.
//
// Synthesized plans scan in sweep mode with stride == region size: the
// minimum deterministic probe count that cannot miss the region inside the
// window (window/stride probes), vs the geometric expectation of the
// handwritten PoCs' randomized hunt. Determinism contract: synthesize() is
// a pure function of (binding, evidence, options) — byte-identical encoded
// plans at any job count or cache state.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/candidates.h"
#include "analysis/target.h"
#include "plan/plan.h"
#include "targets/browser.h"

namespace crp::plan {

/// How to reach one registry target's oracle surface. Narrow on purpose:
/// plan sits below pipeline in the library stack, so the pipeline layer
/// maps its TargetSpec onto this (pipeline::binding_for).
struct TargetBinding {
  std::string id;  // registry id, used for labels only
  Surface surface = Surface::kNone;
  /// kNginxRecv / kJvmNpe: build + instantiate the runnable program.
  std::function<analysis::TargetProgram()> make_program;
  u16 port = 0;
  u64 aslr_seed = 0;  // instantiate() layout seed (deterministic replays)
  /// kBrowserSeh / kBrowserPoll: simulacrum construction parameters.
  targets::BrowserSim::Options browser;
};

struct SynthOptions {
  /// Scan-window size granted by the replay harness (the PoCs' demo
  /// window); the rationale documents the full-entropy extrapolation.
  u64 window_pages = 1024;
  /// Hidden-region size the plan is tuned for.
  u64 region_pages = 16;
  /// Seed basis for randomized (hunt-mode) plans; sweep plans ignore it.
  u64 seed = 0;
};

/// Synthesize the class-appropriate plan from discovery evidence. Returns
/// an empty plan (surface kNone, rationale explaining why) when the
/// binding has no oracle surface or the evidence carries no usable
/// primitive for it.
ExploitPlan synthesize(const TargetBinding& binding,
                       const std::vector<analysis::Candidate>& evidence,
                       const SynthOptions& opts = {});

}  // namespace crp::plan
