#include "plan/synth.h"

#include "oracle/oracle.h"

namespace crp::plan {

namespace {

using analysis::Candidate;
using analysis::PrimitiveClass;
using analysis::Verdict;

ExploitPlan base_plan(const TargetBinding& b, const SynthOptions& opts) {
  ExploitPlan p;
  p.target_id = b.id;
  p.region_pages = opts.region_pages;
  return p;
}

/// Deterministic guaranteed-hit scan: stride == region size means one
/// probe must land inside the region anywhere in the window.
ScanStep sweep_scan(const SynthOptions& opts) {
  ScanStep s;
  s.mode = ScanMode::kSweep;
  s.window_pages = opts.window_pages;
  s.stride_pages = opts.region_pages;
  s.max_probes = 0;
  s.seed = opts.seed;
  s.locate_base = true;
  return s;
}

std::string sweep_rationale(const SynthOptions& opts) {
  u64 budget = opts.window_pages / (opts.region_pages ? opts.region_pages : 1);
  return strf(
      "sweep stride=%llu pages cannot miss a %llu-page region: <=%llu probes "
      "in the %llu-page window (full 28-bit entropy: ~%.0f expected probes, "
      "all crash-free)",
      static_cast<unsigned long long>(opts.region_pages),
      static_cast<unsigned long long>(opts.region_pages),
      static_cast<unsigned long long>(budget),
      static_cast<unsigned long long>(opts.window_pages),
      oracle::expected_probes(1ull << 28, opts.region_pages));
}

const Candidate* find_usable_syscall(const std::vector<Candidate>& ev) {
  for (const Candidate& c : ev)
    if (c.cls == PrimitiveClass::kSyscall && c.verdict == Verdict::kUsable &&
        c.controllable_home)
      return &c;
  return nullptr;
}

/// The script-engine guarded site (§VI-A): an SEH scope in the jscript9
/// module whose filter the symex classifier proved AV-accepting (catch-all
/// scopes are structurally accepting).
const Candidate* find_script_seh(const std::vector<Candidate>& ev) {
  for (const Candidate& c : ev)
    if (c.cls == PrimitiveClass::kExceptionHandler &&
        c.module.find("jscript9") != std::string::npos)
      return &c;
  return nullptr;
}

/// Any AV-accepting exception-handler candidate (VEH / signal scanners
/// emit only symex-confirmed kAcceptsAv handlers).
const Candidate* find_handler(const std::vector<Candidate>& ev) {
  for (const Candidate& c : ev)
    if (c.cls == PrimitiveClass::kExceptionHandler) return &c;
  return nullptr;
}

}  // namespace

ExploitPlan synthesize(const TargetBinding& b,
                       const std::vector<Candidate>& evidence,
                       const SynthOptions& opts) {
  ExploitPlan p = base_plan(b, opts);

  switch (b.surface) {
    case Surface::kNone:
      p.rationale =
          "target class exposes no scan/leak/hijack oracle surface; empty "
          "plan replays trivially";
      return p;

    case Surface::kNginxRecv: {
      const Candidate* c = find_usable_syscall(evidence);
      if (c == nullptr) {
        p.rationale =
            "no verified syscall primitive with a controllable pointer home";
        return p;
      }
      p.surface = Surface::kNginxRecv;
      p.primitive = c->describe();
      p.symex_confirmed = false;  // dynamically verified (VerifyStage)
      p.scan = sweep_scan(opts);
      // The recv() probe *writes* its 8 request bytes at the probed page
      // start: leak offsets skip the clobbered word, and the hijack is the
      // probe itself — a fully controlled write into the hidden region.
      // The hijack slot sits past the leak words, at an offset no
      // page-aligned scan probe ever touched, so the controlled write is
      // observable as before != after.
      p.leak.offsets = {8, 16, 24};
      p.hijack.offset = 32;
      p.rationale = "write-probe primitive; " + sweep_rationale(opts) +
                    "; leak offsets skip the probe-clobbered word";
      return p;
    }

    case Surface::kBrowserSeh: {
      const Candidate* c = find_script_seh(evidence);
      if (c == nullptr) {
        p.rationale = "no AV-accepting SEH scope in the script-engine module";
        return p;
      }
      p.surface = Surface::kBrowserSeh;
      p.primitive = c->describe();
      // Filter verdicts come from the symex classifier; a catch-all scope
      // is structurally accepting (no filter body to execute).
      p.symex_confirmed = true;
      p.scan = sweep_scan(opts);
      p.leak.offsets = {0, 8, 16};
      p.hijack.offset = 0;
      p.rationale = "read-probe primitive (debug_info deref, -0x10 bias); " +
                    sweep_rationale(opts);
      return p;
    }

    case Surface::kBrowserPoll: {
      const Candidate* c = find_handler(evidence);
      if (c == nullptr) {
        p.rationale = "no symex-confirmed VEH primitive harvested";
        return p;
      }
      p.surface = Surface::kBrowserPoll;
      p.primitive = c->describe();
      p.symex_confirmed = true;
      p.scan = sweep_scan(opts);
      p.leak.offsets = {0, 8, 16};
      p.hijack.offset = 0;
      p.rationale =
          "read-probe primitive (background poll thread, no trigger "
          "needed); " +
          sweep_rationale(opts);
      return p;
    }

    case Surface::kJvmNpe: {
      const Candidate* c = find_handler(evidence);
      if (c == nullptr) {
        p.rationale = "no symex-confirmed recovering signal handler";
        return p;
      }
      p.surface = Surface::kJvmNpe;
      p.primitive = c->describe();
      p.symex_confirmed = true;
      p.scan = sweep_scan(opts);
      p.leak.offsets = {0, 8, 16};
      p.hijack.offset = 0;
      p.rationale =
          "read-probe primitive (ucontext-editing SIGSEGV recovery); " +
          sweep_rationale(opts);
      return p;
    }
  }
  return p;
}

}  // namespace crp::plan
