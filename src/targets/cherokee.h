// cherokee_sim: model of the Cherokee 1.2 thread pool used in the paper's
// §VI-D proof of concept (the timing side channel).
//
//   * main thread accepts and round-robins connections into per-thread
//     mailboxes (skipping mailboxes that are still full — a stalled thread
//     simply stops taking work, the server stays up);
//   * each worker thread owns a heap `cherokee_fdpoll_epoll_t`-style object
//     whose +0 field is the pointer to its `struct epoll_event` array; the
//     worker calls epoll_wait(epfd, fdpoll->events, n, 1000ms) in a loop;
//   * corrupting fdpoll->events makes every epoll_wait return -EFAULT
//     immediately: the thread spins in a tight failing loop (never touching
//     its mailbox again), burning scheduler slices — the capacity drop and
//     timing side channel measured by bench_cherokee_timing;
//   * a .data `fdpoll_table` keeps a global reference to each thread's
//     fdpoll object, the leakable anchor the PoC uses (mirrors Cherokee's
//     global thread list).
#pragma once

#include "analysis/target.h"

namespace crp::targets {

inline constexpr u16 kCherokeePort = 8082;
inline constexpr int kCherokeeThreads = 4;

analysis::TargetProgram make_cherokee();

/// Attacker-side helper mirroring the PoC's leak step: the runtime address
/// of worker `idx`'s fdpoll object (read through the global table).
gva_t cherokee_fdpoll_addr(const os::Process& proc, int idx);

}  // namespace crp::targets
