#include "targets/postgres.h"

#include <memory>

#include "targets/common.h"

namespace crp::targets {

namespace {

constexpr i64 kWesEvents = 0;  // epoll_event array pointer — the primitive
constexpr i64 kWesEpfd = 8;

isa::Image build_image() {
  Assembler a("postgres_sim");

  // ---- master -------------------------------------------------------------------
  a.label("entry");
  a.lea_pc(Reg::R1, "path_sock");
  sys(a, os::Sys::kUnlink);  // stale unix socket
  a.lea_pc(Reg::R1, "path_pid");
  a.movi(Reg::R2, static_cast<i64>(os::kOCreat | os::kOWronly));
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "net");
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.lea_pc(Reg::R2, "pid_text");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kWrite);
  a.mov(Reg::R1, Reg::R7);
  sys(a, os::Sys::kClose);
  a.lea_pc(Reg::R1, "path_pid");
  a.movi(Reg::R2, 0600);
  sys(a, os::Sys::kChmod);

  a.label("net");
  emit_listen(a, kPostgresPort, Reg::R7);
  a.label("accept_loop");
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kAccept);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "accept_loop");
  a.mov(Reg::R8, Reg::R0);
  a.lea_pc(Reg::R1, "backend_main");
  a.mov(Reg::R2, Reg::R8);
  sys(a, os::Sys::kSpawnWorker);
  a.jmp("accept_loop");

  // ---- worker (backend) — R1 = connection fd ----------------------------------------
  a.label("backend_main");
  a.mov(Reg::R10, Reg::R1);
  emit_heap_alloc(a, 4096, Reg::R8);  // WaitEventSet; events at +256
  a.mov(Reg::R1, Reg::R8);
  a.addi(Reg::R1, 256);
  a.store(Reg::R8, kWesEvents, Reg::R1, 8);
  sys(a, os::Sys::kEpollCreate);
  a.store(Reg::R8, kWesEpfd, Reg::R0, 8);
  a.load(Reg::R1, Reg::R8, 8, kWesEpfd);
  a.push(Reg::R8);
  a.push(Reg::R10);
  emit_epoll_add(a, Reg::R1, Reg::R10, "ev_scratch");
  a.pop(Reg::R10);
  a.pop(Reg::R8);

  a.label("b_loop");
  // epoll_wait(epfd, wes->events, 4, 5000) — the §V-A primitive.
  a.load(Reg::R1, Reg::R8, 8, kWesEpfd);
  a.load(Reg::R2, Reg::R8, 8, kWesEvents);
  a.movi(Reg::R3, 4);
  a.movi(Reg::R4, 5000);
  sys(a, os::Sys::kEpollWait);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "b_exit_err");   // EFAULT: graceful worker termination
  a.jcc(Cond::kEq, "b_exit_idle");  // client idle timeout
  // Ready: read the query (PC-materialized buffer: not attacker-steerable).
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "query_buf");
  a.movi(Reg::R3, 64);
  sys(a, os::Sys::kRead);
  a.cmpi(Reg::R0, 16);
  a.jcc(Cond::kLt, "b_exit_idle");  // EOF / short: done serving
  a.lea_pc(Reg::R2, "query_buf");
  a.load(Reg::R5, Reg::R2, 8, 0);
  a.cmpi(Reg::R5, static_cast<i64>(kOpVersion));
  a.jcc(Cond::kEq, "b_version");
  a.cmpi(Reg::R5, static_cast<i64>(kOpQuery));
  a.jcc(Cond::kEq, "b_query");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_err");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("b_loop");
  a.label("b_version");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ver");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("b_loop");
  a.label("b_query");
  // "Execute" the query: touch the catalog file, send one row back.
  a.lea_pc(Reg::R1, "path_catalog");
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "b_row");
  a.mov(Reg::R9, Reg::R0);
  a.mov(Reg::R1, Reg::R9);
  a.lea_pc(Reg::R2, "catalog_buf");
  a.movi(Reg::R3, 32);
  sys(a, os::Sys::kRead);
  a.mov(Reg::R1, Reg::R9);
  sys(a, os::Sys::kClose);
  a.label("b_row");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_row");
  a.movi(Reg::R3, 8);
  sys(a, os::Sys::kSend);
  a.jmp("b_loop");

  a.label("b_exit_err");
  a.movi(Reg::R1, 1);
  sys(a, os::Sys::kExitGroup);
  a.label("b_exit_idle");
  a.movi(Reg::R1, 0);
  sys(a, os::Sys::kExitGroup);

  a.data_zero("ev_scratch", 16);
  a.data_zero("query_buf", 64);
  a.data_zero("catalog_buf", 32);
  a.data_bytes("resp_ver", std::vector<u8>{'V', 'E', 'R', '1'});
  a.data_bytes("resp_err", std::vector<u8>{'E', 'R', 'R', '!'});
  a.data_cstr("resp_row", "ROW:42\r\n");
  a.data_cstr("path_sock", "/run/pg.sock");
  a.data_cstr("path_pid", "/run/pg.pid");
  a.data_cstr("path_catalog", "/db/catalog.dat");
  a.data_cstr("pid_text", "777");

  a.set_entry("entry");
  return a.build();
}

void workload(os::Kernel& k, int pid) {
  (void)pid;
  k.run(2'000'000);
  auto await = [&](os::ClientConn& c, size_t want) {
    std::string got;
    k.run_until(
        [&] {
          got += c.recv_all();
          return got.size() >= want || c.server_closed();
        },
        8'000'000);
    return got;
  };
  auto c1 = k.connect(kPostgresPort);
  if (!c1.has_value()) return;
  c1->send(wire_command(kOpVersion));
  await(*c1, 4);
  c1->send(wire_command(kOpQuery, 1));
  await(*c1, 8);
  c1->close();
  auto c2 = k.connect(kPostgresPort);
  if (c2.has_value()) {
    c2->send(wire_command(kOpQuery, 2));
    await(*c2, 8);
    c2->close();
  }
  k.run(1'000'000);
}

}  // namespace

analysis::TargetProgram make_postgres() {
  analysis::TargetProgram t;
  t.name = "postgres_sim";
  t.personality = vm::Personality::kLinux;
  t.images.push_back(std::make_shared<isa::Image>(build_image()));
  t.port = kPostgresPort;
  t.setup = [](os::Kernel& k) {
    k.vfs().put_dir("/run");
    k.vfs().put_file("/run/pg.sock", "");
    k.vfs().put_file("/db/catalog.dat", "pg_catalog v9.0                 ");
  };
  t.workload = workload;
  t.service_alive = [](os::Kernel& k, int pid) {
    (void)pid;
    return default_service_alive(k, kPostgresPort, 8'000'000);
  };
  return t;
}

}  // namespace crp::targets
