// Browser simulacra: "iexplore_sim" (IE 11 analog) and "firefox_sim"
// (Firefox 46 analog), Windows personality.
//
// Both load the generated system-DLL corpus plus the hand-authored
// ntcrit_sim DLL. The browser main loop pulls host-injected commands
// (GetCommand API) — the stand-in for DynamoRIO-driven page visits:
//   kCmdCall   — call an arbitrary DLL work function (a "page visit" step);
//   kCmdScript — route the call through jscript9_sim!RunScript, which first
//                runs MUTX::Enter (so script-triggered paths carry a
//                jscript9 frame on the call stack — the attribution the
//                paper's debugger script performs);
//   kCmdQuit   — exit.
//
// IE-specific construct (§VI-A): jscript9_sim!MUTX_Enter wraps a call to
// ntcrit_sim!EnterCriticalSection in a catch-all (filter == 0x1) scope. The
// ScriptEngine heap object holds a status byte and an embedded
// CRITICAL_SECTION whose +24 field points to a debug_info block;
// EnterCriticalSection dereferences debug_info+0x10 when the three control
// fields select the contended path. Corrupting debug_info turns MUTX_Enter
// into the paper's probing primitive: status 0 = probe read fine,
// status 1 = the catch-all handler ran.
//
// Firefox-specific constructs (§VI-B, §VII-A):
//   * ntcrit_sim!GuardedCopy — a dereference guarded by an exclusion-list
//     filter (not catch-all, but AV-capable). Only firefox_sim's background
//     poll thread ever calls it, reproducing "on the execution path only in
//     Firefox";
//   * the poll thread continuously services a probe_slot in .data
//     {+0 request addr, +8 value, +16 status} — no manual trigger needed;
//   * firefox_sim registers a vectored handler at runtime via
//     AddVectoredExceptionHandler — invisible to static scope-table
//     extraction (the paper's stated limitation), discoverable by the
//     VehScanner extension.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "os/kernel.h"
#include "targets/dll_corpus.h"

namespace crp::targets {

inline constexpr u64 kCmdCall = 1;
inline constexpr u64 kCmdScript = 2;
inline constexpr u64 kCmdQuit = 3;
inline constexpr u32 kApiGetCommand = 100;

class BrowserSim {
 public:
  enum class Kind : u8 { kIE, kFirefox };

  struct Options {
    Kind kind = Kind::kIE;
    u64 seed = 1;
    int filler_dlls = 0;  // extra small DLLs beyond the paper's named set
    /// Windows API ids the browser calls during browsing: the main image
    /// gets one call-stub export per id (rotating pointer-argument shapes:
    /// stack struct / volatile heap / guest-dereferenced heap — the three
    /// §V-B exclusion idioms), wired into visit_page()/crawl().
    std::vector<u32> api_stub_ids;
    /// Don't run startup (JsInit / VEH registration / poll thread) in the
    /// constructor: lets a tracer attach first so runtime registrations are
    /// observed — required for the VehScanner end-to-end flow. Call start().
    bool defer_start = false;
  };

  /// Builds the corpus, loads everything into a fresh process inside `k`,
  /// registers the command API and starts the main thread.
  BrowserSim(os::Kernel& k, Options opts);

  int pid() const { return pid_; }
  os::Kernel& kernel() { return k_; }
  os::Process& proc() { return k_.proc(pid_); }

  /// Run startup when constructed with defer_start (no-op otherwise/again).
  void start();
  const std::vector<GeneratedDll>& dlls() const { return dlls_; }
  Kind kind() const { return opts_.kind; }

  // --- workload driving ---------------------------------------------------

  /// Queue a simulated page visit: a seeded subset of hot work functions,
  /// some routed through the script engine.
  void visit_page(u64 site_id);

  /// Queue one call of every hot export (half through the script engine) —
  /// guarantees full on-path coverage like the paper's top-500 crawl.
  void crawl();

  /// Queue one script-triggered call of `fn_addr` (through RunScript).
  void run_script(gva_t fn_addr);

  /// Queue a plain call.
  void call_fn(gva_t fn_addr);

  void quit();

  /// Advance the kernel until the command queue drained (or budget).
  void pump(u64 budget = 20'000'000);

  size_t pending_commands() const { return cmds_.size(); }

  // --- attacker/TEST observability -------------------------------------------

  /// Runtime address of the jscript9 ScriptEngine object (the PoC's leaked
  /// anchor; stored in jscript9_sim's .data).
  gva_t script_engine_addr() const;
  /// Firefox probe slot (in firefox_sim's .data).
  gva_t probe_slot_addr() const;
  /// MUTX status field = [script_engine + 0].
  u64 mutx_status() const;
  /// Scripts fully processed so far (jscript9's completion counter).
  u64 script_done_count() const;

 private:
  struct Cmd {
    u64 op = 0, a = 0, b = 0;
  };

  void build_and_load();
  isa::Image build_ntcrit() const;
  isa::Image build_main() const;
  /// Runtime addresses of all hot-callable functions (DLL work exports +
  /// API stubs), gathered lazily.
  std::vector<gva_t> hot_targets();

  os::Kernel& k_;
  Options opts_;
  int pid_ = 0;
  bool started_ = false;
  std::vector<GeneratedDll> dlls_;
  std::deque<Cmd> cmds_;
};

}  // namespace crp::targets
