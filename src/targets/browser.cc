#include "targets/browser.h"

#include "targets/common.h"

namespace crp::targets {

namespace {

/// jscript9_sim hand-authored portion: ScriptEngine object, MUTX::Enter with
/// its catch-all scope, and the RunScript entry the browser routes script
/// commands through. ScriptEngine heap layout:
///   +0  status (0 = last EnterCriticalSection fine, 1 = handler ran)
///   +8  CRITICAL_SECTION { +0,+8,+16 control fields, +24 debug_info ptr }
///      (engine offsets +8, +16, +24, +32)
void emit_jscript9_extra(Assembler& a) {
  a.label("JsInit");
  a.movi(Reg::R1, 256);
  a.apicall(os::kApiHeapAlloc);
  a.mov(Reg::R7, Reg::R0);
  a.lea_pc(Reg::R2, "script_engine");
  a.store(Reg::R2, 0, Reg::R7, 8);
  a.movi(Reg::R1, 64);
  a.apicall(os::kApiHeapAlloc);
  a.store(Reg::R7, 32, Reg::R0, 8);  // debug_info (valid block)
  a.movi(Reg::R3, 0);
  a.store(Reg::R7, 0, Reg::R3, 8);   // status
  a.store(Reg::R7, 8, Reg::R3, 8);   // CS control fields: uncontended
  a.store(Reg::R7, 16, Reg::R3, 8);
  a.store(Reg::R7, 24, Reg::R3, 8);
  a.ret();
  a.export_fn("JsInit", "JsInit");

  a.label("MUTX_Enter");
  a.lea_pc(Reg::R7, "script_engine");
  a.load(Reg::R7, Reg::R7, 8);
  a.cmpi(Reg::R7, 0);
  a.jcc(Cond::kEq, "mutx_ret");
  a.movi(Reg::R3, 0);
  a.store(Reg::R7, 0, Reg::R3, 8);  // clear status before the call
  a.label("mutx_b");
  a.mov(Reg::R1, Reg::R7);
  a.addi(Reg::R1, 8);  // &CRITICAL_SECTION
  a.call_import("ntcrit_sim", "EnterCriticalSection");
  a.label("mutx_e");
  a.jmp("mutx_ret");
  a.label("mutx_h");  // catch-all handler: record the failure in status
  a.lea_pc(Reg::R7, "script_engine");
  a.load(Reg::R7, Reg::R7, 8);
  a.movi(Reg::R3, 1);
  a.store(Reg::R7, 0, Reg::R3, 8);
  a.label("mutx_ret");
  a.ret();
  a.export_fn("MUTX_Enter", "MUTX_Enter");
  a.scope("mutx_b", "mutx_e", "", "mutx_h");  // filter field = 0x1 (§VI-A)

  a.label("RunScript");  // R1 = script payload target (0 = none)
  a.push(Reg::R1);
  a.call("MUTX_Enter");  // processing new script code enters the engine lock
  a.pop(Reg::R11);
  a.cmpi(Reg::R11, 0);
  a.jcc(Cond::kEq, "rs_done");
  a.call_reg(Reg::R11);
  a.label("rs_done");
  // Engine bookkeeping: scripts-processed counter (lets callers — and the
  // PoC attacker — detect completion of one script round trip).
  a.lea_pc(Reg::R11, "script_done");
  a.load(Reg::R3, Reg::R11, 8);
  a.addi(Reg::R3, 1);
  a.store(Reg::R11, 0, Reg::R3, 8);
  a.ret();
  a.export_fn("RunScript", "RunScript");

  a.data_u64("script_engine", 0);
  a.data_u64("script_done", 0);
}

}  // namespace

BrowserSim::BrowserSim(os::Kernel& k, Options opts) : k_(k), opts_(opts) {
  build_and_load();
}

isa::Image BrowserSim::build_ntcrit() const {
  Assembler a("ntcrit_sim");
  a.set_dll(true);

  // EnterCriticalSection(R1 = &CS). The contended path (selected by the
  // three control fields) touches debug_info+0x10 — the §VI-A dereference.
  a.label("EnterCriticalSection");
  a.load(Reg::R3, Reg::R1, 8, 0);
  a.cmpi(Reg::R3, 0xC5C5);
  a.jcc(Cond::kNe, "ecs_fast");
  a.load(Reg::R3, Reg::R1, 8, 8);
  a.cmpi(Reg::R3, 1);
  a.jcc(Cond::kNe, "ecs_fast");
  a.load(Reg::R3, Reg::R1, 8, 16);
  a.cmpi(Reg::R3, 0);
  a.jcc(Cond::kNe, "ecs_fast");
  a.load(Reg::R4, Reg::R1, 8, 24);    // debug_info
  a.load(Reg::R5, Reg::R4, 8, 0x10);  // the probing dereference
  a.label("ecs_fast");
  a.movi(Reg::R0, 0);
  a.ret();
  a.export_fn("EnterCriticalSection", "EnterCriticalSection");

  // GuardedCopy(R1 = src) -> R0 = value, R2 = 0 ok / 1 faulted. Guarded by
  // an exclusion-list filter (AV-capable but NOT catch-all — §VI-B).
  a.label("GuardedCopy");
  a.label("gc_b");
  a.load(Reg::R0, Reg::R1, 8);
  a.label("gc_e");
  a.movi(Reg::R2, 0);
  a.ret();
  a.label("gc_h");
  a.movi(Reg::R0, -1);
  a.movi(Reg::R2, 1);
  a.ret();
  a.label("gc_filter");  // excludes breakpoint/illegal-op, accepts the rest
  a.cmpi(Reg::R1, static_cast<i64>(0x80000003));
  a.jcc(Cond::kEq, "gc_f_no");
  a.cmpi(Reg::R1, static_cast<i64>(0xC000001D));
  a.jcc(Cond::kEq, "gc_f_no");
  a.movi(Reg::R0, 1);
  a.ret();
  a.label("gc_f_no");
  a.movi(Reg::R0, 0);
  a.ret();
  a.scope("gc_b", "gc_e", "gc_filter", "gc_h");
  a.export_fn("GuardedCopy", "GuardedCopy");

  return a.build();
}

isa::Image BrowserSim::build_main() const {
  bool firefox = opts_.kind == Kind::kFirefox;
  Assembler a(firefox ? "firefox_sim" : "iexplore_sim");

  a.label("entry");
  a.call_import("jscript9_sim", "JsInit");
  if (firefox) {
    // Runtime-registered VEH (invisible to static scope-table extraction).
    a.movi(Reg::R1, 1);
    a.lea_pc(Reg::R2, "veh_h");
    a.apicall(os::kApiAddVeh);
    // Background poll thread: services probe requests with no manual trigger.
    a.lea_pc(Reg::R1, "poll_worker");
    a.movi(Reg::R2, 0);
    a.apicall(os::kApiCreateThread);
  }

  a.label("loop");
  a.lea_pc(Reg::R1, "cmdbuf");
  a.apicall(kApiGetCommand);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kEq, "idle");
  a.lea_pc(Reg::R7, "cmdbuf");
  a.load(Reg::R5, Reg::R7, 8, 0);
  a.load(Reg::R6, Reg::R7, 8, 8);
  a.cmpi(Reg::R5, static_cast<i64>(kCmdCall));
  a.jcc(Cond::kEq, "c_call");
  a.cmpi(Reg::R5, static_cast<i64>(kCmdScript));
  a.jcc(Cond::kEq, "c_script");
  a.cmpi(Reg::R5, static_cast<i64>(kCmdQuit));
  a.jcc(Cond::kEq, "c_quit");
  a.jmp("loop");
  a.label("c_call");
  a.mov(Reg::R11, Reg::R6);
  a.call_reg(Reg::R11);
  a.jmp("loop");
  a.label("c_script");
  a.mov(Reg::R1, Reg::R6);
  a.call_import("jscript9_sim", "RunScript");
  a.jmp("loop");
  a.label("c_quit");
  a.halt();
  a.label("idle");
  a.movi(Reg::R1, 1);
  a.apicall(os::kApiSleep);
  a.jmp("loop");

  // API call stubs for the §V-B funnel: each calls one API with a pointer
  // argument prepared in one of the paper's three non-controllable shapes.
  for (size_t i = 0; i < opts_.api_stub_ids.size(); ++i) {
    u32 id = opts_.api_stub_ids[i];
    std::string stub = strf("api_stub_%zu", i);
    a.label(stub);
    switch (i % 3) {
      case 0:  // short-lived stack structure
        a.mov(Reg::R1, Reg::SP);
        a.subi(Reg::R1, 256);
        break;
      case 1:  // volatile heap pointer, no stored reference
        a.movi(Reg::R1, 128);
        a.apicall(os::kApiHeapAlloc);
        a.mov(Reg::R1, Reg::R0);
        break;
      case 2:  // heap pointer the caller itself dereferences afterwards
        a.movi(Reg::R1, 128);
        a.apicall(os::kApiHeapAlloc);
        a.mov(Reg::R10, Reg::R0);
        a.mov(Reg::R1, Reg::R10);
        break;
    }
    a.mov(Reg::R2, Reg::R1);
    a.mov(Reg::R3, Reg::R1);
    a.mov(Reg::R4, Reg::R1);
    a.apicall(id);
    if (i % 3 == 2) a.load(Reg::R5, Reg::R10, 8);  // the out-of-API dereference
    a.ret();
    a.export_fn(stub, stub);
  }

  if (firefox) {
    // Poll thread: probe_slot = { +0 request addr, +8 value, +16 status }.
    a.label("poll_worker");
    a.label("pw_loop");
    a.lea_pc(Reg::R7, "probe_slot");
    a.load(Reg::R1, Reg::R7, 8, 0);
    a.cmpi(Reg::R1, 0);
    a.jcc(Cond::kEq, "pw_sleep");
    a.call_import("ntcrit_sim", "GuardedCopy");
    a.store(Reg::R7, 8, Reg::R0, 8);
    a.movi(Reg::R3, 2);  // mapped
    a.cmpi(Reg::R2, 0);
    a.jcc(Cond::kEq, "pw_ok");
    a.movi(Reg::R3, 1);  // unmapped (handler path)
    a.label("pw_ok");
    a.store(Reg::R7, 16, Reg::R3, 8);
    a.movi(Reg::R3, 0);
    a.store(Reg::R7, 0, Reg::R3, 8);
    a.label("pw_sleep");
    a.movi(Reg::R1, 1);
    a.apicall(os::kApiSleep);
    a.jmp("pw_loop");

    // VEH: resolve AVs by skipping the faulting instruction and counting.
    a.label("veh_h");  // R1 = &record
    a.load(Reg::R3, Reg::R1, 8, 0);
    a.cmpi(Reg::R3, static_cast<i64>(0xC0000005));
    a.jcc(Cond::kNe, "veh_pass");
    a.load(Reg::R3, Reg::R1, 8, 160);
    a.addi(Reg::R3, 16);
    a.store(Reg::R1, 160, Reg::R3, 8);
    a.lea_pc(Reg::R4, "veh_hits");
    a.load(Reg::R5, Reg::R4, 8);
    a.addi(Reg::R5, 1);
    a.store(Reg::R4, 0, Reg::R5, 8);
    a.movi(Reg::R0, -1);  // EXCEPTION_CONTINUE_EXECUTION
    a.ret();
    a.label("veh_pass");
    a.movi(Reg::R0, 0);  // EXCEPTION_CONTINUE_SEARCH
    a.ret();

    a.data_zero("probe_slot", 24);
    a.data_u64("veh_hits", 0);
  }

  a.data_zero("cmdbuf", 24);
  a.set_entry("entry");
  return a.build();
}

void BrowserSim::build_and_load() {
  // DLL corpus: jscript9 gets the hand-authored MUTX construct.
  for (const DllSpec& spec : paper_dll_specs()) {
    if (spec.name == "jscript9_sim") {
      dlls_.push_back(generate_dll(spec, opts_.seed, emit_jscript9_extra));
    } else {
      dlls_.push_back(generate_dll(spec, opts_.seed));
    }
  }
  for (const DllSpec& spec : filler_dll_specs(opts_.filler_dlls, opts_.seed ^ 0xF111))
    dlls_.push_back(generate_dll(spec, opts_.seed));

  // Command-injection API (one BrowserSim per kernel).
  os::ApiSpec cmd;
  cmd.id = kApiGetCommand;
  cmd.name = "GetCommand";
  cmd.args = {os::ArgKind::kPtrOut};
  cmd.ptr_sizes = {24};
  cmd.behavior = os::ApiBehavior::kValidating;
  cmd.impl = [this](os::Kernel&, os::Process& p, os::Thread&, const u64* args) -> os::ApiResult {
    if (cmds_.empty()) return {0, std::nullopt};
    Cmd c = cmds_.front();
    u8 buf[24];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<u8>(c.op >> (8 * i));
    for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<u8>(c.a >> (8 * i));
    for (int i = 0; i < 8; ++i) buf[16 + i] = static_cast<u8>(c.b >> (8 * i));
    if (!p.machine().mem().write(args[0], buf).ok) return {~0ull, std::nullopt};
    cmds_.pop_front();
    return {1, std::nullopt};
  };
  k_.winapi().add(std::move(cmd));

  pid_ = k_.create_process(opts_.kind == Kind::kFirefox ? "firefox_sim" : "iexplore_sim",
                           vm::Personality::kWindows, opts_.seed * 7919 + 13);
  os::Process& p = k_.proc(pid_);
  p.load(std::make_shared<isa::Image>(build_ntcrit()));
  for (const auto& d : dlls_) p.load(d.image);
  p.load(std::make_shared<isa::Image>(build_main()));
  if (!opts_.defer_start) start();
}

void BrowserSim::start() {
  if (started_) return;
  started_ = true;
  k_.start_process(pid_);
  // Let startup (JsInit, VEH registration, poll thread) complete.
  k_.run(300'000);
}

void BrowserSim::call_fn(gva_t fn_addr) { cmds_.push_back({kCmdCall, fn_addr, 0}); }

void BrowserSim::run_script(gva_t fn_addr) { cmds_.push_back({kCmdScript, fn_addr, 0}); }

void BrowserSim::quit() { cmds_.push_back({kCmdQuit, 0, 0}); }

std::vector<gva_t> BrowserSim::hot_targets() {
  os::Process& p = proc();
  std::vector<gva_t> hot;
  for (const auto& d : dlls_) {
    const vm::LoadedModule* mod = p.machine().module_named(d.image->name);
    if (mod == nullptr) continue;
    for (const auto& name : d.hot_exports) {
      gva_t addr = mod->export_addr(name);
      if (addr != 0) hot.push_back(addr);
    }
  }
  const vm::LoadedModule* main_mod = p.machine().module_named(
      opts_.kind == Kind::kFirefox ? "firefox_sim" : "iexplore_sim");
  if (main_mod != nullptr) {
    for (size_t i = 0; i < opts_.api_stub_ids.size(); ++i) {
      gva_t addr = main_mod->export_addr(strf("api_stub_%zu", i));
      if (addr != 0) hot.push_back(addr);
    }
  }
  return hot;
}

void BrowserSim::visit_page(u64 site_id) {
  Rng rng(opts_.seed * 1000003 + site_id);
  std::vector<gva_t> hot = hot_targets();
  if (hot.empty()) return;
  u64 calls = rng.range(8, 15);
  for (u64 i = 0; i < calls; ++i) {
    gva_t fn = hot[rng.below(hot.size())];
    if (rng.chance(0.25)) {
      run_script(fn);
    } else {
      call_fn(fn);
    }
  }
}

void BrowserSim::crawl() {
  bool via_script = false;
  for (gva_t addr : hot_targets()) {
    if (via_script) {
      run_script(addr);
    } else {
      call_fn(addr);
    }
    via_script = !via_script;
  }
}

void BrowserSim::pump(u64 budget) {
  k_.run_until([this] { return cmds_.empty(); }, budget);
  k_.run(50'000);  // let the last command finish executing
}

gva_t BrowserSim::script_engine_addr() const {
  const vm::LoadedModule* mod =
      k_.proc(pid_).machine().module_named("jscript9_sim");
  if (mod == nullptr) return 0;
  u64 v = 0;
  k_.proc(pid_).machine().mem().peek_u64(mod->symbol_addr("script_engine"), &v);
  return v;
}

gva_t BrowserSim::probe_slot_addr() const {
  const vm::LoadedModule* mod = k_.proc(pid_).machine().module_named("firefox_sim");
  return mod != nullptr ? mod->symbol_addr("probe_slot") : 0;
}

u64 BrowserSim::mutx_status() const {
  gva_t eng = script_engine_addr();
  u64 v = ~0ull;
  if (eng != 0) k_.proc(pid_).machine().mem().peek_u64(eng, &v);
  return v;
}

u64 BrowserSim::script_done_count() const {
  const vm::LoadedModule* mod = k_.proc(pid_).machine().module_named("jscript9_sim");
  u64 v = 0;
  if (mod != nullptr) k_.proc(pid_).machine().mem().peek_u64(mod->symbol_addr("script_done"), &v);
  return v;
}

}  // namespace crp::targets
