#include "targets/common.h"

namespace crp::targets {

gva_t plant_hidden_region(os::Process& proc, u64 size, u64 pattern) {
  gva_t base = proc.machine().layout().place(mem::RegionKind::kHidden, size, "hidden");
  CRP_CHECK(proc.machine().mem().map(base, size, mem::kPermR | mem::kPermW));
  for (u64 off = 0; off + 8 <= size; off += 8)
    CRP_CHECK(proc.machine().mem().poke_u64(base + off, pattern ^ off));
  return base;
}

bool default_service_alive(os::Kernel& k, u16 port, u64 budget) {
  auto client = k.connect(port);
  if (!client.has_value()) return false;
  client->send(wire_command(kOpVersion));
  std::string got;
  bool ok = k.run_until(
      [&] {
        got += client->recv_all();
        return got.size() >= 4;
      },
      budget);
  client->close();
  return ok && got.substr(0, 4) == "VER1";
}

}  // namespace crp::targets
