// lighttpd_sim: model of the Lighttpd 1.4 fdevent worker.
//
//   * single process, single thread, epoll loop (like nginx_sim, but uses
//     read()/write() rather than recv()/send() — the paper's usable
//     primitive for Lighttpd is `read`);
//   * per-connection heap chunk object; the request's argument field sets a
//     range offset that becomes part of the next read destination pointer —
//     so the read pointer is *network-tainted*, exercising the classic
//     libdft-style detection path (nginx_sim's pointer is heap-resident but
//     untainted);
//   * graceful connection teardown on read errors (including -EFAULT).
#pragma once

#include "analysis/target.h"

namespace crp::targets {

inline constexpr u16 kLighttpdPort = 8081;

analysis::TargetProgram make_lighttpd();

}  // namespace crp::targets
