// DLL corpus generator: synthesizes MVX DLLs with planted populations of
// SEH scope tables and filter functions, so Tables II and III can be
// re-derived by the static + symbolic + dynamic pipeline.
//
// Each DLL gets:
//   * `filters_total` unique filter functions, of which `filters_av` can
//     accept access violations — drawn from realistic shapes (catch-all is
//     a scope-table constant, AV-equality filters, exclusion lists, filters
//     reading the exception record, rejecting filters for specific codes,
//     statically-disabled config-gated filters, and delegating filters that
//     call an import — the "needs manual review" shape of §VII-A);
//   * `guarded` guarded code regions spread over exported work functions, of
//     which `guarded_av` reference AV-capable filters (or are catch-all);
//   * `on_path` of the AV-capable guarded regions live in work functions a
//     browsing workload actually calls (exports named "work_*"; off-path
//     regions live in "cold_*" exports).
//
// The generator only PLANTS structure. Whether a filter accepts AVs is
// re-decided by FilterClassifier via symbolic execution + SAT, and the
// on-path counts by real traced execution — that is the reproduction.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/image.h"
#include "util/rng.h"

namespace crp::targets {

struct DllSpec {
  std::string name;
  isa::Machine machine = isa::Machine::kX64;
  int guarded = 0;       // guarded code locations (Table II "before SB")
  int guarded_av = 0;    // with AV-capable filters (Table II "after SB")
  int on_path = 0;       // executed by the browsing workload (Table II col 3)
  int filters_total = 0; // unique filter functions (Table III "before SB")
  int filters_av = 0;    // AV-capable filter functions (Table III "after SB")
};

struct GeneratedDll {
  std::shared_ptr<const isa::Image> image;
  std::vector<std::string> hot_exports;   // called during page visits
  std::vector<std::string> cold_exports;  // never called by the workload
  DllSpec spec;
};

/// Generate one DLL. Deterministic in (spec, seed). `extra` may emit
/// additional hand-authored code/data/scopes into the same image (used to
/// plant jscript9_sim's MUTX::Enter construct).
GeneratedDll generate_dll(const DllSpec& spec, u64 seed,
                          const std::function<void(isa::Assembler&)>& extra = {});

/// The paper's Table II/III population for the browser experiment
/// (names follow the paper's DLL list; counts follow Tables II and III).
std::vector<DllSpec> paper_dll_specs();

/// The 32-bit sibling population for Table III's x32 columns (same DLL
/// names, machine = kX32, scaled filter counts — 32-bit system DLLs carry
/// somewhat smaller SEH populations).
std::vector<DllSpec> paper_dll_specs_x32();

/// A large filler population for the §V-C system-wide funnel: `n` additional
/// small DLLs whose totals bring the corpus to the paper's system-wide
/// numbers (6,745 handlers / 5,751 filters / 808 AV-capable).
std::vector<DllSpec> filler_dll_specs(int n, u64 seed);

}  // namespace crp::targets
