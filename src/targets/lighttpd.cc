#include "targets/lighttpd.h"

#include <memory>

#include "targets/common.h"

namespace crp::targets {

namespace {

// chunk object layout (heap, one per connection)
constexpr i64 kChkData = 0;   // base of data area (base+64)
constexpr i64 kChkPos = 8;    // current read destination — the primitive
constexpr i64 kChkFd = 16;
constexpr i64 kChkTotal = 24;
constexpr i64 kChkLast = 32;  // where the latest request actually landed
constexpr i64 kChkDataOff = 64;

isa::Image build_image() {
  Assembler a("lighttpd_sim");

  a.label("entry");
  // Startup: read config (first `read` call site; buffer is a PC-relative
  // global, i.e. not attacker-steerable — the verifier must skip it).
  a.lea_pc(Reg::R1, "path_conf");
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "net_setup");
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.lea_pc(Reg::R2, "conf_buf");
  a.movi(Reg::R3, 64);
  sys(a, os::Sys::kRead);
  a.mov(Reg::R1, Reg::R7);
  sys(a, os::Sys::kClose);

  a.label("net_setup");
  emit_listen(a, kLighttpdPort, Reg::R7);
  a.lea_pc(Reg::R2, "listener");
  a.store(Reg::R2, 0, Reg::R7, 8);
  sys(a, os::Sys::kEpollCreate);
  a.mov(Reg::R8, Reg::R0);
  a.lea_pc(Reg::R2, "epfd");
  a.store(Reg::R2, 0, Reg::R8, 8);
  emit_epoll_add(a, Reg::R8, Reg::R7, "ev_scratch");

  a.label("loop");
  a.lea_pc(Reg::R1, "epfd");
  a.load(Reg::R1, Reg::R1, 8);
  a.lea_pc(Reg::R2, "events");
  a.movi(Reg::R3, 8);
  a.movi(Reg::R4, -1);
  sys(a, os::Sys::kEpollWait);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLe, "loop");
  a.mov(Reg::R7, Reg::R0);
  a.movi(Reg::R9, 0);
  a.label("ev_loop");
  a.cmp(Reg::R9, Reg::R7);
  a.jcc(Cond::kGe, "loop");
  a.lea_pc(Reg::R2, "events");
  a.mov(Reg::R10, Reg::R9);
  a.shli(Reg::R10, 4);
  a.add(Reg::R2, Reg::R10);
  a.load(Reg::R10, Reg::R2, 8, 8);
  a.addi(Reg::R9, 1);
  a.lea_pc(Reg::R2, "listener");
  a.load(Reg::R2, Reg::R2, 8);
  a.cmp(Reg::R10, Reg::R2);
  a.jcc(Cond::kNe, "ev_conn");
  a.push(Reg::R7);
  a.push(Reg::R9);
  a.call("do_accept");
  a.pop(Reg::R9);
  a.pop(Reg::R7);
  a.jmp("ev_loop");
  a.label("ev_conn");
  a.push(Reg::R7);
  a.push(Reg::R9);
  a.call("do_read");
  a.pop(Reg::R9);
  a.pop(Reg::R7);
  a.jmp("ev_loop");

  // ---- do_accept (R10 = listener) -----------------------------------------
  a.label("do_accept");
  a.mov(Reg::R1, Reg::R10);
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kAccept);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "accept_out");
  a.mov(Reg::R8, Reg::R0);
  emit_heap_alloc(a, 4096, Reg::R11);
  a.mov(Reg::R1, Reg::R11);
  a.addi(Reg::R1, kChkDataOff);
  a.store(Reg::R11, kChkData, Reg::R1, 8);
  a.store(Reg::R11, kChkPos, Reg::R1, 8);
  a.store(Reg::R11, kChkFd, Reg::R8, 8);
  a.movi(Reg::R1, 0);
  a.store(Reg::R11, kChkTotal, Reg::R1, 8);
  a.lea_pc(Reg::R2, "conn_table");
  a.mov(Reg::R3, Reg::R8);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.store(Reg::R2, 0, Reg::R11, 8);
  a.lea_pc(Reg::R1, "epfd");
  a.load(Reg::R1, Reg::R1, 8);
  emit_epoll_add(a, Reg::R1, Reg::R8, "ev_scratch");
  a.label("accept_out");
  a.ret();

  // ---- do_read (R10 = conn fd) ----------------------------------------------
  a.label("do_read");
  a.lea_pc(Reg::R2, "conn_table");
  a.mov(Reg::R3, Reg::R10);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.load(Reg::R8, Reg::R2, 8);
  a.cmpi(Reg::R8, 0);
  a.jcc(Cond::kEq, "drop_conn");
  // read(fd, chunk->pos, 64) — THE primitive (chunk->pos may be tainted).
  a.load(Reg::R2, Reg::R8, 8, kChkPos);
  a.mov(Reg::R1, Reg::R10);
  a.movi(Reg::R3, 64);
  sys(a, os::Sys::kRead);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLe, "drop_conn");  // error (EFAULT) or EOF: graceful close
  a.store(Reg::R8, kChkLast, Reg::R2, 8);  // remember where the bytes landed
  a.load(Reg::R4, Reg::R8, 8, kChkTotal);
  a.add(Reg::R4, Reg::R0);
  a.store(Reg::R8, kChkTotal, Reg::R4, 8);
  a.cmpi(Reg::R4, 16);
  a.jcc(Cond::kLt, "read_out");
  a.call("process");
  // Reset for keep-alive.
  a.movi(Reg::R4, 0);
  a.store(Reg::R8, kChkTotal, Reg::R4, 8);
  a.label("read_out");
  a.ret();
  a.label("drop_conn");
  a.mov(Reg::R1, Reg::R10);
  sys(a, os::Sys::kClose);
  a.lea_pc(Reg::R2, "conn_table");
  a.mov(Reg::R3, Reg::R10);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.movi(Reg::R4, 0);
  a.store(Reg::R2, 0, Reg::R4, 8);
  a.ret();

  // ---- process (R8 = chunk, R10 = fd) ------------------------------------------
  a.label("process");
  a.load(Reg::R11, Reg::R8, 8, kChkLast);
  a.load(Reg::R5, Reg::R11, 8, 0);  // op
  a.load(Reg::R6, Reg::R11, 8, 8);  // arg
  // Range handling: next request body lands at data + (arg & 0x3f) * 8 —
  // chunk->pos becomes a function of client bytes (tainted pointer!).
  a.andi(Reg::R6, 0x3f);
  a.shli(Reg::R6, 3);
  a.load(Reg::R4, Reg::R8, 8, kChkData);
  a.add(Reg::R4, Reg::R6);
  a.store(Reg::R8, kChkPos, Reg::R4, 8);

  a.cmpi(Reg::R5, static_cast<i64>(kOpVersion));
  a.jcc(Cond::kEq, "p_version");
  a.cmpi(Reg::R5, static_cast<i64>(kOpGet));
  a.jcc(Cond::kEq, "p_get");
  a.cmpi(Reg::R5, static_cast<i64>(kOpDelete));
  a.jcc(Cond::kEq, "p_del");
  a.cmpi(Reg::R5, static_cast<i64>(kOpAdmin));
  a.jcc(Cond::kEq, "p_lnk");
  a.label("p_err");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_err");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kWrite);
  a.ret();

  a.label("p_version");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ver");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kWrite);
  a.ret();

  a.label("p_get");
  a.lea_pc(Reg::R1, "path_www");
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "p_err");
  a.mov(Reg::R9, Reg::R0);
  a.mov(Reg::R1, Reg::R9);
  a.lea_pc(Reg::R2, "file_buf");
  a.movi(Reg::R3, 256);
  sys(a, os::Sys::kRead);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R9);
  sys(a, os::Sys::kClose);
  a.cmpi(Reg::R6, 0);
  a.jcc(Cond::kLt, "p_err");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "file_buf");
  a.mov(Reg::R3, Reg::R6);
  sys(a, os::Sys::kWrite);
  a.ret();

  a.label("p_del");
  a.lea_pc(Reg::R1, "path_tmp");
  sys(a, os::Sys::kUnlink);
  a.jmp("p_ok");

  a.label("p_lnk");
  a.lea_pc(Reg::R1, "path_www");
  a.lea_pc(Reg::R2, "path_link");
  sys(a, os::Sys::kSymlink);
  a.jmp("p_ok");

  a.label("p_ok");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ok");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kWrite);
  a.ret();

  a.data_u64("listener", 0);
  a.data_u64("epfd", 0);
  a.data_zero("conn_table", 64 * 8);
  a.data_zero("events", 8 * 16);
  a.data_zero("ev_scratch", 16);
  a.data_zero("conf_buf", 64);
  a.data_zero("file_buf", 256);
  a.data_bytes("resp_ver", std::vector<u8>{'V', 'E', 'R', '1'});
  a.data_bytes("resp_ok", std::vector<u8>{'O', 'K', '!', '!'});
  a.data_bytes("resp_err", std::vector<u8>{'E', 'R', 'R', '!'});
  a.data_cstr("path_conf", "/etc/lighttpd.conf");
  a.data_cstr("path_www", "/www/page.html");
  a.data_cstr("path_tmp", "/tmp/lighttpd.tmp");
  a.data_cstr("path_link", "/tmp/page.link");

  a.set_entry("entry");
  return a.build();
}

void workload(os::Kernel& k, int pid) {
  (void)pid;
  k.run(1'500'000);
  auto await = [&](os::ClientConn& c, size_t want) {
    std::string got;
    k.run_until(
        [&] {
          got += c.recv_all();
          return got.size() >= want || c.server_closed();
        },
        4'000'000);
    return got;
  };
  auto c1 = k.connect(kLighttpdPort);
  auto c2 = k.connect(kLighttpdPort);
  if (!c1.has_value() || !c2.has_value()) return;
  c1->send(wire_command(kOpVersion, 5));  // arg taints chunk->pos
  await(*c1, 4);
  // Second request on c1 arrives at the tainted position.
  c1->send(wire_command(kOpGet, 0));
  await(*c1, 4);
  c2->send(wire_command(kOpGet, 2));
  await(*c2, 4);
  c2->send(wire_command(kOpDelete, 0));
  await(*c2, 4);
  c1->send(wire_command(kOpAdmin, 0));
  await(*c1, 4);
  c1->close();
  c2->close();
  k.run(500'000);
}

}  // namespace

analysis::TargetProgram make_lighttpd() {
  analysis::TargetProgram t;
  t.name = "lighttpd_sim";
  t.personality = vm::Personality::kLinux;
  t.images.push_back(std::make_shared<isa::Image>(build_image()));
  t.port = kLighttpdPort;
  t.setup = [](os::Kernel& k) {
    k.vfs().put_file("/etc/lighttpd.conf", "server.port = 8081\n");
    k.vfs().put_file("/www/page.html", "<html>lighttpd_sim</html>");
    k.vfs().put_file("/tmp/lighttpd.tmp", "tmp");
  };
  t.workload = workload;
  t.service_alive = [](os::Kernel& k, int pid) {
    (void)pid;
    return default_service_alive(k, kLighttpdPort);
  };
  return t;
}

}  // namespace crp::targets
