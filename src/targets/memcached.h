// memcached_sim: model of the Memcached 1.4 event worker, including the
// paper's §V-A false positive.
//
//   * main thread only accepts and enqueues connection fds into a shared
//     ring for the single connection-handling thread (memcached's
//     libevent worker);
//   * the worker's epoll_wait takes its event-array pointer from a heap
//     object; on ANY epoll_wait error the worker thread exits while the
//     main thread keeps accepting — the process looks healthy, but no
//     connection is ever served again. A naive verifier calls that a valid
//     primitive; the service-liveness probe exposes it as a FALSE POSITIVE;
//   * read(fd, item->buf, n) with the buffer pointer in a per-connection
//     heap item object is the genuinely usable primitive (graceful
//     connection teardown on error);
//   * kOpStat exercises recvfrom (the UDP-ish stats path).
#pragma once

#include "analysis/target.h"

namespace crp::targets {

inline constexpr u16 kMemcachedPort = 11211;

analysis::TargetProgram make_memcached();

}  // namespace crp::targets
