#include "targets/jvm.h"

#include <memory>

#include "targets/common.h"

namespace crp::targets {

namespace {

isa::Image build_image() {
  Assembler a("jvm_sim");

  a.label("entry");
  // Heap "object" arena: the ref cell at +0 points at a valid object (+256).
  emit_heap_alloc(a, 4096, Reg::R8);
  a.mov(Reg::R1, Reg::R8);
  a.addi(Reg::R1, 256);
  a.store(Reg::R8, 0, Reg::R1, 8);
  a.movi(Reg::R2, 0x0B7EC7);  // object header the query reads back
  a.store(Reg::R1, 0, Reg::R2, 8);
  a.lea_pc(Reg::R2, "object_ref_ptr");
  a.store(Reg::R2, 0, Reg::R8, 8);
  // Install the null-check SIGSEGV handler: sigaction(11, &desc).
  a.lea_pc(Reg::R3, "nullcheck_handler");
  a.lea_pc(Reg::R2, "sigdesc");
  a.store(Reg::R2, 0, Reg::R3, 8);
  a.movi(Reg::R1, 11);
  sys(a, os::Sys::kSigaction);

  emit_listen(a, kJvmPort, Reg::R7);
  a.label("accept_loop");
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kAccept);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "accept_loop");
  a.mov(Reg::R10, Reg::R0);

  a.label("conn_loop");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "reqbuf");
  a.movi(Reg::R3, 64);
  sys(a, os::Sys::kRead);
  a.cmpi(Reg::R0, 16);
  a.jcc(Cond::kLt, "conn_close");
  a.lea_pc(Reg::R2, "reqbuf");
  a.load(Reg::R5, Reg::R2, 8, 0);
  a.cmpi(Reg::R5, static_cast<i64>(kOpVersion));
  a.jcc(Cond::kEq, "c_version");
  a.cmpi(Reg::R5, static_cast<i64>(kOpQuery));
  a.jcc(Cond::kEq, "c_query");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_err");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("conn_loop");

  a.label("c_version");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ver");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("conn_loop");

  // "Bytecode" with an implicit null check: dereference the object pointer;
  // the SIGSEGV handler converts a fault into the NPE flag + recovery stub.
  a.label("c_query");
  a.lea_pc(Reg::R4, "npe_flag");
  a.movi(Reg::R5, 0);
  a.store(Reg::R4, 0, Reg::R5, 8);
  a.lea_pc(Reg::R4, "object_ref_ptr");
  a.load(Reg::R4, Reg::R4, 8);   // ref cell (heap)
  a.load(Reg::R5, Reg::R4, 8);   // object pointer (attacker-corruptible)
  a.label("do_deref");
  a.load(Reg::R6, Reg::R5, 8);   // implicit null check: may SIGSEGV
  a.jmp("deref_done");
  a.label("deref_recover");      // handler redirects the saved pc here
  a.movi(Reg::R6, 0);
  a.label("deref_done");
  a.lea_pc(Reg::R4, "npe_flag");
  a.load(Reg::R5, Reg::R4, 8);
  a.cmpi(Reg::R5, 1);
  a.jcc(Cond::kEq, "c_npe");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_val");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("conn_loop");
  a.label("c_npe");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_npe");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("conn_loop");

  a.label("conn_close");
  a.mov(Reg::R1, Reg::R10);
  sys(a, os::Sys::kClose);
  a.jmp("accept_loop");

  // Null-check recovery handler: handler(signo, &siginfo, &ucontext).
  a.label("nullcheck_handler");
  a.cmpi(Reg::R1, 11);
  a.jcc(Cond::kNe, "nh_pass");
  a.lea_pc(Reg::R4, "npe_flag");
  a.movi(Reg::R5, 1);
  a.store(Reg::R4, 0, Reg::R5, 8);
  a.lea_pc(Reg::R5, "deref_recover");
  a.store(Reg::R2, 160, Reg::R5, 8);  // saved pc in the record/ucontext
  a.ret();
  a.label("nh_pass");
  a.ret();  // unchanged context: the kernel treats the signal as fatal

  a.data_u64("object_ref_ptr", 0);
  a.data_u64("npe_flag", 0);
  a.data_u64("sigdesc", 0);
  a.data_zero("reqbuf", 64);
  a.data_bytes("resp_ver", std::vector<u8>{'V', 'E', 'R', '1'});
  a.data_bytes("resp_val", std::vector<u8>{'V', 'A', 'L', ':'});
  a.data_bytes("resp_npe", std::vector<u8>{'N', 'P', 'E', '!'});
  a.data_bytes("resp_err", std::vector<u8>{'E', 'R', 'R', '!'});

  a.set_entry("entry");
  return a.build();
}

void workload(os::Kernel& k, int pid) {
  (void)pid;
  k.run(1'500'000);
  auto await = [&](os::ClientConn& c, size_t want) {
    std::string got;
    k.run_until(
        [&] {
          got += c.recv_all();
          return got.size() >= want || c.server_closed();
        },
        4'000'000);
    return got;
  };
  auto c = k.connect(kJvmPort);
  if (!c.has_value()) return;
  c->send(wire_command(kOpVersion));
  await(*c, 4);
  c->send(wire_command(kOpQuery));
  await(*c, 4);
  c->close();
  k.run(300'000);
}

}  // namespace

analysis::TargetProgram make_jvm() {
  analysis::TargetProgram t;
  t.name = "jvm_sim";
  t.personality = vm::Personality::kLinux;
  t.images.push_back(std::make_shared<isa::Image>(build_image()));
  t.port = kJvmPort;
  t.workload = workload;
  t.service_alive = [](os::Kernel& k, int pid) {
    (void)pid;
    return default_service_alive(k, kJvmPort);
  };
  return t;
}

gva_t jvm_object_ref_addr(const os::Process& proc) {
  const vm::LoadedModule* mod = proc.machine().module_named("jvm_sim");
  if (mod == nullptr) return 0;
  u64 cell = 0;
  proc.machine().mem().peek_u64(mod->symbol_addr("object_ref_ptr"), &cell);
  return cell;
}

}  // namespace crp::targets
