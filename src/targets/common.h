// Shared helpers for authoring target programs in MiniVM assembly and for
// planting the information-hiding regions the PoC exploits hunt.
//
// Register conventions used by all server simulacra:
//   R0      syscall number / return value
//   R1..R6  syscall arguments
//   R7..R11 locals (documented per routine)
//   Syscall wrappers clobber R0 only beyond their stated outputs.
#pragma once

#include <memory>
#include <string>

#include "isa/assembler.h"
#include "os/abi.h"
#include "os/kernel.h"

namespace crp::targets {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

/// movi R0, nr ; syscall  — args must already sit in R1..R6.
inline void sys(Assembler& a, os::Sys nr) {
  a.movi(Reg::R0, static_cast<i64>(nr));
  a.syscall();
}

/// Emit: create+bind+listen on `port`; leaves the listener fd in `fd_out`.
/// Clobbers R0, R1, R2.
inline void emit_listen(Assembler& a, u16 port, Reg fd_out) {
  sys(a, os::Sys::kSocket);
  a.mov(fd_out, Reg::R0);
  a.mov(Reg::R1, fd_out);
  a.movi(Reg::R2, port);
  sys(a, os::Sys::kBind);
  a.mov(Reg::R1, fd_out);
  sys(a, os::Sys::kListen);
}

/// Emit: epoll_ctl(epfd, ADD, fd, &scratch_event{events=IN, data=fd}).
/// Uses the named 16-byte .data cell `ev_sym` as the event struct.
/// Clobbers R0..R4, R11, R15. `epfd` and `fd` may be any of R1..R10
/// (they are snapshotted before any clobber); they must NOT be R11/R15.
inline void emit_epoll_add(Assembler& a, Reg epfd, Reg fd, const std::string& ev_sym) {
  CRP_CHECK(epfd != Reg::R11 && epfd != Reg::R15 && fd != Reg::R11 && fd != Reg::R15);
  a.mov(Reg::R15, fd);    // snapshot fd
  a.mov(Reg::R11, epfd);  // snapshot epfd
  a.push(Reg::R11);
  a.lea_pc(Reg::R11, ev_sym);
  a.movi(Reg::R4, static_cast<i64>(os::kEpollIn));
  a.store(Reg::R11, 0, Reg::R4, 8);
  a.store(Reg::R11, 8, Reg::R15, 8);
  a.pop(Reg::R1);  // epfd
  a.movi(Reg::R2, static_cast<i64>(os::kEpollCtlAdd));
  a.mov(Reg::R3, Reg::R15);
  a.mov(Reg::R4, Reg::R11);
  sys(a, os::Sys::kEpollCtl);
}

/// Emit: mmap(0, size, RW) -> `out`. Clobbers R0..R3.
inline void emit_heap_alloc(Assembler& a, u64 size, Reg out) {
  a.movi(Reg::R1, 0);
  a.movi(Reg::R2, static_cast<i64>(size));
  a.movi(Reg::R3, static_cast<i64>(os::kProtRead | os::kProtWrite));
  sys(a, os::Sys::kMmap);
  a.mov(out, Reg::R0);
}

/// 16-byte wire command used by all server protocols: 8-byte op tag +
/// 8-byte argument. Hosts build them with this helper.
inline std::string wire_command(u64 op, u64 arg = 0) {
  std::string s(16, '\0');
  for (int i = 0; i < 8; ++i) s[static_cast<size_t>(i)] = static_cast<char>(op >> (8 * i));
  for (int i = 0; i < 8; ++i) s[static_cast<size_t>(8 + i)] = static_cast<char>(arg >> (8 * i));
  return s;
}

// Common protocol ops (per-server subsets).
inline constexpr u64 kOpGet = 1;     // serve a static file
inline constexpr u64 kOpUpload = 2;  // open+write+chmod a temp file
inline constexpr u64 kOpDelete = 3;  // unlink
inline constexpr u64 kOpAdmin = 4;   // mkdir + symlink
inline constexpr u64 kOpProxy = 5;   // connect to an upstream and relay
inline constexpr u64 kOpLog = 6;     // sendmsg a log record
inline constexpr u64 kOpStat = 7;    // recvfrom-based stats path
inline constexpr u64 kOpQuery = 8;   // DB-style query (postgres)
inline constexpr u64 kOpVersion = 9; // liveness ping: responds "VER1"

/// Plant an information-hiding region (SafeStack / CPI safe-region analog)
/// in `proc`: mapped RW at a randomized address, filled with a recognizable
/// pattern, with NO references from any other mapped memory. Returns its
/// base (the experiment ground truth; the attacker must not be told).
gva_t plant_hidden_region(os::Process& proc, u64 size, u64 pattern);

/// Standard liveness probe: connect, send kOpVersion, expect 4+ bytes back.
bool default_service_alive(os::Kernel& k, u16 port, u64 budget = 3'000'000);

}  // namespace crp::targets
