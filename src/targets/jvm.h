// jvm_sim: a managed-runtime model exercising the Linux face of §III-B.
//
// Managed runtimes elide explicit null checks by letting the dereference
// fault: a SIGSEGV handler recognizes the faulting site, rewrites the saved
// pc in the ucontext to a recovery stub, and execution continues with a
// "NullPointerException" flag raised instead of a crash. That exact idiom
// is a crash-resistant primitive: an attacker who can steer the dereferenced
// pointer gets a read probe with the exception flag as the oracle output.
//
// jvm_sim's "interpreter loop" pulls commands from a socket:
//   kOpQuery  — dereference the object pointer stored in the heap-resident
//               `object_ref` cell and respond "VAL:" (mapped) or "NPE!"
//               (handler ran: unmapped);
//   kOpVersion — liveness.
#pragma once

#include "analysis/target.h"

namespace crp::targets {

inline constexpr u16 kJvmPort = 9100;

analysis::TargetProgram make_jvm();

/// Runtime address of the heap cell holding the dereferenced object pointer
/// (the attacker's corruption target).
gva_t jvm_object_ref_addr(const os::Process& proc);

}  // namespace crp::targets
