// postgres_sim: model of the PostgreSQL 9.0 process-per-connection
// architecture (§V-A "server programs that handle every new connection in
// an independent worker process").
//
//   * master: startup rituals (stale socket unlink, pidfile chmod), then an
//     accept loop that spawn_worker()s a fresh process per connection,
//     passing the accepted fd;
//   * worker: heap `WaitEventSet`-style object holds the epoll_event array
//     pointer; epoll_wait(epfd, wes->events, n, timeout) is the paper's
//     usable primitive — an error gracefully terminates the worker, which is
//     exactly what a worker is expected to do after serving, so the master
//     and the service stay healthy;
//   * the worker's query read buffer is PC-materialized, so `read` stays a
//     "±" row for PostgreSQL.
#pragma once

#include "analysis/target.h"

namespace crp::targets {

inline constexpr u16 kPostgresPort = 5432;

analysis::TargetProgram make_postgres();

}  // namespace crp::targets
