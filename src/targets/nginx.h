// nginx_sim: architecturally faithful model of the Nginx 1.9 event worker
// used in the paper's §VI-C proof of concept.
//
//   * single process, single thread, epoll event loop;
//   * per-connection heap `ngx_buf_t`-style buffer object
//       { +0 start, +8 pos, +16 last, +24 end, +32 fd, +40 received_total },
//     allocated when the first (possibly partial) request data arrives and
//     reachable through a writable connection table in .data (the attacker's
//     arbitrary R/W can leak and corrupt it — exactly the PoC protocol);
//   * recv(fd, buf->pos, avail) is the crash-resistant primitive: on any
//     error — including -EFAULT — the connection is terminated gracefully
//     and the server keeps serving other connections;
//   * auxiliary request ops exercise open/read/write/chmod/unlink/mkdir/
//     symlink/connect/send/sendmsg so Table I has realistic non-usable rows
//     (the response `send` re-dereferences its buffer pointer afterwards, so
//     corrupting it crashes — a "±" entry).
#pragma once

#include "analysis/target.h"

namespace crp::targets {

inline constexpr u16 kNginxPort = 8080;

/// Build the nginx_sim image + workload + liveness probe.
analysis::TargetProgram make_nginx();

}  // namespace crp::targets
