#include "targets/memcached.h"

#include <memory>

#include "targets/common.h"

namespace crp::targets {

namespace {

// Worker heap object: { +0 events_ptr, +8 epfd }.
// Per-connection item object: { +0 buf_ptr, +8 fd }, data at +64.
constexpr i64 kWEvents = 0;
constexpr i64 kWEpfd = 8;
constexpr i64 kItBuf = 0;
constexpr i64 kItDataOff = 64;

isa::Image build_image() {
  Assembler a("memcached_sim");

  // ---- main thread: accept + enqueue ------------------------------------------
  a.label("entry");
  emit_listen(a, kMemcachedPort, Reg::R7);
  a.lea_pc(Reg::R1, "conn_worker");
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kThreadCreate);
  a.label("accept_loop");
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kAccept);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "accept_loop");
  a.mov(Reg::R8, Reg::R0);
  // Enqueue into the single-slot handoff cell; spin (with yield) while full.
  a.label("enq");
  a.lea_pc(Reg::R2, "handoff");
  a.load(Reg::R3, Reg::R2, 8);
  a.cmpi(Reg::R3, 0);
  a.jcc(Cond::kEq, "enq_store");
  sys(a, os::Sys::kYield);
  a.jmp("enq");
  a.label("enq_store");
  a.store(Reg::R2, 0, Reg::R8, 8);
  a.jmp("accept_loop");

  // ---- connection worker thread --------------------------------------------------
  a.label("conn_worker");
  emit_heap_alloc(a, 4096, Reg::R8);  // worker object; events at +256
  a.mov(Reg::R1, Reg::R8);
  a.addi(Reg::R1, 256);
  a.store(Reg::R8, kWEvents, Reg::R1, 8);
  sys(a, os::Sys::kEpollCreate);
  a.store(Reg::R8, kWEpfd, Reg::R0, 8);

  a.label("w_loop");
  // Pull a pending fd, if any: allocate its item object + watch it.
  a.lea_pc(Reg::R2, "handoff");
  a.load(Reg::R4, Reg::R2, 8);
  a.cmpi(Reg::R4, 0);
  a.jcc(Cond::kEq, "w_poll");
  a.movi(Reg::R5, 0);
  a.store(Reg::R2, 0, Reg::R5, 8);
  a.push(Reg::R4);
  emit_heap_alloc(a, 4096, Reg::R11);  // item object
  a.pop(Reg::R4);
  a.mov(Reg::R1, Reg::R11);
  a.addi(Reg::R1, kItDataOff);
  a.store(Reg::R11, kItBuf, Reg::R1, 8);
  a.lea_pc(Reg::R2, "item_table");
  a.mov(Reg::R3, Reg::R4);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.store(Reg::R2, 0, Reg::R11, 8);
  a.load(Reg::R1, Reg::R8, 8, kWEpfd);
  a.push(Reg::R8);
  emit_epoll_add(a, Reg::R1, Reg::R4, "ev_scratch");
  a.pop(Reg::R8);

  a.label("w_poll");
  a.load(Reg::R1, Reg::R8, 8, kWEpfd);
  a.load(Reg::R2, Reg::R8, 8, kWEvents);
  a.movi(Reg::R3, 8);
  a.movi(Reg::R4, 200);
  sys(a, os::Sys::kEpollWait);
  // Keep the pointer actually handed to the kernel (attacker may swap the
  // heap field mid-call; real code iterates its local copy).
  a.mov(Reg::R7, Reg::R2);
  a.cmpi(Reg::R0, 0);
  // ANY epoll error kills the connection worker while main lives on — the
  // paper's false positive (§V-A).
  a.jcc(Cond::kLt, "w_die");
  a.jcc(Cond::kEq, "w_loop");
  a.mov(Reg::R10, Reg::R0);
  a.movi(Reg::R9, 0);
  a.label("w_ev");
  a.cmp(Reg::R9, Reg::R10);
  a.jcc(Cond::kGe, "w_loop");
  a.mov(Reg::R2, Reg::R7);
  a.mov(Reg::R3, Reg::R9);
  a.shli(Reg::R3, 4);
  a.add(Reg::R2, Reg::R3);
  a.load(Reg::R1, Reg::R2, 8, 8);  // fd
  a.addi(Reg::R9, 1);
  a.push(Reg::R7);
  a.push(Reg::R8);
  a.push(Reg::R9);
  a.push(Reg::R10);
  a.call("handle_conn");
  a.pop(Reg::R10);
  a.pop(Reg::R9);
  a.pop(Reg::R8);
  a.pop(Reg::R7);
  a.jmp("w_ev");
  a.label("w_die");
  a.movi(Reg::R1, 1);
  sys(a, os::Sys::kExit);  // thread exit; process stays "alive"

  // ---- handle_conn (R1 = fd) --------------------------------------------------------
  a.label("handle_conn");
  a.mov(Reg::R10, Reg::R1);
  a.lea_pc(Reg::R2, "item_table");
  a.mov(Reg::R3, Reg::R10);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.load(Reg::R8, Reg::R2, 8);  // item object
  a.cmpi(Reg::R8, 0);
  a.jcc(Cond::kEq, "hc_close");
  // read(fd, item->buf, 64) — the usable primitive.
  a.load(Reg::R2, Reg::R8, 8, kItBuf);
  a.mov(Reg::R1, Reg::R10);
  a.movi(Reg::R3, 64);
  sys(a, os::Sys::kRead);
  a.cmpi(Reg::R0, 16);
  a.jcc(Cond::kLt, "hc_close");  // EOF / error (EFAULT): drop the connection
  a.load(Reg::R4, Reg::R8, 8, kItBuf);
  a.load(Reg::R5, Reg::R4, 8, 0);  // op
  a.load(Reg::R6, Reg::R4, 8, 8);  // arg
  a.cmpi(Reg::R5, static_cast<i64>(kOpVersion));
  a.jcc(Cond::kEq, "hc_version");
  a.cmpi(Reg::R5, static_cast<i64>(kOpStat));
  a.jcc(Cond::kEq, "hc_stat");
  a.cmpi(Reg::R5, static_cast<i64>(kOpLog));
  a.jcc(Cond::kEq, "hc_log");
  // Default: treat as set/get into the slab (arg indexes a cache cell).
  a.andi(Reg::R6, 0x3f);
  a.shli(Reg::R6, 3);
  a.lea_pc(Reg::R2, "slab");
  a.add(Reg::R2, Reg::R6);
  a.load(Reg::R3, Reg::R4, 8, 8);
  a.store(Reg::R2, 0, Reg::R3, 8);
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_stored");
  a.movi(Reg::R3, 8);
  sys(a, os::Sys::kSend);
  a.ret();
  a.label("hc_version");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ver");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.ret();
  a.label("hc_stat");
  // UDP-ish stats path: recvfrom with a second heap destination + addr out.
  a.load(Reg::R2, Reg::R8, 8, kItBuf);
  a.addi(Reg::R2, 512);
  a.mov(Reg::R1, Reg::R10);
  a.movi(Reg::R3, 32);
  a.lea_pc(Reg::R4, "peer_addr");
  sys(a, os::Sys::kRecvfrom);
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_stats");
  a.movi(Reg::R3, 8);
  sys(a, os::Sys::kSend);
  a.ret();
  a.label("hc_log");
  // sendmsg-based trace output over the same connection.
  a.lea_pc(Reg::R2, "iovec");
  a.lea_pc(Reg::R3, "logline");
  a.store(Reg::R2, 0, Reg::R3, 8);
  a.movi(Reg::R3, 8);
  a.store(Reg::R2, 8, Reg::R3, 8);
  a.lea_pc(Reg::R3, "msghdr");
  a.store(Reg::R3, 0, Reg::R2, 8);
  a.movi(Reg::R4, 1);
  a.store(Reg::R3, 8, Reg::R4, 8);
  a.mov(Reg::R1, Reg::R10);
  a.mov(Reg::R2, Reg::R3);
  sys(a, os::Sys::kSendmsg);
  a.ret();
  a.label("hc_close");
  a.mov(Reg::R1, Reg::R10);
  sys(a, os::Sys::kClose);
  a.lea_pc(Reg::R2, "item_table");
  a.mov(Reg::R3, Reg::R10);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.movi(Reg::R4, 0);
  a.store(Reg::R2, 0, Reg::R4, 8);
  a.ret();

  a.data_u64("handoff", 0);
  a.data_zero("item_table", 64 * 8);
  a.data_zero("ev_scratch", 16);
  a.data_zero("slab", 64 * 8);
  a.data_zero("peer_addr", 8);
  a.data_zero("iovec", 16);
  a.data_zero("msghdr", 16);
  a.data_bytes("resp_ver", std::vector<u8>{'V', 'E', 'R', '1'});
  a.data_cstr("resp_stored", "STORED\r\n");
  a.data_cstr("resp_stats", "STAT 0\r\n");
  a.data_cstr("logline", "slablog\n");

  a.set_entry("entry");
  return a.build();
}

void workload(os::Kernel& k, int pid) {
  (void)pid;
  k.run(2'000'000);
  auto await = [&](os::ClientConn& c, size_t want) {
    std::string got;
    k.run_until(
        [&] {
          got += c.recv_all();
          return got.size() >= want || c.server_closed();
        },
        6'000'000);
    return got;
  };
  auto c1 = k.connect(kMemcachedPort);
  if (!c1.has_value()) return;
  c1->send(wire_command(kOpVersion));
  await(*c1, 4);
  c1->send(wire_command(100, 0x42));  // "set"
  await(*c1, 8);
  auto c2 = k.connect(kMemcachedPort);
  if (c2.has_value()) {
    c2->send(wire_command(kOpStat));
    k.run(500'000);
    c2->send("statspayload....");  // feeds the recvfrom
    await(*c2, 8);
    c2->send(wire_command(kOpLog));
    await(*c2, 8);
    c2->close();
  }
  c1->close();
  k.run(500'000);
}

}  // namespace

analysis::TargetProgram make_memcached() {
  analysis::TargetProgram t;
  t.name = "memcached_sim";
  t.personality = vm::Personality::kLinux;
  t.images.push_back(std::make_shared<isa::Image>(build_image()));
  t.port = kMemcachedPort;
  t.workload = workload;
  t.service_alive = [](os::Kernel& k, int pid) {
    (void)pid;
    return default_service_alive(k, kMemcachedPort, 8'000'000);
  };
  return t;
}

}  // namespace crp::targets
