#include "targets/nginx.h"

#include <memory>

#include "targets/common.h"

namespace crp::targets {

namespace {

// ngx_buf_t field offsets.
constexpr i64 kBufStart = 0;
constexpr i64 kBufPos = 8;
constexpr i64 kBufLast = 16;
constexpr i64 kBufEnd = 24;
constexpr i64 kBufFd = 32;
constexpr i64 kBufTotal = 40;
constexpr i64 kBufDataOff = 64;     // request bytes land here
constexpr i64 kBufFileOff = 2048;   // file contents staged here
constexpr i64 kBufDataEnd = 2048;   // end = base + kBufDataEnd

isa::Image build_image() {
  Assembler a("nginx_sim");

  // ---- startup rituals: config read, pidfile, stale-lock unlink ------------
  a.label("entry");
  a.lea_pc(Reg::R1, "path_conf");
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "startup_net");
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.lea_pc(Reg::R2, "conf_buf");
  a.movi(Reg::R3, 128);
  sys(a, os::Sys::kRead);
  a.mov(Reg::R1, Reg::R7);
  sys(a, os::Sys::kClose);
  // pidfile: open O_CREAT|O_WRONLY, write marker, chmod 0644.
  a.lea_pc(Reg::R1, "path_pid");
  a.movi(Reg::R2, static_cast<i64>(os::kOCreat | os::kOWronly));
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "startup_net");
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.lea_pc(Reg::R2, "pid_text");
  a.movi(Reg::R3, 5);
  sys(a, os::Sys::kWrite);
  a.mov(Reg::R1, Reg::R7);
  sys(a, os::Sys::kClose);
  a.lea_pc(Reg::R1, "path_pid");
  a.movi(Reg::R2, 0644);
  sys(a, os::Sys::kChmod);
  a.lea_pc(Reg::R1, "path_lock");
  sys(a, os::Sys::kUnlink);  // stale lock; error ignored

  // ---- listener + epoll ------------------------------------------------------
  a.label("startup_net");
  emit_listen(a, kNginxPort, Reg::R7);
  a.lea_pc(Reg::R2, "listener");
  a.store(Reg::R2, 0, Reg::R7, 8);
  sys(a, os::Sys::kEpollCreate);
  a.mov(Reg::R8, Reg::R0);
  a.lea_pc(Reg::R2, "epfd");
  a.store(Reg::R2, 0, Reg::R8, 8);
  emit_epoll_add(a, Reg::R8, Reg::R7, "ev_scratch");

  // ---- event loop -------------------------------------------------------------
  a.label("loop");
  a.lea_pc(Reg::R1, "epfd");
  a.load(Reg::R1, Reg::R1, 8);
  a.lea_pc(Reg::R2, "events");
  a.movi(Reg::R3, 16);
  a.movi(Reg::R4, -1);
  sys(a, os::Sys::kEpollWait);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLe, "loop");
  a.mov(Reg::R7, Reg::R0);  // n events
  a.movi(Reg::R9, 0);       // i
  a.label("ev_loop");
  a.cmp(Reg::R9, Reg::R7);
  a.jcc(Cond::kGe, "loop");
  a.lea_pc(Reg::R2, "events");
  a.mov(Reg::R10, Reg::R9);
  a.shli(Reg::R10, 4);
  a.add(Reg::R2, Reg::R10);
  a.load(Reg::R10, Reg::R2, 8, 8);  // event data = fd
  a.addi(Reg::R9, 1);
  // listener or connection?
  a.lea_pc(Reg::R2, "listener");
  a.load(Reg::R2, Reg::R2, 8);
  a.cmp(Reg::R10, Reg::R2);
  a.jcc(Cond::kNe, "ev_conn");
  a.push(Reg::R7);
  a.push(Reg::R9);
  a.call("handle_accept");
  a.pop(Reg::R9);
  a.pop(Reg::R7);
  a.jmp("ev_loop");
  a.label("ev_conn");
  a.push(Reg::R7);
  a.push(Reg::R9);
  a.call("handle_readable");
  a.pop(Reg::R9);
  a.pop(Reg::R7);
  a.jmp("ev_loop");

  // ---- handle_accept (R10 = listener fd) ---------------------------------------
  a.label("handle_accept");
  a.mov(Reg::R1, Reg::R10);
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kAccept);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "accept_done");
  a.mov(Reg::R8, Reg::R0);  // connection fd
  // Allocate the ngx_buf_t object (heap).
  emit_heap_alloc(a, 4096, Reg::R11);
  a.mov(Reg::R1, Reg::R11);
  a.addi(Reg::R1, kBufDataOff);
  a.store(Reg::R11, kBufStart, Reg::R1, 8);
  a.store(Reg::R11, kBufPos, Reg::R1, 8);
  a.store(Reg::R11, kBufLast, Reg::R1, 8);
  a.mov(Reg::R2, Reg::R11);
  a.addi(Reg::R2, kBufDataEnd);
  a.store(Reg::R11, kBufEnd, Reg::R2, 8);
  a.store(Reg::R11, kBufFd, Reg::R8, 8);
  a.movi(Reg::R2, 0);
  a.store(Reg::R11, kBufTotal, Reg::R2, 8);
  // conn_table[fd] = buf
  a.lea_pc(Reg::R2, "conn_table");
  a.mov(Reg::R3, Reg::R8);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.store(Reg::R2, 0, Reg::R11, 8);
  // watch the connection
  a.lea_pc(Reg::R1, "epfd");
  a.load(Reg::R1, Reg::R1, 8);
  emit_epoll_add(a, Reg::R1, Reg::R8, "ev_scratch");
  a.label("accept_done");
  a.ret();

  // ---- handle_readable (R10 = conn fd) ------------------------------------------
  a.label("handle_readable");
  a.lea_pc(Reg::R2, "conn_table");
  a.mov(Reg::R3, Reg::R10);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.load(Reg::R8, Reg::R2, 8);  // buf object (home = table slot)
  a.cmpi(Reg::R8, 0);
  a.jcc(Cond::kEq, "close_conn");
  // recv(fd, buf->pos, buf->end - buf->pos): the §VI-C primitive.
  a.load(Reg::R2, Reg::R8, 8, kBufPos);  // provenance: heap field buf+8
  a.load(Reg::R3, Reg::R8, 8, kBufEnd);
  a.sub(Reg::R3, Reg::R2);
  a.cmpi(Reg::R3, 0);
  a.jcc(Cond::kLe, "reset_buf");
  a.mov(Reg::R1, Reg::R10);
  sys(a, os::Sys::kRecv);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLe, "close_conn");  // EOF or error (EFAULT!): graceful close
  // advance pos/total
  a.load(Reg::R4, Reg::R8, 8, kBufTotal);
  a.add(Reg::R4, Reg::R0);
  a.store(Reg::R8, kBufTotal, Reg::R4, 8);
  a.add(Reg::R2, Reg::R0);
  a.store(Reg::R8, kBufPos, Reg::R2, 8);
  a.store(Reg::R8, kBufLast, Reg::R2, 8);
  // complete request (>= 16 bytes)?
  a.cmpi(Reg::R4, 16);
  a.jcc(Cond::kLt, "readable_done");
  a.call("process_request");
  a.label("reset_buf");
  a.load(Reg::R2, Reg::R8, 8, kBufStart);
  a.store(Reg::R8, kBufPos, Reg::R2, 8);
  a.movi(Reg::R2, 0);
  a.store(Reg::R8, kBufTotal, Reg::R2, 8);
  a.label("readable_done");
  a.ret();
  a.label("close_conn");
  a.mov(Reg::R1, Reg::R10);
  sys(a, os::Sys::kClose);
  a.lea_pc(Reg::R2, "conn_table");
  a.mov(Reg::R3, Reg::R10);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.movi(Reg::R4, 0);
  a.store(Reg::R2, 0, Reg::R4, 8);
  a.ret();

  // ---- process_request (R8 = buf, R10 = fd; may clobber R1..R6,R9,R11) ------------
  a.label("process_request");
  a.load(Reg::R11, Reg::R8, 8, kBufStart);
  a.load(Reg::R5, Reg::R11, 8, 0);  // op
  a.cmpi(Reg::R5, static_cast<i64>(kOpVersion));
  a.jcc(Cond::kEq, "pr_version");
  a.cmpi(Reg::R5, static_cast<i64>(kOpGet));
  a.jcc(Cond::kEq, "pr_get");
  a.cmpi(Reg::R5, static_cast<i64>(kOpUpload));
  a.jcc(Cond::kEq, "pr_upload");
  a.cmpi(Reg::R5, static_cast<i64>(kOpDelete));
  a.jcc(Cond::kEq, "pr_delete");
  a.cmpi(Reg::R5, static_cast<i64>(kOpAdmin));
  a.jcc(Cond::kEq, "pr_admin");
  a.cmpi(Reg::R5, static_cast<i64>(kOpProxy));
  a.jcc(Cond::kEq, "pr_proxy");
  a.cmpi(Reg::R5, static_cast<i64>(kOpLog));
  a.jcc(Cond::kEq, "pr_log");
  a.label("pr_err");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_err");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.ret();

  a.label("pr_version");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ver");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.ret();

  a.label("pr_get");
  a.lea_pc(Reg::R1, "path_www");
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "pr_err");
  a.mov(Reg::R9, Reg::R0);  // file fd
  // Stage file contents in the buf object's file area (heap pointer in R2,
  // reused for read, send, AND a post-send scrub — the scrub is the
  // out-of-fragment dereference that makes `send` crash under corruption).
  a.mov(Reg::R2, Reg::R11);
  a.addi(Reg::R2, kBufFileOff);
  a.mov(Reg::R1, Reg::R9);
  a.movi(Reg::R3, 1024);
  sys(a, os::Sys::kRead);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R9);
  sys(a, os::Sys::kClose);
  a.cmpi(Reg::R6, 0);
  a.jcc(Cond::kLt, "pr_err");
  a.mov(Reg::R1, Reg::R10);
  a.mov(Reg::R3, Reg::R6);
  sys(a, os::Sys::kSend);
  // Scrub the staging area through the same pointer.
  a.movi(Reg::R3, 0);
  a.store(Reg::R2, 0, Reg::R3, 8);
  a.ret();

  a.label("pr_upload");
  a.lea_pc(Reg::R1, "path_upload");
  a.movi(Reg::R2, static_cast<i64>(os::kOCreat | os::kOWronly | os::kOTrunc));
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "pr_err");
  a.mov(Reg::R9, Reg::R0);
  a.mov(Reg::R1, Reg::R9);
  a.lea_pc(Reg::R2, "upload_data");
  a.movi(Reg::R3, 8);
  sys(a, os::Sys::kWrite);
  a.mov(Reg::R1, Reg::R9);
  sys(a, os::Sys::kClose);
  a.lea_pc(Reg::R1, "path_upload");
  a.movi(Reg::R2, 0644);
  sys(a, os::Sys::kChmod);
  a.jmp("pr_ok");

  a.label("pr_delete");
  a.lea_pc(Reg::R1, "path_upload");
  sys(a, os::Sys::kUnlink);
  a.jmp("pr_ok");

  a.label("pr_admin");
  a.lea_pc(Reg::R1, "path_cache");
  a.movi(Reg::R2, 0755);
  sys(a, os::Sys::kMkdir);
  a.lea_pc(Reg::R1, "path_www");
  a.lea_pc(Reg::R2, "path_latest");
  sys(a, os::Sys::kSymlink);
  a.jmp("pr_ok");

  a.label("pr_proxy");
  sys(a, os::Sys::kSocket);
  a.mov(Reg::R9, Reg::R0);
  a.mov(Reg::R1, Reg::R9);
  a.lea_pc(Reg::R2, "upstream_addr");
  sys(a, os::Sys::kConnect);
  a.mov(Reg::R1, Reg::R9);
  sys(a, os::Sys::kClose);
  a.jmp("pr_ok");

  a.label("pr_log");
  // msghdr { iov_ptr, iovlen=1 }; iovec { &logline, 10 }
  a.lea_pc(Reg::R2, "iovec");
  a.lea_pc(Reg::R3, "logline");
  a.store(Reg::R2, 0, Reg::R3, 8);
  a.movi(Reg::R3, 10);
  a.store(Reg::R2, 8, Reg::R3, 8);
  a.lea_pc(Reg::R3, "msghdr");
  a.store(Reg::R3, 0, Reg::R2, 8);
  a.movi(Reg::R4, 1);
  a.store(Reg::R3, 8, Reg::R4, 8);
  a.mov(Reg::R1, Reg::R10);
  a.mov(Reg::R2, Reg::R3);
  sys(a, os::Sys::kSendmsg);
  a.jmp("pr_ok");

  a.label("pr_ok");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ok");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.ret();

  // ---- data -------------------------------------------------------------------
  a.data_u64("listener", 0);
  a.data_u64("epfd", 0);
  a.data_zero("conn_table", 64 * 8);
  a.data_zero("events", 16 * 16);
  a.data_zero("ev_scratch", 16);
  a.data_bytes("resp_ver", std::vector<u8>{'V', 'E', 'R', '1'});
  a.data_bytes("resp_ok", std::vector<u8>{'O', 'K', '!', '!'});
  a.data_bytes("resp_err", std::vector<u8>{'E', 'R', 'R', '!'});
  a.data_cstr("path_conf", "/etc/nginx.conf");
  a.data_cstr("path_pid", "/run/nginx.pid");
  a.data_cstr("path_lock", "/run/nginx.lock");
  a.data_cstr("path_www", "/www/index.html");
  a.data_cstr("path_upload", "/tmp/upload.bin");
  a.data_cstr("path_cache", "/tmp/ngx_cache");
  a.data_cstr("path_latest", "/tmp/latest");
  a.data_cstr("pid_text", "4242");
  a.data_cstr("upload_data", "UPLOAD!");
  a.data_cstr("logline", "GET / 200\n");
  a.data_u64("upstream_addr", 9999);
  a.data_zero("conf_buf", 128);
  a.data_zero("iovec", 16);
  a.data_zero("msghdr", 16);

  a.set_entry("entry");
  return a.build();
}

void workload(os::Kernel& k, int pid) {
  (void)pid;
  k.run(2'000'000);  // startup + park in epoll_wait

  auto await_reply = [&](os::ClientConn& c, size_t want) {
    std::string got;
    k.run_until(
        [&] {
          got += c.recv_all();
          return got.size() >= want || c.server_closed();
        },
        4'000'000);
    return got;
  };

  // Two parallel connections (the multi-connection capability of §V-A).
  auto c1 = k.connect(kNginxPort);
  auto c2 = k.connect(kNginxPort);
  if (!c1.has_value() || !c2.has_value()) return;

  c1->send(wire_command(kOpVersion));
  await_reply(*c1, 4);
  c2->send(wire_command(kOpGet));
  await_reply(*c2, 4);
  // Partial request on c1 (allocates + parks the buffer), completed later.
  c1->send(wire_command(kOpUpload).substr(0, 8));
  k.run(1'000'000);
  c1->send(wire_command(kOpUpload).substr(8));
  await_reply(*c1, 4);
  c1->send(wire_command(kOpDelete));
  await_reply(*c1, 4);
  c2->send(wire_command(kOpAdmin));
  await_reply(*c2, 4);
  c2->send(wire_command(kOpProxy));
  await_reply(*c2, 4);
  c1->send(wire_command(kOpLog));
  await_reply(*c1, 4);
  c1->close();
  c2->close();
  k.run(1'000'000);
}

}  // namespace

analysis::TargetProgram make_nginx() {
  analysis::TargetProgram t;
  t.name = "nginx_sim";
  t.personality = vm::Personality::kLinux;
  t.images.push_back(std::make_shared<isa::Image>(build_image()));
  t.port = kNginxPort;
  t.setup = [](os::Kernel& k) {
    k.vfs().put_file("/etc/nginx.conf", "worker_processes 1;\nlisten 8080;\n");
    k.vfs().put_file("/www/index.html", "<html><body>It works!</body></html>");
    k.vfs().put_dir("/run");
    k.vfs().put_dir("/tmp");
    k.vfs().put_file("/run/nginx.lock", "");
  };
  t.workload = workload;
  t.service_alive = [](os::Kernel& k, int pid) {
    (void)pid;
    return default_service_alive(k, kNginxPort);
  };
  return t;
}

}  // namespace crp::targets
