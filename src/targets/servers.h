// Aggregate accessor for the five Linux server simulacra of Table I.
#pragma once

#include <vector>

#include "targets/cherokee.h"
#include "targets/lighttpd.h"
#include "targets/memcached.h"
#include "targets/nginx.h"
#include "targets/postgres.h"

namespace crp::targets {

/// All five servers in the paper's Table I column order.
inline std::vector<analysis::TargetProgram> all_servers() {
  std::vector<analysis::TargetProgram> out;
  out.push_back(make_nginx());
  out.push_back(make_cherokee());
  out.push_back(make_lighttpd());
  out.push_back(make_memcached());
  out.push_back(make_postgres());
  return out;
}

}  // namespace crp::targets
