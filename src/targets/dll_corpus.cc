#include "targets/dll_corpus.h"

#include "isa/assembler.h"
#include "targets/common.h"

namespace crp::targets {

namespace {

constexpr i64 kAv = static_cast<i64>(0xC0000005);

/// Emit one filter function under `label`. `accepts` selects an AV-accepting
/// shape; otherwise a rejecting one. `shape` varies the idiom. Returns
/// whether the emitted filter is a "delegating" one (needs-manual).
bool emit_filter(Assembler& a, const std::string& label, bool accepts, u64 shape, Rng& rng) {
  a.label(label);
  if (accepts) {
    switch (shape % 5) {
      case 0:  // equality on the exception code argument
        a.cmpi(Reg::R1, kAv);
        a.jcc(Cond::kEq, label + "_y");
        a.movi(Reg::R0, 0);
        a.ret();
        a.label(label + "_y");
        a.movi(Reg::R0, 1);
        a.ret();
        break;
      case 1:  // unconditional accept (functionally catch-all)
        a.movi(Reg::R0, 1);
        a.ret();
        break;
      case 2: {  // exclusion list: everything except two specific codes
        a.cmpi(Reg::R1, static_cast<i64>(0x80000003));
        a.jcc(Cond::kEq, label + "_n");
        a.cmpi(Reg::R1, static_cast<i64>(0xC000001D));
        a.jcc(Cond::kEq, label + "_n");
        a.movi(Reg::R0, 1);
        a.ret();
        a.label(label + "_n");
        a.movi(Reg::R0, 0);
        a.ret();
        break;
      }
      case 3:  // reads the code from the exception record instead of R1
        a.load(Reg::R3, Reg::R2, 8, 0);
        a.cmpi(Reg::R3, kAv);
        a.jcc(Cond::kEq, label + "_y");
        a.movi(Reg::R0, 0);
        a.ret();
        a.label(label + "_y");
        a.movi(Reg::R0, 1);
        a.ret();
        break;
      case 4:  // accepts only read AVs (code == AV && access == read)
        a.cmpi(Reg::R1, kAv);
        a.jcc(Cond::kNe, label + "_n");
        a.load(Reg::R3, Reg::R2, 8, 24);
        a.cmpi(Reg::R3, 0);
        a.jcc(Cond::kNe, label + "_n");
        a.movi(Reg::R0, 1);
        a.ret();
        a.label(label + "_n");
        a.movi(Reg::R0, 0);
        a.ret();
        break;
    }
    return false;
  }
  // Delegating filters (shape 15) are rare in real DLL populations; keep
  // them ~6% so the "needs manual review" bucket stays a tail, not a mode.
  u64 rej_shape = shape % 16;
  u64 sel = rej_shape == 15 ? 3 : rej_shape % 3;
  switch (sel) {
    case 0: {  // accepts exactly one non-AV code
      static const i64 kOther[] = {static_cast<i64>(0xC0000094),
                                   static_cast<i64>(0xE0000001),
                                   static_cast<i64>(0x80000001),
                                   static_cast<i64>(0xC000001D)};
      a.cmpi(Reg::R1, kOther[rng.below(4)]);
      a.jcc(Cond::kEq, label + "_y");
      a.movi(Reg::R0, 0);
      a.ret();
      a.label(label + "_y");
      a.movi(Reg::R0, 1);
      a.ret();
      break;
    }
    case 1:  // always CONTINUE_SEARCH
      a.movi(Reg::R0, 0);
      a.ret();
      break;
    case 2:  // config-gated, statically disabled (§VII-A miss shape)
      a.lea_pc(Reg::R3, label + "_cfg");
      a.load(Reg::R4, Reg::R3, 8);
      a.cmpi(Reg::R4, 0);
      a.jcc(Cond::kNe, label + "_y");
      a.movi(Reg::R0, 0);
      a.ret();
      a.label(label + "_y");
      a.movi(Reg::R0, 1);
      a.ret();
      a.data_u64(label + "_cfg", 0);
      break;
    case 3:  // delegates to an imported policy hook: needs manual review
      a.call_import("policy", "get_disposition");
      a.ret();
      return true;
  }
  return false;
}

}  // namespace

GeneratedDll generate_dll(const DllSpec& spec, u64 seed,
                          const std::function<void(isa::Assembler&)>& extra) {
  CRP_CHECK(spec.guarded >= spec.guarded_av);
  CRP_CHECK(spec.filters_total >= spec.filters_av);
  CRP_CHECK(spec.guarded_av >= spec.filters_av);
  CRP_CHECK(spec.guarded - spec.guarded_av >= spec.filters_total - spec.filters_av);
  CRP_CHECK(spec.on_path <= spec.guarded_av);

  u64 name_hash = 1469598103934665603ull;
  for (char c : spec.name) name_hash = (name_hash ^ static_cast<u8>(c)) * 1099511628211ull;
  Rng rng(seed ^ name_hash);

  Assembler a(spec.name);
  a.set_dll(true);
  a.set_machine(spec.machine);

  // Region plan: (filter_label or "" for catch-all, av?, hot?).
  struct RegionPlan {
    std::string filter;  // empty = catch-all
    bool hot = false;
  };
  std::vector<RegionPlan> av_regions, rej_regions;

  int n_av_filters = spec.filters_av;
  int n_rej_filters = spec.filters_total - spec.filters_av;

  // Every accepting filter is referenced by at least one AV region; the
  // remaining AV regions use either a random accepting filter or catch-all.
  for (int i = 0; i < spec.guarded_av; ++i) {
    RegionPlan r;
    if (i < n_av_filters) {
      r.filter = strf("f_av_%d", i);
    } else if (n_av_filters > 0 && !rng.chance(0.25)) {
      r.filter = strf("f_av_%d", static_cast<int>(rng.below(static_cast<u64>(n_av_filters))));
    }  // else catch-all
    av_regions.push_back(r);
  }
  for (int i = 0; i < spec.guarded - spec.guarded_av; ++i) {
    RegionPlan r;
    if (i < n_rej_filters) {
      r.filter = strf("f_rej_%d", i);
    } else {
      CRP_CHECK(n_rej_filters > 0);
      r.filter = strf("f_rej_%d", static_cast<int>(rng.below(static_cast<u64>(n_rej_filters))));
    }
    rej_regions.push_back(r);
  }
  // Exactly `on_path` AV regions are hot; rejecting regions are split so hot
  // functions look like normal code (roughly half hot).
  rng.shuffle(av_regions);
  for (int i = 0; i < spec.on_path; ++i) av_regions[static_cast<size_t>(i)].hot = true;
  for (auto& r : rej_regions) r.hot = rng.chance(0.5);

  // Interleave into function bodies of 1..5 regions each.
  std::vector<RegionPlan> hot_plan, cold_plan;
  for (const auto& r : av_regions) (r.hot ? hot_plan : cold_plan).push_back(r);
  for (const auto& r : rej_regions) (r.hot ? hot_plan : cold_plan).push_back(r);
  rng.shuffle(hot_plan);
  rng.shuffle(cold_plan);

  GeneratedDll out;
  out.spec = spec;

  int region_id = 0;
  auto emit_functions = [&](std::vector<RegionPlan>& plan, const char* prefix,
                            std::vector<std::string>& exports) {
    size_t idx = 0;
    int fn_id = 0;
    while (idx < plan.size()) {
      size_t take = std::min<size_t>(1 + rng.below(5), plan.size() - idx);
      std::string fn = strf("%s_%d", prefix, fn_id++);
      a.label(fn);
      a.lea_pc(Reg::R4, "scratch");  // valid dereference target
      for (size_t j = 0; j < take; ++j) {
        const RegionPlan& r = plan[idx + j];
        std::string rb = strf("g%d_b", region_id);
        std::string re = strf("g%d_e", region_id);
        std::string rh = strf("g%d_h", region_id);
        std::string rc = strf("g%d_c", region_id);
        ++region_id;
        a.label(rb);
        a.load(Reg::R3, Reg::R4, 8);  // guarded dereference (valid at runtime)
        if (rng.chance(0.5)) a.addi(Reg::R3, 1);
        a.store(Reg::R4, 8, Reg::R3, 8);
        a.label(re);
        a.jmp(rc);
        a.label(rh);
        a.movi(Reg::R3, -1);  // handler: error sentinel, fall through
        a.label(rc);
        a.scope(rb, re, r.filter, rh);
      }
      a.movi(Reg::R0, 0);
      a.ret();
      a.export_fn(fn, fn);
      exports.push_back(fn);
      idx += take;
    }
  };
  emit_functions(hot_plan, (spec.name + "_work").c_str(), out.hot_exports);
  emit_functions(cold_plan, (spec.name + "_cold").c_str(), out.cold_exports);

  // Filter functions (unique per label).
  for (int i = 0; i < n_av_filters; ++i)
    emit_filter(a, strf("f_av_%d", i), true, rng.next(), rng);
  for (int i = 0; i < n_rej_filters; ++i)
    emit_filter(a, strf("f_rej_%d", i), false, rng.next(), rng);

  if (extra) extra(a);
  a.data_zero("scratch", 64);
  out.image = std::make_shared<isa::Image>(a.build());
  return out;
}

std::vector<DllSpec> paper_dll_specs() {
  // Counts follow Tables II and III, with minimal consistency adjustments
  // (a guarded-region count must be able to reference every unique filter;
  // deviations are at most +1..+8 and recorded in EXPERIMENTS.md).
  return {
      {"user32_sim", isa::Machine::kX64, 71, 63, 40, 17, 9},
      {"kernel32_sim", isa::Machine::kX64, 76, 66, 14, 60, 50},
      {"msvcrt_sim", isa::Machine::kX64, 130, 10, 3, 129, 9},
      // jscript9's planted counts leave room for the hand-authored
      // MUTX::Enter catch-all scope (+1 guarded, +1 AV-capable, +1 on-path).
      {"jscript9_sim", isa::Machine::kX64, 29, 5, 3, 29, 5},
      {"rpcrt4_sim", isa::Machine::kX64, 62, 20, 6, 33, 12},
      {"sechost_sim", isa::Machine::kX64, 133, 11, 0, 126, 4},
      {"ws2_32_sim", isa::Machine::kX64, 82, 29, 10, 55, 25},
      {"xmlite_sim", isa::Machine::kX64, 12, 2, 1, 10, 0},
      {"ntdll_sim", isa::Machine::kX64, 80, 30, 12, 71, 25},
      {"kernelbase_sim", isa::Machine::kX64, 60, 25, 8, 54, 21},
  };
}

std::vector<DllSpec> paper_dll_specs_x32() {
  std::vector<DllSpec> out;
  for (DllSpec s : paper_dll_specs()) {
    s.machine = isa::Machine::kX32;
    // Scale the populations; keep the generator invariants intact.
    s.filters_av = std::max(0, (s.filters_av * 3) / 4);
    s.filters_total = std::max(s.filters_av, (s.filters_total * 3) / 4);
    s.guarded_av = std::max(s.filters_av, (s.guarded_av * 3) / 4);
    s.guarded = std::max(s.guarded_av + (s.filters_total - s.filters_av),
                         (s.guarded * 3) / 4);
    s.on_path = 0;  // the 32-bit population is analyzed statically
    out.push_back(s);
  }
  return out;
}

std::vector<DllSpec> filler_dll_specs(int n, u64 seed) {
  Rng rng(seed);
  std::vector<DllSpec> out;
  for (int i = 0; i < n; ++i) {
    DllSpec s;
    s.name = strf("sysdll%03d_sim", i);
    s.machine = rng.chance(0.5) ? isa::Machine::kX64 : isa::Machine::kX32;
    // Tuned so ~177 filler DLLs plus the named set land near the paper's
    // system-wide §V-C totals: 6,745 handlers / 5,751 filters / 808
    // AV-capable filters used by 1,797 handlers / 385 executed guards.
    int filters = 15 + static_cast<int>(rng.below(29));  // avg ~29
    int av = rng.chance(0.73) ? static_cast<int>(rng.below(11)) : 0;  // avg ~3.65
    if (av > filters) av = filters;
    int guarded_av = av * 2 + static_cast<int>(rng.below(3));
    int guarded = guarded_av + (filters - av) + static_cast<int>(rng.below(2));
    int on_path = rng.chance(0.4) && guarded_av > 0
                      ? static_cast<int>(rng.below(static_cast<u64>(guarded_av) + 1))
                      : 0;
    s.filters_total = filters;
    s.filters_av = av;
    s.guarded = guarded;
    s.guarded_av = guarded_av;
    s.on_path = on_path;
    out.push_back(s);
  }
  return out;
}

}  // namespace crp::targets
