#include "targets/cherokee.h"

#include <memory>

#include "targets/common.h"

namespace crp::targets {

namespace {

// fdpoll object layout (heap, one per worker thread)
constexpr i64 kFpEvents = 0;  // pointer to the epoll_event array — the primitive
constexpr i64 kFpEpfd = 8;
constexpr i64 kFpIdx = 16;

// Iterations of per-request "content generation" work. This is what makes
// service time CPU-bound, so a stalled (spinning) sibling visibly inflates
// it — the §VI-D side channel.
constexpr i64 kWorkIters = 1500;

isa::Image build_image() {
  Assembler a("cherokee_sim");

  // ---- main thread: setup, then spawn the pool and idle --------------------------
  a.label("entry");
  a.lea_pc(Reg::R1, "path_cache");
  a.movi(Reg::R2, 0755);
  sys(a, os::Sys::kMkdir);
  a.lea_pc(Reg::R1, "path_log");
  a.movi(Reg::R2, static_cast<i64>(os::kOCreat | os::kOWronly));
  sys(a, os::Sys::kOpen);
  a.lea_pc(Reg::R2, "log_fd");
  a.store(Reg::R2, 0, Reg::R0, 8);

  emit_listen(a, kCherokeePort, Reg::R7);
  a.lea_pc(Reg::R2, "listener");
  a.store(Reg::R2, 0, Reg::R7, 8);
  a.movi(Reg::R9, 0);
  a.label("spawn_loop");
  a.cmpi(Reg::R9, kCherokeeThreads);
  a.jcc(Cond::kGe, "main_idle");
  a.lea_pc(Reg::R1, "worker");
  a.mov(Reg::R2, Reg::R9);
  sys(a, os::Sys::kThreadCreate);
  a.addi(Reg::R9, 1);
  a.jmp("spawn_loop");
  // Main idles on a long nanosleep loop (log flushing cadence).
  a.label("main_idle");
  a.lea_pc(Reg::R1, "idle_ns");
  sys(a, os::Sys::kNanosleep);
  a.jmp("main_idle");

  // ---- worker thread (R1 = index) --------------------------------------------------
  // Cherokee model: every worker owns an epoll set that watches the SHARED
  // listener plus its own accepted connections; idle workers sit in
  // epoll_wait with a timeout and race to accept (non-blocking) when the
  // listener fires.
  a.label("worker");
  a.mov(Reg::R9, Reg::R1);  // idx
  emit_heap_alloc(a, 4096, Reg::R8);  // fdpoll object; events array at +256
  a.mov(Reg::R1, Reg::R8);
  a.addi(Reg::R1, 256);
  a.store(Reg::R8, kFpEvents, Reg::R1, 8);
  sys(a, os::Sys::kEpollCreate);
  a.store(Reg::R8, kFpEpfd, Reg::R0, 8);
  a.store(Reg::R8, kFpIdx, Reg::R9, 8);
  // Publish in the global table (the PoC's leakable anchor).
  a.lea_pc(Reg::R2, "fdpoll_table");
  a.mov(Reg::R3, Reg::R9);
  a.shli(Reg::R3, 3);
  a.add(Reg::R2, Reg::R3);
  a.store(Reg::R2, 0, Reg::R8, 8);
  // Watch the shared listener.
  a.load(Reg::R1, Reg::R8, 8, kFpEpfd);
  a.lea_pc(Reg::R2, "listener");
  a.load(Reg::R2, Reg::R2, 8);
  a.push(Reg::R8);
  a.push(Reg::R9);
  emit_epoll_add(a, Reg::R1, Reg::R2, "ev_scratch");
  a.pop(Reg::R9);
  a.pop(Reg::R8);

  a.label("w_loop");
  // epoll_wait(epfd, fdpoll->events, 8, 1000) — the §VI-D primitive. The
  // wake is event-driven; the timeout only paces truly idle workers.
  a.load(Reg::R1, Reg::R8, 8, kFpEpfd);
  a.load(Reg::R2, Reg::R8, 8, kFpEvents);
  a.movi(Reg::R3, 8);
  a.movi(Reg::R4, 1000);
  sys(a, os::Sys::kEpollWait);
  // Iterate using the pointer value actually passed to the kernel (R2 ->
  // R7): like real code, the loop must not re-read fdpoll->events, which
  // the attacker may have swapped mid-call.
  a.mov(Reg::R7, Reg::R2);
  a.cmpi(Reg::R0, 0);
  // Failing (EFAULT) epoll_wait: tight retry loop — the stalled-thread
  // behavior whose CPU theft the timing attack measures.
  a.jcc(Cond::kLt, "w_loop");
  a.jcc(Cond::kEq, "w_loop");
  a.mov(Reg::R10, Reg::R0);
  a.movi(Reg::R11, 0);
  a.label("w_ev");
  a.cmp(Reg::R11, Reg::R10);
  a.jcc(Cond::kGe, "w_loop");
  a.mov(Reg::R2, Reg::R7);
  a.mov(Reg::R3, Reg::R11);
  a.shli(Reg::R3, 4);
  a.add(Reg::R2, Reg::R3);
  a.load(Reg::R1, Reg::R2, 8, 8);  // fd from event data
  a.addi(Reg::R11, 1);
  // Listener ready? Race to accept (non-blocking).
  a.lea_pc(Reg::R2, "listener");
  a.load(Reg::R2, Reg::R2, 8);
  a.cmp(Reg::R1, Reg::R2);
  a.jcc(Cond::kNe, "w_serve");
  a.movi(Reg::R2, 0);
  a.movi(Reg::R3, 1);  // non-blocking
  sys(a, os::Sys::kAccept);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "w_ev");  // a sibling won the race
  a.load(Reg::R1, Reg::R8, 8, kFpEpfd);
  a.mov(Reg::R2, Reg::R0);
  a.push(Reg::R7);
  a.push(Reg::R8);
  a.push(Reg::R9);
  a.push(Reg::R10);
  a.push(Reg::R11);
  emit_epoll_add(a, Reg::R1, Reg::R2, "ev_scratch");
  a.pop(Reg::R11);
  a.pop(Reg::R10);
  a.pop(Reg::R9);
  a.pop(Reg::R8);
  a.pop(Reg::R7);
  a.jmp("w_ev");
  a.label("w_serve");
  a.push(Reg::R7);
  a.push(Reg::R8);
  a.push(Reg::R9);
  a.push(Reg::R10);
  a.push(Reg::R11);
  a.call("serve_fd");
  a.pop(Reg::R11);
  a.pop(Reg::R10);
  a.pop(Reg::R9);
  a.pop(Reg::R8);
  a.pop(Reg::R7);
  a.jmp("w_ev");

  // ---- serve_fd (R1 = conn fd; R8 = fdpoll, R9 = idx live in caller) ----------------
  // One-shot protocol: read the 16-byte command, do the content-generation
  // work, respond, close, drop the epoll watch.
  a.label("serve_fd");
  a.mov(Reg::R10, Reg::R1);
  a.push(Reg::R8);  // fdpoll (needed for the DEL at the end)
  // Per-thread receive buffer: rbuf + idx*256.
  a.lea_pc(Reg::R2, "rbuf");
  a.mov(Reg::R3, Reg::R9);
  a.shli(Reg::R3, 8);
  a.add(Reg::R2, Reg::R3);
  a.mov(Reg::R1, Reg::R10);
  a.movi(Reg::R3, 256);
  sys(a, os::Sys::kRecv);
  a.cmpi(Reg::R0, 16);
  a.jcc(Cond::kLt, "s_close");  // short/EOF/error: drop the connection
  // Content generation: checksum loop over the request buffer (CPU-bound).
  a.lea_pc(Reg::R2, "rbuf");
  a.mov(Reg::R3, Reg::R9);
  a.shli(Reg::R3, 8);
  a.add(Reg::R2, Reg::R3);
  a.movi(Reg::R4, kWorkIters);
  a.movi(Reg::R5, 0);
  a.label("s_work");
  a.load(Reg::R6, Reg::R2, 8, 0);
  a.add(Reg::R5, Reg::R6);
  a.muli(Reg::R5, 31);
  a.xori(Reg::R5, 0x5a5a);
  a.subi(Reg::R4, 1);
  a.cmpi(Reg::R4, 0);
  a.jcc(Cond::kNe, "s_work");
  // Dispatch on the op.
  a.load(Reg::R5, Reg::R2, 8, 0);
  a.cmpi(Reg::R5, static_cast<i64>(kOpVersion));
  a.jcc(Cond::kEq, "s_version");
  a.cmpi(Reg::R5, static_cast<i64>(kOpGet));
  a.jcc(Cond::kEq, "s_get");
  a.cmpi(Reg::R5, static_cast<i64>(kOpLog));
  a.jcc(Cond::kEq, "s_log");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_err");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("s_close");
  a.label("s_version");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ver");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("s_close");
  a.label("s_get");
  a.lea_pc(Reg::R1, "path_www");
  a.movi(Reg::R2, 0);
  sys(a, os::Sys::kOpen);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLt, "s_err2");
  a.mov(Reg::R11, Reg::R0);
  a.mov(Reg::R1, Reg::R11);
  a.lea_pc(Reg::R2, "file_buf");
  a.movi(Reg::R3, 128);
  sys(a, os::Sys::kRead);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R11);
  sys(a, os::Sys::kClose);
  a.cmpi(Reg::R5, 0);
  a.jcc(Cond::kLt, "s_err2");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "file_buf");
  a.mov(Reg::R3, Reg::R5);
  sys(a, os::Sys::kSend);
  a.jmp("s_close");
  a.label("s_err2");
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_err");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("s_close");
  a.label("s_log");
  a.lea_pc(Reg::R1, "log_fd");
  a.load(Reg::R1, Reg::R1, 8);
  a.lea_pc(Reg::R2, "logline");
  a.movi(Reg::R3, 12);
  sys(a, os::Sys::kWrite);
  a.mov(Reg::R1, Reg::R10);
  a.lea_pc(Reg::R2, "resp_ok");
  a.movi(Reg::R3, 4);
  sys(a, os::Sys::kSend);
  a.jmp("s_close");
  a.label("s_close");
  // epoll_ctl(epfd, DEL, fd, 0) then close: no stale watches.
  a.pop(Reg::R8);
  a.load(Reg::R1, Reg::R8, 8, kFpEpfd);
  a.movi(Reg::R2, static_cast<i64>(os::kEpollCtlDel));
  a.mov(Reg::R3, Reg::R10);
  a.movi(Reg::R4, 0);
  sys(a, os::Sys::kEpollCtl);
  a.mov(Reg::R1, Reg::R10);
  sys(a, os::Sys::kClose);
  a.ret();

  a.data_zero("fdpoll_table", kCherokeeThreads * 8);
  a.data_zero("rbuf", kCherokeeThreads * 256);
  a.data_zero("ev_scratch", 16);
  a.data_zero("file_buf", 128);
  a.data_u64("listener", 0);
  a.data_u64("log_fd", 0);
  a.data_u64("idle_ns", 50'000'000);  // 50 ms main-thread idle cadence
  a.data_bytes("resp_ver", std::vector<u8>{'V', 'E', 'R', '1'});
  a.data_bytes("resp_ok", std::vector<u8>{'O', 'K', '!', '!'});
  a.data_bytes("resp_err", std::vector<u8>{'E', 'R', 'R', '!'});
  a.data_cstr("path_cache", "/var/cherokee");
  a.data_cstr("path_log", "/var/cherokee/access.log");
  a.data_cstr("path_www", "/www/cherokee.html");
  a.data_cstr("logline", "GET / 200 -\n");

  a.set_entry("entry");
  return a.build();
}

void workload(os::Kernel& k, int pid) {
  (void)pid;
  k.run(3'000'000);  // startup: workers parked in epoll_wait
  auto await = [&](os::ClientConn& c, size_t want) {
    std::string got;
    k.run_until(
        [&] {
          got += c.recv_all();
          return got.size() >= want || c.server_closed();
        },
        8'000'000);
    return got;
  };
  for (int round = 0; round < 3; ++round) {
    auto c = k.connect(kCherokeePort);
    if (!c.has_value()) return;
    c->send(wire_command(round == 0 ? kOpVersion : round == 1 ? kOpGet : kOpLog));
    await(*c, 4);
    c->close();
    k.run(200'000);
  }
}

}  // namespace

analysis::TargetProgram make_cherokee() {
  analysis::TargetProgram t;
  t.name = "cherokee_sim";
  t.personality = vm::Personality::kLinux;
  t.images.push_back(std::make_shared<isa::Image>(build_image()));
  t.port = kCherokeePort;
  t.setup = [](os::Kernel& k) {
    k.vfs().put_dir("/var");
    k.vfs().put_file("/www/cherokee.html", "<html>cherokee_sim</html>");
  };
  t.workload = workload;
  t.service_alive = [](os::Kernel& k, int pid) {
    (void)pid;
    // Any live worker picks the connection off the shared listener; retry a
    // couple of times anyway, like a real HTTP client.
    for (int attempt = 0; attempt < 3; ++attempt)
      if (default_service_alive(k, kCherokeePort, 10'000'000)) return true;
    return false;
  };
  return t;
}

gva_t cherokee_fdpoll_addr(const os::Process& proc, int idx) {
  const vm::LoadedModule* mod = proc.machine().module_named("cherokee_sim");
  if (mod == nullptr) return 0;
  gva_t table = mod->symbol_addr("fdpoll_table");
  u64 v = 0;
  if (!proc.machine().mem().peek_u64(table + static_cast<u64>(idx) * 8, &v)) return 0;
  return v;
}

}  // namespace crp::targets
