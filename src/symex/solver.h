// Solver facade: collect constraints, decide satisfiability, extract models.
// One-shot (build a Solver per query), mirroring how the analysis uses Z3 in
// the paper: one small QF_BV query per exception filter.
#pragma once

#include <unordered_map>
#include <vector>

#include "symex/bitblast.h"
#include "symex/expr.h"
#include "symex/sat.h"

namespace crp::symex {

class Solver {
 public:
  explicit Solver(Ctx& ctx) : ctx_(ctx), blaster_(ctx, sat_) {}

  /// Add a width-1 constraint.
  void add(ExprRef e) { constraints_.push_back(e); }

  /// Decide the conjunction of added constraints.
  SatResult check(u64 max_conflicts = 1u << 22);

  /// After kSat: model for a Ctx variable (0 when unconstrained).
  u64 model(ExprRef var_expr) const;

  /// After kSat: the full assignment keyed by Ctx var id.
  std::unordered_map<u32, u64> full_model() const;

  const SatSolver& sat() const { return sat_; }

 private:
  Ctx& ctx_;
  SatSolver sat_;
  BitBlaster blaster_;
  std::vector<ExprRef> constraints_;
  bool blasted_ = false;
  bool trivially_false_ = false;
};

}  // namespace crp::symex
