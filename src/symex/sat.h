// CDCL SAT solver: two-watched literals, 1UIP conflict learning, VSIDS-style
// activity, geometric restarts. Small but complete — the backend our
// bit-blaster targets (the from-scratch stand-in for Z3 in §IV-C).
#pragma once

#include <vector>

#include "util/common.h"

namespace crp::symex {

enum class SatResult : u8 { kSat = 0, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver();

  /// New variable; returns its 1-based index.
  int new_var();
  int num_vars() const { return nvars_; }

  /// Add a clause of signed DIMACS-style literals (+v / -v). Duplicate and
  /// opposite literals are normalized; the empty clause makes the instance
  /// trivially unsat.
  void add_clause(std::vector<int> lits);

  /// Solve; conflict-bounded for safety (kUnknown on budget exhaustion).
  SatResult solve(u64 max_conflicts = 1u << 22);

  /// After kSat: value of variable v in the model.
  bool model_value(int v) const;

  u64 conflicts() const { return conflicts_; }
  u64 decisions() const { return decisions_; }
  u64 propagations() const { return propagations_; }
  u64 restarts() const { return restarts_; }

 private:
  // Internal literal encoding: var v (1-based), positive -> 2v, negative -> 2v+1.
  static int enc(int lit) { return lit > 0 ? 2 * lit : -2 * lit + 1; }
  static int neg(int l) { return l ^ 1; }
  static int var_of(int l) { return l >> 1; }

  enum : u8 { kUndef = 2 };

  struct Clause {
    std::vector<int> lits;  // internal encoding
    bool learnt = false;
  };

  bool enqueue(int lit, int reason);
  int propagate();  // returns conflicting clause index or -1
  void analyze(int confl, std::vector<int>* learnt, int* out_level);
  void backtrack(int level);
  int pick_branch();
  void bump(int v);
  void decay();
  bool value_true(int l) const {
    u8 a = assign_[var_of(l)];
    return a != kUndef && (a == 1) == ((l & 1) == 0);
  }
  bool value_false(int l) const {
    u8 a = assign_[var_of(l)];
    return a != kUndef && (a == 1) != ((l & 1) == 0);
  }
  bool is_undef(int l) const { return assign_[var_of(l)] == kUndef; }
  void attach(int ci);

  int nvars_ = 0;
  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // per internal literal: clause indices
  std::vector<u8> assign_;                 // per var: 0/1/kUndef
  std::vector<int> level_;                 // per var
  std::vector<int> reason_;                // per var: clause index or -1
  std::vector<int> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;
  std::vector<double> activity_;
  double act_inc_ = 1.0;
  std::vector<u8> seen_;
  bool unsat_ = false;
  u64 conflicts_ = 0, decisions_ = 0, propagations_ = 0, restarts_ = 0;
};

}  // namespace crp::symex
