// Symbolic execution of exception-filter functions (§IV-C).
//
// A filter is MiniVM code inside an image, invoked with
//   R1 = exception code, R2 = &EXCEPTION_RECORD,
// returning a disposition in R0. The executor runs the filter on symbolic
// inputs directly against the *static* image (no process, no loader): code
// and initialized data are read at their build-time relative layout, the
// exception record's fields are free bitvector variables, and everything
// else reads as fresh unconstrained bytes.
//
// Exploration forks at symbolic branches (DFS, bounded by paths/steps) and
// yields one (path-condition, return-value) pair per completed path. The
// FilterClassifier then asks the solver: is
//     path ∧ exc_code = ACCESS_VIOLATION ∧ (ret = EXECUTE_HANDLER ∨
//                                            ret = CONTINUE_EXECUTION)
// satisfiable for any path?
//
// Deliberate approximations (documented behavior, exercised in tests):
//  * writable .data reads use the image's initial bytes — a filter gated on
//    a runtime-configured global is classified from its static value (this
//    reproduces the paper's miss of the post-update IE filter, §VII-A);
//  * calls to imported functions havoc R0 and taint the path as
//    `external_call`, which the classifier surfaces as "needs manual
//    review" instead of a clean verdict;
//  * symbolic addresses / symbolic call+ret targets abort the path.
#pragma once

#include <unordered_map>
#include <vector>

#include "isa/image.h"
#include "symex/expr.h"

namespace crp::symex {

struct FilterPath {
  ExprRef cond = kNullExpr;   // width-1 path condition
  ExprRef ret = kNullExpr;    // width-64 R0 at return
  bool external_call = false; // path consumed an unconstrained external result
  /// The path stored to the saved-pc slot of the exception record/ucontext —
  /// the recovery signature of signal handlers and CONTINUE_EXECUTION VEHs.
  bool wrote_saved_pc = false;
};

struct FilterAnalysis {
  std::vector<FilterPath> paths;
  bool truncated = false;   // budget exhausted or paths aborted
  u64 steps = 0;
};

class FilterExecutor {
 public:
  /// `image` must stay alive for the executor's lifetime.
  FilterExecutor(Ctx& ctx, const isa::Image& image);

  /// Symbolic inputs shared by all explorations from this executor.
  ExprRef exc_code() const { return exc_code_; }
  ExprRef fault_addr() const { return fault_addr_; }
  ExprRef access_kind() const { return access_kind_; }

  /// Calling convention of the analyzed function.
  ///   kSehFilter — R1 = exception code, R2 = &record (scope-table filters);
  ///   kVeh       — R1 = &record (vectored handlers registered at runtime;
  ///                the §VII-A extension that finds the Firefox oracle);
  ///   kSignal    — R1 = signo, R2 = &siginfo, R3 = &ucontext (Linux
  ///                sigaction handlers, §III-B; "handles" an AV by editing
  ///                the saved pc, i.e. wrote_saved_pc on some SIGSEGV path).
  enum class Proto : u8 { kSehFilter = 0, kVeh, kSignal };

  /// Explore the filter whose entry is code offset `filter_off`.
  FilterAnalysis explore(u64 filter_off, size_t max_paths = 64, u64 max_steps = 4096,
                         Proto proto = Proto::kSehFilter);

 private:
  struct State {
    u64 pc = 0;
    std::vector<ExprRef> regs;  // 16
    // flags source: last cmp/test operands
    enum class FlagSrc : u8 { kNone, kCmp, kTest } flag_src = FlagSrc::kNone;
    ExprRef flag_a = kNullExpr, flag_b = kNullExpr;
    std::unordered_map<u64, ExprRef> mem;  // byte address -> 8-bit expr
    ExprRef cond;                          // accumulated path condition
    bool external_call = false;
    bool wrote_saved_pc = false;
    u64 steps = 0;
  };

  ExprRef load_byte(State& st, u64 addr);
  ExprRef load(State& st, u64 addr, u8 width);
  void store(State& st, u64 addr, ExprRef value, u8 width);
  ExprRef cond_expr(const State& st, isa::Cond c);
  /// Static byte of the image at its build-time layout, if any.
  std::optional<u8> static_byte(u64 addr) const;

  Ctx& ctx_;
  const isa::Image& image_;
  u64 code_base_, data_base_, code_size_;
  ExprRef exc_code_, fault_addr_, access_kind_;
  u32 fresh_counter_ = 0;

  static constexpr u64 kCodeBase = 0x0000'0000'0010'0000ull;
  static constexpr u64 kRecBase = 0x0000'0000'7f00'0000ull;
  static constexpr u64 kStackTop = 0x0000'0000'7e00'0000ull;
  static constexpr u64 kRetSentinel = 0xFFFF'FFFF'FFFF'F000ull;
};

/// Disposition constants, re-exported for classifier queries.
inline constexpr u64 kDispExecuteHandler = 1;
inline constexpr u64 kDispContinueSearch = 0;
inline constexpr u64 kDispContinueExecution = ~0ull;  // -1 as u64

}  // namespace crp::symex
