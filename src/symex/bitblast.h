// Tseitin bit-blaster: lowers Ctx bitvector expressions to CNF over a
// SatSolver. Per-node literal-vector caching keeps shared subexpressions
// shared in the CNF.
#pragma once

#include <unordered_map>
#include <vector>

#include "symex/expr.h"
#include "symex/sat.h"

namespace crp::symex {

class BitBlaster {
 public:
  BitBlaster(Ctx& ctx, SatSolver& sat);

  /// Assert a width-1 expression true.
  void assert_true(ExprRef e);

  /// After SAT: read back the model value of a Ctx variable.
  u64 model_of_var(u32 var_id) const;

 private:
  /// Lits for each bit of `e` (LSB first). Signed DIMACS literals; the
  /// special pseudo-literals `true_lit_`/`-true_lit_` encode constants.
  const std::vector<int>& blast(ExprRef e);

  int fresh() { return sat_.new_var(); }
  int lit_true() const { return true_lit_; }
  int lit_false() const { return -true_lit_; }
  int mk_and(int a, int b);
  int mk_or(int a, int b);
  int mk_xor(int a, int b);
  int mk_ite(int c, int t, int f);
  int mk_eq_vec(const std::vector<int>& a, const std::vector<int>& b);
  int mk_ult_vec(const std::vector<int>& a, const std::vector<int>& b);
  std::vector<int> mk_add_vec(const std::vector<int>& a, const std::vector<int>& b,
                              int carry_in);
  std::vector<int> mk_shift(const std::vector<int>& a, const std::vector<int>& amt,
                            bool left, bool arith);

  Ctx& ctx_;
  SatSolver& sat_;
  int true_lit_;
  std::unordered_map<ExprRef, std::vector<int>> cache_;
  std::unordered_map<u32, std::vector<int>> var_lits_;  // Ctx var id -> lits
};

}  // namespace crp::symex
