#include "symex/solver.h"

namespace crp::symex {

SatResult Solver::check(u64 max_conflicts) {
  if (!blasted_) {
    for (ExprRef c : constraints_) {
      // Constant constraints short-circuit without touching the SAT solver.
      if (auto v = ctx_.const_value(c)) {
        if (*v == 0) trivially_false_ = true;
        continue;
      }
      blaster_.assert_true(c);
    }
    blasted_ = true;
  }
  if (trivially_false_) return SatResult::kUnsat;
  return sat_.solve(max_conflicts);
}

u64 Solver::model(ExprRef var_expr) const {
  const Expr& e = ctx_.get(var_expr);
  CRP_CHECK(e.kind == ExprKind::kVar);
  return blaster_.model_of_var(e.aux);
}

std::unordered_map<u32, u64> Solver::full_model() const {
  std::unordered_map<u32, u64> m;
  for (u32 v = 0; v < ctx_.num_vars(); ++v) m[v] = blaster_.model_of_var(v);
  return m;
}

}  // namespace crp::symex
