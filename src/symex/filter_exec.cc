#include "symex/filter_exec.h"

#include <deque>

#include "obs/obs.h"
#include "vm/exception.h"

namespace crp::symex {

using isa::Op;
using isa::Reg;

FilterExecutor::FilterExecutor(Ctx& ctx, const isa::Image& image) : ctx_(ctx), image_(image) {
  int cs = image_.code_section();
  CRP_CHECK(cs >= 0);
  const auto& sec = image_.sections[static_cast<size_t>(cs)];
  code_size_ = std::max<u64>(sec.vsize, sec.bytes.size());
  code_base_ = kCodeBase;
  data_base_ = kCodeBase + align_up(std::max<u64>(code_size_, 1), 4096);
  exc_code_ = ctx_.var("exc_code", 64);
  fault_addr_ = ctx_.var("fault_addr", 64);
  access_kind_ = ctx_.var("access_kind", 64);
}

std::optional<u8> FilterExecutor::static_byte(u64 addr) const {
  int cs = image_.code_section();
  const auto& code = image_.sections[static_cast<size_t>(cs)];
  if (addr >= code_base_ && addr < code_base_ + code.bytes.size())
    return code.bytes[addr - code_base_];
  // Data sections follow page-aligned in declaration order (assembler layout:
  // section 0 = .text, section 1 = .data).
  u64 cursor = data_base_;
  for (size_t i = 0; i < image_.sections.size(); ++i) {
    if (static_cast<int>(i) == cs) continue;
    const auto& sec = image_.sections[i];
    u64 vsize = std::max<u64>(sec.vsize, sec.bytes.size());
    if (addr >= cursor && addr < cursor + vsize) {
      u64 off = addr - cursor;
      return off < sec.bytes.size() ? sec.bytes[off] : u8{0};
    }
    cursor += align_up(std::max<u64>(vsize, 1), 4096);
  }
  return std::nullopt;
}

ExprRef FilterExecutor::load_byte(State& st, u64 addr) {
  auto it = st.mem.find(addr);
  if (it != st.mem.end()) return it->second;

  ExprRef v;
  if (addr >= kRecBase && addr < kRecBase + vm::kExcRecSize) {
    u64 off = addr - kRecBase;
    auto field_byte = [&](ExprRef field, u64 field_off) {
      return ctx_.extract(field, static_cast<u32>((off - field_off) * 8), 8);
    };
    if (off < 8) {
      v = field_byte(exc_code_, vm::kExcRecCode);
    } else if (off >= vm::kExcRecAddr && off < vm::kExcRecAddr + 8) {
      v = field_byte(fault_addr_, vm::kExcRecAddr);
    } else if (off >= vm::kExcRecAccess && off < vm::kExcRecAccess + 8) {
      v = field_byte(access_kind_, vm::kExcRecAccess);
    } else {
      v = ctx_.var(strf("rec_byte_%llu", static_cast<unsigned long long>(off)), 8);
    }
  } else if (auto sb = static_byte(addr)) {
    v = ctx_.constant(*sb, 8);
  } else {
    v = ctx_.var(strf("mem_%llx_%u", static_cast<unsigned long long>(addr), fresh_counter_++), 8);
  }
  st.mem.emplace(addr, v);
  return v;
}

ExprRef FilterExecutor::load(State& st, u64 addr, u8 width) {
  ExprRef v = load_byte(st, addr);
  for (u8 i = 1; i < width; ++i) v = ctx_.concat(load_byte(st, addr + i), v);
  return ctx_.zext(v, 64);
}

void FilterExecutor::store(State& st, u64 addr, ExprRef value, u8 width) {
  if (addr < kRecBase + vm::kExcRecCtxPc + 8 && addr + width > kRecBase + vm::kExcRecCtxPc)
    st.wrote_saved_pc = true;
  for (u8 i = 0; i < width; ++i)
    st.mem[addr + i] = ctx_.extract(value, 8 * static_cast<u32>(i), 8);
}

ExprRef FilterExecutor::cond_expr(const State& st, isa::Cond c) {
  using isa::Cond;
  if (st.flag_src == State::FlagSrc::kNone) return ctx_.bool_const(false);
  ExprRef a = st.flag_a, b = st.flag_b;
  if (st.flag_src == State::FlagSrc::kCmp) {
    switch (c) {
      case Cond::kEq: return ctx_.eq(a, b);
      case Cond::kNe: return ctx_.ne(a, b);
      case Cond::kLt: return ctx_.slt(a, b);
      case Cond::kGe: return ctx_.lnot(ctx_.slt(a, b));
      case Cond::kLe: return ctx_.sle(a, b);
      case Cond::kGt: return ctx_.lnot(ctx_.sle(a, b));
      case Cond::kUlt: return ctx_.ult(a, b);
      case Cond::kUge: return ctx_.lnot(ctx_.ult(a, b));
      case Cond::kUle: return ctx_.ule(a, b);
      case Cond::kUgt: return ctx_.lnot(ctx_.ule(a, b));
      case Cond::kCount: break;
    }
    return ctx_.bool_const(false);
  }
  // TEST semantics: v = a & b; ZF = v==0, SF = v<s0, CF = OF = 0.
  ExprRef v = ctx_.band(a, b);
  ExprRef zero = ctx_.constant(0, 64);
  switch (c) {
    case Cond::kEq: return ctx_.eq(v, zero);
    case Cond::kNe: return ctx_.ne(v, zero);
    case Cond::kLt: return ctx_.slt(v, zero);           // SF != OF, OF = 0
    case Cond::kGe: return ctx_.lnot(ctx_.slt(v, zero));
    case Cond::kLe: return ctx_.lor(ctx_.eq(v, zero), ctx_.slt(v, zero));
    case Cond::kGt: return ctx_.lnot(ctx_.lor(ctx_.eq(v, zero), ctx_.slt(v, zero)));
    case Cond::kUlt: return ctx_.bool_const(false);     // CF = 0
    case Cond::kUge: return ctx_.bool_const(true);
    case Cond::kUle: return ctx_.eq(v, zero);
    case Cond::kUgt: return ctx_.ne(v, zero);
    case Cond::kCount: break;
  }
  return ctx_.bool_const(false);
}

FilterAnalysis FilterExecutor::explore(u64 filter_off, size_t max_paths, u64 max_steps,
                                       Proto proto) {
  FilterAnalysis out;
  int cs = image_.code_section();
  const auto& code = image_.sections[static_cast<size_t>(cs)];

  State init;
  init.regs.assign(isa::kNumRegs, ctx_.constant(0, 64));
  init.pc = code_base_ + filter_off;
  init.cond = ctx_.bool_const(true);
  if (proto == Proto::kSehFilter) {
    init.regs[static_cast<size_t>(Reg::R1)] = exc_code_;
    init.regs[static_cast<size_t>(Reg::R2)] = ctx_.constant(kRecBase, 64);
  } else if (proto == Proto::kVeh) {
    init.regs[static_cast<size_t>(Reg::R1)] = ctx_.constant(kRecBase, 64);
  } else {  // kSignal: handler(signo, &siginfo, &ucontext)
    init.regs[static_cast<size_t>(Reg::R1)] = exc_code_;  // signo
    init.regs[static_cast<size_t>(Reg::R2)] = ctx_.constant(kRecBase, 64);
    init.regs[static_cast<size_t>(Reg::R3)] =
        ctx_.constant(kRecBase + vm::kExcRecRegs, 64);
  }
  init.regs[static_cast<size_t>(Reg::SP)] = ctx_.constant(kStackTop - 8, 64);
  store(init, kStackTop - 8, ctx_.constant(kRetSentinel, 64), 8);

  std::deque<State> work;
  work.push_back(std::move(init));

  while (!work.empty() && out.paths.size() < max_paths) {
    State st = std::move(work.back());
    work.pop_back();

    bool done = false;
    while (!done) {
      if (st.steps++ > max_steps) {
        out.truncated = true;
        break;
      }
      ++out.steps;
      if (st.pc == kRetSentinel) {
        out.paths.push_back({st.cond, st.regs[0], st.external_call, st.wrote_saved_pc});
        done = true;
        break;
      }
      if (st.pc < code_base_ || st.pc + isa::kInstrBytes > code_base_ + code.bytes.size()) {
        out.truncated = true;  // wandered outside the image
        break;
      }
      auto ins_opt = isa::decode(
          std::span<const u8>(code.bytes.data() + (st.pc - code_base_), isa::kInstrBytes));
      if (!ins_opt.has_value()) {
        out.truncated = true;
        break;
      }
      const isa::Instr& in = *ins_opt;
      u64 next = st.pc + isa::kInstrBytes;
      st.pc = next;

      auto& regs = st.regs;
      auto ra = [&]() -> ExprRef& { return regs[static_cast<size_t>(in.ra)]; };
      auto rb = [&]() -> ExprRef { return regs[static_cast<size_t>(in.rb)]; };
      ExprRef imm64 = ctx_.constant(static_cast<u64>(in.imm), 64);

      auto concrete = [&](ExprRef e) -> std::optional<u64> { return ctx_.const_value(e); };
      auto abort_path = [&] {
        out.truncated = true;
        done = true;
      };

      switch (in.op) {
        case Op::kNop: break;
        case Op::kMovRR: ra() = rb(); break;
        case Op::kMovRI: ra() = imm64; break;
        case Op::kLea: ra() = ctx_.add(rb(), imm64); break;
        case Op::kLeaPc: ra() = ctx_.constant(next + static_cast<u64>(in.imm), 64); break;
        case Op::kLoad: {
          auto addr = concrete(ctx_.add(rb(), imm64));
          if (!addr.has_value()) {
            // Load from a symbolic address: havoc the destination. This is
            // a sound over-approximation for satisfiability queries.
            ra() = ctx_.var(strf("symload_%u", fresh_counter_++), 64);
            break;
          }
          ra() = load(st, *addr, in.w);
          break;
        }
        case Op::kStore: {
          auto addr = concrete(ctx_.add(ra(), imm64));
          if (!addr.has_value()) {
            abort_path();  // symbolic store could clobber anything
            break;
          }
          store(st, *addr, rb(), in.w);
          break;
        }
        case Op::kPush: {
          auto sp = concrete(regs[static_cast<size_t>(Reg::SP)]);
          if (!sp.has_value()) {
            abort_path();
            break;
          }
          store(st, *sp - 8, ra(), 8);
          regs[static_cast<size_t>(Reg::SP)] = ctx_.constant(*sp - 8, 64);
          break;
        }
        case Op::kPop: {
          auto sp = concrete(regs[static_cast<size_t>(Reg::SP)]);
          if (!sp.has_value()) {
            abort_path();
            break;
          }
          ra() = load(st, *sp, 8);
          regs[static_cast<size_t>(Reg::SP)] = ctx_.constant(*sp + 8, 64);
          break;
        }
        case Op::kAddRR: ra() = ctx_.add(ra(), rb()); break;
        case Op::kAddRI: ra() = ctx_.add(ra(), imm64); break;
        case Op::kSubRR: ra() = ctx_.sub(ra(), rb()); break;
        case Op::kSubRI: ra() = ctx_.sub(ra(), imm64); break;
        case Op::kMulRR: ra() = ctx_.mul(ra(), rb()); break;
        case Op::kMulRI: ra() = ctx_.mul(ra(), imm64); break;
        case Op::kDivRR: ra() = ctx_.udiv(ra(), rb()); break;
        case Op::kModRR: ra() = ctx_.urem(ra(), rb()); break;
        case Op::kAndRR: ra() = ctx_.band(ra(), rb()); break;
        case Op::kAndRI: ra() = ctx_.band(ra(), imm64); break;
        case Op::kOrRR: ra() = ctx_.bor(ra(), rb()); break;
        case Op::kOrRI: ra() = ctx_.bor(ra(), imm64); break;
        case Op::kXorRR: ra() = ctx_.bxor(ra(), rb()); break;
        case Op::kXorRI: ra() = ctx_.bxor(ra(), imm64); break;
        case Op::kShlRI: ra() = ctx_.shl(ra(), ctx_.constant(static_cast<u64>(in.imm) & 63, 64)); break;
        case Op::kShrRI: ra() = ctx_.lshr(ra(), ctx_.constant(static_cast<u64>(in.imm) & 63, 64)); break;
        case Op::kSarRI: ra() = ctx_.ashr(ra(), ctx_.constant(static_cast<u64>(in.imm) & 63, 64)); break;
        case Op::kShlRR: ra() = ctx_.shl(ra(), ctx_.band(rb(), ctx_.constant(63, 64))); break;
        case Op::kShrRR: ra() = ctx_.lshr(ra(), ctx_.band(rb(), ctx_.constant(63, 64))); break;
        case Op::kNot: ra() = ctx_.bnot(ra()); break;
        case Op::kNeg: ra() = ctx_.neg(ra()); break;
        case Op::kCmpRR:
          st.flag_src = State::FlagSrc::kCmp;
          st.flag_a = ra();
          st.flag_b = rb();
          break;
        case Op::kCmpRI:
          st.flag_src = State::FlagSrc::kCmp;
          st.flag_a = ra();
          st.flag_b = imm64;
          break;
        case Op::kTestRR:
          st.flag_src = State::FlagSrc::kTest;
          st.flag_a = ra();
          st.flag_b = rb();
          break;
        case Op::kTestRI:
          st.flag_src = State::FlagSrc::kTest;
          st.flag_a = ra();
          st.flag_b = imm64;
          break;
        case Op::kJmp:
          st.pc = next + static_cast<u64>(in.imm);
          break;
        case Op::kJmpR: {
          auto t = concrete(ra());
          if (!t.has_value()) {
            abort_path();
            break;
          }
          st.pc = *t;
          break;
        }
        case Op::kJcc: {
          ExprRef c = cond_expr(st, static_cast<isa::Cond>(in.w));
          if (auto cv = concrete(c)) {
            if (*cv != 0) st.pc = next + static_cast<u64>(in.imm);
            break;
          }
          // Fork: fall-through state goes to the worklist, taken continues.
          State fall = st;
          fall.cond = ctx_.land(fall.cond, ctx_.lnot(c));
          work.push_back(std::move(fall));
          st.cond = ctx_.land(st.cond, c);
          st.pc = next + static_cast<u64>(in.imm);
          break;
        }
        case Op::kCall: {
          auto sp = concrete(regs[static_cast<size_t>(Reg::SP)]);
          if (!sp.has_value()) {
            abort_path();
            break;
          }
          store(st, *sp - 8, ctx_.constant(next, 64), 8);
          regs[static_cast<size_t>(Reg::SP)] = ctx_.constant(*sp - 8, 64);
          st.pc = next + static_cast<u64>(in.imm);
          break;
        }
        case Op::kCallR:
          abort_path();
          break;
        case Op::kCallImp:
          // External call: result unconstrained, remember the impurity.
          regs[0] = ctx_.var(strf("extcall_%u", fresh_counter_++), 64);
          st.external_call = true;
          break;
        case Op::kRet: {
          auto sp = concrete(regs[static_cast<size_t>(Reg::SP)]);
          if (!sp.has_value()) {
            abort_path();
            break;
          }
          ExprRef tgt = load(st, *sp, 8);
          auto t = concrete(tgt);
          if (!t.has_value()) {
            abort_path();
            break;
          }
          regs[static_cast<size_t>(Reg::SP)] = ctx_.constant(*sp + 8, 64);
          st.pc = *t;
          break;
        }
        case Op::kHalt:
        case Op::kSyscall:
        case Op::kApiCall:
        case Op::kCount:
          abort_path();  // impure or invalid in a filter
          break;
      }
    }
  }
  if (!work.empty()) out.truncated = true;
  {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("symex.filter.explored").inc();
    reg.counter("symex.filter.paths").inc(out.paths.size());
    if (out.truncated) reg.counter("symex.filter.truncated").inc();
  }
  return out;
}

}  // namespace crp::symex
