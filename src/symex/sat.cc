#include "symex/sat.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace crp::symex {

namespace {
/// Per-query deltas of the solver's lifetime counters, published to the
/// global registry when a solve() call completes.
struct SolveScope {
  SatSolver& s;
  u64 c0, d0, p0, r0;
  obs::ScopedTimer timer;

  explicit SolveScope(SatSolver& solver)
      : s(solver),
        c0(solver.conflicts()),
        d0(solver.decisions()),
        p0(solver.propagations()),
        r0(solver.restarts()),
        timer(obs::Registry::global().histogram("sat.solve_ns")) {}

  ~SolveScope() {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter& queries = reg.counter("sat.queries");
    static obs::Counter& conflicts = reg.counter("sat.conflicts");
    static obs::Counter& decisions = reg.counter("sat.decisions");
    static obs::Counter& propagations = reg.counter("sat.propagations");
    static obs::Counter& restarts = reg.counter("sat.restarts");
    queries.inc();
    conflicts.inc(s.conflicts() - c0);
    decisions.inc(s.decisions() - d0);
    propagations.inc(s.propagations() - p0);
    restarts.inc(s.restarts() - r0);
  }
};
}  // namespace

SatSolver::SatSolver() {
  // Var 0 unused; index arrays from 1.
  assign_.push_back(kUndef);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.resize(2);
}

int SatSolver::new_var() {
  ++nvars_;
  assign_.push_back(kUndef);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.resize(2 * static_cast<size_t>(nvars_) + 2);
  return nvars_;
}

void SatSolver::attach(int ci) {
  const Clause& c = clauses_[static_cast<size_t>(ci)];
  CRP_CHECK(c.lits.size() >= 2);
  watches_[static_cast<size_t>(c.lits[0])].push_back(ci);
  watches_[static_cast<size_t>(c.lits[1])].push_back(ci);
}

void SatSolver::add_clause(std::vector<int> lits) {
  if (unsat_) return;
  // Normalize: dedup, detect tautology.
  std::vector<int> enc_lits;
  for (int l : lits) {
    CRP_CHECK(l != 0 && std::abs(l) <= nvars_);
    enc_lits.push_back(enc(l));
  }
  std::sort(enc_lits.begin(), enc_lits.end());
  enc_lits.erase(std::unique(enc_lits.begin(), enc_lits.end()), enc_lits.end());
  for (size_t i = 0; i + 1 < enc_lits.size(); ++i)
    if (enc_lits[i] == neg(enc_lits[i + 1])) return;  // tautology

  // Remove already-false root-level literals; detect satisfied clauses.
  std::vector<int> out;
  for (int l : enc_lits) {
    if (trail_lim_.empty()) {
      if (value_true(l)) return;
      if (value_false(l)) continue;
    }
    out.push_back(l);
  }
  if (out.empty()) {
    unsat_ = true;
    return;
  }
  if (out.size() == 1) {
    if (!enqueue(out[0], -1)) unsat_ = true;
    if (!unsat_ && propagate() != -1) unsat_ = true;
    return;
  }
  clauses_.push_back({std::move(out), false});
  attach(static_cast<int>(clauses_.size() - 1));
}

bool SatSolver::enqueue(int lit, int reason) {
  if (value_false(lit)) return false;
  if (value_true(lit)) return true;
  int v = var_of(lit);
  assign_[static_cast<size_t>(v)] = (lit & 1) == 0 ? 1 : 0;
  level_[static_cast<size_t>(v)] = static_cast<int>(trail_lim_.size());
  reason_[static_cast<size_t>(v)] = reason;
  trail_.push_back(lit);
  return true;
}

int SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    int lit = trail_[qhead_++];
    ++propagations_;
    int flit = neg(lit);  // literal that just became false
    std::vector<int>& ws = watches_[static_cast<size_t>(flit)];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      int ci = ws[i];
      Clause& c = clauses_[static_cast<size_t>(ci)];
      // Ensure the false literal is at position 1.
      if (c.lits[0] == flit) std::swap(c.lits[0], c.lits[1]);
      if (value_true(c.lits[0])) {
        ws[keep++] = ci;
        continue;
      }
      // Find a new watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (!value_false(c.lits[k])) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<size_t>(c.lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      ws[keep++] = ci;
      if (!enqueue(c.lits[0], ci)) {
        // Conflict: keep remaining watchers, return.
        for (size_t k = i + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
    }
    ws.resize(keep);
  }
  return -1;
}

void SatSolver::bump(int v) {
  activity_[static_cast<size_t>(v)] += act_inc_;
  if (activity_[static_cast<size_t>(v)] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    act_inc_ *= 1e-100;
  }
}

void SatSolver::decay() { act_inc_ /= 0.95; }

void SatSolver::analyze(int confl, std::vector<int>* learnt, int* out_level) {
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting literal
  int counter = 0;
  int lit = -1;
  size_t idx = trail_.size();
  int cur_level = static_cast<int>(trail_lim_.size());

  int ci = confl;
  for (;;) {
    const Clause& c = clauses_[static_cast<size_t>(ci)];
    for (size_t j = (lit == -1 ? 0 : 1); j < c.lits.size(); ++j) {
      int q = c.lits[j];
      int v = var_of(q);
      if (seen_[static_cast<size_t>(v)] != 0 || level_[static_cast<size_t>(v)] == 0) continue;
      seen_[static_cast<size_t>(v)] = 1;
      bump(v);
      if (level_[static_cast<size_t>(v)] >= cur_level) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    // Find next literal on the trail to resolve.
    do {
      --idx;
      lit = trail_[idx];
    } while (seen_[static_cast<size_t>(var_of(lit))] == 0);
    seen_[static_cast<size_t>(var_of(lit))] = 0;
    --counter;
    if (counter == 0) break;
    ci = reason_[static_cast<size_t>(var_of(lit))];
    CRP_CHECK(ci >= 0);
    // Re-sort the reason clause so lits[0] is the implied literal.
    Clause& rc = clauses_[static_cast<size_t>(ci)];
    if (rc.lits[0] != lit) {
      for (size_t j = 1; j < rc.lits.size(); ++j)
        if (rc.lits[j] == lit) {
          std::swap(rc.lits[0], rc.lits[j]);
          break;
        }
    }
  }
  (*learnt)[0] = neg(lit);

  // Backtrack level = max level among the other literals.
  int bl = 0;
  for (size_t j = 1; j < learnt->size(); ++j)
    bl = std::max(bl, level_[static_cast<size_t>(var_of((*learnt)[j]))]);
  *out_level = bl;
  for (size_t j = 1; j < learnt->size(); ++j)
    seen_[static_cast<size_t>(var_of((*learnt)[j]))] = 0;
}

void SatSolver::backtrack(int bt_level) {
  while (static_cast<int>(trail_lim_.size()) > bt_level) {
    size_t lim = static_cast<size_t>(trail_lim_.back());
    for (size_t i = trail_.size(); i > lim; --i) {
      int v = var_of(trail_[i - 1]);
      assign_[static_cast<size_t>(v)] = kUndef;
      reason_[static_cast<size_t>(v)] = -1;
    }
    trail_.resize(lim);
    trail_lim_.pop_back();
  }
  qhead_ = trail_.size();
}

int SatSolver::pick_branch() {
  int best = 0;
  double best_act = -1.0;
  for (int v = 1; v <= nvars_; ++v) {
    if (assign_[static_cast<size_t>(v)] == kUndef && activity_[static_cast<size_t>(v)] > best_act) {
      best_act = activity_[static_cast<size_t>(v)];
      best = v;
    }
  }
  return best;
}

SatResult SatSolver::solve(u64 max_conflicts) {
  SolveScope scope(*this);
  if (unsat_) return SatResult::kUnsat;
  if (propagate() != -1) {
    unsat_ = true;
    return SatResult::kUnsat;
  }
  u64 restart_limit = 100;
  u64 since_restart = 0;

  for (;;) {
    int confl = propagate();
    if (confl != -1) {
      ++conflicts_;
      ++since_restart;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      if (conflicts_ > max_conflicts) return SatResult::kUnknown;
      std::vector<int> learnt;
      int bt = 0;
      analyze(confl, &learnt, &bt);
      backtrack(bt);
      if (learnt.size() == 1) {
        CRP_CHECK(enqueue(learnt[0], -1));
      } else {
        clauses_.push_back({learnt, true});
        int ci = static_cast<int>(clauses_.size() - 1);
        // Watch the asserting literal and a highest-level other literal.
        Clause& c = clauses_.back();
        size_t hi = 1;
        for (size_t j = 2; j < c.lits.size(); ++j)
          if (level_[static_cast<size_t>(var_of(c.lits[j]))] >
              level_[static_cast<size_t>(var_of(c.lits[hi]))])
            hi = j;
        std::swap(c.lits[1], c.lits[hi]);
        attach(ci);
        CRP_CHECK(enqueue(c.lits[0], ci));
      }
      decay();
      if (since_restart >= restart_limit) {
        since_restart = 0;
        restart_limit = restart_limit + restart_limit / 2;
        ++restarts_;
        backtrack(0);
      }
      continue;
    }
    // No conflict: decide.
    int v = pick_branch();
    if (v == 0) return SatResult::kSat;
    ++decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    CRP_CHECK(enqueue(2 * v + 1, -1));  // branch negative-first
  }
}

bool SatSolver::model_value(int v) const {
  CRP_CHECK(v >= 1 && v <= nvars_);
  return assign_[static_cast<size_t>(v)] == 1;
}

}  // namespace crp::symex
