#include "symex/bitblast.h"

namespace crp::symex {

BitBlaster::BitBlaster(Ctx& ctx, SatSolver& sat) : ctx_(ctx), sat_(sat) {
  true_lit_ = sat_.new_var();
  sat_.add_clause({true_lit_});
}

int BitBlaster::mk_and(int a, int b) {
  if (a == lit_false() || b == lit_false()) return lit_false();
  if (a == lit_true()) return b;
  if (b == lit_true()) return a;
  if (a == b) return a;
  if (a == -b) return lit_false();
  int o = fresh();
  sat_.add_clause({-o, a});
  sat_.add_clause({-o, b});
  sat_.add_clause({o, -a, -b});
  return o;
}

int BitBlaster::mk_or(int a, int b) { return -mk_and(-a, -b); }

int BitBlaster::mk_xor(int a, int b) {
  if (a == lit_false()) return b;
  if (b == lit_false()) return a;
  if (a == lit_true()) return -b;
  if (b == lit_true()) return -a;
  if (a == b) return lit_false();
  if (a == -b) return lit_true();
  int o = fresh();
  sat_.add_clause({-o, a, b});
  sat_.add_clause({-o, -a, -b});
  sat_.add_clause({o, -a, b});
  sat_.add_clause({o, a, -b});
  return o;
}

int BitBlaster::mk_ite(int c, int t, int f) {
  if (c == lit_true()) return t;
  if (c == lit_false()) return f;
  if (t == f) return t;
  return mk_or(mk_and(c, t), mk_and(-c, f));
}

int BitBlaster::mk_eq_vec(const std::vector<int>& a, const std::vector<int>& b) {
  CRP_CHECK(a.size() == b.size());
  int acc = lit_true();
  for (size_t i = 0; i < a.size(); ++i) acc = mk_and(acc, -mk_xor(a[i], b[i]));
  return acc;
}

int BitBlaster::mk_ult_vec(const std::vector<int>& a, const std::vector<int>& b) {
  // MSB-first lexicographic comparison.
  int lt = lit_false();
  int eq_so_far = lit_true();
  for (size_t i = a.size(); i > 0; --i) {
    int ai = a[i - 1], bi = b[i - 1];
    int this_lt = mk_and(-ai, bi);
    lt = mk_or(lt, mk_and(eq_so_far, this_lt));
    eq_so_far = mk_and(eq_so_far, -mk_xor(ai, bi));
  }
  return lt;
}

std::vector<int> BitBlaster::mk_add_vec(const std::vector<int>& a, const std::vector<int>& b,
                                        int carry_in) {
  CRP_CHECK(a.size() == b.size());
  std::vector<int> out(a.size());
  int carry = carry_in;
  for (size_t i = 0; i < a.size(); ++i) {
    int s = mk_xor(mk_xor(a[i], b[i]), carry);
    int c = mk_or(mk_and(a[i], b[i]), mk_and(carry, mk_xor(a[i], b[i])));
    out[i] = s;
    carry = c;
  }
  return out;
}

std::vector<int> BitBlaster::mk_shift(const std::vector<int>& a, const std::vector<int>& amt,
                                      bool left, bool arith) {
  // Barrel shifter over the log2(width) low bits of amt, with an
  // out-of-range guard over the remaining bits.
  size_t w = a.size();
  size_t stages = 0;
  while ((1ull << stages) < w) ++stages;
  int fill = arith ? a[w - 1] : lit_false();

  std::vector<int> cur = a;
  for (size_t s = 0; s < stages; ++s) {
    int sel = s < amt.size() ? amt[s] : lit_false();
    size_t dist = 1ull << s;
    std::vector<int> nxt(w);
    for (size_t i = 0; i < w; ++i) {
      int shifted;
      if (left) {
        shifted = i >= dist ? cur[i - dist] : lit_false();
      } else {
        shifted = i + dist < w ? cur[i + dist] : fill;
      }
      nxt[i] = mk_ite(sel, shifted, cur[i]);
    }
    cur = std::move(nxt);
  }
  // If any amt bit >= stages is set, the result is all-fill.
  int overflow = lit_false();
  for (size_t i = stages; i < amt.size(); ++i) overflow = mk_or(overflow, amt[i]);
  if (overflow != lit_false()) {
    for (size_t i = 0; i < w; ++i) cur[i] = mk_ite(overflow, left ? lit_false() : fill, cur[i]);
  }
  return cur;
}

const std::vector<int>& BitBlaster::blast(ExprRef r) {
  auto it = cache_.find(r);
  if (it != cache_.end()) return it->second;

  const Expr& e = ctx_.get(r);
  std::vector<int> out;

  switch (e.kind) {
    case ExprKind::kConst: {
      out.resize(e.width);
      for (u8 i = 0; i < e.width; ++i)
        out[i] = ((e.value >> i) & 1) != 0 ? lit_true() : lit_false();
      break;
    }
    case ExprKind::kVar: {
      auto vit = var_lits_.find(e.aux);
      if (vit == var_lits_.end()) {
        std::vector<int> lits(e.width);
        for (auto& l : lits) l = fresh();
        vit = var_lits_.emplace(e.aux, std::move(lits)).first;
      }
      out = vit->second;
      break;
    }
    case ExprKind::kAdd:
      out = mk_add_vec(blast(e.a), blast(e.b), lit_false());
      break;
    case ExprKind::kSub: {
      std::vector<int> nb = blast(e.b);
      for (auto& l : nb) l = -l;
      out = mk_add_vec(blast(e.a), nb, lit_true());
      break;
    }
    case ExprKind::kMul: {
      std::vector<int> a = blast(e.a), b = blast(e.b);
      size_t w = a.size();
      std::vector<int> acc(w, lit_false());
      for (size_t i = 0; i < w; ++i) {
        std::vector<int> part(w, lit_false());
        for (size_t j = 0; i + j < w; ++j) part[i + j] = mk_and(a[j], b[i]);
        acc = mk_add_vec(acc, part, lit_false());
      }
      out = std::move(acc);
      break;
    }
    case ExprKind::kUdiv:
    case ExprKind::kUrem: {
      // q*b + r = a with r < b and NO overflow (the product and the sum are
      // constrained in 2w bits with a zero high half), pinning q and r to
      // the true quotient/remainder. b == 0 follows SMT-LIB semantics.
      std::vector<int> a = blast(e.a), b = blast(e.b);
      size_t w = a.size();
      std::vector<int> q(w), rm(w);
      for (auto& l : q) l = fresh();
      for (auto& l : rm) l = fresh();
      // 2w-bit product of q and b.
      std::vector<int> q2 = q, b2 = b, r2 = rm, a2 = a;
      q2.resize(2 * w, lit_false());
      b2.resize(2 * w, lit_false());
      r2.resize(2 * w, lit_false());
      a2.resize(2 * w, lit_false());
      std::vector<int> prod(2 * w, lit_false());
      for (size_t i = 0; i < w; ++i) {  // b's high half is zero
        std::vector<int> part(2 * w, lit_false());
        for (size_t j = 0; i + j < 2 * w && j < w; ++j) part[i + j] = mk_and(q2[j], b2[i]);
        prod = mk_add_vec(prod, part, lit_false());
      }
      std::vector<int> sum = mk_add_vec(prod, r2, lit_false());
      int b_zero = lit_true();
      for (int l : b) b_zero = mk_and(b_zero, -l);
      int eq = mk_eq_vec(sum, a2);  // high half of sum must equal zero too
      int rlt = mk_ult_vec(rm, b);
      // b != 0 -> (q*b + r == a in 2w bits && r < b)
      sat_.add_clause({b_zero, mk_and(eq, rlt)});
      // b == 0 -> q = all-ones, r = a  (SMT-LIB)
      int q_ones = lit_true();
      for (int l : q) q_ones = mk_and(q_ones, l);
      int r_eq_a = mk_eq_vec(rm, a);
      sat_.add_clause({-b_zero, mk_and(q_ones, r_eq_a)});
      out = e.kind == ExprKind::kUdiv ? q : rm;
      break;
    }
    case ExprKind::kAnd: {
      std::vector<int> a = blast(e.a), b = blast(e.b);
      out.resize(a.size());
      for (size_t i = 0; i < a.size(); ++i) out[i] = mk_and(a[i], b[i]);
      break;
    }
    case ExprKind::kOr: {
      std::vector<int> a = blast(e.a), b = blast(e.b);
      out.resize(a.size());
      for (size_t i = 0; i < a.size(); ++i) out[i] = mk_or(a[i], b[i]);
      break;
    }
    case ExprKind::kXor: {
      std::vector<int> a = blast(e.a), b = blast(e.b);
      out.resize(a.size());
      for (size_t i = 0; i < a.size(); ++i) out[i] = mk_xor(a[i], b[i]);
      break;
    }
    case ExprKind::kNot: {
      out = blast(e.a);
      for (auto& l : out) l = -l;
      break;
    }
    case ExprKind::kNeg: {
      std::vector<int> a = blast(e.a);
      for (auto& l : a) l = -l;
      std::vector<int> one(a.size(), lit_false());
      out = mk_add_vec(a, one, lit_true());
      break;
    }
    case ExprKind::kShl:
      out = mk_shift(blast(e.a), blast(e.b), true, false);
      break;
    case ExprKind::kLshr:
      out = mk_shift(blast(e.a), blast(e.b), false, false);
      break;
    case ExprKind::kAshr:
      out = mk_shift(blast(e.a), blast(e.b), false, true);
      break;
    case ExprKind::kEq:
      out = {mk_eq_vec(blast(e.a), blast(e.b))};
      break;
    case ExprKind::kUlt:
      out = {mk_ult_vec(blast(e.a), blast(e.b))};
      break;
    case ExprKind::kSlt: {
      // a <s b  <=>  (a_msb ^ b_msb) ? a_msb : (a <u b)
      std::vector<int> a = blast(e.a), b = blast(e.b);
      int amsb = a.back(), bmsb = b.back();
      int ult = mk_ult_vec(a, b);
      out = {mk_ite(mk_xor(amsb, bmsb), amsb, ult)};
      break;
    }
    case ExprKind::kIte: {
      int c = blast(e.a)[0];
      std::vector<int> t = blast(e.b), f = blast(e.c);
      out.resize(t.size());
      for (size_t i = 0; i < t.size(); ++i) out[i] = mk_ite(c, t[i], f[i]);
      break;
    }
    case ExprKind::kZext: {
      out = blast(e.a);
      out.resize(e.width, lit_false());
      break;
    }
    case ExprKind::kSext: {
      out = blast(e.a);
      int msb = out.back();
      out.resize(e.width, msb);
      break;
    }
    case ExprKind::kExtract: {
      const std::vector<int>& a = blast(e.a);
      out.assign(a.begin() + e.aux, a.begin() + e.aux + e.width);
      break;
    }
    case ExprKind::kConcat: {
      std::vector<int> hi = blast(e.a), lo = blast(e.b);
      out = lo;
      out.insert(out.end(), hi.begin(), hi.end());
      break;
    }
  }
  CRP_CHECK(out.size() == e.width);
  return cache_.emplace(r, std::move(out)).first->second;
}

void BitBlaster::assert_true(ExprRef e) {
  CRP_CHECK(ctx_.width(e) == 1);
  sat_.add_clause({blast(e)[0]});
}

u64 BitBlaster::model_of_var(u32 var_id) const {
  auto it = var_lits_.find(var_id);
  if (it == var_lits_.end()) return 0;  // unconstrained
  u64 v = 0;
  for (size_t i = 0; i < it->second.size(); ++i) {
    int l = it->second[i];
    bool bit = l > 0 ? sat_.model_value(l) : !sat_.model_value(-l);
    if (bit) v |= 1ull << i;
  }
  return v;
}

}  // namespace crp::symex
