#include "symex/expr.h"

#include <functional>

namespace crp::symex {

namespace {
u64 hash_expr(const Expr& e) {
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&](u64 v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<u64>(e.kind));
  mix(e.width);
  mix(e.aux);
  mix(e.value);
  mix(e.a);
  mix(e.b);
  mix(e.c);
  return h;
}

i64 to_signed(u64 v, u8 width) {
  if (width >= 64) return static_cast<i64>(v);
  u64 sign = 1ull << (width - 1);
  return (v & sign) != 0 ? static_cast<i64>(v | ~((1ull << width) - 1)) : static_cast<i64>(v);
}
}  // namespace

Ctx::Ctx() { nodes_.reserve(1024); }

ExprRef Ctx::intern(Expr e) {
  u64 h = hash_expr(e);
  auto& bucket = dedup_[h];
  for (ExprRef r : bucket)
    if (nodes_[r] == e) return r;
  ExprRef r = static_cast<ExprRef>(nodes_.size());
  nodes_.push_back(e);
  bucket.push_back(r);
  return r;
}

ExprRef Ctx::constant(u64 value, u8 width) {
  CRP_CHECK(width >= 1 && width <= 64);
  Expr e;
  e.kind = ExprKind::kConst;
  e.width = width;
  e.value = value & mask_of(width);
  return intern(e);
}

ExprRef Ctx::var(const std::string& name, u8 width) {
  CRP_CHECK(width >= 1 && width <= 64);
  Expr e;
  e.kind = ExprKind::kVar;
  e.width = width;
  e.aux = static_cast<u32>(var_names_.size());
  var_names_.push_back(name);
  return intern(e);
}

#define BINOP_FOLD(op_expr)                                                   \
  const Expr &ea = get(a), &eb = get(b);                                      \
  CRP_CHECK(ea.width == eb.width);                                            \
  u8 w = ea.width;                                                            \
  if (ea.kind == ExprKind::kConst && eb.kind == ExprKind::kConst) {           \
    u64 x = ea.value, y = eb.value;                                           \
    (void)x; (void)y;                                                         \
    return constant((op_expr), w);                                            \
  }

ExprRef Ctx::add(ExprRef a, ExprRef b) {
  BINOP_FOLD(x + y)
  if (const_value(a) == 0) return b;
  if (const_value(b) == 0) return a;
  Expr e{ExprKind::kAdd, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::sub(ExprRef a, ExprRef b) {
  BINOP_FOLD(x - y)
  if (const_value(b) == 0) return a;
  if (a == b) return constant(0, w);
  Expr e{ExprKind::kSub, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::mul(ExprRef a, ExprRef b) {
  BINOP_FOLD(x * y)
  if (const_value(a) == 1) return b;
  if (const_value(b) == 1) return a;
  if (const_value(a) == 0 || const_value(b) == 0) return constant(0, w);
  Expr e{ExprKind::kMul, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::udiv(ExprRef a, ExprRef b) {
  BINOP_FOLD(y == 0 ? mask_of(w) : x / y)  // div-by-zero: all-ones (SMT-LIB)
  if (const_value(b) == 1) return a;
  Expr e{ExprKind::kUdiv, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::urem(ExprRef a, ExprRef b) {
  BINOP_FOLD(y == 0 ? x : x % y)
  Expr e{ExprKind::kUrem, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::band(ExprRef a, ExprRef b) {
  BINOP_FOLD(x & y)
  if (const_value(a) == 0 || const_value(b) == 0) return constant(0, w);
  if (const_value(a) == mask_of(w)) return b;
  if (const_value(b) == mask_of(w)) return a;
  if (a == b) return a;
  Expr e{ExprKind::kAnd, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::bor(ExprRef a, ExprRef b) {
  BINOP_FOLD(x | y)
  if (const_value(a) == 0) return b;
  if (const_value(b) == 0) return a;
  if (const_value(a) == mask_of(w) || const_value(b) == mask_of(w))
    return constant(mask_of(w), w);
  if (a == b) return a;
  Expr e{ExprKind::kOr, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::bxor(ExprRef a, ExprRef b) {
  BINOP_FOLD(x ^ y)
  if (const_value(a) == 0) return b;
  if (const_value(b) == 0) return a;
  if (a == b) return constant(0, w);
  Expr e{ExprKind::kXor, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::bnot(ExprRef a) {
  const Expr& ea = get(a);
  if (ea.kind == ExprKind::kConst) return constant(~ea.value, ea.width);
  Expr e{ExprKind::kNot, ea.width, 0, 0, a, kNullExpr};
  return intern(e);
}

ExprRef Ctx::neg(ExprRef a) {
  const Expr& ea = get(a);
  if (ea.kind == ExprKind::kConst) return constant(0 - ea.value, ea.width);
  Expr e{ExprKind::kNeg, ea.width, 0, 0, a, kNullExpr};
  return intern(e);
}

ExprRef Ctx::shl(ExprRef a, ExprRef amount) {
  ExprRef b = amount;
  BINOP_FOLD(y >= w ? 0 : x << y)
  if (const_value(b) == 0) return a;
  Expr e{ExprKind::kShl, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::lshr(ExprRef a, ExprRef amount) {
  ExprRef b = amount;
  BINOP_FOLD(y >= w ? 0 : x >> y)
  if (const_value(b) == 0) return a;
  Expr e{ExprKind::kLshr, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::ashr(ExprRef a, ExprRef amount) {
  ExprRef b = amount;
  BINOP_FOLD(static_cast<u64>(y >= w ? (to_signed(x, w) < 0 ? -1 : 0)
                                     : (to_signed(x, w) >> y)))
  if (const_value(b) == 0) return a;
  Expr e{ExprKind::kAshr, w, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::eq(ExprRef a, ExprRef b) {
  const Expr &ea = get(a), &eb = get(b);
  CRP_CHECK(ea.width == eb.width);
  if (ea.kind == ExprKind::kConst && eb.kind == ExprKind::kConst)
    return bool_const(ea.value == eb.value);
  if (a == b) return bool_const(true);
  Expr e{ExprKind::kEq, 1, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::ult(ExprRef a, ExprRef b) {
  const Expr &ea = get(a), &eb = get(b);
  CRP_CHECK(ea.width == eb.width);
  if (ea.kind == ExprKind::kConst && eb.kind == ExprKind::kConst)
    return bool_const(ea.value < eb.value);
  if (a == b) return bool_const(false);
  if (const_value(b) == 0) return bool_const(false);
  Expr e{ExprKind::kUlt, 1, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::slt(ExprRef a, ExprRef b) {
  const Expr &ea = get(a), &eb = get(b);
  CRP_CHECK(ea.width == eb.width);
  if (ea.kind == ExprKind::kConst && eb.kind == ExprKind::kConst)
    return bool_const(to_signed(ea.value, ea.width) < to_signed(eb.value, eb.width));
  if (a == b) return bool_const(false);
  Expr e{ExprKind::kSlt, 1, 0, 0, a, b};
  return intern(e);
}

ExprRef Ctx::ite(ExprRef cond, ExprRef t, ExprRef f) {
  const Expr& ec = get(cond);
  CRP_CHECK(ec.width == 1);
  CRP_CHECK(get(t).width == get(f).width);
  if (ec.kind == ExprKind::kConst) return ec.value != 0 ? t : f;
  if (t == f) return t;
  Expr e{ExprKind::kIte, get(t).width, 0, 0, cond, t, f};
  return intern(e);
}

ExprRef Ctx::zext(ExprRef a, u8 width) {
  const Expr& ea = get(a);
  CRP_CHECK(width >= ea.width);
  if (width == ea.width) return a;
  if (ea.kind == ExprKind::kConst) return constant(ea.value, width);
  Expr e{ExprKind::kZext, width, 0, 0, a, kNullExpr};
  return intern(e);
}

ExprRef Ctx::sext(ExprRef a, u8 width) {
  const Expr& ea = get(a);
  CRP_CHECK(width >= ea.width);
  if (width == ea.width) return a;
  if (ea.kind == ExprKind::kConst)
    return constant(static_cast<u64>(to_signed(ea.value, ea.width)), width);
  Expr e{ExprKind::kSext, width, 0, 0, a, kNullExpr};
  return intern(e);
}

ExprRef Ctx::extract(ExprRef a, u32 lo, u8 width) {
  const Expr& ea = get(a);
  CRP_CHECK(lo + width <= ea.width);
  if (lo == 0 && width == ea.width) return a;
  if (ea.kind == ExprKind::kConst) return constant(ea.value >> lo, width);
  Expr e{ExprKind::kExtract, width, lo, 0, a, kNullExpr};
  return intern(e);
}

ExprRef Ctx::concat(ExprRef hi, ExprRef lo) {
  const Expr &eh = get(hi), &el = get(lo);
  CRP_CHECK(eh.width + el.width <= 64);
  u8 w = static_cast<u8>(eh.width + el.width);
  if (eh.kind == ExprKind::kConst && el.kind == ExprKind::kConst)
    return constant((eh.value << el.width) | el.value, w);
  Expr e{ExprKind::kConcat, w, 0, 0, hi, lo};
  return intern(e);
}

u64 Ctx::eval(ExprRef r, const std::unordered_map<u32, u64>& model) const {
  const Expr& e = get(r);
  u64 m = mask_of(e.width);
  switch (e.kind) {
    case ExprKind::kConst: return e.value;
    case ExprKind::kVar: {
      auto it = model.find(e.aux);
      return (it == model.end() ? 0 : it->second) & m;
    }
    default: break;
  }
  u64 a = e.a != kNullExpr ? eval(e.a, model) : 0;
  u64 b = e.b != kNullExpr ? eval(e.b, model) : 0;
  u64 c = e.c != kNullExpr ? eval(e.c, model) : 0;
  u8 aw = e.a != kNullExpr ? get(e.a).width : 64;
  switch (e.kind) {
    case ExprKind::kAdd: return (a + b) & m;
    case ExprKind::kSub: return (a - b) & m;
    case ExprKind::kMul: return (a * b) & m;
    case ExprKind::kUdiv: return (b == 0 ? m : a / b) & m;
    case ExprKind::kUrem: return (b == 0 ? a : a % b) & m;
    case ExprKind::kAnd: return a & b;
    case ExprKind::kOr: return a | b;
    case ExprKind::kXor: return a ^ b;
    case ExprKind::kNot: return ~a & m;
    case ExprKind::kNeg: return (0 - a) & m;
    case ExprKind::kShl: return b >= e.width ? 0 : (a << b) & m;
    case ExprKind::kLshr: return b >= e.width ? 0 : a >> b;
    case ExprKind::kAshr:
      return b >= e.width ? (to_signed(a, aw) < 0 ? m : 0)
                          : static_cast<u64>(to_signed(a, aw) >> b) & m;
    case ExprKind::kEq: return a == b ? 1 : 0;
    case ExprKind::kUlt: return a < b ? 1 : 0;
    case ExprKind::kSlt: return to_signed(a, aw) < to_signed(b, aw) ? 1 : 0;
    case ExprKind::kIte: return a != 0 ? b : c;
    case ExprKind::kZext: return a;
    case ExprKind::kSext: return static_cast<u64>(to_signed(a, aw)) & m;
    case ExprKind::kExtract: return (a >> e.aux) & m;
    case ExprKind::kConcat: return ((a << get(e.b).width) | b) & m;
    case ExprKind::kConst:
    case ExprKind::kVar:
      break;
  }
  return 0;
}

std::string Ctx::to_string(ExprRef r) const {
  const Expr& e = get(r);
  auto bin = [&](const char* op) {
    return strf("(%s %s %s)", op, to_string(e.a).c_str(), to_string(e.b).c_str());
  };
  switch (e.kind) {
    case ExprKind::kConst: return strf("0x%llx:%u", static_cast<unsigned long long>(e.value), e.width);
    case ExprKind::kVar: return var_names_[e.aux] + strf(":%u", e.width);
    case ExprKind::kAdd: return bin("add");
    case ExprKind::kSub: return bin("sub");
    case ExprKind::kMul: return bin("mul");
    case ExprKind::kUdiv: return bin("udiv");
    case ExprKind::kUrem: return bin("urem");
    case ExprKind::kAnd: return bin("and");
    case ExprKind::kOr: return bin("or");
    case ExprKind::kXor: return bin("xor");
    case ExprKind::kNot: return strf("(not %s)", to_string(e.a).c_str());
    case ExprKind::kNeg: return strf("(neg %s)", to_string(e.a).c_str());
    case ExprKind::kShl: return bin("shl");
    case ExprKind::kLshr: return bin("lshr");
    case ExprKind::kAshr: return bin("ashr");
    case ExprKind::kEq: return bin("=");
    case ExprKind::kUlt: return bin("u<");
    case ExprKind::kSlt: return bin("s<");
    case ExprKind::kIte:
      return strf("(ite %s %s %s)", to_string(e.a).c_str(), to_string(e.b).c_str(),
                  to_string(e.c).c_str());
    case ExprKind::kZext: return strf("(zext%u %s)", e.width, to_string(e.a).c_str());
    case ExprKind::kSext: return strf("(sext%u %s)", e.width, to_string(e.a).c_str());
    case ExprKind::kExtract:
      return strf("(extract[%u+%u] %s)", e.aux, e.width, to_string(e.a).c_str());
    case ExprKind::kConcat: return bin("++");
  }
  return "?";
}

}  // namespace crp::symex
