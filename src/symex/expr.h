// Bitvector expression IR (QF_BV fragment) with hash-consing and eager
// constant folding / local simplification.
//
// Widths are 1..64 bits; width-1 expressions serve as booleans. All
// expressions live in an arena owned by a Ctx; ExprRef is an index into it.
// Structural sharing + dedup keep symbolic execution of filter functions
// compact, and the bit-blaster caches per-node.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace crp::symex {

using ExprRef = u32;
inline constexpr ExprRef kNullExpr = 0xFFFFFFFF;

enum class ExprKind : u8 {
  kConst = 0,
  kVar,
  kAdd, kSub, kMul,
  kUdiv, kUrem,
  kAnd, kOr, kXor,
  kNot,   // bitwise
  kNeg,
  kShl, kLshr, kAshr,  // shift amount = operand b
  kEq, kUlt, kSlt,     // width-1 results
  kIte,                // a(width1) ? b : c
  kZext, kSext,        // widen a to `width`
  kExtract,            // bits [lo, lo+width) of a ; lo stored in `aux`
  kConcat,             // a:b, a = high part
};

struct Expr {
  ExprKind kind = ExprKind::kConst;
  u8 width = 64;           // result width in bits
  u32 aux = 0;             // kVar: var id; kExtract: lo bit
  u64 value = 0;           // kConst
  ExprRef a = kNullExpr, b = kNullExpr, c = kNullExpr;

  bool operator==(const Expr&) const = default;
};

/// Expression context: arena + hash-consing + variable registry.
class Ctx {
 public:
  Ctx();

  // --- leaves ------------------------------------------------------------

  ExprRef constant(u64 value, u8 width = 64);
  ExprRef bool_const(bool v) { return constant(v ? 1 : 0, 1); }
  /// Fresh named variable; name is for diagnostics/model printing.
  ExprRef var(const std::string& name, u8 width = 64);

  // --- operators (all fold constants and apply local identities) -------------

  ExprRef add(ExprRef a, ExprRef b);
  ExprRef sub(ExprRef a, ExprRef b);
  ExprRef mul(ExprRef a, ExprRef b);
  ExprRef udiv(ExprRef a, ExprRef b);
  ExprRef urem(ExprRef a, ExprRef b);
  ExprRef band(ExprRef a, ExprRef b);
  ExprRef bor(ExprRef a, ExprRef b);
  ExprRef bxor(ExprRef a, ExprRef b);
  ExprRef bnot(ExprRef a);
  ExprRef neg(ExprRef a);
  ExprRef shl(ExprRef a, ExprRef amount);
  ExprRef lshr(ExprRef a, ExprRef amount);
  ExprRef ashr(ExprRef a, ExprRef amount);
  ExprRef eq(ExprRef a, ExprRef b);
  ExprRef ne(ExprRef a, ExprRef b) { return lnot(eq(a, b)); }
  ExprRef ult(ExprRef a, ExprRef b);
  ExprRef ule(ExprRef a, ExprRef b) { return lnot(ult(b, a)); }
  ExprRef slt(ExprRef a, ExprRef b);
  ExprRef sle(ExprRef a, ExprRef b) { return lnot(slt(b, a)); }
  ExprRef ite(ExprRef cond, ExprRef t, ExprRef f);
  ExprRef zext(ExprRef a, u8 width);
  ExprRef sext(ExprRef a, u8 width);
  ExprRef extract(ExprRef a, u32 lo, u8 width);
  ExprRef concat(ExprRef hi, ExprRef lo);

  // boolean (width-1) helpers
  ExprRef land(ExprRef a, ExprRef b) { return band(a, b); }
  ExprRef lor(ExprRef a, ExprRef b) { return bor(a, b); }
  ExprRef lnot(ExprRef a) { return bxor(a, bool_const(true)); }

  // --- inspection ------------------------------------------------------------

  const Expr& get(ExprRef r) const { return nodes_[r]; }
  bool is_const(ExprRef r) const { return get(r).kind == ExprKind::kConst; }
  std::optional<u64> const_value(ExprRef r) const {
    return is_const(r) ? std::optional<u64>(get(r).value) : std::nullopt;
  }
  u8 width(ExprRef r) const { return get(r).width; }
  const std::string& var_name(u32 var_id) const { return var_names_[var_id]; }
  u32 num_vars() const { return static_cast<u32>(var_names_.size()); }
  size_t size() const { return nodes_.size(); }

  /// Evaluate under an assignment var_id -> value (missing vars read 0).
  u64 eval(ExprRef r, const std::unordered_map<u32, u64>& model) const;

  /// S-expression rendering for diagnostics.
  std::string to_string(ExprRef r) const;

 private:
  ExprRef intern(Expr e);
  static u64 mask_of(u8 width) { return width >= 64 ? ~0ull : ((1ull << width) - 1); }

  std::vector<Expr> nodes_;
  std::unordered_map<u64, std::vector<ExprRef>> dedup_;  // hash -> candidates
  std::vector<std::string> var_names_;
};

}  // namespace crp::symex
