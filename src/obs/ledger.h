// crp::obs — probe-level flight recorder.
//
// The paper's central claim is *zero-crash* probing: every memory-oracle
// probe either survives or the primitive is disqualified (§IV, Tables
// I–III). The metric registry only aggregates counters, so until now that
// invariant was asserted, never audited — no artifact recorded WHICH address
// was probed by WHICH primitive with WHAT outcome. The Ledger closes that
// gap: a lock-free per-thread ring of fixed-size ProbeEvent records emitted
// from every probing layer (oracle probes, Scanner sweeps/hunts, the
// pipeline verify stage, the §VII AV-rate detector), drained on demand into
// an archive that can be audited, serialized (binary + JSONL, CRP_LEDGER=
// path), and cross-checked against the oracle.scan.* registry counters.
//
// Hot path cost: one thread-local lookup, one SPSC ring store, two relaxed
// fetch_adds (per-primitive and per-stage tallies). No locks, no
// allocation. Ring overflow drops the *newest* event and counts the loss in
// dropped(); the tallies are exact regardless, so the zero-crash audit and
// the counter cross-check never degrade with ring pressure.
//
// Compiled out (-DCRP_OBS_DISABLED) or runtime-disabled recording turns
// record() into a no-op, like every other obs mutation.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"

namespace crp::obs {

class Registry;

/// What happened to the target across one probe (the flight-recorder
/// outcome alphabet). kSurvive: probe answered, target alive. kEfault: the
/// guarded -EFAULT / filter path rejected the access, target alive (still a
/// *successful* crash-resistant probe — the answer is "unmapped"). kCrash:
/// the target died — the event the zero-crash audit exists to catch.
/// kTimeout: the oracle could not classify (budget exhausted / no signal).
enum class ProbeOutcome : u8 { kSurvive = 0, kEfault, kCrash, kTimeout };
inline constexpr u32 kNumProbeOutcomes = 4;

const char* probe_outcome_name(ProbeOutcome o);
bool probe_outcome_from_name(std::string_view s, ProbeOutcome* out);

/// Which layer emitted the event.
enum class LedgerStage : u8 { kOracle = 0, kSweep, kHunt, kVerify, kDefense };
inline constexpr u32 kNumLedgerStages = 5;

const char* ledger_stage_name(LedgerStage s);
bool ledger_stage_from_name(std::string_view s, LedgerStage* out);

/// The stages that claim crash-resistance. A crash outcome here violates the
/// zero-crash invariant; a crash in kVerify records a candidate being
/// DISQUALIFIED (expected, that is what verification is for) and one in
/// kDefense records the defender observing a target death.
inline constexpr bool ledger_stage_is_probing(LedgerStage s) {
  return s == LedgerStage::kOracle || s == LedgerStage::kSweep ||
         s == LedgerStage::kHunt;
}

/// One fixed-size flight-recorder record. Trivially copyable by design: the
/// binary ledger format is these 32 bytes verbatim.
struct ProbeEvent {
  u64 ts_ns = 0;      // virtual-ns timestamp of the probing clock (0 = none)
  u64 addr = 0;       // probed guest address (0 when not address-shaped)
  u32 primitive = 0;  // interned primitive id (Ledger::intern), 0 = "-"
  u32 target = 0;     // interned target id, 0 = "-"
  u8 outcome = 0;     // ProbeOutcome
  u8 stage = 0;       // LedgerStage
  u16 reserved = 0;
  u32 seq = 0;        // per-thread emission sequence (drain tie-breaker)

  bool operator==(const ProbeEvent&) const = default;
};
static_assert(sizeof(ProbeEvent) == 32, "ledger records are fixed-size");

class Ledger {
 public:
  /// Interned-name capacity. Ids are dense and small so the per-primitive
  /// outcome tallies can live in a flat atomic array (lock-free emit).
  static constexpr u32 kMaxNames = 256;
  static constexpr size_t kDefaultRingCapacity = 1 << 14;

  /// Opaque per-thread ring (definition in ledger.cc; named here so the
  /// thread-local ring cache can hold typed pointers).
  struct Ring;

  explicit Ledger(size_t ring_capacity = kDefaultRingCapacity);
  ~Ledger();
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Id for a primitive/target name (>= 1; creates on first use). Id 0 is
  /// reserved for "-" (unknown). Returns 0 when the name table is full.
  u32 intern(const std::string& name);
  std::string name_of(u32 id) const;
  /// Dense name table, index == id (index 0 is "-").
  std::vector<std::string> names() const;

  /// Lock-free fast path: append to the calling thread's ring and bump the
  /// exact per-primitive / per-stage tallies.
  void record(LedgerStage stage, ProbeOutcome outcome, u32 primitive, u32 target,
              u64 addr, u64 ts_ns);

  /// Pre-create the calling thread's ring (one mutex acquisition) so the
  /// first record() on a worker thread stays lock-free. Pool workers call
  /// this once at thread start.
  void register_current_thread() { ring_for_thread(); }

  /// Drain every thread ring into the archive and return a copy of the full
  /// archive, sorted by (ts_ns, stage, primitive, target, addr, outcome) so
  /// deterministic campaigns yield byte-identical ledgers at any job count.
  std::vector<ProbeEvent> snapshot();

  /// Events lost to ring/archive overflow. Tallies stay exact regardless.
  u64 dropped() const;

  /// Exact emission tallies (survive ring overflow; audit substrate).
  u64 total(u32 primitive, ProbeOutcome o) const;  // summed over stages
  u64 total(u32 primitive, LedgerStage s, ProbeOutcome o) const;
  u64 stage_total(LedgerStage s, ProbeOutcome o) const;
  u64 total_events() const;

  /// Reset archive, rings, tallies, and the name table (tests).
  void clear();

  // --- serialization --------------------------------------------------------
  /// Binary codec: "CRPLEDG1" magic, interned name table, raw records.
  std::string encode_binary(const std::vector<ProbeEvent>& evs) const;
  static bool decode_binary(const std::string& doc, std::vector<ProbeEvent>* evs,
                            std::vector<std::string>* names);

  /// JSONL codec: one self-describing object per line (names inlined).
  std::string encode_jsonl(const std::vector<ProbeEvent>& evs) const;
  /// Parse a JSONL document produced by encode_jsonl. Interns names into
  /// *this* ledger, so decoded ids may differ from the writer's; events
  /// compare equal after a round trip through a fresh ledger.
  bool decode_jsonl(const std::string& doc, std::vector<ProbeEvent>* evs);

  /// Write the current snapshot as binary `path` + JSONL `path`.jsonl.
  bool write_files(const std::string& path);

  /// The process-wide flight recorder every probing layer reports into.
  static Ledger& global();

 private:
  Ring& ring_for_thread();

  const size_t ring_capacity_;
  const u64 id_;  // unique per ledger instance (thread-local cache key)

  mutable std::mutex mu_;  // guards rings_ registration, names_, archive_
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::string> names_;
  std::vector<ProbeEvent> archive_;
  u64 archive_dropped_ = 0;

  std::array<
      std::array<std::array<std::atomic<u64>, kNumProbeOutcomes>, kNumLedgerStages>,
      kMaxNames>
      prim_tallies_{};
  std::array<std::array<std::atomic<u64>, kNumProbeOutcomes>, kNumLedgerStages>
      stage_tallies_{};
};

// --- audit -------------------------------------------------------------------

/// Machine-checked verdict over a ledger: the zero-crash invariant per
/// primitive, event-stream/tally consistency, and (optionally) the
/// cross-check of scan-stage tallies against the oracle.scan.* counters of a
/// Registry. Any violation is a hard failure for the caller to enforce.
struct LedgerAudit {
  u64 events = 0;   // archived events audited
  u64 dropped = 0;  // ring/archive losses at audit time
  /// Crash outcomes in *probing* stages (oracle/sweep/hunt) — the count the
  /// zero-crash invariant requires to be 0. Verify-stage crash events
  /// (disqualified candidates) and defense-stage ones are not counted here.
  u64 crash_events = 0;
  /// primitive name -> per-outcome tallies for every primitive seen.
  struct PrimitiveRow {
    std::string name;
    u64 by_outcome[kNumProbeOutcomes] = {};
  };
  std::vector<PrimitiveRow> primitives;
  std::vector<std::string> violations;

  bool zero_crash() const { return crash_events == 0; }
  bool ok() const { return violations.empty(); }
  /// One-paragraph human summary ("audit PASS: ..." / "audit FAIL: ...").
  std::string summary() const;
};

/// Audit `ledger` (drains it via snapshot()). When `cross_check` is non-null
/// the scan-stage tallies must reconcile exactly with its oracle.scan.*
/// counters: probes == sweep+hunt events, crashes == crash outcomes, and
/// mapped_hits == survive outcomes (exact when no crashes occurred).
LedgerAudit audit_ledger(Ledger& ledger, const Registry* cross_check = nullptr);

/// Audit an already-materialized event stream against explicit tallies —
/// the pure core of audit_ledger, exposed for tests that inject doctored
/// events (e.g. a forged crash record).
void audit_events(const std::vector<ProbeEvent>& evs, const Ledger& ledger,
                  LedgerAudit* out);

// --- process-exit flush ------------------------------------------------------

/// Install the atexit / panic / terminate flush handlers (idempotent).
/// flush_now() then runs on every exit path — normal return, std::exit,
/// CRP_PANIC, uncaught exception — so buffered telemetry is never lost:
///   * CRP_LEDGER=path   -> global ledger written as binary + JSONL
///   * CRP_METRICS=path  -> global registry written as Prometheus text
///   * the active BenchSession (if any) flushes its snapshot + trace
void install_flush_handlers();
void flush_now();

/// Register/clear the flush sink the handlers invoke for the active bench
/// session (at most one; BenchSession manages this).
void set_session_flush_sink(void (*fn)());

}  // namespace crp::obs
