// crp::obs::JobTracer — causal, deterministic end-to-end job tracing for
// the crpd serving path.
//
// A batch campaign answers "what did the funnel find"; a served one also
// has to answer "where did this submission's latency go" — queue wait
// behind higher-priority tenants, a lease coalesced onto another job's
// computation, a preemption park, or one slow step cell. The tracer
// records a typed span per lifecycle edge:
//
//   admission       SUBMIT accepted/rejected (arg = accepted flag)
//   queue_wait      submit -> first scheduling (arg = priority)
//   step            one TargetCell step (label = stage id, arg = step idx)
//   park            preempted at a step boundary (arg = preemptor job id)
//   resume          rescheduled after a park (arg = steps already done)
//   lease_acquire   won the ArtifactStore single-writer lease (computed)
//   lease_wait      blocked on another job's in-flight lease
//   lease_coalesce  replayed a stored artifact instead of computing
//   render          FETCH rendered the report (arg = payload bytes)
//
// Spans land in ledger-style per-thread SPSC rings (one writer each, the
// drainer is the only other toucher) and drain into a bounded per-job
// archive, exported as per-job JSON (/traces.json) and merged Chrome
// trace_event lanes (/trace.json, one lane per job id).
//
// Determinism contract: span *content* — kinds, interned labels, args,
// per-job order — derives only from the submit tuple (target, knobs,
// seed) and the store's state, never from worker identity or arrival
// order. Only the wall timestamps vary across runs, so tests diff span
// sets at workers=1 vs workers=4. Per-job order is the emission order of
// the single thread driving that job at any moment (park/resume hand-offs
// happen under the queue lock), captured by a global sequence stamp and
// renumbered 0..n-1 per job at drain time so no scheduling-dependent raw
// value leaks into the output.
//
// The tracer is disarmed by default: batch tools never arm it, so batch
// stdout and bench numbers are untouched (one relaxed load per hook).
// The daemon arms it and assigns a trace id to every accepted SUBMIT.
//
// The live-job table (armed-only, keyed by trace id) powers /jobs.json
// and the stall watchdog: a scan flags jobs whose in-progress step or
// held lease is older than a deadline — once per job per kind — bumping
// crpd.watchdog.{step,lease}_stalls and dropping a journal instant, so
// the PR-8 deadlock class is detectable, not just fixed.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <atomic>

#include "util/common.h"

namespace crp::obs {

/// Monotonic wall clock for span timestamps (ns). Steady, not virtual:
/// spans measure real latency, and timestamps are excluded from the
/// determinism contract anyway.
u64 trace_now_ns();

enum class SpanKind : u8 {
  kAdmission = 0,
  kQueueWait,
  kStep,
  kPark,
  kResume,
  kLeaseAcquire,
  kLeaseWait,
  kLeaseCoalesce,
  kRender,
};
inline constexpr u32 kNumSpanKinds = 9;
const char* span_kind_name(SpanKind k);

struct JobSpan {
  u64 trace = 0;
  u64 job = 0;  // 0 = trace-level span (admission verdicts precede an id)
  u64 t0_ns = 0;
  u64 t1_ns = 0;
  u64 arg = 0;
  u64 seq = 0;  // global emission stamp; renumbered per job at drain
  u32 label = 0;  // interned name id, 0 = none
  SpanKind kind = SpanKind::kAdmission;
  u8 pad[3] = {};
};
static_assert(sizeof(JobSpan) == 56, "keep ring slots cache-friendly");

class JobTracer {
 public:
  static constexpr u32 kMaxNames = 256;
  static constexpr size_t kDefaultRingCapacity = 1 << 12;
  /// Per-(trace, job) archive budget: spans past this are dropped and
  /// counted, so a runaway job cannot grow the archive unboundedly.
  static constexpr size_t kMaxSpansPerJob = 256;
  /// Archived (trace, job) lanes are evicted FIFO past this cap.
  static constexpr size_t kMaxArchivedJobs = 4096;

  struct Ring;  // public: the thread-local ring cache names it

  explicit JobTracer(size_t ring_capacity = kDefaultRingCapacity);
  ~JobTracer();
  JobTracer(const JobTracer&) = delete;
  JobTracer& operator=(const JobTracer&) = delete;

  /// Arming gate. Disarmed (default), every hook is one relaxed load;
  /// batch runs stay byte-identical. The daemon arms on construction.
  void set_armed(bool on);
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Allocate a trace id. `requested` nonzero pins a client-chosen id
  /// (the `trace=` knob; duplicate submissions may share one trace) and
  /// bumps the allocator past it so assigned ids never collide with it.
  u64 start_trace(u64 requested = 0);

  /// Intern a label (step/stage name). Capped at kMaxNames; overflow
  /// returns 0 ("-"). Id order is first-come, so label *names*, not ids,
  /// are the deterministic identity — compare via name_of().
  u32 intern(const std::string& name);
  std::string name_of(u32 id) const;

  /// Record one span. No-op unless armed, recording, and trace != 0.
  void record(u64 trace, u64 job, SpanKind kind, u32 label, u64 arg, u64 t0_ns,
              u64 t1_ns);

  // --- Live-job table (armed-only; keyed by trace id, which the daemon
  // makes unique per submission). Powers /jobs.json and the watchdog.
  struct LiveJob {
    u64 trace = 0;
    u64 job = 0;
    std::string tenant;
    std::string target;
    std::string step;       // in-progress step name, "" between steps
    u64 step_since_ns = 0;  // 0 = no step in progress
    u64 lease_since_ns = 0; // 0 = no lease held
    u64 lease_key = 0;
    bool parked = false;
    bool step_flagged = false;
    bool lease_flagged = false;
  };
  void job_started(u64 trace, u64 job, const std::string& tenant,
                   const std::string& target);
  void step_begin(u64 trace, const std::string& step);
  void step_end(u64 trace);
  void job_parked(u64 trace);
  void lease_begin(u64 trace, u64 key, const std::string& stage);
  void lease_end(u64 trace);
  void job_finished(u64 trace);
  std::vector<LiveJob> live_jobs() const;

  /// One watchdog pass: flag live jobs whose in-progress step (resp. held
  /// lease) started more than the deadline ago. Parked and queued jobs
  /// are legitimately idle and never flagged. Each job is flagged at most
  /// once per kind; returns the number of *new* flags this pass. Every
  /// new flag bumps crpd.watchdog.{step,lease}_stalls and drops a journal
  /// instant event carrying the job id.
  size_t watchdog_scan(u64 step_deadline_ns, u64 lease_deadline_ns);
  u64 watchdog_flags() const { return flags_.load(std::memory_order_relaxed); }

  // --- Drain / export.
  struct JobTraceView {
    u64 trace = 0;
    u64 job = 0;
    std::vector<JobSpan> spans;  // seq renumbered 0..n-1
  };
  /// Drain all rings into the archive and return every (trace, job) lane.
  std::vector<JobTraceView> snapshot();
  /// Spans of one trace (all jobs, job-0 admission lane first), seq
  /// renumbered per job.
  std::vector<JobSpan> spans_for(u64 trace);
  /// Spans dropped (ring overflow + per-job budget + lane eviction).
  u64 dropped() const;

  /// {"traces": [{"trace": N, "jobs": [{"job": N, "spans": [...]}]}]}
  std::string traces_json();
  /// Chrome trace_event JSON Array Format; lane (tid) = job id.
  std::string chrome_trace_json();

  /// Drop archive, rings, live table, names, and flag count (tests).
  void clear();

  static JobTracer& global();

 private:
  Ring& ring_for_thread();
  void drain_locked();
  void append_locked(const JobSpan& s);

  const size_t ring_capacity_;
  const u64 id_;  // distinguishes instances in thread-local ring caches
  std::atomic<bool> armed_{false};
  std::atomic<u64> next_trace_{1};
  std::atomic<u64> next_seq_{1};
  std::atomic<u64> flags_{0};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::string> names_;
  std::map<std::pair<u64, u64>, std::vector<JobSpan>> archive_;
  std::deque<std::pair<u64, u64>> archive_fifo_;
  u64 dropped_ = 0;
  std::map<u64, LiveJob> live_;
};

/// Thread-local job context, installed by the queue around a job's drive
/// session so layers without a job handle (the ArtifactStore lease path)
/// can attribute spans to the job that triggered them.
struct TraceJobCtx {
  u64 trace = 0;
  u64 job = 0;
};
TraceJobCtx current_trace_job();

class ScopedTraceJob {
 public:
  ScopedTraceJob(u64 trace, u64 job);
  ~ScopedTraceJob();
  ScopedTraceJob(const ScopedTraceJob&) = delete;
  ScopedTraceJob& operator=(const ScopedTraceJob&) = delete;

 private:
  TraceJobCtx prev_;
};

}  // namespace crp::obs
