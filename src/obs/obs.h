// crp::obs — unified metrics for the whole pipeline.
//
// The paper's claims are quantitative funnels and rates (Table I–III
// narrowing counts, zero-crash probe campaigns, §VII AV-rate separation);
// this module is the substrate that makes every one of those numbers a
// first-class, machine-readable measurement instead of an ad-hoc printf.
//
// Primitives:
//   Counter    — monotonically increasing u64 (relaxed atomic).
//   Gauge      — signed instantaneous value with set/add/update_max.
//   Histogram  — log-bucketed (4 sub-buckets per power of two) with exact
//                count/sum/min/max and interpolated p50/p95/p99 estimation.
//   Registry   — thread-safe name -> metric map with hierarchical dotted
//                names ("vm.instr_retired", "kernel.sys.read.efault", ...);
//                metrics live for the registry's lifetime, so hot paths may
//                cache the returned references.
//   ScopedTimer / ScopedVirtualTimer — RAII latency recording into a
//                Histogram, wall-clock or any caller-supplied clock
//                (the Kernel's virtual ns clock, typically).
//
// Cost model: a Counter::inc is one relaxed fetch_add plus one relaxed
// flag load; compile with -DCRP_OBS_DISABLED (CMake option CRP_OBS_DISABLED)
// to turn every mutation into a no-op, or call set_runtime_enabled(false)
// to drop recording at runtime without rebuilding.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"

namespace crp::obs {

#if defined(CRP_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Runtime kill switch (default on). Checked with a relaxed load on every
/// mutation; lets one binary measure instrumented vs. uninstrumented cost.
void set_runtime_enabled(bool on);
bool runtime_enabled();

namespace detail {
extern std::atomic<bool> g_runtime_enabled;
inline bool recording() {
  if constexpr (!kCompiledIn) return false;
  return g_runtime_enabled.load(std::memory_order_relaxed);
}
}  // namespace detail

enum class MetricKind : u8 { kCounter = 0, kGauge, kHistogram };

const char* metric_kind_name(MetricKind k);

class Counter {
 public:
  void inc(u64 n = 1) {
    if (detail::recording()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

class Gauge {
 public:
  void set(i64 v) {
    if (detail::recording()) v_.store(v, std::memory_order_relaxed);
  }
  void add(i64 d) {
    if (detail::recording()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// High-water-mark update: keeps the maximum of all set values.
  void update_max(i64 v);
  i64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

/// Log-bucketed histogram for non-negative samples (latencies, sizes).
/// Values 0..3 get exact buckets; every power-of-two octave [2^k, 2^(k+1))
/// with k >= 2 is split into kSubBuckets equal sub-ranges, bounding the
/// relative error of a quantile estimate by 1/kSubBuckets.
class Histogram {
 public:
  static constexpr u32 kSubBuckets = 4;
  static constexpr u32 kExactValues = 4;  // 0, 1, 2, 3
  static constexpr u32 kNumBuckets = kExactValues + 62 * kSubBuckets;

  void record(u64 v);

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum() const { return sum_.load(std::memory_order_relaxed); }
  u64 min() const;  // 0 when empty
  u64 max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Interpolated quantile estimate, q in [0, 1]. Degenerate inputs have
  /// defined values: 0 when empty, the sample itself when min == max (in
  /// particular the single-sample case) — never bucket interpolation noise.
  u64 quantile(double q) const;

  /// Bucket mapping, exposed for tests: index for a value, and the
  /// half-open [lo, hi) range a bucket covers.
  static u32 bucket_index(u64 v);
  static u64 bucket_lo(u32 idx);
  static u64 bucket_hi(u32 idx);

  /// Raw per-bucket count (snapshot/exposition substrate).
  u64 bucket_count(u32 idx) const {
    return idx < kNumBuckets ? buckets_[idx].load(std::memory_order_relaxed) : 0;
  }

  void reset();

 private:
  std::atomic<u64> buckets_[kNumBuckets] = {};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~0ull};
  std::atomic<u64> max_{0};
};

/// RAII wall-clock timer recording elapsed nanoseconds on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  u64 elapsed_ns() const;

 private:
  Histogram& h_;
  u64 t0_;
};

/// RAII virtual-time timer: samples `*clock_ns` (e.g. the Kernel's virtual
/// nanosecond clock) at construction and destruction. The pointed-to value
/// must outlive the timer.
class ScopedVirtualTimer {
 public:
  ScopedVirtualTimer(Histogram& h, const u64* clock_ns) : h_(h), clock_(clock_ns), t0_(*clock_ns) {}
  ~ScopedVirtualTimer() { h_.record(*clock_ - t0_); }
  ScopedVirtualTimer(const ScopedVirtualTimer&) = delete;
  ScopedVirtualTimer& operator=(const ScopedVirtualTimer&) = delete;

 private:
  Histogram& h_;
  const u64* clock_;
  u64 t0_;
};

/// Point-in-time copy of one histogram: the exact aggregates plus every
/// nonzero (bucket index, count) pair — enough to re-estimate quantiles, to
/// export bucket boundaries (Prometheus), and to diff two snapshots
/// bucket-wise.
struct HistSnap {
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;
  u64 max = 0;
  std::vector<std::pair<u32, u64>> buckets;  // (bucket index, count), nonzero only

  double mean() const;
  /// Same estimator (and degenerate-case guarantees) as Histogram::quantile.
  u64 quantile(double q) const;
};

/// One snapshotted metric value. For counters and gauges `num` holds the
/// value; in a diff it holds the delta (counter deltas are signed too, so a
/// reset between snapshots is visible instead of wrapping).
struct SnapValue {
  MetricKind kind = MetricKind::kCounter;
  i64 num = 0;
  HistSnap hist;
};

/// Full-registry snapshot: name -> value, taken atomically enough for
/// metric-delta assertions (each metric is read with relaxed loads; the map
/// itself is captured under the registry lock).
struct Snapshot {
  std::map<std::string, SnapValue> values;

  const SnapValue* find(const std::string& name) const;
  /// Numeric accessor: counter/gauge value, histogram count. 0 if absent.
  i64 num(const std::string& name) const;
};

/// Thread-safe metric registry. Names are hierarchical dotted paths; the
/// first accessor for a name creates the metric, later accessors return the
/// same object (a kind mismatch on an existing name is a programmer error
/// and panics). Metrics are never removed, so references stay valid for the
/// registry's lifetime — cache them on hot paths.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Metric registered under `name`, or nullopt. Second member is the kind.
  bool contains(const std::string& name) const;
  size_t size() const;

  /// Read-only value of a registered counter (0 when absent or not a
  /// counter) — lets auditors cross-check without creating metrics.
  u64 counter_value(const std::string& name) const;

  /// Point-in-time copy of every metric.
  Snapshot snapshot() const;

  /// Element-wise `after - before`: counters and gauges subtract, histograms
  /// subtract count/sum/buckets (min/max are re-derived from the surviving
  /// delta buckets). Tests assert on deltas instead of absolutes, so shared
  /// global-registry state from earlier phases cancels out.
  static Snapshot diff(const Snapshot& before, const Snapshot& after);

  /// Zero every metric's value, keeping all registered objects alive (so
  /// cached references survive). Intended for tests and for the start of a
  /// measurement phase.
  void reset_values();

  /// Flat JSON object: {"name": 123, "hist": {"count":...,"p50":...}, ...},
  /// keys sorted. Machine-readable and line-diffable.
  std::string json() const;

  /// Human-readable two-column dump of every metric (the "one consistent
  /// metrics block" the examples print). `skip_zero` drops never-touched
  /// metrics to keep interactive output readable.
  std::string text(bool skip_zero = false) const;

  /// The process-wide registry every subsystem reports into.
  static Registry& global();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry& get_or_create(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

/// Extract a numeric value from a flat JSON document produced by
/// Registry::json() / BenchSession. `key` is the metric name, optionally
/// with a "/field" suffix for histogram fields ("sat.solve_ns/p95").
/// Returns false if the key is absent. Small, purpose-built — not a general
/// JSON parser.
bool json_number(const std::string& json, const std::string& key, double* out);

}  // namespace crp::obs
