// crp::obs::serve — minimal HTTP/1.0 live-telemetry endpoint.
//
// ROADMAP item 2 (the crpd campaign service) needs a monitoring channel; a
// long campaign today is a black box until its BENCH_*.json lands. This
// module binds 127.0.0.1:<port> (CRP_OBS_SERVE=port, 0 = ephemeral) and
// serves point-in-time snapshots of the three observability substrates over
// the existing expo writers:
//
//   GET /             route index (text/plain)
//   GET /metrics      Registry snapshot, Prometheus text exposition
//   GET /metrics.json Registry snapshot, expo::json (full histogram buckets)
//   GET /flat.json    Registry::json() — the BENCH-file metrics shape,
//                     parseable by expo::parse_bench_json (what crptop polls)
//   GET /ledger.json  flight-recorder tallies (per stage and per primitive)
//   GET /prof.json    profiler hot-block report (Profiler::report_json)
//   GET /prof.folded  collapsed-stack flamegraph text
//   GET /traces.json  per-job trace spans (JobTracer::traces_json)
//   GET /trace.json   merged Chrome trace_event lanes (one per job)
//
// Frontends above this layer add endpoints with register_route() — the
// crpd daemon serves /jobs.json and /tenants.json that way.
//
// Runs on the shared crp::serve::SocketServer core: many concurrent
// clients, partial reads and writes handled by the transport (a slow
// crptop poller never stalls another client), HTTP/1.0
// close-after-response, no keep-alive, no TLS, loopback only. The server
// reads shared state through the same thread-safe snapshot paths the exit
// flush uses, so it never perturbs a deterministic campaign.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "serve/socket_server.h"
#include "util/common.h"

namespace crp::obs::serve {

/// One routed response (the pure core of the server, exposed so tests and
/// crptop's offline mode can render endpoints without a socket).
struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Route `path` ("/metrics", ...) to its current snapshot. Registered
/// dynamic routes are consulted first, then the built-ins. Unknown paths
/// return 404.
Response respond(const std::string& path);

/// Register a dynamic route: `provider` is called per request (it must be
/// thread-safe; it runs on the server thread). Frontends above the obs
/// layer (the crpd daemon's /jobs.json and /tenants.json) hook into the
/// route table this way — obs cannot link against them. Re-registering a
/// path replaces the provider; unregister before the captured state dies.
void register_route(const std::string& path, const std::string& content_type,
                    std::function<std::string()> provider);
void unregister_route(const std::string& path);

class ObsServer {
 public:
  ObsServer() = default;
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port) and start serving.
  /// Returns false (with a warning) when the bind fails. Idempotent: a
  /// running server stays on its port.
  bool start(u16 port);
  void stop();

  bool running() const { return server_.running(); }
  /// Bound port (valid while running; the ephemeral-port case reads it back
  /// from the socket).
  u16 port() const { return server_.port(); }

  /// The process-wide server (what CRP_OBS_SERVE starts).
  static ObsServer& global();

 private:
  void on_data(crp::serve::ConnId conn, std::string_view data);

  crp::serve::SocketServer server_;
  // Per-connection request accumulation (reads may arrive in fragments).
  // Touched only from transport callbacks, which are serialized.
  std::map<crp::serve::ConnId, std::string> reqs_;
};

/// Start the global server when CRP_OBS_SERVE=port is set (idempotent; logs
/// the endpoint on success). Returns true when a server is running after
/// the call. BenchSession and examples/campaign call this at startup.
bool maybe_start_from_env();

}  // namespace crp::obs::serve
