// crp::obs::expo — metrics exposition and bench-snapshot parsing.
//
// Turns a Registry Snapshot into the two interchange formats the tooling
// around the repo consumes:
//   * Prometheus text exposition format (one # TYPE line per metric,
//     histograms as cumulative _bucket{le=...}/_sum/_count series with the
//     log-bucket boundaries of obs::Histogram) — scrape-ready, and written
//     at process exit when CRP_METRICS=path is set;
//   * a JSON snapshot that, unlike Registry::json(), carries the full
//     histogram bucket layout (index, [lo, hi) boundary, count) so external
//     tools can re-estimate quantiles.
//
// The reverse direction lives here too: parse_bench_json() reads the
// BENCH_<name>.json files BenchSession writes, which is what tools/benchdiff
// builds its regression gate on. It is a purpose-built parser for that one
// format (flat metrics map, histogram sub-objects), not a general JSON
// parser.
#pragma once

#include <map>
#include <string>

#include "obs/obs.h"

namespace crp::obs::expo {

/// Prometheus text exposition of a snapshot. Metric names are prefixed with
/// `prefix` and sanitized ("oracle.scan.probes" -> crp_oracle_scan_probes).
/// Histogram buckets are emitted cumulatively for every nonzero bucket's
/// upper boundary plus +Inf (a valid, if sparse, le series).
std::string prometheus_text(const Snapshot& snap, const std::string& prefix = "crp");

/// JSON object: {"name": {"kind":...,...}, ...} with full bucket boundaries
/// for histograms. Keys sorted (Snapshot map order), line-diffable.
std::string json(const Snapshot& snap);

/// One parsed BENCH_<name>.json document. `flat` maps metric names to
/// values; histogram fields use the "name/field" convention of
/// obs::json_number ("sat.solve_ns/count", ".../sum", ".../p95", ...).
struct BenchDoc {
  std::string bench;
  int schema = 0;
  std::map<std::string, double> flat;

  bool has(const std::string& key) const { return flat.count(key) != 0; }
  double get(const std::string& key, double fallback = 0.0) const;
};

/// Parse a BenchSession metrics file (or the "metrics" object of one).
/// Returns false on structural mismatch.
bool parse_bench_json(const std::string& text, BenchDoc* out);

}  // namespace crp::obs::expo
