#include "obs/journal.h"

#include <algorithm>
#include <vector>

#include "obs/obs.h"

namespace crp::obs {

namespace {
thread_local u32 t_journal_lane = 0;
}  // namespace

u32 journal_thread_lane() { return t_journal_lane; }
void set_journal_thread_lane(u32 lane) { t_journal_lane = lane; }

void Journal::span(const std::string& name, const std::string& cat, u64 ts_us, u64 dur_us,
                   u32 tid, const std::string& arg_name, i64 arg) {
  emit({name, cat, 'X', ts_us, dur_us, tid, arg_name, arg});
}

void Journal::instant(const std::string& name, const std::string& cat, u64 ts_us, u32 tid,
                      const std::string& arg_name, i64 arg) {
  emit({name, cat, 'i', ts_us, 0, tid, arg_name, arg});
}

void Journal::emit(TraceEvent ev) {
  if (!detail::recording()) return;
  if (ev.tid == 0) ev.tid = t_journal_lane;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(ev));
}

size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

u64 Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Journal::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> Journal::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string Journal::chrome_trace_json() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.assign(ring_.begin(), ring_.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += strf("\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%llu,\"pid\":1,"
                "\"tid\":%u",
                escape(e.name).c_str(), escape(e.cat).c_str(), e.phase,
                static_cast<unsigned long long>(e.ts_us), e.tid);
    if (e.phase == 'X') out += strf(",\"dur\":%llu", static_cast<unsigned long long>(e.dur_us));
    if (e.phase == 'i') out += ",\"s\":\"g\"";
    if (!e.arg_name.empty())
      out += strf(",\"args\":{\"%s\":%lld}", escape(e.arg_name).c_str(),
                  static_cast<long long>(e.arg));
    out += "}";
  }
  out += "\n]";
  return out;
}

Journal& Journal::global() {
  static Journal* g = new Journal();
  return *g;
}

}  // namespace crp::obs
