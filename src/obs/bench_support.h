// Shared bench harness: every bench_*.cc declares one BenchSession at the
// top of main(). On destruction it dumps the global metric registry to
// BENCH_<name>.json (machine-readable, diffable — the perf trajectory) and,
// when the global journal captured events, a Chrome trace_event file
// BENCH_<name>_trace.json loadable in about:tracing / Perfetto.
//
// Output directory: $CRP_BENCH_DIR if set, else the current directory.
// The constructor pre-registers the canonical cross-layer metrics
// (vm.instr_retired, every kernel.sys.<name>.{calls,efault}, sat.*,
// oracle.scan.*) so a snapshot always carries the full schema with zeros
// rather than omitting layers the bench never touched.
#pragma once

#include <string>

#include "util/common.h"

namespace crp::obs {

class BenchSession {
 public:
  explicit BenchSession(const std::string& name);
  ~BenchSession();

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  const std::string& name() const { return name_; }
  std::string metrics_path() const;
  std::string trace_path() const;

  /// Write the snapshot/trace now instead of at destruction (benches that
  /// want to print the paths before returning). Idempotent.
  void flush();

 private:
  std::string name_;
  u64 wall_t0_ns_ = 0;
  bool flushed_ = false;
};

/// Touch every canonical pipeline metric so it exists (value 0) in the
/// registry. Called by BenchSession; harmless to call repeatedly.
void preregister_core_metrics();

}  // namespace crp::obs
