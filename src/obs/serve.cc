#include "obs/serve.h"

#include <cstdlib>
#include <cstring>

#include "obs/expo.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/log.h"

namespace crp::obs::serve {

namespace {

std::string ledger_json() {
  Ledger& led = Ledger::global();
  std::vector<std::string> names = led.names();
  std::string out = "{\n";
  out += strf("\"events\": %llu,\n\"dropped\": %llu,\n",
              static_cast<unsigned long long>(led.total_events()),
              static_cast<unsigned long long>(led.dropped()));
  out += "\"stages\": {";
  bool first = true;
  for (u32 s = 0; s < kNumLedgerStages; ++s) {
    if (!first) out += ",";
    first = false;
    out += strf("\n  \"%s\": {", ledger_stage_name(static_cast<LedgerStage>(s)));
    for (u32 o = 0; o < kNumProbeOutcomes; ++o) {
      if (o != 0) out += ", ";
      out += strf("\"%s\": %llu", probe_outcome_name(static_cast<ProbeOutcome>(o)),
                  static_cast<unsigned long long>(
                      led.stage_total(static_cast<LedgerStage>(s),
                                      static_cast<ProbeOutcome>(o))));
    }
    out += "}";
  }
  out += "\n},\n\"primitives\": [";
  first = true;
  for (u32 id = 1; id < names.size(); ++id) {
    u64 any = 0;
    for (u32 o = 0; o < kNumProbeOutcomes; ++o)
      any += led.total(id, static_cast<ProbeOutcome>(o));
    if (any == 0) continue;
    if (!first) out += ",";
    first = false;
    out += strf("\n  {\"name\": \"%s\"", names[id].c_str());
    for (u32 o = 0; o < kNumProbeOutcomes; ++o)
      out += strf(", \"%s\": %llu",
                  probe_outcome_name(static_cast<ProbeOutcome>(o)),
                  static_cast<unsigned long long>(
                      led.total(id, static_cast<ProbeOutcome>(o))));
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

constexpr const char* kIndex =
    "crp live telemetry endpoints:\n"
    "  /metrics       Prometheus text exposition\n"
    "  /metrics.json  JSON snapshot (full histogram buckets)\n"
    "  /flat.json     BENCH-shaped metrics JSON (crptop polls this)\n"
    "  /ledger.json   flight-recorder tallies\n"
    "  /prof.json     profiler hot-block report\n"
    "  /prof.folded   collapsed-stack flamegraph text\n"
    "  /traces.json   per-job trace spans (JobTracer)\n"
    "  /trace.json    merged Chrome trace_event lanes (one per job)\n";

// Dynamic route table (register_route). Providers run on the server
// thread; the map is tiny (a handful of daemon endpoints), so a copy of
// the provider under the lock per request is fine.
struct DynRoute {
  std::string content_type;
  std::function<std::string()> provider;
};
std::mutex g_routes_mu;
std::map<std::string, DynRoute>& dyn_routes() {
  static std::map<std::string, DynRoute>* g = new std::map<std::string, DynRoute>();
  return *g;
}

}  // namespace

void register_route(const std::string& path, const std::string& content_type,
                    std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lk(g_routes_mu);
  dyn_routes()[path] = DynRoute{content_type, std::move(provider)};
}

void unregister_route(const std::string& path) {
  std::lock_guard<std::mutex> lk(g_routes_mu);
  dyn_routes().erase(path);
}

Response respond(const std::string& path) {
  Response r;
  {
    // Dynamic routes first; call the provider with the table unlocked so a
    // provider fetching slow state never blocks registration.
    DynRoute dr;
    bool found = false;
    {
      std::lock_guard<std::mutex> lk(g_routes_mu);
      auto it = dyn_routes().find(path);
      if (it != dyn_routes().end()) {
        dr = it->second;
        found = true;
      }
    }
    if (found) {
      r.content_type = dr.content_type;
      r.body = dr.provider();
      return r;
    }
  }
  if (path == "/" || path == "/index") {
    r.body = kIndex;
    std::lock_guard<std::mutex> lk(g_routes_mu);
    for (const auto& [p, dr] : dyn_routes()) r.body += "  " + p + "\n";
  } else if (path == "/metrics") {
    r.body = expo::prometheus_text(Registry::global().snapshot());
  } else if (path == "/metrics.json") {
    r.content_type = "application/json";
    r.body = expo::json(Registry::global().snapshot());
  } else if (path == "/flat.json") {
    r.content_type = "application/json";
    r.body = Registry::global().json();
  } else if (path == "/ledger.json") {
    r.content_type = "application/json";
    r.body = ledger_json();
  } else if (path == "/prof.json") {
    r.content_type = "application/json";
    r.body = Profiler::global().report_json("live", 10);
  } else if (path == "/prof.folded") {
    r.body = Profiler::global().collapsed();
  } else if (path == "/traces.json") {
    r.content_type = "application/json";
    r.body = JobTracer::global().traces_json();
  } else if (path == "/trace.json") {
    r.content_type = "application/json";
    r.body = JobTracer::global().chrome_trace_json();
  } else {
    r.status = 404;
    r.body = "404 not found\n";
  }
  return r;
}

ObsServer::~ObsServer() { stop(); }

ObsServer& ObsServer::global() {
  static ObsServer* g = new ObsServer();
  return *g;
}

bool ObsServer::start(u16 port) {
  if (running()) return true;
  crp::serve::SocketServer::Handlers h;
  h.on_data = [this](crp::serve::ConnId conn, std::string_view data) {
    on_data(conn, data);
  };
  h.on_close = [this](crp::serve::ConnId conn) { reqs_.erase(conn); };
  return server_.start(port, std::move(h));
}

void ObsServer::stop() { server_.stop(); }

void ObsServer::on_data(crp::serve::ConnId conn, std::string_view data) {
  // Accumulate until the request head is complete (first line suffices for
  // HTTP/1.0 GET); fragments from slow writers just come back here.
  std::string& req = reqs_[conn];
  req.append(data.data(), data.size());
  if (req.find("\r\n\r\n") == std::string::npos && req.size() <= 16384) return;

  std::string path = "/";
  if (req.rfind("GET ", 0) == 0) {
    size_t end = req.find(' ', 4);
    if (end != std::string::npos) path = req.substr(4, end - 4);
    if (size_t q = path.find('?'); q != std::string::npos) path.resize(q);
  }
  reqs_.erase(conn);

  Response r = respond(path);
  std::string head = strf(
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      r.status, r.status == 200 ? "OK" : "Not Found", r.content_type.c_str(),
      r.body.size());
  // The transport owns delivery (partial writes, EINTR/EAGAIN, slow
  // readers) and closes once the response has drained.
  server_.send(conn, head + r.body);
  server_.close_conn(conn, /*after_flush=*/true);
}

bool maybe_start_from_env() {
  ObsServer& srv = ObsServer::global();
  if (srv.running()) return true;
  const char* p = std::getenv("CRP_OBS_SERVE");
  if (p == nullptr || *p == '\0') return false;
  char* end = nullptr;
  unsigned long v = std::strtoul(p, &end, 10);
  if (end == p || *end != '\0' || v > 65535) {
    CRP_WARN("obs", "ignoring CRP_OBS_SERVE=\"%s\": not a port", p);
    return false;
  }
  if (!srv.start(static_cast<u16>(v))) return false;
  std::fprintf(stderr, "[obs] live telemetry: http://127.0.0.1:%u/\n",
               srv.port());
  return true;
}

}  // namespace crp::obs::serve
