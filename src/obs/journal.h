// Bounded ring-buffer event journal, exportable as Chrome trace_event JSON
// (load the file in about:tracing or https://ui.perfetto.dev).
//
// Events are cheap to emit but not free (one mutex + one string copy), so
// the journal is used at *operation* granularity — one event per oracle
// probe, per SAT query, per bench phase — never per instruction. When the
// ring is full the oldest events are overwritten and `dropped()` counts the
// loss, so memory stays bounded on arbitrarily long campaigns.
//
// Timestamps are caller-supplied microseconds. Probe campaigns use the
// Kernel's *virtual* clock (instruction-derived, deterministic); bench
// phases use wall time. The exporter sorts events by timestamp, so a trace
// mixing clock domains still loads cleanly, and traces from deterministic
// runs are bit-identical.
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"

namespace crp::obs {

/// Fixed lane count for task-derived trace tids (lane = 1 + task % lanes).
/// A fixed, job-count-independent modulus keeps traces from jobs=1 and
/// jobs=8 runs on identical lanes.
inline constexpr u32 kJournalTaskLanes = 16;

/// Deterministic trace lane of the calling thread. Events emitted with
/// tid == 0 adopt it, so nested spans (e.g. oracle probes inside a pool
/// task) land on their task's lane without plumbing a tid through every
/// layer. Lane 0 (the default) is the main/untracked lane.
u32 journal_thread_lane();
void set_journal_thread_lane(u32 lane);

/// RAII lane switch; exec::ThreadPool scopes one per task, derived from the
/// task id (never std::thread::id — thread identity is scheduling-dependent
/// and would break trace determinism across runs and job counts).
class ScopedJournalLane {
 public:
  explicit ScopedJournalLane(u32 lane) : prev_(journal_thread_lane()) {
    set_journal_thread_lane(lane);
  }
  ~ScopedJournalLane() { set_journal_thread_lane(prev_); }
  ScopedJournalLane(const ScopedJournalLane&) = delete;
  ScopedJournalLane& operator=(const ScopedJournalLane&) = delete;

 private:
  u32 prev_;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';  // 'X' complete, 'i' instant, 'C' counter
  u64 ts_us = 0;
  u64 dur_us = 0;     // 'X' only
  u32 tid = 0;
  std::string arg_name;  // optional single numeric arg
  i64 arg = 0;
};

class Journal {
 public:
  explicit Journal(size_t capacity = 1 << 16) : capacity_(capacity) {}

  /// Append a complete ('X') span event.
  void span(const std::string& name, const std::string& cat, u64 ts_us, u64 dur_us,
            u32 tid = 0, const std::string& arg_name = {}, i64 arg = 0);
  /// Append an instant ('i') event.
  void instant(const std::string& name, const std::string& cat, u64 ts_us, u32 tid = 0,
               const std::string& arg_name = {}, i64 arg = 0);
  void emit(TraceEvent ev);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  u64 dropped() const;
  void clear();

  /// Copy of the buffered events in emission order (tests, live telemetry).
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event "JSON Array Format": events sorted by ts_us.
  std::string chrome_trace_json() const;

  /// The process-wide journal; benches export it via BenchSession.
  static Journal& global();

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> ring_;
  u64 dropped_ = 0;
};

}  // namespace crp::obs
