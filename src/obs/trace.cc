#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/journal.h"
#include "obs/obs.h"
#include "util/common.h"

namespace crp::obs {

u64 trace_now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kAdmission: return "admission";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kStep: return "step";
    case SpanKind::kPark: return "park";
    case SpanKind::kResume: return "resume";
    case SpanKind::kLeaseAcquire: return "lease_acquire";
    case SpanKind::kLeaseWait: return "lease_wait";
    case SpanKind::kLeaseCoalesce: return "lease_coalesce";
    case SpanKind::kRender: return "render";
  }
  return "?";
}

// --- Ring --------------------------------------------------------------------

/// SPSC ring, same shape as Ledger::Ring: the owning thread is the only
/// producer (record), a drainer holding the tracer mutex is the only
/// consumer (drain_locked).
struct JobTracer::Ring {
  explicit Ring(size_t cap) : buf(cap) {}

  std::vector<JobSpan> buf;
  std::atomic<u64> head{0};
  std::atomic<u64> tail{0};
  std::atomic<u64> dropped{0};
};

namespace {

/// Thread-local ring cache keyed by per-tracer unique id (never address —
/// a destroyed tracer's slot must not alias a new one's).
struct TlsRingRef {
  u64 tracer_id;
  JobTracer::Ring* ring;
};
thread_local std::vector<TlsRingRef> t_rings;
std::atomic<u64> g_next_tracer_id{1};

thread_local TraceJobCtx t_job_ctx;

}  // namespace

TraceJobCtx current_trace_job() { return t_job_ctx; }

ScopedTraceJob::ScopedTraceJob(u64 trace, u64 job) : prev_(t_job_ctx) {
  t_job_ctx = TraceJobCtx{trace, job};
}

ScopedTraceJob::~ScopedTraceJob() { t_job_ctx = prev_; }

// --- JobTracer ---------------------------------------------------------------

JobTracer::JobTracer(size_t ring_capacity)
    : ring_capacity_(std::max<size_t>(ring_capacity, 8)),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {
  names_.push_back("-");  // id 0: unknown / none
}

JobTracer::~JobTracer() = default;

JobTracer& JobTracer::global() {
  static JobTracer* g = new JobTracer();
  return *g;
}

void JobTracer::set_armed(bool on) {
  armed_.store(on, std::memory_order_relaxed);
}

u64 JobTracer::start_trace(u64 requested) {
  if (requested != 0) {
    // Pin the client's id and keep the allocator strictly above it so a
    // later assigned id never collides with a pinned one.
    u64 cur = next_trace_.load(std::memory_order_relaxed);
    while (cur <= requested &&
           !next_trace_.compare_exchange_weak(cur, requested + 1,
                                              std::memory_order_relaxed)) {
    }
    return requested;
  }
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

JobTracer::Ring& JobTracer::ring_for_thread() {
  for (const TlsRingRef& r : t_rings)
    if (r.tracer_id == id_) return *r.ring;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  Ring* ring = rings_.back().get();
  t_rings.push_back({id_, ring});
  return *ring;
}

u32 JobTracer::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<u32>(i);
  if (names_.size() >= kMaxNames) return 0;  // table full: fold into "-"
  names_.push_back(name);
  return static_cast<u32>(names_.size() - 1);
}

std::string JobTracer::name_of(u32 id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < names_.size() ? names_[id] : std::string("-");
}

void JobTracer::record(u64 trace, u64 job, SpanKind kind, u32 label, u64 arg,
                       u64 t0_ns, u64 t1_ns) {
  if (!armed() || !detail::recording() || trace == 0) return;

  JobSpan s;
  s.trace = trace;
  s.job = job;
  s.t0_ns = t0_ns;
  s.t1_ns = t1_ns;
  s.arg = arg;
  s.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  s.label = label < kMaxNames ? label : 0;
  s.kind = kind;

  Ring& r = ring_for_thread();
  u64 head = r.head.load(std::memory_order_relaxed);
  u64 tail = r.tail.load(std::memory_order_acquire);
  if (head - tail >= r.buf.size()) {
    // Full: drop the newest (overwriting the oldest would race the drainer).
    r.dropped.fetch_add(1, std::memory_order_relaxed);
  } else {
    r.buf[static_cast<size_t>(head % r.buf.size())] = s;
    r.head.store(head + 1, std::memory_order_release);
  }
  Registry::global().counter("crpd.trace.spans").inc();
}

// --- Live-job table ----------------------------------------------------------

void JobTracer::job_started(u64 trace, u64 job, const std::string& tenant,
                            const std::string& target) {
  if (!armed() || trace == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  LiveJob& lj = live_[trace];
  lj.trace = trace;
  lj.job = job;
  lj.tenant = tenant;
  lj.target = target;
  lj.parked = false;
}

void JobTracer::step_begin(u64 trace, const std::string& step) {
  if (!armed() || trace == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(trace);
  if (it == live_.end()) return;
  it->second.step = step;
  it->second.step_since_ns = trace_now_ns();
  it->second.parked = false;
}

void JobTracer::step_end(u64 trace) {
  if (!armed() || trace == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(trace);
  if (it == live_.end()) return;
  it->second.step.clear();
  it->second.step_since_ns = 0;
}

void JobTracer::job_parked(u64 trace) {
  if (!armed() || trace == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(trace);
  if (it == live_.end()) return;
  it->second.parked = true;
  it->second.step.clear();
  it->second.step_since_ns = 0;
}

void JobTracer::lease_begin(u64 trace, u64 key, const std::string& stage) {
  if (!armed() || trace == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(trace);
  if (it == live_.end()) return;
  it->second.lease_since_ns = trace_now_ns();
  it->second.lease_key = key;
  (void)stage;
}

void JobTracer::lease_end(u64 trace) {
  if (!armed() || trace == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(trace);
  if (it == live_.end()) return;
  it->second.lease_since_ns = 0;
  it->second.lease_key = 0;
}

void JobTracer::job_finished(u64 trace) {
  if (!armed() || trace == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(trace);
}

std::vector<JobTracer::LiveJob> JobTracer::live_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LiveJob> out;
  out.reserve(live_.size());
  for (const auto& [tr, lj] : live_) out.push_back(lj);
  return out;
}

size_t JobTracer::watchdog_scan(u64 step_deadline_ns, u64 lease_deadline_ns) {
  u64 now = trace_now_ns();
  size_t fresh = 0;
  Registry& reg = Registry::global();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [tr, lj] : live_) {
    if (!lj.step_flagged && lj.step_since_ns != 0 &&
        now - lj.step_since_ns > step_deadline_ns) {
      lj.step_flagged = true;
      ++fresh;
      reg.counter("crpd.watchdog.step_stalls").inc();
      Journal::global().instant("watchdog.step_stall", "crpd", now / 1000, 0, "job",
                                static_cast<i64>(lj.job));
    }
    if (!lj.lease_flagged && lj.lease_since_ns != 0 &&
        now - lj.lease_since_ns > lease_deadline_ns) {
      lj.lease_flagged = true;
      ++fresh;
      reg.counter("crpd.watchdog.lease_stalls").inc();
      Journal::global().instant("watchdog.lease_stall", "crpd", now / 1000, 0, "job",
                                static_cast<i64>(lj.job));
    }
  }
  flags_.fetch_add(fresh, std::memory_order_relaxed);
  return fresh;
}

// --- Drain / export ----------------------------------------------------------

void JobTracer::append_locked(const JobSpan& s) {
  auto key = std::make_pair(s.trace, s.job);
  auto it = archive_.find(key);
  if (it == archive_.end()) {
    if (archive_.size() >= kMaxArchivedJobs) {
      // Evict the oldest lane FIFO; its spans are gone, count them.
      auto victim = archive_.find(archive_fifo_.front());
      archive_fifo_.pop_front();
      if (victim != archive_.end()) {
        dropped_ += victim->second.size();
        archive_.erase(victim);
      }
    }
    it = archive_.emplace(key, std::vector<JobSpan>()).first;
    archive_fifo_.push_back(key);
  }
  if (it->second.size() >= kMaxSpansPerJob) {
    ++dropped_;
    Registry::global().counter("crpd.trace.dropped").inc();
    return;
  }
  it->second.push_back(s);
}

void JobTracer::drain_locked() {
  for (auto& rp : rings_) {
    Ring& r = *rp;
    u64 head = r.head.load(std::memory_order_acquire);
    u64 tail = r.tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail)
      append_locked(r.buf[static_cast<size_t>(tail % r.buf.size())]);
    r.tail.store(tail, std::memory_order_release);
  }
}

std::vector<JobTracer::JobTraceView> JobTracer::snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  std::vector<JobTraceView> out;
  out.reserve(archive_.size());
  for (const auto& [key, spans] : archive_) {
    JobTraceView v;
    v.trace = key.first;
    v.job = key.second;
    v.spans = spans;
    std::sort(v.spans.begin(), v.spans.end(),
              [](const JobSpan& a, const JobSpan& b) { return a.seq < b.seq; });
    // Renumber so no raw (scheduling-dependent) stamp leaks into output.
    for (size_t i = 0; i < v.spans.size(); ++i) v.spans[i].seq = i;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<JobSpan> JobTracer::spans_for(u64 trace) {
  std::vector<JobSpan> out;
  for (JobTraceView& v : snapshot()) {
    if (v.trace != trace) continue;
    out.insert(out.end(), v.spans.begin(), v.spans.end());
  }
  return out;
}

u64 JobTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 d = dropped_;
  for (const auto& rp : rings_) d += rp->dropped.load(std::memory_order_relaxed);
  return d;
}

std::string JobTracer::traces_json() {
  std::vector<JobTraceView> views = snapshot();
  std::string out = "{\n\"traces\": [";
  u64 cur_trace = 0;
  bool first_trace = true;
  bool first_job = true;
  for (const JobTraceView& v : views) {
    if (first_trace || v.trace != cur_trace) {
      if (!first_trace) out += "\n]}";
      out += first_trace ? "\n" : ",\n";
      out += strf("{\"trace\": %llu, \"jobs\": [",
                  static_cast<unsigned long long>(v.trace));
      cur_trace = v.trace;
      first_trace = false;
      first_job = true;
    }
    out += first_job ? "\n" : ",\n";
    first_job = false;
    out += strf("{\"job\": %llu, \"spans\": [",
                static_cast<unsigned long long>(v.job));
    for (size_t i = 0; i < v.spans.size(); ++i) {
      const JobSpan& s = v.spans[i];
      out += i == 0 ? "\n" : ",\n";
      out += strf("{\"seq\": %llu, \"kind\": \"%s\", \"label\": \"%s\", "
                  "\"arg\": %llu, \"t0_ns\": %llu, \"t1_ns\": %llu}",
                  static_cast<unsigned long long>(s.seq), span_kind_name(s.kind),
                  name_of(s.label).c_str(), static_cast<unsigned long long>(s.arg),
                  static_cast<unsigned long long>(s.t0_ns),
                  static_cast<unsigned long long>(s.t1_ns));
    }
    out += "]}";
  }
  if (!first_trace) out += "\n]}";
  out += "\n]\n}\n";
  return out;
}

std::string JobTracer::chrome_trace_json() {
  std::vector<JobTraceView> views = snapshot();
  std::string out = "[";
  bool first = true;
  for (const JobTraceView& v : views) {
    for (const JobSpan& s : v.spans) {
      out += first ? "\n" : ",\n";
      first = false;
      std::string label = name_of(s.label);
      u64 dur = s.t1_ns > s.t0_ns ? (s.t1_ns - s.t0_ns) / 1000 : 0;
      out += strf("{\"name\": \"%s%s%s\", \"cat\": \"trace:%llu\", \"ph\": \"X\", "
                  "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %llu, "
                  "\"args\": {\"arg\": %llu}}",
                  span_kind_name(s.kind), s.label != 0 ? ":" : "",
                  s.label != 0 ? label.c_str() : "",
                  static_cast<unsigned long long>(v.trace),
                  static_cast<unsigned long long>(s.t0_ns / 1000),
                  static_cast<unsigned long long>(dur),
                  static_cast<unsigned long long>(v.job),
                  static_cast<unsigned long long>(s.arg));
    }
  }
  out += "\n]\n";
  return out;
}

void JobTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& rp : rings_) {
    Ring& r = *rp;
    r.tail.store(r.head.load(std::memory_order_acquire), std::memory_order_release);
    r.dropped.store(0, std::memory_order_relaxed);
  }
  archive_.clear();
  archive_fifo_.clear();
  live_.clear();
  names_.clear();
  names_.push_back("-");
  dropped_ = 0;
  flags_.store(0, std::memory_order_relaxed);
}

}  // namespace crp::obs
