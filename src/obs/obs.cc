#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace crp::obs {

namespace detail {
std::atomic<bool> g_runtime_enabled{true};
}  // namespace detail

void set_runtime_enabled(bool on) {
  detail::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

bool runtime_enabled() { return detail::g_runtime_enabled.load(std::memory_order_relaxed); }

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// --- Gauge -------------------------------------------------------------------

void Gauge::update_max(i64 v) {
  if (!detail::recording()) return;
  i64 cur = v_.load(std::memory_order_relaxed);
  while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --- Histogram ---------------------------------------------------------------

u32 Histogram::bucket_index(u64 v) {
  if (v < kExactValues) return static_cast<u32>(v);
  u32 octave = 63 - static_cast<u32>(std::countl_zero(v));
  u32 sub = static_cast<u32>((v - (1ull << octave)) >> (octave - 2));
  return kExactValues + (octave - 2) * kSubBuckets + sub;
}

u64 Histogram::bucket_lo(u32 idx) {
  if (idx < kExactValues) return idx;
  u32 octave = 2 + (idx - kExactValues) / kSubBuckets;
  u32 sub = (idx - kExactValues) % kSubBuckets;
  return (1ull << octave) + (static_cast<u64>(sub) << (octave - 2));
}

u64 Histogram::bucket_hi(u32 idx) {
  if (idx < kExactValues) return idx + 1;
  if (idx == kNumBuckets - 1) return ~0ull;
  return bucket_lo(idx + 1);
}

void Histogram::record(u64 v) {
  if (!detail::recording()) return;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  u64 cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

u64 Histogram::min() const {
  u64 m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

double Histogram::mean() const {
  u64 n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

u64 Histogram::quantile(double q) const {
  u64 n = count();
  if (n == 0) return 0;
  // Degenerate distributions (single sample, or all samples equal) have an
  // exact answer; don't let bucket interpolation manufacture one.
  if (min() == max()) return min();
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based), then walk the cumulative counts.
  u64 rank = static_cast<u64>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  u64 seen = 0;
  for (u32 i = 0; i < kNumBuckets; ++i) {
    u64 b = buckets_[i].load(std::memory_order_relaxed);
    if (b == 0) continue;
    if (seen + b >= rank) {
      // Midpoint-rule interpolation inside the bucket (the k-th of b samples
      // sits at fraction (k-0.5)/b), clamped to observed extremes.
      u64 lo = bucket_lo(i), hi = bucket_hi(i);
      double frac =
          (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(b);
      u64 est = lo + static_cast<u64>(frac * static_cast<double>(hi - lo));
      return std::clamp(est, min(), max());
    }
    seen += b;
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- ScopedTimer -------------------------------------------------------------

namespace {
u64 wall_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}
}  // namespace

ScopedTimer::ScopedTimer(Histogram& h) : h_(h), t0_(wall_ns()) {}

ScopedTimer::~ScopedTimer() { h_.record(elapsed_ns()); }

u64 ScopedTimer::elapsed_ns() const { return wall_ns() - t0_; }

// --- Registry ----------------------------------------------------------------

Registry::Entry& Registry::get_or_create(const std::string& name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      CRP_PANIC(strf("metric '%s' registered as %s, requested as %s", name.c_str(),
                     metric_kind_name(it->second.kind), metric_kind_name(kind)));
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: e.c = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: e.g = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram: e.h = std::make_unique<Histogram>(); break;
  }
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& Registry::counter(const std::string& name) {
  return *get_or_create(name, MetricKind::kCounter).c;
}

Gauge& Registry::gauge(const std::string& name) {
  return *get_or_create(name, MetricKind::kGauge).g;
}

Histogram& Registry::histogram(const std::string& name) {
  return *get_or_create(name, MetricKind::kHistogram).h;
}

bool Registry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.contains(name);
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    switch (e.kind) {
      case MetricKind::kCounter: e.c->reset(); break;
      case MetricKind::kGauge: e.g->reset(); break;
      case MetricKind::kHistogram: e.h->reset(); break;
    }
  }
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Remaining C0 controls are invalid raw inside a JSON string.
        if (static_cast<unsigned char>(c) < 0x20)
          out += strf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        else
          out.push_back(c);
    }
  }
  return out;
}

std::string hist_json(const Histogram& h) {
  return strf(
      "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,\"mean\":%.3f,"
      "\"p50\":%llu,\"p95\":%llu,\"p99\":%llu}",
      static_cast<unsigned long long>(h.count()), static_cast<unsigned long long>(h.sum()),
      static_cast<unsigned long long>(h.min()), static_cast<unsigned long long>(h.max()),
      h.mean(), static_cast<unsigned long long>(h.quantile(0.50)),
      static_cast<unsigned long long>(h.quantile(0.95)),
      static_cast<unsigned long long>(h.quantile(0.99)));
}
}  // namespace

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : metrics_) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + json_escape(name) + "\": ";
    switch (e.kind) {
      case MetricKind::kCounter:
        out += strf("%llu", static_cast<unsigned long long>(e.c->value()));
        break;
      case MetricKind::kGauge:
        out += strf("%lld", static_cast<long long>(e.g->value()));
        break;
      case MetricKind::kHistogram:
        out += hist_json(*e.h);
        break;
    }
  }
  out += "\n}";
  return out;
}

std::string Registry::text(bool skip_zero) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        if (skip_zero && e.c->value() == 0) break;
        out += strf("  %-40s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(e.c->value()));
        break;
      case MetricKind::kGauge:
        if (skip_zero && e.g->value() == 0) break;
        out += strf("  %-40s %lld\n", name.c_str(), static_cast<long long>(e.g->value()));
        break;
      case MetricKind::kHistogram:
        if (skip_zero && e.h->count() == 0) break;
        out += strf("  %-40s n=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(e.h->count()), e.h->mean(),
                    static_cast<unsigned long long>(e.h->quantile(0.50)),
                    static_cast<unsigned long long>(e.h->quantile(0.95)),
                    static_cast<unsigned long long>(e.h->quantile(0.99)),
                    static_cast<unsigned long long>(e.h->max()));
        break;
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry* g = new Registry();  // intentionally leaked: outlives all cached refs
  return *g;
}

// --- Snapshot ----------------------------------------------------------------

double HistSnap::mean() const {
  return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
}

u64 HistSnap::quantile(double q) const {
  if (count == 0) return 0;
  if (min == max) return min;
  q = std::clamp(q, 0.0, 1.0);
  u64 rank = static_cast<u64>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  u64 seen = 0;
  for (const auto& [idx, b] : buckets) {
    if (seen + b >= rank) {
      u64 lo = Histogram::bucket_lo(idx), hi = Histogram::bucket_hi(idx);
      double frac =
          (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(b);
      u64 est = lo + static_cast<u64>(frac * static_cast<double>(hi - lo));
      return std::clamp(est, min, max);
    }
    seen += b;
  }
  return max;
}

const SnapValue* Snapshot::find(const std::string& name) const {
  auto it = values.find(name);
  return it == values.end() ? nullptr : &it->second;
}

i64 Snapshot::num(const std::string& name) const {
  const SnapValue* v = find(name);
  if (v == nullptr) return 0;
  return v->kind == MetricKind::kHistogram ? static_cast<i64>(v->hist.count) : v->num;
}

u64 Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kCounter) return 0;
  return it->second.c->value();
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, e] : metrics_) {
    SnapValue v;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter: v.num = static_cast<i64>(e.c->value()); break;
      case MetricKind::kGauge: v.num = e.g->value(); break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.h;
        v.hist.count = h.count();
        v.hist.sum = h.sum();
        v.hist.min = h.min();
        v.hist.max = h.max();
        for (u32 i = 0; i < Histogram::kNumBuckets; ++i)
          if (u64 b = h.bucket_count(i); b > 0) v.hist.buckets.emplace_back(i, b);
        break;
      }
    }
    snap.values.emplace(name, std::move(v));
  }
  return snap;
}

Snapshot Registry::diff(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  for (const auto& [name, a] : after.values) {
    const SnapValue* b = before.find(name);
    SnapValue d;
    d.kind = a.kind;
    if (b != nullptr && b->kind != a.kind) b = nullptr;  // kind changed: treat as new
    switch (a.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        d.num = a.num - (b != nullptr ? b->num : 0);
        break;
      case MetricKind::kHistogram: {
        const HistSnap empty;
        const HistSnap& hb = b != nullptr ? b->hist : empty;
        d.hist.count = a.hist.count - std::min(hb.count, a.hist.count);
        d.hist.sum = a.hist.sum - std::min(hb.sum, a.hist.sum);
        std::map<u32, u64> bb(hb.buckets.begin(), hb.buckets.end());
        for (const auto& [idx, n] : a.hist.buckets) {
          u64 prev = bb.count(idx) ? bb[idx] : 0;
          if (n > prev) d.hist.buckets.emplace_back(idx, n - prev);
        }
        // min/max of the *delta* samples are unknowable exactly; bound them
        // by the surviving buckets' ranges so quantile() stays sane.
        if (!d.hist.buckets.empty()) {
          d.hist.min = Histogram::bucket_lo(d.hist.buckets.front().first);
          d.hist.max = Histogram::bucket_hi(d.hist.buckets.back().first) - 1;
          d.hist.min = std::max(d.hist.min, std::min(a.hist.min, d.hist.max));
          d.hist.max = std::min(d.hist.max, a.hist.max);
        }
        break;
      }
    }
    out.values.emplace(name, std::move(d));
  }
  return out;
}

// --- json_number -------------------------------------------------------------

bool json_number(const std::string& json, const std::string& key, double* out) {
  std::string name = key;
  std::string field;
  if (size_t slash = key.find('/'); slash != std::string::npos) {
    name = key.substr(0, slash);
    field = key.substr(slash + 1);
  }
  size_t pos = json.find("\"" + json_escape(name) + "\":");
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos);
  ++pos;
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\n')) ++pos;
  if (pos < json.size() && json[pos] == '{') {
    if (field.empty()) return false;
    size_t end = json.find('}', pos);
    if (end == std::string::npos) return false;
    size_t f = json.find("\"" + field + "\":", pos);
    if (f == std::string::npos || f > end) return false;
    pos = json.find(':', f) + 1;
  }
  try {
    *out = std::stod(json.substr(pos));
  } catch (const std::invalid_argument&) {  // no parsable number at pos
    return false;
  } catch (const std::out_of_range&) {  // magnitude overflows a double
    return false;
  }
  return true;
}

}  // namespace crp::obs
