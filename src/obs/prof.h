// crp::obs — deterministic virtual-time sampling profiler.
//
// ROADMAP item 1 (JIT the MiniVM hot path) needs to know WHICH guest basic
// blocks burn the interpreter's cycles, not just that the taint-trace phase
// dominates. Wall-clock sampling cannot answer that reproducibly: thread
// scheduling moves the sample points, so two runs disagree about the heat
// table. This profiler samples on *virtual* time instead — every N retired
// guest instructions (N from CRP_PROF=N), per vm::Machine — so the sample
// stream is a pure function of the executed workload and the heat table is
// bit-identical at any CRP_JOBS.
//
// One sample captures (virtual instruction count, guest PC, decoded
// basic-block id, pipeline stage, target id, active syscall, taint/probe
// flags). The PC -> block mapping is done by the sampling Machine against a
// lazily built cfg::Cfg of the containing module; everything else comes from
// the thread-local ProfContext that the pipeline stages, the campaign
// driver, the kernel's syscall dispatch, and the oracle's probe loop
// maintain via the RAII scopes below.
//
// Storage mirrors src/obs/ledger.cc: raw samples go to per-thread SPSC
// rings (lock-free fast path, drops counted, drained on demand), while the
// heat table is kept *exactly* in per-thread aggregation shards — ring
// pressure can lose raw samples but never a heat count, which is what the
// determinism contract is stated over. Exports resolve interned ids back to
// names and sort by (count desc, names asc), so id assignment order (which
// IS scheduling-dependent) never leaks into an artifact.
//
// Unarmed cost: CRP_PROF unset leaves interval() == 0, every Machine skips
// arming its countdown, and the interpreter pays a single predictable
// branch per instruction — benches stay byte-identical.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"

namespace crp::obs {

// --- sample context bits ------------------------------------------------------

/// Taint/probe context flags carried by every sample.
inline constexpr u16 kProfProbe = 1u << 0;   // inside an oracle probe
inline constexpr u16 kProfTaint = 1u << 1;   // taint engine attached
inline constexpr u16 kProfFilter = 1u << 2;  // inside SEH filter evaluation

/// Render a flag set as "probe|taint|filter" ("-" when empty).
std::string prof_flags_name(u16 flags);

/// Thread-local sampling context: what the *host* thread is doing when a
/// Machine it drives takes a sample. Ids are Profiler::intern'd names
/// (0 = "-" / none). Maintained by the RAII scopes below.
struct ProfContext {
  u32 stage = 0;    // pipeline stage id
  u32 target = 0;   // campaign target id
  u16 syscall = 0;  // syscall name id being serviced (0 = none)
  u16 flags = 0;    // kProf* bits
};

/// One fixed-size sample record (the per-thread ring element).
struct ProfSample {
  u64 vcount = 0;   // sampling Machine's instret at the sample
  u64 pc = 0;       // guest program counter
  u32 block = 0;    // interned basic-block id ("module+0xoff", 0 = "-")
  u32 stage = 0;    // ProfContext at the sample
  u32 target = 0;
  u16 syscall = 0;
  u16 flags = 0;

  bool operator==(const ProfSample&) const = default;
};
static_assert(sizeof(ProfSample) == 32, "prof samples are fixed-size");

// --- profiler ----------------------------------------------------------------

class Profiler {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 12;

  /// Opaque per-thread shard (ring + exact heat tallies; definition in
  /// prof.cc, named here so the thread-local cache can hold typed pointers).
  struct Shard;

  /// One resolved row of the heat table. Sorted export order: samples desc,
  /// then (block, stage, target, syscall, flags) asc — deterministic
  /// regardless of id assignment order.
  struct HeatRow {
    std::string block, stage, target, syscall;
    u16 flags = 0;
    u64 samples = 0;

    bool operator==(const HeatRow&) const = default;
  };

  explicit Profiler(size_t ring_capacity = kDefaultRingCapacity);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler every Machine samples into. Its interval is
  /// parsed from CRP_PROF=N once, at first use.
  static Profiler& global();

  /// Sampling interval in retired instructions; 0 = disabled. Machines read
  /// this at construction, so set_interval() must run before the workload
  /// builds its Machines (tests; the env path has no such ordering issue).
  u64 interval() const { return interval_.load(std::memory_order_relaxed); }
  void set_interval(u64 n) { interval_.store(n, std::memory_order_relaxed); }
  bool enabled() const { return interval() != 0; }

  /// Id for a block/stage/target/syscall name (>= 1; creates on first use).
  /// Id 0 is reserved for "-" (none/unknown).
  u32 intern(const std::string& name);
  std::string name_of(u32 id) const;

  /// Calling thread's sampling context (shared by all Profiler instances;
  /// context is a property of the thread, not of a profiler). Inline: the
  /// scoped-context guards below sit on per-syscall paths.
  static ProfContext& context() {
    thread_local ProfContext ctx;
    return ctx;
  }

  /// Lock-free-ish fast path: ring store + one uncontended shard mutex for
  /// the exact heat tally. Called at sampling granularity, never per
  /// instruction.
  void record(const ProfSample& s);

  /// Exact totals (survive ring overflow).
  u64 samples() const { return samples_.load(std::memory_order_relaxed); }
  /// Raw samples lost to ring/archive overflow (heat stays exact).
  u64 dropped() const;

  /// Drain every thread ring into the archive and return a copy, sorted by
  /// (vcount, pc, block, seq) for deterministic inspection.
  std::vector<ProfSample> samples_snapshot();

  /// Merged, name-resolved heat table (see HeatRow for the order).
  std::vector<HeatRow> heat() const;

  /// Per-block totals aggregated over contexts, sorted (samples desc, block
  /// asc); top_k == 0 returns all.
  std::vector<std::pair<std::string, u64>> hot_blocks(size_t top_k = 0) const;

  /// Collapsed-stack flamegraph text: one "target;stage;syscall;block N"
  /// line per heat row, lexicographically sorted (flamegraph.pl /
  /// speedscope ready).
  std::string collapsed() const;

  /// Ranked hot-block report ("PROF_<name>.json" body): interval, totals,
  /// top-K blocks with sample shares, and the full heat table.
  std::string report_json(const std::string& name, size_t top_k = 10) const;

  /// Reset samples, heat, and the name table (tests). Keeps the interval.
  void clear();

 private:
  Shard& shard_for_thread();

  const size_t ring_capacity_;
  const u64 id_;  // unique per profiler instance (thread-local cache key)
  std::atomic<u64> interval_{0};
  std::atomic<u64> samples_{0};

  mutable std::mutex mu_;  // guards shards_ registration, names_, archive_
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::string> names_;
  std::vector<ProfSample> archive_;
  u64 archive_dropped_ = 0;
};

// --- RAII context scopes ------------------------------------------------------

/// Replace the whole context for a scope (exec::ThreadPool uses this to make
/// worker tasks inherit the batch issuer's stage/target).
class ScopedProfContext {
 public:
  explicit ScopedProfContext(const ProfContext& ctx) : prev_(Profiler::context()) {
    Profiler::context() = ctx;
  }
  ~ScopedProfContext() { Profiler::context() = prev_; }
  ScopedProfContext(const ScopedProfContext&) = delete;
  ScopedProfContext& operator=(const ScopedProfContext&) = delete;

 private:
  ProfContext prev_;
};

class ScopedProfStage {
 public:
  /// Interns only when the profiler is enabled, so unarmed runs never touch
  /// the name table.
  explicit ScopedProfStage(const char* name)
      : prev_(std::exchange(Profiler::context().stage,
                            Profiler::global().enabled() ? Profiler::global().intern(name)
                                                         : 0)) {}
  ~ScopedProfStage() { Profiler::context().stage = prev_; }
  ScopedProfStage(const ScopedProfStage&) = delete;
  ScopedProfStage& operator=(const ScopedProfStage&) = delete;

 private:
  u32 prev_;
};

class ScopedProfTarget {
 public:
  explicit ScopedProfTarget(const std::string& name)
      : prev_(std::exchange(Profiler::context().target,
                            Profiler::global().enabled() ? Profiler::global().intern(name)
                                                         : 0)) {}
  ~ScopedProfTarget() { Profiler::context().target = prev_; }
  ScopedProfTarget(const ScopedProfTarget&) = delete;
  ScopedProfTarget& operator=(const ScopedProfTarget&) = delete;

 private:
  u32 prev_;
};

class ScopedProfSyscall {
 public:
  /// `id` is a pre-interned syscall-name id (the Kernel caches one per
  /// syscall at construction); 0 keeps the scope a near-no-op.
  explicit ScopedProfSyscall(u16 id)
      : prev_(std::exchange(Profiler::context().syscall, id)) {}
  ~ScopedProfSyscall() { Profiler::context().syscall = prev_; }
  ScopedProfSyscall(const ScopedProfSyscall&) = delete;
  ScopedProfSyscall& operator=(const ScopedProfSyscall&) = delete;

 private:
  u16 prev_;
};

class ScopedProfFlags {
 public:
  explicit ScopedProfFlags(u16 bits) : prev_(Profiler::context().flags) {
    Profiler::context().flags = static_cast<u16>(prev_ | bits);
  }
  ~ScopedProfFlags() { Profiler::context().flags = prev_; }
  ScopedProfFlags(const ScopedProfFlags&) = delete;
  ScopedProfFlags& operator=(const ScopedProfFlags&) = delete;

 private:
  u16 prev_;
};

}  // namespace crp::obs
