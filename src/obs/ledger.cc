#include "obs/ledger.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <tuple>

#include "obs/expo.h"
#include "obs/journal.h"
#include "obs/obs.h"

namespace crp::obs {

const char* probe_outcome_name(ProbeOutcome o) {
  switch (o) {
    case ProbeOutcome::kSurvive: return "survive";
    case ProbeOutcome::kEfault: return "efault";
    case ProbeOutcome::kCrash: return "crash";
    case ProbeOutcome::kTimeout: return "timeout";
  }
  return "?";
}

bool probe_outcome_from_name(std::string_view s, ProbeOutcome* out) {
  for (u32 i = 0; i < kNumProbeOutcomes; ++i) {
    if (s == probe_outcome_name(static_cast<ProbeOutcome>(i))) {
      *out = static_cast<ProbeOutcome>(i);
      return true;
    }
  }
  return false;
}

const char* ledger_stage_name(LedgerStage s) {
  switch (s) {
    case LedgerStage::kOracle: return "oracle";
    case LedgerStage::kSweep: return "sweep";
    case LedgerStage::kHunt: return "hunt";
    case LedgerStage::kVerify: return "verify";
    case LedgerStage::kDefense: return "defense";
  }
  return "?";
}

bool ledger_stage_from_name(std::string_view s, LedgerStage* out) {
  for (u32 i = 0; i < kNumLedgerStages; ++i) {
    if (s == ledger_stage_name(static_cast<LedgerStage>(i))) {
      *out = static_cast<LedgerStage>(i);
      return true;
    }
  }
  return false;
}

// --- Ring --------------------------------------------------------------------

/// SPSC ring: the owning thread is the only producer (record), a drainer
/// holding the ledger mutex is the only consumer (snapshot). head is the
/// next write slot, tail the next read slot; head-tail is the fill level.
struct Ledger::Ring {
  explicit Ring(size_t cap) : buf(cap) {}

  std::vector<ProbeEvent> buf;
  std::atomic<u64> head{0};
  std::atomic<u64> tail{0};
  std::atomic<u64> dropped{0};
  u32 seq = 0;  // producer-only emission sequence
};

namespace {

/// Thread-local ring cache. Keyed by a per-ledger unique id, never by
/// address, so a test ledger destroyed and another allocated at the same
/// address cannot alias a stale entry.
struct TlsRingRef {
  u64 ledger_id;
  Ledger::Ring* ring;
};
thread_local std::vector<TlsRingRef> t_rings;

std::atomic<u64> g_next_ledger_id{1};

}  // namespace

Ledger::Ledger(size_t ring_capacity)
    : ring_capacity_(std::max<size_t>(ring_capacity, 8)),
      id_(g_next_ledger_id.fetch_add(1, std::memory_order_relaxed)) {
  names_.push_back("-");  // id 0: unknown
}

Ledger::~Ledger() = default;

Ledger::Ring& Ledger::ring_for_thread() {
  for (const TlsRingRef& r : t_rings)
    if (r.ledger_id == id_) return *r.ring;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  Ring* ring = rings_.back().get();
  t_rings.push_back({id_, ring});
  return *ring;
}

u32 Ledger::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<u32>(i);
  if (names_.size() >= kMaxNames) return 0;  // table full: fold into "-"
  names_.push_back(name);
  return static_cast<u32>(names_.size() - 1);
}

std::string Ledger::name_of(u32 id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < names_.size() ? names_[id] : std::string("-");
}

std::vector<std::string> Ledger::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

void Ledger::record(LedgerStage stage, ProbeOutcome outcome, u32 primitive, u32 target,
                    u64 addr, u64 ts_ns) {
  if (!detail::recording()) return;
  if (primitive >= kMaxNames) primitive = 0;
  if (target >= kMaxNames) target = 0;
  u32 oc = static_cast<u32>(outcome) < kNumProbeOutcomes ? static_cast<u32>(outcome) : 0;
  u32 st = static_cast<u32>(stage) < kNumLedgerStages ? static_cast<u32>(stage) : 0;

  Ring& r = ring_for_thread();
  ProbeEvent ev;
  ev.ts_ns = ts_ns;
  ev.addr = addr;
  ev.primitive = primitive;
  ev.target = target;
  ev.outcome = static_cast<u8>(oc);
  ev.stage = static_cast<u8>(st);
  ev.seq = r.seq++;

  u64 head = r.head.load(std::memory_order_relaxed);
  u64 tail = r.tail.load(std::memory_order_acquire);
  if (head - tail >= r.buf.size()) {
    // Full: drop the newest (overwriting the oldest would race the drainer).
    r.dropped.fetch_add(1, std::memory_order_relaxed);
  } else {
    r.buf[static_cast<size_t>(head % r.buf.size())] = ev;
    r.head.store(head + 1, std::memory_order_release);
  }
  // Tallies are exact even when the ring drops: the audit substrate.
  prim_tallies_[primitive][st][oc].fetch_add(1, std::memory_order_relaxed);
  stage_tallies_[st][oc].fetch_add(1, std::memory_order_relaxed);
}

std::vector<ProbeEvent> Ledger::snapshot() {
  constexpr size_t kArchiveCap = 1 << 20;  // 32 MiB of records, then drop+count
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& rp : rings_) {
    Ring& r = *rp;
    u64 head = r.head.load(std::memory_order_acquire);
    u64 tail = r.tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      if (archive_.size() < kArchiveCap)
        archive_.push_back(r.buf[static_cast<size_t>(tail % r.buf.size())]);
      else
        ++archive_dropped_;
    }
    r.tail.store(tail, std::memory_order_release);
  }
  std::vector<ProbeEvent> out = archive_;
  std::sort(out.begin(), out.end(), [](const ProbeEvent& a, const ProbeEvent& b) {
    return std::tie(a.ts_ns, a.stage, a.primitive, a.target, a.addr, a.outcome, a.seq) <
           std::tie(b.ts_ns, b.stage, b.primitive, b.target, b.addr, b.outcome, b.seq);
  });
  return out;
}

u64 Ledger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 d = archive_dropped_;
  for (const auto& rp : rings_) d += rp->dropped.load(std::memory_order_relaxed);
  return d;
}

u64 Ledger::total(u32 primitive, ProbeOutcome o) const {
  if (primitive >= kMaxNames) return 0;
  u64 n = 0;
  for (u32 s = 0; s < kNumLedgerStages; ++s)
    n += prim_tallies_[primitive][s][static_cast<u32>(o)].load(std::memory_order_relaxed);
  return n;
}

u64 Ledger::total(u32 primitive, LedgerStage s, ProbeOutcome o) const {
  if (primitive >= kMaxNames) return 0;
  return prim_tallies_[primitive][static_cast<u32>(s)][static_cast<u32>(o)].load(
      std::memory_order_relaxed);
}

u64 Ledger::stage_total(LedgerStage s, ProbeOutcome o) const {
  return stage_tallies_[static_cast<u32>(s)][static_cast<u32>(o)].load(
      std::memory_order_relaxed);
}

u64 Ledger::total_events() const {
  u64 n = 0;
  for (u32 s = 0; s < kNumLedgerStages; ++s)
    for (u32 o = 0; o < kNumProbeOutcomes; ++o)
      n += stage_tallies_[s][o].load(std::memory_order_relaxed);
  return n;
}

void Ledger::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& rp : rings_) {
    Ring& r = *rp;
    r.tail.store(r.head.load(std::memory_order_acquire), std::memory_order_release);
    r.dropped.store(0, std::memory_order_relaxed);
  }
  archive_.clear();
  archive_dropped_ = 0;
  names_.assign(1, "-");
  for (auto& row : prim_tallies_)
    for (auto& st : row)
      for (auto& v : st) v.store(0, std::memory_order_relaxed);
  for (auto& row : stage_tallies_)
    for (auto& v : row) v.store(0, std::memory_order_relaxed);
}

// --- binary codec ------------------------------------------------------------

namespace {
constexpr char kLedgerMagic[8] = {'C', 'R', 'P', 'L', 'E', 'D', 'G', '1'};

template <typename T>
void put_raw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool get_raw(const std::string& in, size_t* pos, T* v) {
  if (in.size() - *pos < sizeof *v) return false;
  std::memcpy(v, in.data() + *pos, sizeof *v);
  *pos += sizeof *v;
  return true;
}
}  // namespace

std::string Ledger::encode_binary(const std::vector<ProbeEvent>& evs) const {
  std::string out(kLedgerMagic, sizeof kLedgerMagic);
  std::vector<std::string> nm = names();
  put_raw<u32>(&out, static_cast<u32>(nm.size()));
  for (const std::string& n : nm) {
    put_raw<u16>(&out, static_cast<u16>(std::min<size_t>(n.size(), 0xFFFF)));
    out.append(n.data(), std::min<size_t>(n.size(), 0xFFFF));
  }
  put_raw<u64>(&out, static_cast<u64>(evs.size()));
  out.append(reinterpret_cast<const char*>(evs.data()), evs.size() * sizeof(ProbeEvent));
  return out;
}

bool Ledger::decode_binary(const std::string& doc, std::vector<ProbeEvent>* evs,
                           std::vector<std::string>* names) {
  if (doc.size() < sizeof kLedgerMagic ||
      std::memcmp(doc.data(), kLedgerMagic, sizeof kLedgerMagic) != 0)
    return false;
  size_t pos = sizeof kLedgerMagic;
  u32 name_count = 0;
  if (!get_raw(doc, &pos, &name_count) || name_count > kMaxNames) return false;
  std::vector<std::string> nm;
  nm.reserve(name_count);
  for (u32 i = 0; i < name_count; ++i) {
    u16 len = 0;
    if (!get_raw(doc, &pos, &len) || doc.size() - pos < len) return false;
    nm.emplace_back(doc.data() + pos, len);
    pos += len;
  }
  u64 count = 0;
  if (!get_raw(doc, &pos, &count)) return false;
  if ((doc.size() - pos) / sizeof(ProbeEvent) < count) return false;
  evs->resize(static_cast<size_t>(count));
  std::memcpy(evs->data(), doc.data() + pos, count * sizeof(ProbeEvent));
  if (names != nullptr) *names = std::move(nm);
  return true;
}

// --- JSONL codec -------------------------------------------------------------

namespace {
std::string jstr_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += strf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Extract the value after `"key":` on one JSONL line. Quoted values return
/// the (unescaped) string body; bare values return the raw token.
bool jfield(const std::string& line, const char* key, std::string* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    ++pos;
    std::string v;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
      v.push_back(line[pos++]);
    }
    *out = std::move(v);
    return true;
  }
  size_t end = line.find_first_of(",}", pos);
  if (end == std::string::npos) return false;
  *out = line.substr(pos, end - pos);
  return true;
}
}  // namespace

std::string Ledger::encode_jsonl(const std::vector<ProbeEvent>& evs) const {
  std::string out;
  for (const ProbeEvent& e : evs) {
    out += strf(
        "{\"ts_ns\":%llu,\"addr\":\"0x%llx\",\"primitive\":\"%s\",\"target\":\"%s\","
        "\"stage\":\"%s\",\"outcome\":\"%s\",\"seq\":%u}\n",
        static_cast<unsigned long long>(e.ts_ns), static_cast<unsigned long long>(e.addr),
        jstr_escape(name_of(e.primitive)).c_str(), jstr_escape(name_of(e.target)).c_str(),
        ledger_stage_name(static_cast<LedgerStage>(e.stage)),
        probe_outcome_name(static_cast<ProbeOutcome>(e.outcome)), e.seq);
  }
  return out;
}

bool Ledger::decode_jsonl(const std::string& doc, std::vector<ProbeEvent>* evs) {
  evs->clear();
  size_t pos = 0;
  while (pos < doc.size()) {
    size_t nl = doc.find('\n', pos);
    if (nl == std::string::npos) nl = doc.size();
    std::string line = doc.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    std::string ts, addr, prim, tgt, stage, outcome, seq;
    if (!jfield(line, "ts_ns", &ts) || !jfield(line, "addr", &addr) ||
        !jfield(line, "primitive", &prim) || !jfield(line, "target", &tgt) ||
        !jfield(line, "stage", &stage) || !jfield(line, "outcome", &outcome) ||
        !jfield(line, "seq", &seq))
      return false;
    ProbeEvent e;
    e.ts_ns = std::strtoull(ts.c_str(), nullptr, 10);
    e.addr = std::strtoull(addr.c_str(), nullptr, 16);
    e.primitive = intern(prim);
    e.target = intern(tgt);
    LedgerStage st;
    ProbeOutcome oc;
    if (!ledger_stage_from_name(stage, &st) || !probe_outcome_from_name(outcome, &oc))
      return false;
    e.stage = static_cast<u8>(st);
    e.outcome = static_cast<u8>(oc);
    e.seq = static_cast<u32>(std::strtoul(seq.c_str(), nullptr, 10));
    evs->push_back(e);
  }
  return true;
}

bool Ledger::write_files(const std::string& path) {
  std::vector<ProbeEvent> evs = snapshot();
  bool ok = true;
  {
    std::ofstream f(path, std::ios::binary);
    if (f)
      f << encode_binary(evs);
    else
      ok = false;
  }
  {
    std::ofstream f(path + ".jsonl");
    if (f)
      f << encode_jsonl(evs);
    else
      ok = false;
  }
  return ok;
}

Ledger& Ledger::global() {
  static Ledger* g = [] {
    install_flush_handlers();
    return new Ledger();  // intentionally leaked: outlives all emitters
  }();
  return *g;
}

// --- audit -------------------------------------------------------------------

std::string LedgerAudit::summary() const {
  std::string s = strf(
      "ledger audit %s: %llu events (%llu dropped), %llu crash-outcome probes, "
      "%zu primitives",
      ok() ? "PASS" : "FAIL", static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(crash_events), primitives.size());
  for (const std::string& v : violations) s += "\n  violation: " + v;
  return s;
}

void audit_events(const std::vector<ProbeEvent>& evs, const Ledger& ledger,
                  LedgerAudit* out) {
  out->events = evs.size();
  out->dropped = ledger.dropped();
  // A ledger decoded from a file has an event stream but no live tallies;
  // the stream/tally consistency check only makes sense against a ledger
  // that actually recorded the events.
  const bool have_tallies = ledger.total_events() > 0;

  // Per-(primitive, stage, outcome) counts over the materialized stream.
  using StageOutcomes = std::array<std::array<u64, kNumProbeOutcomes>, kNumLedgerStages>;
  std::vector<StageOutcomes> seen(Ledger::kMaxNames, StageOutcomes{});
  for (const ProbeEvent& e : evs) {
    if (e.primitive < Ledger::kMaxNames && e.stage < kNumLedgerStages &&
        e.outcome < kNumProbeOutcomes)
      ++seen[e.primitive][e.stage][e.outcome];
  }

  std::vector<std::string> names = ledger.names();
  for (u32 id = 0; id < Ledger::kMaxNames; ++id) {
    u64 row_total = 0, stream_total = 0, probing_crashes = 0;
    LedgerAudit::PrimitiveRow row;
    for (u32 o = 0; o < kNumProbeOutcomes; ++o) {
      u64 tallied = ledger.total(id, static_cast<ProbeOutcome>(o));
      u64 streamed = 0;
      for (u32 s = 0; s < kNumLedgerStages; ++s) {
        streamed += seen[id][s][o];
        if (o == static_cast<u32>(ProbeOutcome::kCrash) &&
            ledger_stage_is_probing(static_cast<LedgerStage>(s)))
          probing_crashes += have_tallies
                                 ? ledger.total(id, static_cast<LedgerStage>(s),
                                                ProbeOutcome::kCrash)
                                 : seen[id][s][o];
      }
      row.by_outcome[o] = have_tallies ? tallied : streamed;
      row_total += tallied;
      stream_total += streamed;
    }
    if (row_total == 0 && stream_total == 0) continue;
    row.name = id < names.size() ? names[id] : "-";

    // Zero-crash invariant: no probing-stage primitive may ever record a
    // crash outcome. (Verify-stage crash events record candidates being
    // disqualified — expected — and defense-stage ones the defender's view.)
    out->crash_events += probing_crashes;
    if (probing_crashes > 0)
      out->violations.push_back(
          strf("zero-crash invariant violated: primitive '%s' recorded %llu "
               "crash-outcome probe(s)",
               row.name.c_str(), static_cast<unsigned long long>(probing_crashes)));

    // Stream/tally consistency: with no drops the archived events must match
    // the exact tallies outcome-for-outcome; with drops they may only lag.
    for (u32 o = 0; o < kNumProbeOutcomes && have_tallies; ++o) {
      u64 tallied = ledger.total(id, static_cast<ProbeOutcome>(o));
      u64 streamed = 0;
      for (u32 s = 0; s < kNumLedgerStages; ++s) streamed += seen[id][s][o];
      bool bad = out->dropped == 0 ? streamed != tallied : streamed > tallied;
      if (bad)
        out->violations.push_back(strf(
            "event stream disagrees with tallies: primitive '%s' outcome %s has "
            "%llu archived event(s) vs %llu tallied",
            row.name.c_str(), probe_outcome_name(static_cast<ProbeOutcome>(o)),
            static_cast<unsigned long long>(streamed),
            static_cast<unsigned long long>(tallied)));
    }
    out->primitives.push_back(std::move(row));
  }
}

LedgerAudit audit_ledger(Ledger& ledger, const Registry* cross_check) {
  LedgerAudit out;
  std::vector<ProbeEvent> evs = ledger.snapshot();
  audit_events(evs, ledger, &out);

  if (cross_check != nullptr) {
    u64 scan_events = 0, scan_survive = 0, scan_crash = 0;
    for (u32 o = 0; o < kNumProbeOutcomes; ++o) {
      u64 n = ledger.stage_total(LedgerStage::kSweep, static_cast<ProbeOutcome>(o)) +
              ledger.stage_total(LedgerStage::kHunt, static_cast<ProbeOutcome>(o));
      scan_events += n;
      if (o == static_cast<u32>(ProbeOutcome::kSurvive)) scan_survive = n;
      if (o == static_cast<u32>(ProbeOutcome::kCrash)) scan_crash = n;
    }
    u64 probes = cross_check->counter_value("oracle.scan.probes");
    u64 mapped = cross_check->counter_value("oracle.scan.mapped_hits");
    u64 crashes = cross_check->counter_value("oracle.scan.crashes");
    if (probes != scan_events)
      out.violations.push_back(
          strf("counter cross-check: oracle.scan.probes=%llu but ledger has %llu "
               "sweep+hunt events",
               static_cast<unsigned long long>(probes),
               static_cast<unsigned long long>(scan_events)));
    if (crashes != scan_crash)
      out.violations.push_back(
          strf("counter cross-check: oracle.scan.crashes=%llu but ledger has %llu "
               "crash outcomes",
               static_cast<unsigned long long>(crashes),
               static_cast<unsigned long long>(scan_crash)));
    // A probe that answered "mapped" and then crashed the target is tallied
    // as crash (crash wins), so mapped_hits may exceed the survive count by
    // at most the crash count; with zero crashes the match must be exact.
    if (scan_crash == 0 ? mapped != scan_survive
                        : (mapped < scan_survive || mapped > scan_survive + scan_crash))
      out.violations.push_back(
          strf("counter cross-check: oracle.scan.mapped_hits=%llu but ledger has "
               "%llu survive outcomes (%llu crashes)",
               static_cast<unsigned long long>(mapped),
               static_cast<unsigned long long>(scan_survive),
               static_cast<unsigned long long>(scan_crash)));
  }
  return out;
}

// --- process-exit flush ------------------------------------------------------

namespace {
std::atomic<bool> g_flush_installed{false};
std::atomic<void (*)()> g_session_sink{nullptr};
std::terminate_handler g_prev_terminate = nullptr;

void terminate_bridge() {
  flush_now();
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}
}  // namespace

void set_session_flush_sink(void (*fn)()) {
  g_session_sink.store(fn, std::memory_order_release);
}

void flush_now() {
  static std::mutex m;
  std::lock_guard<std::mutex> lock(m);
  if (const char* p = std::getenv("CRP_LEDGER"); p != nullptr && *p != '\0')
    Ledger::global().write_files(p);
  if (const char* p = std::getenv("CRP_METRICS"); p != nullptr && *p != '\0') {
    std::ofstream f(p);
    if (f) f << expo::prometheus_text(Registry::global().snapshot());
  }
  if (const char* p = std::getenv("CRP_TRACE"); p != nullptr && *p != '\0') {
    if (Journal::global().size() > 0) {
      std::ofstream f(p);
      if (f) f << Journal::global().chrome_trace_json() << "\n";
    }
  }
  if (void (*fn)() = g_session_sink.load(std::memory_order_acquire); fn != nullptr) fn();
}

void install_flush_handlers() {
  if (g_flush_installed.exchange(true, std::memory_order_acq_rel)) return;
  std::atexit([] { flush_now(); });
  add_panic_hook(&flush_now);
  g_prev_terminate = std::set_terminate(&terminate_bridge);
}

}  // namespace crp::obs
