#include "obs/prof.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>

#include "obs/obs.h"
#include "util/log.h"

namespace crp::obs {

std::string prof_flags_name(u16 flags) {
  std::string out;
  auto add = [&](u16 bit, const char* name) {
    if ((flags & bit) == 0) return;
    if (!out.empty()) out += "|";
    out += name;
  };
  add(kProfProbe, "probe");
  add(kProfTaint, "taint");
  add(kProfFilter, "filter");
  return out.empty() ? "-" : out;
}

// --- Shard -------------------------------------------------------------------

namespace {
/// Heat key in interned-id space (names are resolved only at export).
using HeatKey = std::tuple<u32, u32, u32, u16, u16>;  // block, stage, target, sys, flags
}  // namespace

/// Per-thread shard: an SPSC raw-sample ring (owning thread produces, a
/// drainer holding the profiler mutex consumes) plus the exact heat tallies
/// under a shard-local mutex that only the (rare) snapshot ever contends.
struct Profiler::Shard {
  explicit Shard(size_t cap) : buf(cap) {}

  std::vector<ProfSample> buf;
  std::atomic<u64> head{0};
  std::atomic<u64> tail{0};
  std::atomic<u64> dropped{0};

  std::mutex mu;
  std::map<HeatKey, u64> heat;
};

namespace {

/// Thread-local shard cache, keyed by a per-profiler unique id (never by
/// address: a test profiler destroyed and another allocated at the same
/// address must not alias a stale entry).
struct TlsShardRef {
  u64 profiler_id;
  Profiler::Shard* shard;
};
thread_local std::vector<TlsShardRef> t_shards;

std::atomic<u64> g_next_profiler_id{1};

u64 env_interval() {
  const char* p = std::getenv("CRP_PROF");
  if (p == nullptr || *p == '\0') return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p || (end != nullptr && *end != '\0')) {
    CRP_WARN("obs", "ignoring CRP_PROF=\"%s\": not an instruction count", p);
    return 0;
  }
  return static_cast<u64>(v);
}

}  // namespace

Profiler::Profiler(size_t ring_capacity)
    : ring_capacity_(std::max<size_t>(ring_capacity, 8)),
      id_(g_next_profiler_id.fetch_add(1, std::memory_order_relaxed)) {
  names_.push_back("-");  // id 0: none/unknown
}

Profiler::~Profiler() = default;

Profiler& Profiler::global() {
  static Profiler* g = [] {
    auto* p = new Profiler();
    p->set_interval(env_interval());
    return p;
  }();
  return *g;
}

Profiler::Shard& Profiler::shard_for_thread() {
  for (const TlsShardRef& r : t_shards)
    if (r.profiler_id == id_) return *r.shard;
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>(ring_capacity_));
  Shard* shard = shards_.back().get();
  t_shards.push_back({id_, shard});
  return *shard;
}

u32 Profiler::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<u32>(i);
  names_.push_back(name);
  return static_cast<u32>(names_.size() - 1);
}

std::string Profiler::name_of(u32 id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < names_.size() ? names_[id] : std::string("-");
}

void Profiler::record(const ProfSample& s) {
  if (!detail::recording()) return;
  Shard& sh = shard_for_thread();

  u64 head = sh.head.load(std::memory_order_relaxed);
  u64 tail = sh.tail.load(std::memory_order_acquire);
  if (head - tail >= sh.buf.size()) {
    // Full: drop the newest raw sample (overwriting the oldest would race
    // the drainer). The heat tally below is exact regardless.
    sh.dropped.fetch_add(1, std::memory_order_relaxed);
  } else {
    sh.buf[static_cast<size_t>(head % sh.buf.size())] = s;
    sh.head.store(head + 1, std::memory_order_release);
  }

  {
    std::lock_guard<std::mutex> lock(sh.mu);
    ++sh.heat[HeatKey{s.block, s.stage, s.target, s.syscall, s.flags}];
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

u64 Profiler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 n = archive_dropped_;
  for (const auto& sh : shards_) n += sh->dropped.load(std::memory_order_relaxed);
  return n;
}

std::vector<ProfSample> Profiler::samples_snapshot() {
  constexpr size_t kArchiveCap = 1 << 18;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    u64 head = sh.head.load(std::memory_order_acquire);
    u64 tail = sh.tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      if (archive_.size() >= kArchiveCap) {
        ++archive_dropped_;
        continue;
      }
      archive_.push_back(sh.buf[static_cast<size_t>(tail % sh.buf.size())]);
    }
    sh.tail.store(tail, std::memory_order_release);
  }
  std::vector<ProfSample> out = archive_;
  std::sort(out.begin(), out.end(), [](const ProfSample& a, const ProfSample& b) {
    return std::tie(a.vcount, a.pc, a.block, a.stage, a.target, a.syscall, a.flags) <
           std::tie(b.vcount, b.pc, b.block, b.stage, b.target, b.syscall, b.flags);
  });
  return out;
}

std::vector<Profiler::HeatRow> Profiler::heat() const {
  std::map<HeatKey, u64> merged;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shp : shards_) {
      std::lock_guard<std::mutex> slock(shp->mu);
      for (const auto& [k, n] : shp->heat) merged[k] += n;
    }
    names = names_;
  }
  auto resolve = [&](u32 id) {
    return id < names.size() ? names[id] : std::string("-");
  };
  std::vector<HeatRow> rows;
  rows.reserve(merged.size());
  for (const auto& [k, n] : merged) {
    HeatRow r;
    r.block = resolve(std::get<0>(k));
    r.stage = resolve(std::get<1>(k));
    r.target = resolve(std::get<2>(k));
    r.syscall = resolve(std::get<3>(k));
    r.flags = std::get<4>(k);
    r.samples = n;
    rows.push_back(std::move(r));
  }
  // Order by names, not ids: id assignment follows first-use order, which
  // scheduling can permute; names cannot.
  std::sort(rows.begin(), rows.end(), [](const HeatRow& a, const HeatRow& b) {
    if (a.samples != b.samples) return a.samples > b.samples;
    return std::tie(a.block, a.stage, a.target, a.syscall, a.flags) <
           std::tie(b.block, b.stage, b.target, b.syscall, b.flags);
  });
  return rows;
}

std::vector<std::pair<std::string, u64>> Profiler::hot_blocks(size_t top_k) const {
  std::map<std::string, u64> by_block;
  for (const HeatRow& r : heat()) by_block[r.block] += r.samples;
  std::vector<std::pair<std::string, u64>> out(by_block.begin(), by_block.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top_k != 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

std::string Profiler::collapsed() const {
  std::vector<std::string> lines;
  for (const HeatRow& r : heat()) {
    std::string frame = r.block;
    if (r.flags != 0) frame += " [" + prof_flags_name(r.flags) + "]";
    lines.push_back(strf("%s;%s;%s;%s %llu", r.target.c_str(), r.stage.c_str(),
                         r.syscall.c_str(), frame.c_str(),
                         static_cast<unsigned long long>(r.samples)));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

namespace {
std::string jesc(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string Profiler::report_json(const std::string& name, size_t top_k) const {
  std::vector<HeatRow> rows = heat();
  std::vector<std::pair<std::string, u64>> blocks = hot_blocks(top_k);
  u64 total = samples();

  std::string out = "{\n";
  out += strf("\"prof\": \"%s\",\n\"schema\": 1,\n", jesc(name).c_str());
  // No "dropped" field on purpose: ring overflow counts are scheduling-
  // dependent, and this report must be bit-identical at any CRP_JOBS. The
  // drop count is diagnostics, not data — BenchSession logs it to stderr.
  out += strf("\"interval\": %llu,\n\"samples\": %llu,\n",
              static_cast<unsigned long long>(interval()),
              static_cast<unsigned long long>(total));
  out += "\"hot_blocks\": [";
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i != 0) out += ",";
    double share = total != 0 ? static_cast<double>(blocks[i].second) /
                                    static_cast<double>(total)
                              : 0.0;
    out += strf("\n  {\"rank\": %zu, \"block\": \"%s\", \"samples\": %llu, "
                "\"share\": %.6f}",
                i + 1, jesc(blocks[i].first).c_str(),
                static_cast<unsigned long long>(blocks[i].second), share);
  }
  out += "\n],\n\"heat\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const HeatRow& r = rows[i];
    if (i != 0) out += ",";
    out += strf("\n  {\"block\": \"%s\", \"stage\": \"%s\", \"target\": \"%s\", "
                "\"syscall\": \"%s\", \"flags\": \"%s\", \"samples\": %llu}",
                jesc(r.block).c_str(), jesc(r.stage).c_str(), jesc(r.target).c_str(),
                jesc(r.syscall).c_str(), prof_flags_name(r.flags).c_str(),
                static_cast<unsigned long long>(r.samples));
  }
  out += "\n]\n}\n";
  return out;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> slock(sh.mu);
    sh.tail.store(sh.head.load(std::memory_order_acquire), std::memory_order_release);
    sh.dropped.store(0, std::memory_order_relaxed);
    sh.heat.clear();
  }
  names_.clear();
  names_.push_back("-");
  archive_.clear();
  archive_dropped_ = 0;
  samples_.store(0, std::memory_order_relaxed);
}

}  // namespace crp::obs
