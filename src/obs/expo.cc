#include "obs/expo.h"

#include <cctype>
#include <cstdlib>

namespace crp::obs::expo {

namespace {

/// Prometheus metric-name alphabet: [a-zA-Z0-9_:]; everything else folds to
/// '_' (dots in our hierarchical names included).
std::string prom_name(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

const char* prom_kind(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string jesc(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20)
      out += strf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
    else
      out.push_back(c);
  }
  return out;
}

}  // namespace

std::string prometheus_text(const Snapshot& snap, const std::string& prefix) {
  std::string out;
  for (const auto& [name, v] : snap.values) {
    std::string pn = prom_name(prefix, name);
    out += strf("# TYPE %s %s\n", pn.c_str(), prom_kind(v.kind));
    switch (v.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += strf("%s %lld\n", pn.c_str(), static_cast<long long>(v.num));
        break;
      case MetricKind::kHistogram: {
        u64 cum = 0;
        for (const auto& [idx, n] : v.hist.buckets) {
          cum += n;
          // le is inclusive; our buckets are half-open [lo, hi), so the
          // inclusive upper bound of bucket idx is hi-1.
          out += strf("%s_bucket{le=\"%llu\"} %llu\n", pn.c_str(),
                      static_cast<unsigned long long>(Histogram::bucket_hi(idx) - 1),
                      static_cast<unsigned long long>(cum));
        }
        out += strf("%s_bucket{le=\"+Inf\"} %llu\n", pn.c_str(),
                    static_cast<unsigned long long>(v.hist.count));
        out += strf("%s_sum %llu\n", pn.c_str(),
                    static_cast<unsigned long long>(v.hist.sum));
        out += strf("%s_count %llu\n", pn.c_str(),
                    static_cast<unsigned long long>(v.hist.count));
        break;
      }
    }
  }
  return out;
}

std::string json(const Snapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : snap.values) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + jesc(name) + "\": ";
    switch (v.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += strf("{\"kind\":\"%s\",\"value\":%lld}", prom_kind(v.kind),
                    static_cast<long long>(v.num));
        break;
      case MetricKind::kHistogram: {
        out += strf(
            "{\"kind\":\"histogram\",\"count\":%llu,\"sum\":%llu,\"min\":%llu,"
            "\"max\":%llu,\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"buckets\":[",
            static_cast<unsigned long long>(v.hist.count),
            static_cast<unsigned long long>(v.hist.sum),
            static_cast<unsigned long long>(v.hist.min),
            static_cast<unsigned long long>(v.hist.max),
            static_cast<unsigned long long>(v.hist.quantile(0.50)),
            static_cast<unsigned long long>(v.hist.quantile(0.95)),
            static_cast<unsigned long long>(v.hist.quantile(0.99)));
        bool bf = true;
        for (const auto& [idx, n] : v.hist.buckets) {
          if (!bf) out += ",";
          bf = false;
          out += strf("[%u,%llu,%llu,%llu]", idx,
                      static_cast<unsigned long long>(Histogram::bucket_lo(idx)),
                      static_cast<unsigned long long>(Histogram::bucket_hi(idx)),
                      static_cast<unsigned long long>(n));
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n}";
  return out;
}

// --- parse_bench_json --------------------------------------------------------

double BenchDoc::get(const std::string& key, double fallback) const {
  auto it = flat.find(key);
  return it == flat.end() ? fallback : it->second;
}

namespace {

void skip_ws(const std::string& s, size_t* p) {
  while (*p < s.size() && std::isspace(static_cast<unsigned char>(s[*p]))) ++*p;
}

/// Parse a quoted string (the escapes Registry::json emits).
bool parse_str(const std::string& s, size_t* p, std::string* out) {
  skip_ws(s, p);
  if (*p >= s.size() || s[*p] != '"') return false;
  ++*p;
  out->clear();
  while (*p < s.size() && s[*p] != '"') {
    if (s[*p] == '\\' && *p + 1 < s.size()) ++*p;
    out->push_back(s[(*p)++]);
  }
  if (*p >= s.size()) return false;
  ++*p;  // closing quote
  return true;
}

bool parse_num(const std::string& s, size_t* p, double* out) {
  skip_ws(s, p);
  const char* start = s.c_str() + *p;
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start) return false;
  *p += static_cast<size_t>(end - start);
  *out = v;
  return true;
}

}  // namespace

bool parse_bench_json(const std::string& text, BenchDoc* out) {
  out->flat.clear();
  // Header fields are optional so a bare metrics object also parses.
  if (size_t bp = text.find("\"bench\":"); bp != std::string::npos) {
    size_t p = bp + 8;
    parse_str(text, &p, &out->bench);
  }
  if (size_t sp = text.find("\"schema\":"); sp != std::string::npos) {
    size_t p = sp + 9;
    double v = 0;
    if (parse_num(text, &p, &v)) out->schema = static_cast<int>(v);
  }

  size_t p = text.find("\"metrics\":");
  if (p != std::string::npos) {
    p += 10;
  } else {
    p = 0;  // treat the whole document as the metrics object
  }
  skip_ws(text, &p);
  if (p >= text.size() || text[p] != '{') return false;
  ++p;

  for (;;) {
    skip_ws(text, &p);
    if (p < text.size() && text[p] == '}') return true;  // end of metrics
    std::string key;
    if (!parse_str(text, &p, &key)) return false;
    skip_ws(text, &p);
    if (p >= text.size() || text[p] != ':') return false;
    ++p;
    skip_ws(text, &p);
    if (p < text.size() && text[p] == '{') {
      // Histogram sub-object: {"count":...,"p50":...}.
      ++p;
      for (;;) {
        skip_ws(text, &p);
        if (p < text.size() && text[p] == '}') {
          ++p;
          break;
        }
        std::string field;
        double v = 0;
        if (!parse_str(text, &p, &field)) return false;
        skip_ws(text, &p);
        if (p >= text.size() || text[p] != ':') return false;
        ++p;
        if (!parse_num(text, &p, &v)) return false;
        out->flat[key + "/" + field] = v;
        skip_ws(text, &p);
        if (p < text.size() && text[p] == ',') ++p;
      }
    } else {
      double v = 0;
      if (!parse_num(text, &p, &v)) return false;
      out->flat[key] = v;
    }
    skip_ws(text, &p);
    if (p < text.size() && text[p] == ',') ++p;
  }
}

}  // namespace crp::obs::expo
