#include "obs/bench_support.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "chaos/chaos.h"
#include "obs/journal.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/serve.h"
#include "os/abi.h"
#include "util/log.h"
#include "vm/exception.h"
#include "vm/machine.h"

namespace crp::obs {

namespace {
std::string out_dir() {
  const char* d = std::getenv("CRP_BENCH_DIR");
  if (d == nullptr || *d == '\0') return {};
  std::error_code ec;
  std::filesystem::create_directories(d, ec);  // best effort; open reports failure
  return std::string(d) + "/";
}

u64 wall_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

// At most one live BenchSession registers itself as the process-exit flush
// sink, so a bench killed by CRP_PANIC or an uncaught exception still leaves
// its BENCH_*.json behind (flush_now() is capture-free by contract).
BenchSession* g_active_session = nullptr;

void flush_active_session() {
  if (g_active_session != nullptr) g_active_session->flush();
}
}  // namespace

void preregister_core_metrics() {
  Registry& r = Registry::global();
  r.counter("vm.instr_retired");
  r.counter("vm.exceptions");
  r.counter("vm.filter_evals");
  r.counter("vm.mapped_only_av_kills");
  for (int o = 0; o <= static_cast<int>(vm::DispatchOutcome::kSwallowed); ++o)
    r.counter(std::string("vm.dispatch.") +
              vm::dispatch_outcome_name(static_cast<vm::DispatchOutcome>(o)));
  for (u64 s = 0; s < static_cast<u64>(os::Sys::kCount); ++s) {
    std::string base = std::string("kernel.sys.") + os::sys_name(static_cast<os::Sys>(s));
    r.counter(base + ".calls");
    r.counter(base + ".efault");
  }
  r.counter("kernel.copy_from_user.bytes");
  r.counter("kernel.copy_to_user.bytes");
  r.counter("kernel.copy_user.efaults");
  r.counter("kernel.api.calls");
  r.counter("kernel.api.faults");
  r.counter("sat.queries");
  r.counter("sat.conflicts");
  r.counter("sat.decisions");
  r.counter("sat.propagations");
  r.counter("sat.restarts");
  r.histogram("sat.solve_ns");
  r.counter("symex.filter.explored");
  r.counter("symex.filter.paths");
  r.counter("taint.propagated");
  r.gauge("taint.tainted_bytes_hwm");
  r.counter("oracle.scan.probes");
  r.counter("oracle.scan.mapped_hits");
  r.counter("oracle.scan.crashes");
  r.histogram("oracle.scan.probe_ns");
  r.counter("defense.av_rate.handled");
  r.counter("defense.av_rate.alarms");
  r.gauge("defense.av_rate.peak_window");
  r.counter("analysis.pool.tasks");
  r.histogram("analysis.pool.steal_ns");
  r.counter("analysis.classify.memo_hits");
  // Fault-injection and artifact-cache counters: preregistered so clean runs
  // expose them at zero and a snapshot diff shows exactly what chaos touched.
  for (u64 p = 0; p < static_cast<u64>(chaos::Point::kCount); ++p) {
    std::string name =
        std::string("chaos.injected.") + chaos::point_name(static_cast<chaos::Point>(p));
    std::replace(name.begin(), name.end(), '-', '_');
    r.counter(name);
  }
  r.counter("pipeline.cache.hits");
  r.counter("pipeline.cache.misses");
  r.counter("pipeline.cache.stores");
  r.counter("pipeline.cache.corrupt");
  r.counter("pipeline.campaign.targets_run");
  r.gauge("pipeline.campaign.targets_total");
  r.gauge("bench.instr_virtual");
  // Serving-path instruments (crpd/trace/watchdog/transport): preregistered
  // so the exposition schema carries them at zero in batch runs too, and a
  // daemon scrape sees every series from the first request on.
  r.counter("crpd.requests");
  r.counter("crpd.admission.accepted");
  r.counter("crpd.admission.rejected_quota");
  r.counter("crpd.admission.rejected_rate");
  r.counter("crpd.admission.rejected_tenants");
  r.counter("crpd.conns.opened");
  r.counter("crpd.conns.closed");
  r.gauge("crpd.queue.depth");
  r.gauge("crpd.jobs.active");
  r.counter("crpd.watchdog.step_stalls");
  r.counter("crpd.watchdog.lease_stalls");
  r.counter("crpd.trace.spans");
  r.counter("crpd.trace.dropped");
  r.counter("serve.conn.accepted");
  r.counter("serve.conn.dropped");
  r.gauge("serve.conn.out_buffer_hwm");
}

BenchSession::BenchSession(const std::string& name) : name_(name), wall_t0_ns_(wall_ns()) {
  preregister_core_metrics();
  install_flush_handlers();
  serve::maybe_start_from_env();
  if (g_active_session == nullptr) {
    g_active_session = this;
    set_session_flush_sink(&flush_active_session);
  }
}

std::string BenchSession::metrics_path() const { return out_dir() + "BENCH_" + name_ + ".json"; }

std::string BenchSession::trace_path() const {
  return out_dir() + "BENCH_" + name_ + "_trace.json";
}

void BenchSession::flush() {
  if (flushed_) return;
  flushed_ = true;
  Registry::global().gauge("bench.wall_ns").set(static_cast<i64>(wall_ns() - wall_t0_ns_));
  // Virtual-time cost metric: the retired-instruction count is deterministic,
  // so benchdiff can gate profiler overhead on it without wall-clock noise.
  Registry::global().gauge("bench.instr_virtual")
      .set(static_cast<i64>(Registry::global().counter("vm.instr_retired").value()));

  std::string body = "{\n\"bench\": \"" + name_ + "\",\n\"schema\": 1,\n\"metrics\": ";
  std::string metrics = Registry::global().json();
  // Indent the metrics object one level to keep the file pleasant to diff.
  body += metrics;
  body += "\n}\n";
  bool wrote = false;
  {
    std::ofstream f(metrics_path());
    if (f) {
      f << body;
      wrote = true;
    } else {
      CRP_WARN("obs", "cannot write %s", metrics_path().c_str());
    }
  }

  Journal& j = Journal::global();
  if (j.size() > 0) {
    std::ofstream f(trace_path());
    if (f) f << j.chrome_trace_json() << "\n";
  }

  Profiler& prof = Profiler::global();
  if (prof.enabled()) {
    std::string prof_path = out_dir() + "PROF_" + name_ + ".json";
    std::ofstream pf(prof_path);
    if (pf) pf << prof.report_json(name_, 10);
    std::string folded_path = out_dir() + "PROF_" + name_ + ".folded";
    std::ofstream ff(folded_path);
    if (ff) ff << prof.collapsed();
    std::fprintf(stderr, "[obs] profile: %s (%llu samples, %llu dropped)\n",
                 prof_path.c_str(), static_cast<unsigned long long>(prof.samples()),
                 static_cast<unsigned long long>(prof.dropped()));
  }
  if (wrote)
    std::fprintf(stderr, "[obs] metrics snapshot: %s%s\n", metrics_path().c_str(),
                 j.size() > 0 ? strf(", trace: %s", trace_path().c_str()).c_str() : "");
}

BenchSession::~BenchSession() {
  flush();
  if (g_active_session == this) {
    g_active_session = nullptr;
    set_session_flush_sink(nullptr);
  }
}

}  // namespace crp::obs
