// MVX image format — CRProbe's executable/DLL container.
//
// An Image is the on-disk artifact the *static* analyses operate on: it
// carries code/data sections, a symbol table, import/export tables, and —
// centrally for this paper — the exception directory: a scope table mapping
// guarded code ranges to filter and handler functions. This is the analog of
// the PE `.pdata`/`.xdata` unwind information the paper parses from Windows
// DLLs (64-bit Windows requires every frame to be described there, which is
// what makes static handler harvesting possible; see §IV-C of the paper).
//
// All intra-image references are section-relative offsets; the loader
// assigns a random base (ASLR) and the code itself is position-independent
// (PC-relative control flow + leapc for data addressing), so no relocations
// are needed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "util/common.h"

namespace crp::isa {

/// Filter "address" value meaning "catch everything, always run the handler".
/// Mirrors the constant-1 filter the paper found in jscript9's MUTX::Enter
/// scope table entry.
inline constexpr u64 kFilterCatchAll = 1;

enum class SectionKind : u8 { kCode = 0, kData, kRodata, kBss };

enum class Machine : u8 { kX64 = 0, kX32 = 1 };  // population tag for Table III

struct Section {
  std::string name;        // ".text", ".data", ...
  SectionKind kind = SectionKind::kCode;
  std::vector<u8> bytes;   // file contents (empty for kBss)
  u64 vsize = 0;           // virtual size (>= bytes.size(); extra is zeroed)
  bool writable = false;
  bool executable = false;
};

struct Symbol {
  std::string name;
  u32 section = 0;  // index into sections
  u64 offset = 0;   // section-relative
  u64 size = 0;
};

/// One guarded region in the exception directory. Offsets are relative to
/// the code section. `filter` is either a code offset of the filter function
/// or kFilterCatchAll. Entries may nest; dispatch is innermost-first.
struct ScopeEntry {
  u64 begin = 0;
  u64 end = 0;      // exclusive
  u64 filter = 0;   // code offset or kFilterCatchAll
  u64 handler = 0;  // code offset where execution resumes when the filter says so
};

struct Import {
  std::string module;  // e.g. "ntdll"
  std::string symbol;  // e.g. "memcpy_guarded"
};

struct Export {
  std::string name;
  u64 offset = 0;  // code-section-relative
};

/// A complete MVX image.
struct Image {
  std::string name;
  bool is_dll = false;
  Machine machine = Machine::kX64;
  u64 entry = 0;  // code-section-relative entry point (executables)
  std::vector<Section> sections;
  std::vector<Symbol> symbols;
  std::vector<Import> imports;
  std::vector<Export> exports;
  std::vector<ScopeEntry> scopes;

  /// Index of the first code section, or -1.
  int code_section() const;
  /// Find a symbol by name (nullptr if absent).
  const Symbol* find_symbol(const std::string& name) const;
  const Export* find_export(const std::string& name) const;
  /// Total virtual size when mapped contiguously section-by-section (page aligned).
  u64 mapped_size() const;
};

/// Serialize to the MVX binary container (magic "MVX1"). The container is
/// what SehExtractor and other static passes parse, modeling "given a binary
/// executable" from the paper title.
std::vector<u8> write_image(const Image& img);

/// Parse an MVX container; nullopt on malformed input (bad magic, truncated
/// tables, out-of-range offsets).
std::optional<Image> read_image(std::span<const u8> bytes);

}  // namespace crp::isa
