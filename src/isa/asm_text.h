// Textual assembler: parse a MiniVM assembly file into an MVX Image.
//
// Grammar (line oriented; ';' or '#' start comments):
//
//   .image NAME            image name (default "a.out")
//   .dll                   mark as DLL
//   .machine x64|x32
//   .entry LABEL
//   .export PUBLIC, LABEL
//   .scope BEGIN, END, FILTER, HANDLER     FILTER may be @catchall
//
//   LABEL:                 code label (also allowed inline before an instr)
//   mnemonics              one instruction per line:
//     nop | halt | ret | syscall
//     apicall IMM
//     mov RD, RS         | movi RD, IMM
//     lea RD, [RS+OFF]   | leapc RD, NAME
//     loadW RD, [RS+OFF] | storeW [RD+OFF], RS        (W in 1 2 4 8)
//     push R | pop R
//     add/sub/mul/and/or/xor RD, RS
//     addi/subi/muli/andi/ori/xori RD, IMM
//     shli/shri/sari RD, IMM | shl/shr RD, RS
//     udiv/umod RD, RS | not R | neg R
//     cmp RD, RS | cmpi RD, IMM | test RD, RS | testi RD, IMM
//     jmp LABEL | jmpr R | call LABEL | callr R
//     callimp MODULE!SYMBOL
//     jeq/jne/jlt/jge/jle/jgt/jult/juge/jule/jugt LABEL
//
//   .data                  switch to data directives:
//     NAME: .u64 IMM
//     NAME: .asciz "text"          (supports \n \t \0 \\ \")
//     NAME: .zero SIZE
//     NAME: .bytes HH HH ...
//
// Numbers: decimal or 0x hex, optional leading '-'.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "isa/image.h"

namespace crp::isa {

/// Assemble `source`; on failure returns nullopt and, if `error` is given,
/// a "line N: message" diagnostic.
std::optional<Image> assemble_text(std::string_view source, std::string* error = nullptr);

}  // namespace crp::isa
