#include "isa/isa.h"

#include <cstring>

namespace crp::isa {

namespace {

// Instruction word layout (little-endian):
//   [0]      opcode
//   [1]      ra
//   [2]      rb
//   [3]      w / cond
//   [4..11]  imm (i64)
//   [12..15] reserved, must encode as zero (ignored on decode)
constexpr size_t kOpOff = 0, kRaOff = 1, kRbOff = 2, kWOff = 3, kImmOff = 4;

bool op_uses_width(Op op) { return op == Op::kLoad || op == Op::kStore; }

}  // namespace

void encode(const Instr& ins, std::span<u8> out) {
  CRP_CHECK(out.size() >= kInstrBytes);
  std::memset(out.data(), 0, kInstrBytes);
  out[kOpOff] = static_cast<u8>(ins.op);
  out[kRaOff] = static_cast<u8>(ins.ra);
  out[kRbOff] = static_cast<u8>(ins.rb);
  out[kWOff] = ins.w;
  u64 imm = static_cast<u64>(ins.imm);
  for (int i = 0; i < 8; ++i) out[kImmOff + i] = static_cast<u8>(imm >> (8 * i));
}

std::array<u8, kInstrBytes> encode(const Instr& ins) {
  std::array<u8, kInstrBytes> out{};
  encode(ins, out);
  return out;
}

std::optional<Instr> decode(std::span<const u8> bytes) {
  if (bytes.size() < kInstrBytes) return std::nullopt;
  Instr ins;
  u8 op = bytes[kOpOff];
  if (op >= static_cast<u8>(Op::kCount)) return std::nullopt;
  ins.op = static_cast<Op>(op);
  u8 ra = bytes[kRaOff], rb = bytes[kRbOff];
  if (ra >= kNumRegs || rb >= kNumRegs) return std::nullopt;
  ins.ra = static_cast<Reg>(ra);
  ins.rb = static_cast<Reg>(rb);
  ins.w = bytes[kWOff];
  if (op_uses_width(ins.op) && !valid_width(ins.w)) return std::nullopt;
  if (ins.op == Op::kJcc && ins.w >= static_cast<u8>(Cond::kCount)) return std::nullopt;
  u64 imm = 0;
  for (int i = 0; i < 8; ++i) imm |= static_cast<u64>(bytes[kImmOff + i]) << (8 * i);
  ins.imm = static_cast<i64>(imm);
  return ins;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kMovRR: return "mov";
    case Op::kMovRI: return "movi";
    case Op::kLea: return "lea";
    case Op::kLeaPc: return "leapc";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kAddRR: return "add";
    case Op::kAddRI: return "addi";
    case Op::kSubRR: return "sub";
    case Op::kSubRI: return "subi";
    case Op::kMulRR: return "mul";
    case Op::kMulRI: return "muli";
    case Op::kDivRR: return "udiv";
    case Op::kModRR: return "umod";
    case Op::kAndRR: return "and";
    case Op::kAndRI: return "andi";
    case Op::kOrRR: return "or";
    case Op::kOrRI: return "ori";
    case Op::kXorRR: return "xor";
    case Op::kXorRI: return "xori";
    case Op::kShlRI: return "shli";
    case Op::kShrRI: return "shri";
    case Op::kSarRI: return "sari";
    case Op::kShlRR: return "shl";
    case Op::kShrRR: return "shr";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kCmpRR: return "cmp";
    case Op::kCmpRI: return "cmpi";
    case Op::kTestRR: return "test";
    case Op::kTestRI: return "testi";
    case Op::kJmp: return "jmp";
    case Op::kJmpR: return "jmpr";
    case Op::kJcc: return "jcc";
    case Op::kCall: return "call";
    case Op::kCallR: return "callr";
    case Op::kCallImp: return "callimp";
    case Op::kRet: return "ret";
    case Op::kSyscall: return "syscall";
    case Op::kApiCall: return "apicall";
    case Op::kCount: break;
  }
  return "?";
}

const char* reg_name(Reg r) {
  static const char* names[kNumRegs] = {"r0", "r1", "r2",  "r3",  "r4", "r5", "r6", "r7",
                                        "r8", "r9", "r10", "r11", "tr", "fp", "sp", "r15"};
  u8 i = static_cast<u8>(r);
  return i < kNumRegs ? names[i] : "?";
}

const char* cond_name(Cond c) {
  switch (c) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kGe: return "ge";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kUlt: return "ult";
    case Cond::kUge: return "uge";
    case Cond::kUle: return "ule";
    case Cond::kUgt: return "ugt";
    case Cond::kCount: break;
  }
  return "?";
}

std::string disasm(const Instr& ins, u64 pc) {
  u64 next = pc + kInstrBytes;
  auto rel = [&](i64 off) {
    return strf("0x%llx", static_cast<unsigned long long>(next + static_cast<u64>(off)));
  };
  const char* a = reg_name(ins.ra);
  const char* b = reg_name(ins.rb);
  long long imm = static_cast<long long>(ins.imm);
  switch (ins.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
    case Op::kSyscall:
      return op_name(ins.op);
    case Op::kApiCall:
      return strf("apicall #%lld", imm);
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kModRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kShlRR:
    case Op::kShrRR:
    case Op::kCmpRR:
    case Op::kTestRR:
      return strf("%s %s, %s", op_name(ins.op), a, b);
    case Op::kMovRI:
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kMulRI:
    case Op::kAndRI:
    case Op::kOrRI:
    case Op::kXorRI:
    case Op::kShlRI:
    case Op::kShrRI:
    case Op::kSarRI:
    case Op::kCmpRI:
    case Op::kTestRI:
      return strf("%s %s, %lld", op_name(ins.op), a, imm);
    case Op::kLea:
      return strf("lea %s, [%s%+lld]", a, b, imm);
    case Op::kLeaPc:
      return strf("leapc %s, %s", a, rel(ins.imm).c_str());
    case Op::kLoad:
      return strf("load%u %s, [%s%+lld]", ins.w, a, b, imm);
    case Op::kStore:
      return strf("store%u [%s%+lld], %s", ins.w, a, imm, b);
    case Op::kPush:
      return strf("push %s", a);
    case Op::kPop:
      return strf("pop %s", a);
    case Op::kNot:
    case Op::kNeg:
      return strf("%s %s", op_name(ins.op), a);
    case Op::kJmp:
      return strf("jmp %s", rel(ins.imm).c_str());
    case Op::kJmpR:
      return strf("jmpr %s", a);
    case Op::kJcc:
      return strf("j%s %s", cond_name(static_cast<Cond>(ins.w)), rel(ins.imm).c_str());
    case Op::kCall:
      return strf("call %s", rel(ins.imm).c_str());
    case Op::kCallR:
      return strf("callr %s", a);
    case Op::kCallImp:
      return strf("callimp #%lld", imm);
    case Op::kCount:
      break;
  }
  return "?";
}

bool reads_memory(Op op) {
  return op == Op::kLoad || op == Op::kPop || op == Op::kRet;
}

bool writes_memory(Op op) {
  return op == Op::kStore || op == Op::kPush || op == Op::kCall || op == Op::kCallR ||
         op == Op::kCallImp;
}

bool is_control_flow(Op op) {
  switch (op) {
    case Op::kJmp:
    case Op::kJmpR:
    case Op::kJcc:
    case Op::kCall:
    case Op::kCallR:
    case Op::kCallImp:
    case Op::kRet:
      return true;
    default:
      return false;
  }
}

}  // namespace crp::isa
