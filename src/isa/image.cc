#include "isa/image.h"

#include <cstring>

namespace crp::isa {

namespace {

constexpr u32 kMagic = 0x3158564d;  // "MVX1"
constexpr u64 kPage = 4096;

// --- serialization primitives -------------------------------------------

void put_u8(std::vector<u8>& out, u8 v) { out.push_back(v); }
void put_u32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put_str(std::vector<u8>& out, const std::string& s) {
  put_u32(out, static_cast<u32>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}
void put_bytes(std::vector<u8>& out, const std::vector<u8>& b) {
  put_u64(out, b.size());
  out.insert(out.end(), b.begin(), b.end());
}

struct Reader {
  std::span<const u8> in;
  size_t pos = 0;
  bool ok = true;

  bool need(size_t n) {
    if (!ok || in.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  u8 get_u8() {
    if (!need(1)) return 0;
    return in[pos++];
  }
  u32 get_u32() {
    if (!need(4)) return 0;
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(in[pos++]) << (8 * i);
    return v;
  }
  u64 get_u64() {
    if (!need(8)) return 0;
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in[pos++]) << (8 * i);
    return v;
  }
  std::string get_str() {
    u32 n = get_u32();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(in.data() + pos), n);
    pos += n;
    return s;
  }
  std::vector<u8> get_bytes() {
    u64 n = get_u64();
    if (!need(n)) return {};
    std::vector<u8> b(in.begin() + static_cast<ptrdiff_t>(pos),
                      in.begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return b;
  }
};

}  // namespace

int Image::code_section() const {
  for (size_t i = 0; i < sections.size(); ++i)
    if (sections[i].kind == SectionKind::kCode) return static_cast<int>(i);
  return -1;
}

const Symbol* Image::find_symbol(const std::string& name) const {
  for (const auto& s : symbols)
    if (s.name == name) return &s;
  return nullptr;
}

const Export* Image::find_export(const std::string& name) const {
  for (const auto& e : exports)
    if (e.name == name) return &e;
  return nullptr;
}

u64 Image::mapped_size() const {
  u64 total = 0;
  for (const auto& s : sections) {
    u64 vs = std::max<u64>(s.vsize, s.bytes.size());
    total += align_up(std::max<u64>(vs, 1), kPage);
  }
  return total;
}

std::vector<u8> write_image(const Image& img) {
  std::vector<u8> out;
  put_u32(out, kMagic);
  put_str(out, img.name);
  put_u8(out, img.is_dll ? 1 : 0);
  put_u8(out, static_cast<u8>(img.machine));
  put_u64(out, img.entry);

  put_u32(out, static_cast<u32>(img.sections.size()));
  for (const auto& s : img.sections) {
    put_str(out, s.name);
    put_u8(out, static_cast<u8>(s.kind));
    put_u8(out, s.writable ? 1 : 0);
    put_u8(out, s.executable ? 1 : 0);
    put_u64(out, s.vsize);
    put_bytes(out, s.bytes);
  }

  put_u32(out, static_cast<u32>(img.symbols.size()));
  for (const auto& s : img.symbols) {
    put_str(out, s.name);
    put_u32(out, s.section);
    put_u64(out, s.offset);
    put_u64(out, s.size);
  }

  put_u32(out, static_cast<u32>(img.imports.size()));
  for (const auto& i : img.imports) {
    put_str(out, i.module);
    put_str(out, i.symbol);
  }

  put_u32(out, static_cast<u32>(img.exports.size()));
  for (const auto& e : img.exports) {
    put_str(out, e.name);
    put_u64(out, e.offset);
  }

  put_u32(out, static_cast<u32>(img.scopes.size()));
  for (const auto& sc : img.scopes) {
    put_u64(out, sc.begin);
    put_u64(out, sc.end);
    put_u64(out, sc.filter);
    put_u64(out, sc.handler);
  }
  return out;
}

std::optional<Image> read_image(std::span<const u8> bytes) {
  Reader r{bytes};
  if (r.get_u32() != kMagic) return std::nullopt;
  Image img;
  img.name = r.get_str();
  img.is_dll = r.get_u8() != 0;
  u8 machine = r.get_u8();
  if (machine > static_cast<u8>(Machine::kX32)) return std::nullopt;
  img.machine = static_cast<Machine>(machine);
  img.entry = r.get_u64();

  u32 nsec = r.get_u32();
  if (nsec > 64) return std::nullopt;
  for (u32 i = 0; i < nsec && r.ok; ++i) {
    Section s;
    s.name = r.get_str();
    u8 kind = r.get_u8();
    if (kind > static_cast<u8>(SectionKind::kBss)) return std::nullopt;
    s.kind = static_cast<SectionKind>(kind);
    s.writable = r.get_u8() != 0;
    s.executable = r.get_u8() != 0;
    s.vsize = r.get_u64();
    s.bytes = r.get_bytes();
    img.sections.push_back(std::move(s));
  }

  u32 nsym = r.get_u32();
  if (nsym > 1u << 20) return std::nullopt;
  for (u32 i = 0; i < nsym && r.ok; ++i) {
    Symbol s;
    s.name = r.get_str();
    s.section = r.get_u32();
    s.offset = r.get_u64();
    s.size = r.get_u64();
    if (r.ok && s.section >= img.sections.size()) return std::nullopt;
    img.symbols.push_back(std::move(s));
  }

  u32 nimp = r.get_u32();
  if (nimp > 1u << 16) return std::nullopt;
  for (u32 i = 0; i < nimp && r.ok; ++i) {
    Import im;
    im.module = r.get_str();
    im.symbol = r.get_str();
    img.imports.push_back(std::move(im));
  }

  u32 nexp = r.get_u32();
  if (nexp > 1u << 20) return std::nullopt;
  for (u32 i = 0; i < nexp && r.ok; ++i) {
    Export e;
    e.name = r.get_str();
    e.offset = r.get_u64();
    img.exports.push_back(std::move(e));
  }

  u32 nscope = r.get_u32();
  if (nscope > 1u << 20) return std::nullopt;
  for (u32 i = 0; i < nscope && r.ok; ++i) {
    ScopeEntry sc;
    sc.begin = r.get_u64();
    sc.end = r.get_u64();
    sc.filter = r.get_u64();
    sc.handler = r.get_u64();
    if (r.ok && sc.begin >= sc.end) return std::nullopt;
    img.scopes.push_back(sc);
  }

  if (!r.ok) return std::nullopt;
  // Validate code-relative references.
  int cs = img.code_section();
  u64 code_size = cs >= 0 ? std::max<u64>(img.sections[cs].vsize, img.sections[cs].bytes.size()) : 0;
  if (!img.is_dll && img.entry >= std::max<u64>(code_size, 1)) return std::nullopt;
  for (const auto& sc : img.scopes) {
    if (sc.end > code_size || sc.handler >= code_size) return std::nullopt;
    if (sc.filter != kFilterCatchAll && sc.filter >= code_size) return std::nullopt;
  }
  return img;
}

}  // namespace crp::isa
