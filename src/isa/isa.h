// MiniVM instruction set architecture.
//
// CRProbe analyzes binaries for the MiniVM, a 64-bit load/store machine with
// a fixed 16-byte instruction word. The fixed width keeps the decoder,
// disassembler and symbolic executor exact (no disassembly ambiguity), while
// the ISA is rich enough to express real program idioms: PC-relative
// addressing (position-independent images under ASLR), an import table
// (PLT/IAT analog), SYSCALL (Linux personality) and APICALL (Windows
// personality) traps, and SEH scope tables in the image format.
//
// Register convention:
//   R0        return value / syscall number
//   R1..R6    arguments
//   R7..R11   caller-saved temporaries
//   TR (R12)  thread register (TEB/TLS analog)
//   FP (R13)  frame pointer
//   SP (R14)  stack pointer (full-descending)
//   R15       scratch
//
// Flags (ZF, SF, CF, OF) are set ONLY by CMP and TEST; ALU ops leave them
// untouched. This deliberate simplification keeps taint and symbolic
// semantics compact without losing expressiveness.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>

#include "util/common.h"

namespace crp::isa {

inline constexpr size_t kInstrBytes = 16;
inline constexpr int kNumRegs = 16;

enum class Reg : u8 {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11,
  TR = 12,  // thread register
  FP = 13,  // frame pointer
  SP = 14,  // stack pointer
  R15 = 15,
};

enum class Cond : u8 {
  kEq = 0,   // ZF
  kNe,       // !ZF
  kLt,       // SF != OF      (signed <)
  kGe,       // SF == OF      (signed >=)
  kLe,       // ZF || SF!=OF  (signed <=)
  kGt,       // !ZF && SF==OF (signed >)
  kUlt,      // CF            (unsigned <)
  kUge,      // !CF
  kUle,      // CF || ZF
  kUgt,      // !CF && !ZF
  kCount,
};

enum class Op : u8 {
  kNop = 0,
  kHalt,       // stop the thread (normal exit path uses SYSCALL exit instead)
  kMovRR,      // ra = rb
  kMovRI,      // ra = imm
  kLea,        // ra = rb + imm
  kLeaPc,      // ra = pc_next + imm  (PC-relative address materialization)
  kLoad,       // ra = zext(mem[rb + imm], w)   w in {1,2,4,8}
  kStore,      // mem[ra + imm] = low w bytes of rb
  kPush,       // sp -= 8; mem[sp] = ra
  kPop,        // ra = mem[sp]; sp += 8
  kAddRR, kAddRI,
  kSubRR, kSubRI,
  kMulRR, kMulRI,
  kDivRR,      // unsigned divide; rb == 0 -> DivideByZero fault
  kModRR,
  kAndRR, kAndRI,
  kOrRR, kOrRI,
  kXorRR, kXorRI,
  kShlRI, kShrRI, kSarRI,
  kShlRR, kShrRR,
  kNot,        // ra = ~ra
  kNeg,        // ra = -ra
  kCmpRR, kCmpRI,    // flags = ra - operand
  kTestRR, kTestRI,  // flags = ra & operand (ZF, SF only; CF=OF=0)
  kJmp,        // pc = pc_next + imm
  kJmpR,       // pc = ra
  kJcc,        // if cond(w) pc = pc_next + imm
  kCall,       // push pc_next; pc = pc_next + imm
  kCallR,      // push pc_next; pc = ra
  kCallImp,    // push pc_next; pc = resolve(import[imm])
  kRet,        // pc = pop()
  kSyscall,    // Linux personality trap: nr in R0, args R1..R6, ret in R0
  kApiCall,    // Windows personality trap: API id = imm, args R1..R6, ret R0
  kCount,
};

/// One decoded instruction.
struct Instr {
  Op op = Op::kNop;
  Reg ra = Reg::R0;
  Reg rb = Reg::R0;
  u8 w = 0;      // memory width (1/2/4/8) for kLoad/kStore, Cond for kJcc, else 0
  i64 imm = 0;

  bool operator==(const Instr&) const = default;
};

/// True for widths the ISA accepts on loads/stores.
constexpr bool valid_width(u8 w) { return w == 1 || w == 2 || w == 4 || w == 8; }

/// Encode `ins` into exactly kInstrBytes at `out` (out.size() must be >= 16).
void encode(const Instr& ins, std::span<u8> out);

/// Encode into a fresh 16-byte array.
std::array<u8, kInstrBytes> encode(const Instr& ins);

/// Decode 16 bytes. Returns nullopt for malformed words (bad opcode, bad
/// register index, bad width) — the VM raises InvalidOpcode in that case.
std::optional<Instr> decode(std::span<const u8> bytes);

const char* op_name(Op op);
const char* reg_name(Reg r);
const char* cond_name(Cond c);

/// One-line human-readable disassembly; `pc` is used to resolve PC-relative
/// targets into absolute addresses in the text.
std::string disasm(const Instr& ins, u64 pc = 0);

/// True for ops that read memory / write memory (used by taint & tracing).
bool reads_memory(Op op);
bool writes_memory(Op op);
/// True for control-flow ops (jumps, calls, ret).
bool is_control_flow(Op op);

}  // namespace crp::isa
