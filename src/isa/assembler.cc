#include "isa/assembler.h"

namespace crp::isa {

namespace {
constexpr u64 kPage = 4096;
}

Assembler::Assembler(std::string image_name) : name_(std::move(image_name)) {}

void Assembler::emit(const Instr& ins) {
  auto bytes = encode(ins);
  code_.insert(code_.end(), bytes.begin(), bytes.end());
}

void Assembler::label(const std::string& name) {
  CRP_CHECK(!defs_.contains(name));
  defs_[name] = Loc{0, here()};
}

void Assembler::nop() { emit({Op::kNop}); }
void Assembler::halt() { emit({Op::kHalt}); }
void Assembler::mov(Reg a, Reg b) { emit({Op::kMovRR, a, b}); }
void Assembler::movi(Reg a, i64 imm) { emit({Op::kMovRI, a, Reg::R0, 0, imm}); }
void Assembler::lea(Reg a, Reg b, i64 off) { emit({Op::kLea, a, b, 0, off}); }

void Assembler::lea_pc(Reg a, const std::string& name) {
  fixups_.push_back({here(), name, /*pc_rel_data=*/true});
  emit({Op::kLeaPc, a, Reg::R0, 0, 0});
}

void Assembler::load(Reg a, Reg b, u8 w, i64 off) {
  CRP_CHECK(valid_width(w));
  emit({Op::kLoad, a, b, w, off});
}
void Assembler::store(Reg a, i64 off, Reg b, u8 w) {
  CRP_CHECK(valid_width(w));
  emit({Op::kStore, a, b, w, off});
}
void Assembler::push(Reg a) { emit({Op::kPush, a}); }
void Assembler::pop(Reg a) { emit({Op::kPop, a}); }
void Assembler::add(Reg a, Reg b) { emit({Op::kAddRR, a, b}); }
void Assembler::addi(Reg a, i64 imm) { emit({Op::kAddRI, a, Reg::R0, 0, imm}); }
void Assembler::sub(Reg a, Reg b) { emit({Op::kSubRR, a, b}); }
void Assembler::subi(Reg a, i64 imm) { emit({Op::kSubRI, a, Reg::R0, 0, imm}); }
void Assembler::mul(Reg a, Reg b) { emit({Op::kMulRR, a, b}); }
void Assembler::muli(Reg a, i64 imm) { emit({Op::kMulRI, a, Reg::R0, 0, imm}); }
void Assembler::udiv(Reg a, Reg b) { emit({Op::kDivRR, a, b}); }
void Assembler::umod(Reg a, Reg b) { emit({Op::kModRR, a, b}); }
void Assembler::and_(Reg a, Reg b) { emit({Op::kAndRR, a, b}); }
void Assembler::andi(Reg a, i64 imm) { emit({Op::kAndRI, a, Reg::R0, 0, imm}); }
void Assembler::or_(Reg a, Reg b) { emit({Op::kOrRR, a, b}); }
void Assembler::ori(Reg a, i64 imm) { emit({Op::kOrRI, a, Reg::R0, 0, imm}); }
void Assembler::xor_(Reg a, Reg b) { emit({Op::kXorRR, a, b}); }
void Assembler::xori(Reg a, i64 imm) { emit({Op::kXorRI, a, Reg::R0, 0, imm}); }
void Assembler::shli(Reg a, u8 amount) { emit({Op::kShlRI, a, Reg::R0, 0, amount}); }
void Assembler::shri(Reg a, u8 amount) { emit({Op::kShrRI, a, Reg::R0, 0, amount}); }
void Assembler::sari(Reg a, u8 amount) { emit({Op::kSarRI, a, Reg::R0, 0, amount}); }
void Assembler::not_(Reg a) { emit({Op::kNot, a}); }
void Assembler::neg(Reg a) { emit({Op::kNeg, a}); }
void Assembler::cmp(Reg a, Reg b) { emit({Op::kCmpRR, a, b}); }
void Assembler::cmpi(Reg a, i64 imm) { emit({Op::kCmpRI, a, Reg::R0, 0, imm}); }
void Assembler::test(Reg a, Reg b) { emit({Op::kTestRR, a, b}); }
void Assembler::testi(Reg a, i64 imm) { emit({Op::kTestRI, a, Reg::R0, 0, imm}); }

void Assembler::jmp(const std::string& target) {
  fixups_.push_back({here(), target, false});
  emit({Op::kJmp});
}
void Assembler::jmp_reg(Reg a) { emit({Op::kJmpR, a}); }
void Assembler::jcc(Cond c, const std::string& target) {
  fixups_.push_back({here(), target, false});
  emit({Op::kJcc, Reg::R0, Reg::R0, static_cast<u8>(c), 0});
}
void Assembler::call(const std::string& target) {
  fixups_.push_back({here(), target, false});
  emit({Op::kCall});
}
void Assembler::call_reg(Reg a) { emit({Op::kCallR, a}); }

void Assembler::call_import(const std::string& module, const std::string& symbol) {
  u32 idx = import_index(module, symbol);
  emit({Op::kCallImp, Reg::R0, Reg::R0, 0, static_cast<i64>(idx)});
}

void Assembler::ret() { emit({Op::kRet}); }
void Assembler::syscall() { emit({Op::kSyscall}); }
void Assembler::apicall(i64 api_id) { emit({Op::kApiCall, Reg::R0, Reg::R0, 0, api_id}); }

void Assembler::raw(const Instr& ins) { emit(ins); }

u32 Assembler::import_index(const std::string& module, const std::string& symbol) {
  for (size_t i = 0; i < imports_.size(); ++i)
    if (imports_[i].module == module && imports_[i].symbol == symbol)
      return static_cast<u32>(i);
  imports_.push_back({module, symbol});
  return static_cast<u32>(imports_.size() - 1);
}

u64 Assembler::define_data(const std::string& name, std::span<const u8> bytes) {
  CRP_CHECK(!defs_.contains(name));
  // 8-byte align every datum so u64 loads on symbols are natural.
  while (data_.size() % 8 != 0) data_.push_back(0);
  u64 off = data_.size();
  defs_[name] = Loc{1, off};
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  return off;
}

u64 Assembler::data_u64(const std::string& name, u64 value) {
  u8 raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<u8>(value >> (8 * i));
  return define_data(name, raw);
}

u64 Assembler::data_bytes(const std::string& name, std::span<const u8> bytes) {
  return define_data(name, bytes);
}

u64 Assembler::data_zero(const std::string& name, u64 size) {
  std::vector<u8> z(size, 0);
  return define_data(name, z);
}

u64 Assembler::data_cstr(const std::string& name, const std::string& text) {
  std::vector<u8> b(text.begin(), text.end());
  b.push_back(0);
  return define_data(name, b);
}

void Assembler::set_entry(const std::string& label) { entry_label_ = label; }

void Assembler::export_fn(const std::string& name, const std::string& label) {
  // Resolved at build time; store the label in the offset via a scope-style
  // deferred reference. Reuse exports_ with a sentinel and patch in build().
  exports_.push_back({name + "\x01" + label, 0});
}

void Assembler::scope(const std::string& begin_label, const std::string& end_label,
                      const std::string& filter_label, const std::string& handler_label) {
  scope_refs_.push_back({begin_label, end_label, filter_label, handler_label});
}

Image Assembler::build() {
  auto resolve = [&](const std::string& name) -> Loc {
    auto it = defs_.find(name);
    if (it == defs_.end()) CRP_PANIC("undefined label/symbol: " + name);
    return it->second;
  };

  // Runtime layout: .text at relative 0, .data page-aligned after it.
  u64 data_base = align_up(std::max<u64>(code_.size(), 1), kPage);
  auto runtime_off = [&](const Loc& l) { return l.section == 0 ? l.offset : data_base + l.offset; };

  for (const auto& f : fixups_) {
    Loc loc = resolve(f.name);
    if (!f.pc_rel_data) CRP_CHECK(loc.section == 0);
    i64 rel = static_cast<i64>(runtime_off(loc)) -
              static_cast<i64>(f.code_off + kInstrBytes);
    u64 imm = static_cast<u64>(rel);
    for (int i = 0; i < 8; ++i)
      code_[f.code_off + 4 + static_cast<u64>(i)] = static_cast<u8>(imm >> (8 * i));
  }

  Image img;
  img.name = name_;
  img.is_dll = is_dll_;
  img.machine = machine_;

  Section text;
  text.name = ".text";
  text.kind = SectionKind::kCode;
  text.bytes = code_;
  text.vsize = code_.size();
  text.executable = true;
  img.sections.push_back(std::move(text));

  Section data;
  data.name = ".data";
  data.kind = SectionKind::kData;
  data.bytes = data_;
  data.vsize = data_.size();
  data.writable = true;
  img.sections.push_back(std::move(data));

  for (const auto& [name, loc] : defs_)
    img.symbols.push_back({name, loc.section, loc.offset, 0});

  img.imports = imports_;

  for (const auto& e : exports_) {
    auto sep = e.name.find('\x01');
    CRP_CHECK(sep != std::string::npos);
    std::string pub = e.name.substr(0, sep);
    Loc loc = resolve(e.name.substr(sep + 1));
    CRP_CHECK(loc.section == 0);
    img.exports.push_back({pub, loc.offset});
  }

  for (const auto& s : scope_refs_) {
    ScopeEntry sc;
    sc.begin = resolve(s.begin).offset;
    sc.end = resolve(s.end).offset;
    sc.filter = s.filter.empty() ? kFilterCatchAll : resolve(s.filter).offset;
    sc.handler = resolve(s.handler).offset;
    CRP_CHECK(sc.begin < sc.end);
    img.scopes.push_back(sc);
  }

  if (!entry_label_.empty()) {
    Loc loc = resolve(entry_label_);
    CRP_CHECK(loc.section == 0);
    img.entry = loc.offset;
  }
  return img;
}

}  // namespace crp::isa
