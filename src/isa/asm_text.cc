#include "isa/asm_text.h"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "isa/assembler.h"

namespace crp::isa {

namespace {

struct Parser {
  Assembler a;
  std::string err;
  int line_no = 0;
  bool in_data = false;

  explicit Parser() : a("a.out") {}

  bool fail(const std::string& msg) {
    if (err.empty()) err = strf("line %d: %s", line_no, msg.c_str());
    return false;
  }

  // --- token helpers ---------------------------------------------------------

  static std::string strip(std::string s) {
    auto c = s.find(';');
    if (c != std::string::npos) s.resize(c);
    c = s.find('#');
    if (c != std::string::npos) s.resize(c);
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  /// Split "op rest" then rest by commas, trimming.
  static std::vector<std::string> operands(const std::string& rest) {
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false;
    for (char ch : rest) {
      if (ch == '"') in_str = !in_str;
      if (ch == ',' && !in_str) {
        out.push_back(strip(cur));
        cur.clear();
      } else {
        cur += ch;
      }
    }
    if (!strip(cur).empty() || !out.empty()) out.push_back(strip(cur));
    return out;
  }

  bool parse_reg(const std::string& t, Reg* out) {
    static const std::map<std::string, Reg> names = {
        {"r0", Reg::R0}, {"r1", Reg::R1}, {"r2", Reg::R2},   {"r3", Reg::R3},
        {"r4", Reg::R4}, {"r5", Reg::R5}, {"r6", Reg::R6},   {"r7", Reg::R7},
        {"r8", Reg::R8}, {"r9", Reg::R9}, {"r10", Reg::R10}, {"r11", Reg::R11},
        {"tr", Reg::TR}, {"fp", Reg::FP}, {"sp", Reg::SP},   {"r12", Reg::TR},
        {"r13", Reg::FP}, {"r14", Reg::SP}, {"r15", Reg::R15}};
    auto it = names.find(t);
    if (it == names.end()) return fail("bad register '" + t + "'");
    *out = it->second;
    return true;
  }

  bool parse_imm(const std::string& t, i64* out) {
    if (t.empty()) return fail("missing immediate");
    try {
      size_t pos = 0;
      *out = static_cast<i64>(std::stoll(t, &pos, 0));
      if (pos != t.size()) return fail("bad immediate '" + t + "'");
    } catch (const std::invalid_argument&) {  // not a number at all
      return fail("bad immediate '" + t + "'");
    } catch (const std::out_of_range&) {  // doesn't fit in long long
      return fail("bad immediate '" + t + "'");
    }
    return true;
  }

  /// "[reg+off]" / "[reg-off]" / "[reg]".
  bool parse_mem(const std::string& t, Reg* reg, i64* off) {
    if (t.size() < 3 || t.front() != '[' || t.back() != ']')
      return fail("bad memory operand '" + t + "'");
    std::string body = t.substr(1, t.size() - 2);
    size_t sep = body.find_first_of("+-", 1);
    std::string rpart = strip(sep == std::string::npos ? body : body.substr(0, sep));
    *off = 0;
    if (sep != std::string::npos) {
      std::string opart = strip(body.substr(sep));  // includes the sign
      if (!parse_imm(opart, off)) return false;
    }
    return parse_reg(rpart, reg);
  }

  bool is_ident(const std::string& t) {
    if (t.empty() || (!std::isalpha(static_cast<u8>(t[0])) && t[0] != '_')) return false;
    for (char ch : t)
      if (!std::isalnum(static_cast<u8>(ch)) && ch != '_') return false;
    return true;
  }

  // --- directives --------------------------------------------------------------

  bool directive(const std::string& op, const std::string& rest) {
    auto ops = operands(rest);
    if (op == ".image") {
      if (ops.size() != 1) return fail(".image NAME");
      a = Assembler(ops[0]);  // restart with the right name (must be first)
      return true;
    }
    if (op == ".dll") {
      a.set_dll(true);
      return true;
    }
    if (op == ".machine") {
      if (ops.size() != 1 || (ops[0] != "x64" && ops[0] != "x32"))
        return fail(".machine x64|x32");
      a.set_machine(ops[0] == "x64" ? Machine::kX64 : Machine::kX32);
      return true;
    }
    if (op == ".entry") {
      if (ops.size() != 1) return fail(".entry LABEL");
      a.set_entry(ops[0]);
      return true;
    }
    if (op == ".export") {
      if (ops.size() != 2) return fail(".export PUBLIC, LABEL");
      a.export_fn(ops[0], ops[1]);
      return true;
    }
    if (op == ".scope") {
      if (ops.size() != 4) return fail(".scope BEGIN, END, FILTER, HANDLER");
      a.scope(ops[0], ops[1], ops[2] == "@catchall" ? "" : ops[2], ops[3]);
      return true;
    }
    if (op == ".data") {
      in_data = true;
      return true;
    }
    return fail("unknown directive '" + op + "'");
  }

  bool data_directive(const std::string& name, const std::string& op,
                      const std::string& rest) {
    if (op == ".u64") {
      i64 v = 0;
      if (!parse_imm(strip(rest), &v)) return false;
      a.data_u64(name, static_cast<u64>(v));
      return true;
    }
    if (op == ".zero") {
      i64 v = 0;
      if (!parse_imm(strip(rest), &v) ) return false;
      if (v <= 0) return fail(".zero needs a positive size");
      a.data_zero(name, static_cast<u64>(v));
      return true;
    }
    if (op == ".asciz") {
      std::string t = strip(rest);
      if (t.size() < 2 || t.front() != '"' || t.back() != '"')
        return fail(".asciz needs a quoted string");
      std::string out;
      for (size_t i = 1; i + 1 < t.size(); ++i) {
        char ch = t[i];
        if (ch == '\\' && i + 2 < t.size()) {
          char e = t[++i];
          switch (e) {
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case '0': out += '\0'; break;
            case '\\': out += '\\'; break;
            case '"': out += '"'; break;
            default: return fail(strf("bad escape \\%c", e));
          }
        } else {
          out += ch;
        }
      }
      a.data_cstr(name, out);
      return true;
    }
    if (op == ".bytes") {
      std::vector<u8> bytes;
      std::istringstream iss{rest};
      std::string tok;
      while (iss >> tok) {
        i64 v = 0;
        if (!parse_imm("0x" + tok, &v) || v < 0 || v > 0xff)
          return fail("bad byte '" + tok + "'");
        bytes.push_back(static_cast<u8>(v));
      }
      if (bytes.empty()) return fail(".bytes needs at least one byte");
      a.data_bytes(name, bytes);
      return true;
    }
    return fail("unknown data directive '" + op + "'");
  }

  // --- instructions --------------------------------------------------------------

  bool instr(const std::string& op, const std::string& rest) {
    auto ops = operands(rest);
    auto need = [&](size_t n) {
      if (ops.size() != n) return fail(strf("'%s' expects %zu operand(s)", op.c_str(), n));
      return true;
    };
    Reg ra{}, rb{};
    i64 imm = 0;

    if (op == "nop") { a.nop(); return true; }
    if (op == "halt") { a.halt(); return true; }
    if (op == "ret") { a.ret(); return true; }
    if (op == "syscall") { a.syscall(); return true; }
    if (op == "apicall") {
      if (!need(1) || !parse_imm(ops[0], &imm)) return false;
      a.apicall(imm);
      return true;
    }
    if (op == "mov") {
      if (!need(2) || !parse_reg(ops[0], &ra) || !parse_reg(ops[1], &rb)) return false;
      a.mov(ra, rb);
      return true;
    }
    if (op == "movi") {
      if (!need(2) || !parse_reg(ops[0], &ra) || !parse_imm(ops[1], &imm)) return false;
      a.movi(ra, imm);
      return true;
    }
    if (op == "lea") {
      if (!need(2) || !parse_reg(ops[0], &ra) || !parse_mem(ops[1], &rb, &imm)) return false;
      a.lea(ra, rb, imm);
      return true;
    }
    if (op == "leapc") {
      if (!need(2) || !parse_reg(ops[0], &ra)) return false;
      if (!is_ident(ops[1])) return fail("leapc needs a symbol");
      a.lea_pc(ra, ops[1]);
      return true;
    }
    if (op.rfind("load", 0) == 0 && op.size() == 5) {
      u8 w = static_cast<u8>(op[4] - '0');
      if (!valid_width(w)) return fail("bad load width");
      if (!need(2) || !parse_reg(ops[0], &ra) || !parse_mem(ops[1], &rb, &imm)) return false;
      a.load(ra, rb, w, imm);
      return true;
    }
    if (op.rfind("store", 0) == 0 && op.size() == 6) {
      u8 w = static_cast<u8>(op[5] - '0');
      if (!valid_width(w)) return fail("bad store width");
      if (!need(2) || !parse_mem(ops[0], &ra, &imm) || !parse_reg(ops[1], &rb)) return false;
      a.store(ra, imm, rb, w);
      return true;
    }
    if (op == "push" || op == "pop" || op == "not" || op == "neg") {
      if (!need(1) || !parse_reg(ops[0], &ra)) return false;
      if (op == "push") a.push(ra);
      if (op == "pop") a.pop(ra);
      if (op == "not") a.not_(ra);
      if (op == "neg") a.neg(ra);
      return true;
    }

    static const std::map<std::string, void (Assembler::*)(Reg, Reg)> rr = {
        {"add", &Assembler::add}, {"sub", &Assembler::sub}, {"mul", &Assembler::mul},
        {"udiv", &Assembler::udiv}, {"umod", &Assembler::umod}, {"and", &Assembler::and_},
        {"or", &Assembler::or_}, {"xor", &Assembler::xor_}, {"cmp", &Assembler::cmp},
        {"test", &Assembler::test}};
    if (auto it = rr.find(op); it != rr.end()) {
      if (!need(2) || !parse_reg(ops[0], &ra) || !parse_reg(ops[1], &rb)) return false;
      (a.*(it->second))(ra, rb);
      return true;
    }

    static const std::map<std::string, void (Assembler::*)(Reg, i64)> ri = {
        {"addi", &Assembler::addi}, {"subi", &Assembler::subi}, {"muli", &Assembler::muli},
        {"andi", &Assembler::andi}, {"ori", &Assembler::ori}, {"xori", &Assembler::xori},
        {"cmpi", &Assembler::cmpi}, {"testi", &Assembler::testi}};
    if (auto it = ri.find(op); it != ri.end()) {
      if (!need(2) || !parse_reg(ops[0], &ra) || !parse_imm(ops[1], &imm)) return false;
      (a.*(it->second))(ra, imm);
      return true;
    }

    if (op == "shli" || op == "shri" || op == "sari") {
      if (!need(2) || !parse_reg(ops[0], &ra) || !parse_imm(ops[1], &imm)) return false;
      if (imm < 0 || imm > 63) return fail("shift amount out of range");
      if (op == "shli") a.shli(ra, static_cast<u8>(imm));
      if (op == "shri") a.shri(ra, static_cast<u8>(imm));
      if (op == "sari") a.sari(ra, static_cast<u8>(imm));
      return true;
    }

    if (op == "jmp" || op == "call") {
      if (!need(1) || !is_ident(ops[0])) return fail("'" + op + "' needs a label");
      if (op == "jmp") a.jmp(ops[0]);
      if (op == "call") a.call(ops[0]);
      return true;
    }
    if (op == "jmpr" || op == "callr") {
      if (!need(1) || !parse_reg(ops[0], &ra)) return false;
      if (op == "jmpr") a.jmp_reg(ra);
      if (op == "callr") a.call_reg(ra);
      return true;
    }
    if (op == "callimp") {
      if (!need(1)) return false;
      auto bang = ops[0].find('!');
      if (bang == std::string::npos) return fail("callimp MODULE!SYMBOL");
      a.call_import(ops[0].substr(0, bang), ops[0].substr(bang + 1));
      return true;
    }

    static const std::map<std::string, Cond> jcc = {
        {"jeq", Cond::kEq},   {"jne", Cond::kNe},   {"jlt", Cond::kLt},
        {"jge", Cond::kGe},   {"jle", Cond::kLe},   {"jgt", Cond::kGt},
        {"jult", Cond::kUlt}, {"juge", Cond::kUge}, {"jule", Cond::kUle},
        {"jugt", Cond::kUgt}};
    if (auto it = jcc.find(op); it != jcc.end()) {
      if (!need(1) || !is_ident(ops[0])) return fail("'" + op + "' needs a label");
      a.jcc(it->second, ops[0]);
      return true;
    }

    return fail("unknown mnemonic '" + op + "'");
  }

  bool handle(std::string raw) {
    std::string line = strip(std::move(raw));
    if (line.empty()) return true;

    // Leading "label:" (may be the whole line, or prefix an instruction or a
    // data directive).
    std::string label;
    auto colon = line.find(':');
    if (colon != std::string::npos) {
      std::string head = strip(line.substr(0, colon));
      if (is_ident(head)) {
        label = head;
        line = strip(line.substr(colon + 1));
      }
    }

    if (in_data) {
      if (line.empty()) return true;
      if (line[0] == '.') {
        auto sp = line.find_first_of(" \t");
        std::string op = sp == std::string::npos ? line : line.substr(0, sp);
        std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);
        if (label.empty()) return fail("data directive needs a name label");
        return data_directive(label, op, rest);
      }
      return fail("expected a data directive after .data");
    }

    if (!label.empty()) a.label(label);
    if (line.empty()) return true;

    auto sp = line.find_first_of(" \t");
    std::string op = sp == std::string::npos ? line : line.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);
    if (op[0] == '.') return directive(op, rest);
    return instr(op, rest);
  }
};

}  // namespace

std::optional<Image> assemble_text(std::string_view source, std::string* error) {
  Parser p;
  std::string line;
  std::istringstream in{std::string(source)};
  while (std::getline(in, line)) {
    ++p.line_no;
    if (!p.handle(line)) {
      if (error != nullptr) *error = p.err;
      return std::nullopt;
    }
  }
  return p.a.build();
}

}  // namespace crp::isa
