// Label-based program builder producing MVX images.
//
// The Assembler is how CRProbe's target corpus (server simulacra, browser
// simulacra, DLL populations) is authored: emit instructions against string
// labels, define named data, declare exports / imports / SEH scopes, then
// build() resolves everything into a position-independent Image.
//
// Section layout contract (shared with the loader): sections are mapped
// contiguously in declaration order, each page-aligned. The assembler always
// emits section 0 = ".text" (code) and section 1 = ".data" (read-write), so
// PC-relative data references (lea_pc) can be resolved at build time.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "isa/image.h"
#include "isa/isa.h"

namespace crp::isa {

class Assembler {
 public:
  explicit Assembler(std::string image_name);

  // --- labels & layout ----------------------------------------------------

  /// Define `name` at the current code position. Labels double as symbols in
  /// the built image's symbol table.
  void label(const std::string& name);

  /// Current code offset (bytes from start of .text).
  u64 here() const { return code_.size(); }

  // --- instructions ---------------------------------------------------------

  void nop();
  void halt();
  void mov(Reg a, Reg b);
  void movi(Reg a, i64 imm);
  void lea(Reg a, Reg b, i64 off);
  /// Materialize the runtime address of a code label or data symbol.
  void lea_pc(Reg a, const std::string& name);
  void load(Reg a, Reg b, u8 w, i64 off = 0);
  void store(Reg a, i64 off, Reg b, u8 w);
  void push(Reg a);
  void pop(Reg a);
  void add(Reg a, Reg b);
  void addi(Reg a, i64 imm);
  void sub(Reg a, Reg b);
  void subi(Reg a, i64 imm);
  void mul(Reg a, Reg b);
  void muli(Reg a, i64 imm);
  void udiv(Reg a, Reg b);
  void umod(Reg a, Reg b);
  void and_(Reg a, Reg b);
  void andi(Reg a, i64 imm);
  void or_(Reg a, Reg b);
  void ori(Reg a, i64 imm);
  void xor_(Reg a, Reg b);
  void xori(Reg a, i64 imm);
  void shli(Reg a, u8 amount);
  void shri(Reg a, u8 amount);
  void sari(Reg a, u8 amount);
  void not_(Reg a);
  void neg(Reg a);
  void cmp(Reg a, Reg b);
  void cmpi(Reg a, i64 imm);
  void test(Reg a, Reg b);
  void testi(Reg a, i64 imm);
  void jmp(const std::string& target);
  void jmp_reg(Reg a);
  void jcc(Cond c, const std::string& target);
  void call(const std::string& target);
  void call_reg(Reg a);
  /// Call an imported symbol; adds the import on first use.
  void call_import(const std::string& module, const std::string& symbol);
  void ret();
  void syscall();
  void apicall(i64 api_id);

  /// Emit a raw (possibly intentionally malformed) instruction word.
  void raw(const Instr& ins);

  // --- data -----------------------------------------------------------------

  /// Define a named u64 in .data; returns the data-section offset.
  u64 data_u64(const std::string& name, u64 value);
  /// Define named bytes in .data.
  u64 data_bytes(const std::string& name, std::span<const u8> bytes);
  /// Define a named zero-filled buffer in .data.
  u64 data_zero(const std::string& name, u64 size);
  /// Define a NUL-terminated string in .data.
  u64 data_cstr(const std::string& name, const std::string& text);

  // --- metadata ---------------------------------------------------------------

  void set_entry(const std::string& label);
  void set_dll(bool is_dll) { is_dll_ = is_dll; }
  void set_machine(Machine m) { machine_ = m; }
  void export_fn(const std::string& name, const std::string& label);
  /// Declare a guarded region [begin_label, end_label) with `filter_label`
  /// ("" = catch-all constant filter) and resume point `handler_label`.
  void scope(const std::string& begin_label, const std::string& end_label,
             const std::string& filter_label, const std::string& handler_label);

  /// Resolve all references and produce the image. Panics on undefined
  /// labels (authoring bug, not a guest-input condition).
  Image build();

 private:
  struct Fixup {
    u64 code_off;       // offset of the instruction word to patch
    std::string name;   // referenced label / data symbol
    bool pc_rel_data;   // true for lea_pc (may target .data), false for branch/call
  };
  struct Loc {
    u32 section;  // 0 = code, 1 = data
    u64 offset;
  };

  void emit(const Instr& ins);
  u64 define_data(const std::string& name, std::span<const u8> bytes);
  u32 import_index(const std::string& module, const std::string& symbol);

  std::string name_;
  bool is_dll_ = false;
  Machine machine_ = Machine::kX64;
  std::vector<u8> code_;
  std::vector<u8> data_;
  std::map<std::string, Loc> defs_;
  std::vector<Fixup> fixups_;
  std::vector<Import> imports_;
  std::vector<Export> exports_;
  struct ScopeRef {
    std::string begin, end, filter, handler;
  };
  std::vector<ScopeRef> scope_refs_;
  std::string entry_label_;
};

}  // namespace crp::isa
