#include "analysis/report.h"

#include "obs/obs.h"
#include "util/table.h"

namespace crp::analysis {

std::string render_table1(const std::vector<std::string>& servers,
                          const std::map<std::string, SyscallScanResult>& results) {
  TextTable t;
  std::vector<std::string> hdr = {"Syscall"};
  for (const auto& s : servers) hdr.push_back(s);
  t.header(hdr);

  for (os::Sys nr : os::efault_capable_syscalls()) {
    std::vector<std::string> row = {os::sys_name(nr)};
    bool any = false;
    for (const auto& server : servers) {
      auto it = results.find(server);
      std::string cell = ".";
      if (it != results.end()) {
        const SyscallScanResult& r = it->second;
        if (r.observed.contains(nr)) {
          cell = "+-";
          for (const auto& c : r.candidates) {
            if (c.syscall != nr) continue;
            if (c.verdict == Verdict::kUsable) cell = "(+)";
            if (c.verdict == Verdict::kFalsePositive && cell != "(+)") cell = "FP";
          }
          any = true;
        }
      }
      row.push_back(cell);
    }
    if (any) t.row(row);
  }
  return t.render();
}

std::string render_table2(const std::vector<ModuleSehStats>& stats) {
  TextTable t;
  t.header({"DLL", "# guarded before SB", "# guarded after SB", "# on execution path",
            "trigger events"});
  size_t tot_b = 0, tot_a = 0, tot_p = 0;
  u64 tot_e = 0;
  for (const auto& s : stats) {
    if (s.guarded_total == 0) continue;
    t.row({s.module, strf("%zu", s.guarded_total), strf("%zu", s.guarded_av_capable),
           strf("%zu", s.guarded_on_path), strf("%llu", static_cast<unsigned long long>(s.trigger_events))});
    tot_b += s.guarded_total;
    tot_a += s.guarded_av_capable;
    tot_p += s.guarded_on_path;
    tot_e += s.trigger_events;
  }
  t.row({"TOTAL", strf("%zu", tot_b), strf("%zu", tot_a), strf("%zu", tot_p),
         strf("%llu", static_cast<unsigned long long>(tot_e))});
  return t.render();
}

std::string render_table3(const std::vector<ModuleSehStats>& x64,
                          const std::vector<ModuleSehStats>& x32) {
  TextTable t;
  t.header({"DLL", "x64 before SB", "x64 after SB", "x32 before SB", "x32 after SB"});
  std::map<std::string, std::pair<const ModuleSehStats*, const ModuleSehStats*>> merged;
  for (const auto& s : x64) merged[s.module].first = &s;
  for (const auto& s : x32) merged[s.module].second = &s;
  size_t t64b = 0, t64a = 0, t32b = 0, t32a = 0;
  for (const auto& [name, pair] : merged) {
    auto [a, b] = pair;
    size_t f64b = a != nullptr ? a->filters_total : 0;
    size_t f64a = a != nullptr ? a->filters_av_capable : 0;
    size_t f32b = b != nullptr ? b->filters_total : 0;
    size_t f32a = b != nullptr ? b->filters_av_capable : 0;
    if (f64b + f32b == 0) continue;
    t.row({name, strf("%zu", f64b), strf("%zu", f64a), strf("%zu", f32b), strf("%zu", f32a)});
    t64b += f64b;
    t64a += f64a;
    t32b += f32b;
    t32a += f32a;
  }
  t.row({"TOTAL", strf("%zu", t64b), strf("%zu", t64a), strf("%zu", t32b), strf("%zu", t32a)});
  return t.render();
}

std::string render_api_funnel(const ApiFunnel& f) {
  std::string out;
  out += strf("API population:            %u\n", f.total);
  out += strf("  with pointer argument:   %u (%.1f%%)\n", f.with_pointer,
              f.total != 0 ? 100.0 * f.with_pointer / f.total : 0.0);
  out += strf("  crash-resistant (fuzz):  %u\n", f.crash_resistant);
  out += strf("  on execution path:       %u\n", f.on_execution_path);
  out += strf("  script-triggerable:      %u\n", f.script_triggerable);
  out += strf("  pointer controllable:    %u\n", f.controllable);
  if (!f.exclusion_histogram.empty()) {
    out += "  exclusion reasons:\n";
    for (const auto& [name, n] : f.exclusion_histogram)
      out += strf("    %-18s %u\n", name.c_str(), n);
  }
  return out;
}

std::string render_candidates(const std::vector<Candidate>& cands) {
  std::string out;
  for (const auto& c : cands) out += c.describe() + "\n";
  return out;
}

std::string render_metrics(bool skip_zero) {
  std::string out = "pipeline metrics (crp::obs):\n";
  std::string body = obs::Registry::global().text(skip_zero);
  out += body.empty() ? "  (no metrics recorded)\n" : body;
  return out;
}

}  // namespace crp::analysis
