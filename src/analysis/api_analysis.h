// Windows API primitive discovery (§IV-B, §V-B funnel):
//
//   ApiFuzzer — black-box fuzzing of the API surface: for every API with at
//   least one pointer argument, call it in a throwaway guest process with
//   invalid pointers in each pointer slot and observe whether it faults or
//   returns gracefully. APIs that survive every invalid-pointer probe are
//   crash-resistant candidates. The fuzzer never reads the registry's
//   behavior metadata — classification is purely observational, like the
//   paper's fuzzing of MSDN-harvested prototypes.
//
//   ApiCallSiteTracer — dynamic pass over a traced application run: which
//   crash-resistant APIs appear on real execution paths, which of those are
//   reachable from a scripting context (call stack touches the script-engine
//   module), and can the attacker control the pointer argument? The last
//   step classifies pointer arguments into the paper's three exclusion
//   buckets (stack-allocated / dereferenced-outside / volatile-heap) or
//   "controllable".
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/candidates.h"
#include "analysis/target.h"
#include "trace/tracer.h"

namespace crp::analysis {

struct ApiFuzzResult {
  u32 total_apis = 0;
  u32 with_pointer_args = 0;
  std::set<u32> crash_resistant;  // survived all invalid-pointer probes
  u32 probes_executed = 0;
};

class ApiFuzzer {
 public:
  /// Probe pointers tried per pointer argument. More probes = fewer false
  /// "resistant" labels for APIs that only fault on some addresses.
  explicit ApiFuzzer(int probes_per_arg = 3) : probes_per_arg_(probes_per_arg) {}

  /// Fuzz every registered API with pointer args in `kernel`'s registry,
  /// sharding the API ids across a thread pool (`jobs` as for
  /// exec::resolve_jobs). Each worker chunk fuzzes against its own scratch
  /// os::Kernel carrying a copy of `kernel`'s API specs, so `kernel` itself
  /// is never touched concurrently; verdicts depend only on the spec and
  /// the (id-derived, index-deterministic) probe seeds, making the result
  /// identical for any job count. Each probe runs in a scratch Windows
  /// process so a crash cannot poison the next probe.
  ApiFuzzResult fuzz_all(os::Kernel& kernel, int jobs = 0);

  /// Fuzz one API id. True = crash-resistant (graceful error on every probe).
  bool fuzz_one(os::Kernel& kernel, u32 api_id);

 private:
  int probes_per_arg_;
};

/// How a traced pointer argument is judged for attacker control.
struct ApiSiteInfo {
  u32 api_id = 0;
  std::string api_name;
  gva_t call_site = 0;
  u64 times_called = 0;
  bool script_triggerable = false;
  ExclusionReason exclusion = ExclusionReason::kNone;  // kNone = controllable
};

class ApiCallSiteTracer {
 public:
  /// Reduce a Tracer's API log against the fuzzer-approved set.
  /// `script_module_needle`: substring identifying the script engine module
  /// (e.g. "jscript"). `proc` provides layout info for pointer classification.
  static std::vector<ApiSiteInfo> analyze(const trace::Tracer& tracer,
                                          const std::set<u32>& crash_resistant,
                                          const os::Kernel& kernel,
                                          const os::Process& proc,
                                          const std::string& script_module_needle);

  /// Convert to Candidate rows for reporting.
  static std::vector<Candidate> candidates(const std::vector<ApiSiteInfo>& sites,
                                           const std::string& target_name);
};

}  // namespace crp::analysis
