#include "analysis/seh_analysis.h"

#include <algorithm>

#include "cfg/cfg.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "symex/filter_exec.h"
#include "symex/solver.h"
#include "util/log.h"

namespace crp::analysis {

const char* filter_verdict_name(FilterVerdict v) {
  switch (v) {
    case FilterVerdict::kAcceptsAv: return "accepts-av";
    case FilterVerdict::kRejectsAv: return "rejects-av";
    case FilterVerdict::kNeedsManual: return "needs-manual";
  }
  return "?";
}

bool SehExtractor::add_image_bytes(std::span<const u8> bytes) {
  std::optional<isa::Image> img = isa::read_image(bytes);
  if (!img.has_value()) return false;
  add_image(std::make_shared<isa::Image>(std::move(*img)));
  return true;
}

bool SehExtractor::add_images_bytes(const std::vector<std::vector<u8>>& blobs, int jobs) {
  exec::ThreadPool pool(jobs);
  auto parsed = exec::parallel_map(
      pool, blobs,
      [](size_t, const std::vector<u8>& b) { return isa::read_image(b); }, "parse-image");
  bool ok = true;
  for (auto& img : parsed) {
    if (!img.has_value()) {
      ok = false;
      continue;
    }
    add_image(std::make_shared<isa::Image>(std::move(*img)));
  }
  return ok;
}

void SehExtractor::add_image(std::shared_ptr<const isa::Image> image) {
  for (const auto& sc : image->scopes) {
    HandlerSite site;
    site.module = image->name;
    site.machine = image->machine;
    site.scope = sc;
    site.catch_all = sc.filter == isa::kFilterCatchAll;
    handlers_.push_back(site);
  }
  images_.push_back(std::move(image));
}

std::vector<std::pair<std::string, u64>> SehExtractor::unique_filters() const {
  std::set<std::pair<std::string, u64>> set;
  for (const auto& h : handlers_)
    if (!h.catch_all) set.emplace(h.module, h.scope.filter);
  return {set.begin(), set.end()};
}

std::vector<const HandlerSite*> SehExtractor::handlers_in(const std::string& module) const {
  std::vector<const HandlerSite*> out;
  for (const auto& h : handlers_)
    if (h.module == module) out.push_back(&h);
  return out;
}

namespace {

constexpr u64 kFnvBasis = 1469598103934665603ull;
constexpr u64 kFnvPrime = 1099511628211ull;

void mix(u64& h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xff)) * kFnvPrime;
    v >>= 8;
  }
}

void mix_str(u64& h, const std::string& s) {
  mix(h, s.size());
  for (char c : s) h = (h ^ static_cast<u8>(c)) * kFnvPrime;
}

/// Static byte of `image` at the FilterExecutor build-time layout, rebased
/// so the code section starts at 0: code bytes first, then the remaining
/// sections page-aligned in declaration order (mirrors
/// FilterExecutor::static_byte — must stay in sync with it).
std::optional<u8> layout_byte(const isa::Image& img, u64 off) {
  int cs = img.code_section();
  if (cs < 0) return std::nullopt;
  const auto& code = img.sections[static_cast<size_t>(cs)];
  if (off < code.bytes.size()) return code.bytes[off];
  u64 code_size = std::max<u64>(code.vsize, code.bytes.size());
  u64 cursor = align_up(std::max<u64>(code_size, 1), 4096);
  for (size_t i = 0; i < img.sections.size(); ++i) {
    if (static_cast<int>(i) == cs) continue;
    const auto& sec = img.sections[i];
    u64 vsize = std::max<u64>(sec.vsize, sec.bytes.size());
    if (off >= cursor && off < cursor + vsize) {
      u64 o = off - cursor;
      return o < sec.bytes.size() ? sec.bytes[o] : u8{0};
    }
    cursor += align_up(std::max<u64>(vsize, 1), 4096);
  }
  return std::nullopt;
}

}  // namespace

u64 filter_body_hash(const isa::Image& image, u64 filter_off) {
  cfg::Cfg g = cfg::Cfg::build(image, {filter_off});
  u64 h = kFnvBasis;
  for (const auto& [begin, bb] : g.blocks()) {
    mix(h, begin - filter_off);  // block anchor, relative = position-independent
    for (const auto& [off, ins] : g.instructions_in(bb.begin, bb.end)) {
      mix(h, static_cast<u64>(ins.op) | (static_cast<u64>(ins.ra) << 8) |
                 (static_cast<u64>(ins.rb) << 16) | (static_cast<u64>(ins.w) << 24));
      switch (ins.op) {
        case isa::Op::kLeaPc: {
          // The displacement is module-specific (distance to this copy's
          // data); what determines behavior is the referenced static
          // content. Hash a 32-byte window at the target instead.
          u64 target = off + isa::kInstrBytes + static_cast<u64>(ins.imm);
          for (u64 i = 0; i < 32; ++i) {
            auto b = layout_byte(image, target + i);
            mix(h, b.has_value() ? 0x100u | *b : 0u);
          }
          break;
        }
        case isa::Op::kCallImp: {
          // Import *index* differs per module; the imported name is what a
          // duplicate body shares. (The executor havocs the result either
          // way, but keep the key conservative.)
          auto idx = static_cast<size_t>(ins.imm);
          if (idx < image.imports.size()) {
            mix_str(h, image.imports[idx].module);
            mix_str(h, image.imports[idx].symbol);
          } else {
            mix(h, 0xbad1);
          }
          break;
        }
        default:
          mix(h, static_cast<u64>(ins.imm));
      }
    }
  }
  return h;
}

FilterClassifier::Outcome FilterClassifier::classify_detail(const isa::Image& image,
                                                            u64 filter_off) const {
  Outcome out;
  symex::Ctx ctx;
  symex::FilterExecutor fx(ctx, image);
  symex::FilterAnalysis fa = fx.explore(filter_off, opts_.max_paths, opts_.max_steps);
  out.paths = fa.paths.size();

  bool any_unknown = fa.truncated;
  for (const auto& path : fa.paths) {
    // Query: path ∧ exc_code = AV ∧ disposition handles it.
    symex::Solver s(ctx);
    s.add(path.cond);
    s.add(ctx.eq(fx.exc_code(),
                 ctx.constant(static_cast<u64>(vm::ExcCode::kAccessViolation))));
    symex::ExprRef handles =
        ctx.eq(path.ret, ctx.constant(symex::kDispExecuteHandler));
    if (opts_.continue_execution_counts)
      handles = ctx.lor(handles,
                        ctx.eq(path.ret, ctx.constant(symex::kDispContinueExecution)));
    s.add(handles);
    ++out.queries;
    symex::SatResult r = s.check(opts_.solver_conflicts);
    if (r == symex::SatResult::kSat) {
      // A path that only accepts because of an unconstrained external call
      // is not a clean verdict (the paper's manual-verification bucket).
      if (path.external_call) {
        any_unknown = true;
        continue;
      }
      out.verdict = FilterVerdict::kAcceptsAv;
      return out;
    }
    if (r == symex::SatResult::kUnknown) any_unknown = true;
  }
  out.verdict = any_unknown ? FilterVerdict::kNeedsManual : FilterVerdict::kRejectsAv;
  return out;
}

FilterVerdict FilterClassifier::classify(const isa::Image& image, u64 filter_off,
                                         size_t* paths_out) {
  Outcome o = classify_detail(image, filter_off);
  ++executed_;
  queries_ += o.queries;
  if (paths_out != nullptr) *paths_out = o.paths;
  return o.verdict;
}

std::vector<FilterInfo> FilterClassifier::classify_all(const SehExtractor& ex, int jobs) {
  struct Item {
    std::string module;
    u64 off = 0;
    const isa::Image* img = nullptr;
  };
  // Name -> image, last image with the name winning (as the previous
  // linear rescans did).
  std::map<std::string, const isa::Image*> by_name;
  for (const auto& im : ex.images()) by_name[im->name] = im.get();

  std::vector<Item> items;
  for (const auto& [module, off] : ex.unique_filters()) {
    auto it = by_name.find(module);
    if (it == by_name.end()) continue;
    items.push_back({module, off, it->second});
  }

  exec::ThreadPool pool(jobs);

  // Pass 1: content hashes (pure function of the image).
  std::vector<u64> hashes = exec::parallel_map(
      pool, items,
      [](size_t, const Item& it) { return filter_body_hash(*it.img, it.off); },
      "filter-hash");

  // Dedup against the memo cache: the first occurrence (in input order) of
  // each unknown hash becomes the representative that actually executes, so
  // the executed/query counters are identical for any job count.
  std::vector<size_t> run_idx;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    std::set<u64> scheduled;
    for (size_t i = 0; i < items.size(); ++i) {
      if (memo_.contains(hashes[i])) continue;
      if (scheduled.insert(hashes[i]).second) run_idx.push_back(i);
    }
  }

  // Pass 2: symbolically execute one representative per unique body, each
  // task with its own symex::Ctx/Solver.
  std::vector<Outcome> outcomes = exec::parallel_map(
      pool, run_idx,
      [&](size_t, const size_t& idx) {
        return classify_detail(*items[idx].img, items[idx].off);
      },
      "classify-filter");

  std::vector<FilterInfo> out;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    for (size_t k = 0; k < run_idx.size(); ++k)
      memo_.emplace(hashes[run_idx[k]], outcomes[k]);
    executed_ += run_idx.size();
    for (const auto& o : outcomes) queries_ += o.queries;
    u64 hits = items.size() - run_idx.size();
    memo_hits_ += hits;
    obs::Registry::global().counter("analysis.classify.memo_hits").inc(hits);

    // Per-filter handler counts, built once instead of rescanning all
    // handlers per filter.
    std::map<std::pair<std::string, u64>, size_t> handler_counts;
    for (const auto& h : ex.handlers())
      if (!h.catch_all) ++handler_counts[{h.module, h.scope.filter}];

    for (size_t i = 0; i < items.size(); ++i) {
      const Outcome& o = memo_.at(hashes[i]);
      FilterInfo info;
      info.module = items[i].module;
      info.offset = items[i].off;
      info.machine = items[i].img->machine;
      info.verdict = o.verdict;
      info.paths_explored = o.paths;
      auto hc = handler_counts.find({info.module, info.offset});
      if (hc != handler_counts.end()) info.handlers_using = hc->second;
      out.push_back(info);
    }
  }

  // Catch-all "filters" are structurally accepting; represent them with one
  // synthetic row per module that uses them (offset = kFilterCatchAll).
  std::map<std::string, size_t> catch_all_users;
  for (const auto& h : ex.handlers())
    if (h.catch_all) ++catch_all_users[h.module];
  for (const auto& [module, n] : catch_all_users) {
    auto it = by_name.find(module);
    FilterInfo info;
    info.module = module;
    info.offset = isa::kFilterCatchAll;
    info.machine = it != by_name.end() ? it->second->machine : isa::Machine::kX64;
    info.verdict = FilterVerdict::kAcceptsAv;
    info.handlers_using = n;
    out.push_back(info);
  }
  return out;
}

namespace {

bool filter_accepts(const std::vector<FilterInfo>& filters, const std::string& module,
                    u64 filter_off, bool catch_all) {
  if (catch_all) return true;
  for (const auto& f : filters)
    if (f.module == module && f.offset == filter_off)
      return f.verdict == FilterVerdict::kAcceptsAv;
  return false;
}

}  // namespace

std::vector<ModuleSehStats> CoverageXref::compute(const SehExtractor& ex,
                                                  const std::vector<FilterInfo>& filters,
                                                  const trace::Tracer* tracer,
                                                  const os::Process* proc) {
  std::map<std::string, ModuleSehStats> stats;
  for (const auto& img : ex.images()) {
    ModuleSehStats& s = stats[img->name];
    s.module = img->name;
    s.machine = img->machine;
  }

  for (const auto& h : ex.handlers()) {
    ModuleSehStats& s = stats[h.module];
    ++s.guarded_total;
    bool av = filter_accepts(filters, h.module, h.scope.filter, h.catch_all);
    if (!av) continue;
    ++s.guarded_av_capable;
    if (tracer != nullptr && proc != nullptr) {
      const vm::LoadedModule* mod = proc->machine().module_named(h.module);
      if (mod != nullptr) {
        gva_t begin = mod->code_addr(h.scope.begin);
        gva_t end = mod->code_addr(h.scope.end);
        if (tracer->executed_in_range(begin, end)) {
          ++s.guarded_on_path;
          s.trigger_events += tracer->hits_in_range(begin, end);
        }
      }
    }
  }

  for (const auto& f : filters) {
    if (f.offset == isa::kFilterCatchAll) continue;  // Table III counts functions
    ModuleSehStats& s = stats[f.module];
    ++s.filters_total;
    if (f.verdict == FilterVerdict::kAcceptsAv) ++s.filters_av_capable;
  }

  std::vector<ModuleSehStats> out;
  for (auto& [_, s] : stats) out.push_back(std::move(s));
  return out;
}

std::vector<Candidate> CoverageXref::candidates(const SehExtractor& ex,
                                                const std::vector<FilterInfo>& filters,
                                                const trace::Tracer* tracer,
                                                const os::Process* proc,
                                                const std::string& target_name) {
  std::vector<Candidate> out;
  for (const auto& h : ex.handlers()) {
    if (!filter_accepts(filters, h.module, h.scope.filter, h.catch_all)) continue;
    bool on_path = false;
    if (tracer != nullptr && proc != nullptr) {
      const vm::LoadedModule* mod = proc->machine().module_named(h.module);
      if (mod != nullptr)
        on_path = tracer->executed_in_range(mod->code_addr(h.scope.begin),
                                            mod->code_addr(h.scope.end));
    }
    if (!on_path) continue;
    Candidate c;
    c.cls = PrimitiveClass::kExceptionHandler;
    c.target = target_name;
    c.module = h.module;
    c.scope_begin = h.scope.begin;
    c.scope_end = h.scope.end;
    c.filter_off = h.scope.filter;
    c.catch_all = h.catch_all;
    out.push_back(c);
  }
  return out;
}

}  // namespace crp::analysis
