#include "analysis/seh_analysis.h"

#include <algorithm>

#include "symex/filter_exec.h"
#include "symex/solver.h"
#include "util/log.h"

namespace crp::analysis {

const char* filter_verdict_name(FilterVerdict v) {
  switch (v) {
    case FilterVerdict::kAcceptsAv: return "accepts-av";
    case FilterVerdict::kRejectsAv: return "rejects-av";
    case FilterVerdict::kNeedsManual: return "needs-manual";
  }
  return "?";
}

bool SehExtractor::add_image_bytes(std::span<const u8> bytes) {
  std::optional<isa::Image> img = isa::read_image(bytes);
  if (!img.has_value()) return false;
  add_image(std::make_shared<isa::Image>(std::move(*img)));
  return true;
}

void SehExtractor::add_image(std::shared_ptr<const isa::Image> image) {
  for (const auto& sc : image->scopes) {
    HandlerSite site;
    site.module = image->name;
    site.machine = image->machine;
    site.scope = sc;
    site.catch_all = sc.filter == isa::kFilterCatchAll;
    handlers_.push_back(site);
  }
  images_.push_back(std::move(image));
}

std::vector<std::pair<std::string, u64>> SehExtractor::unique_filters() const {
  std::set<std::pair<std::string, u64>> set;
  for (const auto& h : handlers_)
    if (!h.catch_all) set.emplace(h.module, h.scope.filter);
  return {set.begin(), set.end()};
}

std::vector<const HandlerSite*> SehExtractor::handlers_in(const std::string& module) const {
  std::vector<const HandlerSite*> out;
  for (const auto& h : handlers_)
    if (h.module == module) out.push_back(&h);
  return out;
}

FilterVerdict FilterClassifier::classify(const isa::Image& image, u64 filter_off,
                                         size_t* paths_out) {
  symex::Ctx ctx;
  symex::FilterExecutor fx(ctx, image);
  symex::FilterAnalysis fa = fx.explore(filter_off, opts_.max_paths, opts_.max_steps);
  ++executed_;
  if (paths_out != nullptr) *paths_out = fa.paths.size();

  bool any_unknown = fa.truncated;
  for (const auto& path : fa.paths) {
    // Query: path ∧ exc_code = AV ∧ disposition handles it.
    symex::Solver s(ctx);
    s.add(path.cond);
    s.add(ctx.eq(fx.exc_code(),
                 ctx.constant(static_cast<u64>(vm::ExcCode::kAccessViolation))));
    symex::ExprRef handles =
        ctx.eq(path.ret, ctx.constant(symex::kDispExecuteHandler));
    if (opts_.continue_execution_counts)
      handles = ctx.lor(handles,
                        ctx.eq(path.ret, ctx.constant(symex::kDispContinueExecution)));
    s.add(handles);
    ++queries_;
    symex::SatResult r = s.check(opts_.solver_conflicts);
    if (r == symex::SatResult::kSat) {
      // A path that only accepts because of an unconstrained external call
      // is not a clean verdict (the paper's manual-verification bucket).
      if (path.external_call) {
        any_unknown = true;
        continue;
      }
      return FilterVerdict::kAcceptsAv;
    }
    if (r == symex::SatResult::kUnknown) any_unknown = true;
  }
  return any_unknown ? FilterVerdict::kNeedsManual : FilterVerdict::kRejectsAv;
}

std::vector<FilterInfo> FilterClassifier::classify_all(const SehExtractor& ex) {
  std::vector<FilterInfo> out;
  for (const auto& [module, off] : ex.unique_filters()) {
    const isa::Image* img = nullptr;
    for (const auto& im : ex.images())
      if (im->name == module) img = im.get();
    if (img == nullptr) continue;
    FilterInfo info;
    info.module = module;
    info.offset = off;
    info.machine = img->machine;
    info.verdict = classify(*img, off, &info.paths_explored);
    for (const auto& h : ex.handlers())
      if (h.module == module && !h.catch_all && h.scope.filter == off) ++info.handlers_using;
    out.push_back(info);
  }
  // Catch-all "filters" are structurally accepting; represent them with one
  // synthetic row per module that uses them (offset = kFilterCatchAll).
  std::map<std::string, size_t> catch_all_users;
  for (const auto& h : ex.handlers())
    if (h.catch_all) ++catch_all_users[h.module];
  for (const auto& [module, n] : catch_all_users) {
    const isa::Image* img = nullptr;
    for (const auto& im : ex.images())
      if (im->name == module) img = im.get();
    FilterInfo info;
    info.module = module;
    info.offset = isa::kFilterCatchAll;
    info.machine = img != nullptr ? img->machine : isa::Machine::kX64;
    info.verdict = FilterVerdict::kAcceptsAv;
    info.handlers_using = n;
    out.push_back(info);
  }
  return out;
}

namespace {

bool filter_accepts(const std::vector<FilterInfo>& filters, const std::string& module,
                    u64 filter_off, bool catch_all) {
  if (catch_all) return true;
  for (const auto& f : filters)
    if (f.module == module && f.offset == filter_off)
      return f.verdict == FilterVerdict::kAcceptsAv;
  return false;
}

}  // namespace

std::vector<ModuleSehStats> CoverageXref::compute(const SehExtractor& ex,
                                                  const std::vector<FilterInfo>& filters,
                                                  const trace::Tracer* tracer,
                                                  const os::Process* proc) {
  std::map<std::string, ModuleSehStats> stats;
  for (const auto& img : ex.images()) {
    ModuleSehStats& s = stats[img->name];
    s.module = img->name;
    s.machine = img->machine;
  }

  for (const auto& h : ex.handlers()) {
    ModuleSehStats& s = stats[h.module];
    ++s.guarded_total;
    bool av = filter_accepts(filters, h.module, h.scope.filter, h.catch_all);
    if (!av) continue;
    ++s.guarded_av_capable;
    if (tracer != nullptr && proc != nullptr) {
      const vm::LoadedModule* mod = proc->machine().module_named(h.module);
      if (mod != nullptr) {
        gva_t begin = mod->code_addr(h.scope.begin);
        gva_t end = mod->code_addr(h.scope.end);
        if (tracer->executed_in_range(begin, end)) {
          ++s.guarded_on_path;
          s.trigger_events += tracer->hits_in_range(begin, end);
        }
      }
    }
  }

  for (const auto& f : filters) {
    if (f.offset == isa::kFilterCatchAll) continue;  // Table III counts functions
    ModuleSehStats& s = stats[f.module];
    ++s.filters_total;
    if (f.verdict == FilterVerdict::kAcceptsAv) ++s.filters_av_capable;
  }

  std::vector<ModuleSehStats> out;
  for (auto& [_, s] : stats) out.push_back(std::move(s));
  return out;
}

std::vector<Candidate> CoverageXref::candidates(const SehExtractor& ex,
                                                const std::vector<FilterInfo>& filters,
                                                const trace::Tracer* tracer,
                                                const os::Process* proc,
                                                const std::string& target_name) {
  std::vector<Candidate> out;
  for (const auto& h : ex.handlers()) {
    if (!filter_accepts(filters, h.module, h.scope.filter, h.catch_all)) continue;
    bool on_path = false;
    if (tracer != nullptr && proc != nullptr) {
      const vm::LoadedModule* mod = proc->machine().module_named(h.module);
      if (mod != nullptr)
        on_path = tracer->executed_in_range(mod->code_addr(h.scope.begin),
                                            mod->code_addr(h.scope.end));
    }
    if (!on_path) continue;
    Candidate c;
    c.cls = PrimitiveClass::kExceptionHandler;
    c.target = target_name;
    c.module = h.module;
    c.scope_begin = h.scope.begin;
    c.scope_end = h.scope.end;
    c.filter_off = h.scope.filter;
    c.catch_all = h.catch_all;
    out.push_back(c);
  }
  return out;
}

}  // namespace crp::analysis
