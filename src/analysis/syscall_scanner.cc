#include "analysis/syscall_scanner.h"

#include <memory>
#include <unordered_map>

#include "obs/prof.h"
#include "taint/taint.h"
#include "util/log.h"

namespace crp::analysis {

namespace {

/// Per-process taint engines, created lazily as worker processes appear.
class TaintFarm : public os::KernelObserver {
 public:
  explicit TaintFarm(os::Kernel& k) : k_(k) { k_.add_observer(this); }
  ~TaintFarm() override { k_.remove_observer(this); }

  void on_process_created(os::Process& p) override { attach(p); }

  void attach(os::Process& p) {
    if (!engines_.contains(p.pid()))
      engines_.emplace(p.pid(), std::make_unique<taint::TaintEngine>(k_, p));
  }

  taint::TaintEngine* engine(int pid) {
    auto it = engines_.find(pid);
    return it == engines_.end() ? nullptr : it->second.get();
  }

 private:
  os::Kernel& k_;
  std::unordered_map<int, std::unique_ptr<taint::TaintEngine>> engines_;
};

/// Discovery observer: records EFAULT-capable syscalls and taint on their
/// pointer arguments.
class DiscoverHook : public os::KernelObserver {
 public:
  DiscoverHook(os::Kernel& k, TaintFarm& farm, const std::string& target_name)
      : k_(k), farm_(farm), target_(target_name) {
    k_.add_observer(this);
  }
  ~DiscoverHook() override { k_.remove_observer(this); }

  void on_syscall_enter(os::Process& p, os::Thread& t, os::Sys nr, u64* args) override {
    (void)t;
    ++traced_;
    const auto& efault_set = os::efault_capable_syscalls();
    bool capable = false;
    for (os::Sys s : efault_set) capable |= s == nr;
    if (!capable) return;
    observed_.insert(nr);

    taint::TaintEngine* eng = farm_.engine(p.pid());
    for (int slot : os::pointer_args(nr)) {
      gva_t ptr = args[slot - 1 + 0];
      if (ptr == 0) continue;  // optional pointers (accept addr_out)
      auto key = std::make_pair(nr, slot);
      auto it = found_.find(key);
      taint::Mask mask =
          eng != nullptr ? eng->reg_taint(static_cast<isa::Reg>(slot)) : 0;
      std::optional<gva_t> home =
          eng != nullptr ? eng->reg_provenance(static_cast<isa::Reg>(slot)) : std::nullopt;
      bool ctrl_home = false;
      if (home.has_value()) {
        // Attacker-controllable home: writable, mapped, and not a stack slot
        // (short-lived stack values mirror the paper's §V-B exclusion).
        const auto& machine = p.machine();
        const auto* placement = machine.layout().find(*home);
        bool on_stack =
            placement != nullptr && placement->kind == mem::RegionKind::kStack;
        ctrl_home = !on_stack &&
                    (machine.mem().perms_of(*home) & mem::kPermW) != 0;
      }
      if (it == found_.end()) {
        Candidate c;
        c.cls = PrimitiveClass::kSyscall;
        c.target = target_;
        c.syscall = nr;
        c.pointer_arg = slot;
        c.taint_mask = mask;
        c.pointer_home = home;
        c.controllable_home = ctrl_home;
        found_.emplace(key, c);
      } else {
        it->second.taint_mask |= mask;
        if (!it->second.pointer_home.has_value()) {
          it->second.pointer_home = home;
          it->second.controllable_home = ctrl_home;
        }
      }
    }
  }

  std::vector<Candidate> candidates() const {
    std::vector<Candidate> out;
    for (const auto& [_, c] : found_) out.push_back(c);
    return out;
  }
  const std::set<os::Sys>& observed() const { return observed_; }
  u64 traced() const { return traced_; }

 private:
  os::Kernel& k_;
  TaintFarm& farm_;
  std::string target_;
  std::map<std::pair<os::Sys, int>, Candidate> found_;
  std::set<os::Sys> observed_;
  u64 traced_ = 0;
};

/// Verification observer: corrupts the pointer argument (and its memory
/// home) of the candidate syscall, once.
///
/// Addresses recorded during discovery belong to a different ASLR
/// instantiation, so the hook re-derives the pointer's provenance *live*
/// from this run's taint engines and fires only at a call site matching the
/// candidate's controllability profile (a heap/global-resident pointer for
/// controllable candidates; any site otherwise).
class CorruptHook : public os::KernelObserver {
 public:
  CorruptHook(os::Kernel& k, TaintFarm& farm, const Candidate& cand, gva_t poison)
      : k_(k), farm_(farm), cand_(cand), poison_(poison) {
    k_.add_observer(this);
  }
  ~CorruptHook() override { k_.remove_observer(this); }

  void on_syscall_enter(os::Process& p, os::Thread& t, os::Sys nr, u64* args) override {
    if (fired_ || nr != cand_.syscall) return;
    int slot = cand_.pointer_arg;
    if (args[slot - 1] == 0) return;

    taint::TaintEngine* eng = farm_.engine(p.pid());
    std::optional<gva_t> live_home =
        eng != nullptr ? eng->reg_provenance(static_cast<isa::Reg>(slot)) : std::nullopt;
    bool live_ctrl = false;
    if (live_home.has_value()) {
      const auto* placement = p.machine().layout().find(*live_home);
      bool on_stack = placement != nullptr && placement->kind == mem::RegionKind::kStack;
      live_ctrl =
          !on_stack && (p.machine().mem().perms_of(*live_home) & mem::kPermW) != 0;
    }
    bool live_taint =
        eng != nullptr && eng->reg_taint(static_cast<isa::Reg>(slot)) != 0;
    if ((cand_.controllable_home || cand_.taint_mask != 0) && !live_ctrl && !live_taint)
      return;  // wait for a call site the attacker could actually steer

    fired_ = true;
    // Corrupt the register argument (what the kernel will use now)...
    args[slot - 1] = poison_;
    t.cpu.regs[static_cast<size_t>(slot)] = poison_;
    // ...and the live memory home, so the program's own later loads of the
    // same pointer observe the corruption (out-of-fragment dereferences
    // crash honestly).
    if (live_home.has_value()) p.machine().mem().poke_u64(*live_home, poison_);
  }

  void on_syscall_exit(os::Process& p, os::Thread& t, os::Sys nr, const u64* args,
                       i64 ret) override {
    (void)p;
    (void)t;
    (void)args;
    if (fired_ && !result_seen_ && nr == cand_.syscall) {
      result_seen_ = true;
      efault_returned_ = ret == -os::kEFAULT;
    }
  }

  bool fired() const { return fired_; }
  bool efault_returned() const { return efault_returned_; }

 private:
  os::Kernel& k_;
  TaintFarm& farm_;
  const Candidate& cand_;
  gva_t poison_;
  bool fired_ = false;
  bool result_seen_ = false;
  bool efault_returned_ = false;
};

/// An address guaranteed unmapped in every run: high in the user range,
/// far from any ASLR slide window.
constexpr gva_t kPoison = 0x0000'6f00'dead'0000ull;

}  // namespace

SyscallScanner::SyscallScanner(const TargetProgram& target, SyscallScanOptions opts)
    : target_(target), opts_(opts) {}

SyscallScanResult SyscallScanner::discover() {
  // The whole discovery run executes under byte-granular taint tracking;
  // tag its virtual-time samples so the heat table separates taint-traced
  // interpretation from plain execution.
  obs::ScopedProfFlags prof_flags(obs::kProfTaint);
  os::Kernel k;
  TaintFarm farm(k);
  DiscoverHook hook(k, farm, target_.name);
  int pid = target_.instantiate(k, opts_.seed);
  farm.attach(k.proc(pid));
  if (target_.workload) target_.workload(k, pid);
  k.run(opts_.discover_budget);

  SyscallScanResult res;
  res.candidates = hook.candidates();
  res.observed = hook.observed();
  res.syscalls_traced = hook.traced();
  res.instructions = k.total_instret();
  return res;
}

void SyscallScanner::verify(Candidate& cand) {
  os::Kernel k;
  TaintFarm farm(k);
  CorruptHook hook(k, farm, cand, kPoison);
  int pid = target_.instantiate(k, opts_.seed + 7);
  farm.attach(k.proc(pid));
  if (target_.workload) target_.workload(k, pid);
  k.run(opts_.verify_budget);

  if (!hook.fired()) {
    cand.verdict = Verdict::kUntested;
    cand.note = "candidate syscall not reached during verification run";
    return;
  }

  // Did anything crash?
  bool crashed = false;
  for (int p : k.pids()) {
    const os::Process* proc = k.find_proc(p);
    if (proc != nullptr && proc->exit_info().crashed) crashed = true;
  }
  if (crashed) {
    cand.verdict = Verdict::kCrashes;
    cand.note = "pointer corruption crashed the process";
    return;
  }

  if (cand.taint_mask == 0 && !cand.controllable_home) {
    cand.verdict = Verdict::kNotControllable;
    cand.note = hook.efault_returned()
                    ? "survives EFAULT but the attacker cannot steer the pointer"
                    : "pointer not attacker-steerable";
    return;
  }

  if (opts_.check_service_liveness && target_.service_alive &&
      !target_.service_alive(k, pid)) {
    cand.verdict = Verdict::kFalsePositive;
    cand.note = "process survives but stops serving new connections";
    return;
  }

  cand.verdict = Verdict::kUsable;
  cand.note = hook.efault_returned() ? "EFAULT observed; service healthy"
                                     : "survives; service healthy";
}

}  // namespace crp::analysis
