// GuardAudit: static refinement of exception-handler candidates with CFG
// information (§VII-B).
//
// The paper observes two static signals about guarded regions:
//   * a guarded region with NO memory dereference cannot be a probing
//     primitive by itself — if its filter still accepts AVs, the filter is
//     gratuitously broad ("too broad filtering");
//   * an AV-capable guarded region that DOES dereference is a refined
//     primitive candidate: the dereference is what the attacker steers.
//
// The audit classifies every handler site of an extracted corpus using the
// recursive-traversal CFG, giving both the defender view (filters to
// narrow) and the attacker view (candidates to prioritize).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/seh_analysis.h"
#include "cfg/cfg.h"

namespace crp::analysis {

enum class GuardKind : u8 {
  kDerefGuard = 0,   // AV-capable filter over code that dereferences: candidate
  kGratuitous,       // AV-capable filter over code with no dereference
  kNarrow,           // filter rejects AVs (whatever the code does)
};

const char* guard_kind_name(GuardKind k);

struct GuardAuditEntry {
  HandlerSite site;
  GuardKind kind = GuardKind::kNarrow;
  size_t region_instrs = 0;
  int region_loads = 0;
  int region_stores = 0;
};

struct GuardAuditSummary {
  std::vector<GuardAuditEntry> entries;
  size_t deref_guards = 0;
  size_t gratuitous = 0;
  size_t narrow = 0;

  /// Per-module (deref-candidates, gratuitous) counts.
  std::map<std::string, std::pair<size_t, size_t>> per_module() const;
};

/// Audit every handler of `ex` using `filters` verdicts; one CFG is built
/// per image (roots: exports + scope members).
GuardAuditSummary audit_guards(const SehExtractor& ex,
                               const std::vector<FilterInfo>& filters);

}  // namespace crp::analysis
