#include "analysis/guard_audit.h"

namespace crp::analysis {

const char* guard_kind_name(GuardKind k) {
  switch (k) {
    case GuardKind::kDerefGuard: return "deref-guard";
    case GuardKind::kGratuitous: return "gratuitous";
    case GuardKind::kNarrow: return "narrow";
  }
  return "?";
}

std::map<std::string, std::pair<size_t, size_t>> GuardAuditSummary::per_module() const {
  std::map<std::string, std::pair<size_t, size_t>> out;
  for (const auto& e : entries) {
    auto& [derefs, grat] = out[e.site.module];
    if (e.kind == GuardKind::kDerefGuard) ++derefs;
    if (e.kind == GuardKind::kGratuitous) ++grat;
  }
  return out;
}

GuardAuditSummary audit_guards(const SehExtractor& ex,
                               const std::vector<FilterInfo>& filters) {
  GuardAuditSummary out;

  auto accepts = [&](const HandlerSite& h) {
    if (h.catch_all) return true;
    for (const auto& f : filters)
      if (f.module == h.module && f.offset == h.scope.filter)
        return f.verdict == FilterVerdict::kAcceptsAv;
    return false;
  };

  std::map<std::string, cfg::Cfg> cfgs;
  for (const auto& img : ex.images()) cfgs.emplace(img->name, cfg::Cfg::build_all(*img));

  for (const auto& h : ex.handlers()) {
    GuardAuditEntry entry;
    entry.site = h;
    auto it = cfgs.find(h.module);
    if (it != cfgs.end()) {
      auto instrs = it->second.instructions_in(h.scope.begin, h.scope.end);
      entry.region_instrs = instrs.size();
      for (const auto& [off, ins] : instrs) {
        if (ins.op == isa::Op::kLoad) ++entry.region_loads;
        if (ins.op == isa::Op::kStore) ++entry.region_stores;
      }
    }
    if (!accepts(h)) {
      entry.kind = GuardKind::kNarrow;
      ++out.narrow;
    } else if (entry.region_loads + entry.region_stores > 0) {
      entry.kind = GuardKind::kDerefGuard;
      ++out.deref_guards;
    } else {
      entry.kind = GuardKind::kGratuitous;
      ++out.gratuitous;
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace crp::analysis
