#include "analysis/signal_scanner.h"

#include "symex/filter_exec.h"
#include "symex/solver.h"

namespace crp::analysis {

std::vector<SignalHandlerInfo> SignalScanner::scan(const os::Process& proc,
                                                   ClassifyOptions opts) {
  std::vector<SignalHandlerInfo> out;
  for (int signo : {os::kSigbus, os::kSigfpe, os::kSigsegv}) {
    gva_t handler = proc.machine().signal_handler(signo);
    if (handler == 0) continue;

    SignalHandlerInfo info;
    info.signo = signo;
    info.handler = handler;
    const vm::LoadedModule* mod = proc.machine().module_at(handler);
    if (mod == nullptr) {
      info.module = "?";
      out.push_back(info);
      continue;
    }
    info.module = mod->image->name;
    info.offset = handler - mod->code_base();

    symex::Ctx ctx;
    symex::FilterExecutor fx(ctx, *mod->image);
    symex::FilterAnalysis fa = fx.explore(info.offset, opts.max_paths, opts.max_steps,
                                          symex::FilterExecutor::Proto::kSignal);
    info.paths_explored = fa.paths.size();
    bool unknown = fa.truncated;
    info.verdict = FilterVerdict::kRejectsAv;
    for (const auto& path : fa.paths) {
      if (!path.wrote_saved_pc) continue;  // returning unchanged = death loop
      // Is this recovery path reachable for SIGSEGV?
      symex::Solver s(ctx);
      s.add(path.cond);
      s.add(ctx.eq(fx.exc_code(), ctx.constant(static_cast<u64>(os::kSigsegv))));
      symex::SatResult r = s.check(opts.solver_conflicts);
      if (r == symex::SatResult::kSat && !path.external_call) {
        info.verdict = FilterVerdict::kAcceptsAv;
        break;
      }
      if (r == symex::SatResult::kUnknown || path.external_call) unknown = true;
    }
    if (info.verdict != FilterVerdict::kAcceptsAv && unknown)
      info.verdict = FilterVerdict::kNeedsManual;
    out.push_back(info);
  }
  return out;
}

std::vector<Candidate> SignalScanner::candidates(
    const std::vector<SignalHandlerInfo>& handlers, const std::string& target_name) {
  std::vector<Candidate> out;
  for (const auto& h : handlers) {
    if (h.verdict != FilterVerdict::kAcceptsAv) continue;
    Candidate c;
    c.cls = PrimitiveClass::kExceptionHandler;
    c.target = target_name;
    c.module = h.module;
    c.filter_off = h.offset;
    c.note = strf("signal handler (signo %d, recovers via ucontext)", h.signo);
    out.push_back(c);
  }
  return out;
}

}  // namespace crp::analysis
