// Linux syscall primitive discovery + verification (§IV-A, Table I).
//
// Phase 1 (discover): run the target's workload under byte-granular taint
// tracking; record every EFAULT-capable syscall whose pointer argument is
// (a) observed at all and (b) tainted by client bytes — together with the
// memory home the pointer value was loaded from.
//
// Phase 2 (verify): re-run with a corruption hook that, at the chosen
// occurrence of the candidate syscall, overwrites the pointer argument (and
// its memory home, so the program's own later re-reads see the corruption —
// this is what makes out-of-fragment dereferences crash honestly) with an
// unmapped address. Then keep driving the workload and classify:
//     crash            -> kCrashes         (not crash-resistant)
//     survives, clean  -> kUsable          (if tainted/controllable)
//                      -> kNotControllable (if the attacker has no handle)
//     survives, but a fresh client is no longer served
//                      -> kFalsePositive   (the Memcached epoll_wait case)
#pragma once

#include <map>
#include <set>

#include "analysis/candidates.h"
#include "analysis/target.h"

namespace crp::analysis {

struct SyscallScanOptions {
  u64 discover_budget = 30'000'000;   // instructions for the workload run
  u64 verify_budget = 30'000'000;
  /// Check end-to-end service liveness after corruption (disable to get the
  /// paper's *initial* framework behavior that mislabeled Memcached).
  bool check_service_liveness = true;
  u64 seed = 1234;
};

struct SyscallScanResult {
  std::vector<Candidate> candidates;          // verified candidates
  std::set<os::Sys> observed;                 // EFAULT-capable syscalls seen at all
  u64 syscalls_traced = 0;
  u64 instructions = 0;
};

class SyscallScanner {
 public:
  SyscallScanner(const TargetProgram& target, SyscallScanOptions opts = {});

  /// Phase 1 only.
  SyscallScanResult discover();

  /// Phase 2 for one candidate (fresh kernel instance per run).
  /// (Whole-target discover+verify funnels live in pipeline::Campaign —
  /// there is deliberately no run_full() here so every driver goes through
  /// the staged pipeline and its caching/observability.)
  void verify(Candidate& cand);

 private:
  const TargetProgram& target_;
  SyscallScanOptions opts_;
};

}  // namespace crp::analysis
