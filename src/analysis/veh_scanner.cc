#include "analysis/veh_scanner.h"

#include "symex/filter_exec.h"
#include "symex/solver.h"

namespace crp::analysis {

std::vector<VehHandlerInfo> VehScanner::scan(const trace::Tracer& tracer,
                                             const os::Process& proc, ClassifyOptions opts) {
  std::vector<VehHandlerInfo> out;
  std::set<gva_t> seen;
  for (const auto& rec : tracer.api_calls()) {
    if (rec.api_id != os::kApiAddVeh) continue;
    gva_t handler = rec.args[1];
    if (handler == 0 || seen.contains(handler)) continue;
    seen.insert(handler);

    VehHandlerInfo info;
    info.handler = handler;
    const vm::LoadedModule* mod = proc.machine().module_at(handler);
    if (mod == nullptr) {
      info.module = "?";
      out.push_back(info);
      continue;
    }
    info.module = mod->image->name;
    info.offset = handler - mod->code_base();

    symex::Ctx ctx;
    symex::FilterExecutor fx(ctx, *mod->image);
    symex::FilterAnalysis fa = fx.explore(info.offset, opts.max_paths, opts.max_steps,
                                          symex::FilterExecutor::Proto::kVeh);
    info.paths_explored = fa.paths.size();
    bool unknown = fa.truncated;
    info.verdict = FilterVerdict::kRejectsAv;
    for (const auto& path : fa.paths) {
      symex::Solver s(ctx);
      s.add(path.cond);
      s.add(ctx.eq(fx.exc_code(),
                   ctx.constant(static_cast<u64>(vm::ExcCode::kAccessViolation))));
      // A VEH resolves the exception only via CONTINUE_EXECUTION (-1).
      s.add(ctx.eq(path.ret, ctx.constant(symex::kDispContinueExecution)));
      symex::SatResult r = s.check(opts.solver_conflicts);
      if (r == symex::SatResult::kSat && !path.external_call) {
        info.verdict = FilterVerdict::kAcceptsAv;
        break;
      }
      if (r == symex::SatResult::kUnknown || path.external_call) unknown = true;
    }
    if (info.verdict != FilterVerdict::kAcceptsAv && unknown)
      info.verdict = FilterVerdict::kNeedsManual;
    out.push_back(info);
  }
  return out;
}

std::vector<Candidate> VehScanner::candidates(const std::vector<VehHandlerInfo>& handlers,
                                              const std::string& target_name) {
  std::vector<Candidate> out;
  for (const auto& h : handlers) {
    if (h.verdict != FilterVerdict::kAcceptsAv) continue;
    Candidate c;
    c.cls = PrimitiveClass::kExceptionHandler;
    c.target = target_name;
    c.module = h.module;
    c.filter_off = h.offset;
    c.note = "vectored handler (runtime-registered)";
    out.push_back(c);
  }
  return out;
}

}  // namespace crp::analysis
