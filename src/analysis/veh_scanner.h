// VehScanner: the §VII-A extension the paper sketches as future work.
//
// Vectored exception handlers are registered at runtime
// (AddVectoredExceptionHandler), so static scope-table extraction cannot see
// them — that is why the paper's prototype missed the Firefox 46 oracle. The
// extension: harvest AddVectoredExceptionHandler calls from the dynamic API
// trace, map each handler address back to its module/offset, and symbolically
// execute it under the VEH prototype (R1 = &EXCEPTION_RECORD, accepting
// means a path can return EXCEPTION_CONTINUE_EXECUTION for an AV).
#pragma once

#include <vector>

#include "analysis/candidates.h"
#include "analysis/seh_analysis.h"
#include "os/kernel.h"
#include "trace/tracer.h"

namespace crp::analysis {

struct VehHandlerInfo {
  gva_t handler = 0;       // runtime address
  std::string module;      // containing module ("?" if outside any image)
  u64 offset = 0;          // code-section offset
  FilterVerdict verdict = FilterVerdict::kNeedsManual;
  size_t paths_explored = 0;
};

class VehScanner {
 public:
  /// Scan `tracer`'s API log of `proc` for VEH registrations and classify
  /// each handler.
  static std::vector<VehHandlerInfo> scan(const trace::Tracer& tracer,
                                          const os::Process& proc,
                                          ClassifyOptions opts = {});

  static std::vector<Candidate> candidates(const std::vector<VehHandlerInfo>& handlers,
                                           const std::string& target_name);
};

}  // namespace crp::analysis
